/**
 * @file
 * mglint — the project's determinism-contract linter.
 *
 * Every published result rests on bit-identical stats across job
 * counts, sessions, and journal resumes; mglint machine-checks the
 * source-level invariants that contract depends on, with a light
 * hand-rolled tokenizer (no libclang) so it builds anywhere the
 * simulator does. Rules (IDs are stable; see docs/ARCHITECTURE.md
 * "Determinism contract"):
 *
 *   banned-rand      nondeterminism sources: rand()/srand()/rand_r()/
 *                    drand48(), std::random_device, time(), clock().
 *                    Seeded streams must come from common/rng.hh.
 *   ptr-key          std::map/std::set keyed by a pointer type:
 *                    iteration order = address order = ASLR noise.
 *   unordered-iter   iteration (range-for or .begin()) over a
 *                    std::unordered_* container: hash order is
 *                    implementation- and seed-dependent, so anything
 *                    it feeds (stats, JSON, serialization, eviction,
 *                    aggregation) must iterate a sorted view instead.
 *   serial-parity    a serialize/deserialize pair references
 *                    different member sets of the struct it encodes —
 *                    the checkpoint-store format has drifted.
 *   format-version   a file defines a record magic but never mentions
 *                    a format version: new serialized records must
 *                    carry (and check) one.
 *
 * Suppression: `// mglint:allow(rule[,rule...]): justification` on
 * the finding's line or the line above. `mglint:allow-file(rule)`
 * anywhere in a file suppresses the rule file-wide.
 */

#ifndef MGLINT_LINT_HH
#define MGLINT_LINT_HH

#include <string>
#include <vector>

namespace mglint {

struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

struct LintResult
{
    std::vector<Finding> findings;   ///< sorted by (file, line, rule)
    int filesScanned = 0;
    int suppressed = 0;              ///< findings silenced by allow()
};

/** Names and one-line descriptions of every rule, for --list-rules. */
std::vector<std::pair<std::string, std::string>> ruleCatalog();

/**
 * Lint @p files (each a path to a C++ source/header). Cross-file
 * state (struct member tables, unordered-container names) is built
 * over the whole set, so pass every file of interest in one call.
 */
LintResult lintFiles(const std::vector<std::string> &files);

/** Recursively collect .cpp/.cc/.hh/.h files under @p roots (files
 *  pass through verbatim), sorted for deterministic reports. */
std::vector<std::string> collectSources(
    const std::vector<std::string> &roots);

/** Machine-readable report. */
std::string findingsJson(const LintResult &r);

} // namespace mglint

#endif // MGLINT_LINT_HH
