#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace fs = std::filesystem;

namespace mglint {

namespace {

// ---------------------------------------------------------------- tokens

struct Token
{
    std::string text;
    int line = 0;
};

/** One scanned file: code tokens (comments/strings/preprocessor
 *  stripped) plus the per-line suppression sets mined from comments. */
struct FileScan
{
    std::string path;
    std::vector<Token> toks;
    /** line -> rules allowed on that line (and the next). */
    std::map<int, std::set<std::string>> allow;
    std::set<std::string> allowFile;   ///< file-wide suppressions
};

/** Record `mglint:allow(...)` / `mglint:allow-file(...)` found in a
 *  comment starting on @p line. */
void
mineAllow(FileScan &fc, const std::string &comment, int line)
{
    for (std::size_t at = comment.find("mglint:allow");
         at != std::string::npos;
         at = comment.find("mglint:allow", at + 1)) {
        std::size_t open = comment.find('(', at);
        if (open == std::string::npos)
            continue;
        std::size_t close = comment.find(')', open);
        if (close == std::string::npos)
            continue;
        bool fileWide =
            comment.compare(at, 17, "mglint:allow-file") == 0;
        std::string list = comment.substr(open + 1, close - open - 1);
        std::stringstream ss(list);
        std::string rule;
        while (std::getline(ss, rule, ',')) {
            rule.erase(std::remove_if(rule.begin(), rule.end(),
                                      [](unsigned char c) {
                                          return std::isspace(c);
                                      }),
                       rule.end());
            if (rule.empty())
                continue;
            if (fileWide)
                fc.allowFile.insert(rule);
            else
                fc.allow[line].insert(rule);
        }
    }
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Tokenize one file: identifiers and punctuation (with `::` fused),
 *  skipping comments (mined for allow annotations), string/char
 *  literals (raw strings included), numbers, and preprocessor lines. */
FileScan
scanFile(const std::string &path)
{
    FileScan fc;
    fc.path = path;
    std::ifstream in(path, std::ios::binary);
    std::string src((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();
    auto peek = [&](std::size_t k) {
        return i + k < n ? src[i + k] : '\0';
    };
    bool atLineStart = true;
    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            atLineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '#' && atLineStart) {
            // Preprocessor directive: consume to end of line,
            // honouring continuations. `#include <map>` must not look
            // like a pointer-keyed map.
            while (i < n && src[i] != '\n') {
                if (src[i] == '\\' && peek(1) == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                ++i;
            }
            continue;
        }
        atLineStart = false;
        if (c == '/' && peek(1) == '/') {
            std::size_t end = src.find('\n', i);
            if (end == std::string::npos)
                end = n;
            mineAllow(fc, src.substr(i, end - i), line);
            i = end;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            std::size_t end = src.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            mineAllow(fc, src.substr(i, end - i), line);
            line += static_cast<int>(
                std::count(src.begin() + static_cast<std::ptrdiff_t>(i),
                           src.begin() + static_cast<std::ptrdiff_t>(end),
                           '\n'));
            i = end;
            continue;
        }
        if (c == 'R' && peek(1) == '"') {
            // Raw string literal R"delim(...)delim" (the workload
            // kernels embed assembly this way).
            std::size_t po = src.find('(', i + 2);
            if (po == std::string::npos) {
                ++i;
                continue;
            }
            std::string close =
                ")" + src.substr(i + 2, po - (i + 2)) + "\"";
            std::size_t end = src.find(close, po + 1);
            end = end == std::string::npos ? n : end + close.size();
            line += static_cast<int>(
                std::count(src.begin() + static_cast<std::ptrdiff_t>(i),
                           src.begin() + static_cast<std::ptrdiff_t>(end),
                           '\n'));
            i = end;
            continue;
        }
        if (c == '"' || c == '\'') {
            char q = c;
            ++i;
            while (i < n && src[i] != q) {
                if (src[i] == '\\')
                    ++i;
                if (i < n && src[i] == '\n')
                    ++line;
                ++i;
            }
            ++i;
            continue;
        }
        if (identChar(c) && !std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t s = i;
            while (i < n && identChar(src[i]))
                ++i;
            fc.toks.push_back({src.substr(s, i - s), line});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            while (i < n && (identChar(src[i]) || src[i] == '.' ||
                             ((src[i] == '+' || src[i] == '-') &&
                              (src[i - 1] == 'e' || src[i - 1] == 'E'))))
                ++i;
            continue;   // numeric literals carry no lint signal
        }
        if (c == ':' && peek(1) == ':') {
            fc.toks.push_back({"::", line});
            i += 2;
            continue;
        }
        fc.toks.push_back({std::string(1, c), line});
        ++i;
    }
    return fc;
}

// ------------------------------------------------------- cross-file state

/** Member variables per struct/class name, merged over every file. */
using MemberTable = std::map<std::string, std::set<std::string>>;

/** A serialize or deserialize function definition. */
struct SerialFn
{
    std::string file;
    int line = 0;
    std::string structName;         ///< the encoded type
    std::set<std::string> members;  ///< struct members its body touches
};

bool
isUnorderedName(const std::string &t)
{
    return t == "unordered_map" || t == "unordered_set" ||
           t == "unordered_multimap" || t == "unordered_multiset";
}

/** Advance @p k past one balanced <...> starting at the `<`. Returns
 *  the index one past the closing `>`, or toks.size() on imbalance. */
std::size_t
skipTemplateArgs(const std::vector<Token> &toks, std::size_t k)
{
    int depth = 0;
    for (; k < toks.size(); ++k) {
        const std::string &t = toks[k].text;
        if (t == "<")
            ++depth;
        else if (t == ">" && --depth == 0)
            return k + 1;
        else if (t == ">>" )
            depth -= 2;   // not produced by our tokenizer; safety
        else if (t == ";")
            break;        // not a template after all (a < b;)
    }
    return toks.size();
}

/** Advance past one balanced (...) / {...} / [...] starting at the
 *  opener at @p k; returns one past the closer. */
std::size_t
skipBalanced(const std::vector<Token> &toks, std::size_t k,
             const char *open, const char *close)
{
    int depth = 0;
    for (; k < toks.size(); ++k) {
        if (toks[k].text == open)
            ++depth;
        else if (toks[k].text == close && --depth == 0)
            return k + 1;
    }
    return toks.size();
}

/**
 * Collect member-variable names of every struct/class defined in
 * @p fc. Heuristic statement scan: inside a class body, a statement
 * that ends in `;` without a parameter list is a data member, and the
 * member name is the identifier right before the `;` / `=` / `{`
 * initializer / `[` array bound.
 */
void
collectStructs(const FileScan &fc, MemberTable &table)
{
    const std::vector<Token> &toks = fc.toks;
    for (std::size_t k = 0; k + 2 < toks.size(); ++k) {
        if (toks[k].text != "struct" && toks[k].text != "class")
            continue;
        std::size_t j = k + 1;
        if (j >= toks.size() || !identChar(toks[j].text[0]))
            continue;
        std::string name = toks[j].text;
        ++j;
        // Skip base-class clause; bail on forward declarations and
        // template parameters (`template <class T>`).
        while (j < toks.size() && toks[j].text != "{" &&
               toks[j].text != ";" && toks[j].text != ">" &&
               toks[j].text != "(")
            ++j;
        if (j >= toks.size() || toks[j].text != "{")
            continue;
        std::set<std::string> &members = table[name];
        int depth = 1;
        ++j;
        std::vector<std::size_t> stmt;   // token indices of statement
        bool sawParen = false;
        for (; j < toks.size() && depth > 0; ++j) {
            const std::string &t = toks[j].text;
            if (t == "{") {
                // Nested scope: method body, nested class, or a
                // brace initializer. A brace initializer follows a
                // member name directly (prev token is an identifier
                // and the statement has no parameter list) — treat it
                // as the end of the declarator.
                bool braceInit = !stmt.empty() && !sawParen &&
                                 identChar(toks[stmt.back()].text[0]);
                if (braceInit) {
                    // `enum class E : T { ... }` and `using`/`friend`
                    // statements end in a brace too but declare no
                    // data member.
                    for (std::size_t q = 0; q < stmt.size(); ++q) {
                        const std::string &qt = toks[stmt[q]].text;
                        if (qt == "enum" || qt == "using" ||
                            qt == "typedef" || qt == "friend" ||
                            qt == "struct" || qt == "class") {
                            braceInit = false;
                            break;
                        }
                    }
                }
                if (braceInit) {
                    members.insert(toks[stmt.back()].text);
                }
                j = skipBalanced(toks, j, "{", "}") - 1;
                if (braceInit)
                    continue;      // `;` after init ends the statement
                stmt.clear();
                sawParen = false;
                continue;
            }
            if (t == "}") {
                --depth;
                continue;
            }
            if (t == "(") {
                sawParen = true;
                j = skipBalanced(toks, j, "(", ")") - 1;
                continue;
            }
            if (t == "<") {
                std::size_t after = skipTemplateArgs(toks, j);
                if (after < toks.size()) {
                    j = after - 1;
                    continue;
                }
            }
            if (t == ";") {
                if (!stmt.empty() && !sawParen) {
                    // Find the declarator name: identifier before
                    // `;`, or before a `=` / `[` if present.
                    std::size_t last = stmt.size();
                    for (std::size_t s = 0; s < stmt.size(); ++s) {
                        const std::string &st = toks[stmt[s]].text;
                        if (st == "=" || st == "[") {
                            last = s;
                            break;
                        }
                    }
                    for (std::size_t s = last; s-- > 0;) {
                        const std::string &st = toks[stmt[s]].text;
                        if (identChar(st[0]) && st != "const" &&
                            st != "mutable" && st != "static" &&
                            st != "constexpr" && st != "using" &&
                            st != "typedef" && st != "friend" &&
                            st != "enum" && st != "struct" &&
                            st != "class" && st != "public" &&
                            st != "private" && st != "protected") {
                            // `using x = ...` / access labels never
                            // reach here (filtered below).
                            bool skip = false;
                            for (std::size_t q = 0; q < stmt.size(); ++q) {
                                const std::string &qt =
                                    toks[stmt[q]].text;
                                if (qt == "using" || qt == "typedef" ||
                                    qt == "friend" || qt == "enum") {
                                    skip = true;
                                    break;
                                }
                            }
                            if (!skip)
                                members.insert(st);
                            break;
                        }
                    }
                }
                stmt.clear();
                sawParen = false;
                continue;
            }
            if (t == ":" && !stmt.empty() &&
                (toks[stmt.back()].text == "public" ||
                 toks[stmt.back()].text == "private" ||
                 toks[stmt.back()].text == "protected")) {
                stmt.clear();
                continue;
            }
            stmt.push_back(j);
        }
        // Note: `k` keeps advancing from the struct keyword, so nested
        // classes are collected by their own pass.
    }
}

/** Names declared anywhere in the corpus as std::unordered_*
 *  variables/members (plus struct membership is irrelevant: the name
 *  itself is the match key for the iteration rule). */
void
collectUnorderedNames(const FileScan &fc, std::set<std::string> &names)
{
    const std::vector<Token> &toks = fc.toks;
    for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
        if (!isUnorderedName(toks[k].text) || toks[k + 1].text != "<")
            continue;
        std::size_t after = skipTemplateArgs(toks, k + 1);
        // Skip one ref/pointer declarator so `unordered_map<K,V> &m`
        // (a parameter or reference binding) is captured too.
        if (after < toks.size() &&
            (toks[after].text == "&" || toks[after].text == "*"))
            ++after;
        if (after < toks.size() && identChar(toks[after].text[0]) &&
            after + 1 < toks.size() &&
            (toks[after + 1].text == ";" || toks[after + 1].text == "=" ||
             toks[after + 1].text == "{" || toks[after + 1].text == "," ||
             toks[after + 1].text == ")")) {
            names.insert(toks[after].text);
        }
    }
}

// ------------------------------------------------------------- the rules

struct Ctx
{
    const MemberTable &members;
    const std::set<std::string> &unorderedNames;
    std::vector<Finding> raw;   ///< pre-suppression findings
    std::vector<SerialFn> serialFns;

    void
    add(const FileScan &fc, int line, const char *rule,
        std::string message)
    {
        raw.push_back({fc.path, line, rule, std::move(message)});
    }
};

const std::set<std::string> &
bannedCalls()
{
    static const std::set<std::string> s = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "random",
        "time", "clock",
    };
    return s;
}

void
ruleBannedRand(const FileScan &fc, Ctx &ctx)
{
    const std::vector<Token> &toks = fc.toks;
    for (std::size_t k = 0; k < toks.size(); ++k) {
        const std::string &t = toks[k].text;
        if (t == "random_device") {
            ctx.add(fc, toks[k].line, "banned-rand",
                    "std::random_device is nondeterministic; seed a "
                    "SplitMix64 from common/rng.hh instead");
            continue;
        }
        if (!bannedCalls().count(t))
            continue;
        // Only a *call* of the bare name is banned: `clock::now`,
        // `steady_clock`, and member names like `last_write_time`
        // are distinct tokens and never match here.
        bool called = k + 1 < toks.size() && toks[k + 1].text == "(";
        bool qualifiedMember = k > 0 && (toks[k - 1].text == "." ||
                                         toks[k - 1].text == "->");
        // A preceding type-ish identifier means this is a function
        // *declaration* named like the libc symbol (`long time()`),
        // not a call; `return time()` and `std::time()` still count.
        bool declared = false;
        if (k > 0 && identChar(toks[k - 1].text[0])) {
            const std::string &p = toks[k - 1].text;
            declared = p != "return" && p != "else" && p != "do" &&
                       p != "case" && p != "co_return";
        }
        if (called && !qualifiedMember && !declared) {
            ctx.add(fc, toks[k].line, "banned-rand",
                    t + "() is wall-clock/libc-state nondeterminism; "
                        "derive values from fingerprints or "
                        "common/rng.hh");
        }
    }
}

void
rulePtrKey(const FileScan &fc, Ctx &ctx)
{
    const std::vector<Token> &toks = fc.toks;
    for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
        const std::string &t = toks[k].text;
        if (t != "map" && t != "set" && t != "multimap" &&
            t != "multiset")
            continue;
        if (toks[k + 1].text != "<")
            continue;
        // Require std:: (or global) qualification-ish context: the
        // previous token is `::` or a type position. Accept all and
        // rely on the template scan: `Foo.set<int>()` is not a decl.
        // First template argument: tokens until top-level `,` or `>`.
        int depth = 0;
        bool ptr = false;
        for (std::size_t j = k + 1; j < toks.size(); ++j) {
            const std::string &u = toks[j].text;
            if (u == "<") {
                ++depth;
            } else if (u == ">") {
                if (--depth == 0)
                    break;
            } else if (u == "," && depth == 1) {
                break;
            } else if (u == "*" && depth == 1) {
                ptr = true;
            } else if (u == ";") {
                break;
            }
        }
        if (ptr) {
            ctx.add(fc, toks[k].line, "ptr-key",
                    "std::" + t +
                        " keyed by a pointer iterates in address "
                        "order (ASLR-nondeterministic); key by a "
                        "stable id or use an unordered container "
                        "with a sorted view");
        }
    }
}

void
ruleUnorderedIter(const FileScan &fc, Ctx &ctx)
{
    const std::vector<Token> &toks = fc.toks;
    // Range-for over a known unordered name.
    for (std::size_t k = 0; k + 2 < toks.size(); ++k) {
        if (toks[k].text != "for" || toks[k + 1].text != "(")
            continue;
        std::size_t close = skipBalanced(toks, k + 1, "(", ")");
        // Find a top-level `:` inside the for(...) head.
        int depth = 0;
        std::size_t colon = 0;
        for (std::size_t j = k + 1; j + 1 < close; ++j) {
            const std::string &u = toks[j].text;
            if (u == "(" || u == "[" || u == "{")
                ++depth;
            else if (u == ")" || u == "]" || u == "}")
                --depth;
            else if (u == ":" && depth == 1) {
                colon = j;
                break;
            }
        }
        if (!colon)
            continue;
        // A braced init-list range (`for (x : {a, b, c})`) iterates
        // in written order — deterministic by construction.
        if (colon + 1 < close && toks[colon + 1].text == "{")
            continue;
        // Last identifier of the range expression (handles `name`,
        // `obj.name`, `ptr->name`).
        std::string last;
        int lastLine = toks[colon].line;
        for (std::size_t j = colon + 1; j + 1 < close; ++j) {
            if (identChar(toks[j].text[0])) {
                last = toks[j].text;
                lastLine = toks[j].line;
            }
        }
        if (!last.empty() && ctx.unorderedNames.count(last)) {
            ctx.add(fc, lastLine, "unordered-iter",
                    "iterating std::unordered_* container '" + last +
                        "': hash order is not deterministic — sort a "
                        "view first if this feeds stats, reports, "
                        "serialization, eviction, or aggregation");
        }
    }
    // Explicit iterator walk: name.begin() / name->begin().
    for (std::size_t k = 0; k + 2 < toks.size(); ++k) {
        if ((toks[k + 1].text == "." || toks[k + 1].text == "->") &&
            (toks[k + 2].text == "begin" || toks[k + 2].text == "cbegin") &&
            ctx.unorderedNames.count(toks[k].text)) {
            ctx.add(fc, toks[k].line, "unordered-iter",
                    "iterator walk over std::unordered_* container '" +
                        toks[k].text +
                        "': hash order is not deterministic — sort a "
                        "view first if this feeds stats, reports, "
                        "serialization, eviction, or aggregation");
        }
    }
}

/** Find serialize/deserialize function *definitions* and record which
 *  members of their subject struct the body references. */
void
collectSerialFns(const FileScan &fc, Ctx &ctx)
{
    const std::vector<Token> &toks = fc.toks;
    for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
        const std::string &t = toks[k].text;
        bool isSer = t.rfind("serialize", 0) == 0;
        bool isDes = t.rfind("deserialize", 0) == 0;
        if (!isSer && !isDes)
            continue;
        if (toks[k + 1].text != "(")
            continue;
        // Qualified member definition `X::serialize(` or free
        // function `serializeX(`.
        std::string owner;
        if (k >= 2 && toks[k - 1].text == "::" &&
            identChar(toks[k - 2].text[0]))
            owner = toks[k - 2].text;
        std::size_t endParams = skipBalanced(toks, k + 1, "(", ")");
        // Definition? Skip trailing const/noexcept/override, then `{`.
        std::size_t b = endParams;
        while (b < toks.size() && (toks[b].text == "const" ||
                                   toks[b].text == "noexcept" ||
                                   toks[b].text == "override"))
            ++b;
        if (b >= toks.size() || toks[b].text != "{")
            continue;   // declaration only
        // Subject struct: the owner for members, else the first
        // parameter type that names a known struct.
        std::string subject = owner;
        if (subject.empty()) {
            for (std::size_t j = k + 2; j < endParams; ++j) {
                if (ctx.members.count(toks[j].text)) {
                    subject = toks[j].text;
                    break;
                }
            }
        }
        if (subject.empty() || !ctx.members.count(subject))
            continue;
        const std::set<std::string> &mem = ctx.members.at(subject);
        std::size_t endBody = skipBalanced(toks, b, "{", "}");
        SerialFn fn;
        fn.file = fc.path;
        fn.line = toks[k].line;
        fn.structName =
            subject + "|" + (owner.empty() ? t.substr(isSer ? 9 : 11)
                                           : std::string("member"));
        for (std::size_t j = b; j < endBody; ++j) {
            if (mem.count(toks[j].text))
                fn.members.insert(toks[j].text);
        }
        // Pair key: subject + suffix; store direction in the name.
        fn.structName = (isSer ? "S|" : "D|") + fn.structName;
        ctx.serialFns.push_back(std::move(fn));
    }
}

void
ruleSerialParity(Ctx &ctx, const std::map<std::string, FileScan> &scans)
{
    // Pair S|key with D|key.
    std::map<std::string, const SerialFn *> sers, dess;
    for (const SerialFn &fn : ctx.serialFns) {
        if (fn.structName.rfind("S|", 0) == 0)
            sers[fn.structName.substr(2)] = &fn;
        else
            dess[fn.structName.substr(2)] = &fn;
    }
    for (const auto &[key, ser] : sers) {
        auto it = dess.find(key);
        if (it == dess.end())
            continue;
        const SerialFn *des = it->second;
        std::vector<std::string> onlySer, onlyDes;
        std::set_difference(ser->members.begin(), ser->members.end(),
                            des->members.begin(), des->members.end(),
                            std::back_inserter(onlySer));
        std::set_difference(des->members.begin(), des->members.end(),
                            ser->members.begin(), ser->members.end(),
                            std::back_inserter(onlyDes));
        if (onlySer.empty() && onlyDes.empty())
            continue;
        std::string msg = "serialize/deserialize drift for '" +
                          key.substr(0, key.find('|')) + "':";
        for (const std::string &m : onlySer)
            msg += " '" + m + "' serialized but never restored;";
        for (const std::string &m : onlyDes)
            msg += " '" + m + "' restored but never serialized;";
        msg += " bump the format version and fix the lagging side";
        // Report at the serialize definition (annotate there).
        auto fsIt = scans.find(ser->file);
        if (fsIt != scans.end())
            ctx.raw.push_back(
                {ser->file, ser->line, "serial-parity", msg});
    }
}

void
ruleFormatVersion(const FileScan &fc, Ctx &ctx)
{
    // A file that introduces a record magic must speak of a version.
    int magicLine = 0;
    std::string magicName;
    bool hasVersion = false;
    for (const Token &t : fc.toks) {
        if (t.text.size() >= 5 &&
            (t.text.find("Magic") != std::string::npos ||
             t.text.find("magic") == 0)) {
            if (!magicLine) {
                magicLine = t.line;
                magicName = t.text;
            }
        }
        std::string low;
        for (char c : t.text)
            low += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (low.find("version") != std::string::npos)
            hasVersion = true;
    }
    if (magicLine && !hasVersion) {
        ctx.add(fc, magicLine, "format-version",
                "record magic '" + magicName +
                    "' without a format version: serialized records "
                    "must write and check one so stale layouts read "
                    "as a miss, not as garbage");
    }
}

bool
suppressed(const FileScan &fc, const Finding &f)
{
    if (fc.allowFile.count(f.rule))
        return true;
    for (int l : {f.line, f.line - 1}) {
        auto it = fc.allow.find(l);
        if (it != fc.allow.end() && it->second.count(f.rule))
            return true;
    }
    return false;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

std::vector<std::pair<std::string, std::string>>
ruleCatalog()
{
    return {
        {"banned-rand",
         "rand()/srand()/time()/clock()/std::random_device are "
         "nondeterminism sources; use common/rng.hh"},
        {"ptr-key",
         "std::map/set keyed by a pointer iterates in address order"},
        {"unordered-iter",
         "iteration over std::unordered_* containers is hash-order "
         "dependent"},
        {"serial-parity",
         "serialize/deserialize pairs must touch the same member set"},
        {"format-version",
         "files defining a record magic must carry a format version"},
    };
}

std::vector<std::string>
collectSources(const std::vector<std::string> &roots)
{
    std::vector<std::string> files;
    auto wanted = [](const fs::path &p) {
        std::string e = p.extension().string();
        return e == ".cpp" || e == ".cc" || e == ".hh" || e == ".h";
    };
    for (const std::string &root : roots) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            for (fs::recursive_directory_iterator it(root, ec), end;
                 !ec && it != end; it.increment(ec)) {
                if (it->is_regular_file(ec) && wanted(it->path()))
                    files.push_back(it->path().string());
            }
        } else {
            files.push_back(root);
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

LintResult
lintFiles(const std::vector<std::string> &files)
{
    std::map<std::string, FileScan> scans;
    MemberTable members;
    std::set<std::string> unorderedNames;
    for (const std::string &f : files) {
        FileScan fc = scanFile(f);
        collectStructs(fc, members);
        collectUnorderedNames(fc, unorderedNames);
        scans.emplace(f, std::move(fc));
    }

    Ctx ctx{members, unorderedNames, {}, {}};
    for (const auto &[path, fc] : scans) {
        ruleBannedRand(fc, ctx);
        rulePtrKey(fc, ctx);
        ruleUnorderedIter(fc, ctx);
        ruleFormatVersion(fc, ctx);
        collectSerialFns(fc, ctx);
    }
    ruleSerialParity(ctx, scans);

    LintResult r;
    r.filesScanned = static_cast<int>(files.size());
    for (Finding &f : ctx.raw) {
        const FileScan &fc = scans.at(f.file);
        if (suppressed(fc, f))
            ++r.suppressed;
        else
            r.findings.push_back(std::move(f));
    }
    std::sort(r.findings.begin(), r.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    // Identical findings can surface twice (e.g. a name that is both
    // range-iterated and begin()-walked on one line); report once.
    r.findings.erase(
        std::unique(r.findings.begin(), r.findings.end(),
                    [](const Finding &a, const Finding &b) {
                        return a.file == b.file && a.line == b.line &&
                               a.rule == b.rule &&
                               a.message == b.message;
                    }),
        r.findings.end());
    return r;
}

std::string
findingsJson(const LintResult &r)
{
    std::string out = "{\n  \"files_scanned\": " +
                      std::to_string(r.filesScanned) +
                      ",\n  \"suppressed\": " +
                      std::to_string(r.suppressed) +
                      ",\n  \"findings\": [";
    for (std::size_t i = 0; i < r.findings.size(); ++i) {
        const Finding &f = r.findings[i];
        out += i ? "," : "";
        out += "\n    {\"file\": \"" + jsonEscape(f.file) +
               "\", \"line\": " + std::to_string(f.line) +
               ", \"rule\": \"" + f.rule + "\", \"message\": \"" +
               jsonEscape(f.message) + "\"}";
    }
    out += r.findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

} // namespace mglint
