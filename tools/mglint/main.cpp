/**
 * @file
 * mglint CLI. Usage:
 *
 *   mglint [--json REPORT] [--quiet] [--list-rules] PATH...
 *
 * PATHs are files or directories (recursed for .cpp/.cc/.hh/.h).
 * Exit status: 0 clean, 1 unsuppressed findings, 2 usage error.
 * CI runs `mglint --json mglint.json src` and fails on exit 1.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    std::string jsonPath;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mglint: --json needs a path\n");
                return 2;
            }
            jsonPath = argv[++i];
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--list-rules") {
            for (const auto &[id, desc] : mglint::ruleCatalog())
                std::printf("%-16s %s\n", id.c_str(), desc.c_str());
            return 0;
        } else if (a == "--help" || a == "-h") {
            std::printf("usage: mglint [--json REPORT] [--quiet] "
                        "[--list-rules] PATH...\n");
            return 0;
        } else if (a.size() > 1 && a[0] == '-') {
            std::fprintf(stderr, "mglint: unknown flag '%s'\n",
                         a.c_str());
            return 2;
        } else {
            roots.push_back(std::move(a));
        }
    }
    if (roots.empty()) {
        std::fprintf(stderr,
                     "mglint: no paths given (try `mglint src`)\n");
        return 2;
    }

    std::vector<std::string> files = mglint::collectSources(roots);
    mglint::LintResult r = mglint::lintFiles(files);

    if (!quiet) {
        for (const mglint::Finding &f : r.findings)
            std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                        f.rule.c_str(), f.message.c_str());
        std::printf("mglint: %d file%s, %zu finding%s, %d suppressed\n",
                    r.filesScanned, r.filesScanned == 1 ? "" : "s",
                    r.findings.size(), r.findings.size() == 1 ? "" : "s",
                    r.suppressed);
    }
    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath, std::ios::binary);
        out << mglint::findingsJson(r);
        if (!out) {
            std::fprintf(stderr, "mglint: cannot write '%s'\n",
                         jsonPath.c_str());
            return 2;
        }
    }
    return r.findings.empty() ? 0 : 1;
}
