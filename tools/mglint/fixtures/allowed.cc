// mglint fixture: every violation here carries an allow annotation —
// the linter must report zero findings and count the suppressions.
#include <cstdlib>
#include <map>
#include <unordered_map>

int
seeded()
{
    // mglint:allow(banned-rand): fixture exercising suppression
    return rand();
}

struct Blob
{
    int tag = 0;
};

// mglint:allow(ptr-key): identity map local to one pass, never iterated
std::map<Blob *, int> identity;

std::unordered_map<int, int> sums;

int
drain()
{
    int s = 0;
    for (const auto &[k, v] : sums)   // mglint:allow(unordered-iter): commutative sum, order-free
        s += v;
    return s;
}
