// mglint fixture: pointer-keyed ordered containers are flagged;
// value-keyed ones are not.
#include <map>
#include <set>
#include <string>

struct Node
{
    int id = 0;
};

std::map<Node *, int> byAddress;          // finding: ptr-key
std::set<const Node *> seen;              // finding: ptr-key
std::map<std::string, Node *> byName;     // clean: pointer is the value
std::set<int> ids;                        // clean
