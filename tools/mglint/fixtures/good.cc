// mglint fixture: idiomatic deterministic code — must produce zero
// findings.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

constexpr std::uint32_t goodMagic = 0x474f4f44;
constexpr std::uint32_t goodFormatVersion = 1;

struct Tally
{
    std::unordered_map<std::string, std::uint64_t> counts;
};

/** The sorted-view idiom: snapshot, sort, then emit. */
std::vector<std::pair<std::string, std::uint64_t>>
sortedView(const Tally &t)
{
    std::vector<std::pair<std::string, std::uint64_t>> v(
        t.counts.begin(), t.counts.end());   // mglint:allow(unordered-iter): copied then sorted below
    std::sort(v.begin(), v.end());
    return v;
}

std::map<std::string, int> ordered;   // value-keyed: deterministic

std::uint64_t
lookup(const Tally &t, const std::string &k)
{
    auto it = t.counts.find(k);
    return it == t.counts.end() ? 0 : it->second + goodMagic +
                                          goodFormatVersion;
}
