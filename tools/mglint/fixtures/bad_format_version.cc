// mglint fixture: a record magic with no format version anywhere in
// the file — stale layouts would read as garbage instead of a miss.
#include <cstdint>

constexpr std::uint32_t blobMagic = 0x424f4c42;   // finding: format-version

std::uint32_t
header()
{
    return blobMagic;
}
