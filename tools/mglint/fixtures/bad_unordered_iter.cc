// mglint fixture: iterating a std::unordered_* container is flagged
// (range-for and explicit begin() walks); lookups are not.
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Agg
{
    std::unordered_map<std::string, int> counts;
    std::unordered_set<int> live;
};

int
total(const Agg &agg)
{
    int sum = 0;
    for (const auto &[k, v] : agg.counts)   // finding: unordered-iter
        sum += v;
    for (auto it = agg.live.begin();        // finding: unordered-iter
         it != agg.live.end(); ++it)
        sum += *it;
    return sum;
}

bool
lookupOnly(const Agg &agg, const std::string &k)
{
    return agg.counts.find(k) != agg.counts.end();   // clean
}
