// mglint fixture: a deliberately drifted serialize/deserialize pair —
// `epoch` is written but never restored, `spare` restored but never
// written. Exactly the checkpoint-store format drift MGCK records
// must never ship with.

#include "common/serial.hh"

struct DriftRecord
{
    std::uint64_t id = 0;
    std::uint64_t epoch = 0;
    std::uint64_t spare = 0;
    double weight = 0;
};

void
serializeDriftRecord(const DriftRecord &c, mg::SerialWriter &w)
{
    w.u64(c.id);
    w.u64(c.epoch);
    w.f64(c.weight);
}

bool
deserializeDriftRecord(mg::SerialReader &r, DriftRecord &c)
{
    c.id = r.u64();
    c.spare = r.u64();
    c.weight = r.f64();
    return r.ok();
}

struct SteadyRecord
{
    std::uint64_t id = 0;
    double weight = 0;
};

void
serializeSteadyRecord(const SteadyRecord &c, mg::SerialWriter &w)
{
    w.u64(c.id);
    w.f64(c.weight);
}

bool
deserializeSteadyRecord(mg::SerialReader &r, SteadyRecord &c)
{
    c.id = r.u64();
    c.weight = r.f64();
    return r.ok();   // clean: same member set on both sides
}
