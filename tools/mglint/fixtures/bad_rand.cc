// mglint fixture: every banned nondeterminism source must be flagged.
#include <cstdlib>
#include <ctime>
#include <random>

int
entropySoup()
{
    std::random_device rd;                 // finding: banned-rand
    int a = rand();                        // finding: banned-rand
    srand(42);                             // finding: banned-rand
    long t = time(nullptr);                // finding: banned-rand
    long c = clock();                      // finding: banned-rand
    return a + static_cast<int>(t + c) + static_cast<int>(rd());
}

struct Timer
{
    // Member calls named like banned functions are someone else's
    // API, not libc: must NOT be flagged.
    long time() const { return 0; }
};

long
notBanned(const Timer &tm)
{
    return tm.time();   // clean: member call, not ::time()
}
