/**
 * @file
 * Section 6.2 "Instruction cache effects" reproduction: the
 * compression effect of mini-graphs, isolated by comparing the
 * nop-padded layout (same footprint as the original) against the
 * compressed layout (interior slots deleted, everything re-linked).
 * The effect is strongest for instruction-footprint-bound programs;
 * a reduced 2KB instruction cache mimics SPECint's relative pressure
 * on our small kernels. Runs on the ExperimentEngine (`--jobs N`) and
 * writes BENCH_icache.json.
 */

#include <cstdio>

#include "engine/cli.hh"
#include "sim/report.hh"
#include "workloads/suites.hh"

using namespace mg;

namespace {

void
shrinkIcache(SimConfig &cfg)
{
    cfg.core.mem.l1i = CacheGeometry{2 * 1024, 2, 32};
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli = parseCli(argc, argv);
    ExperimentEngine engine(cli.jobs);
    cli.configureStore(engine);
    cli.configureFaultTolerance(engine);

    SweepSpec spec;
    spec.title = "Section 6.2: icache compression effect (mini-graph "
                 "speedup over the matching baseline)";
    spec.workloads = suiteWorkloads("all", 0, cli.scale);
    for (bool smallIcache : {false, true}) {
        const char *sfx = smallIcache ? "-2KBi" : "";
        SimConfig base = SimConfig::baseline();
        SimConfig nopad = SimConfig::intMemMg();
        SimConfig comp = SimConfig::intMemMg();
        comp.compress = true;
        if (smallIcache) {
            shrinkIcache(base);
            shrinkIcache(nopad);
            shrinkIcache(comp);
        }
        spec.columns.push_back(
            {std::string("base") + sfx, base, true});
        spec.columns.push_back(
            {std::string("mg-nopad") + sfx, nopad, true});
        spec.columns.push_back(
            {std::string("mg-compress") + sfx, comp, true});
    }
    spec.baselineColumn = 0;

    cli.applySampling(spec);
    cli.applyAnalysis(spec);
    SweepResult r = engine.sweep(spec);
    if (r.planOnly)
        return 0;   // --dry-run: the plan has been printed
    // Mini-graph columns are measured against the baseline with the
    // matching icache (column 0 or 3) everywhere, JSON included.
    r.columnBaseline = {0, 0, 0, 3, 3, 3};

    std::vector<BenchRow> rows;
    std::vector<std::string> names = {"mg-nopad", "mg-compress",
                                      "mg-nopad-2KBi",
                                      "mg-compress-2KBi"};
    for (std::size_t row = 0; row < r.rows.size(); ++row) {
        BenchRow br;
        br.bench = r.rows[row];
        br.suite = r.suites[row];
        br.baselineIpc = r.at(row, 0).stats.ipc();
        br.speedups = {r.speedup(row, 1), r.speedup(row, 2),
                       r.speedup(row, 4), r.speedup(row, 5)};
        // Static footprint: compressed text over the original.
        br.extra.push_back(
            static_cast<double>(r.at(row, 2).textSlots) /
            static_cast<double>(r.at(row, 0).textSlots));
        rows.push_back(std::move(br));
    }
    printf("%s\n",
           reportSpeedups(spec.title, names, rows, {"text-ratio"})
               .c_str());
    printf("%s\n", throughputTable(r).c_str());
    std::string outcomes = outcomeSummary(r);
    if (!outcomes.empty())
        printf("%s\n", outcomes.c_str());
    cli.applyReporting(r);
    std::string json =
        writeSweepJson(r, cli.benchName("icache"), cli.jsonPath);
    if (!json.empty())
        printf("wrote %s\n", json.c_str());
    return 0;
}
