/**
 * @file
 * Section 6.2 "Instruction cache effects" reproduction: the
 * compression effect of mini-graphs, isolated by comparing the
 * nop-padded layout (same footprint as the original) against the
 * compressed layout (interior slots deleted, everything re-linked).
 * The effect is strongest for instruction-footprint-bound programs;
 * a reduced 2KB instruction cache mimics SPECint's relative pressure
 * on our small kernels.
 */

#include <cstdio>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

using namespace mg;

int
main()
{
    std::vector<std::string> names = {"mg-nopad", "mg-compress",
                                      "mg-nopad-2KBi",
                                      "mg-compress-2KBi"};
    std::vector<BenchRow> rows;
    for (const BoundKernel &bk : bindAll()) {
        BenchRow row;
        row.bench = bk.kernel->name;
        row.suite = bk.kernel->suite;

        for (bool smallIcache : {false, true}) {
            SimConfig base = SimConfig::baseline();
            if (smallIcache)
                base.core.mem.l1i = CacheGeometry{2 * 1024, 2, 32};
            CoreStats b = runCore(*bk.program, nullptr, base.core,
                                  bk.setup);
            if (!smallIcache)
                row.baselineIpc = b.ipc();

            for (bool compress : {false, true}) {
                SimConfig cfg = SimConfig::intMemMg();
                cfg.compress = compress;
                if (smallIcache)
                    cfg.core.mem.l1i = CacheGeometry{2 * 1024, 2, 32};
                CoreStats m = simulate(*bk.program, cfg, bk.setup);
                row.speedups.push_back(m.ipc() / b.ipc());
            }
        }
        // Static footprint reduction.
        BlockProfile prof = collectProfile(*bk.program, bk.setup,
                                           400000);
        SimConfig cfg = SimConfig::intMemMg();
        PreparedMg comp = prepareMiniGraphs(*bk.program, prof,
                                            cfg.policy, cfg.machine,
                                            true);
        row.extra.push_back(
            static_cast<double>(comp.program.text.size()) /
            static_cast<double>(bk.program->text.size()));
        rows.push_back(row);
    }
    printf("%s\n",
           reportSpeedups(
               "Section 6.2: icache compression effect (mini-graph "
               "speedup over the matching baseline)",
               names, rows, {"text-ratio"})
               .c_str());
    return 0;
}
