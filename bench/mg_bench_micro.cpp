/**
 * @file
 * google-benchmark microbenchmarks of the library's hot operations:
 * assembly, emulation rate, enumeration + selection, cache access,
 * branch prediction, end-to-end cycle simulation rate, and the
 * experiment engine's artifact-cache and sweep paths. Useful when
 * tuning the infrastructure itself.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "assembler/assembler.hh"

#include "sim/simulator.hh"
#include "uarch/branch_pred.hh"
#include "uarch/sliding_window.hh"
#include "workloads/suites.hh"

namespace {

using namespace mg;

// kernelProgram caches; the microbenchmark wants the raw path.
Program
assembleForBench(const Kernel &k)
{
    return assemble(k.source, k.name);
}

void
BM_Assemble(benchmark::State &state)
{
    const Kernel &k = findKernel("sha");
    for (auto _ : state) {
        Program p = assembleForBench(k);
        benchmark::DoNotOptimize(p.text.size());
    }
}

void
BM_EmulationRate(benchmark::State &state)
{
    BoundKernel bk = bindKernel(findKernel("crc"));
    std::uint64_t work = 0;
    for (auto _ : state) {
        Emulator emu(*bk.program);
        bk.kernel->setup(emu, 0);
        work += emu.run().dynWork;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(work));
}

void
BM_EnumerateAndSelect(benchmark::State &state)
{
    BoundKernel bk = bindKernel(findKernel("gzip"));
    BlockProfile prof = collectProfile(*bk.program, bk.setup, 200000);
    Cfg cfg(*bk.program);
    Liveness live(cfg);
    for (auto _ : state) {
        Selection sel = selectMiniGraphs(cfg, live, prof,
                                         SelectionPolicy{},
                                         MgtMachine{});
        benchmark::DoNotOptimize(sel.instances.size());
    }
}

void
BM_CacheAccess(benchmark::State &state)
{
    Cache c({32 * 1024, 2, 32}, "bm");
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(a, false).hit);
        a += 32;
        if (a > 256 * 1024)
            a = 0;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_BranchPredict(benchmark::State &state)
{
    BranchPredictor bp;
    Addr pc = textBase;
    bool taken = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bp.predictDirection(pc));
        bp.updateDirection(pc, taken);
        taken = !taken;
        pc += 4;
        if (pc > textBase + 4096)
            pc = textBase;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_CycleSimRate(benchmark::State &state)
{
    BoundKernel bk = bindKernel(findKernel("bitcount"));
    std::uint64_t work = 0;
    for (auto _ : state) {
        CoreStats st = runCore(*bk.program, nullptr, CoreConfig{},
                               bk.setup);
        work += st.committedWork;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(work));
}

void
BM_CycleSimRateMiniGraph(benchmark::State &state)
{
    ExperimentEngine engine;
    EngineWorkload w = workload(bindKernel(findKernel("bitcount")));
    SimConfig sc = SimConfig::intMemMg();
    auto prep = engine.prepare(w, sc);     // amortised, as in a sweep
    std::uint64_t work = 0;
    for (auto _ : state) {
        CoreStats st = runCell(*w.program, prep.get(), sc, w.setup);
        work += st.committedWork;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(work));
}

/** Sampled-cell rate against BM_CycleSimRate: the raw win of
 *  fast-forward + measurement intervals on one kernel. */
void
BM_SampledSimRate(benchmark::State &state)
{
    ExperimentEngine engine;
    EngineWorkload w = workload(bindKernel(findKernel("bitcount")));
    SimConfig sc = SimConfig::baseline();
    sc.sampling.enabled = true;
    sc.sampling.interval = static_cast<std::uint64_t>(state.range(0));
    sc.sampling.period = 10 * sc.sampling.interval;
    sc.sampling.warmup = sc.sampling.interval / 4;
    sc.sampling.ffWarm = 2 * sc.sampling.interval;
    auto sum = engine.summary(w, sc);      // amortised, as in a sweep
    std::uint64_t work = 0;
    for (auto _ : state) {
        SampledStats st = runCellSampled(*w.program, nullptr, sc,
                                         w.setup, *sum);
        work += st.totalWork;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(work));
}

/**
 * Sliding-window check-and-reserve on the packed-bitmask fast path:
 * the per-handle cost of the select stage's FUBMP test. Templates
 * mirror common integer-memory shapes (load + ALU chain + store).
 */
void
BM_WindowConflictReserve(benchmark::State &state)
{
    WindowResources res;
    SlidingWindow w(res, 16);
    const std::vector<std::vector<FuKind>> shapes = {
        {FuKind::LoadPort, FuKind::None, FuKind::IntAlu, FuKind::IntAlu},
        {FuKind::IntAlu, FuKind::IntAlu, FuKind::StorePort},
        {FuKind::LoadPort, FuKind::None, FuKind::IntAlu, FuKind::None,
         FuKind::IntAlu, FuKind::StorePort},
        {FuKind::AluPipe, FuKind::IntAlu},
    };
    std::vector<PackedFubmp> packed;
    for (const auto &s : shapes)
        packed.push_back(packFubmp(s));
    Cycle now = 0;
    std::size_t i = 0;
    for (auto _ : state) {
        const PackedFubmp &p = packed[i];
        if (!w.conflicts(p, now))
            w.reserve(p, now);
        i = (i + 1) % packed.size();
        ++now;
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

/** The same sequence through the unpacked convenience overload:
 *  packs the FUBMP vector on every call, approximating the replaced
 *  per-entry vector-scan cost for a before/after read. */
void
BM_WindowConflictReserveUnpacked(benchmark::State &state)
{
    WindowResources res;
    SlidingWindow w(res, 16);
    const std::vector<std::vector<FuKind>> shapes = {
        {FuKind::LoadPort, FuKind::None, FuKind::IntAlu, FuKind::IntAlu},
        {FuKind::IntAlu, FuKind::IntAlu, FuKind::StorePort},
        {FuKind::LoadPort, FuKind::None, FuKind::IntAlu, FuKind::None,
         FuKind::IntAlu, FuKind::StorePort},
        {FuKind::AluPipe, FuKind::IntAlu},
    };
    Cycle now = 0;
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &s = shapes[i];
        if (!w.conflicts(s, now))
            w.reserve(s, now);
        i = (i + 1) % shapes.size();
        ++now;
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

/**
 * Select-stage cost on a dense high-IPC mini-graph kernel: whole
 * detailed cells of jpeg.dct under the int-mem configuration. The
 * handles_per_s counter inverts to ns/handle; items count committed
 * slots (every slot crosses select at least once).
 */
void
BM_SelectStageDense(benchmark::State &state)
{
    ExperimentEngine engine;
    EngineWorkload w = workload(bindKernel(findKernel("jpeg.dct")));
    SimConfig sc = SimConfig::intMemMg();
    auto prep = engine.prepare(w, sc);
    std::uint64_t slots = 0, handles = 0;
    for (auto _ : state) {
        CoreStats st = runCell(*w.program, prep.get(), sc, w.setup);
        slots += st.committedSlots;
        handles += st.committedHandles;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(slots));
    state.counters["handles_per_s"] = benchmark::Counter(
        static_cast<double>(handles), benchmark::Counter::kIsRate);
}

/** Artifact-cache hit path: the per-cell overhead of a warm sweep. */
void
BM_EngineCacheHit(benchmark::State &state)
{
    ExperimentEngine engine;
    EngineWorkload w = workload(bindKernel(findKernel("crc")));
    SimConfig sc = SimConfig::intMemMg();
    benchmark::DoNotOptimize(engine.prepare(w, sc));
    for (auto _ : state)
        benchmark::DoNotOptimize(engine.prepare(w, sc));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

/** One-kernel standard sweep, parallel cells, warm artifact caches. */
void
BM_EngineSweep(benchmark::State &state)
{
    ExperimentEngine engine(static_cast<int>(state.range(0)));
    SweepSpec spec;
    spec.workloads = {workload(bindKernel(findKernel("bitcount")))};
    spec.columns = standardColumns();
    spec.baselineColumn = 0;
    for (auto _ : state) {
        SweepResult r = engine.sweep(spec);
        benchmark::DoNotOptimize(r.cells.size());
    }
}

BENCHMARK(BM_Assemble);
BENCHMARK(BM_EmulationRate);
BENCHMARK(BM_EnumerateAndSelect);
BENCHMARK(BM_CacheAccess);
BENCHMARK(BM_BranchPredict);
BENCHMARK(BM_CycleSimRate);
BENCHMARK(BM_CycleSimRateMiniGraph);
BENCHMARK(BM_SampledSimRate)->Arg(1000)->Arg(4000);
BENCHMARK(BM_WindowConflictReserve);
BENCHMARK(BM_WindowConflictReserveUnpacked);
BENCHMARK(BM_SelectStageDense);
BENCHMARK(BM_EngineCacheHit);
BENCHMARK(BM_EngineSweep)->Arg(1)->Arg(4);

} // namespace

BENCHMARK_MAIN();
