/**
 * @file
 * Figure 7 reproduction: isolating serialization and replay effects.
 * For each benchmark, speedup over baseline under selection policies:
 *   int               unrestricted integer mini-graphs
 *   int -ext          disallow externally serial
 *   int -int          disallow internally serial
 *   int -both         disallow both
 *   int-mem           unrestricted integer-memory
 *   int-mem -both     disallow both serialization forms
 *   int-mem -replay   additionally disallow interior loads
 *
 * With --best, also prints the per-benchmark best-of-policies gmean
 * (Section 6.2's selective-policy result).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

using namespace mg;

namespace {

SimConfig
makePolicy(bool memory, bool ext, bool inte, bool replay)
{
    SimConfig c = memory ? SimConfig::intMemMg() : SimConfig::intMg();
    c.policy.allowExternallySerial = ext;
    c.policy.allowInternallySerial = inte;
    c.policy.allowInteriorLoads = replay;
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    bool best = argc > 1 && std::strcmp(argv[1], "--best") == 0;

    std::vector<SimConfig> cfgs = {
        makePolicy(false, true, true, true),
        makePolicy(false, false, true, true),
        makePolicy(false, true, false, true),
        makePolicy(false, false, false, true),
        makePolicy(true, true, true, true),
        makePolicy(true, false, false, true),
        makePolicy(true, false, false, false),
    };
    std::vector<std::string> names = {
        "int", "int-ext", "int-int", "int-both",
        "intmem", "intmem-both", "intmem-replay",
    };

    std::vector<BenchRow> rows;
    std::vector<double> bests;
    for (const BoundKernel &bk : bindAll()) {
        BenchRow row;
        row.bench = bk.kernel->name;
        row.suite = bk.kernel->suite;
        CoreStats base = runCore(*bk.program, nullptr,
                                 SimConfig::baseline().core, bk.setup);
        row.baselineIpc = base.ipc();
        double bestSpeedup = 0.0;
        for (const SimConfig &cfg : cfgs) {
            CoreStats st = simulate(*bk.program, cfg, bk.setup);
            double sp = st.ipc() / base.ipc();
            row.speedups.push_back(sp);
            bestSpeedup = std::max(bestSpeedup, sp);
        }
        bests.push_back(bestSpeedup);
        row.extra.push_back(bestSpeedup);
        rows.push_back(row);
    }
    printf("%s\n",
           reportSpeedups("Figure 7: serialization and replay policy "
                          "isolation (speedup over baseline)",
                          names, rows, {"best"})
               .c_str());
    if (best) {
        printf("Best-of-policies gmean over all benchmarks: %.3f\n",
               gmean(bests));
    }
    return 0;
}
