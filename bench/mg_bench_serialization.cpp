/**
 * @file
 * Figure 7 reproduction: isolating serialization and replay effects.
 * For each benchmark, speedup over baseline under selection policies:
 *   int               unrestricted integer mini-graphs
 *   int -ext          disallow externally serial
 *   int -int          disallow internally serial
 *   int -both         disallow both
 *   int-mem           unrestricted integer-memory
 *   int-mem -both     disallow both serialization forms
 *   int-mem -replay   additionally disallow interior loads
 *
 * With --best, also prints the per-benchmark best-of-policies gmean
 * (Section 6.2's selective-policy result). Runs on the
 * ExperimentEngine (`--jobs N`) and writes BENCH_serialization.json.
 */

#include <algorithm>
#include <cstdio>

#include "common/stats.hh"
#include "engine/cli.hh"
#include "sim/report.hh"
#include "workloads/suites.hh"

using namespace mg;

namespace {

SimConfig
makePolicy(bool memory, bool ext, bool inte, bool replay)
{
    SimConfig c = memory ? SimConfig::intMemMg() : SimConfig::intMg();
    c.policy.allowExternallySerial = ext;
    c.policy.allowInternallySerial = inte;
    c.policy.allowInteriorLoads = replay;
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli = parseCli(argc, argv);
    bool best = cli.has("--best");
    ExperimentEngine engine(cli.jobs);
    cli.configureStore(engine);
    cli.configureFaultTolerance(engine);

    SweepSpec spec;
    spec.title = "Figure 7: serialization and replay policy isolation "
                 "(speedup over baseline)";
    spec.workloads = suiteWorkloads("all", 0, cli.scale);
    spec.columns = {
        {"baseline", SimConfig::baseline(), true},
        {"int", makePolicy(false, true, true, true), true},
        {"int-ext", makePolicy(false, false, true, true), true},
        {"int-int", makePolicy(false, true, false, true), true},
        {"int-both", makePolicy(false, false, false, true), true},
        {"intmem", makePolicy(true, true, true, true), true},
        {"intmem-both", makePolicy(true, false, false, true), true},
        {"intmem-replay", makePolicy(true, false, false, false), true},
    };
    spec.baselineColumn = 0;

    cli.applySampling(spec);
    cli.applyAnalysis(spec);
    SweepResult r = engine.sweep(spec);
    if (r.planOnly)
        return 0;   // --dry-run: the plan has been printed
    std::vector<BenchRow> rows = benchRows(r);
    std::vector<double> bests;
    for (BenchRow &row : rows) {
        double b = *std::max_element(row.speedups.begin(),
                                     row.speedups.end());
        row.extra.push_back(b);
        bests.push_back(b);
    }
    printf("%s\n",
           reportSpeedups(spec.title, speedupColumns(r), rows, {"best"})
               .c_str());
    if (best) {
        printf("Best-of-policies gmean over all benchmarks: %.3f\n",
               gmean(bests));
    }
    printf("%s\n", throughputTable(r).c_str());
    std::string outcomes = outcomeSummary(r);
    if (!outcomes.empty())
        printf("%s\n", outcomes.c_str());
    cli.applyReporting(r);
    std::string json =
        writeSweepJson(r, cli.benchName("serialization"), cli.jsonPath);
    if (!json.empty())
        printf("wrote %s\n", json.c_str());
    return 0;
}
