/**
 * @file
 * Figure 6 reproduction: speedup of mini-graph processing over the
 * 6-wide baseline. Four configurations per benchmark:
 *   int            integer mini-graphs on 4-stage ALU pipelines
 *   int+coll       + pair-wise collapsing pipelines
 *   int-mem        integer-memory mini-graphs + sliding-window
 *   int-mem+coll   + pair-wise collapsing
 * Baseline IPCs are printed per benchmark, as in the figure.
 */

#include <cstdio>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

using namespace mg;

int
main()
{
    std::vector<SimConfig> cfgs = {
        SimConfig::intMg(false),
        SimConfig::intMg(true),
        SimConfig::intMemMg(false),
        SimConfig::intMemMg(true),
    };
    std::vector<std::string> names = {"int", "int+coll", "int-mem",
                                      "int-mem+coll"};

    std::vector<BenchRow> rows;
    for (const BoundKernel &bk : bindAll()) {
        BenchRow row;
        row.bench = bk.kernel->name;
        row.suite = bk.kernel->suite;
        CoreStats base = runCore(*bk.program, nullptr,
                                 SimConfig::baseline().core, bk.setup);
        row.baselineIpc = base.ipc();
        for (const SimConfig &cfg : cfgs) {
            CoreStats st = simulate(*bk.program, cfg, bk.setup);
            row.speedups.push_back(st.ipc() / base.ipc());
            if (&cfg == &cfgs[2])
                row.extra.push_back(st.dynamicCoverage());
        }
        rows.push_back(row);
    }
    printf("%s\n",
           reportSpeedups(
               "Figure 6: mini-graph speedup over the 6-wide baseline",
               names, rows, {"covg(int-mem)"})
               .c_str());
    return 0;
}
