/**
 * @file
 * Figure 6 reproduction: speedup of mini-graph processing over the
 * 6-wide baseline. Four configurations per benchmark:
 *   int            integer mini-graphs on 4-stage ALU pipelines
 *   int+coll       + pair-wise collapsing pipelines
 *   int-mem        integer-memory mini-graphs + sliding-window
 *   int-mem+coll   + pair-wise collapsing
 * Baseline IPCs are printed per benchmark, as in the figure. The
 * matrix runs on the ExperimentEngine (`--jobs N` parallelises it) and
 * is also written as BENCH_performance.json.
 */

#include <cstdio>

#include "engine/cli.hh"
#include "sim/report.hh"
#include "workloads/suites.hh"

using namespace mg;

int
main(int argc, char **argv)
{
    CliOptions cli = parseCli(argc, argv);
    ExperimentEngine engine(cli.jobs);
    cli.configureStore(engine);
    cli.configureFaultTolerance(engine);

    SweepSpec spec;
    spec.title = "Figure 6: mini-graph speedup over the 6-wide baseline";
    spec.workloads = suiteWorkloads("all", 0, cli.scale);
    spec.columns = standardColumns();
    spec.baselineColumn = 0;
    cli.applySampling(spec);
    cli.applyAnalysis(spec);
    SweepResult r = engine.sweep(spec);
    if (r.planOnly)
        return 0;   // --dry-run: the plan has been printed

    // The figure annotates each bar group with int-mem's dynamic
    // coverage (the fraction of work executed inside handles).
    std::vector<BenchRow> rows = benchRows(r);
    for (std::size_t row = 0; row < rows.size(); ++row)
        rows[row].extra.push_back(r.at(row, 3).stats.dynamicCoverage());

    printf("%s\n",
           reportSpeedups(spec.title, speedupColumns(r), rows,
                          {"covg(int-mem)"})
               .c_str());
    printf("%s\n", throughputTable(r).c_str());
    std::string outcomes = outcomeSummary(r);
    if (!outcomes.empty())
        printf("%s\n", outcomes.c_str());
    cli.applyReporting(r);
    std::string json =
        writeSweepJson(r, cli.benchName("performance"), cli.jsonPath);
    if (!json.empty())
        printf("wrote %s\n", json.c_str());
    return 0;
}
