/**
 * @file
 * Figure 8 (top) reproduction: register-file capacity amplification.
 * For physical register files of 164 / 144 / 124 / 104 entries,
 * performance of the baseline and the integer-memory mini-graph
 * machine, everything relative to the 164-register baseline. Runs on
 * the ExperimentEngine (`--jobs N`) and writes BENCH_regfile.json.
 */

#include <cstdio>

#include "common/logging.hh"
#include "engine/cli.hh"
#include "sim/report.hh"
#include "workloads/suites.hh"

using namespace mg;

int
main(int argc, char **argv)
{
    CliOptions cli = parseCli(argc, argv);
    ExperimentEngine engine(cli.jobs);
    cli.configureStore(engine);
    cli.configureFaultTolerance(engine);

    SweepSpec spec;
    spec.title = "Figure 8 (top): performance with reduced register "
                 "files, relative to the 164-register baseline";
    spec.workloads = suiteWorkloads("all", 0, cli.scale);
    spec.columns.push_back({"baseline", SimConfig::baseline(), true});
    spec.baselineColumn = 0;
    for (int regs : {164, 144, 124, 104}) {
        SimConfig base = SimConfig::baseline();
        base.core.physRegs = regs;
        spec.columns.push_back({strfmt("base%d", regs), base, true});

        SimConfig mg = SimConfig::intMemMg();
        mg.core.physRegs = regs;
        spec.columns.push_back({strfmt("mg%d", regs), mg, true});
    }

    cli.applySampling(spec);
    cli.applyAnalysis(spec);
    SweepResult r = engine.sweep(spec);
    if (r.planOnly)
        return 0;   // --dry-run: the plan has been printed
    printf("%s\n", sweepTable(r).c_str());
    printf("%s\n", throughputTable(r).c_str());
    std::string outcomes = outcomeSummary(r);
    if (!outcomes.empty())
        printf("%s\n", outcomes.c_str());
    cli.applyReporting(r);
    std::string json =
        writeSweepJson(r, cli.benchName("regfile"), cli.jsonPath);
    if (!json.empty())
        printf("wrote %s\n", json.c_str());
    return 0;
}
