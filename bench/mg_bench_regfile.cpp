/**
 * @file
 * Figure 8 (top) reproduction: register-file capacity amplification.
 * For physical register files of 164 / 144 / 124 / 104 entries,
 * performance of the baseline and the integer-memory mini-graph
 * machine, everything relative to the 164-register baseline.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

using namespace mg;

int
main()
{
    const int regSweep[] = {164, 144, 124, 104};

    std::vector<std::string> names;
    for (int r : regSweep) {
        names.push_back(strfmt("base%d", r));
        names.push_back(strfmt("mg%d", r));
    }

    std::vector<BenchRow> rows;
    for (const BoundKernel &bk : bindAll()) {
        BenchRow row;
        row.bench = bk.kernel->name;
        row.suite = bk.kernel->suite;
        CoreStats ref = runCore(*bk.program, nullptr,
                                SimConfig::baseline().core, bk.setup);
        row.baselineIpc = ref.ipc();
        for (int r : regSweep) {
            CoreConfig baseCfg;
            baseCfg.physRegs = r;
            CoreStats b = runCore(*bk.program, nullptr, baseCfg,
                                  bk.setup);
            row.speedups.push_back(b.ipc() / ref.ipc());

            SimConfig mgCfg = SimConfig::intMemMg();
            mgCfg.core.physRegs = r;
            CoreStats m = simulate(*bk.program, mgCfg, bk.setup);
            row.speedups.push_back(m.ipc() / ref.ipc());
        }
        rows.push_back(row);
    }
    printf("%s\n",
           reportSpeedups(
               "Figure 8 (top): performance with reduced register "
               "files, relative to the 164-register baseline",
               names, rows)
               .c_str());
    return 0;
}
