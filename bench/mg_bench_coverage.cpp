/**
 * @file
 * Figure 5 reproduction: mini-graph coverage.
 *
 *  - top:    application-specific integer mini-graphs
 *  - middle: application-specific integer-memory mini-graphs
 *  - bottom: domain-specific integer-memory mini-graphs (one MGT
 *            shared per suite)
 *
 * Sweeps MGT entries {32,128,512,2048} x max size {2,3,4,8}. Also
 * regenerates the Section 6.1 input-data robustness study (train on
 * input set 1, measure coverage on input set 0).
 */

#include <cstdio>
#include <map>
#include <string>

#include "common/logging.hh"
#include "common/stats.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

using namespace mg;

namespace {

const int entrySweep[] = {32, 128, 512, 2048};
const int sizeSweep[] = {2, 3, 4, 8};

struct Prepared
{
    BoundKernel bk;
    BlockProfile prof;
    std::unique_ptr<Cfg> cfg;
    std::unique_ptr<Liveness> live;
};

Prepared
prepareOne(const BoundKernel &bk, int inputSet)
{
    Prepared p;
    p.bk = bk;
    p.prof = collectProfile(*bk.program, bk.setupFor(inputSet), 400000);
    p.cfg = std::make_unique<Cfg>(*bk.program);
    p.live = std::make_unique<Liveness>(*p.cfg);
    return p;
}

double
coverageFor(const Prepared &p, bool memory, int entries, int maxSize,
            const BlockProfile &evalProf)
{
    SelectionPolicy policy;
    policy.allowMemory = memory;
    policy.maxTemplates = entries;
    policy.maxSize = maxSize;
    Selection sel = selectMiniGraphs(*p.cfg, *p.live, p.prof, policy,
                                     MgtMachine{});
    return sel.coverage(*p.cfg, evalProf);
}

void
appSpecific(bool memory, const char *title)
{
    printf("== Figure 5 %s: application-specific %s mini-graphs ==\n",
           memory ? "(middle)" : "(top)", title);
    TextTable t;
    t.header({"suite", "bench", "32x4", "128x4", "512x2", "512x3",
              "512x4", "512x8", "2048x4"});
    std::map<std::string, std::vector<double>> suiteCov;
    for (const std::string &suite : suiteNames()) {
        for (const Kernel *k : suiteKernels(suite)) {
            Prepared p = prepareOne(bindKernel(*k), 0);
            std::vector<std::string> row = {suite, k->name};
            auto cell = [&](int e, int s) {
                double c = coverageFor(p, memory, e, s, p.prof);
                row.push_back(fmtPct(c));
                return c;
            };
            cell(32, 4);
            cell(128, 4);
            cell(512, 2);
            cell(512, 3);
            double c512 = cell(512, 4);
            cell(512, 8);
            cell(2048, 4);
            suiteCov[suite].push_back(c512);
            t.row(row);
        }
    }
    t.row({"", "", "", "", "", "", "", "", ""});
    for (const std::string &suite : suiteNames())
        t.row({suite, "mean(512x4)", "", "", "", "",
               fmtPct(amean(suiteCov[suite])), "", ""});
    printf("%s\n", t.str().c_str());
}

void
domainSpecific()
{
    printf("== Figure 5 (bottom): domain-specific integer-memory "
           "mini-graphs (shared MGT per suite) ==\n");
    TextTable t;
    std::vector<std::string> hdr = {"suite", "bench"};
    for (int e : entrySweep)
        hdr.push_back(strfmt("%dx4", e));
    t.header(hdr);

    for (const std::string &suite : suiteNames()) {
        std::vector<Prepared> preps;
        for (const Kernel *k : suiteKernels(suite))
            preps.push_back(prepareOne(bindKernel(*k), 0));

        // coverage[bench][entries-idx]
        std::vector<std::vector<double>> cov(
            preps.size(), std::vector<double>(4, 0.0));
        for (size_t ei = 0; ei < 4; ++ei) {
            SelectionPolicy policy;
            policy.maxTemplates = entrySweep[ei];
            policy.maxSize = 4;
            std::vector<const Cfg *> cfgs;
            std::vector<const Liveness *> lives;
            std::vector<const BlockProfile *> profs;
            for (const Prepared &p : preps) {
                cfgs.push_back(p.cfg.get());
                lives.push_back(p.live.get());
                profs.push_back(&p.prof);
            }
            auto sels = selectDomainMiniGraphs(cfgs, lives, profs,
                                               policy, MgtMachine{});
            for (size_t b = 0; b < preps.size(); ++b)
                cov[b][ei] = sels[b].coverage(*preps[b].cfg,
                                              preps[b].prof);
        }
        for (size_t b = 0; b < preps.size(); ++b) {
            std::vector<std::string> row = {suite,
                                            preps[b].bk.kernel->name};
            for (size_t ei = 0; ei < 4; ++ei)
                row.push_back(fmtPct(cov[b][ei]));
            t.row(row);
        }
    }
    printf("%s\n", t.str().c_str());
}

void
robustness()
{
    printf("== Section 6.1: input-data robustness (select on the "
           "alternate input, measure on the reference input) ==\n");
    TextTable t;
    t.header({"bench", "self-trained", "cross-trained", "relative"});
    std::vector<double> rels;
    for (const std::string &suite :
         {std::string("SPECint-S"), std::string("MiBench-S")}) {
        for (const Kernel *k : suiteKernels(suite)) {
            BoundKernel bk = bindKernel(*k);
            Prepared self = prepareOne(bk, 0);
            Prepared cross = prepareOne(bk, 1);
            double c_self =
                coverageFor(self, true, 512, 4, self.prof);
            // Select with the alternate profile, evaluate against the
            // reference profile.
            SelectionPolicy policy;
            policy.maxTemplates = 512;
            Selection sel = selectMiniGraphs(*cross.cfg, *cross.live,
                                             cross.prof, policy,
                                             MgtMachine{});
            double c_cross = sel.coverage(*self.cfg, self.prof);
            double rel = c_self > 0 ? c_cross / c_self : 1.0;
            rels.push_back(rel);
            t.row({k->name, fmtPct(c_self), fmtPct(c_cross),
                   fmtDouble(rel, 3)});
        }
    }
    t.row({"mean", "", "", fmtDouble(amean(rels), 3)});
    printf("%s\n", t.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool robustnessOnly =
        argc > 1 && std::string(argv[1]) == "--robustness";
    if (!robustnessOnly) {
        appSpecific(false, "integer");
        appSpecific(true, "integer-memory");
        domainSpecific();
    }
    robustness();
    return 0;
}
