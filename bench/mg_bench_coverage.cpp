/**
 * @file
 * Figure 5 reproduction: mini-graph coverage.
 *
 *  - top:    application-specific integer mini-graphs
 *  - middle: application-specific integer-memory mini-graphs
 *  - bottom: domain-specific integer-memory mini-graphs (one MGT
 *            shared per suite)
 *
 * Sweeps MGT entries {32,128,512,2048} x max size {2,3,4,8}. Also
 * regenerates the Section 6.1 input-data robustness study (train on
 * input set 1, measure coverage on input set 0).
 *
 * The app-specific tables are untimed engine sweeps (profile + select
 * only); the domain and robustness studies share the same cached
 * profiles. `--jobs N` parallelises everything; the int-mem table is
 * written as BENCH_coverage.json.
 */

#include <cstdio>
#include <map>
#include <string>

#include "cfg/liveness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "engine/cli.hh"
#include "engine/thread_pool.hh"
#include "sim/report.hh"
#include "workloads/suites.hh"

using namespace mg;

namespace {

constexpr std::uint64_t profBudget = 400000;
const int entrySweep[] = {32, 128, 512, 2048};

/** The (entries, maxSize) combos of the app-specific tables. */
const struct { int entries, maxSize; } comboSweep[] = {
    {32, 4}, {128, 4}, {512, 2}, {512, 3}, {512, 4}, {512, 8},
    {2048, 4},
};

SimConfig
coverageConfig(bool memory, int entries, int maxSize)
{
    SimConfig cfg;                      // default machine, as Figure 5
    cfg.useMiniGraphs = true;
    cfg.policy.allowMemory = memory;
    cfg.policy.maxTemplates = entries;
    cfg.policy.maxSize = maxSize;
    cfg.profileBudget = profBudget;
    return cfg;
}

SweepResult
appSpecific(ExperimentEngine &engine, bool memory, const char *title,
            Scale scale)
{
    SweepSpec spec;
    spec.title = strfmt("Figure 5 %s: application-specific %s "
                        "mini-graphs",
                        memory ? "(middle)" : "(top)", title);
    spec.workloads = suiteWorkloads("all", 0, scale);
    for (const auto &c : comboSweep) {
        spec.columns.push_back({strfmt("%dx%d", c.entries, c.maxSize),
                                coverageConfig(memory, c.entries,
                                               c.maxSize),
                                false});
    }
    SweepResult r = engine.sweep(spec);
    if (r.planOnly)
        return r;   // --dry-run: the plan has been printed

    printf("== %s ==\n", spec.title.c_str());
    TextTable t;
    std::vector<std::string> hdr = {"suite", "bench"};
    for (const std::string &c : r.columns)
        hdr.push_back(c);
    t.header(hdr);
    std::size_t meanCol = 0;
    for (std::size_t col = 0; col < r.columns.size(); ++col) {
        if (r.columns[col] == "512x4")
            meanCol = col;
    }
    std::map<std::string, std::vector<double>> suiteCov;
    for (std::size_t row = 0; row < r.rows.size(); ++row) {
        std::vector<std::string> cells = {r.suites[row], r.rows[row]};
        for (std::size_t col = 0; col < r.columns.size(); ++col)
            cells.push_back(fmtPct(r.at(row, col).staticCoverage));
        suiteCov[r.suites[row]].push_back(
            r.at(row, meanCol).staticCoverage);
        t.row(cells);
    }
    t.row(std::vector<std::string>(hdr.size(), ""));
    for (const std::string &suite : suiteNames()) {
        std::vector<std::string> mean(hdr.size(), "");
        mean[0] = suite;
        mean[1] = "mean(512x4)";
        mean[2 + meanCol] = fmtPct(amean(suiteCov[suite]));
        t.row(mean);
    }
    printf("%s\n", t.str().c_str());
    std::string outcomes = outcomeSummary(r);
    if (!outcomes.empty())
        printf("%s\n", outcomes.c_str());
    return r;
}

/** Per-kernel analyses the cross-kernel studies share. */
struct SuiteData
{
    std::vector<BoundKernel> kernels;
    std::vector<std::shared_ptr<const BlockProfile>> profs;
    std::vector<std::unique_ptr<Cfg>> cfgs;
    std::vector<std::unique_ptr<Liveness>> lives;
};

SuiteData
analyzeSuite(ExperimentEngine &engine, const std::string &suite,
             Scale scale)
{
    SuiteData d;
    d.kernels = bindSuite(suite, scale);
    for (const BoundKernel &bk : d.kernels) {
        d.profs.push_back(engine.profile(workload(bk), profBudget));
        d.cfgs.push_back(std::make_unique<Cfg>(*bk.program));
        d.lives.push_back(std::make_unique<Liveness>(*d.cfgs.back()));
    }
    return d;
}

void
domainSpecific(ExperimentEngine &engine, Scale scale)
{
    printf("== Figure 5 (bottom): domain-specific integer-memory "
           "mini-graphs (shared MGT per suite) ==\n");

    const std::vector<std::string> &suites = suiteNames();
    std::vector<SuiteData> data;
    for (const std::string &s : suites)
        data.push_back(analyzeSuite(engine, s, scale));

    // coverage[suite][bench][entries-idx], scattered in parallel over
    // the suite×entries grid, gathered in order below.
    std::vector<std::vector<std::vector<double>>> cov(data.size());
    for (std::size_t s = 0; s < data.size(); ++s)
        cov[s].assign(data[s].kernels.size(),
                      std::vector<double>(4, 0.0));

    ThreadPool::parallelFor(
        engine.jobs(), data.size() * 4, [&](std::size_t i) {
            const SuiteData &d = data[i / 4];
            std::size_t ei = i % 4;
            SelectionPolicy policy;
            policy.maxTemplates = entrySweep[ei];
            policy.maxSize = 4;
            std::vector<const Cfg *> cfgs;
            std::vector<const Liveness *> lives;
            std::vector<const BlockProfile *> profs;
            for (std::size_t b = 0; b < d.kernels.size(); ++b) {
                cfgs.push_back(d.cfgs[b].get());
                lives.push_back(d.lives[b].get());
                profs.push_back(d.profs[b].get());
            }
            auto sels = selectDomainMiniGraphs(cfgs, lives, profs,
                                               policy, MgtMachine{});
            for (std::size_t b = 0; b < d.kernels.size(); ++b)
                cov[i / 4][b][ei] =
                    sels[b].coverage(*d.cfgs[b], *d.profs[b]);
        });

    TextTable t;
    std::vector<std::string> hdr = {"suite", "bench"};
    for (int e : entrySweep)
        hdr.push_back(strfmt("%dx4", e));
    t.header(hdr);
    for (std::size_t s = 0; s < data.size(); ++s) {
        for (std::size_t b = 0; b < data[s].kernels.size(); ++b) {
            std::vector<std::string> row = {
                suites[s], data[s].kernels[b].kernel->name};
            for (std::size_t ei = 0; ei < 4; ++ei)
                row.push_back(fmtPct(cov[s][b][ei]));
            t.row(row);
        }
    }
    printf("%s\n", t.str().c_str());
}

void
robustness(ExperimentEngine &engine, Scale scale)
{
    printf("== Section 6.1: input-data robustness (select on the "
           "alternate input, measure on the reference input) ==\n");

    std::vector<BoundKernel> kernels;
    for (const char *suite : {"SPECint-S", "MiBench-S"}) {
        for (BoundKernel &bk : bindSuite(suite, scale))
            kernels.push_back(std::move(bk));
    }

    struct Row
    {
        double self = 0, cross = 0, rel = 1;
    };
    std::vector<Row> rows(kernels.size());
    ThreadPool::parallelFor(
        engine.jobs(), kernels.size(), [&](std::size_t i) {
            const BoundKernel &bk = kernels[i];
            auto self = engine.profile(workload(bk, 0), profBudget);
            auto cross = engine.profile(workload(bk, 1), profBudget);
            Cfg cfg(*bk.program);
            Liveness live(cfg);
            SelectionPolicy policy;
            policy.maxTemplates = 512;
            Selection selfSel = selectMiniGraphs(cfg, live, *self,
                                                 policy, MgtMachine{});
            // Select with the alternate profile, evaluate against the
            // reference profile.
            Selection crossSel = selectMiniGraphs(cfg, live, *cross,
                                                  policy, MgtMachine{});
            rows[i].self = selfSel.coverage(cfg, *self);
            rows[i].cross = crossSel.coverage(cfg, *self);
            rows[i].rel = rows[i].self > 0
                              ? rows[i].cross / rows[i].self
                              : 1.0;
        });

    TextTable t;
    t.header({"bench", "self-trained", "cross-trained", "relative"});
    std::vector<double> rels;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        rels.push_back(rows[i].rel);
        t.row({kernels[i].kernel->name, fmtPct(rows[i].self),
               fmtPct(rows[i].cross), fmtDouble(rows[i].rel, 3)});
    }
    t.row({"mean", "", "", fmtDouble(amean(rels), 3)});
    printf("%s\n", t.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli = parseCli(argc, argv);
    ExperimentEngine engine(cli.jobs);
    cli.configureStore(engine);
    cli.configureFaultTolerance(engine);
    if (!cli.has("--robustness")) {
        appSpecific(engine, false, "integer", cli.scale);
        SweepResult intMem =
            appSpecific(engine, true, "integer-memory", cli.scale);
        if (intMem.planOnly)
            return 0;   // --dry-run: plans printed, nothing simulated
        domainSpecific(engine, cli.scale);
        cli.applyReporting(intMem);
        std::string json = writeSweepJson(intMem, cli.benchName("coverage"),
                                          cli.jsonPath);
        if (!json.empty())
            printf("wrote %s\n", json.c_str());
    }
    if (cli.dryRun)
        return 0;   // the non-sweep studies would simulate
    robustness(engine, cli.scale);
    return 0;
}
