/**
 * @file
 * Figure 8 (bottom) reproduction: bandwidth amplification and
 * scheduling-loop latency. Configurations, relative to the 6-wide
 * 1-cycle-scheduler baseline:
 *   6w base / 6w mg            the reference pair
 *   4w base / 4w mg            4-wide front and back end (1 load port)
 *   4w+6x base / 4w+6x mg      4-wide front end, 6-wide execute
 *                              (2 load ports)
 *   2cyc base / 2cyc mg        6-wide with a pipelined scheduler
 */

#include <cstdio>
#include <cstring>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

using namespace mg;

namespace {

void
narrowFrontEnd(CoreConfig &c)
{
    c.fetchWidth = c.renameWidth = c.commitWidth = 4;
}

void
narrowExecute(CoreConfig &c)
{
    c.issueWidth = 4;
    c.fu.issueWidth = 4;
    c.fu.loadPorts = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool schedOnly = argc > 1 && std::strcmp(argv[1], "--sched") == 0;

    struct Variant
    {
        std::string name;
        void (*tweakBase)(CoreConfig &);
    };

    std::vector<std::string> names = {"6w-base", "6w-mg",
                                      "4w-base", "4w-mg",
                                      "4w6x-base", "4w6x-mg",
                                      "2cyc-base", "2cyc-mg"};
    if (schedOnly)
        names = {"2cyc-base", "2cyc-mg"};

    std::vector<BenchRow> rows;
    for (const BoundKernel &bk : bindAll()) {
        BenchRow row;
        row.bench = bk.kernel->name;
        row.suite = bk.kernel->suite;
        CoreStats ref = runCore(*bk.program, nullptr,
                                SimConfig::baseline().core, bk.setup);
        row.baselineIpc = ref.ipc();

        auto push = [&](void (*tweak)(CoreConfig &)) {
            CoreConfig baseCfg;
            if (tweak)
                tweak(baseCfg);
            CoreStats b = runCore(*bk.program, nullptr, baseCfg,
                                  bk.setup);
            row.speedups.push_back(b.ipc() / ref.ipc());

            SimConfig mgCfg = SimConfig::intMemMg();
            if (tweak)
                tweak(mgCfg.core);
            CoreStats m = simulate(*bk.program, mgCfg, bk.setup);
            row.speedups.push_back(m.ipc() / ref.ipc());
        };

        if (!schedOnly) {
            push(nullptr);
            push(+[](CoreConfig &c) {
                narrowFrontEnd(c);
                narrowExecute(c);
            });
            push(+[](CoreConfig &c) { narrowFrontEnd(c); });
        }
        push(+[](CoreConfig &c) { c.schedulerCycles = 2; });
        rows.push_back(row);
    }
    printf("%s\n",
           reportSpeedups(
               "Figure 8 (bottom): bandwidth and scheduling-loop "
               "amplification, relative to the 6-wide baseline",
               names, rows)
               .c_str());
    return 0;
}
