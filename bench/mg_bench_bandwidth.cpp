/**
 * @file
 * Figure 8 (bottom) reproduction: bandwidth amplification and
 * scheduling-loop latency. Configurations, relative to the 6-wide
 * 1-cycle-scheduler baseline:
 *   6w base / 6w mg            the reference pair
 *   4w base / 4w mg            4-wide front and back end (1 load port)
 *   4w+6x base / 4w+6x mg      4-wide front end, 6-wide execute
 *                              (2 load ports)
 *   2cyc base / 2cyc mg        6-wide with a pipelined scheduler
 * Runs on the ExperimentEngine (`--jobs N`, `--sched` for the
 * scheduler pair only) and writes BENCH_bandwidth.json.
 */

#include <cstdio>

#include "engine/cli.hh"
#include "sim/report.hh"
#include "workloads/suites.hh"

using namespace mg;

namespace {

void
narrowFrontEnd(CoreConfig &c)
{
    c.fetchWidth = c.renameWidth = c.commitWidth = 4;
}

void
narrowExecute(CoreConfig &c)
{
    c.issueWidth = 4;
    c.fu.issueWidth = 4;
    c.fu.loadPorts = 1;
}

/** The base/mg column pair for one machine-width variant. */
void
addPair(std::vector<SweepColumn> &cols, const std::string &tag,
        void (*tweak)(CoreConfig &))
{
    SimConfig base = SimConfig::baseline();
    if (tweak)
        tweak(base.core);
    cols.push_back({tag + "-base", base, true});

    SimConfig mg = SimConfig::intMemMg();
    if (tweak)
        tweak(mg.core);
    cols.push_back({tag + "-mg", mg, true});
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli = parseCli(argc, argv);
    bool schedOnly = cli.has("--sched");
    ExperimentEngine engine(cli.jobs);
    cli.configureStore(engine);
    cli.configureFaultTolerance(engine);

    SweepSpec spec;
    spec.title = "Figure 8 (bottom): bandwidth and scheduling-loop "
                 "amplification, relative to the 6-wide baseline";
    spec.workloads = suiteWorkloads("all", 0, cli.scale);
    spec.columns.push_back({"baseline", SimConfig::baseline(), true});
    spec.baselineColumn = 0;
    if (!schedOnly) {
        addPair(spec.columns, "6w", nullptr);
        addPair(spec.columns, "4w", +[](CoreConfig &c) {
            narrowFrontEnd(c);
            narrowExecute(c);
        });
        addPair(spec.columns, "4w6x",
                +[](CoreConfig &c) { narrowFrontEnd(c); });
    }
    addPair(spec.columns, "2cyc",
            +[](CoreConfig &c) { c.schedulerCycles = 2; });

    cli.applySampling(spec);
    cli.applyAnalysis(spec);
    SweepResult r = engine.sweep(spec);
    if (r.planOnly)
        return 0;   // --dry-run: the plan has been printed
    printf("%s\n", sweepTable(r).c_str());
    printf("%s\n", throughputTable(r).c_str());
    std::string outcomes = outcomeSummary(r);
    if (!outcomes.empty())
        printf("%s\n", outcomes.c_str());
    cli.applyReporting(r);
    std::string json =
        writeSweepJson(r, cli.benchName("bandwidth"), cli.jsonPath);
    if (!json.empty())
        printf("wrote %s\n", json.c_str());
    return 0;
}
