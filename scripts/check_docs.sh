#!/usr/bin/env bash
# Documentation checks run by the CI docs job (and locally):
#  1. markdown lint basics over docs/ and README.md: no trailing
#     whitespace, no hard tabs, every file ends with a newline;
#  2. every src/<module>/ directory is mentioned in docs/ARCHITECTURE.md;
#  3. every bench binary is mentioned in docs/EXPERIMENTS.md.
set -u
cd "$(dirname "$0")/.."

fail=0
err() { echo "check_docs: $*" >&2; fail=1; }

md_files=(README.md docs/*.md)

for f in "${md_files[@]}"; do
    [ -f "$f" ] || { err "missing markdown file $f"; continue; }
    if grep -nE ' +$' "$f" >/dev/null; then
        err "$f has trailing whitespace:"
        grep -nE ' +$' "$f" | head -5 >&2
    fi
    if grep -nP '\t' "$f" >/dev/null; then
        err "$f contains hard tabs:"
        grep -nP '\t' "$f" | head -5 >&2
    fi
    if [ -n "$(tail -c 1 "$f")" ]; then
        err "$f does not end with a newline"
    fi
done

for d in src/*/; do
    mod=$(basename "$d")
    if ! grep -q "$mod" docs/ARCHITECTURE.md; then
        err "src/$mod is not mentioned in docs/ARCHITECTURE.md"
    fi
done

for b in bench/*.cpp; do
    name=$(basename "$b" .cpp)
    if ! grep -q "$name" docs/EXPERIMENTS.md; then
        err "$name is not mentioned in docs/EXPERIMENTS.md"
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "check_docs: OK"
fi
exit "$fail"
