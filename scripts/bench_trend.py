#!/usr/bin/env python3
"""Compare simulator throughput between two BENCH_*.json runs.

Both inputs are `mg_bench_performance --json` dumps (or any bench JSON
whose cells carry kernel/config/work_per_sec). Cells are matched by
(kernel, config); for each pair the tool reports the work_per_sec
ratio current/baseline, plus the geometric mean over all matched
cells. Exits non-zero when the geomean falls below the regression
threshold, so CI can gate on it.

Usage:
    bench_trend.py BASELINE.json CURRENT.json [--max-regression 0.10]
                   [--top N]

A cell present in only one file is listed but excluded from the
geomean (kernel sets may grow between commits; that is not a
regression).
"""

import argparse
import json
import math
import sys


def load_cells(path):
    """Return {(kernel, config): cell} for one bench JSON file."""
    with open(path) as f:
        doc = json.load(f)
    cells = {}
    for cell in doc.get("cells", []):
        key = (cell["kernel"], cell["config"])
        if key in cells:
            raise SystemExit(f"{path}: duplicate cell {key}")
        cells[key] = cell
    if not cells:
        raise SystemExit(f"{path}: no cells found")
    return cells


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline BENCH json")
    ap.add_argument("current", help="current BENCH json")
    ap.add_argument("--max-regression", type=float, default=0.10,
                    help="fail if geomean throughput ratio drops below "
                         "1 - this fraction (default 0.10)")
    ap.add_argument("--top", type=int, default=8,
                    help="number of best/worst cells to print")
    args = ap.parse_args(argv)

    base = load_cells(args.baseline)
    cur = load_cells(args.current)

    matched = sorted(set(base) & set(cur))
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))

    rows = []
    for key in matched:
        b = base[key]["work_per_sec"]
        c = cur[key]["work_per_sec"]
        if b <= 0 or c <= 0:
            continue
        rows.append((c / b, key, b, c))
    if not rows:
        raise SystemExit("no comparable cells with work_per_sec > 0")

    gm = geomean([r[0] for r in rows])
    rows.sort()

    def show(row):
        ratio, (kernel, config), b, c = row
        print(f"  {ratio:7.3f}x  {kernel}/{config}"
              f"  ({b / 1e6:.2f} -> {c / 1e6:.2f} Mwork/s)")

    print(f"matched cells: {len(rows)}   geomean throughput ratio: "
          f"{gm:.3f}x")
    print("worst:")
    for row in rows[:args.top]:
        show(row)
    print("best:")
    for row in rows[-args.top:][::-1]:
        show(row)
    for key in only_base:
        print(f"  (baseline-only cell ignored: {key})")
    for key in only_cur:
        print(f"  (current-only cell ignored: {key})")

    floor = 1.0 - args.max_regression
    if gm < floor:
        print(f"FAIL: geomean {gm:.3f}x below regression floor "
              f"{floor:.3f}x", file=sys.stderr)
        return 1
    print(f"OK: geomean {gm:.3f}x >= floor {floor:.3f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
