#!/usr/bin/env bash
# Run the clang-tidy baseline (.clang-tidy at the repo root) over the
# src/ tree, the same way the `clang-tidy` CI job does.
#
#   scripts/run_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#
# Needs a build directory with compile_commands.json; one is created
# (config-only, no compile) at build-tidy/ when the default is absent.
# Exits 0 when clang-tidy is not installed — local trees without LLVM
# stay usable; CI installs clang-tidy explicitly and so does enforce.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_tidy.sh: $TIDY not installed; skipping (CI enforces)" >&2
    exit 0
fi

BUILD_DIR="${1:-build-tidy}"
if [ $# -gt 0 ]; then shift; fi
EXTRA=()
if [ "${1:-}" = "--" ]; then shift; EXTRA=("$@"); fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S . \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DMG_BUILD_TESTS=OFF -DMG_BUILD_BENCHES=OFF \
        -DMG_BUILD_EXAMPLES=OFF >/dev/null
fi

# Deterministic file order; failures accumulate rather than stopping
# at the first file so one run reports everything.
mapfile -t FILES < <(find src -name '*.cpp' | sort)
status=0
for f in "${FILES[@]}"; do
    echo "== $f"
    "$TIDY" -p "$BUILD_DIR" --quiet "${EXTRA[@]}" "$f" || status=1
done
exit $status
