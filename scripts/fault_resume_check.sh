#!/usr/bin/env bash
#
# SIGKILL/resume byte-identity check for the crash-safe sweep journal:
# a sweep killed mid-run and rerun with the same spec must resume from
# the journal (re-simulating only unfinished cells) and produce a
# report byte-identical to an uninterrupted run. Wall-clock fields are
# off (--no-throughput) — they are nondeterministic across processes
# by definition, and the journal identity contract is about simulated
# results.
#
# Usage: fault_resume_check.sh [bench-binary] [extra bench args...]

set -euo pipefail

bench="${1:-./build/mg_bench_icache}"
if [ $# -gt 0 ]; then shift; fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

common=(--jobs 1 --no-throughput)

# Uninterrupted reference with a journal attached: the journal block
# is part of the report, so the reference needs one too.
"$bench" "${common[@]}" --journal-dir "$work/ref-journal" \
    --json "$work/ref.json" "$@" > /dev/null

# Start a victim run and SIGKILL it once its journal holds records
# (i.e. genuinely mid-sweep — no chance to flush or unwind).
"$bench" "${common[@]}" --journal-dir "$work/victim-journal" \
    --json "$work/victim.json" "$@" > /dev/null &
pid=$!
for _ in $(seq 1 200); do
    size=$(stat -c%s "$work"/victim-journal/*.mgsj 2>/dev/null || echo 0)
    [ "$size" -gt 4096 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
done
kill -KILL "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
echo "journal at kill: $(stat -c%s "$work"/victim-journal/*.mgsj \
    2>/dev/null || echo 0) bytes"

# Resume: finished cells replay from the journal, unfinished ones
# re-simulate, and the final report must match byte for byte.
"$bench" "${common[@]}" --journal-dir "$work/victim-journal" \
    --json "$work/resumed.json" "$@" > /dev/null

cmp "$work/ref.json" "$work/resumed.json"
echo "OK: resumed report is byte-identical to the uninterrupted run"
