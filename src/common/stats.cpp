#include "common/stats.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace mg {

double
amean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
gmean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("gmean requires positive values (got %f)", x);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

void
TextTable::header(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
    headerRows = static_cast<int>(rows_.size());
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<size_t> width;
    for (const auto &r : rows_) {
        if (width.size() < r.size())
            width.resize(r.size(), 0);
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    }
    std::string out;
    int rowIdx = 0;
    for (const auto &r : rows_) {
        for (size_t i = 0; i < r.size(); ++i) {
            out += r[i];
            if (i + 1 < r.size())
                out += std::string(width[i] - r[i].size() + 2, ' ');
        }
        out += '\n';
        ++rowIdx;
        if (rowIdx == headerRows) {
            size_t total = 0;
            for (size_t i = 0; i < width.size(); ++i)
                total += width[i] + (i + 1 < width.size() ? 2 : 0);
            out += std::string(total, '-');
            out += '\n';
        }
    }
    return out;
}

std::string
fmtDouble(double v, int prec)
{
    return strfmt("%.*f", prec, v);
}

std::string
fmtPct(double v, int prec)
{
    return strfmt("%.*f%%", prec, v * 100.0);
}

} // namespace mg
