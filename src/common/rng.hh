/**
 * @file
 * Deterministic pseudo-random number generation for workload input
 * synthesis. SplitMix64 keeps every experiment reproducible across
 * platforms and standard-library versions (std::mt19937 streams are
 * portable, but distributions are not).
 */

#ifndef MG_COMMON_RNG_HH
#define MG_COMMON_RNG_HH

#include <cstdint>

namespace mg {

/** SplitMix64: tiny, fast, high-quality 64-bit PRNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state;
};

} // namespace mg

#endif // MG_COMMON_RNG_HH
