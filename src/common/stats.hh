/**
 * @file
 * Small statistics helpers used by the evaluation harness: arithmetic and
 * geometric means, ratio formatting, and a fixed-width table printer used
 * by the figure-reproduction benches.
 */

#ifndef MG_COMMON_STATS_HH
#define MG_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mg {

/** Arithmetic mean of @p xs; 0 when empty. */
double amean(const std::vector<double> &xs);

/** Geometric mean of @p xs; 0 when empty. All values must be positive. */
double gmean(const std::vector<double> &xs);

/**
 * Fixed-width text table used to print paper-style rows. Columns are
 * sized to their widest cell; numeric alignment is the caller's problem.
 */
class TextTable
{
  public:
    /** Append a header row (printed with a separator beneath it). */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render the table. */
    std::string str() const;

  private:
    std::vector<std::vector<std::string>> rows_;
    int headerRows = 0;
};

/** Format @p v with @p prec digits after the point. */
std::string fmtDouble(double v, int prec = 3);

/** Format a fraction as a percentage with @p prec digits. */
std::string fmtPct(double v, int prec = 1);

} // namespace mg

#endif // MG_COMMON_STATS_HH
