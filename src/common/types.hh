/**
 * @file
 * Fundamental scalar types shared by every minigraph module.
 */

#ifndef MG_COMMON_TYPES_HH
#define MG_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace mg {

/**
 * Footprint-curve granularity shared by the sampled-simulation layers:
 * the functional pre-pass (SampleSummary::footLines), the hierarchy's
 * jump-mode first-touch tracking, and Core::runSampled's surprise
 * accounting all count data lines at this size — a machine-independent
 * proxy for cache lines, which are a timing-model property the
 * functional pre-pass must not know. The three counters are compared
 * against each other, so they must share one constant.
 */
constexpr int sampleFootLineBytes = 64;

/** Byte address in the simulated machine's address space. */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Architectural register identifier (int regs 0-31, fp regs 32-63). */
using RegId = std::int16_t;

/** Physical register identifier in the renamed register file. */
using PhysReg = std::int16_t;

/** Index of a static instruction inside a Program's text section. */
using InsnIdx = std::uint32_t;

/** Mini-graph template identifier: the handle's immediate field. */
using MgId = std::int32_t;

/** Number of architectural integer registers. */
constexpr int numIntRegs = 32;

/** Number of architectural floating-point registers. */
constexpr int numFpRegs = 32;

/** Total architectural registers (int + fp). */
constexpr int numArchRegs = numIntRegs + numFpRegs;

/** The integer register hard-wired to zero (Alpha r31). */
constexpr RegId regZero = 31;

/** First floating-point register (f0 maps to RegId 32). */
constexpr RegId fpBase = 32;

/** The fp register hard-wired to zero (Alpha f31). */
constexpr RegId regFpZero = fpBase + 31;

/** Sentinel for "no register operand". */
constexpr RegId regNone = -1;

/** Sentinel for "no physical register". */
constexpr PhysReg physNone = -1;

/** Sentinel for "no mini-graph". */
constexpr MgId mgNone = -1;

/** Stack pointer register (Alpha r30). */
constexpr RegId regSp = 30;

/** Conventional link register (Alpha r26). */
constexpr RegId regRa = 26;

/** Size in bytes of one encoded instruction slot. */
constexpr Addr insnBytes = 4;

/** Base address of the text section. */
constexpr Addr textBase = 0x10000;

/** Base address of the data section. */
constexpr Addr dataBase = 0x100000;

/** Initial stack pointer (grows down). */
constexpr Addr stackTop = 0x7ff000;

/** @return true iff @p r names a floating-point register. */
inline bool
isFpReg(RegId r)
{
    return r >= fpBase && r < fpBase + numFpRegs;
}

/** @return true iff @p r is architecturally hard-wired to zero. */
inline bool
isZeroReg(RegId r)
{
    return r == regZero || r == regFpZero;
}

} // namespace mg

#endif // MG_COMMON_TYPES_HH
