/**
 * @file
 * Failure-handling primitives shared by the fault-tolerant engine
 * layers.
 *
 * FailSoftGate is the warn-once fail-soft pattern the checkpoint
 * store introduced, promoted to a reusable helper: a component that
 * must never fail the simulation (an on-disk cache, the sweep
 * journal) latches its first unrecoverable error, warns exactly once,
 * and silently degrades to a no-op from then on.
 *
 * The exception taxonomy drives the engine's per-cell failure
 * domains: TransientError marks failures worth retrying (I/O
 * hiccups, injected transient faults); CellTimeout is what the
 * timing loop throws when its cooperative cancellation flag fires.
 * Anything else that escapes a cell is treated as a permanent
 * failure of that cell alone.
 */

#ifndef MG_COMMON_FAILSOFT_HH
#define MG_COMMON_FAILSOFT_HH

#include <atomic>
#include <cstdarg>
#include <stdexcept>

#include "common/logging.hh"

namespace mg {

/** A retryable failure: the operation may succeed if repeated. */
class TransientError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Thrown by a cancellation poll point once the cell's wall-clock
 *  deadline has fired (never retried: a rerun would time out too). */
class CellTimeout : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Warn-once fail-soft latch. Starts open; the first fail() prints
 * its message via warn() and closes the gate, later fail()s are
 * silent. Callers guard their degradable operations with ok().
 *
 * Thread-safe: the latch is an atomic flag, so ok() may be polled
 * without the owner's lock (the checkpoint store reads it on its
 * store() fast path before locking) and concurrent fail()s elect
 * exactly one warner via exchange().
 */
class FailSoftGate
{
  public:
    // Relaxed is enough: the flag is a monotonic advisory latch, it
    // guards no other memory — whoever observes it closed only skips
    // work, and the mutex of the owning component orders the data.
    bool ok() const { return ok_.load(std::memory_order_relaxed); }

    /** Latch failure; exactly one call warns with @p fmt. */
    void
    fail(const char *fmt, ...)
    {
        // exchange() makes close-and-test one atomic step: among
        // racing fail()s only the one that flips true->false warns.
        if (ok_.exchange(false, std::memory_order_relaxed)) {
            va_list ap;
            va_start(ap, fmt);
            warn("%s", vstrfmt(fmt, ap).c_str());
            va_end(ap);
        }
    }

  private:
    std::atomic<bool> ok_{true};
};

} // namespace mg

#endif // MG_COMMON_FAILSOFT_HH
