/**
 * @file
 * Minimal binary serialization for the checkpoint store: fixed-width
 * little-endian primitives appended to a byte vector, and a
 * bounds-checked reader with an error latch. Readers never throw and
 * never read past the end: the first malformed field trips ok() and
 * every subsequent read returns zero, so callers can parse a whole
 * record into temporaries and check ok() once before committing any
 * state (the validate-before-mutate contract every deserializer in
 * this codebase follows).
 */

#ifndef MG_COMMON_SERIAL_HH
#define MG_COMMON_SERIAL_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace mg {

/** FNV-1a 64-bit over a byte range (record checksums, store keys). */
inline std::uint64_t
fnv1a64(const void *data, std::size_t len,
        std::uint64_t h = 0xcbf29ce484222325ull)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Append-only little-endian encoder. */
class SerialWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }

    void
    bytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf.insert(buf.end(), p, p + len);
    }

    /** Length-prefixed string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    /** Length-prefixed vector of a fixed-width integral type. */
    template <typename T>
    void
    vec(const std::vector<T> &v)
    {
        u64(v.size());
        for (const T &x : v)
            u64(static_cast<std::uint64_t>(x));
    }

    const std::vector<std::uint8_t> &data() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }
    std::size_t size() const { return buf.size(); }

  private:
    std::vector<std::uint8_t> buf;
};

/** Bounds-checked little-endian decoder with an error latch. */
class SerialReader
{
  public:
    SerialReader(const std::uint8_t *data, std::size_t len)
        : p(data), len_(len)
    {
    }
    explicit SerialReader(const std::vector<std::uint8_t> &v)
        : SerialReader(v.data(), v.size())
    {
    }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return p[pos_++];
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(p[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[pos_++]) << (8 * i);
        return v;
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    bool
    bytes(void *out, std::size_t n)
    {
        if (!need(n))
            return false;
        std::memcpy(out, p + pos_, n);
        pos_ += n;
        return true;
    }

    std::string
    str()
    {
        std::uint64_t n = u64();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(p + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /** Length-prefixed vector counterpart of SerialWriter::vec.
     *  The length is sanity-capped against the remaining bytes so a
     *  corrupt header cannot trigger a huge allocation. */
    template <typename T>
    std::vector<T>
    vec()
    {
        std::uint64_t n = u64();
        if (n > remaining() / 8) {
            fail();
            return {};
        }
        std::vector<T> v;
        v.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i)
            v.push_back(static_cast<T>(u64()));
        return v;
    }

    std::size_t remaining() const { return len_ - pos_; }
    std::size_t pos() const { return pos_; }
    bool ok() const { return ok_; }
    void fail() { ok_ = false; }

  private:
    bool
    need(std::size_t n)
    {
        if (!ok_ || n > len_ - pos_) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::uint8_t *p;
    std::size_t len_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace mg

#endif // MG_COMMON_SERIAL_HH
