#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mg {

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    // NOLINTNEXTLINE(concurrency-mt-unsafe): fatal() is terminal by
    // contract; no cleanup ordering is promised past this point
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

} // namespace mg
