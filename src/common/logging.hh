/**
 * @file
 * Error-reporting helpers in the gem5 style: fatal() for user errors,
 * panic() for internal invariant violations, warn() for suspicious but
 * survivable conditions.
 */

#ifndef MG_COMMON_LOGGING_HH
#define MG_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mg {

/**
 * Terminate the process because of a user-level error (bad configuration,
 * malformed assembly, illegal argument). Exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...);

/**
 * Terminate the process because of an internal simulator bug. Aborts so a
 * debugger or core dump can capture the state.
 */
[[noreturn]] void panic(const char *fmt, ...);

/** Print a warning to stderr and continue. */
void warn(const char *fmt, ...);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...);

/** vprintf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, va_list ap);

} // namespace mg

#endif // MG_COMMON_LOGGING_HH
