/**
 * @file
 * The unified result model and formatting for the figure-reproduction
 * benches: the SweepResult every experiment sweep produces (one cell
 * per kernel×configuration), paper-style speedup tables with per-suite
 * geometric means, and the machine-readable BENCH_*.json reports.
 */

#ifndef MG_SIM_REPORT_HH
#define MG_SIM_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/critpath.hh"
#include "common/serial.hh"
#include "common/stats.hh"
#include "uarch/core.hh"

namespace mg {

/**
 * Terminal state of one sweep cell. A sweep always completes and
 * reports every cell; non-Ok cells carry zeroed stats (timed=false)
 * plus the error that ended them, so one broken kernel×config pair
 * costs its own numbers and nothing else.
 */
enum class CellOutcome : std::uint8_t
{
    Ok = 0,         ///< stats are valid
    Failed = 1,     ///< permanent error (error holds the message)
    TimedOut = 2,   ///< cancelled by the per-cell deadline watchdog
    Skipped = 3,    ///< never executed (dry-run plan)
};

/** Stable lowercase name ("ok", "failed", "timed_out", "skipped"). */
const char *cellOutcomeName(CellOutcome o);

/** One benchmark's results across a set of configurations. */
struct BenchRow
{
    std::string bench;
    std::string suite;
    double baselineIpc = 0;
    std::vector<double> speedups;   ///< per configuration
    std::vector<double> extra;      ///< per-experiment annotations
};

/** One cell of a kernel×configuration sweep. */
struct SweepCell
{
    CoreStats stats;                ///< timing run (when timed); for a
                                    ///< sampled cell, sampled.est
    bool timed = false;             ///< stats hold a real timing run
    double staticCoverage = 0;      ///< estimated from the profile
    std::uint64_t templates = 0;    ///< MGT entries selected
    std::uint64_t textSlots = 0;    ///< program text size (insns)
    SampledStats sampled;           ///< error bounds etc. (sampledRun)
    bool sampledRun = false;        ///< stats were extrapolated
    /** Critical-path breakdown of the cell's traced analysis run
     *  (--critpath). present=false — and absent from the JSON — for
     *  clean configurations. */
    CritPathSummary critpath;
    /** Simulator throughput: wall-clock of the cell's compute (cache
     *  hits carry the original run's time) and the committed work per
     *  wall-second it implies — the per-cell perf trajectory. */
    double wallSeconds = 0;
    double workPerSec = 0;
    /** Failure-domain fields. outcome/error/retries are emitted into
     *  the JSON only when non-default, so fault-free sweeps stay
     *  byte-identical to pre-fault-tolerance reports. */
    CellOutcome outcome = CellOutcome::Ok;
    std::string error;              ///< what ended a non-Ok cell
    std::uint32_t retries = 0;      ///< transient-failure re-executions
    /** Replayed from the sweep journal instead of simulated. Runtime
     *  state only — never serialized or reported, because it differs
     *  between a resumed and an uninterrupted run. */
    bool journalHit = false;
};

/**
 * Ordered results of a complete sweep. Cells are row-major
 * (`cells[row * columns.size() + col]`); the layout is deterministic
 * regardless of how many threads computed it.
 */
struct SweepResult
{
    std::string title;
    std::vector<std::string> rows;      ///< kernel names
    std::vector<std::string> suites;    ///< parallel to rows
    std::vector<std::string> columns;   ///< configuration names
    std::vector<SweepCell> cells;       ///< row-major
    int baselineColumn = -1;            ///< speedup reference column
    /** Optional per-column reference override (parallel to columns;
     *  -1 entries fall back to baselineColumn). Lets one sweep carry
     *  several matched base/variant groups, e.g. the icache study's
     *  full-size and 2KB halves. */
    std::vector<int> columnBaseline;
    /** Emit per-cell wall_seconds / work_per_sec into the JSON.
     *  Off by default so reports stay byte-comparable across runs
     *  (wall-clock is inherently nondeterministic); the benches turn
     *  it on unless invoked with --no-throughput. */
    bool emitThroughput = false;
    /** Warm-checkpoint-store activity during this sweep (counter
     *  deltas the engine snapshots around the cell matrix). Absent —
     *  and absent from the JSON, keeping store-less reports
     *  byte-identical — unless a store was attached. */
    bool storeAttached = false;
    std::uint64_t storeHits = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t storeWritebacks = 0;
    std::uint64_t storeCorrupt = 0;
    std::uint64_t storeEvictions = 0;
    /** Sweep-journal presence and its resume-invariant total: how many
     *  cells the journal holds after this sweep. Replay/append splits
     *  are deliberately absent — they differ between a resumed and an
     *  uninterrupted run, and the JSON must not. Emitted only when a
     *  journal was attached. */
    bool journalAttached = false;
    std::uint64_t journalRecorded = 0;
    /** Dry-run plan: cells are Skipped placeholders, nothing was
     *  simulated, and writeSweepJson refuses to write a report. */
    bool planOnly = false;

    const SweepCell &at(std::size_t row, std::size_t col) const;

    /**
     * IPC of (row, col) over (row, ref); @p ref of -1 uses
     * columnBaseline[col] when set, else baselineColumn. 0 when
     * either cell is untimed or stalled.
     */
    double speedup(std::size_t row, std::size_t col, int ref = -1) const;
};

/**
 * Convert @p r into paper-style rows: baselineColumn provides the
 * base-IPC column, every other column one speedup value (in column
 * order). Extra annotation columns are the caller's to append.
 */
std::vector<BenchRow> benchRows(const SweepResult &r);

/** Names of @p r's non-baseline columns (benchRows column order). */
std::vector<std::string> speedupColumns(const SweepResult &r);

/** Render @p r through benchRows + reportSpeedups. */
std::string sweepTable(const SweepResult &r);

/**
 * Simulator-throughput table for @p r: per-suite geometric-mean
 * committed-work/second for each timed column plus the total
 * wall-clock, so per-cell simulation speed is visible (and
 * regressions diffable) in every bench run.
 */
std::string throughputTable(const SweepResult &r);

/**
 * Machine-readable report: one JSON object with the sweep metadata and
 * a flat "cells" array of {kernel, suite, config, ipc, amplification,
 * cycles, work, coverage, templates} records (amplification is the
 * speedup over baselineColumn; untimed cells carry coverage only).
 */
std::string sweepJson(const SweepResult &r, const std::string &bench);

/**
 * Write sweepJson to @p path, or to "BENCH_<bench>.json" in the
 * working directory when @p path is empty. @return the path written,
 * or "" on I/O failure (reported via warn()) or when @p r is a
 * dry-run plan (nothing was simulated, so there is nothing to
 * report).
 */
std::string writeSweepJson(const SweepResult &r, const std::string &bench,
                           const std::string &path = "");

/**
 * One-line cell-outcome digest ("cell outcomes: 44 ok, 1 failed,
 * 1 timed_out (2 retried)"), or "" when every cell is Ok with no
 * retries — benches print it only when there is something to say,
 * keeping fault-free stdout unchanged.
 */
std::string outcomeSummary(const SweepResult &r);

/** Append @p c to @p w (journal payloads; journalHit elided). */
void serializeSweepCell(const SweepCell &c, SerialWriter &w);

/** Parse a serializeSweepCell record. @return false (leaving @p c
 *  unspecified) on malformed input. */
bool deserializeSweepCell(SerialReader &r, SweepCell &c);

/**
 * Render rows grouped by suite with per-suite gmean speedup lines,
 * mirroring the layout of the paper's Figure 6.
 *
 * @param title     table caption
 * @param configs   names of the speedup columns
 * @param rows      per-benchmark results
 * @param extraCols names for the annotation columns (may be empty)
 */
std::string reportSpeedups(const std::string &title,
                           const std::vector<std::string> &configs,
                           const std::vector<BenchRow> &rows,
                           const std::vector<std::string> &extraCols = {});

} // namespace mg

#endif // MG_SIM_REPORT_HH
