/**
 * @file
 * Result formatting for the figure-reproduction benches: per-benchmark
 * rows with IPC, speedup, and coverage, plus per-suite geometric means
 * in the paper's style.
 */

#ifndef MG_SIM_REPORT_HH
#define MG_SIM_REPORT_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "uarch/core.hh"

namespace mg {

/** One benchmark's results across a set of configurations. */
struct BenchRow
{
    std::string bench;
    std::string suite;
    double baselineIpc = 0;
    std::vector<double> speedups;   ///< per configuration
    std::vector<double> extra;      ///< per-experiment annotations
};

/**
 * Render rows grouped by suite with per-suite gmean speedup lines,
 * mirroring the layout of the paper's Figure 6.
 *
 * @param title     table caption
 * @param configs   names of the speedup columns
 * @param rows      per-benchmark results
 * @param extraCols names for the annotation columns (may be empty)
 */
std::string reportSpeedups(const std::string &title,
                           const std::vector<std::string> &configs,
                           const std::vector<BenchRow> &rows,
                           const std::vector<std::string> &extraCols = {});

} // namespace mg

#endif // MG_SIM_REPORT_HH
