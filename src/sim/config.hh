/**
 * @file
 * Top-level experiment configuration: one struct bundling the machine
 * model, the selection policy, and the MGT schedule parameters, with
 * named constructors for the paper's evaluated configurations.
 */

#ifndef MG_SIM_CONFIG_HH
#define MG_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "mg/mgt.hh"
#include "mg/minigraph.hh"
#include "uarch/core.hh"

namespace mg {

/** A complete experiment configuration. */
struct SimConfig
{
    std::string name = "baseline";
    CoreConfig core;
    SelectionPolicy policy;
    MgtMachine machine;
    bool useMiniGraphs = false;
    bool compress = false;          ///< icache-study layout
    std::uint64_t profileBudget = 400000;   ///< profiling-run slots
    std::uint64_t runBudget = ~0ull;        ///< timing-run work cap
    SamplingParams sampling;        ///< disabled = full simulation

    /** Critical-path analysis (analysis/critpath.hh): when set, a
     *  timing cell additionally runs once with a retired-event trace
     *  ring attached and publishes the analyzer's breakdown into its
     *  SweepCell. All three fields are gated out of cell fingerprints
     *  while critpath is false, so clean configurations keep
     *  pre-analyzer cache keys and byte-identical reports. */
    bool critpath = false;
    std::uint64_t traceDepth = 0;   ///< trace ring capacity (0 = default)
    std::string whatIf;             ///< --whatif spec ("" = none)

    /** The paper's 6-wide baseline. */
    static SimConfig baseline();

    /**
     * Integer mini-graphs on ALU pipelines (paper Fig. 6 light bars).
     * @param collapsing pair-wise collapsing pipelines (striped bars)
     */
    static SimConfig intMg(bool collapsing = false);

    /**
     * Integer-memory mini-graphs with the sliding-window scheduler
     * (paper Fig. 6 dark bars).
     */
    static SimConfig intMemMg(bool collapsing = false);
};

} // namespace mg

#endif // MG_SIM_CONFIG_HH
