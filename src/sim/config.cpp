#include "sim/config.hh"

namespace mg {

SimConfig
SimConfig::baseline()
{
    SimConfig c;
    c.name = "baseline";
    return c;
}

SimConfig
SimConfig::intMg(bool collapsing)
{
    SimConfig c;
    c.name = collapsing ? "int+collapsing" : "int";
    c.useMiniGraphs = true;
    c.core.enableMiniGraphs(/*intMem=*/false);
    c.policy.allowMemory = false;
    c.machine.useAluPipes = true;
    c.machine.collapsing = collapsing;
    return c;
}

SimConfig
SimConfig::intMemMg(bool collapsing)
{
    SimConfig c;
    c.name = collapsing ? "int-mem+collapsing" : "int-mem";
    c.useMiniGraphs = true;
    c.core.enableMiniGraphs(/*intMem=*/true);
    c.policy.allowMemory = true;
    c.machine.useAluPipes = true;
    c.machine.collapsing = collapsing;
    return c;
}

} // namespace mg
