#include "sim/simulator.hh"

#include <array>
#include <cmath>
#include <map>
#include <memory>
#include <unordered_set>

#include "cfg/liveness.hh"
#include "common/failsoft.hh"
#include "common/rng.hh"

namespace mg {

BlockProfile
collectProfile(const Program &prog, const SetupFn &setup,
               std::uint64_t budget)
{
    Emulator emu(prog);
    if (setup)
        setup(emu);
    EmuResult r = emu.run(budget);
    return r.profile;
}

PreparedMg
prepareMiniGraphs(const Program &prog, const BlockProfile &prof,
                  const SelectionPolicy &policy, const MgtMachine &machine,
                  bool compress)
{
    Cfg cfg(prog);
    Liveness live(cfg);
    Selection sel = selectMiniGraphs(cfg, live, prof, policy, machine);

    PreparedMg out;
    out.staticCoverage = sel.coverage(cfg, prof);
    if (compress) {
        RewriteResult rr = rewriteCompress(prog, sel, machine);
        out.program = std::move(rr.program);
        out.table = std::move(rr.table);
    } else {
        out.program = rewriteNopPad(prog, sel);
        out.table = sel.table;
    }
    out.selection = std::move(sel);
    return out;
}

CoreStats
runCore(const Program &prog, const MgTable *mgt, const CoreConfig &coreCfg,
        const SetupFn &setup, std::uint64_t maxWork,
        const std::atomic<bool> *cancel)
{
    Core core(prog, mgt, coreCfg);
    core.setCancel(cancel);
    if (setup)
        setup(core.oracle());
    return core.run(maxWork);
}

CoreStats
runCell(const Program &prog, const PreparedMg *prep, const SimConfig &cfg,
        const SetupFn &setup, const std::atomic<bool> *cancel)
{
    if (!cfg.useMiniGraphs)
        return runCore(prog, nullptr, cfg.core, setup, cfg.runBudget,
                       cancel);
    return runCore(prep->program, &prep->table, cfg.core, setup,
                   cfg.runBudget, cancel);
}

CritPathSummary
runCellTraced(const Program &prog, const PreparedMg *prep,
              const SimConfig &cfg, const SetupFn &setup,
              const std::atomic<bool> *cancel)
{
    const Program *p = &prog;
    const MgTable *mgt = nullptr;
    if (cfg.useMiniGraphs) {
        p = &prep->program;
        mgt = &prep->table;
    }
    Core core(*p, mgt, cfg.core);
    core.setCancel(cancel);
    TraceBuffer trace(cfg.traceDepth
                          ? static_cast<std::size_t>(cfg.traceDepth)
                          : TraceBuffer::defaultCapacity);
    core.setTrace(&trace);
    if (setup)
        setup(core.oracle());
    core.run(cfg.runBudget);
    return analyzeCritPath(trace, cfg.core, cfg.whatIf);
}

namespace {

/** Normalized-L1 distance between two chunk signatures. */
double
sigDistance(const std::array<double, sampleSigDims> &a,
            const std::array<double, sampleSigDims> &b)
{
    double d = 0;
    for (int i = 0; i < sampleSigDims; ++i)
        d += std::abs(a[i] - b[i]);
    return d;
}

} // namespace

SampleSummary
collectSampleSummary(const Program &prog, const MgTable *mgt,
                     const SetupFn &setup, const SamplingParams &sp,
                     std::uint64_t maxWork,
                     const std::atomic<bool> *cancel)
{
    Emulator emu(prog, mgt);
    if (setup)
        setup(emu);

    // The functional pre-pass can dominate a huge-tier cell's wall
    // clock, so it honors the same cooperative deadline as the timing
    // loops (one counter bump per instruction, an atomic load every
    // 4096).
    std::uint64_t pollCtr = 0;
    auto pollCancel = [&] {
        if (cancel && (++pollCtr & 4095) == 0 &&
            cancel->load(std::memory_order_relaxed))
            throw CellTimeout("cell deadline exceeded (functional "
                              "pre-pass cancelled by watchdog)");
    };

    SampleSummary sum;
    if (sp.degenerate()) {
        while (!emu.halted() && emu.dynWork() < maxWork) {
            pollCancel();
            if (!emu.step())
                break;
        }
        sum.totalWork = emu.dynWork();
        sum.totalSlots = emu.dynInsns();
        return sum;
    }

    // Deterministic per-instruction signature bucket (the PC-histogram
    // sketch phase clustering runs on).
    std::vector<std::uint8_t> bucket(prog.text.size());
    for (std::size_t i = 0; i < bucket.size(); ++i)
        bucket[i] = static_cast<std::uint8_t>(
            Rng(0x5151u ^ static_cast<std::uint64_t>(i)).next() %
            sampleSigDims);

    const std::uint64_t period = sp.period;
    const std::uint64_t prefixChunks = sp.prefixChunks();
    std::vector<std::array<double, sampleSigDims>> leaders;
    std::vector<std::uint32_t> postCount;   ///< post-prefix chunks seen
    std::array<std::uint64_t, sampleSigDims> sig{};
    std::uint64_t sigSlots = 0;
    std::uint64_t chunkIdx = 0;
    std::uint64_t chunkStart = 0;
    // Checkpoints are captured tentatively at every chunk's jump
    // target and kept only if the finished chunk turns out to be one
    // of its cluster's first two post-prefix members.
    std::map<std::uint64_t, EmuCheckpoint> pending;
    std::uint64_t nextCkptChunk = 1;
    // First-touch data-footprint curve (64-byte proxy lines): how many
    // unique lines the run has touched by each chunk boundary.
    std::unordered_set<Addr> footSeen;

    auto finishChunk = [&](std::uint64_t endWork) {
        std::array<double, sampleSigDims> norm{};
        if (sigSlots) {
            for (int i = 0; i < sampleSigDims; ++i)
                norm[i] = static_cast<double>(sig[i]) /
                    static_cast<double>(sigSlots);
        }
        std::uint32_t cid = 0;
        bool found = false;
        for (std::size_t c = 0; c < leaders.size(); ++c) {
            if (sigDistance(norm, leaders[c]) < sampleClusterTheta) {
                cid = static_cast<std::uint32_t>(c);
                found = true;
                break;
            }
        }
        if (!found) {
            cid = static_cast<std::uint32_t>(leaders.size());
            leaders.push_back(norm);
            postCount.push_back(0);
        }
        sum.chunks.push_back({chunkStart, endWork - chunkStart, cid});
        sum.footLines.push_back(footSeen.size());
        bool post = chunkIdx >= prefixChunks;
        auto it = pending.find(chunkIdx);
        // Keep the checkpoint for every chunk the sampled run might
        // measure: the first two of each cluster always, later
        // occurrences (adaptive refinement) while the budget lasts.
        if (post && it != pending.end() &&
            (postCount[cid] < 2 || sum.ckpts.size() < 48))
            sum.ckpts.push_back(std::move(it->second));
        if (it != pending.end())
            pending.erase(it);
        if (post)
            ++postCount[cid];
        sig.fill(0);
        sigSlots = 0;
        ++chunkIdx;
        chunkStart = endWork;
    };

    ExecRecord rec;
    while (!emu.halted() && emu.dynWork() < maxWork) {
        pollCancel();
        std::uint64_t w = emu.dynWork();
        while (w >= (chunkIdx + 1) * period)
            finishChunk((chunkIdx + 1) * period);
        // Once the retention budget is full, only a brand-new cluster
        // could still keep a checkpoint; stop paying for the deep
        // copies and let such rare chunks fast-forward functionally.
        // Warm-through runs never jump, so their summaries skip the
        // captures (and their deep memory copies) entirely.
        if (!sp.warmThrough &&
            nextCkptChunk >= prefixChunks && sum.ckpts.size() < 48 &&
            w >= sp.jumpTarget(nextCkptChunk) &&
            sp.jumpTarget(nextCkptChunk) > 0)
            pending.emplace(nextCkptChunk, emu.checkpoint());
        while (w >= sp.jumpTarget(nextCkptChunk) ||
               sp.jumpTarget(nextCkptChunk) == 0)
            ++nextCkptChunk;
        if (!emu.step(&rec))
            break;
        if (rec.isMem)
            footSeen.insert(rec.memAddr /
                            static_cast<Addr>(sampleFootLineBytes));
        if (rec.insn && prog.validPc(rec.pc)) {
            sig[bucket[prog.indexOf(rec.pc)]] +=
                emu.dynWork() - w;
            sigSlots += emu.dynWork() - w;
        }
    }
    if (emu.dynWork() > chunkStart)
        finishChunk(emu.dynWork());
    sum.totalWork = emu.dynWork();
    sum.totalSlots = emu.dynInsns();
    sum.clusters = static_cast<std::uint32_t>(leaders.size());
    return sum;
}

SampledStats
runCellSampled(const Program &prog, const PreparedMg *prep,
               const SimConfig &cfg, const SetupFn &setup,
               const SampleSummary &sum,
               const std::atomic<bool> *cancel)
{
    return runCellSampled(prog, prep, cfg, setup, sum,
                          static_cast<CellCheckpointClient *>(nullptr),
                          cancel);
}

SampledStats
runCellSampled(const Program &prog, const PreparedMg *prep,
               const SimConfig &cfg, const SetupFn &setup,
               const SampleSummary &sum, CellCheckpointClient *store,
               const std::atomic<bool> *cancel)
{
    const Program &p = prep ? prep->program : prog;
    const MgTable *mgt = prep ? &prep->table : nullptr;
    const SamplingParams &sp = cfg.sampling;
    auto freshCore = [&]() {
        auto core = std::make_unique<Core>(p, mgt, cfg.core);
        core->setCancel(cancel);
        if (setup)
            setup(core->oracle());
        return core;
    };

    // The store only composes with warm-through sampling; degenerate
    // parameters run exactly and have no fast-forward gaps to serve.
    if (!store || !sp.warmThrough || sp.degenerate())
        return freshCore()->runSampled(sp, sum, cfg.runBudget);

    // Violation-pair seed: stored once per cell by the first session's
    // discovery pass and never updated (a frozen seed is what makes
    // every session's returned stats identical).
    std::vector<std::pair<Addr, Addr>> pairs;
    bool havePairs = sp.ssShadow && store->loadViolPairs(pairs);
    if (!havePairs) {
        // Discovery pass: the storeless trajectory (seed generation
        // h(empty)), restoring and writing back under that
        // generation's keys.
        auto core = freshCore();
        SampledStats discovery =
            core->runSampled(sp, sum, cfg.runBudget, store);
        if (!sp.ssShadow)
            return discovery;   // pairs cannot seed anything
        pairs = core->violPairsSorted();
        store->storeViolPairs(pairs);
        // No violations discovered (or the run degraded to exact):
        // the discovery pass *is* the final pass, and later sessions
        // load the empty set and reproduce it under the same keys.
        if (pairs.empty() || discovery.exact)
            return discovery;
    } else if (pairs.empty()) {
        // A previous session discovered no violations: a single
        // unseeded pass replays its records bit-exactly.
        return freshCore()->runSampled(sp, sum, cfg.runBudget, store);
    }
    // Final pass, seeded with the full discovered violation set: the
    // store-set shadow trains every learned dependence across every
    // fast-forward gap from work position zero.
    return freshCore()->runSampled(sp, sum, cfg.runBudget, store,
                                   &pairs);
}

void
serializeSampleSummary(const SampleSummary &sum, SerialWriter &w)
{
    w.u64(sum.totalWork);
    w.u64(sum.totalSlots);
    w.u32(sum.clusters);
    w.u64(sum.chunks.size());
    for (const SampleChunk &c : sum.chunks) {
        w.u64(c.start);
        w.u64(c.work);
        w.u32(c.cluster);
    }
    w.vec(sum.footLines);
    // Checkpoints deliberately elided: a persisted summary only ever
    // serves warm-through runs (enforced by the engine's key), and
    // those never jump.
}

bool
deserializeSampleSummary(SerialReader &r, SampleSummary &sum)
{
    sum = SampleSummary();
    sum.totalWork = r.u64();
    sum.totalSlots = r.u64();
    sum.clusters = r.u32();
    std::uint64_t n = r.u64();
    if (n > r.remaining() / 20) {
        r.fail();
        return false;
    }
    sum.chunks.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        SampleChunk c;
        c.start = r.u64();
        c.work = r.u64();
        c.cluster = r.u32();
        sum.chunks.push_back(c);
    }
    sum.footLines = r.vec<std::uint64_t>();
    return r.ok();
}

CoreStats
simulate(const Program &prog, const SimConfig &cfg, const SetupFn &setup)
{
    if (!cfg.useMiniGraphs)
        return runCell(prog, nullptr, cfg, setup);

    BlockProfile prof = collectProfile(prog, setup, cfg.profileBudget);
    PreparedMg prep = prepareMiniGraphs(prog, prof, cfg.policy,
                                        cfg.machine, cfg.compress);
    return runCell(prog, &prep, cfg, setup);
}

} // namespace mg
