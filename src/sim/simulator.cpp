#include "sim/simulator.hh"

#include "cfg/liveness.hh"

namespace mg {

BlockProfile
collectProfile(const Program &prog, const SetupFn &setup,
               std::uint64_t budget)
{
    Emulator emu(prog);
    if (setup)
        setup(emu);
    EmuResult r = emu.run(budget);
    return r.profile;
}

PreparedMg
prepareMiniGraphs(const Program &prog, const BlockProfile &prof,
                  const SelectionPolicy &policy, const MgtMachine &machine,
                  bool compress)
{
    Cfg cfg(prog);
    Liveness live(cfg);
    Selection sel = selectMiniGraphs(cfg, live, prof, policy, machine);

    PreparedMg out;
    out.staticCoverage = sel.coverage(cfg, prof);
    if (compress) {
        RewriteResult rr = rewriteCompress(prog, sel, machine);
        out.program = std::move(rr.program);
        out.table = std::move(rr.table);
    } else {
        out.program = rewriteNopPad(prog, sel);
        out.table = sel.table;
    }
    out.selection = std::move(sel);
    return out;
}

CoreStats
runCore(const Program &prog, const MgTable *mgt, const CoreConfig &coreCfg,
        const SetupFn &setup, std::uint64_t maxWork)
{
    Core core(prog, mgt, coreCfg);
    if (setup)
        setup(core.oracle());
    return core.run(maxWork);
}

CoreStats
runCell(const Program &prog, const PreparedMg *prep, const SimConfig &cfg,
        const SetupFn &setup)
{
    if (!cfg.useMiniGraphs)
        return runCore(prog, nullptr, cfg.core, setup, cfg.runBudget);
    return runCore(prep->program, &prep->table, cfg.core, setup,
                   cfg.runBudget);
}

CoreStats
simulate(const Program &prog, const SimConfig &cfg, const SetupFn &setup)
{
    if (!cfg.useMiniGraphs)
        return runCell(prog, nullptr, cfg, setup);

    BlockProfile prof = collectProfile(prog, setup, cfg.profileBudget);
    PreparedMg prep = prepareMiniGraphs(prog, prof, cfg.policy,
                                        cfg.machine, cfg.compress);
    return runCell(prog, &prep, cfg, setup);
}

} // namespace mg
