/**
 * @file
 * High-level experiment driver: profile a program, select mini-graphs,
 * rewrite, and run the timing core — the complete paper flow in four
 * calls (or one).
 */

#ifndef MG_SIM_SIMULATOR_HH
#define MG_SIM_SIMULATOR_HH

#include <atomic>
#include <functional>

#include "analysis/critpath.hh"
#include "cfg/profile.hh"
#include "mg/rewriter.hh"
#include "sim/config.hh"
#include "uarch/core.hh"

namespace mg {

/** Callback that plants workload inputs into a fresh emulator. */
using SetupFn = std::function<void(Emulator &)>;

/** Rewritten program plus everything needed to execute it. */
struct PreparedMg
{
    Program program;
    MgTable table;
    Selection selection;        ///< against the original program
    double staticCoverage = 0;  ///< estimated from the profile
};

/** Profile @p prog by functional execution. */
BlockProfile collectProfile(const Program &prog, const SetupFn &setup,
                            std::uint64_t budget);

/** Select + rewrite @p prog for the given policy/machine/layout. */
PreparedMg prepareMiniGraphs(const Program &prog,
                             const BlockProfile &prof,
                             const SelectionPolicy &policy,
                             const MgtMachine &machine,
                             bool compress = false);

/** Run the timing core over (@p prog, @p mgt). A non-null @p cancel
 *  attaches the engine's cooperative deadline flag (Core::setCancel);
 *  the run then throws CellTimeout once the flag fires. */
CoreStats runCore(const Program &prog, const MgTable *mgt,
                  const CoreConfig &coreCfg, const SetupFn &setup,
                  std::uint64_t maxWork = ~0ull,
                  const std::atomic<bool> *cancel = nullptr);

/**
 * The experiment engine's single-cell primitive: time one
 * (program, config) cell from already-computed artifacts. For a
 * mini-graph config @p prep must be the PreparedMg derived from
 * (@p prog, @p cfg) — its rewritten program and table are what run;
 * for a baseline config @p prep is null and @p prog runs unmodified.
 * Reads only const state, so concurrent cells may share @p prog and
 * @p prep freely. @p cancel as in runCore.
 */
CoreStats runCell(const Program &prog, const PreparedMg *prep,
                  const SimConfig &cfg, const SetupFn &setup,
                  const std::atomic<bool> *cancel = nullptr);

/**
 * Critical-path analysis of one cell: re-run the cell's timing core
 * with a retired-event trace ring attached (capacity cfg.traceDepth,
 * 0 = TraceBuffer::defaultCapacity) and run the dependence-graph
 * analyzer over the captured window, including the cfg.whatIf
 * re-weighting when set. Trace capture is observational, so the
 * traced run's CoreStats are bit-identical to runCell's; the ring is
 * preallocated, so full-length runs stay allocation-free.
 */
CritPathSummary runCellTraced(const Program &prog, const PreparedMg *prep,
                              const SimConfig &cfg, const SetupFn &setup,
                              const std::atomic<bool> *cancel = nullptr);

/**
 * Functional pre-pass for sampled cells: run the executed binary (the
 * rewritten program for a mini-graph config) to completion once,
 * recording total work/slots and capturing an EmuCheckpoint at every
 * fast-forward grid position of @p sp. The result depends only on the
 * binary, the inputs, and the sampling grid — never on the machine
 * configuration — so the engine shares it across all sweep columns
 * that execute the same binary.
 */
SampleSummary collectSampleSummary(const Program &prog, const MgTable *mgt,
                                   const SetupFn &setup,
                                   const SamplingParams &sp,
                                   std::uint64_t maxWork = ~0ull,
                                   const std::atomic<bool> *cancel =
                                       nullptr);

/**
 * Sampled counterpart of runCell: alternate checkpoint-jump /
 * functionally-warmed fast-forward with cycle-accurate measurement
 * intervals and extrapolate whole-run statistics (see
 * Core::runSampled). @p sum must come from collectSampleSummary for
 * the same binary, inputs, and sampling grid.
 */
SampledStats runCellSampled(const Program &prog, const PreparedMg *prep,
                            const SimConfig &cfg, const SetupFn &setup,
                            const SampleSummary &sum,
                            const std::atomic<bool> *cancel = nullptr);

/**
 * A cell's view of the warm-checkpoint store: the per-chunk warm
 * records Core::runSampled exchanges (the WarmStoreIf base) plus the
 * cell's discovered store-set violation pairs. The engine implements
 * this over the on-disk CheckpointStore with keys derived from the
 * cell fingerprint.
 */
class CellCheckpointClient : public WarmStoreIf
{
  public:
    /** Fetch the cell's discovery-pass violation pairs (sorted).
     *  @return true when a stored (possibly empty) set exists. */
    virtual bool
    loadViolPairs(std::vector<std::pair<Addr, Addr>> &out) = 0;

    /** Persist the discovery-pass violation pairs — written exactly
     *  once per cell and never updated, so every later session seeds
     *  the same generation and reproduces the same stats. */
    virtual void
    storeViolPairs(const std::vector<std::pair<Addr, Addr>> &pairs) = 0;
};

/**
 * Store-backed runCellSampled: two-pass violation-seeded sampling.
 *
 * The documented accuracy failure of warm-through sampling
 * (reed@long/int-mem, ~26% IPC error) is duty-limited store-set
 * discovery: ordering violations are only observable inside detailed
 * intervals, so the predictor state the fast-forwarded majority of
 * the run carries is permanently under-trained. With a store
 * attached, the cell first runs a *discovery* pass (identical to the
 * storeless run) to collect the violating pair set V, persists V,
 * and — when V is nonempty — reruns with the shadow seeded by V.
 * Seeded pairs start dormant and wake at their first functionally
 * observed RAW opportunity (Core::ffAliasScan), so fast-forward gaps
 * train each learned dependence from the position where it first
 * becomes violable — not from work zero, which would serialize
 * program phases that predate the dependence. Warm sessions load
 * V directly and run the seeded pass alone, restoring per-chunk warm
 * records instead of re-warming: cold and warm sessions return
 * bit-identical stats (the warm pass replays the exact states the
 * cold pass wrote).
 *
 * A null @p store (or jump-mode / degenerate / shadowless sampling
 * parameters) reproduces the storeless overload bit-exactly.
 */
SampledStats runCellSampled(const Program &prog, const PreparedMg *prep,
                            const SimConfig &cfg, const SetupFn &setup,
                            const SampleSummary &sum,
                            CellCheckpointClient *store,
                            const std::atomic<bool> *cancel = nullptr);

/** Append @p sum — checkpoints elided — to @p w. Persisted summaries
 *  serve warm-through runs only, which never consult the checkpoint
 *  list; the engine keys them by a fingerprint that includes the
 *  fast-forward mode, so a jump-mode run can never load one. */
void serializeSampleSummary(const SampleSummary &sum, SerialWriter &w);

/** Parse a serializeSampleSummary record. @return false (leaving
 *  @p sum unspecified) on malformed input. */
bool deserializeSampleSummary(SerialReader &r, SampleSummary &sum);

/** One-call flow: returns the end-to-end stats for @p cfg. */
CoreStats simulate(const Program &prog, const SimConfig &cfg,
                   const SetupFn &setup);

} // namespace mg

#endif // MG_SIM_SIMULATOR_HH
