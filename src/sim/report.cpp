#include "sim/report.hh"

#include <map>

namespace mg {

std::string
reportSpeedups(const std::string &title,
               const std::vector<std::string> &configs,
               const std::vector<BenchRow> &rows,
               const std::vector<std::string> &extraCols)
{
    std::string out = "== " + title + " ==\n";
    TextTable t;
    std::vector<std::string> hdr = {"suite", "bench", "base-IPC"};
    for (const auto &c : configs)
        hdr.push_back(c);
    for (const auto &e : extraCols)
        hdr.push_back(e);
    t.header(hdr);

    // Group rows by suite preserving first-seen order.
    std::vector<std::string> suiteOrder;
    std::map<std::string, std::vector<const BenchRow *>> bySuite;
    for (const BenchRow &r : rows) {
        if (!bySuite.count(r.suite))
            suiteOrder.push_back(r.suite);
        bySuite[r.suite].push_back(&r);
    }

    for (const std::string &s : suiteOrder) {
        std::vector<std::vector<double>> colVals(configs.size());
        for (const BenchRow *r : bySuite[s]) {
            std::vector<std::string> cells = {r->suite, r->bench,
                                              fmtDouble(r->baselineIpc, 3)};
            for (size_t c = 0; c < configs.size(); ++c) {
                double v = c < r->speedups.size() ? r->speedups[c] : 0.0;
                cells.push_back(fmtDouble(v, 3));
                if (v > 0)
                    colVals[c].push_back(v);
            }
            for (size_t e = 0; e < extraCols.size(); ++e)
                cells.push_back(e < r->extra.size()
                                ? fmtDouble(r->extra[e], 3) : "-");
            t.row(cells);
        }
        std::vector<std::string> mean = {s, "gmean", ""};
        for (size_t c = 0; c < configs.size(); ++c)
            mean.push_back(fmtDouble(gmean(colVals[c]), 3));
        for (size_t e = 0; e < extraCols.size(); ++e)
            mean.push_back("");
        t.row(mean);
    }
    out += t.str();
    return out;
}

} // namespace mg
