#include "sim/report.hh"

#include <cstdio>
#include <map>

#include "common/logging.hh"

namespace mg {

const char *
cellOutcomeName(CellOutcome o)
{
    switch (o) {
      case CellOutcome::Ok: return "ok";
      case CellOutcome::Failed: return "failed";
      case CellOutcome::TimedOut: return "timed_out";
      case CellOutcome::Skipped: return "skipped";
    }
    return "unknown";
}

std::string
reportSpeedups(const std::string &title,
               const std::vector<std::string> &configs,
               const std::vector<BenchRow> &rows,
               const std::vector<std::string> &extraCols)
{
    std::string out = "== " + title + " ==\n";
    TextTable t;
    std::vector<std::string> hdr = {"suite", "bench", "base-IPC"};
    for (const auto &c : configs)
        hdr.push_back(c);
    for (const auto &e : extraCols)
        hdr.push_back(e);
    t.header(hdr);

    // Group rows by suite preserving first-seen order.
    std::vector<std::string> suiteOrder;
    std::map<std::string, std::vector<const BenchRow *>> bySuite;
    for (const BenchRow &r : rows) {
        if (!bySuite.count(r.suite))
            suiteOrder.push_back(r.suite);
        bySuite[r.suite].push_back(&r);
    }

    for (const std::string &s : suiteOrder) {
        std::vector<std::vector<double>> colVals(configs.size());
        for (const BenchRow *r : bySuite[s]) {
            std::vector<std::string> cells = {r->suite, r->bench,
                                              fmtDouble(r->baselineIpc, 3)};
            for (size_t c = 0; c < configs.size(); ++c) {
                double v = c < r->speedups.size() ? r->speedups[c] : 0.0;
                cells.push_back(fmtDouble(v, 3));
                if (v > 0)
                    colVals[c].push_back(v);
            }
            for (size_t e = 0; e < extraCols.size(); ++e)
                cells.push_back(e < r->extra.size()
                                ? fmtDouble(r->extra[e], 3) : "-");
            t.row(cells);
        }
        std::vector<std::string> mean = {s, "gmean", ""};
        for (size_t c = 0; c < configs.size(); ++c)
            mean.push_back(fmtDouble(gmean(colVals[c]), 3));
        for (size_t e = 0; e < extraCols.size(); ++e)
            mean.push_back("");
        t.row(mean);
    }
    out += t.str();
    return out;
}

const SweepCell &
SweepResult::at(std::size_t row, std::size_t col) const
{
    return cells[row * columns.size() + col];
}

double
SweepResult::speedup(std::size_t row, std::size_t col, int ref) const
{
    if (ref < 0 && col < columnBaseline.size())
        ref = columnBaseline[col];
    if (ref < 0)
        ref = baselineColumn;
    if (ref < 0)
        return 0.0;
    const SweepCell &c = at(row, col);
    const SweepCell &r = at(row, static_cast<std::size_t>(ref));
    if (!c.timed || !r.timed || r.stats.ipc() <= 0)
        return 0.0;
    return c.stats.ipc() / r.stats.ipc();
}

std::vector<BenchRow>
benchRows(const SweepResult &r)
{
    std::vector<BenchRow> out;
    for (std::size_t row = 0; row < r.rows.size(); ++row) {
        BenchRow br;
        br.bench = r.rows[row];
        br.suite = r.suites[row];
        if (r.baselineColumn >= 0) {
            br.baselineIpc =
                r.at(row, static_cast<std::size_t>(r.baselineColumn))
                    .stats.ipc();
        }
        for (std::size_t col = 0; col < r.columns.size(); ++col) {
            if (static_cast<int>(col) == r.baselineColumn)
                continue;
            br.speedups.push_back(r.speedup(row, col));
        }
        out.push_back(std::move(br));
    }
    return out;
}

std::vector<std::string>
speedupColumns(const SweepResult &r)
{
    std::vector<std::string> out;
    for (std::size_t col = 0; col < r.columns.size(); ++col) {
        if (static_cast<int>(col) != r.baselineColumn)
            out.push_back(r.columns[col]);
    }
    return out;
}

std::string
sweepTable(const SweepResult &r)
{
    return reportSpeedups(r.title, speedupColumns(r), benchRows(r));
}

std::string
throughputTable(const SweepResult &r)
{
    TextTable t;
    std::vector<std::string> hdr = {"suite"};
    for (const auto &c : r.columns)
        hdr.push_back(c + " Mw/s");
    t.header(hdr);

    // Per-suite geomean work/s per column, suites in first-seen order.
    std::vector<std::string> suiteOrder;
    std::map<std::string, std::vector<std::size_t>> rowsOf;
    for (std::size_t row = 0; row < r.rows.size(); ++row) {
        if (!rowsOf.count(r.suites[row]))
            suiteOrder.push_back(r.suites[row]);
        rowsOf[r.suites[row]].push_back(row);
    }
    double totalSec = 0;
    for (const std::string &s : suiteOrder) {
        std::vector<std::string> cells = {s};
        for (std::size_t col = 0; col < r.columns.size(); ++col) {
            std::vector<double> v;
            for (std::size_t row : rowsOf[s]) {
                const SweepCell &c = r.at(row, col);
                if (c.timed && c.workPerSec > 0)
                    v.push_back(c.workPerSec / 1e6);
            }
            cells.push_back(v.empty() ? "-" : fmtDouble(gmean(v), 2));
        }
        t.row(cells);
    }
    for (const SweepCell &c : r.cells)
        totalSec += c.wallSeconds;
    return "== simulator throughput (committed Mwork/s per cell) ==\n" +
        t.str() +
        strfmt("total cell compute: %.2fs\n", totalSec);
}

namespace {

/** Minimal JSON string escape (names here are plain identifiers). */
std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out + "\"";
}

std::string
jsonNum(double v, int prec = 6)
{
    return strfmt("%.*f", prec, v);
}

} // namespace

std::string
sweepJson(const SweepResult &r, const std::string &bench)
{
    std::string out = "{\n";
    out += "  \"bench\": " + jsonStr(bench) + ",\n";
    out += "  \"title\": " + jsonStr(r.title) + ",\n";
    out += "  \"columns\": [";
    for (std::size_t c = 0; c < r.columns.size(); ++c)
        out += (c ? ", " : "") + jsonStr(r.columns[c]);
    out += "],\n";
    out += strfmt("  \"baseline_column\": %d,\n", r.baselineColumn);
    // Store activity only when a store was attached: store-less
    // reports stay byte-identical to older engines.
    if (r.storeAttached) {
        out += strfmt("  \"checkpoint_store\": {\"hits\": %llu, "
                      "\"misses\": %llu, \"writebacks\": %llu, "
                      "\"corrupt\": %llu, \"evictions\": %llu},\n",
                      static_cast<unsigned long long>(r.storeHits),
                      static_cast<unsigned long long>(r.storeMisses),
                      static_cast<unsigned long long>(r.storeWritebacks),
                      static_cast<unsigned long long>(r.storeCorrupt),
                      static_cast<unsigned long long>(r.storeEvictions));
    }
    // Journal block only when one was attached, and only its
    // resume-invariant total — a resumed run and an uninterrupted run
    // must produce byte-identical reports.
    if (r.journalAttached) {
        out += strfmt("  \"journal\": {\"recorded\": %llu},\n",
                      static_cast<unsigned long long>(r.journalRecorded));
    }
    out += "  \"cells\": [\n";
    for (std::size_t row = 0; row < r.rows.size(); ++row) {
        for (std::size_t col = 0; col < r.columns.size(); ++col) {
            const SweepCell &c = r.at(row, col);
            std::string rec = "    {\"kernel\": " + jsonStr(r.rows[row]) +
                              ", \"suite\": " + jsonStr(r.suites[row]) +
                              ", \"config\": " + jsonStr(r.columns[col]);
            if (c.timed) {
                rec += ", \"ipc\": " + jsonNum(c.stats.ipc());
                rec += ", \"amplification\": " +
                       jsonNum(r.speedup(row, col));
                rec += strfmt(", \"cycles\": %llu, \"work\": %llu",
                              static_cast<unsigned long long>(
                                  c.stats.cycles),
                              static_cast<unsigned long long>(
                                  c.stats.committedWork));
                rec += ", \"dynamic_coverage\": " +
                       jsonNum(c.stats.dynamicCoverage());
                // Sampling metadata only for sampled cells, so full
                // runs stay byte-identical to the pre-sampling engine.
                if (c.sampledRun) {
                    rec += strfmt(", \"sampled\": true, "
                                  "\"intervals\": %u, "
                                  "\"measured_work\": %llu, "
                                  "\"ff_work\": %llu",
                                  c.sampled.intervals,
                                  static_cast<unsigned long long>(
                                      c.sampled.measuredWork),
                                  static_cast<unsigned long long>(
                                      c.sampled.ffWork));
                    rec += ", \"ipc_ci95_rel\": " +
                           jsonNum(c.sampled.ipcRelCi95);
                    // Machine-detectable footprint blindness: emitted
                    // only when a checkpoint jump outran its warm
                    // budget, so consumers can key on its presence.
                    if (c.sampled.footprintWarning) {
                        rec += strfmt(", \"footprint_warning\": true, "
                                      "\"footprint_skipped_lines\": "
                                      "%llu",
                                      static_cast<unsigned long long>(
                                          c.sampled
                                              .footprintSkippedLines));
                    }
                    if (r.storeAttached) {
                        rec += strfmt(", \"ckpt_restores\": %u, "
                                      "\"ckpt_writebacks\": %u",
                                      c.sampled.ckptRestores,
                                      c.sampled.ckptWritebacks);
                    }
                }
                // Critical-path block only when the cell ran the
                // analyzer (--critpath), so clean-config reports stay
                // byte-identical to analyzer-less engines.
                if (c.critpath.present) {
                    const CritPathSummary &cp = c.critpath;
                    rec += strfmt(", \"critpath\": {"
                                  "\"traced_slots\": %llu, "
                                  "\"traced_work\": %llu, "
                                  "\"actual_cycles\": %llu, "
                                  "\"modeled_cycles\": %llu",
                                  static_cast<unsigned long long>(
                                      cp.tracedSlots),
                                  static_cast<unsigned long long>(
                                      cp.tracedWork),
                                  static_cast<unsigned long long>(
                                      cp.actualCycles),
                                  static_cast<unsigned long long>(
                                      cp.modeledCycles));
                    if (cp.traceWrapped)
                        rec += ", \"trace_wrapped\": true";
                    rec += ", \"breakdown\": {";
                    for (int cat = 0; cat < cpCatCount; ++cat) {
                        rec += strfmt("%s\"%s\": %llu", cat ? ", " : "",
                                      cpCatName(
                                          static_cast<CpCat>(cat)),
                                      static_cast<unsigned long long>(
                                          cp.breakdown[cat]));
                    }
                    rec += "}";
                    if (!cp.whatIf.empty()) {
                        rec += ", \"whatif\": " + jsonStr(cp.whatIf);
                        rec += strfmt(", \"whatif_cycles\": %llu",
                                      static_cast<unsigned long long>(
                                          cp.whatIfCycles));
                    }
                    if (!cp.error.empty())
                        rec += ", \"error\": " + jsonStr(cp.error);
                    rec += "}";
                }
                // Throughput only on request: wall-clock is
                // nondeterministic, and default reports must stay
                // byte-comparable run to run (and to older engines).
                if (r.emitThroughput) {
                    rec += ", \"wall_seconds\": " +
                           jsonNum(c.wallSeconds);
                    rec += ", \"work_per_sec\": " +
                           jsonNum(c.workPerSec, 0);
                }
            }
            rec += ", \"coverage\": " + jsonNum(c.staticCoverage);
            rec += strfmt(", \"templates\": %llu, \"text_slots\": %llu",
                          static_cast<unsigned long long>(c.templates),
                          static_cast<unsigned long long>(c.textSlots));
            // Failure-domain fields only when non-default: every cell
            // of a fault-free sweep is Ok with zero retries, and its
            // record must stay byte-identical to older engines.
            if (c.outcome != CellOutcome::Ok) {
                rec += std::string(", \"outcome\": \"") +
                       cellOutcomeName(c.outcome) + "\"";
                if (!c.error.empty())
                    rec += ", \"error\": " + jsonStr(c.error);
            }
            if (c.retries > 0)
                rec += strfmt(", \"retries\": %u", c.retries);
            rec += "}";
            bool last = row + 1 == r.rows.size() &&
                        col + 1 == r.columns.size();
            out += rec + (last ? "\n" : ",\n");
        }
    }
    out += "  ]\n}\n";
    return out;
}

std::string
outcomeSummary(const SweepResult &r)
{
    std::uint64_t byOutcome[4] = {0, 0, 0, 0};
    std::uint64_t retried = 0;
    for (const SweepCell &c : r.cells) {
        ++byOutcome[static_cast<std::size_t>(c.outcome) & 3];
        if (c.retries > 0)
            ++retried;
    }
    std::uint64_t ok = byOutcome[0];
    if (ok == r.cells.size() && retried == 0)
        return "";
    std::string out = strfmt("cell outcomes: %llu ok",
                             static_cast<unsigned long long>(ok));
    for (int o = 1; o < 4; ++o) {
        if (byOutcome[o])
            out += strfmt(", %llu %s",
                          static_cast<unsigned long long>(byOutcome[o]),
                          cellOutcomeName(static_cast<CellOutcome>(o)));
    }
    if (retried)
        out += strfmt(" (%llu retried)",
                      static_cast<unsigned long long>(retried));
    return out;
}

void
serializeSweepCell(const SweepCell &c, SerialWriter &w)
{
#define MG_W(f) w.u64(c.stats.f);
    MG_CORE_STATS_COUNTERS(MG_W)
#undef MG_W
    w.u8(c.timed ? 1 : 0);
    w.f64(c.staticCoverage);
    w.u64(c.templates);
    w.u64(c.textSlots);
    w.u8(c.sampledRun ? 1 : 0);
#define MG_W(f) w.u64(c.sampled.est.f);
    MG_CORE_STATS_COUNTERS(MG_W)
#undef MG_W
    w.u64(c.sampled.totalWork);
    w.u64(c.sampled.prefixWork);
    w.u64(c.sampled.measuredWork);
    w.u64(c.sampled.measuredCycles);
    w.u64(c.sampled.detailedWork);
    w.u64(c.sampled.ffWork);
    w.u32(c.sampled.intervals);
    w.f64(c.sampled.ipcHat);
    w.f64(c.sampled.ipcRelCi95);
    w.u8(c.sampled.exact ? 1 : 0);
    w.u8(c.sampled.footprintWarning ? 1 : 0);
    w.u64(c.sampled.footprintSkippedLines);
    w.u32(c.sampled.ckptRestores);
    w.u32(c.sampled.ckptWritebacks);
    w.f64(c.wallSeconds);
    w.f64(c.workPerSec);
    w.u8(static_cast<std::uint8_t>(c.outcome));
    w.str(c.error);
    w.u32(c.retries);
    // Critical-path fields trail the record. Pre-analyzer journal
    // records are shorter and fail deserialization cleanly, which the
    // journal treats as a miss — the cell just recomputes.
    w.u8(c.critpath.present ? 1 : 0);
    if (c.critpath.present) {
        w.u64(c.critpath.tracedSlots);
        w.u64(c.critpath.tracedWork);
        w.u8(c.critpath.traceWrapped ? 1 : 0);
        w.u64(c.critpath.actualCycles);
        w.u64(c.critpath.modeledCycles);
        for (int cat = 0; cat < cpCatCount; ++cat)
            w.u64(c.critpath.breakdown[cat]);
        w.str(c.critpath.whatIf);
        w.u64(c.critpath.whatIfCycles);
        w.str(c.critpath.error);
    }
}

bool
deserializeSweepCell(SerialReader &r, SweepCell &c)
{
    c = SweepCell();
#define MG_R(f) c.stats.f = r.u64();
    MG_CORE_STATS_COUNTERS(MG_R)
#undef MG_R
    c.timed = r.u8() != 0;
    c.staticCoverage = r.f64();
    c.templates = r.u64();
    c.textSlots = r.u64();
    c.sampledRun = r.u8() != 0;
#define MG_R(f) c.sampled.est.f = r.u64();
    MG_CORE_STATS_COUNTERS(MG_R)
#undef MG_R
    c.sampled.totalWork = r.u64();
    c.sampled.prefixWork = r.u64();
    c.sampled.measuredWork = r.u64();
    c.sampled.measuredCycles = r.u64();
    c.sampled.detailedWork = r.u64();
    c.sampled.ffWork = r.u64();
    c.sampled.intervals = r.u32();
    c.sampled.ipcHat = r.f64();
    c.sampled.ipcRelCi95 = r.f64();
    c.sampled.exact = r.u8() != 0;
    c.sampled.footprintWarning = r.u8() != 0;
    c.sampled.footprintSkippedLines = r.u64();
    c.sampled.ckptRestores = r.u32();
    c.sampled.ckptWritebacks = r.u32();
    c.wallSeconds = r.f64();
    c.workPerSec = r.f64();
    std::uint8_t o = r.u8();
    if (o > 3) {
        r.fail();
        return false;
    }
    c.outcome = static_cast<CellOutcome>(o);
    c.error = r.str();
    c.retries = r.u32();
    c.critpath.present = r.u8() != 0;
    if (c.critpath.present) {
        c.critpath.tracedSlots = r.u64();
        c.critpath.tracedWork = r.u64();
        c.critpath.traceWrapped = r.u8() != 0;
        c.critpath.actualCycles = r.u64();
        c.critpath.modeledCycles = r.u64();
        for (int cat = 0; cat < cpCatCount; ++cat)
            c.critpath.breakdown[cat] = r.u64();
        c.critpath.whatIf = r.str();
        c.critpath.whatIfCycles = r.u64();
        c.critpath.error = r.str();
    }
    return r.ok();
}

std::string
writeSweepJson(const SweepResult &r, const std::string &bench,
               const std::string &path)
{
    // A dry-run plan carries no results; refuse to overwrite a real
    // report with skipped placeholders.
    if (r.planOnly)
        return "";
    std::string file = path.empty() ? "BENCH_" + bench + ".json" : path;
    std::string body = sweepJson(r, bench);
    FILE *f = std::fopen(file.c_str(), "w");
    if (!f) {
        warn("cannot write %s", file.c_str());
        return "";
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return file;
}

} // namespace mg
