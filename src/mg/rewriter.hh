/**
 * @file
 * Binary rewriter: replace each selected mini-graph instance with a
 * handle at its anchor slot.
 *
 * Two layout modes (paper Section 6.2, "Instruction cache effects"):
 *  - NopPad: interior slots become nops, keeping every PC unchanged.
 *    This isolates bandwidth/capacity amplification from code
 *    compression (the paper's default presentation). Pad nops are
 *    squashed at fetch and consume no pipeline bandwidth.
 *  - Compress: interior slots are deleted and all PCs, branch targets,
 *    and symbols are re-linked, shrinking the instruction footprint
 *    (the paper's icache study). Because template branch displacements
 *    are handle-PC-relative, compression rebuilds and re-coalesces the
 *    MGT against the new layout.
 */

#ifndef MG_MG_REWRITER_HH
#define MG_MG_REWRITER_HH

#include "isa/instruction.hh"
#include "mg/select.hh"

namespace mg {

/** A rewritten program together with the MGT that matches its layout. */
struct RewriteResult
{
    Program program;
    MgTable table;
};

/**
 * Produce the nop-padded handle-bearing version of @p prog for @p sel.
 * PCs are preserved, so @p sel.table remains valid for the result.
 *
 * The handle encodes the interface: mg ra=E0, rb=E1, rc=output,
 * imm=MGID. It sits at the instance's anchor slot so a terminal
 * branch's prediction and a memory op's disambiguation keep a stable
 * PC (the handle PC stands in for both, paper Section 4.1).
 */
Program rewriteNopPad(const Program &prog, const Selection &sel);

/**
 * Produce the compressed handle-bearing version of @p prog for @p sel,
 * along with a rebuilt MGT whose branch displacements match the
 * compressed layout.
 *
 * @param prog    original program
 * @param sel     selection made on @p prog
 * @param machine MGT schedule parameters for re-finalizing templates
 */
RewriteResult rewriteCompress(const Program &prog, const Selection &sel,
                              const MgtMachine &machine);

} // namespace mg

#endif // MG_MG_REWRITER_HH
