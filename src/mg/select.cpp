#include "mg/select.hh"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/logging.hh"

namespace mg {

MgTemplate
buildTemplate(const Candidate &cand, const Program &prog)
{
    MgTemplate t;
    t.outIdx = cand.outMember;

    // Map from text index to member position for interior edges.
    std::unordered_map<InsnIdx, int> memberAt;
    for (size_t i = 0; i < cand.members.size(); ++i)
        memberAt[cand.members[i]] = static_cast<int>(i);

    // Interface register -> E slot.
    auto eSlot = [&](RegId r) -> OpndRef {
        for (size_t i = 0; i < cand.inputs.size(); ++i) {
            if (cand.inputs[i] == r)
                return {i == 0 ? OpndKind::E0 : OpndKind::E1, -1};
        }
        panic("register r%d is not an interface input", r);
    };

    // The value each source operand carries: either an interior M value
    // (producer is a member) or an interface E register. We must track
    // intra-graph def chains: the producer member position of each
    // member's source operand.
    // Recompute producers within the member set in program order.
    std::array<int, numArchRegs> lastDef;
    lastDef.fill(-1);

    for (size_t i = 0; i < cand.members.size(); ++i) {
        const Instruction &in = prog.text[cand.members[i]];
        TemplateInsn ti;
        ti.op = in.op;
        ti.imm = in.imm;
        ti.useImm = in.useImm;

        auto refOf = [&](RegId r) -> OpndRef {
            if (r == regNone)
                return {OpndKind::None, -1};
            if (isZeroReg(r))
                return {OpndKind::None, -1};
            int def = lastDef[static_cast<size_t>(r)];
            if (def >= 0)
                return {OpndKind::M, static_cast<std::int8_t>(def)};
            return eSlot(r);
        };

        switch (in.cls()) {
          case InsnClass::IntAlu:
          case InsnClass::IntMult:
            ti.a = refOf(in.ra);
            ti.b = in.useImm ? OpndRef{OpndKind::Imm, -1} : refOf(in.rb);
            break;
          case InsnClass::Load:
            ti.a = refOf(in.rb);               // base
            ti.b = {OpndKind::Imm, -1};        // displacement
            break;
          case InsnClass::Store:
            ti.a = refOf(in.rb);               // base
            ti.b = refOf(in.ra);               // data
            break;
          case InsnClass::CondBranch:
            ti.a = refOf(in.ra);
            ti.b = {OpndKind::Imm, -1};
            // Branch displacement is handle-PC relative so templates
            // coalesce across sites with the same relative target.
            ti.imm = in.imm -
                static_cast<std::int64_t>(Program::pcOf(cand.anchor));
            break;
          default:
            panic("illegal opcode %s inside mini-graph", opName(in.op));
        }

        RegId d = in.dst();
        if (d != regNone && !isZeroReg(d))
            lastDef[static_cast<size_t>(d)] = static_cast<int>(i);

        t.insns.push_back(ti);
    }
    if (cand.output != regNone)
        t.outIsFp = isFpReg(cand.output);
    return t;
}

double
Selection::coverage(const Cfg &cfg, const BlockProfile &prof) const
{
    // Total dynamic instructions = sum over blocks of size * frequency.
    double total = 0.0;
    for (const BasicBlock &b : cfg.blocks())
        total += static_cast<double>(b.size()) *
            static_cast<double>(prof.count(b.first));
    if (total == 0.0)
        return 0.0;
    double removed = 0.0;
    for (const SelectedInstance &si : instances) {
        const BasicBlock &b =
            cfg.blocks()[static_cast<size_t>(si.cand.block)];
        removed += static_cast<double>(si.cand.size() - 1) *
            static_cast<double>(prof.count(b.first));
    }
    return removed / total;
}

namespace {

/** All instances of one coalesced template plus its running weight. */
struct TemplateGroup
{
    MgTemplate tmpl;
    std::vector<Candidate> instances;
    double weight = 0.0;   ///< estimated coverage: sum (n-1)*f
};

/** Group candidates by template identity and weigh them. */
std::map<std::string, TemplateGroup>
groupCandidates(const std::vector<Candidate> &cands, const Cfg &cfg,
                const BlockProfile &prof)
{
    std::map<std::string, TemplateGroup> groups;
    for (const Candidate &c : cands) {
        MgTemplate t = buildTemplate(c, cfg.program());
        std::string k = t.key();
        auto &g = groups[k];
        if (g.instances.empty())
            g.tmpl = std::move(t);
        double f = static_cast<double>(
            prof.count(cfg.blocks()[static_cast<size_t>(c.block)].first));
        g.weight += static_cast<double>(c.size() - 1) * f;
        g.instances.push_back(c);
    }
    return groups;
}

double
instanceWeight(const Candidate &c, const Cfg &cfg, const BlockProfile &prof)
{
    double f = static_cast<double>(
        prof.count(cfg.blocks()[static_cast<size_t>(c.block)].first));
    return static_cast<double>(c.size() - 1) * f;
}

} // namespace

Selection
selectMiniGraphs(const Cfg &cfg, const Liveness &live,
                 const BlockProfile &prof, const SelectionPolicy &policy,
                 const MgtMachine &machine)
{
    std::vector<Candidate> cands = enumerateCandidates(cfg, live, policy);
    auto groups = groupCandidates(cands, cfg, prof);

    // Iterative greedy pick: take the heaviest template, claim its
    // non-conflicting instances, drop conflicting instances everywhere,
    // re-weigh, repeat.
    std::vector<bool> claimed(cfg.program().text.size(), false);
    Selection sel;

    std::vector<TemplateGroup *> list;
    for (auto &[k, g] : groups)
        list.push_back(&g);

    while (static_cast<int>(sel.table.size()) < policy.maxTemplates) {
        // Re-weigh groups against claimed instructions.
        TemplateGroup *best = nullptr;
        for (TemplateGroup *g : list) {
            double w = 0.0;
            for (const Candidate &c : g->instances) {
                bool free = true;
                for (InsnIdx m : c.members) {
                    if (claimed[m]) {
                        free = false;
                        break;
                    }
                }
                if (free)
                    w += instanceWeight(c, cfg, prof);
            }
            g->weight = w;
            if (w > 0.0 && (!best || w > best->weight))
                best = g;
        }
        if (!best)
            break;

        MgTemplate t = best->tmpl;
        t.finalize(machine);
        MgId id = sel.table.add(std::move(t));
        for (const Candidate &c : best->instances) {
            bool free = true;
            for (InsnIdx m : c.members) {
                if (claimed[m]) {
                    free = false;
                    break;
                }
            }
            if (!free)
                continue;
            for (InsnIdx m : c.members)
                claimed[m] = true;
            sel.instances.push_back({c, id});
        }
        best->weight = 0.0;
        best->instances.clear();   // consumed
    }
    return sel;
}

std::vector<Selection>
selectDomainMiniGraphs(const std::vector<const Cfg *> &cfgs,
                       const std::vector<const Liveness *> &lives,
                       const std::vector<const BlockProfile *> &profs,
                       const SelectionPolicy &policy,
                       const MgtMachine &machine)
{
    if (cfgs.size() != lives.size() || cfgs.size() != profs.size())
        fatal("domain selection: mismatched input vectors");
    const size_t np = cfgs.size();

    // Per-program candidate groups, then merge by template identity.
    struct DomainGroup
    {
        MgTemplate tmpl;
        /** per program: instances */
        std::vector<std::vector<Candidate>> instances;
        double weight = 0.0;
    };
    std::map<std::string, DomainGroup> domain;

    for (size_t p = 0; p < np; ++p) {
        auto cands = enumerateCandidates(*cfgs[p], *lives[p], policy);
        auto groups = groupCandidates(cands, *cfgs[p], *profs[p]);
        for (auto &[k, g] : groups) {
            auto &d = domain[k];
            if (d.instances.empty()) {
                d.tmpl = std::move(g.tmpl);
                d.instances.resize(np);
            }
            // Normalize per-program weight by the program's dynamic
            // length so big programs do not drown small ones.
            double total = 0.0;
            for (const BasicBlock &b : cfgs[p]->blocks())
                total += static_cast<double>(b.size()) *
                    static_cast<double>(profs[p]->count(b.first));
            if (total > 0.0)
                d.weight += g.weight / total;
            d.instances[p] = std::move(g.instances);
        }
    }

    // Rank once by cross-suite weight and keep the top maxTemplates.
    std::vector<DomainGroup *> ranked;
    for (auto &[k, d] : domain)
        ranked.push_back(&d);
    std::sort(ranked.begin(), ranked.end(),
              [](const DomainGroup *a, const DomainGroup *b) {
                  return a->weight > b->weight;
              });
    if (static_cast<int>(ranked.size()) > policy.maxTemplates)
        ranked.resize(static_cast<size_t>(policy.maxTemplates));

    // Build per-program selections from the shared winner set. Instances
    // are claimed greedily in ranked order, mirroring the single-program
    // algorithm's conflict resolution.
    std::vector<Selection> out(np);
    std::vector<std::vector<bool>> claimed(np);
    for (size_t p = 0; p < np; ++p)
        claimed[p].assign(cfgs[p]->program().text.size(), false);

    for (DomainGroup *d : ranked) {
        for (size_t p = 0; p < np; ++p) {
            MgId id = mgNone;
            for (const Candidate &c : d->instances[p]) {
                bool free = true;
                for (InsnIdx m : c.members) {
                    if (claimed[p][m]) {
                        free = false;
                        break;
                    }
                }
                if (!free)
                    continue;
                if (id == mgNone) {
                    MgTemplate t = d->tmpl;
                    t.finalize(machine);
                    id = out[p].table.add(std::move(t));
                }
                for (InsnIdx m : c.members)
                    claimed[p][m] = true;
                out[p].instances.push_back({c, id});
            }
        }
    }
    return out;
}

} // namespace mg
