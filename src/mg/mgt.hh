/**
 * @file
 * The mini-graph table (MGT): the on-chip structure that maps handle
 * MGIDs to mini-graph definitions (paper Section 4.1, Figure 2).
 *
 * Logically the MGT is split in two:
 *  - MGHT (header table), read at dispatch: functional unit of the
 *    first instruction (FU0), a reservation bitmap for the units the
 *    later instructions need (FUBMP), and the latency at which the
 *    interface output register is produced (LAT).
 *  - MGST (sequencing table), read during execution: one bank per
 *    execution cycle holding per-instruction control (FU, OP, IM, and
 *    the two operand-select directives B0/B1).
 *
 * Templates are machine-independent; headers and bank schedules are
 * derived for a concrete machine by finalize() (load latency, ALU
 * pipelines, pair-wise collapsing).
 */

#ifndef MG_MG_MGT_HH
#define MG_MG_MGT_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace mg {

/** Where a template-instruction operand comes from. */
enum class OpndKind : std::uint8_t
{
    None,   ///< no operand in this slot
    E0,     ///< first interface input register (handle ra)
    E1,     ///< second interface input register (handle rb)
    M,      ///< interior value produced by template instruction #m
    Imm,    ///< the instruction's immediate
};

/** One operand-select directive (a B0/B1 field of the MGST). */
struct OpndRef
{
    OpndKind kind = OpndKind::None;
    std::int8_t m = -1;   ///< producer index when kind == M

    bool operator==(const OpndRef &) const = default;

    /** MGST mnemonic: E0, E1, M2, IM, or -. */
    std::string str() const;
};

/** One instruction of a mini-graph template. */
struct TemplateInsn
{
    Op op = Op::NOP;
    OpndRef a;            ///< first source slot (base reg for memory ops)
    OpndRef b;            ///< second source slot (store data register)
    std::int64_t imm = 0; ///< literal / displacement (branch displacement
                          ///< is relative to the handle PC)
    bool useImm = false;

    bool operator==(const TemplateInsn &) const = default;
};

/** Functional-unit classes a template instruction can reserve. */
enum class FuKind : std::uint8_t
{
    None,
    IntAlu,
    IntMult,
    FpAlu,
    LoadPort,
    StorePort,
    AluPipe,   ///< entry stage of an ALU pipeline
};

/** @return short mnemonic for @p fu (AP, ALU, LD, ...). */
const char *fuKindName(FuKind fu);

/** Reservation lanes tracked per cycle (every FuKind but None). */
inline constexpr int fuLaneCount = 6;

/** Lane of @p fu (IntAlu=0 ... AluPipe=5); None has no lane. */
inline int
fuLaneIndex(FuKind fu)
{
    return static_cast<int>(fu) - 1;
}

/**
 * A FUBMP packed into per-lane cycle masks: bit (o-1) of @c lane[L]
 * set means the template reserves one unit of lane L in cycle o after
 * issue. Built once at finalize(); the sliding-window scheduler turns
 * a conflict check into one rotate-and-AND per populated lane instead
 * of a per-entry vector scan.
 */
struct PackedFubmp
{
    std::array<std::uint64_t, fuLaneCount> lane{};
    std::uint8_t laneSet = 0;   ///< bit L set = lane[L] is non-empty
    int maxOffset = 0;          ///< largest reserved cycle (0 = none);
                                ///< bits exist only for offsets <= 64
};

/** Pack @p fubmp (index 0 = cycle 1, FuKind::None = no reservation). */
PackedFubmp packFubmp(const std::vector<FuKind> &fubmp);

/** Machine parameters the MGT schedule depends on. */
struct MgtMachine
{
    int loadLat = 2;            ///< load-to-use hit latency
    bool useAluPipes = true;    ///< integer runs execute on ALU pipelines
    bool collapsing = false;    ///< pair-wise collapsing ALU pipelines
    int aluPipeDepth = 4;       ///< stages per ALU pipeline
};

/** Derived MGHT entry. */
struct MgHeader
{
    int lat = 1;              ///< issue-to-output-ready latency
    int totalLat = 1;         ///< issue-to-completion latency
    FuKind fu0 = FuKind::IntAlu;
    /** Units needed in cycles 1..totalLat-1 after issue (index 0 is
     *  cycle 1); FuKind::None means no new reservation that cycle. */
    std::vector<FuKind> fubmp;
    PackedFubmp packed;       ///< fubmp as per-lane cycle masks
    bool hasLoad = false;
    bool hasStore = false;
    bool endsInBranch = false;

    /** Append the paper-style rendering ("-:ALU:ALU") to @p out. */
    void fubmpStr(std::string &out) const;

    /** Paper-style rendering, e.g. "-:ALU:ALU". */
    std::string
    fubmpStr() const
    {
        std::string out;
        fubmpStr(out);
        return out;
    }
};

/** A complete mini-graph template plus its derived schedule. */
struct MgTemplate
{
    std::vector<TemplateInsn> insns;   ///< dataflow (program) order
    int outIdx = -1;                   ///< insn producing the interface
                                       ///< output; -1 when none
    bool outIsFp = false;              ///< output is an fp register

    // Derived by finalize():
    std::vector<int> startCycle;       ///< per-insn issue-relative cycle
    MgHeader hdr;

    int size() const { return static_cast<int>(insns.size()); }
    bool hasMem() const { return memIdx() >= 0; }

    /** Position of the mem op or -1. Cached by finalize(); templates
     *  queried before finalize fall back to the scan.
     *  (Inline: the LSQ and issue paths read it per dynamic handle.) */
    int
    memIdx() const
    {
        return memIdx_ != memIdxUnset ? memIdx_ : scanMemIdx();
    }

    /**
     * Compute the bank schedule and header for machine @p m.
     * Instructions run one per cycle in order; each starts when its
     * predecessor's result is available (loads leave their successor
     * banks empty, Figure 2). With collapsing, consecutive single-
     * cycle ALU pairs share a cycle.
     */
    void finalize(const MgtMachine &m);

    /** Canonical identity string used for template coalescing. */
    std::string key() const;

    /** Paper-style MGST row rendering (Figure 2). */
    std::string mgstStr() const;

  private:
    static constexpr int memIdxUnset = -2;
    int memIdx_ = memIdxUnset;         ///< cached by finalize()
    int scanMemIdx() const;
};

/** The MGT proper: MGID -> template. */
class MgTable
{
  public:
    /** Add @p t (must already be finalized); @return its MGID. */
    MgId add(MgTemplate t);

    /** Template for @p id (inline: one lookup per dynamic handle). */
    const MgTemplate &
    at(MgId id) const
    {
        if (!contains(id))
            badId(id);
        return entries[static_cast<size_t>(id)];
    }
    std::size_t size() const { return entries.size(); }
    bool contains(MgId id) const
    {
        return id >= 0 && static_cast<std::size_t>(id) < entries.size();
    }

    /** Render both MGHT and MGST contents (examples / debugging). */
    std::string str() const;

  private:
    [[noreturn]] void badId(MgId id) const;
    std::vector<MgTemplate> entries;
};

} // namespace mg

#endif // MG_MG_MGT_HH
