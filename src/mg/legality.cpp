#include "mg/legality.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace mg {

const char *
illegalName(Illegal r)
{
    switch (r) {
      case Illegal::None: return "legal";
      case Illegal::BadOpcode: return "bad-opcode";
      case Illegal::NotConnected: return "not-connected";
      case Illegal::TooManyInputs: return "too-many-inputs";
      case Illegal::TooManyOutputs: return "too-many-outputs";
      case Illegal::TooManyMemOps: return "too-many-mem-ops";
      case Illegal::BranchNotTerminal: return "branch-not-terminal";
      case Illegal::InteriorLiveOut: return "interior-live-out";
      case Illegal::AnchorInterference: return "anchor-interference";
      case Illegal::TooBig: return "too-big";
      case Illegal::PolicyExternal: return "policy-externally-serial";
      case Illegal::PolicyInternal: return "policy-internally-serial";
      case Illegal::PolicyReplay: return "policy-interior-load";
      case Illegal::PolicyMemory: return "policy-memory";
    }
    return "?";
}

namespace {

bool
isMember(const std::vector<int> &members, int pos)
{
    return std::binary_search(members.begin(), members.end(), pos);
}

/**
 * Anchor-collapse interference check. Members are notionally moved to
 * the anchor position. For a member m before the anchor, every non-
 * member instruction in (m, anchor] must neither write m's sources
 * (value would change), nor read or write m's destination (would
 * observe the wrong value / be clobbered). Symmetrically for members
 * after the anchor.
 *
 * Memory ordering: when the graph's memory op is the anchor it never
 * moves, but a branch-anchored graph moves its memory op to the
 * branch position. Without alias analysis we must conservatively
 * reject a moved load crossing any non-member store, and a moved
 * store crossing any non-member memory operation.
 */
bool
collapseInterferes(const BlockDataflow &df, const std::vector<int> &members,
                   int anchorPos)
{
    for (int m : members) {
        if (m == anchorPos)
            continue;
        const Instruction &mi = df.insn(m);
        RegSet msrcs = Liveness::uses(mi);
        RegSet mdefs = Liveness::defs(mi);
        int lo = std::min(m, anchorPos);
        int hi = std::max(m, anchorPos);
        for (int x = lo; x <= hi; ++x) {
            if (x == m || isMember(members, x))
                continue;
            const Instruction &xi = df.insn(x);
            // Moved memory ops must not reorder with other memory ops.
            if (mi.isLoad() && xi.isStore())
                return true;
            if (mi.isStore() && xi.isMem())
                return true;
            RegSet xdefs = Liveness::defs(xi);
            RegSet xuses = Liveness::uses(xi);
            if (m < anchorPos) {
                // m moves down past x: x must not redefine m's inputs,
                // and must not read or write m's output.
                if ((xdefs & msrcs).any())
                    return true;
                if ((xuses & mdefs).any() || (xdefs & mdefs).any())
                    return true;
            } else {
                // m moves up past x: m must not read values x defines,
                // and x must not read or write what m writes... which is
                // the same condition from the other side.
                if ((xdefs & msrcs).any())
                    return true;
                if ((xuses & mdefs).any() || (xdefs & mdefs).any())
                    return true;
            }
        }
    }
    return false;
}

} // namespace

Illegal
checkCandidate(const BlockDataflow &df, const Liveness &live, int block,
               const std::vector<int> &members,
               const SelectionPolicy &policy, Candidate *out)
{
    const int n = static_cast<int>(members.size());
    if (n < 2 || n > std::min(policy.maxSize, mgMaxSize))
        return Illegal::TooBig;

    // --- Composition ---------------------------------------------------
    int memCount = 0;
    int memberMemPos = -1;
    int branchPos = -1;
    for (int i = 0; i < n; ++i) {
        int pos = members[static_cast<size_t>(i)];
        const Instruction &in = df.insn(pos);
        if (isMgAluOp(in.op)) {
            if (in.op == Op::CMOVEQ || in.op == Op::CMOVNE)
                return Illegal::BadOpcode;
            continue;
        }
        if (in.isMem()) {
            if (++memCount > 1)
                return Illegal::TooManyMemOps;
            memberMemPos = pos;
            continue;
        }
        if (in.isCondBranch()) {
            if (i != n - 1 || pos != df.size() - 1)
                return Illegal::BranchNotTerminal;
            branchPos = pos;
            continue;
        }
        return Illegal::BadOpcode;
    }
    if (memCount > 0 && !policy.allowMemory)
        return Illegal::PolicyMemory;

    // --- Connectivity ---------------------------------------------------
    {
        std::vector<int> stack = {members[0]};
        std::set<int> seen = {members[0]};
        while (!stack.empty()) {
            int cur = stack.back();
            stack.pop_back();
            auto push = [&](int x) {
                if (x >= 0 && isMember(members, x) && seen.insert(x).second)
                    stack.push_back(x);
            };
            for (int s = 0; s < 2; ++s)
                push(df.producer(cur, s));
            for (int c : df.consumers(cur))
                push(c);
        }
        if (static_cast<int>(seen.size()) != n)
            return Illegal::NotConnected;
    }

    // --- Interface: inputs ----------------------------------------------
    // External inputs: source operands whose producer is outside the
    // member set (block-external or a non-member earlier instruction).
    std::vector<RegId> inputs;
    bool firstReadsAll = true;
    for (int i = 0; i < n; ++i) {
        int pos = members[static_cast<size_t>(i)];
        const Instruction &in = df.insn(pos);
        for (int s = 0; s < 2; ++s) {
            RegId r = in.src(s);
            if (r == regNone || isZeroReg(r))
                continue;
            int prod = df.producer(pos, s);
            if (prod >= 0 && isMember(members, prod))
                continue;   // interior edge
            if (std::find(inputs.begin(), inputs.end(), r) == inputs.end())
            {
                inputs.push_back(r);
                if (i != 0)
                    firstReadsAll = false;
            }
        }
    }
    if (static_cast<int>(inputs.size()) > 2)
        return Illegal::TooManyInputs;

    // --- Interface: outputs / interior escape ---------------------------
    // A member's value escapes when a non-member consumer reads it, or
    // when its register is live-out of the block and not redefined later
    // in the block.
    RegId output = regNone;
    int outMemberPos = -1;
    const RegSet &liveOut = live.liveOut(block);
    for (int i = 0; i < n; ++i) {
        int pos = members[static_cast<size_t>(i)];
        const Instruction &in = df.insn(pos);
        RegId d = in.dst();
        if (d == regNone || isZeroReg(d))
            continue;
        bool escapes = false;
        for (int c : df.consumers(pos)) {
            if (!isMember(members, c)) {
                escapes = true;
                break;
            }
        }
        if (!escapes && df.redefinedAt(pos) < 0 &&
            liveOut.test(static_cast<size_t>(d)))
            escapes = true;
        if (escapes) {
            if (output != regNone)
                return Illegal::TooManyOutputs;
            output = d;
            outMemberPos = pos;
        }
    }
    // Interior values whose register is redefined later are fine; but an
    // interior value that is BOTH consumed inside and escapes was caught
    // above (it became the output). A second escaping value is illegal.
    // One more case: an interior member whose dst is never read at all
    // but is live-out was handled by the liveOut test.

    // --- Anchor ----------------------------------------------------------
    int anchorPos;
    if (branchPos >= 0)
        anchorPos = branchPos;
    else if (memberMemPos >= 0)
        anchorPos = memberMemPos;
    else
        anchorPos = members[static_cast<size_t>(n - 1)];

    if (collapseInterferes(df, members, anchorPos))
        return Illegal::AnchorInterference;

    // --- Serialization classification (policy filters) -------------------
    // Internal serialization: the members do not form one dependence
    // chain, i.e. some member (other than the first) has no producer
    // among the earlier members.
    bool chain = true;
    for (int i = 1; i < n; ++i) {
        int pos = members[static_cast<size_t>(i)];
        bool fed = false;
        for (int s = 0; s < 2; ++s) {
            int prod = df.producer(pos, s);
            if (prod >= 0 && isMember(members, prod))
                fed = true;
        }
        if (!fed) {
            chain = false;
            break;
        }
    }
    bool internallySerial = !chain;
    bool externallySerial = !firstReadsAll;
    bool interiorLoad = false;
    for (int i = 0; i + 1 < n; ++i) {
        if (df.insn(members[static_cast<size_t>(i)]).isLoad())
            interiorLoad = true;
    }

    if (internallySerial && !policy.allowInternallySerial)
        return Illegal::PolicyInternal;
    if (externallySerial && !policy.allowExternallySerial)
        return Illegal::PolicyExternal;
    if (interiorLoad && !policy.allowInteriorLoads)
        return Illegal::PolicyReplay;

    // --- Fill in the candidate -------------------------------------------
    if (out) {
        out->block = block;
        out->members.clear();
        for (int pos : members)
            out->members.push_back(df.block().first +
                                   static_cast<InsnIdx>(pos));
        out->inputs = inputs;
        out->output = output;
        out->outMember = -1;
        for (int i = 0; i < n; ++i) {
            if (members[static_cast<size_t>(i)] == outMemberPos)
                out->outMember = i;
        }
        out->anchor = df.block().first + static_cast<InsnIdx>(anchorPos);
        out->hasLoad = memberMemPos >= 0 && df.insn(memberMemPos).isLoad();
        out->hasStore = memberMemPos >= 0 && df.insn(memberMemPos).isStore();
        out->endsInBranch = branchPos >= 0;
        out->memMember = -1;
        for (int i = 0; i < n; ++i) {
            if (members[static_cast<size_t>(i)] == memberMemPos)
                out->memMember = i;
        }
        out->externallySerial = externallySerial;
        out->internallySerial = internallySerial;
        out->interiorLoad = interiorLoad;
    }
    return Illegal::None;
}

} // namespace mg
