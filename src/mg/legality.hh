/**
 * @file
 * Mini-graph legality: interface, composition, and collapse checks.
 *
 * A member set is legal when (paper Sections 3, 3.1, 3.2):
 *  - every member is a collapsible opcode (single-cycle integer ALU op,
 *    optionally one load or store, optionally one terminal conditional
 *    branch); no multiplies, fp ops, calls, or indirect jumps;
 *  - the dataflow graph over the members is connected;
 *  - at most two distinct external register inputs (zero registers and
 *    immediates do not count);
 *  - at most one externally observable register output; every other
 *    value produced inside is dead outside the graph (interior values
 *    never get physical registers);
 *  - at most one memory operation;
 *  - a branch may only be the last member and must be the block
 *    terminator;
 *  - collapsing every member to the anchor position (branch, else
 *    memory op, else last member) does not violate any register or
 *    memory dependence in the displaced range.
 */

#ifndef MG_MG_LEGALITY_HH
#define MG_MG_LEGALITY_HH

#include <optional>
#include <vector>

#include "cfg/liveness.hh"
#include "mg/enumerate.hh"
#include "mg/minigraph.hh"

namespace mg {

/** Why a candidate was rejected (exposed for tests and diagnostics). */
enum class Illegal
{
    None,            ///< legal
    BadOpcode,       ///< member not collapsible
    NotConnected,
    TooManyInputs,
    TooManyOutputs,
    TooManyMemOps,
    BranchNotTerminal,
    InteriorLiveOut, ///< an interior value escapes the graph
    AnchorInterference,
    TooBig,
    PolicyExternal,  ///< rejected by allowExternallySerial = false
    PolicyInternal,  ///< rejected by allowInternallySerial = false
    PolicyReplay,    ///< rejected by allowInteriorLoads = false
    PolicyMemory,    ///< rejected by allowMemory = false
};

/** @return printable name for @p r. */
const char *illegalName(Illegal r);

/**
 * Run the full legality screen on the member set @p members (ascending
 * block-relative positions) of @p df's block.
 *
 * @param df      block dataflow facts
 * @param live    liveness (for interior-value escape analysis)
 * @param members ascending block-relative member positions
 * @param policy  structural limits
 * @param out     on success, the completed candidate
 * @return Illegal::None and fill @p out, or the rejection reason
 */
Illegal checkCandidate(const BlockDataflow &df, const Liveness &live,
                       int block, const std::vector<int> &members,
                       const SelectionPolicy &policy, Candidate *out);

} // namespace mg

#endif // MG_MG_LEGALITY_HH
