#include "mg/rewriter.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace mg {

namespace {

Instruction
makeHandle(const Candidate &c, MgId id)
{
    Instruction h;
    h.op = Op::MG;
    h.ra = c.inputs.size() > 0 ? c.inputs[0] : regZero;
    h.rb = c.inputs.size() > 1 ? c.inputs[1] : regZero;
    h.rc = c.output != regNone ? c.output : regZero;
    h.imm = id;
    return h;
}

} // namespace

Program
rewriteNopPad(const Program &prog, const Selection &sel)
{
    Program out;
    out.data = prog.data;
    out.text = prog.text;
    out.symbols = prog.symbols;
    out.entry = prog.entry;

    for (const SelectedInstance &si : sel.instances) {
        const Candidate &c = si.cand;
        for (InsnIdx m : c.members) {
            if (m == c.anchor)
                out.text[m] = makeHandle(c, si.mgid);
            else
                out.text[m] = Instruction{};  // nop pad
        }
    }
    return out;
}

RewriteResult
rewriteCompress(const Program &prog, const Selection &sel,
                const MgtMachine &machine)
{
    // Mark interior slots (deleted) and remember each anchor's instance.
    std::vector<bool> interior(prog.text.size(), false);
    std::map<InsnIdx, const SelectedInstance *> anchorOf;
    for (const SelectedInstance &si : sel.instances) {
        for (InsnIdx m : si.cand.members) {
            if (m != si.cand.anchor)
                interior[m] = true;
        }
        anchorOf[si.cand.anchor] = &si;
    }

    // Compute the compacted index of every surviving slot.
    std::vector<InsnIdx> newIdx(prog.text.size());
    InsnIdx next = 0;
    for (size_t i = 0; i < prog.text.size(); ++i) {
        newIdx[i] = next;
        if (!interior[i])
            ++next;
    }
    auto relink = [&](Addr a) -> Addr {
        if (a < textBase ||
            (a - textBase) / insnBytes >= prog.text.size())
            return a;   // not a text address
        auto idx = static_cast<InsnIdx>((a - textBase) / insnBytes);
        return Program::pcOf(newIdx[idx]);
    };

    RewriteResult out;
    out.program.data = prog.data;
    // Result is order-independent: no output or serialization here.
    // mglint:allow(unordered-iter): map-to-map relink, order-free
    for (const auto &[name, a] : prog.symbols)
        out.program.symbols[name] = relink(a);
    out.program.entry = relink(prog.entry);

    // Rebuild templates with compressed-layout branch displacements and
    // re-coalesce (instances whose displacement diverges under the new
    // layout split into separate MGT entries).
    std::map<std::string, MgId> ids;
    for (size_t i = 0; i < prog.text.size(); ++i) {
        if (interior[i])
            continue;
        auto it = anchorOf.find(static_cast<InsnIdx>(i));
        if (it == anchorOf.end()) {
            Instruction in = prog.text[i];
            if (in.cls() == InsnClass::CondBranch ||
                in.cls() == InsnClass::UncondBranch)
                in.imm = static_cast<std::int64_t>(
                    relink(static_cast<Addr>(in.imm)));
            if (in.op == Op::LDA && in.useImm)
                in.imm = static_cast<std::int64_t>(
                    relink(static_cast<Addr>(in.imm)));
            out.program.text.push_back(in);
            continue;
        }
        const SelectedInstance &si = *it->second;
        MgTemplate t = buildTemplate(si.cand, prog);
        // Recompute a terminal branch displacement for the new layout.
        if (!t.insns.empty() && isCondBranchOp(t.insns.back().op)) {
            const Instruction &orig =
                prog.text[si.cand.members.back()];
            Addr newTarget = relink(static_cast<Addr>(orig.imm));
            Addr newAnchor = Program::pcOf(newIdx[si.cand.anchor]);
            t.insns.back().imm = static_cast<std::int64_t>(newTarget) -
                static_cast<std::int64_t>(newAnchor);
        }
        std::string key = t.key();
        MgId id;
        auto idIt = ids.find(key);
        if (idIt != ids.end()) {
            id = idIt->second;
        } else {
            t.finalize(machine);
            id = out.table.add(std::move(t));
            ids.emplace(key, id);
        }
        out.program.text.push_back(makeHandle(si.cand, id));
    }
    return out;
}

} // namespace mg
