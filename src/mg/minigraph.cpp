#include "mg/minigraph.hh"

#include "common/logging.hh"

namespace mg {

std::string
candidateStr(const Candidate &c, const Program &prog)
{
    std::string out = strfmt("block %d {", c.block);
    for (size_t i = 0; i < c.members.size(); ++i) {
        out += prog.text[c.members[i]].disasm();
        if (i + 1 < c.members.size())
            out += "; ";
    }
    out += "}";
    return out;
}

} // namespace mg
