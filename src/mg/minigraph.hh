/**
 * @file
 * The mini-graph intermediate representation.
 *
 * A candidate is a set of instructions inside one basic block that has
 * the interface of a singleton instruction: at most two register
 * inputs, at most one register output, at most one memory operation,
 * and at most one control transfer, which must be terminal (paper
 * Section 3). Candidates are found by enumeration (enumerate.hh),
 * vetted by legality checks (legality.hh), picked by greedy selection
 * (select.hh), compiled to MGT templates (mgt.hh), and planted into the
 * binary as handles (rewriter.hh).
 */

#ifndef MG_MG_MINIGRAPH_HH
#define MG_MG_MINIGRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/basic_block.hh"
#include "cfg/liveness.hh"

namespace mg {

/** Maximum instructions a mini-graph may contain (paper max is 8). */
constexpr int mgMaxSize = 8;

/**
 * One mini-graph candidate: member instruction indexes (program order)
 * within a single basic block, plus its derived interface.
 */
struct Candidate
{
    int block = -1;                    ///< owning basic block id
    std::vector<InsnIdx> members;      ///< ascending text indexes

    // Interface, derived during enumeration/legality analysis.
    std::vector<RegId> inputs;         ///< external register inputs (<=2)
    RegId output = regNone;            ///< external register output
    int outMember = -1;                ///< member position producing output
    InsnIdx anchor = 0;                ///< collapse-point text index
    bool hasLoad = false;
    bool hasStore = false;
    bool endsInBranch = false;
    int memMember = -1;                ///< member position of the mem op

    int size() const { return static_cast<int>(members.size()); }

    /**
     * True when the first member instruction reads every external
     * input; otherwise the handle can be spuriously delayed waiting
     * for inputs only later members need (external serialization,
     * paper Section 4.1).
     */
    bool externallySerial = false;

    /**
     * True when the members do not form a single dependence chain;
     * collapsed execution then adds latency over singleton execution
     * (internal serialization).
     */
    bool internallySerial = false;

    /** True when a load is in any position other than the last. */
    bool interiorLoad = false;
};

/**
 * Selection policy knobs (paper Section 6.2 studies each).
 */
struct SelectionPolicy
{
    int maxSize = 4;                   ///< max instructions per mini-graph
    int maxTemplates = 512;            ///< MGT entry budget
    bool allowMemory = true;           ///< integer-memory mini-graphs
    bool allowExternallySerial = true;
    bool allowInternallySerial = true;
    bool allowInteriorLoads = true;    ///< loads before the last position
};

/** Pretty-print a candidate against its program. */
std::string candidateStr(const Candidate &c, const Program &prog);

} // namespace mg

#endif // MG_MG_MINIGRAPH_HH
