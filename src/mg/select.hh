/**
 * @file
 * Greedy mini-graph selection (paper Section 3.2).
 *
 * Candidates are grouped into templates (identical dataflow and
 * immediates coalesce into one MGT entry), sorted by estimated
 * coverage (n-1)*f where f sums the profile frequencies of all of a
 * template's static instances, and picked greedily. Selecting a
 * template claims its instances' instructions; instances that lose an
 * instruction to an earlier pick are dropped and their template's
 * weight is adjusted before the next iteration. Selection stops when
 * the candidate list is exhausted or the MGT entry budget is reached.
 */

#ifndef MG_MG_SELECT_HH
#define MG_MG_SELECT_HH

#include <cstdint>
#include <vector>

#include "cfg/profile.hh"
#include "mg/legality.hh"
#include "mg/mgt.hh"
#include "mg/minigraph.hh"

namespace mg {

/** One selected static instance of a template. */
struct SelectedInstance
{
    Candidate cand;
    MgId mgid = mgNone;
};

/** The complete result of a selection pass. */
struct Selection
{
    MgTable table;                          ///< finalized templates
    std::vector<SelectedInstance> instances;

    /**
     * Dynamic coverage of the selection against @p prof: the fraction
     * of dynamic instructions removed from the pipeline, i.e.
     * sum over instances of (n-1)*f divided by total dynamic
     * instructions.
     */
    double coverage(const Cfg &cfg, const BlockProfile &prof) const;
};

/**
 * Build a template (MGST program) from a concrete candidate.
 * Machine-independent; the caller finalizes it for a machine.
 */
MgTemplate buildTemplate(const Candidate &cand, const Program &prog);

/**
 * Run enumeration + greedy selection.
 *
 * @param cfg     the program's CFG
 * @param live    liveness for the same CFG
 * @param prof    basic-block frequency profile
 * @param policy  structural and policy limits
 * @param machine MGT schedule parameters
 * @return selected templates and instances
 */
Selection selectMiniGraphs(const Cfg &cfg, const Liveness &live,
                           const BlockProfile &prof,
                           const SelectionPolicy &policy,
                           const MgtMachine &machine);

/**
 * Domain-specific selection: one shared MGT for several programs
 * (paper Figure 5 bottom). Enumerates per program, coalesces templates
 * across programs by identity, ranks by summed coverage, then selects
 * instances per program from the shared winner set.
 *
 * @param cfgs     one CFG per program
 * @param lives    matching liveness analyses
 * @param profs    matching profiles
 * @param policy   structural limits
 * @param machine  MGT schedule parameters
 * @return per-program selections that share template identities
 */
std::vector<Selection> selectDomainMiniGraphs(
    const std::vector<const Cfg *> &cfgs,
    const std::vector<const Liveness *> &lives,
    const std::vector<const BlockProfile *> &profs,
    const SelectionPolicy &policy, const MgtMachine &machine);

} // namespace mg

#endif // MG_MG_SELECT_HH
