#include "mg/enumerate.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "mg/legality.hh"

namespace mg {

BlockDataflow::BlockDataflow(const Program &p, const BasicBlock &b)
    : prog(p), blk(b)
{
    const int n = static_cast<int>(blk.size());
    producers.assign(static_cast<size_t>(n), {-1, -1});
    consumers_.assign(static_cast<size_t>(n), {});
    redef.assign(static_cast<size_t>(n), -1);
    defs.assign(static_cast<size_t>(n), regNone);

    // lastDef[r] = block position of the most recent writer of r.
    std::array<int, numArchRegs> lastDef;
    lastDef.fill(-1);

    for (int pos = 0; pos < n; ++pos) {
        const Instruction &in = insn(pos);
        for (int s = 0; s < 2; ++s) {
            RegId r = in.src(s);
            if (r == regNone || isZeroReg(r))
                continue;
            int def = lastDef[static_cast<size_t>(r)];
            producers[static_cast<size_t>(pos)][static_cast<size_t>(s)] =
                def;
            if (def >= 0)
                consumers_[static_cast<size_t>(def)].push_back(pos);
        }
        RegId d = in.dst();
        if (d != regNone && !isZeroReg(d)) {
            int prev = lastDef[static_cast<size_t>(d)];
            if (prev >= 0)
                redef[static_cast<size_t>(prev)] = pos;
            lastDef[static_cast<size_t>(d)] = pos;
            defs[static_cast<size_t>(pos)] = d;
        }
    }
}

int
BlockDataflow::producer(int pos, int srcIdx) const
{
    return producers[static_cast<size_t>(pos)][static_cast<size_t>(srcIdx)];
}

const std::vector<int> &
BlockDataflow::consumers(int pos) const
{
    return consumers_[static_cast<size_t>(pos)];
}

int
BlockDataflow::redefinedAt(int pos) const
{
    return redef[static_cast<size_t>(pos)];
}

namespace {

/** Opcode may appear anywhere in a mini-graph body. */
bool
memberEligible(const Instruction &in, int pos, const BlockDataflow &df)
{
    if (isMgAluOp(in.op)) {
        // cmov reads three values (ra, rb, old rc); treating it as a
        // member would need a third input slot, so exclude it.
        return in.op != Op::CMOVEQ && in.op != Op::CMOVNE;
    }
    if (in.isMem())
        return true;
    if (in.isCondBranch()) {
        // Branches must terminate the block (and thus the graph).
        return pos == df.size() - 1;
    }
    return false;
}

/**
 * Recursive extension enumeration: grow connected subgraphs one node
 * at a time, only adding nodes with a higher position than the seed to
 * avoid duplicates, and emit every legal set of size >= 2.
 */
class Enumerator
{
  public:
    Enumerator(const BlockDataflow &df, const Liveness &live, int block,
               const SelectionPolicy &policy,
               std::vector<Candidate> &out)
        : df(df), live(live), block(block), policy(policy), out(out)
    {
        eligible.resize(static_cast<size_t>(df.size()));
        for (int i = 0; i < df.size(); ++i)
            eligible[static_cast<size_t>(i)] =
                memberEligible(df.insn(i), i, df);
    }

    void
    run()
    {
        for (int seed = 0; seed < df.size(); ++seed) {
            if (!eligible[static_cast<size_t>(seed)])
                continue;
            current.assign(1, seed);
            inSet.assign(static_cast<size_t>(df.size()), false);
            inSet[static_cast<size_t>(seed)] = true;
            extend(seed);
        }
    }

  private:
    const BlockDataflow &df;
    const Liveness &live;
    int block;
    const SelectionPolicy &policy;
    std::vector<Candidate> &out;
    std::vector<bool> eligible;
    std::vector<int> current;
    std::vector<bool> inSet;
    std::set<std::vector<int>> seen;

    /** Dataflow neighbours of @p pos (producers and consumers). */
    void
    neighbours(int pos, std::vector<int> &nbr) const
    {
        for (int s = 0; s < 2; ++s) {
            int p = df.producer(pos, s);
            if (p >= 0)
                nbr.push_back(p);
        }
        for (int c : df.consumers(pos))
            nbr.push_back(c);
    }

    void
    extend(int seed)
    {
        if (static_cast<int>(current.size()) >= 2)
            emit();
        if (static_cast<int>(current.size()) >=
            std::min(policy.maxSize, mgMaxSize))
            return;

        // Frontier: eligible dataflow neighbours of the current set with
        // position > seed (canonical order kills duplicates).
        std::vector<int> frontier;
        for (int m : current) {
            std::vector<int> nbr;
            neighbours(m, nbr);
            for (int x : nbr) {
                if (x > seed && !inSet[static_cast<size_t>(x)] &&
                    eligible[static_cast<size_t>(x)])
                    frontier.push_back(x);
            }
        }
        std::sort(frontier.begin(), frontier.end());
        frontier.erase(std::unique(frontier.begin(), frontier.end()),
                       frontier.end());

        for (int x : frontier) {
            current.push_back(x);
            inSet[static_cast<size_t>(x)] = true;
            extend(seed);
            inSet[static_cast<size_t>(x)] = false;
            current.pop_back();
        }
    }

    void
    emit()
    {
        std::vector<int> sorted(current);
        std::sort(sorted.begin(), sorted.end());
        if (!seen.insert(sorted).second)
            return;
        Candidate cand;
        if (checkCandidate(df, live, block, sorted, policy, &cand) ==
            Illegal::None)
            out.push_back(std::move(cand));
    }
};

} // namespace

std::vector<Candidate>
enumerateCandidates(const Cfg &cfg, const Liveness &live,
                    const SelectionPolicy &policy)
{
    std::vector<Candidate> out;
    for (size_t b = 0; b < cfg.blocks().size(); ++b) {
        const BasicBlock &blk = cfg.blocks()[b];
        if (blk.size() < 2)
            continue;
        BlockDataflow df(cfg.program(), blk);
        Enumerator e(df, live, static_cast<int>(b), policy, out);
        e.run();
    }
    return out;
}

} // namespace mg
