/**
 * @file
 * Candidate enumeration: all legal mini-graphs of each basic block.
 *
 * Enumeration grows connected dataflow subgraphs by extension, which is
 * exponential in the worst case but cheap in practice because blocks
 * are small (paper Section 3.2). Every enumerated candidate has already
 * passed the full legality screen.
 */

#ifndef MG_MG_ENUMERATE_HH
#define MG_MG_ENUMERATE_HH

#include <vector>

#include "cfg/basic_block.hh"
#include "cfg/liveness.hh"
#include "mg/minigraph.hh"

namespace mg {

/**
 * Dataflow facts for one basic block, shared by enumeration and
 * legality: intra-block def-use chains for each instruction operand.
 */
class BlockDataflow
{
  public:
    BlockDataflow(const Program &prog, const BasicBlock &blk);

    /**
     * Producer of source operand @p srcIdx of the instruction at
     * block-relative position @p pos, as a block-relative position;
     * -1 when the value is block-external (or a zero register).
     */
    int producer(int pos, int srcIdx) const;

    /** Block-relative consumers of the value defined at @p pos. */
    const std::vector<int> &consumers(int pos) const;

    /**
     * True when the value defined at @p pos is overwritten later in the
     * block (by the instruction at the returned position); -1 if not.
     */
    int redefinedAt(int pos) const;

    int size() const { return static_cast<int>(defs.size()); }
    const Program &program() const { return prog; }
    const BasicBlock &block() const { return blk; }

    const Instruction &
    insn(int pos) const
    {
        return prog.text[blk.first + static_cast<InsnIdx>(pos)];
    }

  private:
    const Program &prog;
    const BasicBlock &blk;
    std::vector<std::array<int, 2>> producers;  ///< per pos, per src slot
    std::vector<std::vector<int>> consumers_;
    std::vector<int> redef;
    std::vector<RegId> defs;
};

/**
 * Enumerate every legal candidate of every block of @p cfg.
 *
 * @param cfg      control-flow graph
 * @param live     block liveness
 * @param policy   structural limits (size, memory, serialization)
 * @return all candidates, grouped in no particular order
 */
std::vector<Candidate> enumerateCandidates(const Cfg &cfg,
                                           const Liveness &live,
                                           const SelectionPolicy &policy);

} // namespace mg

#endif // MG_MG_ENUMERATE_HH
