#include "mg/mgt.hh"

#include "common/logging.hh"

namespace mg {

const char *
fuKindName(FuKind fu)
{
    switch (fu) {
      case FuKind::None: return "-";
      case FuKind::IntAlu: return "ALU";
      case FuKind::IntMult: return "MUL";
      case FuKind::FpAlu: return "FP";
      case FuKind::LoadPort: return "LD";
      case FuKind::StorePort: return "ST";
      case FuKind::AluPipe: return "AP";
    }
    return "?";
}

std::string
OpndRef::str() const
{
    switch (kind) {
      case OpndKind::None: return "-";
      case OpndKind::E0: return "E0";
      case OpndKind::E1: return "E1";
      case OpndKind::M: return strfmt("M%d", m);
      case OpndKind::Imm: return "IM";
    }
    return "?";
}

PackedFubmp
packFubmp(const std::vector<FuKind> &fubmp)
{
    PackedFubmp p;
    for (size_t i = 0; i < fubmp.size(); ++i) {
        FuKind fu = fubmp[i];
        if (fu == FuKind::None)
            continue;
        int offset = static_cast<int>(i) + 1;   // FUBMP starts at cycle 1
        if (offset > p.maxOffset)
            p.maxOffset = offset;
        if (offset > 64)
            continue;   // beyond any window depth: maxOffset alone
                        // makes the conflict check reject it
        int l = fuLaneIndex(fu);
        p.lane[static_cast<size_t>(l)] |= 1ull << (offset - 1);
        p.laneSet |= static_cast<std::uint8_t>(1u << l);
    }
    return p;
}

void
MgHeader::fubmpStr(std::string &out) const
{
    if (fubmp.empty()) {
        out += '-';
        return;
    }
    // Worst case per entry: three-char mnemonic plus a separator.
    out.reserve(out.size() + 4 * fubmp.size());
    for (size_t i = 0; i < fubmp.size(); ++i) {
        out += fuKindName(fubmp[i]);
        if (i + 1 < fubmp.size())
            out += ':';
    }
}

int
MgTemplate::scanMemIdx() const
{
    for (size_t i = 0; i < insns.size(); ++i) {
        if (isLoadOp(insns[i].op) || isStoreOp(insns[i].op))
            return static_cast<int>(i);
    }
    return -1;
}

namespace {

/** Single-cycle ALU-pipeline-eligible op (includes the terminal branch,
 *  which executes on the pipeline's final control stage, Figure 2). */
bool
apEligible(Op op)
{
    return isMgAluOp(op) || isCondBranchOp(op);
}

/** Occupancy in banks of one template instruction. */
int
duration(Op op, int load_lat)
{
    if (isLoadOp(op))
        return load_lat;
    if (opClass(op) == InsnClass::IntMult)
        return opLatency(op);
    return 1;
}

} // namespace

void
MgTemplate::finalize(const MgtMachine &m)
{
    const int n = size();
    memIdx_ = scanMemIdx();
    startCycle.assign(static_cast<size_t>(n), 0);

    // Identify contiguous AP-eligible segments (broken by memory ops and
    // multiplies) and cap them at the pipeline depth.
    std::vector<int> segStart(static_cast<size_t>(n), -1);
    if (m.useAluPipes) {
        int cur = -1;
        int len = 0;
        int capacity = m.collapsing ? m.aluPipeDepth * 2 : m.aluPipeDepth;
        for (int i = 0; i < n; ++i) {
            if (apEligible(insns[static_cast<size_t>(i)].op)) {
                if (cur < 0 || len >= capacity) {
                    cur = i;
                    len = 0;
                }
                segStart[static_cast<size_t>(i)] = cur;
                ++len;
            } else {
                cur = -1;
                len = 0;
            }
        }
    }

    // Bank schedule: one instruction per cycle in order; loads leave
    // their following banks empty. With collapsing, a pair of adjacent
    // AP-segment instructions shares a cycle.
    int cycle = 0;
    bool prevCollapsed = false;
    for (int i = 0; i < n; ++i) {
        if (i > 0) {
            const TemplateInsn &prev = insns[static_cast<size_t>(i - 1)];
            bool sameSeg = m.collapsing &&
                segStart[static_cast<size_t>(i)] >= 0 &&
                segStart[static_cast<size_t>(i)] ==
                    segStart[static_cast<size_t>(i - 1)];
            if (sameSeg && !prevCollapsed) {
                // Collapse with predecessor: share its cycle.
                prevCollapsed = true;
                startCycle[static_cast<size_t>(i)] =
                    startCycle[static_cast<size_t>(i - 1)];
                continue;
            }
            prevCollapsed = false;
            cycle = startCycle[static_cast<size_t>(i - 1)] +
                duration(prev.op, m.loadLat);
        }
        startCycle[static_cast<size_t>(i)] = cycle;
    }

    const TemplateInsn &last = insns[static_cast<size_t>(n - 1)];
    hdr.totalLat = startCycle[static_cast<size_t>(n - 1)] +
        duration(last.op, m.loadLat);
    if (outIdx >= 0) {
        hdr.lat = startCycle[static_cast<size_t>(outIdx)] +
            duration(insns[static_cast<size_t>(outIdx)].op, m.loadLat);
    } else {
        hdr.lat = hdr.totalLat;
    }

    // FU reservations. A segment reserves one ALU-pipeline entry at its
    // start and then flows down the pipe; everything else reserves its
    // unit at its own start cycle.
    auto fuOf = [&](int i) -> FuKind {
        const TemplateInsn &in = insns[static_cast<size_t>(i)];
        if (isLoadOp(in.op)) {
            hdr.hasLoad = true;
            return FuKind::LoadPort;
        }
        if (isStoreOp(in.op)) {
            hdr.hasStore = true;
            return FuKind::StorePort;
        }
        if (opClass(in.op) == InsnClass::IntMult)
            return FuKind::IntMult;
        if (isCondBranchOp(in.op))
            hdr.endsInBranch = true;
        if (segStart[static_cast<size_t>(i)] == i)
            return FuKind::AluPipe;
        if (segStart[static_cast<size_t>(i)] >= 0)
            return FuKind::None;    // rides the pipeline, no new unit
        return FuKind::IntAlu;
    };

    hdr.hasLoad = hdr.hasStore = hdr.endsInBranch = false;
    hdr.fubmp.assign(static_cast<size_t>(std::max(0, hdr.totalLat - 1)),
                     FuKind::None);
    hdr.fu0 = fuOf(0);
    for (int i = 1; i < n; ++i) {
        FuKind fu = fuOf(i);
        if (fu == FuKind::None)
            continue;
        int c = startCycle[static_cast<size_t>(i)];
        if (c == 0) {
            // Collapsed into the first cycle; the FU0 reservation covers
            // it (pair executes on the same pipeline entry stage).
            continue;
        }
        hdr.fubmp[static_cast<size_t>(c - 1)] = fu;
    }
    // A terminal branch may be the only control op; record it even when
    // it rides a pipeline segment.
    for (int i = 0; i < n; ++i) {
        if (isCondBranchOp(insns[static_cast<size_t>(i)].op))
            hdr.endsInBranch = true;
    }

    hdr.packed = packFubmp(hdr.fubmp);
}

std::string
MgTemplate::key() const
{
    std::string k = strfmt("o%d|", outIdx);
    for (const TemplateInsn &in : insns) {
        k += strfmt("%s,%s,%s,%lld,%d;", opName(in.op), in.a.str().c_str(),
                    in.b.str().c_str(), static_cast<long long>(in.imm),
                    in.useImm ? 1 : 0);
    }
    return k;
}

namespace {

std::string
templateInsnStr(const TemplateInsn &in)
{
    if (isLoadOp(in.op))
        return strfmt("%s %lld(%s)", opName(in.op),
                      static_cast<long long>(in.imm), in.a.str().c_str());
    if (isStoreOp(in.op))
        return strfmt("%s %s,%lld(%s)", opName(in.op), in.b.str().c_str(),
                      static_cast<long long>(in.imm), in.a.str().c_str());
    if (isCondBranchOp(in.op))
        return strfmt("%s %s,0x%llx", opName(in.op), in.a.str().c_str(),
                      static_cast<unsigned long long>(in.imm));
    if (in.useImm)
        return strfmt("%s %s,%lld", opName(in.op), in.a.str().c_str(),
                      static_cast<long long>(in.imm));
    return strfmt("%s %s,%s", opName(in.op), in.a.str().c_str(),
                  in.b.str().c_str());
}

} // namespace

std::string
MgTemplate::mgstStr() const
{
    // Render per-bank: empty banks (load shadows) print as "--".
    std::string out;
    int bank = 0;
    for (int i = 0; i < size(); ++i) {
        int start = startCycle[static_cast<size_t>(i)];
        while (bank < start) {
            out += "-- | ";
            ++bank;
        }
        out += templateInsnStr(insns[static_cast<size_t>(i)]);
        if (i + 1 < size() &&
            startCycle[static_cast<size_t>(i + 1)] == start) {
            out += " + ";
            continue;
        }
        if (i + 1 < size())
            out += " | ";
        ++bank;
    }
    return out;
}

MgId
MgTable::add(MgTemplate t)
{
    if (t.startCycle.size() != t.insns.size())
        panic("MgTable::add: template not finalized");
    entries.push_back(std::move(t));
    return static_cast<MgId>(entries.size() - 1);
}

void
MgTable::badId(MgId id) const
{
    panic("bad MGID %d", static_cast<int>(id));
}

std::string
MgTable::str() const
{
    std::string out = "MGID  LAT  FU0  FUBMP        MGST\n";
    std::string bmp;   // one row buffer reused across the table
    for (size_t i = 0; i < entries.size(); ++i) {
        const MgTemplate &t = entries[i];
        bmp.clear();
        t.hdr.fubmpStr(bmp);
        out += strfmt("%-4zu  %-3d  %-3s  %-11s  %s\n", i, t.hdr.lat,
                      fuKindName(t.hdr.fu0), bmp.c_str(),
                      t.mgstStr().c_str());
    }
    return out;
}

} // namespace mg
