/**
 * @file
 * Critical-path cycle accounting over a retired-event trace
 * (uarch/trace.hh): the second analysis backend next to detailed
 * simulation, in the style of Fields-et-al. dependence-graph models.
 *
 * Each retired slot contributes five stage nodes — fetch (F), dispatch
 * (D), issue (I), complete (X), commit (C) — connected by *modeled*
 * edges: pipeline structure (F->D frontend depth, D->I scheduler
 * entry, I->X execution latency), in-order bandwidths (fetch/rename/
 * commit width), capacity backpressure (ROB, fetch queue), register
 * dependences (producer value-ready with bypass), store-set memory
 * ordering, and branch-mispredict refetch. Three walks share the
 * graph:
 *
 *  1. *Attribution* replays the recorded timestamps backwards from the
 *     last commit, always following the last-arriving edge, and
 *     charges every cycle of the run to the category of the edge that
 *     created it. The charges telescope: they sum exactly to the
 *     traced cycle span, so the breakdown is an accounting identity,
 *     not an estimate.
 *  2. The *forward model* recomputes node times from the modeled
 *     edges alone (recorded execution latencies, modeled structure).
 *     Its end-to-end cycle count is the analyzer's prediction, and its
 *     gap to the recorded count is the model error the tests bound.
 *  3. The *what-if* walk re-runs the forward model with edge weights
 *     re-derived under modified parameters, anchored by per-node
 *     residuals so the unmodified configuration reproduces the
 *     recorded times exactly. Because every node time is a max() of
 *     monotone candidate times, widening a resource or shortening a
 *     latency can never lengthen the predicted path.
 *
 * A what-if walk is O(events) with no simulation state, which is what
 * makes design-space questions orders of magnitude cheaper than
 * re-simulating (the acceptance tests pin >= 10x on the long tier).
 */

#ifndef MG_ANALYSIS_CRITPATH_HH
#define MG_ANALYSIS_CRITPATH_HH

#include <cstdint>
#include <memory>
#include <string>

#include "uarch/core.hh"
#include "uarch/trace.hh"

namespace mg {

/** Attribution categories, one per modeled edge family. */
#define MG_CP_CATEGORIES(X)                                              \
    X(fetch)   /* frontend supply: bandwidth, lines, icache, refill */   \
    X(bpred)   /* mispredict resolve-and-refetch */                      \
    X(window)  /* rename bandwidth + ROB/queue backpressure */           \
    X(select)  /* scheduler entry and issue-slot contention */           \
    X(data)    /* register dependences on non-memory producers */        \
    X(exec)    /* non-memory execution latency */                        \
    X(memory)  /* load/store latency + memory-ordering edges */          \
    X(mg)      /* mini-graph handle latency / serialization */           \
    X(commit)  /* in-order retirement */

enum class CpCat : std::uint8_t
{
#define MG_CP_ENUM(name) name,
    MG_CP_CATEGORIES(MG_CP_ENUM)
#undef MG_CP_ENUM
};

inline constexpr int cpCatCount = 0
#define MG_CP_COUNT(name) +1
    MG_CP_CATEGORIES(MG_CP_COUNT)
#undef MG_CP_COUNT
    ;

/** Stable lowercase category name ("fetch", "bpred", ...). */
const char *cpCatName(CpCat c);

/**
 * Per-cell analyzer output, carried in SweepCell and emitted as the
 * report's "critpath" JSON block (only when present, so clean-config
 * reports stay byte-identical to analyzer-less builds).
 */
struct CritPathSummary
{
    bool present = false;
    std::uint64_t tracedSlots = 0;  ///< retired slots analyzed
    std::uint64_t tracedWork = 0;   ///< constituent work analyzed
    bool traceWrapped = false;      ///< ring dropped oldest events
    std::uint64_t actualCycles = 0; ///< recorded commit-fetch span
    std::uint64_t modeledCycles = 0;///< forward-model prediction
    /** Last-arriving attribution, cycles per category; sums to
     *  actualCycles. */
    std::uint64_t breakdown[cpCatCount] = {};
    std::string whatIf;             ///< spec echoed ("" = none)
    std::uint64_t whatIfCycles = 0; ///< predicted span under whatIf
    std::string error;              ///< non-empty: analysis failed

    bool operator==(const CritPathSummary &) const = default;

    double
    share(CpCat c) const
    {
        return actualCycles
            ? static_cast<double>(
                  breakdown[static_cast<int>(c)]) /
                static_cast<double>(actualCycles)
            : 0.0;
    }
};

/**
 * The modeled-edge parameter set — the knobs the what-if walk can
 * re-weight. Defaults come from the traced run's CoreConfig.
 */
struct CpParams
{
    int fetchWidth = 6;
    int renameWidth = 6;
    int commitWidth = 6;
    int robSize = 128;
    int fetchQueueSize = 24;
    int frontendDepth = 8;
    int regReadLat = 2;
    int schedulerCycles = 1;
    int l1dLat = 2;
    /** The traced run's L1-D latency; load execution edges are
     *  re-weighted by (l1dLat - l1dLatBase) under a what-if. */
    int l1dLatBase = 2;

    static CpParams fromConfig(const CoreConfig &cfg);
};

/**
 * Apply a "key=val[,key=val...]" what-if spec to @p p. Keys:
 * fetchwidth, renamewidth, commitwidth, robsize, fetchqueue,
 * frontend, regreadlat, sched, l1dlat. @return false (and set
 * @p err) on an unknown key or malformed value.
 */
bool applyWhatIf(CpParams &p, const std::string &spec, std::string *err);

/**
 * Reusable analysis of one traced run: the constructor flattens the
 * trace into the dependence graph and runs the attribution and
 * forward-model walks once; whatIf() then answers any number of
 * design-space questions against the same graph, each as a single
 * residual-anchored O(events) propagation — no simulator state is
 * ever touched. This is the object behind the >= 10x-cheaper-than-
 * re-sim acceptance: the expensive parts (simulate, trace, build,
 * attribute) are paid once per cell, and every question after that
 * costs one walk.
 */
class CritPathAnalyzer
{
  public:
    CritPathAnalyzer(const TraceBuffer &trace, const CoreConfig &cfg);
    ~CritPathAnalyzer();
    CritPathAnalyzer(const CritPathAnalyzer &) = delete;
    CritPathAnalyzer &operator=(const CritPathAnalyzer &) = delete;

    /** Attribution breakdown and forward model for the traced window
     *  (the whatIf fields stay unset). present=false when the trace
     *  held fewer than two events. */
    const CritPathSummary &summary() const;

    /** Predicted cycle span of the traced window under @p spec.
     *  @return 0 and set @p err (when non-null) on a malformed spec
     *  or an absent analysis; otherwise @p err is cleared. Lazily
     *  caches the per-node residuals on first use, so a given
     *  analyzer must be queried from one thread at a time. */
    std::uint64_t whatIf(const std::string &spec,
                         std::string *err = nullptr);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/**
 * One-shot convenience wrapper over CritPathAnalyzer: run all three
 * walks over @p trace — attribution breakdown, forward model, and,
 * when @p whatIf is non-empty, the re-weighted what-if prediction.
 * An empty or single-event trace yields present=false. A malformed
 * @p whatIf yields present=true with error set (the breakdown and
 * model are still valid).
 */
CritPathSummary analyzeCritPath(const TraceBuffer &trace,
                                const CoreConfig &cfg,
                                const std::string &whatIf = "");

} // namespace mg

#endif // MG_ANALYSIS_CRITPATH_HH
