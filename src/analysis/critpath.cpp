#include "analysis/critpath.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <vector>

namespace mg {

const char *
cpCatName(CpCat c)
{
    static const char *names[] = {
#define MG_CP_NAME(name) #name,
        MG_CP_CATEGORIES(MG_CP_NAME)
#undef MG_CP_NAME
    };
    int i = static_cast<int>(c);
    return i >= 0 && i < cpCatCount ? names[i] : "?";
}

CpParams
CpParams::fromConfig(const CoreConfig &cfg)
{
    CpParams p;
    p.fetchWidth = cfg.fetchWidth;
    p.renameWidth = cfg.renameWidth;
    p.commitWidth = cfg.commitWidth;
    p.robSize = cfg.robSize;
    p.fetchQueueSize = cfg.fetchQueueSize;
    p.frontendDepth = cfg.frontendDepth;
    p.regReadLat = cfg.regReadLat;
    p.schedulerCycles = cfg.schedulerCycles;
    p.l1dLat = static_cast<int>(cfg.mem.l1dLat);
    p.l1dLatBase = p.l1dLat;
    return p;
}

bool
applyWhatIf(CpParams &p, const std::string &spec, std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };
    std::size_t pos = 0;
    int applied = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string kv = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (kv.empty())
            continue;
        std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
            return fail("what-if term '" + kv + "' is not key=val");
        std::string key = kv.substr(0, eq);
        for (char &ch : key)
            ch = static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        const char *vs = kv.c_str() + eq + 1;
        char *end = nullptr;
        long v = std::strtol(vs, &end, 10);
        if (!end || *end || end == vs)
            return fail("bad what-if value in '" + kv + "'");
        auto setWidth = [&](int &field) {
            if (v < 1)
                return fail("what-if '" + key + "' must be >= 1");
            field = static_cast<int>(v);
            return true;
        };
        auto setLat = [&](int &field) {
            if (v < 0)
                return fail("what-if '" + key + "' must be >= 0");
            field = static_cast<int>(v);
            return true;
        };
        bool ok;
        if (key == "fetchwidth")
            ok = setWidth(p.fetchWidth);
        else if (key == "renamewidth")
            ok = setWidth(p.renameWidth);
        else if (key == "commitwidth")
            ok = setWidth(p.commitWidth);
        else if (key == "robsize")
            ok = setWidth(p.robSize);
        else if (key == "fetchqueue")
            ok = setWidth(p.fetchQueueSize);
        else if (key == "frontend")
            ok = setLat(p.frontendDepth);
        else if (key == "regreadlat")
            ok = setLat(p.regReadLat);
        else if (key == "sched")
            ok = setLat(p.schedulerCycles);
        else if (key == "l1dlat")
            ok = setLat(p.l1dLat);
        else
            return fail("unknown what-if key '" + key + "'");
        if (!ok)
            return false;
        ++applied;
    }
    if (!applied)
        return fail("what-if spec '" + spec + "' sets nothing");
    return true;
}

namespace {

/** Stage order within one event (walk order and array index). */
enum Stage : int { StF = 0, StD = 1, StI = 2, StX = 3, StC = 4 };

struct Node
{
    std::uint32_t idx;
    Stage st;
};

/** One last-arriving candidate: the arrival time the edge imposes and
 *  the node the backward walk continues from. */
struct Cand
{
    Node cont;
    std::uint64_t time;
    CpCat cat;
};

/** The trace flattened to absolute times plus resolved dependence
 *  indexes (~invalidIdx = producer outside the traced window). */
constexpr std::uint32_t invalidIdx = ~0u;

struct Graph
{
    std::vector<std::uint64_t> f, d, i, x, c;
    std::vector<std::uint32_t> src0, src1, dep;
    std::vector<std::uint32_t> execLat;
    std::vector<std::uint8_t> flags;
    std::vector<std::uint16_t> work;
    std::size_t n = 0;

    bool isLoad(std::size_t k) const
    {
        return flags[k] & TraceEvent::FlagLoad;
    }
    bool isStore(std::size_t k) const
    {
        return flags[k] & TraceEvent::FlagStore;
    }
    bool isHandle(std::size_t k) const
    {
        return flags[k] & TraceEvent::FlagHandle;
    }
    bool mispredicted(std::size_t k) const
    {
        return flags[k] & TraceEvent::FlagMispredicted;
    }
    bool takenCtrl(std::size_t k) const
    {
        return (flags[k] & TraceEvent::FlagCtrl) &&
            (flags[k] & TraceEvent::FlagTaken);
    }

    /** Edge-family category of a dependence on producer @p j. */
    CpCat
    prodCat(std::size_t j) const
    {
        if (isLoad(j))
            return CpCat::memory;
        if (isHandle(j))
            return CpCat::mg;
        return CpCat::data;
    }

    /** Execution-edge category of event @p k. */
    CpCat
    execCat(std::size_t k) const
    {
        if (isHandle(k))
            return CpCat::mg;
        if (isLoad(k) || isStore(k))
            return CpCat::memory;
        return CpCat::exec;
    }
};

Graph
buildGraph(const TraceBuffer &t)
{
    Graph g;
    g.n = t.size();
    g.f.resize(g.n);
    g.d.resize(g.n);
    g.i.resize(g.n);
    g.x.resize(g.n);
    g.c.resize(g.n);
    g.src0.resize(g.n);
    g.src1.resize(g.n);
    g.dep.resize(g.n);
    g.execLat.resize(g.n);
    g.flags.resize(g.n);
    g.work.resize(g.n);

    // Events are pushed at retirement, and retirement is in program
    // order, so the seq column is strictly increasing: producer
    // resolution is a binary search over the prefix, no hash map.
    std::vector<std::uint64_t> seqs(g.n);
    for (std::size_t k = 0; k < g.n; ++k) {
        const TraceEvent &e = t.at(k);
        g.f[k] = e.fetchAt;
        g.d[k] = e.dispatchAt();
        g.i[k] = e.issueAt();
        g.x[k] = e.completeAt();
        g.c[k] = e.commitAt();
        g.execLat[k] = static_cast<std::uint32_t>(g.x[k] - g.i[k]);
        g.flags[k] = e.flags;
        g.work[k] = e.work;
        seqs[k] = e.seq;
        auto resolve = [&](std::uint64_t seq) -> std::uint32_t {
            if (!seq)
                return invalidIdx;
            auto it = std::lower_bound(seqs.begin(),
                                       seqs.begin() +
                                           static_cast<std::ptrdiff_t>(k),
                                       seq);
            // Producers retire (and are pushed) before consumers, so
            // a miss means the seq never retired (squashed) or fell
            // off the ring window — either way there is no edge.
            return it != seqs.begin() +
                        static_cast<std::ptrdiff_t>(k) &&
                    *it == seq
                ? static_cast<std::uint32_t>(it - seqs.begin())
                : invalidIdx;
        };
        g.src0[k] = resolve(e.srcSeq[0]);
        g.src1[k] = resolve(e.srcSeq[1]);
        g.dep[k] = resolve(e.depStoreSeq);
    }
    return g;
}

/** Per-stage time arrays one walk operates on (recorded or modeled). */
struct Times
{
    const std::uint64_t *f;
    const std::uint64_t *d;
    const std::uint64_t *i;
    const std::uint64_t *x;
    const std::uint64_t *c;

    std::uint64_t
    at(Node nd) const
    {
        switch (nd.st) {
          case StF: return f[nd.idx];
          case StD: return d[nd.idx];
          case StI: return i[nd.idx];
          case StX: return x[nd.idx];
          default: return c[nd.idx];
        }
    }
};

/**
 * Enumerate the modeled in-edges of node (@p k, @p st) against @p tm,
 * calling add(contIdx, contStage, time, cat) per edge. Every
 * candidate's continuation strictly precedes the node in (event,
 * stage) order, so both the backward attribution walk and the forward
 * in-order propagation share this enumeration. Templated on the sink
 * so the forward walks — which only need the max time, millions of
 * nodes per run — fold to a few register max() ops instead of
 * materializing candidate vectors (the difference between the what-if
 * walk beating a re-simulation by 2x and by well over 10x).
 */
template <class AddFn>
inline void
forEachCand(const Graph &g, const CpParams &p, const Times &tm,
            std::size_t k, Stage st, AddFn &&add)
{
    auto idx = static_cast<std::uint32_t>(k);
    switch (st) {
      case StF: {
        if (k > 0) {
            // Fetch is in-order; a taken branch ends its fetch cycle,
            // so the next slot starts no earlier than the next cycle.
            std::uint64_t w = g.takenCtrl(k - 1) ? 1 : 0;
            add(idx - 1, StF, tm.f[k - 1] + w, CpCat::fetch);
            // A direction mispredict costs one fetch-block bubble: the
            // core blocks fetch on the unresolved branch, and the block
            // clears on the next resolve scan (the branch is still
            // pre-dispatch), so the next slot fetches one cycle later
            // whether or not the branch was taken.
            if (g.mispredicted(k - 1))
                add(idx - 1, StF, tm.f[k - 1] + 1, CpCat::bpred);
        }
        if (k >= static_cast<std::size_t>(p.fetchWidth))
            add(idx - static_cast<std::uint32_t>(p.fetchWidth), StF,
                tm.f[k - static_cast<std::size_t>(p.fetchWidth)] + 1,
                CpCat::fetch);
        if (k >= static_cast<std::size_t>(p.fetchQueueSize))
            add(idx - static_cast<std::uint32_t>(p.fetchQueueSize), StD,
                tm.d[k - static_cast<std::size_t>(p.fetchQueueSize)],
                CpCat::window);
        break;
      }
      case StD: {
        add(idx, StF,
            tm.f[k] + static_cast<std::uint64_t>(p.frontendDepth),
            CpCat::fetch);
        if (k > 0)
            add(idx - 1, StD, tm.d[k - 1], CpCat::window);
        if (k >= static_cast<std::size_t>(p.renameWidth))
            add(idx - static_cast<std::uint32_t>(p.renameWidth), StD,
                tm.d[k - static_cast<std::size_t>(p.renameWidth)] + 1,
                CpCat::window);
        if (k >= static_cast<std::size_t>(p.robSize))
            add(idx - static_cast<std::uint32_t>(p.robSize), StC,
                tm.c[k - static_cast<std::size_t>(p.robSize)] + 1,
                CpCat::window);
        break;
      }
      case StI: {
        add(idx, StD, tm.d[k] + 1,
            g.isHandle(k) ? CpCat::mg : CpCat::select);
        auto prod = [&](std::uint32_t j) {
            if (j == invalidIdx)
                return;
            // Producer value-ready: completion minus the register-read
            // overlap, floored at the scheduler's wakeup latency.
            std::uint64_t ready = std::max(
                tm.x[j] > static_cast<std::uint64_t>(p.regReadLat)
                    ? tm.x[j] - static_cast<std::uint64_t>(p.regReadLat)
                    : 0,
                tm.i[j] + static_cast<std::uint64_t>(p.schedulerCycles));
            add(j, StI, ready, g.prodCat(j));
        };
        prod(g.src0[k]);
        prod(g.src1[k]);
        if (g.dep[k] != invalidIdx) {
            // Store-set order: the consumer waits for the predicted
            // store's memory access to resolve.
            std::uint32_t j = g.dep[k];
            add(j, StI, tm.x[j] + 1, CpCat::memory);
        }
        break;
      }
      case StX: {
        // Execution latency, re-weighted for loads under an L1-D
        // latency what-if (clamped so a hit never goes below 1).
        std::uint64_t lat = g.execLat[k];
        if (g.isLoad(k) && !g.isStore(k)) {
            long adj = static_cast<long>(lat) + p.l1dLat -
                p.l1dLatBase;
            lat = adj < 1 ? 1 : static_cast<std::uint64_t>(adj);
        }
        add(idx, StI, tm.i[k] + lat, g.execCat(k));
        break;
      }
      case StC: {
        add(idx, StX, tm.x[k], CpCat::commit);
        if (k > 0)
            add(idx - 1, StC, tm.c[k - 1], CpCat::commit);
        if (k >= static_cast<std::size_t>(p.commitWidth))
            add(idx - static_cast<std::uint32_t>(p.commitWidth), StC,
                tm.c[k - static_cast<std::size_t>(p.commitWidth)] + 1,
                CpCat::commit);
        break;
      }
    }
}

/** Max in-edge time of node (@p k, @p st), or the node's recorded
 *  fetch anchor when it has no modeled in-edges (only the very first
 *  fetch). The forward walks' hot primitive. */
inline std::uint64_t
maxCandTime(const Graph &g, const CpParams &p, const Times &tm,
            std::size_t k, Stage st)
{
    std::uint64_t t = 0;
    bool any = false;
    forEachCand(g, p, tm, k, st,
                [&](std::uint32_t, Stage, std::uint64_t time, CpCat) {
                    any = true;
                    if (time > t)
                        t = time;
                });
    return any ? t : g.f[k];
}

/** Forward propagation: recompute all node times from the modeled
 *  edges under @p p. With @p slack non-null, each node additionally
 *  applies its recorded residual — positive where the machine was
 *  slower than the modeled in-edges, negative where an edge
 *  over-predicts the recorded time — which makes the unmodified
 *  configuration reproduce the recorded times exactly. */
struct Propagated
{
    std::vector<std::uint64_t> f, d, i, x, c;
};

Propagated
propagate(const Graph &g, const CpParams &p,
          const std::vector<std::int64_t> *slack)
{
    Propagated o;
    o.f.resize(g.n);
    o.d.resize(g.n);
    o.i.resize(g.n);
    o.x.resize(g.n);
    o.c.resize(g.n);
    Times tm{o.f.data(), o.d.data(), o.i.data(), o.x.data(),
             o.c.data()};
    auto node = [&](std::size_t k, Stage st) {
        std::uint64_t t = maxCandTime(g, p, tm, k, st);
        if (slack) {
            std::int64_t a = static_cast<std::int64_t>(t) +
                slack[st][k];
            t = a > 0 ? static_cast<std::uint64_t>(a) : 0;
        }
        return t;
    };
    for (std::size_t k = 0; k < g.n; ++k) {
        o.f[k] = node(k, StF);
        o.d[k] = node(k, StD);
        o.i[k] = node(k, StI);
        o.x[k] = node(k, StX);
        o.c[k] = node(k, StC);
    }
    return o;
}

} // namespace

struct CritPathAnalyzer::Impl
{
    Graph g;
    CpParams base;
    CritPathSummary sum;
    /** Per-node recorded slack beyond the modeled in-edges, lazily
     *  filled by the first whatIf() call and reused by every later
     *  one — it depends only on the recorded times and the traced
     *  configuration, never on a spec. */
    std::vector<std::int64_t> slack[5];
    bool slackReady = false;

    void
    computeSlack()
    {
        Times rec{g.f.data(), g.d.data(), g.i.data(), g.x.data(),
                  g.c.data()};
        for (auto &v : slack)
            v.resize(g.n);
        auto resid = [&](std::size_t k, Stage st,
                         std::uint64_t recAt) {
            // Signed on purpose: a negative residual records a
            // modeled edge over-predicting this node (a model
            // mismatch the attribution walk also skips), and
            // re-applying it is what keeps the identity
            // configuration bit-exact against the recorded times.
            slack[st][k] = static_cast<std::int64_t>(recAt) -
                static_cast<std::int64_t>(
                    maxCandTime(g, base, rec, k, st));
        };
        for (std::size_t k = 0; k < g.n; ++k) {
            resid(k, StF, g.f[k]);
            resid(k, StD, g.d[k]);
            resid(k, StI, g.i[k]);
            resid(k, StX, g.x[k]);
            resid(k, StC, g.c[k]);
        }
        slackReady = true;
    }
};

CritPathAnalyzer::CritPathAnalyzer(const TraceBuffer &trace,
                                   const CoreConfig &cfg)
    : impl(std::make_unique<Impl>())
{
    Impl &im = *impl;
    im.g = buildGraph(trace);
    im.base = CpParams::fromConfig(cfg);
    const Graph &g = im.g;
    CritPathSummary &s = im.sum;
    if (g.n < 2)
        return;
    s.present = true;
    s.tracedSlots = g.n;
    for (std::size_t k = 0; k < g.n; ++k)
        s.tracedWork += g.work[k];
    s.traceWrapped = trace.wrapped();
    s.actualCycles = g.c[g.n - 1] - g.f[0];

    Times rec{g.f.data(), g.d.data(), g.i.data(), g.x.data(),
              g.c.data()};

    // 1. Attribution: backward last-arriving walk over the recorded
    // times. Each step charges the full gap between the node and its
    // chosen continuation to the winning edge's category; the gaps
    // telescope from the last commit to the first fetch.
    Node cur{static_cast<std::uint32_t>(g.n - 1), StC};
    while (!(cur.idx == 0 && cur.st == StF)) {
        std::uint64_t here = rec.at(cur);
        // Only continuations at or before the node's recorded time are
        // credible last-arrivers; edges whose continuation lands later
        // are model mismatches, and following one would both break the
        // telescoping sum and move the walk forward in time. The
        // in-order previous-stage/previous-slot edge always qualifies,
        // so a best candidate always exists.
        bool haveBest = false;
        Cand best{};
        std::uint64_t bestCont = 0;
        forEachCand(g, im.base, rec, cur.idx, cur.st,
                    [&](std::uint32_t ci, Stage cs, std::uint64_t time,
                        CpCat cat) {
                        std::uint64_t contAt = rec.at(Node{ci, cs});
                        if (contAt > here)
                            return;
                        if (!haveBest || time > best.time ||
                            (time == best.time && contAt > bestCont)) {
                            haveBest = true;
                            best = Cand{Node{ci, cs}, time, cat};
                            bestCont = contAt;
                        }
                    });
        s.breakdown[static_cast<int>(best.cat)] += here - bestCont;
        cur = best.cont;
    }

    // 2. Forward model (no residuals): the analyzer's prediction.
    Propagated pure = propagate(g, im.base, nullptr);
    s.modeledCycles = pure.c[g.n - 1] - pure.f[0];
}

CritPathAnalyzer::~CritPathAnalyzer() = default;

const CritPathSummary &
CritPathAnalyzer::summary() const
{
    return impl->sum;
}

std::uint64_t
CritPathAnalyzer::whatIf(const std::string &spec, std::string *err)
{
    if (err)
        err->clear();
    Impl &im = *impl;
    if (!im.sum.present) {
        if (err)
            *err = "critical-path analysis absent (trace too small)";
        return 0;
    }
    CpParams wp = im.base;
    std::string perr;
    if (!applyWhatIf(wp, spec, &perr)) {
        if (err)
            *err = perr;
        return 0;
    }
    // Residual-anchored forward walk under re-weighted edges: the
    // residuals make the baseline parameters reproduce the recorded
    // times exactly, so a re-weighted walk predicts a principled
    // delta from them.
    if (!im.slackReady)
        im.computeSlack();
    Propagated wi = propagate(im.g, wp, im.slack);
    return wi.c[im.g.n - 1] - wi.f[0];
}

CritPathSummary
analyzeCritPath(const TraceBuffer &trace, const CoreConfig &cfg,
                const std::string &whatIf)
{
    CritPathAnalyzer an(trace, cfg);
    CritPathSummary s = an.summary();
    if (s.present && !whatIf.empty()) {
        s.whatIf = whatIf;
        std::string err;
        std::uint64_t cycles = an.whatIf(whatIf, &err);
        if (!err.empty())
            s.error = err;
        else
            s.whatIfCycles = cycles;
    }
    return s;
}

} // namespace mg
