// BlockProfile is header-only; this translation unit exists so the
// build system has a stable object for the cfg/profile component.
#include "cfg/profile.hh"
