/**
 * @file
 * Basic-block execution-frequency profiles. The selection algorithm's
 * benefit function is coverage = (n-1) * f where f comes from a profile
 * (paper Section 3.2).
 */

#ifndef MG_CFG_PROFILE_HH
#define MG_CFG_PROFILE_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace mg {

/** Dynamic execution counts keyed by block-start text index. */
class BlockProfile
{
  public:
    /** Record one execution of the block starting at @p first. */
    void
    record(InsnIdx first, std::uint64_t count = 1)
    {
        counts_[first] += count;
        total_ += count;
    }

    /** Executions of the block starting at @p first. */
    std::uint64_t
    count(InsnIdx first) const
    {
        auto it = counts_.find(first);
        return it == counts_.end() ? 0 : it->second;
    }

    /** Sum of all block executions. */
    std::uint64_t total() const { return total_; }

    /** Merge another profile into this one (multi-input training). */
    void
    merge(const BlockProfile &other)
    {
        for (const auto &[idx, c] : other.counts_)
            record(idx, c);
    }

    const std::unordered_map<InsnIdx, std::uint64_t> &
    counts() const
    {
        return counts_;
    }

  private:
    std::unordered_map<InsnIdx, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace mg

#endif // MG_CFG_PROFILE_HH
