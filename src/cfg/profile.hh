/**
 * @file
 * Basic-block execution-frequency profiles. The selection algorithm's
 * benefit function is coverage = (n-1) * f where f comes from a profile
 * (paper Section 3.2).
 *
 * Counts are kept densely indexed by block-start text index: record()
 * sits on the emulator's per-block hot path (and whole profiles are
 * deep-copied into every functional checkpoint), where a flat vector
 * beats the former hash map on both fronts.
 */

#ifndef MG_CFG_PROFILE_HH
#define MG_CFG_PROFILE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mg {

/** Dynamic execution counts keyed by block-start text index. */
class BlockProfile
{
  public:
    /** Record one execution of the block starting at @p first. */
    void
    record(InsnIdx first, std::uint64_t count = 1)
    {
        auto i = static_cast<std::size_t>(first);
        if (i >= counts_.size())
            counts_.resize(i + 1, 0);
        counts_[i] += count;
        total_ += count;
    }

    /** Executions of the block starting at @p first. */
    std::uint64_t
    count(InsnIdx first) const
    {
        auto i = static_cast<std::size_t>(first);
        return i < counts_.size() ? counts_[i] : 0;
    }

    /** Sum of all block executions. */
    std::uint64_t total() const { return total_; }

    /** Merge another profile into this one (multi-input training). */
    void
    merge(const BlockProfile &other)
    {
        for (std::size_t i = 0; i < other.counts_.size(); ++i) {
            if (other.counts_[i])
                record(static_cast<InsnIdx>(i), other.counts_[i]);
        }
    }

    /** Dense per-block-leader counts (index = block-start text idx). */
    const std::vector<std::uint64_t> &counts() const { return counts_; }

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace mg

#endif // MG_CFG_PROFILE_HH
