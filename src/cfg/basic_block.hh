/**
 * @file
 * Basic-block discovery and the control-flow graph. Mini-graphs are
 * restricted to basic blocks (atomicity, paper Section 3.1), so every
 * selection pass starts here.
 */

#ifndef MG_CFG_BASIC_BLOCK_HH
#define MG_CFG_BASIC_BLOCK_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"

namespace mg {

/** One basic block: the half-open text-index range [first, last). */
struct BasicBlock
{
    InsnIdx first = 0;
    InsnIdx last = 0;               ///< one past the final instruction
    std::vector<int> succs;         ///< successor block ids
    bool hasIndirectExit = false;   ///< ends in jmp/jsr/ret (targets unknown)
    bool endsInHalt = false;

    InsnIdx size() const { return last - first; }
};

/** The CFG of a Program's text section. */
class Cfg
{
  public:
    /** Build the CFG of @p prog. */
    explicit Cfg(const Program &prog);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Block id containing text index @p idx. */
    int blockOf(InsnIdx idx) const { return blockOfIdx[idx]; }

    /** Block id whose first instruction is @p idx, or -1. */
    int blockStartingAt(InsnIdx idx) const;

    const Program &program() const { return prog; }

  private:
    const Program &prog;
    std::vector<BasicBlock> blocks_;
    std::vector<int> blockOfIdx;    ///< per text index
};

} // namespace mg

#endif // MG_CFG_BASIC_BLOCK_HH
