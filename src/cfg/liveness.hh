/**
 * @file
 * Per-block register liveness. Mini-graph legality depends on knowing
 * which registers are dead at block exit: interior values must never be
 * observable outside the graph (paper Section 3.1).
 *
 * Blocks with indirect exits (jmp/jsr/ret) conservatively treat every
 * register as live-out, matching what a production binary rewriter
 * without whole-program pointer analysis must assume.
 */

#ifndef MG_CFG_LIVENESS_HH
#define MG_CFG_LIVENESS_HH

#include <bitset>
#include <vector>

#include "cfg/basic_block.hh"

namespace mg {

/** One bit per architectural register. */
using RegSet = std::bitset<numArchRegs>;

/** Result of the iterative liveness dataflow analysis. */
class Liveness
{
  public:
    /** Run the analysis over @p cfg to a fixpoint. */
    explicit Liveness(const Cfg &cfg);

    const RegSet &liveIn(int block) const
    {
        return liveIn_[static_cast<size_t>(block)];
    }
    const RegSet &liveOut(int block) const
    {
        return liveOut_[static_cast<size_t>(block)];
    }

    /** Registers read by @p in (zero registers excluded). */
    static RegSet uses(const Instruction &in);

    /** Registers written by @p in (zero registers excluded). */
    static RegSet defs(const Instruction &in);

  private:
    std::vector<RegSet> liveIn_;
    std::vector<RegSet> liveOut_;
};

} // namespace mg

#endif // MG_CFG_LIVENESS_HH
