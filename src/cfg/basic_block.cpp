#include "cfg/basic_block.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace mg {

Cfg::Cfg(const Program &p) : prog(p)
{
    const auto n = static_cast<InsnIdx>(prog.text.size());
    if (n == 0)
        fatal("cannot build CFG of an empty program");

    // Leaders: entry, targets of direct control transfers, and fall-
    // throughs after any control transfer or halt.
    std::set<InsnIdx> leaders;
    leaders.insert(prog.indexOf(prog.entry));
    leaders.insert(0);
    for (InsnIdx i = 0; i < n; ++i) {
        const Instruction &in = prog.text[i];
        if (in.isControl()) {
            if (in.cls() == InsnClass::CondBranch ||
                in.cls() == InsnClass::UncondBranch) {
                Addr tgt = static_cast<Addr>(in.imm);
                if (prog.validPc(tgt))
                    leaders.insert(prog.indexOf(tgt));
            }
            if (i + 1 < n)
                leaders.insert(i + 1);
        } else if (in.op == Op::HALT && i + 1 < n) {
            leaders.insert(i + 1);
        }
        if (in.isHandle() && i + 1 < n) {
            // A handle may terminate in a branch; conservatively treat
            // the next instruction as a leader.
            leaders.insert(i + 1);
        }
    }

    // Carve blocks.
    std::vector<InsnIdx> starts(leaders.begin(), leaders.end());
    blockOfIdx.assign(n, -1);
    for (size_t b = 0; b < starts.size(); ++b) {
        BasicBlock blk;
        blk.first = starts[b];
        blk.last = (b + 1 < starts.size()) ? starts[b + 1] : n;
        for (InsnIdx i = blk.first; i < blk.last; ++i)
            blockOfIdx[i] = static_cast<int>(blocks_.size());
        blocks_.push_back(blk);
    }

    // Successor edges.
    for (auto &blk : blocks_) {
        const Instruction &term = prog.text[blk.last - 1];
        auto addSucc = [&](InsnIdx idx) {
            if (idx < n)
                blk.succs.push_back(blockOfIdx[idx]);
        };
        switch (term.cls()) {
          case InsnClass::CondBranch:
            addSucc(blk.last);  // fall through
            if (prog.validPc(static_cast<Addr>(term.imm)))
                addSucc(prog.indexOf(static_cast<Addr>(term.imm)));
            break;
          case InsnClass::UncondBranch:
            if (prog.validPc(static_cast<Addr>(term.imm)))
                addSucc(prog.indexOf(static_cast<Addr>(term.imm)));
            // A call (bsr) also returns eventually; the return edge is
            // modelled conservatively by the indirect-exit flag on the
            // callee's ret.
            break;
          case InsnClass::IndirectJump:
            blk.hasIndirectExit = true;
            break;
          case InsnClass::Halt:
            blk.endsInHalt = true;
            break;
          case InsnClass::Handle:
            // Conservative: successor unknown plus fall-through.
            blk.hasIndirectExit = true;
            addSucc(blk.last);
            break;
          default:
            addSucc(blk.last);  // plain fall-through
            break;
        }
        std::sort(blk.succs.begin(), blk.succs.end());
        blk.succs.erase(std::unique(blk.succs.begin(), blk.succs.end()),
                        blk.succs.end());
    }
}

int
Cfg::blockStartingAt(InsnIdx idx) const
{
    if (idx >= blockOfIdx.size())
        return -1;
    int b = blockOfIdx[idx];
    return (b >= 0 && blocks_[static_cast<size_t>(b)].first == idx) ? b : -1;
}

} // namespace mg
