#include "cfg/liveness.hh"

namespace mg {

RegSet
Liveness::uses(const Instruction &in)
{
    RegSet s;
    for (int i = 0; i < 2; ++i) {
        RegId r = in.src(i);
        if (r != regNone && !isZeroReg(r))
            s.set(static_cast<size_t>(r));
    }
    // Conditional moves additionally read their destination.
    if ((in.op == Op::CMOVEQ || in.op == Op::CMOVNE) &&
        in.rc != regNone && !isZeroReg(in.rc))
        s.set(static_cast<size_t>(in.rc));
    return s;
}

RegSet
Liveness::defs(const Instruction &in)
{
    RegSet s;
    RegId d = in.dst();
    if (d != regNone && !isZeroReg(d))
        s.set(static_cast<size_t>(d));
    return s;
}

Liveness::Liveness(const Cfg &cfg)
{
    const auto &blocks = cfg.blocks();
    const Program &prog = cfg.program();
    const size_t nb = blocks.size();

    // Per-block gen (upward-exposed uses) and kill (defs).
    std::vector<RegSet> gen(nb), kill(nb);
    for (size_t b = 0; b < nb; ++b) {
        RegSet defined;
        for (InsnIdx i = blocks[b].first; i < blocks[b].last; ++i) {
            const Instruction &in = prog.text[i];
            gen[b] |= (uses(in) & ~defined);
            defined |= defs(in);
        }
        kill[b] = defined;
    }

    liveIn_.assign(nb, RegSet());
    liveOut_.assign(nb, RegSet());

    RegSet all;
    all.set();

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = nb; b-- > 0;) {
            RegSet out;
            if (blocks[b].hasIndirectExit) {
                out = all;
            } else {
                for (int s : blocks[b].succs)
                    out |= liveIn_[static_cast<size_t>(s)];
            }
            RegSet in = gen[b] | (out & ~kill[b]);
            if (out != liveOut_[b] || in != liveIn_[b]) {
                liveOut_[b] = out;
                liveIn_[b] = in;
                changed = true;
            }
        }
    }
}

} // namespace mg
