#include "assembler/assembler.hh"

#include <optional>
#include <unordered_map>

#include "assembler/lexer.hh"
#include "common/logging.hh"

namespace mg {

namespace {

/** Mnemonic lookup table built once. */
const std::unordered_map<std::string, Op> &
mnemonics()
{
    static const std::unordered_map<std::string, Op> table = [] {
        std::unordered_map<std::string, Op> m;
        for (int i = 0; i < static_cast<int>(Op::NUM_OPS); ++i) {
            Op op = static_cast<Op>(i);
            m.emplace(opName(op), op);
        }
        return m;
    }();
    return table;
}

/** Streaming parser state shared by both passes. */
class Parser
{
  public:
    Parser(const std::vector<Token> &toks, const std::string &unit)
        : toks(toks), unit(unit)
    {}

    /** Pass 1: compute label addresses. */
    void scanLabels(Program &prog);

    /** Pass 2: emit instructions and data. */
    void emit(Program &prog);

  private:
    const std::vector<Token> &toks;
    const std::string unit;
    size_t pos = 0;
    bool inText = true;

    [[noreturn]] void
    err(const std::string &msg) const
    {
        int line = pos < toks.size() ? toks[pos].line : 0;
        throw AsmError(strfmt("%s:%d: %s", unit.c_str(), line, msg.c_str()));
    }

    const Token &peek() const { return toks[pos]; }
    const Token &get() { return toks[pos++]; }

    bool
    accept(Tok k)
    {
        if (toks[pos].kind == k) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    expect(Tok k, const char *what)
    {
        if (!accept(k))
            err(strfmt("expected %s", what));
    }

    void endStmt() { expect(Tok::Newline, "end of statement"); }

    RegId
    parseReg()
    {
        if (peek().kind != Tok::Reg)
            err("expected register");
        const Token &t = get();
        RegId r = static_cast<RegId>(t.value);
        return t.fpReg ? static_cast<RegId>(r + fpBase) : r;
    }

    /**
     * Immediate: INT, or IDENT (symbol), optionally followed by +INT.
     * In pass 1 symbols may be unresolved; @p prog may be null there.
     */
    std::int64_t
    parseImm(const Program *prog)
    {
        std::int64_t v = 0;
        if (peek().kind == Tok::Int) {
            v = get().value;
        } else if (peek().kind == Tok::Ident) {
            std::string name = get().text;
            if (prog) {
                auto it = prog->symbols.find(name);
                if (it == prog->symbols.end())
                    err(strfmt("undefined symbol '%s'", name.c_str()));
                v = static_cast<std::int64_t>(it->second);
            }
        } else {
            err("expected immediate or symbol");
        }
        if (accept(Tok::Plus)) {
            if (peek().kind != Tok::Int)
                err("expected integer after '+'");
            v += get().value;
        }
        return v;
    }

    /** Count how many bytes a data directive occupies (pass 1). */
    std::uint64_t dataSize(const std::string &dir, Addr cur);

    /** Emit a data directive's bytes (pass 2). */
    void emitData(const std::string &dir, Program &prog);

    /** Parse one instruction statement into @p insn (pass 2). */
    Instruction parseInsn(const std::string &mnem, const Program &prog);

    /** Skip to end of current statement (pass 1). */
    void
    skipStmt()
    {
        while (peek().kind != Tok::Newline && peek().kind != Tok::End)
            ++pos;
        accept(Tok::Newline);
    }
};

std::uint64_t
Parser::dataSize(const std::string &dir, Addr cur)
{
    auto countItems = [&]() -> std::uint64_t {
        std::uint64_t cnt = 0;
        for (;;) {
            if (peek().kind == Tok::Int || peek().kind == Tok::Ident) {
                ++pos;
                if (accept(Tok::Plus)) {
                    if (peek().kind != Tok::Int)
                        err("expected integer after '+'");
                    ++pos;
                }
            } else {
                err("expected data value");
            }
            ++cnt;
            if (!accept(Tok::Comma))
                break;
        }
        return cnt;
    };
    if (dir == ".quad")
        return 8 * countItems();
    if (dir == ".long")
        return 4 * countItems();
    if (dir == ".word")
        return 2 * countItems();
    if (dir == ".byte")
        return 1 * countItems();
    if (dir == ".space") {
        if (peek().kind != Tok::Int)
            err(".space needs a byte count");
        return static_cast<std::uint64_t>(get().value);
    }
    if (dir == ".align") {
        if (peek().kind != Tok::Int)
            err(".align needs an alignment");
        auto a = static_cast<std::uint64_t>(get().value);
        if (a == 0 || (a & (a - 1)))
            err(".align must be a power of two");
        return (a - (cur % a)) % a;
    }
    if (dir == ".asciiz") {
        if (peek().kind != Tok::Str)
            err(".asciiz needs a string");
        return get().text.size() + 1;
    }
    err(strfmt("unknown directive '%s'", dir.c_str()));
}

void
Parser::emitData(const std::string &dir, Program &prog)
{
    auto push = [&](std::int64_t v, int bytes) {
        for (int b = 0; b < bytes; ++b)
            prog.data.push_back(
                static_cast<std::uint8_t>((static_cast<std::uint64_t>(v) >>
                                           (8 * b)) & 0xff));
    };
    auto emitItems = [&](int bytes) {
        for (;;) {
            push(parseImm(&prog), bytes);
            if (!accept(Tok::Comma))
                break;
        }
    };
    if (dir == ".quad") { emitItems(8); return; }
    if (dir == ".long") { emitItems(4); return; }
    if (dir == ".word") { emitItems(2); return; }
    if (dir == ".byte") { emitItems(1); return; }
    if (dir == ".space") {
        auto nbytes = static_cast<std::uint64_t>(get().value);
        prog.data.insert(prog.data.end(), nbytes, 0);
        return;
    }
    if (dir == ".align") {
        auto a = static_cast<std::uint64_t>(get().value);
        Addr cur = dataBase + prog.data.size();
        std::uint64_t pad = (a - (cur % a)) % a;
        prog.data.insert(prog.data.end(), pad, 0);
        return;
    }
    if (dir == ".asciiz") {
        const std::string &s = get().text;
        for (char ch : s)
            prog.data.push_back(static_cast<std::uint8_t>(ch));
        prog.data.push_back(0);
        return;
    }
    err(strfmt("unknown directive '%s'", dir.c_str()));
}

void
Parser::scanLabels(Program &prog)
{
    pos = 0;
    inText = true;
    InsnIdx textIdx = 0;
    Addr dataAddr = dataBase;

    while (peek().kind != Tok::End) {
        if (accept(Tok::Newline))
            continue;
        if (peek().kind != Tok::Ident)
            err("expected label, mnemonic, or directive");

        // Label?
        if (pos + 1 < toks.size() && toks[pos + 1].kind == Tok::Colon) {
            std::string name = get().text;
            get(); // colon
            Addr a = inText ? Program::pcOf(textIdx) : dataAddr;
            if (!prog.symbols.emplace(name, a).second)
                err(strfmt("duplicate label '%s'", name.c_str()));
            continue;
        }

        std::string word = get().text;
        if (word == ".text") { inText = true; endStmt(); continue; }
        if (word == ".data") { inText = false; endStmt(); continue; }
        if (word == ".global") { skipStmt(); continue; }
        if (word[0] == '.') {
            if (inText)
                err("data directives only allowed in .data");
            dataAddr += dataSize(word, dataAddr);
            endStmt();
            continue;
        }
        // Instruction (including pseudo): one slot.
        if (!inText)
            err("instructions only allowed in .text");
        ++textIdx;
        skipStmt();
    }
}

Instruction
Parser::parseInsn(const std::string &mnem, const Program &prog)
{
    Instruction in;

    // Pseudo-instructions first.
    if (mnem == "mov") {
        // mov ra, rc  ->  bis ra, ra, rc
        in.op = Op::BIS;
        in.ra = parseReg();
        in.rb = in.ra;
        expect(Tok::Comma, "','");
        in.rc = parseReg();
        return in;
    }
    if (mnem == "li") {
        // li rc, imm  ->  lda rc, imm(r31)
        in.op = Op::LDA;
        in.rc = parseReg();
        expect(Tok::Comma, "','");
        in.imm = parseImm(&prog);
        in.ra = regZero;
        in.useImm = true;
        return in;
    }
    if (mnem == "clr") {
        in.op = Op::BIS;
        in.ra = regZero;
        in.rb = regZero;
        in.rc = parseReg();
        return in;
    }

    auto it = mnemonics().find(mnem);
    if (it == mnemonics().end())
        err(strfmt("unknown mnemonic '%s'", mnem.c_str()));
    in.op = it->second;

    switch (in.cls()) {
      case InsnClass::IntAlu:
      case InsnClass::IntMult:
      case InsnClass::FpAlu:
      case InsnClass::FpDiv:
        if (in.op == Op::LDA || in.op == Op::LDAH) {
            // lda rc, imm(ra) | lda rc, imm | lda rc, symbol
            in.rc = parseReg();
            expect(Tok::Comma, "','");
            in.imm = parseImm(&prog);
            in.useImm = true;
            if (accept(Tok::LParen)) {
                in.ra = parseReg();
                expect(Tok::RParen, "')'");
            } else {
                in.ra = regZero;
            }
            return in;
        }
        if (in.op == Op::SEXTB || in.op == Op::SEXTW ||
            in.op == Op::CTPOP || in.op == Op::CTLZ || in.op == Op::CTTZ) {
            // Unary: op ra, rc
            in.ra = parseReg();
            expect(Tok::Comma, "','");
            in.rc = parseReg();
            in.rb = regNone;
            in.useImm = true;   // no second register source
            in.imm = 0;
            return in;
        }
        // op ra, rb_or_imm, rc
        in.ra = parseReg();
        expect(Tok::Comma, "','");
        if (peek().kind == Tok::Reg) {
            in.rb = parseReg();
        } else {
            in.imm = parseImm(&prog);
            in.useImm = true;
            in.rb = regNone;
        }
        expect(Tok::Comma, "','");
        in.rc = parseReg();
        return in;
      case InsnClass::Load:
      case InsnClass::Store:
        // ld/st ra, imm(rb) | ld/st ra, symbol | ld/st ra, symbol(rb)
        in.ra = parseReg();
        expect(Tok::Comma, "','");
        in.imm = parseImm(&prog);
        if (accept(Tok::LParen)) {
            in.rb = parseReg();
            expect(Tok::RParen, "')'");
        } else {
            in.rb = regZero;
        }
        return in;
      case InsnClass::CondBranch:
        in.ra = parseReg();
        expect(Tok::Comma, "','");
        in.imm = parseImm(&prog);
        return in;
      case InsnClass::UncondBranch:
        // br [ra,] target ; bsr [ra,] target (default link: r31 / r26)
        if (peek().kind == Tok::Reg) {
            in.ra = parseReg();
            expect(Tok::Comma, "','");
        } else {
            in.ra = (in.op == Op::BSR) ? regRa : regZero;
        }
        in.imm = parseImm(&prog);
        return in;
      case InsnClass::IndirectJump:
        // jmp [ra,] (rb) ; jsr [ra,] (rb) ; ret [(rb)]
        if (in.op == Op::RET) {
            in.ra = regZero;
            if (accept(Tok::LParen)) {
                in.rb = parseReg();
                expect(Tok::RParen, "')'");
            } else {
                in.rb = regRa;
            }
            return in;
        }
        if (peek().kind == Tok::Reg) {
            in.ra = parseReg();
            expect(Tok::Comma, "','");
        } else {
            in.ra = (in.op == Op::JSR) ? regRa : regZero;
        }
        expect(Tok::LParen, "'('");
        in.rb = parseReg();
        expect(Tok::RParen, "')'");
        return in;
      case InsnClass::Handle:
        // mg ra, rb, rc, mgid
        in.ra = parseReg();
        expect(Tok::Comma, "','");
        in.rb = parseReg();
        expect(Tok::Comma, "','");
        in.rc = parseReg();
        expect(Tok::Comma, "','");
        in.imm = parseImm(&prog);
        return in;
      case InsnClass::Nop:
      case InsnClass::Halt:
        in.ra = regNone;
        in.rb = regNone;
        return in;
    }
    err("unhandled instruction class");
}

void
Parser::emit(Program &prog)
{
    pos = 0;
    inText = true;

    while (peek().kind != Tok::End) {
        if (accept(Tok::Newline))
            continue;
        if (pos + 1 < toks.size() && toks[pos + 1].kind == Tok::Colon) {
            pos += 2;
            continue;
        }
        std::string word = get().text;
        if (word == ".text") { inText = true; endStmt(); continue; }
        if (word == ".data") { inText = false; endStmt(); continue; }
        if (word == ".global") { skipStmt(); continue; }
        if (word[0] == '.') {
            emitData(word, prog);
            endStmt();
            continue;
        }
        prog.text.push_back(parseInsn(word, prog));
        endStmt();
    }
}

} // namespace

Program
assemble(const std::string &source, const std::string &unit)
{
    std::vector<Token> toks = lex(source, unit);
    Program prog;
    Parser p1(toks, unit);
    p1.scanLabels(prog);
    Parser p2(toks, unit);
    p2.emit(prog);
    if (prog.symbols.count("main"))
        prog.entry = prog.symbols.at("main");
    return prog;
}

} // namespace mg
