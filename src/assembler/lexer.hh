/**
 * @file
 * Tokenizer for MG-Alpha assembly source.
 *
 * Comments start with '#' or ';' and run to end of line. Newlines are
 * significant (they terminate statements). Registers are rN / fN,
 * directives begin with '.', and immediates may be decimal or 0x-hex
 * with an optional leading '-'.
 */

#ifndef MG_ASSEMBLER_LEXER_HH
#define MG_ASSEMBLER_LEXER_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mg {

/** Raised for any syntactic or semantic assembly error. */
class AsmError : public std::runtime_error
{
  public:
    explicit AsmError(const std::string &what) : std::runtime_error(what) {}
};

/** Token kinds produced by the lexer. */
enum class Tok : std::uint8_t
{
    Ident,      ///< mnemonic, label reference, or directive (with dot)
    Reg,        ///< rN or fN
    Int,        ///< integer literal
    Str,        ///< "quoted string"
    Comma,
    LParen,
    RParen,
    Colon,
    Plus,
    Minus,
    Newline,
    End,
};

/** One lexed token. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;        ///< identifier / directive text
    std::int64_t value = 0;  ///< integer value or register number
    bool fpReg = false;      ///< register token names an fp register
    int line = 0;            ///< 1-based source line
};

/**
 * Lex @p src completely. The token stream always ends with a single
 * End token. @p unit names the source in diagnostics.
 */
std::vector<Token> lex(const std::string &src, const std::string &unit);

} // namespace mg

#endif // MG_ASSEMBLER_LEXER_HH
