/**
 * @file
 * Two-pass MG-Alpha assembler.
 *
 * Pass 1 walks the token stream assigning addresses to labels (text
 * labels advance by one instruction slot per statement, data labels by
 * the directive's byte size). Pass 2 emits instructions and data with
 * all symbols resolved.
 *
 * Supported directives: .text .data .quad .long .word .byte .space
 * .align .asciiz .global (ignored). Pseudo instructions: mov, li, clr,
 * nop, halt, ret, and unadorned br/bsr/jsr forms.
 *
 * Immediates are not range-limited to 16 bits (a deliberate simulator
 * liberty so label addresses fit in one lda; documented in DESIGN.md).
 */

#ifndef MG_ASSEMBLER_ASSEMBLER_HH
#define MG_ASSEMBLER_ASSEMBLER_HH

#include <string>

#include "isa/instruction.hh"

namespace mg {

/**
 * Assemble @p source into a Program.
 *
 * @param source complete assembly text
 * @param unit   name used in diagnostics
 * @return the assembled program
 * @throws AsmError on any syntax or semantic error
 */
Program assemble(const std::string &source, const std::string &unit = "asm");

} // namespace mg

#endif // MG_ASSEMBLER_ASSEMBLER_HH
