#include "assembler/lexer.hh"

#include <cctype>

#include "common/logging.hh"

namespace mg {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
}

bool
identCont(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
}

} // namespace

std::vector<Token>
lex(const std::string &src, const std::string &unit)
{
    std::vector<Token> out;
    int line = 1;
    size_t i = 0;
    const size_t n = src.size();

    auto err = [&](const std::string &msg) -> void {
        throw AsmError(strfmt("%s:%d: %s", unit.c_str(), line, msg.c_str()));
    };

    auto emit = [&](Tok k) {
        Token t;
        t.kind = k;
        t.line = line;
        out.push_back(t);
    };

    while (i < n) {
        char c = src[i];
        if (c == '#' || c == ';') {
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '\n') {
            // Collapse consecutive newlines.
            if (!out.empty() && out.back().kind != Tok::Newline)
                emit(Tok::Newline);
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == ',') { emit(Tok::Comma); ++i; continue; }
        if (c == '(') { emit(Tok::LParen); ++i; continue; }
        if (c == ')') { emit(Tok::RParen); ++i; continue; }
        if (c == ':') { emit(Tok::Colon); ++i; continue; }
        if (c == '+') { emit(Tok::Plus); ++i; continue; }
        if (c == '"') {
            size_t start = ++i;
            std::string s;
            while (i < n && src[i] != '"') {
                if (src[i] == '\\' && i + 1 < n) {
                    ++i;
                    switch (src[i]) {
                      case 'n': s += '\n'; break;
                      case 't': s += '\t'; break;
                      case '0': s += '\0'; break;
                      case '\\': s += '\\'; break;
                      case '"': s += '"'; break;
                      default: err("bad escape in string");
                    }
                } else {
                    s += src[i];
                }
                ++i;
            }
            if (i >= n)
                err("unterminated string");
            ++i;
            Token t;
            t.kind = Tok::Str;
            t.text = std::move(s);
            t.line = line;
            out.push_back(t);
            (void)start;
            continue;
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            bool neg = false;
            size_t start = i;
            if (c == '-') {
                neg = true;
                ++i;
                if (i >= n || !std::isdigit(static_cast<unsigned char>(src[i]))) {
                    emit(Tok::Minus);
                    continue;
                }
            }
            std::uint64_t v = 0;
            if (i + 1 < n && src[i] == '0' &&
                (src[i + 1] == 'x' || src[i + 1] == 'X')) {
                i += 2;
                if (i >= n || !std::isxdigit(static_cast<unsigned char>(src[i])))
                    err("bad hex literal");
                while (i < n &&
                       std::isxdigit(static_cast<unsigned char>(src[i]))) {
                    char d = src[i];
                    int dv = std::isdigit(static_cast<unsigned char>(d))
                        ? d - '0'
                        : (std::tolower(d) - 'a' + 10);
                    v = v * 16 + static_cast<std::uint64_t>(dv);
                    ++i;
                }
            } else {
                while (i < n &&
                       std::isdigit(static_cast<unsigned char>(src[i]))) {
                    v = v * 10 + static_cast<std::uint64_t>(src[i] - '0');
                    ++i;
                }
            }
            (void)start;
            Token t;
            t.kind = Tok::Int;
            t.value = neg ? -static_cast<std::int64_t>(v)
                          : static_cast<std::int64_t>(v);
            t.line = line;
            out.push_back(t);
            continue;
        }
        if (identStart(c)) {
            size_t start = i;
            while (i < n && identCont(src[i]))
                ++i;
            std::string word = src.substr(start, i - start);
            // Register tokens: r0-r31, f0-f31 (bare, all digits after).
            if ((word[0] == 'r' || word[0] == 'f') && word.size() <= 3 &&
                word.size() >= 2) {
                bool digits = true;
                for (size_t k = 1; k < word.size(); ++k) {
                    if (!std::isdigit(static_cast<unsigned char>(word[k])))
                        digits = false;
                }
                if (digits) {
                    int rn = std::stoi(word.substr(1));
                    if (rn < 0 || rn > 31)
                        err(strfmt("register %s out of range", word.c_str()));
                    Token t;
                    t.kind = Tok::Reg;
                    t.value = rn;
                    t.fpReg = (word[0] == 'f');
                    t.line = line;
                    out.push_back(t);
                    continue;
                }
            }
            Token t;
            t.kind = Tok::Ident;
            t.text = std::move(word);
            t.line = line;
            out.push_back(t);
            continue;
        }
        err(strfmt("unexpected character '%c'", c));
    }
    if (!out.empty() && out.back().kind != Tok::Newline)
        emit(Tok::Newline);
    emit(Tok::End);
    return out;
}

} // namespace mg
