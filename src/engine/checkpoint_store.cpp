#include "engine/checkpoint_store.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/logging.hh"
#include "common/serial.hh"
#include "engine/fault_inject.hh"
#include "sim/simulator.hh"

namespace fs = std::filesystem;

namespace mg {

namespace {

constexpr std::uint32_t storeMagic = 0x4b43474d;   // "MGCK"
constexpr const char *storeExt = ".mgck";

/** Zero-run-length encode: 0x00 becomes 0x00 + run length (1-255);
 *  other bytes pass through. Cache tag arrays and sparse pages are
 *  zero-heavy, so this typically shrinks records several-fold at
 *  memcpy-like speed. */
std::vector<std::uint8_t>
rleEncode(const std::vector<std::uint8_t> &in)
{
    std::vector<std::uint8_t> out;
    out.reserve(in.size() / 2 + 16);
    for (std::size_t i = 0; i < in.size();) {
        std::uint8_t b = in[i];
        if (b != 0) {
            out.push_back(b);
            ++i;
            continue;
        }
        std::size_t run = 1;
        while (run < 255 && i + run < in.size() && in[i + run] == 0)
            ++run;
        out.push_back(0);
        out.push_back(static_cast<std::uint8_t>(run));
        i += run;
    }
    return out;
}

/** @return false when the stream is malformed or decodes past
 *  @p expect bytes. */
bool
rleDecode(const std::uint8_t *in, std::size_t len,
          std::vector<std::uint8_t> &out, std::size_t expect)
{
    out.clear();
    out.reserve(expect);
    for (std::size_t i = 0; i < len;) {
        std::uint8_t b = in[i++];
        if (b != 0) {
            out.push_back(b);
        } else {
            if (i >= len)
                return false;
            std::uint8_t run = in[i++];
            if (run == 0 || out.size() + run > expect)
                return false;
            out.insert(out.end(), run, 0);
        }
        if (out.size() > expect)
            return false;
    }
    return out.size() == expect;
}

} // namespace

CheckpointStore::CheckpointStore(CheckpointStoreConfig cfg)
    : cfg_(std::move(cfg))
{
    std::error_code ec;
    fs::create_directories(cfg_.dir, ec);
    if (ec || !fs::is_directory(cfg_.dir, ec) || ec) {
        warn("checkpoint store: cannot use directory '%s' (%s); "
             "store disabled, runs fall back to functional warming",
             cfg_.dir.c_str(),
             ec ? ec.message().c_str() : "not a directory");
        return;
    }
    dirOk_ = true;
    scanDir();
}

void
CheckpointStore::scanDir()
{
    std::error_code ec;
    // Seed LRU recency from on-disk mtimes so eviction order survives
    // across sessions; within this session, touches use a monotonic
    // stamp above everything scanned.
    std::vector<std::pair<std::int64_t, std::string>> found;
    for (fs::directory_iterator it(cfg_.dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        const fs::directory_entry &e = *it;
        if (!e.is_regular_file(ec) || ec)
            continue;
        std::string p = e.path().string();
        if (p.size() < 5 || p.compare(p.size() - 5, 5, storeExt) != 0)
            continue;
        std::uint64_t sz = e.file_size(ec);
        if (ec)
            continue;
        auto m = e.last_write_time(ec);
        std::int64_t mt =
            ec ? 0 : m.time_since_epoch().count();
        found.emplace_back(mt, std::move(p));
        index_[found.back().second].size = sz;
        totalBytes_ += sz;
    }
    std::sort(found.begin(), found.end());
    for (const auto &[mt, p] : found)
        index_[p].stamp = ++stampSeq_;
}

std::string
CheckpointStore::pathOf(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof name, "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(key.data(), key.size())));
    return cfg_.dir + "/" + name + storeExt;
}

bool
CheckpointStore::load(const std::string &key,
                      std::vector<std::uint8_t> &payload)
{
    if (!dirOk_)
        return false;
    // Injectable read failure (a TransientError the engine retries);
    // fires before any store state is touched, like a real I/O error
    // at the start of the read.
    faultPoint(FaultSite::StoreRead, key);
    std::lock_guard<std::mutex> lock(mu_);
    std::string path = pathOf(key);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        ++ctr_.misses;
        return false;
    }
    std::vector<std::uint8_t> raw;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        raw.insert(raw.end(), buf, buf + n);
    bool readOk = !std::ferror(f);
    std::fclose(f);

    auto reject = [&](const char *why) {
        ++ctr_.corrupt;
        ++ctr_.misses;
        warn("checkpoint store: rejecting '%s' (%s); recomputing",
             path.c_str(), why);
        std::error_code ec;
        fs::remove(path, ec);
        auto it = index_.find(path);
        if (it != index_.end()) {
            totalBytes_ -= std::min(totalBytes_, it->second.size);
            index_.erase(it);
        }
        return false;
    };

    if (!readOk)
        return reject("read error");
    SerialReader r(raw);
    if (r.u32() != storeMagic)
        return reject("bad magic");
    if (r.u32() != formatVersion)
        return reject("stale format version");
    std::uint8_t encoding = r.u8();
    std::string storedKey = r.str();
    std::uint64_t payloadLen = r.u64();
    std::uint64_t checksum = r.u64();
    if (!r.ok())
        return reject("truncated header");
    if (storedKey != key) {
        // A different key hashed to this file name: not our record.
        // Leave it alone (it is valid for its own key); the next
        // store() for our key overwrites it — last writer wins.
        ++ctr_.misses;
        return false;
    }
    if (encoding == 1) {
        if (!rleDecode(raw.data() + r.pos(), r.remaining(), payload,
                       static_cast<std::size_t>(payloadLen)))
            return reject("truncated payload");
    } else if (encoding == 0) {
        if (r.remaining() != payloadLen)
            return reject("truncated payload");
        payload.assign(raw.begin() +
                           static_cast<std::ptrdiff_t>(r.pos()),
                       raw.end());
    } else {
        return reject("unknown encoding");
    }
    if (fnv1a64(payload.data(), payload.size()) != checksum)
        return reject("checksum mismatch");

    ++ctr_.hits;
    touch(path);
    return true;
}

void
CheckpointStore::touch(const std::string &path)
{
    auto it = index_.find(path);
    if (it != index_.end())
        it->second.stamp = ++stampSeq_;
    // Refresh the on-disk mtime so cross-session eviction order sees
    // this use; best-effort (recency is an optimization, not
    // correctness).
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

void
CheckpointStore::writeFailed(const char *what, const std::string &path)
{
    writeGate_.fail("checkpoint store: %s failed for '%s'; disabling "
                    "writebacks (loads continue, runs stay correct)",
                    what, path.c_str());
    std::error_code ec;
    fs::remove(path, ec);
}

void
CheckpointStore::store(const std::string &key,
                       const std::vector<std::uint8_t> &payload)
{
    if (!dirOk_ || !writeGate_.ok())
        return;
    // Injectable write failure, thrown rather than latched: it models
    // an error that escapes into the cell (the engine retries it),
    // not one the store fields itself.
    faultPoint(FaultSite::StoreWrite, key);
    std::lock_guard<std::mutex> lock(mu_);
    if (!writeGate_.ok())
        return;
    std::string path = pathOf(key);
    std::string tmp = path + ".tmp";

    SerialWriter hdr;
    hdr.u32(storeMagic);
    hdr.u32(formatVersion);
    hdr.u8(1);   // zero-RLE payload
    hdr.str(key);
    hdr.u64(payload.size());
    hdr.u64(fnv1a64(payload.data(), payload.size()));
    std::vector<std::uint8_t> body = rleEncode(payload);

    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        writeFailed("open", tmp);
        return;
    }
    bool ok =
        std::fwrite(hdr.data().data(), 1, hdr.size(), f) == hdr.size() &&
        (body.empty() ||
         std::fwrite(body.data(), 1, body.size(), f) == body.size());
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        writeFailed("write", tmp);
        return;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        writeFailed("rename", tmp);
        return;
    }

    std::uint64_t size = hdr.size() + body.size();
    auto [it, inserted] = index_.try_emplace(path);
    if (!inserted)
        totalBytes_ -= std::min(totalBytes_, it->second.size);
    it->second.size = size;
    it->second.stamp = ++stampSeq_;
    totalBytes_ += size;
    ++ctr_.writebacks;
    evictUnderLock();
}

void
CheckpointStore::evictUnderLock()
{
    if (totalBytes_ <= cfg_.capBytes)
        return;
    std::vector<std::pair<std::uint64_t, std::string>> byAge;
    byAge.reserve(index_.size());
    // Eviction order is stamp order, never hash order.
    // mglint:allow(unordered-iter): pairs copied then sorted below
    for (const auto &[path, e] : index_)
        byAge.emplace_back(e.stamp, path);
    std::sort(byAge.begin(), byAge.end());
    for (const auto &[stamp, path] : byAge) {
        if (totalBytes_ <= cfg_.capBytes)
            break;
        std::error_code ec;
        fs::remove(path, ec);
        auto it = index_.find(path);
        totalBytes_ -= std::min(totalBytes_, it->second.size);
        index_.erase(it);
        ++ctr_.evictions;
    }
}

CheckpointStoreCounters
CheckpointStore::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ctr_;
}

namespace {

/** The engine's CellCheckpointClient: derives record keys from the
 *  cell fingerprint and (de)serializes the violation-pair seed. */
class StoreCellClient : public CellCheckpointClient
{
  public:
    StoreCellClient(CheckpointStore &store, std::string cellKey)
        : store_(store), cellKey_(std::move(cellKey))
    {}

    bool
    loadWarm(std::uint64_t pos, std::uint64_t seedHash,
             std::vector<std::uint8_t> &bytes) override
    {
        return store_.load(warmKey(pos, seedHash), bytes);
    }

    void
    storeWarm(std::uint64_t pos, std::uint64_t seedHash,
              const std::vector<std::uint8_t> &bytes) override
    {
        store_.store(warmKey(pos, seedHash), bytes);
    }

    bool
    loadViolPairs(std::vector<std::pair<Addr, Addr>> &out) override
    {
        std::vector<std::uint8_t> raw;
        if (!store_.load("viol|" + cellKey_, raw))
            return false;
        SerialReader r(raw);
        std::uint64_t n = r.u64();
        if (n > r.remaining() / 16)
            return false;   // malformed; treat as absent
        out.clear();
        out.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            Addr a = r.u64();
            Addr b = r.u64();
            out.emplace_back(a, b);
        }
        return r.ok();
    }

    void
    storeViolPairs(
        const std::vector<std::pair<Addr, Addr>> &pairs) override
    {
        SerialWriter w;
        w.u64(pairs.size());
        for (const auto &[a, b] : pairs) {
            w.u64(a);
            w.u64(b);
        }
        store_.store("viol|" + cellKey_, w.data());
    }

  private:
    std::string
    warmKey(std::uint64_t pos, std::uint64_t seedHash) const
    {
        char suffix[64];
        std::snprintf(suffix, sizeof suffix, "|s%016llx|p%llu",
                      static_cast<unsigned long long>(seedHash),
                      static_cast<unsigned long long>(pos));
        return "warm|" + cellKey_ + suffix;
    }

    CheckpointStore &store_;
    std::string cellKey_;
};

} // namespace

std::unique_ptr<CellCheckpointClient>
makeCellClient(CheckpointStore &store, const std::string &cellKey)
{
    return std::make_unique<StoreCellClient>(store, cellKey);
}

} // namespace mg
