/**
 * @file
 * The ExperimentEngine: the one driver every bench and example runs
 * through. It owns thread-safe caches of the immutable experiment
 * artifacts (BlockProfile, PreparedMg, CoreStats) keyed by canonical
 * fingerprints, and executes kernel×configuration matrices on a worker
 * pool with deterministic, ordered aggregation — a parallel sweep is
 * bit-identical to a serial one because every cell is a pure function
 * of its (workload, config) key and results land in pre-assigned
 * row-major slots.
 *
 * Concurrency contract (audited across emu/uarch/mg): a cell touches
 * only its own Emulator/Core plus shared *const* artifacts; the only
 * process-global mutable state in the library is the assembly cache in
 * workloads/kernel.cpp, which serialises behind its own mutex. Setup
 * closures must be deterministic and must not capture mutable shared
 * state.
 */

#ifndef MG_ENGINE_ENGINE_HH
#define MG_ENGINE_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/artifact_cache.hh"
#include "engine/checkpoint_store.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"

namespace mg {

/** One unit of work a cell can run: a program plus its inputs. */
struct EngineWorkload
{
    std::string id;       ///< cache identity; unique per (program, setup)
    std::string suite;    ///< reporting label (may be empty)
    const Program *program = nullptr;
    SetupFn setup;        ///< deterministic input planting
};

/** One configuration column of a sweep matrix. */
struct SweepColumn
{
    std::string name;
    SimConfig config;
    /** false = compute profile/prepare artifacts only (coverage
     *  studies); the cell's stats stay zero. */
    bool timing = true;
};

/** A kernel×configuration matrix request. */
struct SweepSpec
{
    std::string title;
    std::vector<EngineWorkload> workloads;   ///< rows
    std::vector<SweepColumn> columns;
    int baselineColumn = -1;                 ///< speedup reference
};

/** A timing run plus the wall-clock its computation took. The seconds
 *  are recorded once at compute time and travel with the cached
 *  artifact, so cache hits report the cost of the original run —
 *  which is what makes per-cell simulator throughput (committed work
 *  per wall-second) comparable across sweeps and PRs. */
struct TimedStats
{
    CoreStats stats;
    double seconds = 0;
};

/** Sampled-run counterpart of TimedStats. */
struct TimedSampled
{
    SampledStats stats;
    double seconds = 0;
};

/** Cache effectiveness counters for one engine. */
struct EngineCounters
{
    std::uint64_t profileComputes = 0;
    std::uint64_t profileHits = 0;
    std::uint64_t prepareComputes = 0;
    std::uint64_t prepareHits = 0;
    std::uint64_t runComputes = 0;
    std::uint64_t runHits = 0;
    std::uint64_t summaryComputes = 0;
    std::uint64_t summaryHits = 0;
    std::uint64_t sampledComputes = 0;
    std::uint64_t sampledHits = 0;
};

/** The parallel, caching experiment driver. */
class ExperimentEngine
{
  public:
    /** @param jobs worker threads per sweep; <=1 serial, 0 = all
     *         hardware threads. */
    explicit ExperimentEngine(int jobs = 1);

    /** Profile @p w (cached). */
    std::shared_ptr<const BlockProfile>
    profile(const EngineWorkload &w, std::uint64_t budget);

    /** Select + rewrite @p w for @p cfg (cached; profiles on demand). */
    std::shared_ptr<const PreparedMg>
    prepare(const EngineWorkload &w, const SimConfig &cfg);

    /** End-to-end timing of one cell (cached). */
    CoreStats cell(const EngineWorkload &w, const SimConfig &cfg);

    /** cell() plus the wall-clock seconds its compute took. */
    TimedStats cellTimed(const EngineWorkload &w, const SimConfig &cfg);

    /**
     * Functional sample summary for the binary @p cfg executes on
     * @p w (cached). Keyed by binary + sampling grid only, so every
     * column sharing that binary reuses one summary — and with it the
     * fast-forward checkpoints.
     */
    std::shared_ptr<const SampleSummary>
    summary(const EngineWorkload &w, const SimConfig &cfg);

    /** Sampled end-to-end timing of one cell (cached). */
    SampledStats cellSampled(const EngineWorkload &w, const SimConfig &cfg);

    /** cellSampled() plus the wall-clock seconds its compute took. */
    TimedSampled cellSampledTimed(const EngineWorkload &w,
                                  const SimConfig &cfg);

    /**
     * Execute the full matrix. Cells are distributed over the worker
     * pool; the result layout and every cell value are independent of
     * the job count.
     */
    SweepResult sweep(const SweepSpec &spec);

    int jobs() const { return jobs_; }
    EngineCounters counters() const;

    /**
     * Attach an on-disk warm-checkpoint store. Sampled warm-through
     * cells then persist (and restore) their sample summaries,
     * per-chunk warm state, and discovered violation-pair seeds across
     * processes, and run the two-pass violation-seeded scheme (see
     * runCellSampled's store overload). Full-simulation cells,
     * jump-mode cells, and engines without a store are unaffected —
     * their results stay bit-identical to a store-less engine. Null
     * (the default) detaches.
     */
    void
    setCheckpointStore(std::shared_ptr<CheckpointStore> s)
    {
        store_ = std::move(s);
    }

    const std::shared_ptr<CheckpointStore> &
    checkpointStore() const
    {
        return store_;
    }

  private:
    SweepCell runOne(const EngineWorkload &w, const SweepColumn &col);

    /** The store, when it should serve @p sp; else null. */
    CheckpointStore *storeFor(const SamplingParams &sp) const;

    int jobs_;
    std::shared_ptr<CheckpointStore> store_;
    ArtifactCache<BlockProfile> profiles;
    ArtifactCache<PreparedMg> prepared;
    ArtifactCache<TimedStats> runs;
    ArtifactCache<SampleSummary> summaries;
    ArtifactCache<TimedSampled> sampledRuns;
};

} // namespace mg

#endif // MG_ENGINE_ENGINE_HH
