/**
 * @file
 * The ExperimentEngine: the one driver every bench and example runs
 * through. It owns thread-safe caches of the immutable experiment
 * artifacts (BlockProfile, PreparedMg, CoreStats) keyed by canonical
 * fingerprints, and executes kernel×configuration matrices on a worker
 * pool with deterministic, ordered aggregation — a parallel sweep is
 * bit-identical to a serial one because every cell is a pure function
 * of its (workload, config) key and results land in pre-assigned
 * row-major slots.
 *
 * Concurrency contract (audited across emu/uarch/mg): a cell touches
 * only its own Emulator/Core plus shared *const* artifacts; the only
 * process-global mutable state in the library is the assembly cache in
 * workloads/kernel.cpp, which serialises behind its own mutex. Setup
 * closures must be deterministic and must not capture mutable shared
 * state.
 */

#ifndef MG_ENGINE_ENGINE_HH
#define MG_ENGINE_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/artifact_cache.hh"
#include "engine/checkpoint_store.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"

namespace mg {

class DeadlineWatchdog;   // engine.cpp

/** One unit of work a cell can run: a program plus its inputs. */
struct EngineWorkload
{
    std::string id;       ///< cache identity; unique per (program, setup)
    std::string suite;    ///< reporting label (may be empty)
    const Program *program = nullptr;
    SetupFn setup;        ///< deterministic input planting
};

/** One configuration column of a sweep matrix. */
struct SweepColumn
{
    std::string name;
    SimConfig config;
    /** false = compute profile/prepare artifacts only (coverage
     *  studies); the cell's stats stay zero. */
    bool timing = true;
};

/** A kernel×configuration matrix request. */
struct SweepSpec
{
    std::string title;
    std::vector<EngineWorkload> workloads;   ///< rows
    std::vector<SweepColumn> columns;
    int baselineColumn = -1;                 ///< speedup reference
};

/** A timing run plus the wall-clock its computation took. The seconds
 *  are recorded once at compute time and travel with the cached
 *  artifact, so cache hits report the cost of the original run —
 *  which is what makes per-cell simulator throughput (committed work
 *  per wall-second) comparable across sweeps and PRs. */
struct TimedStats
{
    CoreStats stats;
    double seconds = 0;
};

/** Sampled-run counterpart of TimedStats. */
struct TimedSampled
{
    SampledStats stats;
    double seconds = 0;
};

/**
 * Per-cell failure handling: how long a cell may run, and how
 * transient failures are retried. The defaults (no deadline, two
 * retries) keep a policy-less engine byte-identical to the
 * pre-fault-tolerance one — nothing fires unless something fails.
 */
struct FaultPolicy
{
    /** Wall-clock deadline per cell attempt in seconds; 0 disables.
     *  Enforced cooperatively: a watchdog thread sets the attempt's
     *  cancel flag, the timing loop / functional pre-pass polls it
     *  and throws CellTimeout (never retried). */
    double cellTimeoutS = 0;
    /** Re-executions after a TransientError (I/O hiccups, injected
     *  transient faults). A retried cell recomputes from scratch —
     *  the artifact caches drop failed entries — and is bit-identical
     *  to one that never failed. */
    int cellRetries = 2;
    /** Base backoff before retry k: backoffMs << k, plus a
     *  deterministic jitter hashed from the cell key. */
    int backoffMs = 20;
};

/** Cache effectiveness counters for one engine. */
struct EngineCounters
{
    std::uint64_t profileComputes = 0;
    std::uint64_t profileHits = 0;
    std::uint64_t prepareComputes = 0;
    std::uint64_t prepareHits = 0;
    std::uint64_t runComputes = 0;
    std::uint64_t runHits = 0;
    std::uint64_t summaryComputes = 0;
    std::uint64_t summaryHits = 0;
    std::uint64_t sampledComputes = 0;
    std::uint64_t sampledHits = 0;
};

/** The parallel, caching experiment driver. */
class ExperimentEngine
{
  public:
    /** @param jobs worker threads per sweep; <=1 serial, 0 = all
     *         hardware threads. */
    explicit ExperimentEngine(int jobs = 1);

    ~ExperimentEngine();

    /** Profile @p w (cached). */
    std::shared_ptr<const BlockProfile>
    profile(const EngineWorkload &w, std::uint64_t budget);

    /** Select + rewrite @p w for @p cfg (cached; profiles on demand). */
    std::shared_ptr<const PreparedMg>
    prepare(const EngineWorkload &w, const SimConfig &cfg);

    /** End-to-end timing of one cell (cached). */
    CoreStats cell(const EngineWorkload &w, const SimConfig &cfg);

    /** cell() plus the wall-clock seconds its compute took. A non-null
     *  @p cancel attaches the per-attempt deadline flag to the compute
     *  (cache hits never consult it). */
    TimedStats cellTimed(const EngineWorkload &w, const SimConfig &cfg,
                         const std::atomic<bool> *cancel = nullptr);

    /**
     * Functional sample summary for the binary @p cfg executes on
     * @p w (cached). Keyed by binary + sampling grid only, so every
     * column sharing that binary reuses one summary — and with it the
     * fast-forward checkpoints.
     */
    std::shared_ptr<const SampleSummary>
    summary(const EngineWorkload &w, const SimConfig &cfg,
            const std::atomic<bool> *cancel = nullptr);

    /** Sampled end-to-end timing of one cell (cached). */
    SampledStats cellSampled(const EngineWorkload &w, const SimConfig &cfg);

    /** cellSampled() plus the wall-clock seconds its compute took.
     *  @p cancel as in cellTimed. */
    TimedSampled cellSampledTimed(const EngineWorkload &w,
                                  const SimConfig &cfg,
                                  const std::atomic<bool> *cancel =
                                      nullptr);

    /**
     * Execute the full matrix. Cells are distributed over the worker
     * pool; the result layout and every cell value are independent of
     * the job count.
     *
     * Every cell runs inside its own failure domain: an exception
     * becomes that cell's CellOutcome (Failed/TimedOut) and the sweep
     * always completes with every other cell intact. Transient
     * failures retry per the FaultPolicy; a configured journal
     * replays finished cells from a previous (possibly killed) run of
     * the same spec and records each Ok cell as it completes; dry-run
     * mode prints the cell plan and simulates nothing.
     */
    SweepResult sweep(const SweepSpec &spec);

    int jobs() const { return jobs_; }
    EngineCounters counters() const;

    /** Install @p p (and start the deadline watchdog it needs). */
    void setFaultPolicy(const FaultPolicy &p);

    const FaultPolicy &faultPolicy() const { return policy_; }

    /** Journal sweeps under @p dir (one file per sweep spec); "" (the
     *  default) disables journaling. See engine/journal.hh. */
    void setJournalDir(std::string dir) { journalDir_ = std::move(dir); }

    const std::string &journalDir() const { return journalDir_; }

    /** Plan-only sweeps: print each cell's identity, fingerprint, and
     *  journal hit/miss, simulate nothing, return a planOnly result. */
    void setDryRun(bool on) { dryRun_ = on; }

    bool dryRun() const { return dryRun_; }

    /**
     * Attach an on-disk warm-checkpoint store. Sampled warm-through
     * cells then persist (and restore) their sample summaries,
     * per-chunk warm state, and discovered violation-pair seeds across
     * processes, and run the two-pass violation-seeded scheme (see
     * runCellSampled's store overload). Full-simulation cells,
     * jump-mode cells, and engines without a store are unaffected —
     * their results stay bit-identical to a store-less engine. Null
     * (the default) detaches.
     */
    void
    setCheckpointStore(std::shared_ptr<CheckpointStore> s)
    {
        store_ = std::move(s);
    }

    const std::shared_ptr<CheckpointStore> &
    checkpointStore() const
    {
        return store_;
    }

  private:
    /** One cell inside its failure domain: watchdog-armed attempts,
     *  transient-failure retries with backoff, and exception-to-
     *  outcome conversion. Never throws. */
    SweepCell runOne(const EngineWorkload &w, const SweepColumn &col);

    /** One attempt's actual compute (the pre-fault-tolerance runOne
     *  body); throws on failure. */
    SweepCell computeCell(const EngineWorkload &w, const SweepColumn &col,
                          const std::atomic<bool> *cancel);

    /** The store, when it should serve @p sp; else null. */
    CheckpointStore *storeFor(const SamplingParams &sp) const;

    /** The cell's critical-path analysis run (cached): one traced
     *  re-execution plus the analyzer walks (see runCellTraced). */
    CritPathSummary critpathCell(const EngineWorkload &w,
                                 const SimConfig &cfg,
                                 const std::atomic<bool> *cancel);

    int jobs_;
    FaultPolicy policy_;
    std::unique_ptr<DeadlineWatchdog> watchdog_;
    std::string journalDir_;
    bool dryRun_ = false;
    std::shared_ptr<CheckpointStore> store_;
    ArtifactCache<BlockProfile> profiles;
    ArtifactCache<PreparedMg> prepared;
    ArtifactCache<TimedStats> runs;
    ArtifactCache<SampleSummary> summaries;
    ArtifactCache<TimedSampled> sampledRuns;
    ArtifactCache<CritPathSummary> critpathRuns;
};

} // namespace mg

#endif // MG_ENGINE_ENGINE_HH
