#include "engine/fault_inject.hh"

#include <chrono>
#include <new>
#include <thread>

#include "common/failsoft.hh"
#include "common/logging.hh"
#include "common/serial.hh"

namespace mg {

namespace {

/** Site names as they appear in spec rules. */
bool
parseSite(const std::string &s, FaultSite &out)
{
    if (s == "cell") out = FaultSite::Cell;
    else if (s == "fail") out = FaultSite::CellFail;
    else if (s == "alloc") out = FaultSite::Alloc;
    else if (s == "stall") out = FaultSite::Stall;
    else if (s == "store-read") out = FaultSite::StoreRead;
    else if (s == "store-write") out = FaultSite::StoreWrite;
    else return false;
    return true;
}

/** Uniform [0,1) from a seeded hash of @p key — the per-key arming
 *  coin. Stable across runs, platforms, and retry schedules. */
double
keyUnit(const std::string &key, std::uint64_t seed)
{
    std::uint64_t h = fnv1a64(key.data(), key.size()) ^
        (seed * 0x9e3779b97f4a7c15ull);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return static_cast<double>(h >> 11) /
        static_cast<double>(1ull << 53);
}

/** One parsed rule from `site[@match][:k=v]...`. */
FaultRule
parseRule(const std::string &text)
{
    FaultRule r;
    std::size_t cur = text.find_first_of("@:");
    std::string site = text.substr(0, cur);
    if (!parseSite(site, r.site))
        fatal("fault spec: unknown site '%s' in rule '%s'", site.c_str(),
              text.c_str());
    if (cur != std::string::npos && text[cur] == '@') {
        std::size_t end = text.find(':', cur + 1);
        r.match = text.substr(cur + 1,
                              end == std::string::npos ? std::string::npos
                                                       : end - cur - 1);
        cur = end;
    }
    while (cur != std::string::npos) {
        std::size_t end = text.find(':', cur + 1);
        std::string opt = text.substr(cur + 1,
                                      end == std::string::npos
                                          ? std::string::npos
                                          : end - cur - 1);
        std::size_t eq = opt.find('=');
        if (eq == std::string::npos)
            fatal("fault spec: malformed option '%s' in rule '%s'",
                  opt.c_str(), text.c_str());
        std::string k = opt.substr(0, eq);
        std::string v = opt.substr(eq + 1);
        try {
            if (k == "p")
                r.p = std::stod(v);
            else if (k == "count")
                r.count = static_cast<std::uint32_t>(std::stoul(v));
            else if (k == "ms")
                r.stallMs = static_cast<std::uint32_t>(std::stoul(v));
            else if (k == "seed")
                r.seed = std::stoull(v);
            else
                fatal("fault spec: unknown option '%s' in rule '%s'",
                      k.c_str(), text.c_str());
        } catch (const std::exception &) {
            fatal("fault spec: bad value '%s' for option '%s' in rule "
                  "'%s'", v.c_str(), k.c_str(), text.c_str());
        }
        cur = end;
    }
    if (r.p < 0.0 || r.p > 1.0)
        fatal("fault spec: p=%g out of [0,1] in rule '%s'", r.p,
              text.c_str());
    return r;
}

} // namespace

void
FaultInjector::configure(const std::string &spec)
{
    std::lock_guard<std::mutex> lk(mu_);
    rules_.clear();
    firings_.clear();
    fired_ = 0;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        if (end > pos)
            rules_.push_back(parseRule(spec.substr(pos, end - pos)));
        pos = end + 1;
    }
    armed_.store(!rules_.empty(), std::memory_order_relaxed);
}

void
FaultInjector::at(FaultSite site, const std::string &key,
                  const std::atomic<bool> *cancel)
{
    std::uint32_t stallMs = 0;
    bool fire = false;
    FaultSite fireSite = site;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (std::size_t i = 0; i < rules_.size(); ++i) {
            const FaultRule &r = rules_[i];
            if (r.site != site)
                continue;
            if (!r.match.empty() &&
                key.find(r.match) == std::string::npos)
                continue;
            if (r.p < 1.0 && keyUnit(key, r.seed) >= r.p)
                continue;
            std::uint32_t &n = firings_[std::to_string(i) + "|" + key];
            if (r.count && n >= r.count)
                continue;       // healed for this key
            ++n;
            ++fired_;
            fire = true;
            fireSite = r.site;
            stallMs = r.stallMs;
            break;
        }
    }
    if (!fire)
        return;
    switch (fireSite) {
      case FaultSite::Cell:
        throw TransientError(
            strfmt("injected transient fault at '%s'", key.c_str()));
      case FaultSite::CellFail:
        throw std::runtime_error(
            strfmt("injected permanent fault at '%s'", key.c_str()));
      case FaultSite::Alloc:
        throw std::bad_alloc();
      case FaultSite::Stall: {
        // Sleep in short slices so the deadline watchdog can still
        // cancel a stalled cell promptly.
        auto end = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(stallMs);
        while (std::chrono::steady_clock::now() < end) {
            if (cancel && cancel->load(std::memory_order_relaxed))
                throw CellTimeout(
                    strfmt("cell deadline exceeded (stalled at '%s')",
                           key.c_str()));
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return;
      }
      case FaultSite::StoreRead:
        throw TransientError(
            strfmt("injected store-read fault at '%s'", key.c_str()));
      case FaultSite::StoreWrite:
        throw TransientError(
            strfmt("injected store-write fault at '%s'", key.c_str()));
    }
}

std::uint64_t
FaultInjector::fired() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return fired_;
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector fi;
    return fi;
}

} // namespace mg
