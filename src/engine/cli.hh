/**
 * @file
 * Tiny shared command line for the sweep drivers: every bench accepts
 * `--jobs N` (parallel cells, 0 = all hardware threads) and
 * `--json PATH` (override the default BENCH_<name>.json location);
 * anything unrecognised is passed through for bench-specific flags.
 */

#ifndef MG_ENGINE_CLI_HH
#define MG_ENGINE_CLI_HH

#include <string>
#include <vector>

namespace mg {

/** Parsed common bench options. */
struct CliOptions
{
    int jobs = 1;               ///< --jobs N / -j N (0 = hardware)
    std::string jsonPath;       ///< --json PATH ("" = default name)
    std::vector<std::string> rest;  ///< unconsumed arguments

    /** @return true when @p flag appears among the leftover args. */
    bool has(const std::string &flag) const;
};

/** Parse argv; fatal() on malformed --jobs/--json. */
CliOptions parseCli(int argc, char **argv);

} // namespace mg

#endif // MG_ENGINE_CLI_HH
