/**
 * @file
 * Tiny shared command line for the sweep drivers: every bench accepts
 * `--jobs N` (parallel cells, 0 = all hardware threads), `--json PATH`
 * (override the default BENCH_<name>.json location), workload-tier
 * selection `--scale ref|long|huge` (the M-scale long tier, every
 * kernel; the 10M+-scale huge tier, one kernel per suite) and
 * `--list-kernels` (print the kernel registry and exit), and the
 * sampled simulation flags `--sample-interval N` (measure N work units
 * per period; enables sampling), `--sample-period N` (work between
 * measurement starts, default 12× interval), `--warmup N` (detailed
 * pre-measurement warmup work), `--no-ss-shadow` (disable store-set
 * shadow training during fast-forward), `--no-warm-through` (restore
 * checkpoint-jump fast-forward instead of the default warm-through
 * mode — faster, but inaccurate on footprint-bound kernels), and
 * `--full` (force full cycle-accurate simulation, overriding the
 * sampling flags). Warm-through sampled runs get an on-disk
 * warm-checkpoint store: `--checkpoint-dir PATH` overrides its
 * location (default `$MG_CHECKPOINT_DIR`, else
 * `.mg-cache/checkpoints`), `--checkpoint-cap-mb N` its LRU size cap,
 * and `--no-checkpoint-store` disables it.
 *
 * Fault tolerance (see engine.hh FaultPolicy and engine/journal.hh):
 * `--cell-timeout-s S` caps each cell attempt's wall clock (default
 * scales with the tier — 600s ref, 3600s long, 14400s huge; 0
 * disables), `--cell-retries N` and `--cell-backoff-ms N` shape the
 * transient-failure retry loop, `--journal-dir PATH` enables the
 * crash-safe sweep journal (default `$MG_JOURNAL_DIR`, else off;
 * `--no-journal` forces off), `--fault-inject SPEC` arms the
 * deterministic fault injector (default `$MG_FAULT_SPEC`; see
 * engine/fault_inject.hh for the rule grammar), and `--dry-run`
 * prints the sweep's cell plan — ids, fingerprints, journal
 * hit/miss — without simulating anything.
 *
 * Critical-path analysis (see analysis/critpath.hh): `--critpath`
 * runs every timing cell once more with a retired-event trace
 * attached and publishes the analyzer's per-kernel breakdown into the
 * JSON report; `--trace N` bounds the trace ring to N retired events
 * (implies --critpath; 0 keeps the default ring), and
 * `--whatif key=val[,key=val...]` additionally predicts the cell's
 * cycle count under re-weighted edges (implies --critpath). Without
 * any of the three, no trace is attached and reports are
 * byte-identical to analyzer-less builds. Anything unrecognised is
 * passed through for bench-specific flags.
 */

#ifndef MG_ENGINE_CLI_HH
#define MG_ENGINE_CLI_HH

#include <string>
#include <vector>

#include "engine/engine.hh"
#include "workloads/kernel.hh"

namespace mg {

/** Parsed common bench options. */
struct CliOptions
{
    int jobs = 1;               ///< --jobs N / -j N (0 = hardware)
    std::string jsonPath;       ///< --json PATH ("" = default name)
    Scale scale = Scale::Ref;   ///< --scale ref|long|huge (workload
                                ///< tier)
    std::uint64_t sampleInterval = 0;   ///< --sample-interval N (0 = off)
    std::uint64_t samplePeriod = 0;     ///< --sample-period N (0 = 12×)
    std::uint64_t sampleWarmup = ~0ull; ///< --warmup N (~0 = default)
    bool ssShadow = true;       ///< --no-ss-shadow clears it
    bool warmThrough = true;    ///< --no-warm-through restores
                                ///< checkpoint-jump fast-forward
    bool full = false;                  ///< --full wins over sampling
    bool noThroughput = false;  ///< --no-throughput: omit the
                                ///< nondeterministic wall-clock fields
                                ///< from the JSON (byte-comparable
                                ///< reports)
    std::string checkpointDir;  ///< --checkpoint-dir PATH ("" = env
                                ///< MG_CHECKPOINT_DIR, else
                                ///< .mg-cache/checkpoints)
    bool checkpointStore = true;    ///< --no-checkpoint-store clears it
    std::uint64_t checkpointCapMb = 0;  ///< --checkpoint-cap-mb N
                                        ///< (0 = store default, 2 GiB)
    double cellTimeoutS = -1;   ///< --cell-timeout-s S (-1 = tier
                                ///< default, 0 = no deadline)
    int cellRetries = 2;        ///< --cell-retries N
    int cellBackoffMs = 20;     ///< --cell-backoff-ms N
    std::string journalDirOpt;  ///< --journal-dir PATH ("" = env
                                ///< MG_JOURNAL_DIR, else no journal)
    bool journal = true;        ///< --no-journal clears it
    std::string faultSpec;      ///< --fault-inject SPEC ("" = env
                                ///< MG_FAULT_SPEC, else disarmed)
    bool dryRun = false;        ///< --dry-run: print the cell plan,
                                ///< simulate nothing
    bool critpath = false;      ///< --critpath (also set by --trace /
                                ///< --whatif)
    std::uint64_t traceDepth = 0;   ///< --trace N ring bound (0 =
                                    ///< default capacity)
    std::string whatIf;         ///< --whatif key=val[,...] ("" = none)
    std::vector<std::string> rest;  ///< unconsumed arguments

    /** @return true when @p flag appears among the leftover args. */
    bool has(const std::string &flag) const;

    /** Report name for @p base: tier-suffixed ("<base>_long",
     *  "<base>_huge") off the ref tier, so the tiers' BENCH_*.json
     *  artifacts never overwrite each other. */
    std::string benchName(const std::string &base) const;

    /** Sampling parameters these flags resolve to (may be disabled). */
    SamplingParams samplingParams() const;

    /** Apply samplingParams() to every timed column of @p spec. */
    void applySampling(SweepSpec &spec) const;

    /** Apply the --critpath/--trace/--whatif analysis request to every
     *  timed column of @p spec (no-op when none was given, keeping the
     *  spec's fingerprints and report byte-identical). Call after
     *  applySampling. */
    void applyAnalysis(SweepSpec &spec) const;

    /**
     * Attach the on-disk warm-checkpoint store to @p engine when these
     * flags call for one: sampling must be enabled in warm-through
     * mode and --no-checkpoint-store must be absent. The directory is
     * --checkpoint-dir, else $MG_CHECKPOINT_DIR, else
     * ".mg-cache/checkpoints". Full-simulation and jump-mode runs
     * never get a store, so their reports stay byte-identical to
     * store-less builds.
     */
    void configureStore(ExperimentEngine &engine) const;

    /**
     * Apply the fault-tolerance flags to @p engine: install the
     * FaultPolicy (tier-scaled default deadline unless
     * --cell-timeout-s overrides it), enable the sweep journal when a
     * directory is configured, arm the global fault injector when a
     * spec is, and propagate --dry-run. Call once per bench, right
     * after configureStore.
     */
    void configureFaultTolerance(ExperimentEngine &engine) const;

    /** The journal directory these flags resolve to ("" = none). */
    std::string journalDir() const;

    /** Apply the throughput-reporting choice to a finished sweep. */
    void
    applyReporting(SweepResult &r) const
    {
        r.emitThroughput = !noThroughput;
    }
};

/** Parse argv; fatal() on malformed options. `--list-kernels` prints
 *  the registry (names, suites, supported scales) and exits. */
CliOptions parseCli(int argc, char **argv);

} // namespace mg

#endif // MG_ENGINE_CLI_HH
