#include "engine/fingerprint.hh"

#include "common/logging.hh"

namespace mg {

Fingerprint &
Fingerprint::add(const char *tag, std::uint64_t v)
{
    text += strfmt("%s=%llu;", tag, static_cast<unsigned long long>(v));
    return *this;
}

Fingerprint &
Fingerprint::add(const char *tag, int v)
{
    text += strfmt("%s=%d;", tag, v);
    return *this;
}

Fingerprint &
Fingerprint::add(const char *tag, bool v)
{
    text += strfmt("%s=%c;", tag, v ? '1' : '0');
    return *this;
}

Fingerprint &
Fingerprint::add(const char *tag, const std::string &v)
{
    text += strfmt("%s=%s;", tag, v.c_str());
    return *this;
}

namespace {

void
addPolicy(Fingerprint &fp, const SelectionPolicy &p)
{
    fp.add("maxSize", p.maxSize)
        .add("maxTemplates", p.maxTemplates)
        .add("mem", p.allowMemory)
        .add("extSer", p.allowExternallySerial)
        .add("intSer", p.allowInternallySerial)
        .add("intLd", p.allowInteriorLoads);
}

void
addMachine(Fingerprint &fp, const MgtMachine &m)
{
    fp.add("loadLat", m.loadLat)
        .add("aluPipes", m.useAluPipes)
        .add("collapse", m.collapsing)
        .add("pipeDepth", m.aluPipeDepth);
}

void
addCache(Fingerprint &fp, const char *tag, const CacheGeometry &g)
{
    fp.add(tag, strfmt("%u/%u/%u", g.sizeBytes, g.assoc, g.lineBytes));
}

void
addCore(Fingerprint &fp, const CoreConfig &c)
{
    fp.add("fw", c.fetchWidth)
        .add("rw", c.renameWidth)
        .add("iw", c.issueWidth)
        .add("cw", c.commitWidth)
        .add("rob", c.robSize)
        .add("iq", c.iqSize)
        .add("lsq", c.lsqSize)
        .add("pregs", c.physRegs)
        .add("fq", c.fetchQueueSize)
        .add("fdepth", c.frontendDepth)
        .add("rdlat", c.regReadLat)
        .add("sched", c.schedulerCycles)
        .add("misf", c.misfetchPenalty)
        .add("bypass", c.bypassWindow)
        .add("alus", c.fu.intAlus)
        .add("apipes", c.fu.aluPipes)
        .add("apdepth", c.fu.aluPipeDepth)
        .add("fpu", c.fu.fpUnits)
        .add("ldp", c.fu.loadPorts)
        .add("stp", c.fu.storePorts)
        .add("fuiw", c.fu.issueWidth)
        .add("rrp", c.fu.regReadPorts)
        .add("rwp", c.fu.regWritePorts)
        .add("mg", c.mgEnabled)
        .add("sw", c.slidingWindow)
        .add("seqs", c.sequencers)
        .add("imh", c.maxIntMemHandlesPerCycle);
    addCache(fp, "l1i", c.mem.l1i);
    addCache(fp, "l1d", c.mem.l1d);
    addCache(fp, "l2", c.mem.l2);
    fp.add("l1iLat", static_cast<std::uint64_t>(c.mem.l1iLat))
        .add("l1dLat", static_cast<std::uint64_t>(c.mem.l1dLat))
        .add("l2Lat", static_cast<std::uint64_t>(c.mem.l2Lat))
        .add("memLat", static_cast<std::uint64_t>(c.mem.memLat))
        .add("busB", static_cast<std::uint64_t>(c.mem.busBytes))
        .add("busR", static_cast<std::uint64_t>(c.mem.busCycleRatio))
        .add("bim", static_cast<std::uint64_t>(c.bp.bimodalEntries))
        .add("gsh", static_cast<std::uint64_t>(c.bp.gshareEntries))
        .add("cho", static_cast<std::uint64_t>(c.bp.chooserEntries))
        .add("hist", static_cast<std::uint64_t>(c.bp.historyBits))
        .add("btb", static_cast<std::uint64_t>(c.bp.btbEntries))
        .add("btbA", static_cast<std::uint64_t>(c.bp.btbAssoc))
        .add("ras", static_cast<std::uint64_t>(c.bp.rasEntries))
        .add("ssit", static_cast<std::uint64_t>(c.ss.ssitEntries))
        .add("lfst", static_cast<std::uint64_t>(c.ss.lfstEntries))
        .add("ssclr", c.ss.clearInterval);
}

void
addSampling(Fingerprint &fp, const SamplingParams &s)
{
    fp.add("sInt", s.interval)
        .add("sPer", s.period)
        .add("sWup", s.warmup)
        .add("sFfw", s.ffWarm)
        .add("sPre", s.prefix)
        .add("sCi", static_cast<std::uint64_t>(s.targetCi * 1e6))
        .add("sDuty", static_cast<std::uint64_t>(s.maxDuty * 1e6))
        .add("sShad", s.ssShadow)
        .add("sWt", s.warmThrough);
}

} // namespace

std::string
profileFingerprint(const std::string &workload, std::uint64_t budget)
{
    Fingerprint fp;
    fp.add("prof", workload).add("budget", budget);
    return fp.str();
}

std::string
prepareFingerprint(const std::string &profileFp,
                   const SelectionPolicy &policy, const MgtMachine &machine,
                   bool compress)
{
    Fingerprint fp;
    fp.add("prep", profileFp);
    addPolicy(fp, policy);
    addMachine(fp, machine);
    fp.add("compress", compress);
    return fp.str();
}

std::string
cellFingerprint(const std::string &workload, const SimConfig &cfg)
{
    Fingerprint fp;
    fp.add("cell", workload)
        .add("useMg", cfg.useMiniGraphs)
        .add("runBudget", cfg.runBudget);
    addCore(fp, cfg.core);
    if (cfg.useMiniGraphs) {
        fp.add("profBudget", cfg.profileBudget)
            .add("compress", cfg.compress);
        addPolicy(fp, cfg.policy);
        addMachine(fp, cfg.machine);
    }
    // Gated so full-simulation keys match the pre-sampling engine
    // byte-for-byte.
    if (cfg.sampling.enabled) {
        fp.add("sampled", true);
        addSampling(fp, cfg.sampling);
    }
    // Gated for the same reason: analyzer-less keys match the
    // pre-critpath engine byte-for-byte.
    if (cfg.critpath) {
        fp.add("critpath", true)
            .add("cpDepth", cfg.traceDepth)
            .add("cpWhatIf", cfg.whatIf);
    }
    return fp.str();
}

std::string
summaryFingerprint(const std::string &variant, const SamplingParams &sp,
                   std::uint64_t runBudget)
{
    Fingerprint fp;
    fp.add("summary", variant).add("runBudget", runBudget);
    addSampling(fp, sp);
    return fp.str();
}

} // namespace mg
