/**
 * @file
 * Deterministic, site-addressed fault injection for the sweep
 * engine's robustness battery (the failure-path counterpart of the
 * checkpoint store's corruption battery).
 *
 * A fault spec — `--fault-inject SPEC` or `$MG_FAULT_SPEC` — is a
 * comma-separated list of rules:
 *
 *     site[@match][:p=P][:count=N][:ms=M][:seed=S]
 *
 *   site   where the fault fires and what it does:
 *            cell         transient exception at cell start (retried)
 *            fail         permanent exception at cell start
 *            alloc        std::bad_alloc at cell start
 *            stall        sleep M ms at cell start (deadline tests)
 *            store-read   transient error in CheckpointStore::load
 *            store-write  transient error in CheckpointStore::store
 *   match  substring the site key must contain (cell sites key on
 *          "<workload>|<column>", store sites on the record key);
 *          omitted = every key.
 *   p      fraction of matching keys the rule arms on, decided by a
 *          seeded hash of the key — the same keys fault in every run
 *          and on every retry schedule (default 1.0 = all).
 *   count  firings per (rule, key) before the fault heals (transient
 *          faults recover after `count` retries); 0 = never heals
 *          (default 1).
 *   ms     stall duration (stall site only, default 1000).
 *   seed   seed of the p-hash (default 0).
 *
 * Everything is deterministic: whether a rule fires depends only on
 * (spec, site, key, per-key firing count), never on thread schedule
 * or wall clock, so a faulted sweep is reproducible and a retried
 * cell re-executes against a healed (or identically faulty) world.
 */

#ifndef MG_ENGINE_FAULT_INJECT_HH
#define MG_ENGINE_FAULT_INJECT_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mg {

/** Instrumented failure sites. */
enum class FaultSite : std::uint8_t
{
    Cell,        ///< cell-start transient exception
    CellFail,    ///< cell-start permanent exception
    Alloc,       ///< cell-start allocation failure
    Stall,       ///< cell-start wall-clock stall
    StoreRead,   ///< checkpoint-store load
    StoreWrite,  ///< checkpoint-store write
};

/** One parsed spec rule. */
struct FaultRule
{
    FaultSite site = FaultSite::Cell;
    std::string match;           ///< key substring; empty = all keys
    double p = 1.0;              ///< key-hash arming fraction
    std::uint32_t count = 1;     ///< firings per key; 0 = unlimited
    std::uint32_t stallMs = 1000;
    std::uint64_t seed = 0;
};

/** The process-wide injector (disarmed by default: checks cost one
 *  relaxed atomic load until a spec is configured). */
class FaultInjector
{
  public:
    /** Parse and install @p spec ("" clears). fatal() on a malformed
     *  spec. Resets all per-key firing counters. */
    void configure(const std::string &spec);

    bool armed() const { return armed_.load(std::memory_order_relaxed); }

    /**
     * Fault check for @p site under @p key. Throws the site's
     * exception when a rule fires; stall sites sleep instead,
     * polling @p cancel every few ms and throwing CellTimeout when
     * the deadline watchdog fires mid-stall.
     */
    void at(FaultSite site, const std::string &key,
            const std::atomic<bool> *cancel = nullptr);

    /** Total faults fired since configure() (test assertions). */
    std::uint64_t fired() const;

    /** The singleton every instrumented site consults. */
    static FaultInjector &global();

  private:
    std::atomic<bool> armed_{false};
    mutable std::mutex mu_;
    std::vector<FaultRule> rules_;
    /** "(rule index)|(key)" -> firings so far. */
    std::unordered_map<std::string, std::uint32_t> firings_;
    std::uint64_t fired_ = 0;
};

/** Convenience wrapper over FaultInjector::global().at(). */
inline void
faultPoint(FaultSite site, const std::string &key,
           const std::atomic<bool> *cancel = nullptr)
{
    FaultInjector &fi = FaultInjector::global();
    if (fi.armed())
        fi.at(site, key, cancel);
}

} // namespace mg

#endif // MG_ENGINE_FAULT_INJECT_HH
