#include "engine/thread_pool.hh"

#include <atomic>

namespace mg {

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw ? static_cast<int>(hw) : 1;
    }
    workers.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> g(lock);
        stopping = true;
    }
    wakeWorker.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> g(lock);
        queue.push_back(std::move(task));
        ++inFlight;
    }
    wakeWorker.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> g(lock);
    idle.wait(g, [this] { return inFlight == 0; });
    if (taskError) {
        std::exception_ptr e = taskError;
        taskError = nullptr;
        std::rethrow_exception(e);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> g(lock);
            wakeWorker.wait(g,
                            [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return;         // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        // A leaked exception must not unwind the worker thread
        // (std::terminate) or silently vanish: capture the first one
        // for wait() to rethrow and keep draining the queue.
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> g(lock);
            if (!taskError)
                taskError = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> g(lock);
            if (--inFlight == 0)
                idle.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(int jobs, std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    // Per-index error capture: every index runs no matter what the
    // others throw, and the lowest throwing index's exception is the
    // one rethrown — the outcome is a pure function of fn, not of the
    // thread schedule (and matches the serial path bit for bit).
    std::mutex errLock;
    std::size_t errIndex = n;
    std::exception_ptr err;
    auto run = [&](std::size_t i) {
        try {
            fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> g(errLock);
            if (i < errIndex) {
                errIndex = i;
                err = std::current_exception();
            }
        }
    };

    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            run(i);
    } else {
        ThreadPool pool(static_cast<int>(
            std::min<std::size_t>(static_cast<std::size_t>(jobs), n)));
        std::atomic<std::size_t> next{0};
        for (int w = 0; w < pool.threads(); ++w) {
            pool.submit([&] {
                for (;;) {
                    std::size_t i = next.fetch_add(1);
                    if (i >= n)
                        return;
                    run(i);
                }
            });
        }
        pool.wait();
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace mg
