#include "engine/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <vector>

#include "common/logging.hh"
#include "common/serial.hh"

namespace fs = std::filesystem;

namespace mg {

namespace {

constexpr std::uint32_t journalMagic = 0x4a53474d;   // "MGSJ"
constexpr std::uint32_t journalVersion = 1;
constexpr std::size_t headerBytes = 4 + 4 + 8;
/** Sanity cap on a record's length field: a SweepCell record is a few
 *  hundred bytes; anything huge is corruption, not data. */
constexpr std::uint32_t maxRecordBytes = 1u << 20;

} // namespace

bool
SweepJournal::open(const std::string &dir, std::uint64_t specFp)
{
    std::lock_guard<std::mutex> lock(mu_);
    closeFd();
    cells_.clear();
    replayed_ = 0;

    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec || !fs::is_directory(dir, ec) || ec) {
        gate_.fail("sweep journal: cannot use directory '%s' (%s); "
                   "running without a journal",
                   dir.c_str(),
                   ec ? ec.message().c_str() : "not a directory");
        return false;
    }
    path_ = dir + "/" + strfmt("%016llx",
                               static_cast<unsigned long long>(specFp)) +
        ".mgsj";

    // Read and replay whatever survives in an existing file.
    std::vector<std::uint8_t> raw;
    if (std::FILE *f = std::fopen(path_.c_str(), "rb")) {
        char buf[1 << 16];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            raw.insert(raw.end(), buf, buf + n);
        bool readOk = !std::ferror(f);
        std::fclose(f);
        if (!readOk) {
            gate_.fail("sweep journal: read error on '%s'; running "
                       "without a journal", path_.c_str());
            return false;
        }
    }

    std::size_t good = 0;   ///< bytes proven valid; truncate past here
    if (raw.size() >= headerBytes) {
        SerialReader r(raw);
        if (r.u32() != journalMagic || r.u32() != journalVersion ||
            r.u64() != specFp) {
            // Foreign or stale file under our name: start over. The
            // fingerprint names the file, so this is corruption, not
            // another spec's journal.
            warn("sweep journal: '%s' has a bad header; restarting it",
                 path_.c_str());
        } else {
            good = headerBytes;
            std::size_t pos = headerBytes;
            while (raw.size() - pos >= 12) {
                SerialReader rh(raw.data() + pos, 12);
                std::uint32_t len = rh.u32();
                std::uint64_t sum = rh.u64();
                if (len == 0 || len > maxRecordBytes ||
                    len > raw.size() - pos - 12)
                    break;       // torn or corrupt tail
                const std::uint8_t *payload = raw.data() + pos + 12;
                if (fnv1a64(payload, len) != sum)
                    break;
                SerialReader pr(payload, len);
                std::uint64_t cellFp = pr.u64();
                SweepCell cell;
                if (!deserializeSweepCell(pr, cell))
                    break;
                cells_.emplace(cellFp, std::move(cell));
                pos += 12 + len;
                good = pos;
            }
            replayed_ = cells_.size();
        }
    } else if (!raw.empty()) {
        warn("sweep journal: '%s' is truncated mid-header; "
             "restarting it", path_.c_str());
    }

    if (good == 0) {
        // Fresh (or unusable) file: write a new header atomically via
        // O_TRUNC, then fsync.
        fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fd_ < 0) {
            gate_.fail("sweep journal: cannot open '%s' (%s); running "
                       "without a journal", path_.c_str(),
                       std::strerror(errno));
            return false;
        }
        SerialWriter h;
        h.u32(journalMagic);
        h.u32(journalVersion);
        h.u64(specFp);
        if (::write(fd_, h.data().data(), h.size()) !=
                static_cast<ssize_t>(h.size()) ||
            ::fsync(fd_) != 0) {
            gate_.fail("sweep journal: cannot write header of '%s' "
                       "(%s); running without a journal", path_.c_str(),
                       std::strerror(errno));
            closeFd();
            return false;
        }
        return true;
    }

    // Truncate any torn tail, then append after the good prefix.
    if (good < raw.size()) {
        warn("sweep journal: '%s' has a torn tail (%zu of %zu bytes "
             "valid); truncating and resuming",
             path_.c_str(), good, raw.size());
        if (::truncate(path_.c_str(),
                       static_cast<off_t>(good)) != 0) {
            gate_.fail("sweep journal: cannot truncate '%s' (%s); "
                       "running without a journal", path_.c_str(),
                       std::strerror(errno));
            return false;
        }
    }
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND, 0644);
    if (fd_ < 0) {
        gate_.fail("sweep journal: cannot reopen '%s' (%s); running "
                   "without a journal", path_.c_str(),
                   std::strerror(errno));
        return false;
    }
    return true;
}

bool
SweepJournal::attached() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return fd_ >= 0 && gate_.ok();
}

bool
SweepJournal::lookup(std::uint64_t cellFp, SweepCell &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cells_.find(cellFp);
    if (it == cells_.end())
        return false;
    out = it->second;
    out.journalHit = true;
    return true;
}

void
SweepJournal::record(std::uint64_t cellFp, const SweepCell &cell)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ < 0 || !gate_.ok())
        return;             // detached: hold nothing, serve nothing
    if (!cells_.emplace(cellFp, cell).second)
        return;             // already journaled (replayed hit)

    SerialWriter payload;
    payload.u64(cellFp);
    serializeSweepCell(cell, payload);
    SerialWriter rec;
    rec.u32(static_cast<std::uint32_t>(payload.size()));
    rec.u64(fnv1a64(payload.data().data(), payload.size()));
    rec.bytes(payload.data().data(), payload.size());

    // One write + one fsync per cell: the record is durable before the
    // sweep moves on, so a SIGKILL can tear at most the final append
    // (which replay truncates).
    if (::write(fd_, rec.data().data(), rec.size()) !=
            static_cast<ssize_t>(rec.size()) ||
        ::fsync(fd_) != 0) {
        gate_.fail("sweep journal: append to '%s' failed (%s); "
                   "journaling disabled for this sweep (results stay "
                   "correct)", path_.c_str(), std::strerror(errno));
        closeFd();
    }
}

std::uint64_t
SweepJournal::recorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cells_.size();
}

std::uint64_t
SweepJournal::replayed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return replayed_;
}

void
SweepJournal::closeFd()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

SweepJournal::~SweepJournal()
{
    std::lock_guard<std::mutex> lock(mu_);
    closeFd();
}

} // namespace mg
