/**
 * @file
 * Fixed-size worker pool for the experiment engine. Tasks are plain
 * closures; wait() blocks until every submitted task has finished, so
 * a sweep can scatter cells and then gather results deterministically
 * (results land in caller-owned slots indexed by cell, never in
 * submission-completion order).
 */

#ifndef MG_ENGINE_THREAD_POOL_HH
#define MG_ENGINE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mg {

/** A fixed set of workers draining one FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 picks the hardware concurrency
     *        (at least 1)
     */
    explicit ThreadPool(int threads = 0);

    /** Drains the queue, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. A task that
     *  throws does not kill its worker: the first escaped exception
     *  is captured and rethrown by the next wait(). */
    void submit(std::function<void()> task);

    /** Block until every submitted task has completed, then rethrow
     *  the first exception any task leaked (if one did). */
    void wait();

    int threads() const { return static_cast<int>(workers.size()); }

    /**
     * Run @p fn(0..n-1), spreading indices over @p jobs workers.
     * With jobs <= 1 (or n <= 1) everything runs on the calling
     * thread — the serial reference a parallel sweep must match.
     * A throwing index never aborts the loop: every index still runs,
     * and the exception from the lowest throwing index is rethrown on
     * the calling thread afterwards — identical behavior at every
     * jobs count, regardless of thread schedule.
     */
    static void parallelFor(int jobs, std::size_t n,
                            const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex lock;
    std::condition_variable wakeWorker;
    std::condition_variable idle;
    std::size_t inFlight = 0;
    bool stopping = false;
    /** First exception to escape a task; rethrown by wait(). */
    std::exception_ptr taskError;
};

} // namespace mg

#endif // MG_ENGINE_THREAD_POOL_HH
