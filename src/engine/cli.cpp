#include "engine/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/logging.hh"
#include "engine/fault_inject.hh"

namespace mg {

bool
CliOptions::has(const std::string &flag) const
{
    for (const std::string &a : rest) {
        if (a == flag)
            return true;
    }
    return false;
}

std::string
CliOptions::benchName(const std::string &base) const
{
    return scale == Scale::Ref ? base
                               : base + "_" + scaleName(scale);
}

namespace {

std::uint64_t
parseCount(const char *flag, const char *value)
{
    // strtoull would wrap negatives and accept empty strings.
    if (!value || !*value || *value == '-' || *value == '+')
        fatal("bad %s value '%s'", flag, value ? value : "");
    char *end = nullptr;
    unsigned long long v = std::strtoull(value, &end, 10);
    if (!end || *end)
        fatal("bad %s value '%s'", flag, value);
    return v;
}

} // namespace

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opt;
    auto next = [&](const std::string &flag, int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("%s requires a value", flag.c_str());
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--jobs" || a == "-j") {
            char *end = nullptr;
            long v = std::strtol(next(a, i), &end, 10);
            if (!end || *end || v < 0)
                fatal("bad job count '%s'", argv[i]);
            opt.jobs = static_cast<int>(v);
        } else if (a == "--json") {
            opt.jsonPath = next(a, i);
        } else if (a == "--scale") {
            opt.scale = parseScale(next(a, i));
        } else if (a == "--list-kernels") {
            fputs(kernelListing().c_str(), stdout);
            // NOLINTNEXTLINE(concurrency-mt-unsafe): CLI parse runs
            // single-threaded, before any worker exists
            exit(0);
        } else if (a == "--sample-interval") {
            opt.sampleInterval = parseCount("--sample-interval",
                                            next(a, i));
            if (opt.sampleInterval == 0)
                fatal("--sample-interval must be positive");
        } else if (a == "--sample-period") {
            opt.samplePeriod = parseCount("--sample-period", next(a, i));
        } else if (a == "--warmup") {
            opt.sampleWarmup = parseCount("--warmup", next(a, i));
        } else if (a == "--no-ss-shadow") {
            opt.ssShadow = false;
        } else if (a == "--warm-through") {
            opt.warmThrough = true;
        } else if (a == "--no-warm-through") {
            opt.warmThrough = false;
        } else if (a == "--full") {
            opt.full = true;
        } else if (a == "--no-throughput") {
            opt.noThroughput = true;
        } else if (a == "--checkpoint-dir") {
            opt.checkpointDir = next(a, i);
        } else if (a == "--no-checkpoint-store") {
            opt.checkpointStore = false;
        } else if (a == "--checkpoint-cap-mb") {
            opt.checkpointCapMb = parseCount("--checkpoint-cap-mb",
                                             next(a, i));
            if (opt.checkpointCapMb == 0)
                fatal("--checkpoint-cap-mb must be positive");
        } else if (a == "--cell-timeout-s") {
            const char *v = next(a, i);
            char *end = nullptr;
            double s = std::strtod(v, &end);
            if (!end || *end || s < 0)
                fatal("bad --cell-timeout-s value '%s'", v);
            opt.cellTimeoutS = s;
        } else if (a == "--cell-retries") {
            opt.cellRetries = static_cast<int>(
                parseCount("--cell-retries", next(a, i)));
        } else if (a == "--cell-backoff-ms") {
            opt.cellBackoffMs = static_cast<int>(
                parseCount("--cell-backoff-ms", next(a, i)));
        } else if (a == "--journal-dir") {
            opt.journalDirOpt = next(a, i);
        } else if (a == "--no-journal") {
            opt.journal = false;
        } else if (a == "--fault-inject") {
            opt.faultSpec = next(a, i);
        } else if (a == "--dry-run") {
            opt.dryRun = true;
        } else if (a == "--critpath") {
            opt.critpath = true;
        } else if (a == "--trace") {
            opt.traceDepth = parseCount("--trace", next(a, i));
            opt.critpath = true;
        } else if (a == "--whatif") {
            opt.whatIf = next(a, i);
            if (opt.whatIf.empty())
                fatal("--whatif requires a key=val spec");
            opt.critpath = true;
        } else {
            opt.rest.push_back(std::move(a));
        }
    }
    return opt;
}

SamplingParams
CliOptions::samplingParams() const
{
    SamplingParams sp;
    if (full || sampleInterval == 0)
        return sp;   // disabled: full cycle-accurate simulation
    sp.enabled = true;
    sp.interval = sampleInterval;
    sp.period = samplePeriod ? samplePeriod : 12 * sampleInterval;
    sp.warmup = sampleWarmup != ~0ull ? sampleWarmup
                                      : 2 * sampleInterval;
    sp.ffWarm = 2 * sampleInterval;
    sp.ssShadow = ssShadow;
    sp.warmThrough = warmThrough;
    return sp;
}

void
CliOptions::configureStore(ExperimentEngine &engine) const
{
    SamplingParams sp = samplingParams();
    if (!checkpointStore || !sp.enabled || !sp.warmThrough)
        return;
    CheckpointStoreConfig cfg;
    cfg.dir = checkpointDir;
    if (cfg.dir.empty()) {
        // NOLINTNEXTLINE(concurrency-mt-unsafe): read at startup only
        const char *env = std::getenv("MG_CHECKPOINT_DIR");
        cfg.dir = env && *env ? env : ".mg-cache/checkpoints";
    }
    if (checkpointCapMb)
        cfg.capBytes = checkpointCapMb << 20;
    engine.setCheckpointStore(
        std::make_shared<CheckpointStore>(std::move(cfg)));
}

std::string
CliOptions::journalDir() const
{
    if (!journal)
        return "";
    if (!journalDirOpt.empty())
        return journalDirOpt;
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read at startup only
    const char *env = std::getenv("MG_JOURNAL_DIR");
    return env && *env ? env : "";
}

void
CliOptions::configureFaultTolerance(ExperimentEngine &engine) const
{
    FaultPolicy p;
    if (cellTimeoutS >= 0) {
        p.cellTimeoutS = cellTimeoutS;
    } else {
        // Tier-scaled defaults, generous enough that a healthy cell
        // never comes close — the deadline exists to catch hangs, not
        // to race honest work.
        switch (scale) {
          case Scale::Ref: p.cellTimeoutS = 600; break;
          case Scale::Long: p.cellTimeoutS = 3600; break;
          case Scale::Huge: p.cellTimeoutS = 14400; break;
        }
    }
    p.cellRetries = cellRetries;
    p.backoffMs = cellBackoffMs;
    engine.setFaultPolicy(p);

    engine.setJournalDir(journalDir());
    engine.setDryRun(dryRun);

    std::string spec = faultSpec;
    if (spec.empty()) {
        // NOLINTNEXTLINE(concurrency-mt-unsafe): read at startup only
        const char *env = std::getenv("MG_FAULT_SPEC");
        if (env)
            spec = env;
    }
    if (!spec.empty())
        FaultInjector::global().configure(spec);
}

void
CliOptions::applySampling(SweepSpec &spec) const
{
    SamplingParams sp = samplingParams();
    if (!sp.enabled)
        return;
    for (SweepColumn &col : spec.columns) {
        if (col.timing)
            col.config.sampling = sp;
    }
}

void
CliOptions::applyAnalysis(SweepSpec &spec) const
{
    if (!critpath)
        return;
    for (SweepColumn &col : spec.columns) {
        if (col.timing) {
            col.config.critpath = true;
            col.config.traceDepth = traceDepth;
            col.config.whatIf = whatIf;
        }
    }
}

} // namespace mg
