#include "engine/cli.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace mg {

bool
CliOptions::has(const std::string &flag) const
{
    for (const std::string &a : rest) {
        if (a == flag)
            return true;
    }
    return false;
}

CliOptions
parseCli(int argc, char **argv)
{
    CliOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--jobs" || a == "-j") {
            if (i + 1 >= argc)
                fatal("%s requires a count", a.c_str());
            char *end = nullptr;
            long v = std::strtol(argv[++i], &end, 10);
            if (!end || *end || v < 0)
                fatal("bad job count '%s'", argv[i]);
            opt.jobs = static_cast<int>(v);
        } else if (a == "--json") {
            if (i + 1 >= argc)
                fatal("--json requires a path");
            opt.jsonPath = argv[++i];
        } else {
            opt.rest.push_back(std::move(a));
        }
    }
    return opt;
}

} // namespace mg
