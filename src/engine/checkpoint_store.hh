/**
 * @file
 * Content-addressed, on-disk warm-checkpoint store.
 *
 * Records are arbitrary byte payloads addressed by a content key (the
 * engine composes keys from its canonical fingerprints — see
 * docs/ARCHITECTURE.md for the schema). Each record is one file named
 * by the FNV-1a 64 hash of its key, holding a versioned header, the
 * full key string (a collision guard: a hash-colliding record of a
 * different key reads as a miss, never as wrong data), a checksum of
 * the decoded payload, and the payload itself under a transparent
 * zero-run-length encoding (serialized cache tag arrays and sparse
 * memory images are zero-heavy).
 *
 * The store never fails the simulation: an unusable directory, a
 * write error (ENOSPC included), or a corrupt/stale/truncated record
 * degrades to a warn-once miss and the caller recomputes what it
 * wanted to load. Writes are atomic (temp file + rename), so readers
 * never observe half-written records. The directory is capped;
 * exceeding the cap evicts least-recently-used records (load hits
 * refresh a record's file mtime, so recency survives across
 * sessions). All entry points are thread-safe (engine cells run on a
 * worker pool).
 */

#ifndef MG_ENGINE_CHECKPOINT_STORE_HH
#define MG_ENGINE_CHECKPOINT_STORE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/failsoft.hh"

namespace mg {

class CellCheckpointClient;   // sim/simulator.hh

/** Store location and size policy. */
struct CheckpointStoreConfig
{
    std::string dir;                         ///< cache directory
    std::uint64_t capBytes = 2ull << 30;     ///< LRU-evicted above this
};

/** Effectiveness/health counters (monotonic over the store's life). */
struct CheckpointStoreCounters
{
    std::uint64_t hits = 0;        ///< loads served from disk
    std::uint64_t misses = 0;      ///< loads that found nothing usable
    std::uint64_t writebacks = 0;  ///< records written
    std::uint64_t corrupt = 0;     ///< records rejected (checksum,
                                   ///< truncation, stale version)
    std::uint64_t evictions = 0;   ///< records removed by the cap

    CheckpointStoreCounters
    operator-(const CheckpointStoreCounters &o) const
    {
        return {hits - o.hits, misses - o.misses,
                writebacks - o.writebacks, corrupt - o.corrupt,
                evictions - o.evictions};
    }
};

/** The store. */
class CheckpointStore
{
  public:
    /** Bumped whenever any serialized layout changes: a version
     *  mismatch reads as corruption (reject, recompute, overwrite). */
    static constexpr std::uint32_t formatVersion = 1;

    /** Opens (creating if needed) the cache directory; on failure the
     *  store warns once and every operation becomes a no-op. */
    explicit CheckpointStore(CheckpointStoreConfig cfg);

    /**
     * Load the record for @p key into @p payload.
     * @return true on a verified hit; false on miss or any defect
     *         (defective records are unlinked so a writeback heals
     *         them).
     */
    bool load(const std::string &key, std::vector<std::uint8_t> &payload);

    /** Write (or replace) the record for @p key. Failures degrade to
     *  a warn-once no-op; eviction runs after a successful write. */
    void store(const std::string &key,
               const std::vector<std::uint8_t> &payload);

    /** False when the directory was unusable at construction. */
    bool enabled() const { return dirOk_; }

    /** False after a write error disabled further writebacks. */
    bool writable() const { return dirOk_ && writeGate_.ok(); }

    const std::string &dir() const { return cfg_.dir; }

    CheckpointStoreCounters counters() const;

  private:
    struct Entry
    {
        std::uint64_t size = 0;
        std::uint64_t stamp = 0;   ///< LRU recency (higher = newer)
    };

    std::string pathOf(const std::string &key) const;
    void scanDir();
    void touch(const std::string &path);
    void evictUnderLock();
    void writeFailed(const char *what, const std::string &path);

    CheckpointStoreConfig cfg_;
    bool dirOk_ = false;
    /** Warn-once writeback latch (common/failsoft.hh): the first
     *  failed write disables further writebacks, loads continue. */
    FailSoftGate writeGate_;
    mutable std::mutex mu_;
    std::unordered_map<std::string, Entry> index_;  ///< by file path
    std::uint64_t totalBytes_ = 0;
    std::uint64_t stampSeq_ = 0;
    CheckpointStoreCounters ctr_;
};

/**
 * Adapt @p store into the per-cell client runCellSampled consumes.
 * @p cellKey must uniquely identify the cell (the engine passes its
 * cell fingerprint); the adapter derives the record keys
 * "warm|<cellKey>|s<seed-hash>|p<chunk-pos>" and "viol|<cellKey>"
 * from it. The adapter holds a reference to @p store, which must
 * outlive it.
 */
std::unique_ptr<CellCheckpointClient>
makeCellClient(CheckpointStore &store, const std::string &cellKey);

} // namespace mg

#endif // MG_ENGINE_CHECKPOINT_STORE_HH
