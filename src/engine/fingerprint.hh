/**
 * @file
 * Canonical fingerprints for experiment inputs. The artifact caches
 * key on these strings, so two cells share a profile / prepared
 * program / timing result exactly when every field that influences
 * that artifact is identical. Display names (SimConfig::name) are
 * deliberately excluded: two columns with the same underlying machine
 * dedupe to one computation.
 */

#ifndef MG_ENGINE_FINGERPRINT_HH
#define MG_ENGINE_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "sim/config.hh"

namespace mg {

/** Accumulates tag=value pairs into a canonical string. */
class Fingerprint
{
  public:
    Fingerprint &add(const char *tag, std::uint64_t v);
    Fingerprint &add(const char *tag, int v);
    Fingerprint &add(const char *tag, bool v);
    Fingerprint &add(const char *tag, const std::string &v);

    const std::string &str() const { return text; }

  private:
    std::string text;
};

/**
 * Everything that shapes a functional profiling run of the workload
 * identified by @p workload (a unique id covering program + inputs).
 */
std::string profileFingerprint(const std::string &workload,
                               std::uint64_t budget);

/** Everything that shapes selection + rewrite (includes the profile). */
std::string prepareFingerprint(const std::string &profileFp,
                               const SelectionPolicy &policy,
                               const MgtMachine &machine, bool compress);

/** Everything that shapes a timing run (profile/prepare included). */
std::string cellFingerprint(const std::string &workload,
                            const SimConfig &cfg);

/**
 * Everything that shapes a functional sample summary: the executed
 * binary (@p variant is the workload id, suffixed with the prepare
 * fingerprint for mini-graph configs), the sampling grid, and the work
 * cap. Deliberately excludes the machine configuration — that is what
 * makes summaries shareable across sweep columns.
 */
std::string summaryFingerprint(const std::string &variant,
                               const SamplingParams &sp,
                               std::uint64_t runBudget);

} // namespace mg

#endif // MG_ENGINE_FINGERPRINT_HH
