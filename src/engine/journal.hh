/**
 * @file
 * Crash-safe sweep journal: an append-only, checksummed record of
 * finished sweep cells, fsync'd per append, so a killed sweep rerun
 * with the same spec resumes where it died instead of starting over.
 *
 * One file per sweep spec — `<dir>/<spec-fingerprint>.mgsj` — holding
 * a fixed header plus a sequence of per-cell records keyed by the
 * cell fingerprint. Only Ok cells are journaled: failed or timed-out
 * cells re-simulate on resume (the failure may have been transient),
 * and a resumed sweep therefore converges to exactly the cells an
 * uninterrupted one produces — bit-identical final JSON.
 *
 * Crash safety is torn-tail truncation: a record is only trusted if
 * its length field fits the file and its FNV-1a-64 checksum matches,
 * and the first bad record truncates the file there (everything
 * before it is intact because appends are fsync'd in order). Like the
 * checkpoint store, the journal is fail-soft — any I/O error warns
 * once and degrades to journal-less execution; it never fails a
 * sweep.
 */

#ifndef MG_ENGINE_JOURNAL_HH
#define MG_ENGINE_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/failsoft.hh"
#include "sim/report.hh"

namespace mg {

class SweepJournal
{
  public:
    /**
     * Attach to `<dir>/<hex16(specFp)>.mgsj`, creating @p dir as
     * needed, and replay any surviving records (truncating a torn
     * tail). @return false — with the gate latched — when the
     * directory or file is unusable; the journal is then a no-op.
     */
    bool open(const std::string &dir, std::uint64_t specFp);

    /** A usable file is attached (open() succeeded, no error since). */
    bool attached() const;

    /** Fetch the journaled cell for @p cellFp. */
    bool lookup(std::uint64_t cellFp, SweepCell &out) const;

    /**
     * Append @p cell under @p cellFp and fsync. Callers only record
     * Ok cells; re-recording a fingerprint is idempotent (replay
     * keeps the first occurrence, appends of already-known cells are
     * skipped).
     */
    void record(std::uint64_t cellFp, const SweepCell &cell);

    /** Cells the journal holds now (replayed + appended) — the
     *  resume-invariant total the report emits. */
    std::uint64_t recorded() const;

    /** Cells replayed from disk by open() (test introspection;
     *  resume-variant, never reported). */
    std::uint64_t replayed() const;

    const std::string &path() const { return path_; }

    SweepJournal() = default;
    ~SweepJournal();
    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

  private:
    void closeFd();

    mutable std::mutex mu_;
    FailSoftGate gate_;
    int fd_ = -1;
    std::string path_;
    std::unordered_map<std::uint64_t, SweepCell> cells_;
    std::uint64_t replayed_ = 0;
};

} // namespace mg

#endif // MG_ENGINE_JOURNAL_HH
