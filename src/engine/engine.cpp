#include "engine/engine.hh"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "common/failsoft.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "engine/fault_inject.hh"
#include "engine/fingerprint.hh"
#include "engine/journal.hh"
#include "engine/thread_pool.hh"

namespace mg {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

/**
 * One timer thread enforcing every in-flight cell attempt's deadline.
 * arm() registers a cancel flag with a deadline; the thread sets the
 * flag once the deadline passes (the cell's poll points then throw
 * CellTimeout); disarm() withdraws it. Flags are only ever set under
 * the watchdog lock, so after disarm() returns the flag — typically a
 * worker's stack variable — is guaranteed untouched.
 */
class DeadlineWatchdog
{
  public:
    DeadlineWatchdog() : th_([this] { loop(); }) {}

    ~DeadlineWatchdog()
    {
        {
            std::lock_guard<std::mutex> g(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        th_.join();
    }

    std::uint64_t
    arm(std::atomic<bool> *flag, double seconds)
    {
        std::lock_guard<std::mutex> g(mu_);
        std::uint64_t id = ++seq_;
        armed_[id] = {std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(seconds)),
                      flag};
        cv_.notify_all();
        return id;
    }

    void
    disarm(std::uint64_t id)
    {
        std::lock_guard<std::mutex> g(mu_);
        armed_.erase(id);
    }

  private:
    struct Entry
    {
        std::chrono::steady_clock::time_point deadline;
        std::atomic<bool> *flag;
    };

    void
    loop()
    {
        std::unique_lock<std::mutex> g(mu_);
        while (!stop_) {
            if (armed_.empty()) {
                cv_.wait(g);
                continue;
            }
            auto next = armed_.begin()->second.deadline;
            for (const auto &[id, e] : armed_)
                next = std::min(next, e.deadline);
            cv_.wait_until(g, next);
            auto now = std::chrono::steady_clock::now();
            for (auto it = armed_.begin(); it != armed_.end();) {
                if (it->second.deadline <= now) {
                    it->second.flag->store(true,
                                           std::memory_order_relaxed);
                    it = armed_.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;
    std::map<std::uint64_t, Entry> armed_;
    std::uint64_t seq_ = 0;
    bool stop_ = false;
    std::thread th_;   ///< last member: starts after the state above
};

ExperimentEngine::ExperimentEngine(int jobs)
{
    if (jobs == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw ? static_cast<int>(hw) : 1;
    }
    jobs_ = jobs < 1 ? 1 : jobs;
}

ExperimentEngine::~ExperimentEngine() = default;

void
ExperimentEngine::setFaultPolicy(const FaultPolicy &p)
{
    policy_ = p;
    if (policy_.cellTimeoutS > 0 && !watchdog_)
        watchdog_ = std::make_unique<DeadlineWatchdog>();
}

std::shared_ptr<const BlockProfile>
ExperimentEngine::profile(const EngineWorkload &w, std::uint64_t budget)
{
    std::string key = profileFingerprint(w.id, budget);
    return profiles.get(key, [&] {
        return collectProfile(*w.program, w.setup, budget);
    });
}

std::shared_ptr<const PreparedMg>
ExperimentEngine::prepare(const EngineWorkload &w, const SimConfig &cfg)
{
    std::string profKey = profileFingerprint(w.id, cfg.profileBudget);
    std::string key = prepareFingerprint(profKey, cfg.policy, cfg.machine,
                                         cfg.compress);
    return prepared.get(key, [&] {
        auto prof = profile(w, cfg.profileBudget);
        return prepareMiniGraphs(*w.program, *prof, cfg.policy,
                                 cfg.machine, cfg.compress);
    });
}

CoreStats
ExperimentEngine::cell(const EngineWorkload &w, const SimConfig &cfg)
{
    return cellTimed(w, cfg).stats;
}

TimedStats
ExperimentEngine::cellTimed(const EngineWorkload &w, const SimConfig &cfg,
                            const std::atomic<bool> *cancel)
{
    std::string key = cellFingerprint(w.id, cfg);
    return *runs.get(key, [&]() -> TimedStats {
        // Artifacts are built outside the timer: wall seconds measure
        // the cycle-accurate run itself, the simulator's hot path.
        const PreparedMg *prep = nullptr;
        std::shared_ptr<const PreparedMg> hold;
        if (cfg.useMiniGraphs) {
            hold = prepare(w, cfg);
            prep = hold.get();
        }
        auto t0 = std::chrono::steady_clock::now();
        CoreStats s = runCell(*w.program, prep, cfg, w.setup, cancel);
        return {s, secondsSince(t0)};
    });
}

CheckpointStore *
ExperimentEngine::storeFor(const SamplingParams &sp) const
{
    // The store serves warm-through sampled runs only: jump-mode
    // summaries need their in-memory checkpoints (elided from the
    // persisted form), degenerate parameters run exactly, and full
    // simulation has nothing to warm.
    if (store_ && store_->enabled() && sp.enabled && sp.warmThrough &&
        !sp.degenerate())
        return store_.get();
    return nullptr;
}

std::shared_ptr<const SampleSummary>
ExperimentEngine::summary(const EngineWorkload &w, const SimConfig &cfg,
                          const std::atomic<bool> *cancel)
{
    // The summary depends on the executed binary, not on the machine:
    // identify it by the workload plus (for mini-graph configs) the
    // prepare fingerprint of the rewrite that produced the binary.
    std::string variant = w.id;
    if (cfg.useMiniGraphs) {
        variant += "|" +
            prepareFingerprint(
                profileFingerprint(w.id, cfg.profileBudget), cfg.policy,
                cfg.machine, cfg.compress);
    }
    std::string key = summaryFingerprint(variant, cfg.sampling,
                                         cfg.runBudget);
    return summaries.get(key, [&]() -> SampleSummary {
        // Warm-through summaries carry no checkpoints, so they
        // round-trip through the checkpoint store: a warm session
        // skips the functional pre-pass entirely.
        CheckpointStore *cs = storeFor(cfg.sampling);
        std::string storeKey = "summ|" + key;
        if (cs) {
            std::vector<std::uint8_t> raw;
            if (cs->load(storeKey, raw)) {
                SerialReader r(raw);
                SampleSummary sum;
                if (deserializeSampleSummary(r, sum))
                    return sum;
            }
        }
        const Program *prog = w.program;
        const MgTable *mgt = nullptr;
        std::shared_ptr<const PreparedMg> prep;
        if (cfg.useMiniGraphs) {
            prep = prepare(w, cfg);
            prog = &prep->program;
            mgt = &prep->table;
        }
        SampleSummary sum = collectSampleSummary(*prog, mgt, w.setup,
                                                 cfg.sampling,
                                                 cfg.runBudget, cancel);
        if (cs) {
            SerialWriter sw;
            serializeSampleSummary(sum, sw);
            cs->store(storeKey, sw.data());
        }
        return sum;
    });
}

SampledStats
ExperimentEngine::cellSampled(const EngineWorkload &w, const SimConfig &cfg)
{
    return cellSampledTimed(w, cfg).stats;
}

TimedSampled
ExperimentEngine::cellSampledTimed(const EngineWorkload &w,
                                   const SimConfig &cfg,
                                   const std::atomic<bool> *cancel)
{
    std::string key = cellFingerprint(w.id, cfg);
    return *sampledRuns.get(key, [&]() -> TimedSampled {
        auto sum = summary(w, cfg, cancel);
        const PreparedMg *prep = nullptr;
        std::shared_ptr<const PreparedMg> hold;
        if (cfg.useMiniGraphs) {
            hold = prepare(w, cfg);
            prep = hold.get();
        }
        std::unique_ptr<CellCheckpointClient> client;
        if (storeFor(cfg.sampling))
            client = makeCellClient(*store_, key);
        // Measurement-phase salt, derived from the cell fingerprint on
        // an execution copy: deterministic across sessions (the same
        // cell always measures the same spans, so warm-store records
        // and journal replays stay coherent) without being part of the
        // key itself — the mapping key -> salt is fixed, so keying it
        // would be redundant. De-correlates measurement placement
        // from the period grid (the huge-tier jpeg.dct alias).
        SimConfig run = cfg;
        std::uint64_t salt = fnv1a64(key.data(), key.size());
        run.sampling.phaseSalt = salt ? salt : 1;
        auto t0 = std::chrono::steady_clock::now();
        SampledStats s = runCellSampled(*w.program, prep, run, w.setup,
                                        *sum, client.get(), cancel);
        return {s, secondsSince(t0)};
    });
}

CritPathSummary
ExperimentEngine::critpathCell(const EngineWorkload &w,
                               const SimConfig &cfg,
                               const std::atomic<bool> *cancel)
{
    // The key shares the cell fingerprint (which includes the gated
    // critpath fields), so one traced run serves every sweep cell
    // with the same (workload, config) identity.
    std::string key = cellFingerprint(w.id, cfg) + "|critpath";
    return *critpathRuns.get(key, [&]() -> CritPathSummary {
        const PreparedMg *prep = nullptr;
        std::shared_ptr<const PreparedMg> hold;
        if (cfg.useMiniGraphs) {
            hold = prepare(w, cfg);
            prep = hold.get();
        }
        return runCellTraced(*w.program, prep, cfg, w.setup, cancel);
    });
}

SweepCell
ExperimentEngine::computeCell(const EngineWorkload &w,
                              const SweepColumn &col,
                              const std::atomic<bool> *cancel)
{
    SweepCell out;
    if (col.config.useMiniGraphs) {
        auto prep = prepare(w, col.config);
        out.staticCoverage = prep->staticCoverage;
        out.templates = prep->table.size();
        out.textSlots = prep->program.text.size();
    } else {
        out.textSlots = w.program->text.size();
    }
    if (col.timing) {
        if (col.config.sampling.enabled) {
            TimedSampled ts = cellSampledTimed(w, col.config, cancel);
            out.sampled = ts.stats;
            out.stats = out.sampled.est;
            out.sampledRun = true;
            out.wallSeconds = ts.seconds;
        } else {
            TimedStats ts = cellTimed(w, col.config, cancel);
            out.stats = ts.stats;
            out.wallSeconds = ts.seconds;
        }
        out.timed = true;
        if (out.wallSeconds > 0) {
            out.workPerSec =
                static_cast<double>(out.stats.committedWork) /
                out.wallSeconds;
        }
        // Critical-path analysis rides on timing cells only: it is a
        // separate traced run, so the timed stats above are untouched.
        if (col.config.critpath)
            out.critpath = critpathCell(w, col.config, cancel);
    }
    return out;
}

SweepCell
ExperimentEngine::runOne(const EngineWorkload &w, const SweepColumn &col)
{
    // Fault-injection sites and retry jitter key on the cell's sweep
    // identity.
    const std::string cellKey = w.id + "|" + col.name;
    for (int attempt = 0;; ++attempt) {
        // Per-attempt deadline: the watchdog sets the flag, the
        // timing loop / functional pre-pass polls it and throws
        // CellTimeout. The flag lives on this frame; the watchdog
        // never touches it after disarm() returns.
        std::atomic<bool> cancelFlag{false};
        std::uint64_t wdId = 0;
        bool armed = false;
        if (watchdog_ && policy_.cellTimeoutS > 0) {
            wdId = watchdog_->arm(&cancelFlag, policy_.cellTimeoutS);
            armed = true;
        }
        auto disarm = [&] {
            if (armed)
                watchdog_->disarm(wdId);
        };
        try {
            faultPoint(FaultSite::Stall, cellKey, &cancelFlag);
            faultPoint(FaultSite::Alloc, cellKey);
            faultPoint(FaultSite::CellFail, cellKey);
            faultPoint(FaultSite::Cell, cellKey);
            SweepCell out = computeCell(w, col, &cancelFlag);
            disarm();
            out.retries = static_cast<std::uint32_t>(attempt);
            return out;
        } catch (const CellTimeout &e) {
            // Never retried: a rerun would hit the same deadline.
            disarm();
            SweepCell out;
            out.outcome = CellOutcome::TimedOut;
            out.error = e.what();
            out.retries = static_cast<std::uint32_t>(attempt);
            return out;
        } catch (const TransientError &e) {
            disarm();
            if (attempt >= policy_.cellRetries) {
                SweepCell out;
                out.outcome = CellOutcome::Failed;
                out.error = e.what();
                out.retries = static_cast<std::uint32_t>(attempt);
                return out;
            }
            // Exponential backoff with deterministic jitter: the
            // delay depends only on (cell, attempt), never on thread
            // schedule, so fault runs are reproducible.
            std::uint64_t base = policy_.backoffMs > 0
                ? static_cast<std::uint64_t>(policy_.backoffMs)
                      << attempt
                : 0;
            if (base > 0) {
                std::uint64_t jitter =
                    fnv1a64(cellKey.data(), cellKey.size(),
                            0xcbf29ce484222325ull ^
                                static_cast<std::uint64_t>(attempt)) %
                    static_cast<std::uint64_t>(policy_.backoffMs);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(base + jitter));
            }
        } catch (const std::exception &e) {
            disarm();
            SweepCell out;
            out.outcome = CellOutcome::Failed;
            out.error = e.what();
            out.retries = static_cast<std::uint32_t>(attempt);
            return out;
        } catch (...) {
            disarm();
            SweepCell out;
            out.outcome = CellOutcome::Failed;
            out.error = "unknown exception";
            out.retries = static_cast<std::uint32_t>(attempt);
            return out;
        }
    }
}

SweepResult
ExperimentEngine::sweep(const SweepSpec &spec)
{
    SweepResult out;
    out.title = spec.title;
    out.baselineColumn = spec.baselineColumn;
    for (const EngineWorkload &w : spec.workloads) {
        out.rows.push_back(w.id);
        out.suites.push_back(w.suite);
    }
    for (const SweepColumn &c : spec.columns)
        out.columns.push_back(c.name);

    std::size_t cols = spec.columns.size();
    out.cells.resize(spec.workloads.size() * cols);

    // Journal keys: the computation fingerprint (not the display
    // name) per cell, and a whole-spec fingerprint naming the journal
    // file — rerunning the same spec resumes its journal, any other
    // spec gets its own.
    std::vector<std::uint64_t> fps;
    std::unique_ptr<SweepJournal> journal;
    if (!journalDir_.empty() || dryRun_) {
        fps.resize(out.cells.size());
        std::uint64_t specFp =
            fnv1a64(spec.title.data(), spec.title.size());
        for (std::size_t i = 0; i < out.cells.size(); ++i) {
            const SweepColumn &col = spec.columns[i % cols];
            std::string fp =
                cellFingerprint(spec.workloads[i / cols].id,
                                col.config) +
                (col.timing ? "|timed" : "|prepare-only");
            fps[i] = fnv1a64(fp.data(), fp.size());
            specFp = fnv1a64(&fps[i], sizeof fps[i], specFp);
        }
        if (!journalDir_.empty()) {
            journal = std::make_unique<SweepJournal>();
            journal->open(journalDir_, specFp);
        }
    }

    if (dryRun_) {
        // Plan only: report what would run and what the journal
        // already holds; simulate nothing.
        out.planOnly = true;
        std::printf("== sweep plan: %s (%zu cells) ==\n",
                    spec.title.c_str(), out.cells.size());
        std::uint64_t hits = 0;
        for (std::size_t i = 0; i < out.cells.size(); ++i) {
            SweepCell &cell = out.cells[i];
            cell.outcome = CellOutcome::Skipped;
            std::string note;
            if (journal) {
                SweepCell j;
                cell.journalHit = journal->lookup(fps[i], j);
                hits += cell.journalHit;
                note = cell.journalHit ? " journal=hit"
                                       : " journal=miss";
            }
            if (!spec.columns[i % cols].timing)
                note += " prepare-only";
            std::printf("  %-16s %-24s fp=%016llx%s\n",
                        spec.workloads[i / cols].id.c_str(),
                        spec.columns[i % cols].name.c_str(),
                        static_cast<unsigned long long>(fps[i]),
                        note.c_str());
        }
        if (journal)
            std::printf("  journal: %llu/%zu cells already recorded "
                        "in %s\n",
                        static_cast<unsigned long long>(hits),
                        out.cells.size(), journal->path().c_str());
        return out;
    }

    CheckpointStoreCounters before;
    if (store_)
        before = store_->counters();
    ThreadPool::parallelFor(jobs_, out.cells.size(), [&](std::size_t i) {
        if (journal) {
            SweepCell hit;
            if (journal->lookup(fps[i], hit)) {
                out.cells[i] = std::move(hit);
                return;
            }
        }
        out.cells[i] = runOne(spec.workloads[i / cols],
                              spec.columns[i % cols]);
        // Only Ok cells are journaled: a failed or timed-out cell
        // re-simulates on resume, so a resumed sweep converges to
        // exactly what an uninterrupted one reports.
        if (journal && out.cells[i].outcome == CellOutcome::Ok)
            journal->record(fps[i], out.cells[i]);
    });
    if (store_) {
        CheckpointStoreCounters d = store_->counters() - before;
        out.storeAttached = true;
        out.storeHits = d.hits;
        out.storeMisses = d.misses;
        out.storeWritebacks = d.writebacks;
        out.storeCorrupt = d.corrupt;
        out.storeEvictions = d.evictions;
    }
    if (journal) {
        out.journalAttached = true;
        out.journalRecorded = journal->recorded();
    }
    return out;
}

EngineCounters
ExperimentEngine::counters() const
{
    EngineCounters c;
    c.profileComputes = profiles.computes();
    c.profileHits = profiles.hits();
    c.prepareComputes = prepared.computes();
    c.prepareHits = prepared.hits();
    c.runComputes = runs.computes();
    c.runHits = runs.hits();
    c.summaryComputes = summaries.computes();
    c.summaryHits = summaries.hits();
    c.sampledComputes = sampledRuns.computes();
    c.sampledHits = sampledRuns.hits();
    return c;
}

} // namespace mg
