#include "engine/engine.hh"

#include <chrono>
#include <thread>

#include "common/logging.hh"
#include "engine/fingerprint.hh"
#include "engine/thread_pool.hh"

namespace mg {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

ExperimentEngine::ExperimentEngine(int jobs)
{
    if (jobs == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw ? static_cast<int>(hw) : 1;
    }
    jobs_ = jobs < 1 ? 1 : jobs;
}

std::shared_ptr<const BlockProfile>
ExperimentEngine::profile(const EngineWorkload &w, std::uint64_t budget)
{
    std::string key = profileFingerprint(w.id, budget);
    return profiles.get(key, [&] {
        return collectProfile(*w.program, w.setup, budget);
    });
}

std::shared_ptr<const PreparedMg>
ExperimentEngine::prepare(const EngineWorkload &w, const SimConfig &cfg)
{
    std::string profKey = profileFingerprint(w.id, cfg.profileBudget);
    std::string key = prepareFingerprint(profKey, cfg.policy, cfg.machine,
                                         cfg.compress);
    return prepared.get(key, [&] {
        auto prof = profile(w, cfg.profileBudget);
        return prepareMiniGraphs(*w.program, *prof, cfg.policy,
                                 cfg.machine, cfg.compress);
    });
}

CoreStats
ExperimentEngine::cell(const EngineWorkload &w, const SimConfig &cfg)
{
    return cellTimed(w, cfg).stats;
}

TimedStats
ExperimentEngine::cellTimed(const EngineWorkload &w, const SimConfig &cfg)
{
    std::string key = cellFingerprint(w.id, cfg);
    return *runs.get(key, [&]() -> TimedStats {
        // Artifacts are built outside the timer: wall seconds measure
        // the cycle-accurate run itself, the simulator's hot path.
        const PreparedMg *prep = nullptr;
        std::shared_ptr<const PreparedMg> hold;
        if (cfg.useMiniGraphs) {
            hold = prepare(w, cfg);
            prep = hold.get();
        }
        auto t0 = std::chrono::steady_clock::now();
        CoreStats s = runCell(*w.program, prep, cfg, w.setup);
        return {s, secondsSince(t0)};
    });
}

CheckpointStore *
ExperimentEngine::storeFor(const SamplingParams &sp) const
{
    // The store serves warm-through sampled runs only: jump-mode
    // summaries need their in-memory checkpoints (elided from the
    // persisted form), degenerate parameters run exactly, and full
    // simulation has nothing to warm.
    if (store_ && store_->enabled() && sp.enabled && sp.warmThrough &&
        !sp.degenerate())
        return store_.get();
    return nullptr;
}

std::shared_ptr<const SampleSummary>
ExperimentEngine::summary(const EngineWorkload &w, const SimConfig &cfg)
{
    // The summary depends on the executed binary, not on the machine:
    // identify it by the workload plus (for mini-graph configs) the
    // prepare fingerprint of the rewrite that produced the binary.
    std::string variant = w.id;
    if (cfg.useMiniGraphs) {
        variant += "|" +
            prepareFingerprint(
                profileFingerprint(w.id, cfg.profileBudget), cfg.policy,
                cfg.machine, cfg.compress);
    }
    std::string key = summaryFingerprint(variant, cfg.sampling,
                                         cfg.runBudget);
    return summaries.get(key, [&]() -> SampleSummary {
        // Warm-through summaries carry no checkpoints, so they
        // round-trip through the checkpoint store: a warm session
        // skips the functional pre-pass entirely.
        CheckpointStore *cs = storeFor(cfg.sampling);
        std::string storeKey = "summ|" + key;
        if (cs) {
            std::vector<std::uint8_t> raw;
            if (cs->load(storeKey, raw)) {
                SerialReader r(raw);
                SampleSummary sum;
                if (deserializeSampleSummary(r, sum))
                    return sum;
            }
        }
        const Program *prog = w.program;
        const MgTable *mgt = nullptr;
        std::shared_ptr<const PreparedMg> prep;
        if (cfg.useMiniGraphs) {
            prep = prepare(w, cfg);
            prog = &prep->program;
            mgt = &prep->table;
        }
        SampleSummary sum = collectSampleSummary(*prog, mgt, w.setup,
                                                 cfg.sampling,
                                                 cfg.runBudget);
        if (cs) {
            SerialWriter sw;
            serializeSampleSummary(sum, sw);
            cs->store(storeKey, sw.data());
        }
        return sum;
    });
}

SampledStats
ExperimentEngine::cellSampled(const EngineWorkload &w, const SimConfig &cfg)
{
    return cellSampledTimed(w, cfg).stats;
}

TimedSampled
ExperimentEngine::cellSampledTimed(const EngineWorkload &w,
                                   const SimConfig &cfg)
{
    std::string key = cellFingerprint(w.id, cfg);
    return *sampledRuns.get(key, [&]() -> TimedSampled {
        auto sum = summary(w, cfg);
        const PreparedMg *prep = nullptr;
        std::shared_ptr<const PreparedMg> hold;
        if (cfg.useMiniGraphs) {
            hold = prepare(w, cfg);
            prep = hold.get();
        }
        std::unique_ptr<CellCheckpointClient> client;
        if (storeFor(cfg.sampling))
            client = makeCellClient(*store_, key);
        auto t0 = std::chrono::steady_clock::now();
        SampledStats s = runCellSampled(*w.program, prep, cfg, w.setup,
                                        *sum, client.get());
        return {s, secondsSince(t0)};
    });
}

SweepCell
ExperimentEngine::runOne(const EngineWorkload &w, const SweepColumn &col)
{
    SweepCell out;
    if (col.config.useMiniGraphs) {
        auto prep = prepare(w, col.config);
        out.staticCoverage = prep->staticCoverage;
        out.templates = prep->table.size();
        out.textSlots = prep->program.text.size();
    } else {
        out.textSlots = w.program->text.size();
    }
    if (col.timing) {
        if (col.config.sampling.enabled) {
            TimedSampled ts = cellSampledTimed(w, col.config);
            out.sampled = ts.stats;
            out.stats = out.sampled.est;
            out.sampledRun = true;
            out.wallSeconds = ts.seconds;
        } else {
            TimedStats ts = cellTimed(w, col.config);
            out.stats = ts.stats;
            out.wallSeconds = ts.seconds;
        }
        out.timed = true;
        if (out.wallSeconds > 0) {
            out.workPerSec =
                static_cast<double>(out.stats.committedWork) /
                out.wallSeconds;
        }
    }
    return out;
}

SweepResult
ExperimentEngine::sweep(const SweepSpec &spec)
{
    SweepResult out;
    out.title = spec.title;
    out.baselineColumn = spec.baselineColumn;
    for (const EngineWorkload &w : spec.workloads) {
        out.rows.push_back(w.id);
        out.suites.push_back(w.suite);
    }
    for (const SweepColumn &c : spec.columns)
        out.columns.push_back(c.name);

    std::size_t cols = spec.columns.size();
    out.cells.resize(spec.workloads.size() * cols);
    CheckpointStoreCounters before;
    if (store_)
        before = store_->counters();
    ThreadPool::parallelFor(jobs_, out.cells.size(), [&](std::size_t i) {
        out.cells[i] = runOne(spec.workloads[i / cols],
                              spec.columns[i % cols]);
    });
    if (store_) {
        CheckpointStoreCounters d = store_->counters() - before;
        out.storeAttached = true;
        out.storeHits = d.hits;
        out.storeMisses = d.misses;
        out.storeWritebacks = d.writebacks;
        out.storeCorrupt = d.corrupt;
        out.storeEvictions = d.evictions;
    }
    return out;
}

EngineCounters
ExperimentEngine::counters() const
{
    EngineCounters c;
    c.profileComputes = profiles.computes();
    c.profileHits = profiles.hits();
    c.prepareComputes = prepared.computes();
    c.prepareHits = prepared.hits();
    c.runComputes = runs.computes();
    c.runHits = runs.hits();
    c.summaryComputes = summaries.computes();
    c.summaryHits = summaries.hits();
    c.sampledComputes = sampledRuns.computes();
    c.sampledHits = sampledRuns.hits();
    return c;
}

} // namespace mg
