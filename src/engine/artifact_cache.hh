/**
 * @file
 * Thread-safe once-per-key artifact memoisation. The first caller of a
 * key computes the artifact while later callers block on its future,
 * so a sweep never performs the same profile / prepare / timing run
 * twice no matter how its cells are scheduled. Values are immutable
 * once published (shared_ptr<const T>), which is what makes sharing
 * them across worker threads safe.
 */

#ifndef MG_ENGINE_ARTIFACT_CACHE_HH
#define MG_ENGINE_ARTIFACT_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace mg {

/** Keyed store of immutable artifacts with hit/compute counters. */
template <typename T>
class ArtifactCache
{
  public:
    /**
     * @return the artifact for @p key, computing it with @p make on
     *         first use. @p make must be deterministic in @p key.
     */
    std::shared_ptr<const T>
    get(const std::string &key, const std::function<T()> &make)
    {
        std::shared_future<std::shared_ptr<const T>> fut;
        std::promise<std::shared_ptr<const T>> mine;
        bool compute = false;
        {
            std::lock_guard<std::mutex> g(lock);
            auto it = entries.find(key);
            if (it == entries.end()) {
                compute = true;
                ++computes_;
                fut = mine.get_future().share();
                entries.emplace(key, fut);
            } else {
                ++hits_;
                fut = it->second;
            }
        }
        if (compute) {
            try {
                mine.set_value(std::make_shared<const T>(make()));
            } catch (...) {
                // Un-map the key before publishing the failure: the
                // exception must not be memoised, or a retried cell
                // would re-throw the stale error forever instead of
                // recomputing. Callers already blocked on this future
                // share the failure (they asked for this attempt);
                // callers arriving later start a fresh compute.
                {
                    std::lock_guard<std::mutex> g(lock);
                    entries.erase(key);
                }
                mine.set_exception(std::current_exception());
                throw;
            }
        }
        return fut.get();
    }

    std::uint64_t
    hits() const
    {
        std::lock_guard<std::mutex> g(lock);
        return hits_;
    }

    std::uint64_t
    computes() const
    {
        std::lock_guard<std::mutex> g(lock);
        return computes_;
    }

  private:
    mutable std::mutex lock;
    std::unordered_map<std::string,
                       std::shared_future<std::shared_ptr<const T>>>
        entries;
    std::uint64_t hits_ = 0;
    std::uint64_t computes_ = 0;
};

} // namespace mg

#endif // MG_ENGINE_ARTIFACT_CACHE_HH
