/**
 * @file
 * Functional MG-Alpha emulator.
 *
 * Executes a Program to completion (halt) or an instruction budget,
 * collecting a basic-block frequency profile on the way. Handles (mg
 * quasi-instructions) execute by expanding their MGT template: the two
 * interface inputs are read once, interior values stay in emulator
 * temporaries (never in architectural registers), and only the
 * interface output register is written — exactly the atomic semantics
 * the microarchitecture guarantees.
 *
 * The emulator doubles as the oracle for the timing simulator: its
 * committed dynamic stream is what the timing core must retire.
 */

#ifndef MG_EMU_EMULATOR_HH
#define MG_EMU_EMULATOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "cfg/profile.hh"
#include "common/serial.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "memsys/memory.hh"
#include "mg/mgt.hh"

namespace mg {

/** Why a run stopped. */
enum class StopReason
{
    Halted,        ///< executed HALT
    InsnLimit,     ///< hit the instruction budget
};

/** Architectural effects of one dynamic instruction (or handle). */
struct ExecRecord
{
    Addr pc = 0;
    Addr nextPc = 0;
    const Instruction *insn = nullptr;
    InsnClass cls = InsnClass::Nop; ///< predecoded class (no table walk)
    bool taken = false;         ///< control op taken
    bool padNop = false;        ///< architectural no-op (predecoded)
    bool isMem = false;
    bool memIsStore = false;
    Addr memAddr = 0;
    int memBytes = 0;
    std::uint64_t memData = 0;  ///< value loaded or stored
};

/**
 * Snapshot of the complete functional state: architectural registers,
 * PC, the memory image, the dynamic counters, and the block profile
 * accumulated so far. Because functional execution is independent of
 * any timing model, a checkpoint captured at dynamic position N is
 * valid for *every* machine configuration that runs the same program
 * and inputs — which is what lets the experiment engine share
 * checkpoints across sweep columns (see docs/ARCHITECTURE.md).
 */
struct EmuCheckpoint
{
    std::vector<std::uint64_t> regs;
    Addr pc = 0;
    bool halted = false;
    std::uint64_t slots = 0;    ///< dynamic slots executed
    std::uint64_t work = 0;     ///< constituent work executed
    BlockProfile profile;
    Memory mem;
};

/** Append @p c to @p w (the warm-checkpoint store's wire format). */
void serializeCheckpoint(const EmuCheckpoint &c, SerialWriter &w);

/**
 * Parse a checkpoint written by serializeCheckpoint (or by
 * Emulator::serializeState, which shares the format). On malformed
 * input returns false with @p c unspecified; callers check before
 * restoring it into an emulator.
 */
bool deserializeCheckpoint(SerialReader &r, EmuCheckpoint &c);

/** Result of a complete run. */
struct EmuResult
{
    StopReason stop = StopReason::Halted;
    std::uint64_t dynInsns = 0;     ///< dynamic slots executed
    std::uint64_t dynWork = 0;      ///< constituent instructions
                                    ///< (handles expand, nops excluded)
    BlockProfile profile;
};

/** The functional core. */
class Emulator
{
  public:
    /**
     * @param prog program to run
     * @param mgt  MGT for handle expansion (may be null when the
     *             program contains no handles)
     */
    explicit Emulator(const Program &prog, const MgTable *mgt = nullptr);

    /** Reset architectural state and load the data image. */
    void reset();

    /**
     * Execute one dynamic instruction at the current PC.
     * @param rec optional out-param describing the effects
     * @return false when the instruction was HALT
     */
    bool step(ExecRecord *rec = nullptr);

    /** Run until halt or @p maxInsns dynamic slots. */
    EmuResult run(std::uint64_t maxInsns = ~0ull);

    /** Capture the complete functional state. */
    EmuCheckpoint checkpoint() const;

    /** Restore state captured by checkpoint() (same program). */
    void restore(const EmuCheckpoint &c);

    /** Move-restore: adopts the checkpoint's memory image without the
     *  deep copy (warm-state restores discard the parsed temporary). */
    void restore(EmuCheckpoint &&c);

    /** Append the live functional state to @p w — byte-identical to
     *  serializing checkpoint(), minus the deep copies. */
    void serializeState(SerialWriter &w) const;

    /** True when @p c can be restored into this emulator (restore()
     *  treats an incompatible checkpoint as fatal; deserialized ones
     *  are validated through this first). */
    bool
    checkpointCompatible(const EmuCheckpoint &c) const
    {
        return c.regs.size() == regs.size();
    }

    Addr pc() const { return pc_; }
    bool halted() const { return halted_; }

    /** Architectural register value (fp regs hold raw bits).
     *  (Inline: three accesses per dynamic instruction.) */
    std::uint64_t
    reg(RegId r) const
    {
        if (r == regNone || isZeroReg(r))
            return 0;
        if (r < 0 || r >= numEmuRegs)
            badReg(r);
        return regs[static_cast<size_t>(r)];
    }

    void
    setReg(RegId r, std::uint64_t v)
    {
        if (r == regNone || isZeroReg(r))
            return;
        if (r < 0 || r >= numEmuRegs)
            badReg(r);
        regs[static_cast<size_t>(r)] = v;
    }

    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }
    const Program &program() const { return prog; }

    /** Dynamic slots executed so far. */
    std::uint64_t dynInsns() const { return count_; }

    /** Constituent work (handle bodies counted, pad nops excluded). */
    std::uint64_t dynWork() const { return work_; }

    /** Per-block profile accumulated so far. */
    const BlockProfile &profile() const { return prof; }

  private:
    /** Architectural registers plus DISE's four dedicated registers
     *  (ids numArchRegs..numArchRegs+3), so DISE-expanded sequences
     *  execute directly. */
    static constexpr int numEmuRegs = numArchRegs + 4;

    /**
     * Per-text-slot predecode, computed once at construction: the
     * dispatch class, memory width, and block-leader flag that step()
     * would otherwise re-derive from the opcode on every dynamic
     * execution of the slot.
     */
    struct Predecoded
    {
        InsnClass cls;
        std::uint8_t memBytes;     ///< loads/stores only
        bool blockStart;           ///< text idx starts a basic block
        bool padNop;               ///< Instruction::isNop()
    };

    const Program &prog;
    const MgTable *mgt;
    Memory mem;
    std::array<std::uint64_t, numEmuRegs> regs{};
    Addr pc_ = 0;
    bool halted_ = false;
    std::uint64_t count_ = 0;
    std::uint64_t work_ = 0;
    BlockProfile prof;
    std::vector<Predecoded> dec;    ///< flat predecoded text

    /** Per-template-instruction kind, precomputed per MGT entry. */
    enum class TmplKind : std::uint8_t { Alu, Load, Store, CondBranch };
    std::vector<std::vector<TmplKind>> tmplKinds;   ///< by MgId

    void predecode();
    [[noreturn]] void badReg(RegId r) const;
    std::uint64_t aluOp(Op op, std::uint64_t a, std::uint64_t b) const;
    void execHandle(const Instruction &in, ExecRecord *rec);
};

} // namespace mg

#endif // MG_EMU_EMULATOR_HH
