#include "emu/emulator.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "mg/minigraph.hh"

namespace mg {

namespace {

/** Sign-extend the low 32 bits (Alpha longword semantics). */
std::uint64_t
sextl(std::uint64_t v)
{
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
}

double
asDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

std::uint64_t
asBits(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

int
memBytes(Op op)
{
    switch (op) {
      case Op::LDBU: case Op::STB: return 1;
      case Op::LDWU: case Op::STW: return 2;
      case Op::LDL: case Op::STL: return 4;
      case Op::LDQ: case Op::STQ: case Op::LDT: case Op::STT: return 8;
      default: panic("not a memory op: %s", opName(op));
    }
}

bool
branchTaken(Op op, std::uint64_t v)
{
    auto sv = static_cast<std::int64_t>(v);
    switch (op) {
      case Op::BEQ: return v == 0;
      case Op::BNE: return v != 0;
      case Op::BLT: return sv < 0;
      case Op::BLE: return sv <= 0;
      case Op::BGT: return sv > 0;
      case Op::BGE: return sv >= 0;
      case Op::BLBC: return (v & 1) == 0;
      case Op::BLBS: return (v & 1) == 1;
      case Op::FBEQ: return asDouble(v) == 0.0;
      case Op::FBNE: return asDouble(v) != 0.0;
      default: panic("not a conditional branch: %s", opName(op));
    }
}

} // namespace

Emulator::Emulator(const Program &p, const MgTable *t) : prog(p), mgt(t)
{
    predecode();
    reset();
}

void
Emulator::predecode()
{
    // One pass over the text: classify every slot once instead of
    // re-deriving class and access width on each dynamic execution.
    // Block leaders mirror Cfg's rule so profiles line up with CFG
    // blocks.
    const auto n = static_cast<InsnIdx>(prog.text.size());
    dec.assign(n, Predecoded{InsnClass::Nop, 0, false, false});
    if (n == 0)
        return;
    for (InsnIdx i = 0; i < n; ++i) {
        const Instruction &in = prog.text[i];
        dec[i].cls = in.cls();
        dec[i].padNop = in.isNop();
        if (in.isMem())
            dec[i].memBytes = static_cast<std::uint8_t>(memBytes(in.op));
    }
    dec[0].blockStart = true;
    if (prog.validPc(prog.entry))
        dec[prog.indexOf(prog.entry)].blockStart = true;
    for (InsnIdx i = 0; i < n; ++i) {
        const Instruction &in = prog.text[i];
        if (in.isControl()) {
            if (dec[i].cls == InsnClass::CondBranch ||
                dec[i].cls == InsnClass::UncondBranch) {
                Addr tgt = static_cast<Addr>(in.imm);
                if (prog.validPc(tgt))
                    dec[prog.indexOf(tgt)].blockStart = true;
            }
            if (i + 1 < n)
                dec[i + 1].blockStart = true;
        } else if ((in.op == Op::HALT || in.isHandle()) && i + 1 < n) {
            dec[i + 1].blockStart = true;
        }
    }
    if (mgt) {
        tmplKinds.resize(mgt->size());
        for (std::size_t id = 0; id < mgt->size(); ++id) {
            const MgTemplate &t = mgt->at(static_cast<MgId>(id));
            auto &kinds = tmplKinds[id];
            kinds.reserve(t.insns.size());
            for (const TemplateInsn &ti : t.insns) {
                kinds.push_back(isLoadOp(ti.op) ? TmplKind::Load
                                : isStoreOp(ti.op) ? TmplKind::Store
                                : isCondBranchOp(ti.op)
                                    ? TmplKind::CondBranch
                                    : TmplKind::Alu);
            }
        }
    }
}

void
Emulator::reset()
{
    regs.fill(0);
    regs[regSp] = stackTop;
    mem.clear();
    if (!prog.data.empty())
        mem.writeBlock(dataBase, prog.data.data(), prog.data.size());
    pc_ = prog.entry;
    halted_ = false;
    count_ = 0;
    work_ = 0;
    prof = BlockProfile();
}

void
Emulator::badReg(RegId r) const
{
    panic("register id %d out of range", r);
}

std::uint64_t
Emulator::aluOp(Op op, std::uint64_t a, std::uint64_t b) const
{
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);
    switch (op) {
      case Op::ADDL: return sextl(a + b);
      case Op::ADDQ: return a + b;
      case Op::SUBL: return sextl(a - b);
      case Op::SUBQ: return a - b;
      case Op::MULL: return sextl(a * b);
      case Op::MULQ: return a * b;
      case Op::S4ADDL: return sextl(a * 4 + b);
      case Op::S8ADDL: return sextl(a * 8 + b);
      case Op::S4ADDQ: return a * 4 + b;
      case Op::S8ADDQ: return a * 8 + b;
      case Op::AND: return a & b;
      case Op::BIS: return a | b;
      case Op::XOR: return a ^ b;
      case Op::BIC: return a & ~b;
      case Op::ORNOT: return a | ~b;
      case Op::EQV: return a ^ ~b;
      case Op::SLL: return a << (b & 63);
      case Op::SRL: return a >> (b & 63);
      case Op::SRA: return static_cast<std::uint64_t>(sa >> (b & 63));
      case Op::CMPEQ: return a == b ? 1 : 0;
      case Op::CMPLT: return sa < sb ? 1 : 0;
      case Op::CMPLE: return sa <= sb ? 1 : 0;
      case Op::CMPULT: return a < b ? 1 : 0;
      case Op::CMPULE: return a <= b ? 1 : 0;
      case Op::LDA: return a + b;
      case Op::LDAH: return a + b * 65536;
      case Op::SEXTB: return static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<std::int8_t>(a)));
      case Op::SEXTW: return static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<std::int16_t>(a)));
      case Op::CTPOP: return static_cast<std::uint64_t>(std::popcount(a));
      case Op::CTLZ: return static_cast<std::uint64_t>(std::countl_zero(a));
      case Op::CTTZ: return static_cast<std::uint64_t>(std::countr_zero(a));
      case Op::ZAPNOT: {
          std::uint64_t r = 0;
          for (int i = 0; i < 8; ++i) {
              if (b & (1ull << i))
                  r |= a & (0xffull << (8 * i));
          }
          return r;
      }
      case Op::ADDT: return asBits(asDouble(a) + asDouble(b));
      case Op::SUBT: return asBits(asDouble(a) - asDouble(b));
      case Op::MULT: return asBits(asDouble(a) * asDouble(b));
      case Op::DIVT: return asBits(asDouble(a) / asDouble(b));
      case Op::CMPTEQ: return asDouble(a) == asDouble(b) ? asBits(2.0) : 0;
      case Op::CMPTLT: return asDouble(a) < asDouble(b) ? asBits(2.0) : 0;
      case Op::CMPTLE: return asDouble(a) <= asDouble(b) ? asBits(2.0) : 0;
      case Op::CVTQT: return asBits(static_cast<double>(sa));
      case Op::CVTTQ: return static_cast<std::uint64_t>(
          static_cast<std::int64_t>(asDouble(a)));
      case Op::CPYS: {
          std::uint64_t sign = a & 0x8000000000000000ull;
          return sign | (b & 0x7fffffffffffffffull);
      }
      default: panic("not an ALU op: %s", opName(op));
    }
}

void
Emulator::execHandle(const Instruction &in, ExecRecord *rec)
{
    if (!mgt)
        fatal("program contains handles but no MGT was supplied");
    const MgTemplate &t = mgt->at(static_cast<MgId>(in.imm));

    // Atomic read of the interface inputs. Interior values live on
    // the stack (a template holds at most mgMaxSize instructions).
    std::uint64_t e0 = reg(in.ra);
    std::uint64_t e1 = reg(in.rb);
    if (t.insns.size() > static_cast<std::size_t>(mgMaxSize))
        panic("template larger than mgMaxSize");
    std::uint64_t m[mgMaxSize] = {};
    Addr next = pc_ + insnBytes;
    std::uint64_t outVal = 0;
    bool haveOut = false;

    auto value = [&](const OpndRef &r, std::int64_t imm) -> std::uint64_t {
        switch (r.kind) {
          case OpndKind::E0: return e0;
          case OpndKind::E1: return e1;
          case OpndKind::M: return m[static_cast<size_t>(r.m)];
          case OpndKind::Imm: return static_cast<std::uint64_t>(imm);
          case OpndKind::None: return 0;
        }
        return 0;
    };

    const std::vector<TmplKind> &kinds =
        tmplKinds[static_cast<std::size_t>(in.imm)];
    for (size_t i = 0; i < t.insns.size(); ++i) {
        const TemplateInsn &ti = t.insns[i];
        if (kinds[i] == TmplKind::Load) {
            Addr a = value(ti.a, 0) + static_cast<Addr>(ti.imm);
            int bytes = memBytes(ti.op);
            std::uint64_t v = mem.read(a, bytes);
            if (ti.op == Op::LDL)
                v = sextl(v);
            m[i] = v;
            if (rec) {
                rec->isMem = true;
                rec->memIsStore = false;
                rec->memAddr = a;
                rec->memBytes = bytes;
                rec->memData = v;
            }
        } else if (kinds[i] == TmplKind::Store) {
            Addr a = value(ti.a, 0) + static_cast<Addr>(ti.imm);
            int bytes = memBytes(ti.op);
            std::uint64_t v = value(ti.b, 0);
            mem.write(a, v, bytes);
            if (rec) {
                rec->isMem = true;
                rec->memIsStore = true;
                rec->memAddr = a;
                rec->memBytes = bytes;
                rec->memData = v;
            }
        } else if (kinds[i] == TmplKind::CondBranch) {
            std::uint64_t v = value(ti.a, 0);
            if (branchTaken(ti.op, v)) {
                next = pc_ + static_cast<Addr>(ti.imm);
                if (rec)
                    rec->taken = true;
            }
        } else {
            std::uint64_t a = value(ti.a, ti.imm);
            std::uint64_t b = ti.useImm
                ? static_cast<std::uint64_t>(ti.imm)
                : value(ti.b, ti.imm);
            // Unary ops encode useImm with imm 0; LDA-style ops fold the
            // immediate through operand b as on the singleton path.
            m[i] = aluOp(ti.op, a, b);
        }
        if (static_cast<int>(i) == t.outIdx) {
            outVal = m[i];
            haveOut = true;
        }
    }

    if (haveOut)
        setReg(in.rc, outVal);
    work_ += static_cast<std::uint64_t>(t.size());
    pc_ = next;
    if (rec)
        rec->nextPc = next;
}

bool
Emulator::step(ExecRecord *rec)
{
    if (halted_) {
        if (rec)
            rec->insn = nullptr;   // contract: no instruction executed
        return false;
    }
    if (!prog.validPc(pc_))
        fatal("PC 0x%llx left the text section",
              static_cast<unsigned long long>(pc_));
    auto idx = static_cast<InsnIdx>((pc_ - textBase) / insnBytes);
    const Predecoded &pd = dec[idx];
    if (pd.blockStart)
        prof.record(idx);
    const Instruction &in = prog.text[idx];
    ++count_;

    if (rec) {
        // Field-wise init instead of a whole-struct clear: the memory
        // operand fields are only meaningful (and only read) when
        // isMem is set below.
        rec->pc = pc_;
        rec->insn = &in;
        rec->cls = pd.cls;
        rec->taken = false;
        rec->padNop = pd.padNop;
        rec->isMem = false;
        rec->memIsStore = false;
        rec->nextPc = pc_ + insnBytes;
    }

    switch (pd.cls) {
      case InsnClass::IntAlu:
      case InsnClass::IntMult:
      case InsnClass::FpAlu:
      case InsnClass::FpDiv: {
          if (in.op == Op::CMOVEQ || in.op == Op::CMOVNE) {
              std::uint64_t test = reg(in.ra);
              bool move = (in.op == Op::CMOVEQ) ? test == 0 : test != 0;
              if (move) {
                  std::uint64_t v = in.useImm
                      ? static_cast<std::uint64_t>(in.imm)
                      : reg(in.rb);
                  setReg(in.rc, v);
              }
              ++work_;
              break;
          }
          std::uint64_t a = reg(in.ra);
          std::uint64_t b = in.useImm
              ? static_cast<std::uint64_t>(in.imm)
              : reg(in.rb);
          setReg(in.rc, aluOp(in.op, a, b));
          ++work_;
          break;
      }
      case InsnClass::Load: {
          Addr a = reg(in.rb) + static_cast<Addr>(in.imm);
          int bytes = pd.memBytes;
          std::uint64_t v = mem.read(a, bytes);
          if (in.op == Op::LDL)
              v = sextl(v);
          setReg(in.ra, v);
          if (rec) {
              rec->isMem = true;
              rec->memAddr = a;
              rec->memBytes = bytes;
              rec->memData = v;
          }
          ++work_;
          break;
      }
      case InsnClass::Store: {
          Addr a = reg(in.rb) + static_cast<Addr>(in.imm);
          int bytes = pd.memBytes;
          std::uint64_t v = reg(in.ra);
          mem.write(a, v, bytes);
          if (rec) {
              rec->isMem = true;
              rec->memIsStore = true;
              rec->memAddr = a;
              rec->memBytes = bytes;
              rec->memData = v;
          }
          ++work_;
          break;
      }
      case InsnClass::CondBranch: {
          if (branchTaken(in.op, reg(in.ra))) {
              pc_ = static_cast<Addr>(in.imm);
              if (rec) {
                  rec->taken = true;
                  rec->nextPc = pc_;
              }
              ++work_;
              return true;
          }
          ++work_;
          break;
      }
      case InsnClass::UncondBranch: {
          setReg(in.ra, pc_ + insnBytes);
          pc_ = static_cast<Addr>(in.imm);
          if (rec) {
              rec->taken = true;
              rec->nextPc = pc_;
          }
          ++work_;
          return true;
      }
      case InsnClass::IndirectJump: {
          Addr target = reg(in.rb);
          setReg(in.ra, pc_ + insnBytes);
          pc_ = target;
          if (rec) {
              rec->taken = true;
              rec->nextPc = pc_;
          }
          ++work_;
          return true;
      }
      case InsnClass::Handle:
          execHandle(in, rec);
          return true;
      case InsnClass::Nop:
          break;   // pad nops carry no work
      case InsnClass::Halt:
          halted_ = true;
          ++work_;
          return false;
    }
    pc_ += insnBytes;
    return true;
}

EmuCheckpoint
Emulator::checkpoint() const
{
    EmuCheckpoint c;
    c.regs.assign(regs.begin(), regs.end());
    c.pc = pc_;
    c.halted = halted_;
    c.slots = count_;
    c.work = work_;
    c.profile = prof;
    c.mem = mem;
    return c;
}

void
Emulator::restore(const EmuCheckpoint &c)
{
    if (c.regs.size() != regs.size())
        fatal("checkpoint register file size %zu does not match the "
              "emulator's %zu", c.regs.size(), regs.size());
    std::copy(c.regs.begin(), c.regs.end(), regs.begin());
    pc_ = c.pc;
    halted_ = c.halted;
    count_ = c.slots;
    work_ = c.work;
    prof = c.profile;
    mem = c.mem;
}

void
Emulator::restore(EmuCheckpoint &&c)
{
    if (c.regs.size() != regs.size())
        fatal("checkpoint register file size %zu does not match the "
              "emulator's %zu", c.regs.size(), regs.size());
    std::copy(c.regs.begin(), c.regs.end(), regs.begin());
    pc_ = c.pc;
    halted_ = c.halted;
    count_ = c.slots;
    work_ = c.work;
    prof = std::move(c.profile);
    mem = std::move(c.mem);
}

namespace {

void
serializeProfile(const BlockProfile &p, SerialWriter &w)
{
    w.vec(p.counts());
}

bool
deserializeProfile(SerialReader &r, BlockProfile &p)
{
    std::vector<std::uint64_t> counts = r.vec<std::uint64_t>();
    if (!r.ok())
        return false;
    p = BlockProfile();
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i])
            p.record(static_cast<InsnIdx>(i), counts[i]);
    }
    return true;
}

} // namespace

void
serializeCheckpoint(const EmuCheckpoint &c, SerialWriter &w)
{
    w.vec(c.regs);
    w.u64(c.pc);
    w.u8(c.halted ? 1 : 0);
    w.u64(c.slots);
    w.u64(c.work);
    serializeProfile(c.profile, w);
    c.mem.serialize(w);
}

bool
deserializeCheckpoint(SerialReader &r, EmuCheckpoint &c)
{
    c.regs = r.vec<std::uint64_t>();
    c.pc = r.u64();
    c.halted = r.u8() != 0;
    c.slots = r.u64();
    c.work = r.u64();
    if (!deserializeProfile(r, c.profile))
        return false;
    return c.mem.deserialize(r) && r.ok();
}

void
Emulator::serializeState(SerialWriter &w) const
{
    // Same wire format as serializeCheckpoint(checkpoint(), w),
    // without materializing the deep-copied checkpoint.
    w.u64(regs.size());
    for (std::uint64_t v : regs)
        w.u64(v);
    w.u64(pc_);
    w.u8(halted_ ? 1 : 0);
    w.u64(count_);
    w.u64(work_);
    serializeProfile(prof, w);
    mem.serialize(w);
}

EmuResult
Emulator::run(std::uint64_t maxInsns)
{
    EmuResult r;
    while (!halted_ && count_ < maxInsns) {
        if (!step())
            break;
    }
    r.stop = halted_ ? StopReason::Halted : StopReason::InsnLimit;
    r.dynInsns = count_;
    r.dynWork = work_;
    r.profile = prof;
    return r;
}

} // namespace mg
