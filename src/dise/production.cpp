#include "dise/production.hh"

#include "common/logging.hh"

namespace mg {

bool
Pattern::matches(const Instruction &in) const
{
    if (aware)
        return in.op == Op::MG && in.imm == codewordId;
    return in.op == op;
}

namespace {

RegId
resolve(const ParamReg &p, const Instruction &in)
{
    switch (p.kind) {
      case ParamKind::Lit:
        return p.lit;
      case ParamKind::RS1:
        return in.ra;
      case ParamKind::RS2:
        return in.rb;
      case ParamKind::RD:
        return in.rc;
      case ParamKind::Dise:
        if (p.idx < 0 || p.idx >= numDiseRegs)
            fatal("DISE register $d%d out of range", p.idx);
        return diseReg(p.idx);
      case ParamKind::None:
        return regNone;
    }
    return regNone;
}

} // namespace

Instruction
instantiate(const ReplInsn &r, const Instruction &in)
{
    Instruction out;
    out.op = r.op;
    out.ra = resolve(r.ra, in);
    out.rb = resolve(r.rb, in);
    out.rc = resolve(r.rc, in);
    out.imm = r.immFromCodeword ? in.imm : r.imm;
    out.useImm = r.useImm;
    return out;
}

} // namespace mg
