/**
 * @file
 * The DISE engine and the mini-graph tag table (MGTT).
 *
 * The engine holds the active production set and performs decode-time
 * expansion. For mini-graph processing (an aware utility), DISE gains
 * the option to forgo expansion and keep the codeword/handle inline:
 * the decision is an MGTT lookup. Each MGTT entry carries two valid
 * bits — "pre-processed" and "approved" (the MGPP accepted the
 * replacement sequence as a legal mini-graph). On a hit with approval
 * the handle stays un-expanded; otherwise DISE splices the replacement
 * sequence in line, preserving correctness for productions that do
 * not meet mini-graph criteria and portability across processors
 * (paper Section 5).
 */

#ifndef MG_DISE_ENGINE_HH
#define MG_DISE_ENGINE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dise/production.hh"

namespace mg {

/** One MGTT entry. */
struct MgttEntry
{
    bool preProcessed = false;  ///< first valid bit
    bool approved = false;      ///< second valid bit: keep un-expanded
    MgId mgid = mgNone;         ///< MGT index assigned by the MGPP
};

/** The mini-graph tag table. */
class Mgtt
{
  public:
    explicit Mgtt(int capacity = 512) : cap(capacity) {}

    /** Lookup by codeword immediate. */
    const MgttEntry *find(std::int64_t codewordId) const;

    /** Install or update an entry (evicts nothing; bounded by cap). */
    bool install(std::int64_t codewordId, const MgttEntry &e);

    int size() const { return static_cast<int>(tags.size()); }
    int capacity() const { return cap; }

  private:
    int cap;
    std::unordered_map<std::int64_t, MgttEntry> tags;
};

/** The DISE engine. */
class DiseEngine
{
  public:
    /** Install a production (a ".dise" section entry). */
    void addProduction(Production p);

    const std::vector<Production> &productions() const { return prods; }

    /** The production matching @p in, or null. */
    const Production *match(const Instruction &in) const;

    /**
     * Decode-time expansion of @p in. The result is the instruction
     * sequence the execution core sees (over the architectural + DISE
     * register space). Non-matching instructions pass through as a
     * singleton sequence.
     */
    std::vector<Instruction> expand(const Instruction &in) const;

    /**
     * Expand an entire program in line (the no-mini-graph-support
     * path): codewords are excised and replacement sequences spliced
     * in their place, with branch targets and symbols re-linked.
     */
    Program expandProgram(const Program &prog) const;

  private:
    std::vector<Production> prods;
};

} // namespace mg

#endif // MG_DISE_ENGINE_HH
