#include "dise/mgpp.hh"

#include <array>

#include "common/logging.hh"

namespace mg {

namespace {

/** Track which template instruction last defined each $d register. */
struct DiseDefs
{
    std::array<int, numDiseRegs> def;
    DiseDefs() { def.fill(-1); }
};

} // namespace

MgppResult
mgppCompile(const Production &prod)
{
    MgppResult res;
    auto reject = [&](std::string why) {
        res.approved = false;
        res.reason = std::move(why);
        return res;
    };

    if (!prod.pattern.aware)
        return reject("transparent productions are not mini-graphs");
    const auto &seq = prod.replacement;
    if (seq.size() < 2 || static_cast<int>(seq.size()) > mgMaxSize)
        return reject("replacement size outside mini-graph range");

    MgTemplate t;
    DiseDefs defs;
    int memOps = 0;
    bool sawRs1 = false;
    bool sawRs2 = false;
    int rdWriter = -1;

    auto refOf = [&](const ParamReg &p, int pos,
                     std::string *err) -> OpndRef {
        switch (p.kind) {
          case ParamKind::RS1:
            sawRs1 = true;
            return {OpndKind::E0, -1};
          case ParamKind::RS2:
            sawRs2 = true;
            return {OpndKind::E1, -1};
          case ParamKind::Dise: {
              int d = defs.def[static_cast<size_t>(p.idx)];
              if (d < 0) {
                  *err = strfmt("$d%d read before write", p.idx);
                  return {OpndKind::None, -1};
              }
              return {OpndKind::M, static_cast<std::int8_t>(d)};
          }
          case ParamKind::RD: {
              // Reading T.RD inside the graph means the graph consumes
              // the handle's output register as an input -- only legal
              // when it was produced earlier inside the sequence.
              if (rdWriter >= 0 && rdWriter < pos)
                  return {OpndKind::M,
                          static_cast<std::int8_t>(rdWriter)};
              *err = "T.RD read before any writer";
              return {OpndKind::None, -1};
          }
          case ParamKind::Lit:
            if (p.lit != regNone && !isZeroReg(p.lit)) {
                *err = "literal architectural register in replacement";
                return {OpndKind::None, -1};
            }
            return {OpndKind::None, -1};
          case ParamKind::None:
            return {OpndKind::None, -1};
        }
        return {OpndKind::None, -1};
    };

    for (size_t i = 0; i < seq.size(); ++i) {
        const ReplInsn &r = seq[i];
        std::string err;
        TemplateInsn ti;
        ti.op = r.op;
        ti.imm = r.imm;
        ti.useImm = r.useImm;

        InsnClass cls = opClass(r.op);
        bool terminal = (i == seq.size() - 1);
        switch (cls) {
          case InsnClass::IntAlu:
            if (r.op == Op::CMOVEQ || r.op == Op::CMOVNE)
                return reject("conditional moves are not collapsible");
            ti.a = refOf(r.ra, static_cast<int>(i), &err);
            ti.b = r.useImm ? OpndRef{OpndKind::Imm, -1}
                            : refOf(r.rb, static_cast<int>(i), &err);
            break;
          case InsnClass::Load:
            if (++memOps > 1)
                return reject("more than one memory operation");
            ti.a = refOf(r.rb, static_cast<int>(i), &err);
            ti.b = {OpndKind::Imm, -1};
            break;
          case InsnClass::Store:
            if (++memOps > 1)
                return reject("more than one memory operation");
            ti.a = refOf(r.rb, static_cast<int>(i), &err);
            ti.b = refOf(r.ra, static_cast<int>(i), &err);
            break;
          case InsnClass::CondBranch:
            if (!terminal)
                return reject("branch must be terminal");
            ti.a = refOf(r.ra, static_cast<int>(i), &err);
            ti.b = {OpndKind::Imm, -1};
            break;
          default:
            return reject(strfmt("opcode %s is not collapsible",
                                 opName(r.op)));
        }
        if (!err.empty())
            return reject(err);

        // Destination tracking.
        if (cls == InsnClass::IntAlu || cls == InsnClass::Load) {
            const ParamReg &dst =
                (cls == InsnClass::Load) ? r.ra : r.rc;
            if (dst.kind == ParamKind::Dise) {
                defs.def[static_cast<size_t>(dst.idx)] =
                    static_cast<int>(i);
            } else if (dst.kind == ParamKind::RD) {
                rdWriter = static_cast<int>(i);
            } else if (dst.kind == ParamKind::Lit &&
                       dst.lit != regNone && !isZeroReg(dst.lit)) {
                return reject("replacement writes a literal register");
            } else if (dst.kind == ParamKind::RS1 ||
                       dst.kind == ParamKind::RS2) {
                return reject("replacement writes an input parameter");
            }
        }
        t.insns.push_back(ti);
    }

    if (sawRs2 && !sawRs1)
        return reject("T.RS2 used without T.RS1");
    t.outIdx = rdWriter;
    res.approved = true;
    res.tmpl = std::move(t);
    return res;
}

int
mgppProcess(const DiseEngine &engine, const MgtMachine &machine,
            MgTable &table, Mgtt &mgtt)
{
    int approved = 0;
    for (const Production &p : engine.productions()) {
        if (!p.pattern.aware)
            continue;
        MgppResult r = mgppCompile(p);
        MgttEntry e;
        e.preProcessed = true;
        if (r.approved) {
            r.tmpl.finalize(machine);
            e.mgid = table.add(std::move(r.tmpl));
            e.approved = true;
            ++approved;
        }
        mgtt.install(p.pattern.codewordId, e);
    }
    return approved;
}

} // namespace mg
