/**
 * @file
 * The mini-graph pre-processor (MGPP, paper Section 5): a small unit
 * between DISE and the MGT that scans replacement sequences and
 * compiles them into internal MGT format. A sequence is "approved"
 * when it meets mini-graph criteria (at most two interface inputs via
 * T.RS1/T.RS2, one output via T.RD, one memory operation, a terminal
 * branch only, and collapsible opcodes); approved sequences keep
 * their handles un-expanded, others fall back to in-line expansion.
 */

#ifndef MG_DISE_MGPP_HH
#define MG_DISE_MGPP_HH

#include <optional>
#include <string>

#include "dise/engine.hh"
#include "mg/mgt.hh"
#include "mg/minigraph.hh"

namespace mg {

/** Outcome of compiling one production. */
struct MgppResult
{
    bool approved = false;
    std::string reason;         ///< rejection reason when not approved
    MgTemplate tmpl;            ///< valid when approved (not finalized)
};

/** Compile @p prod's replacement sequence to a mini-graph template. */
MgppResult mgppCompile(const Production &prod);

/**
 * Process every aware production of @p engine: compile, finalize for
 * @p machine, install approved templates into @p table and tag them in
 * @p mgtt (pre-processed; approved only when compilation succeeded).
 *
 * @return number of approved productions
 */
int mgppProcess(const DiseEngine &engine, const MgtMachine &machine,
                MgTable &table, Mgtt &mgtt);

} // namespace mg

#endif // MG_DISE_MGPP_HH
