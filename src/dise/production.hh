/**
 * @file
 * DISE productions (paper Section 5; Corliss et al., ISCA-30).
 *
 * A production is a <pattern : replacement-sequence> pair. Patterns
 * match either a reserved-opcode codeword by its immediate (aware
 * utilities — the mini-graph use case) or any instruction by opcode
 * (transparent utilities such as memory bounds checking). Replacement
 * sequences are parameterised: register and immediate fields may be
 * holes filled from the matching instruction (T.RS1, T.RS2, T.RD,
 * T.IMM), literal values, or DISE's dedicated registers ($d0..$d3)
 * which express mini-graph interior dataflow without touching the
 * architectural register space.
 */

#ifndef MG_DISE_PRODUCTION_HH
#define MG_DISE_PRODUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace mg {

/** Number of dedicated DISE registers. */
constexpr int numDiseRegs = 4;

/** DISE register ids live just past the architectural space. */
constexpr RegId diseRegBase = numArchRegs;

/** @return the RegId of $d<i>. */
inline RegId
diseReg(int i)
{
    return static_cast<RegId>(diseRegBase + i);
}

/** Where a replacement register field comes from. */
enum class ParamKind : std::uint8_t
{
    Lit,    ///< literal register named in the production
    RS1,    ///< matching instruction's first source (handle ra)
    RS2,    ///< matching instruction's second source (handle rb)
    RD,     ///< matching instruction's destination (handle rc)
    Dise,   ///< dedicated register $d<idx>
    None,
};

/** One parameterised register field. */
struct ParamReg
{
    ParamKind kind = ParamKind::None;
    RegId lit = regNone;    ///< for Lit
    int idx = 0;            ///< for Dise

    static ParamReg rs1() { return {ParamKind::RS1, regNone, 0}; }
    static ParamReg rs2() { return {ParamKind::RS2, regNone, 0}; }
    static ParamReg rd() { return {ParamKind::RD, regNone, 0}; }
    static ParamReg d(int i) { return {ParamKind::Dise, regNone, i}; }
    static ParamReg reg(RegId r) { return {ParamKind::Lit, r, 0}; }
    static ParamReg none() { return {ParamKind::None, regNone, 0}; }
};

/** One instruction of a replacement sequence. */
struct ReplInsn
{
    Op op = Op::NOP;
    ParamReg ra;            ///< Alpha-style field (see Instruction)
    ParamReg rb;
    ParamReg rc;
    std::int64_t imm = 0;
    bool useImm = false;
    bool immFromCodeword = false;   ///< T.IMM substitution
};

/** Pattern half of a production. */
struct Pattern
{
    bool aware = true;      ///< match codewords (Op::MG) by immediate
    std::int64_t codewordId = 0;    ///< aware: required MGID
    Op op = Op::NOP;        ///< transparent: opcode to match

    bool matches(const Instruction &in) const;
};

/** A complete production. */
struct Production
{
    Pattern pattern;
    std::vector<ReplInsn> replacement;
    /** Transparent productions may splice the original instruction
     *  first (the T.INSN idiom). */
    bool keepOriginalFirst = false;
    std::string name;       ///< diagnostic label
};

/**
 * Instantiate @p r against matching instruction @p in: fill every
 * hole, producing an executable instruction over the architectural
 * plus DISE register space.
 */
Instruction instantiate(const ReplInsn &r, const Instruction &in);

} // namespace mg

#endif // MG_DISE_PRODUCTION_HH
