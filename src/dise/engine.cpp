#include "dise/engine.hh"

#include "common/logging.hh"

namespace mg {

const MgttEntry *
Mgtt::find(std::int64_t codewordId) const
{
    auto it = tags.find(codewordId);
    return it == tags.end() ? nullptr : &it->second;
}

bool
Mgtt::install(std::int64_t codewordId, const MgttEntry &e)
{
    if (static_cast<int>(tags.size()) >= cap && !tags.count(codewordId))
        return false;
    tags[codewordId] = e;
    return true;
}

void
DiseEngine::addProduction(Production p)
{
    prods.push_back(std::move(p));
}

const Production *
DiseEngine::match(const Instruction &in) const
{
    for (const Production &p : prods) {
        if (p.pattern.matches(in))
            return &p;
    }
    return nullptr;
}

std::vector<Instruction>
DiseEngine::expand(const Instruction &in) const
{
    const Production *p = match(in);
    if (!p)
        return {in};
    std::vector<Instruction> out;
    if (p->keepOriginalFirst)
        out.push_back(in);
    for (const ReplInsn &r : p->replacement)
        out.push_back(instantiate(r, in));
    return out;
}

Program
DiseEngine::expandProgram(const Program &prog) const
{
    // First pass: per-slot expansion sizes for re-linking.
    std::vector<std::vector<Instruction>> expanded;
    expanded.reserve(prog.text.size());
    std::vector<InsnIdx> newIdx(prog.text.size());
    InsnIdx next = 0;
    for (const Instruction &in : prog.text) {
        expanded.push_back(expand(in));
        newIdx[expanded.size() - 1] = next;
        next += static_cast<InsnIdx>(expanded.back().size());
    }
    auto relink = [&](Addr a) -> Addr {
        if (a < textBase ||
            (a - textBase) / insnBytes >= prog.text.size())
            return a;
        auto idx = static_cast<InsnIdx>((a - textBase) / insnBytes);
        return Program::pcOf(newIdx[idx]);
    };

    Program out;
    out.data = prog.data;
    for (size_t i = 0; i < expanded.size(); ++i) {
        const Instruction &orig = prog.text[i];
        bool codeword = orig.op == Op::MG && expanded[i].size() > 1;
        for (size_t j = 0; j < expanded[i].size(); ++j) {
            Instruction in = expanded[i][j];
            if (in.cls() == InsnClass::CondBranch ||
                in.cls() == InsnClass::UncondBranch) {
                if (codeword) {
                    // Replacement branch displacements are relative to
                    // the codeword slot (like MGT templates): compute
                    // the original-program target, then re-link it.
                    Addr orig_target =
                        Program::pcOf(static_cast<InsnIdx>(i)) +
                        static_cast<Addr>(in.imm);
                    in.imm = static_cast<std::int64_t>(
                        relink(orig_target));
                } else {
                    in.imm = static_cast<std::int64_t>(
                        relink(static_cast<Addr>(in.imm)));
                }
            }
            if (in.op == Op::LDA && in.useImm && !codeword)
                in.imm = static_cast<std::int64_t>(
                    relink(static_cast<Addr>(in.imm)));
            out.text.push_back(in);
        }
    }
    // Result is order-independent: no output or serialization here.
    // mglint:allow(unordered-iter): map-to-map relink, order-free
    for (const auto &[name, a] : prog.symbols)
        out.symbols[name] = relink(a);
    out.entry = relink(prog.entry);
    return out;
}

} // namespace mg
