/**
 * @file
 * Set-associative cache tag array with true-LRU replacement. Timing is
 * computed by the hierarchy; this class only tracks hits, misses, and
 * evictions (writeback state is tracked so dirty evictions can be
 * charged for bus occupancy).
 */

#ifndef MG_MEMSYS_CACHE_HH
#define MG_MEMSYS_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "common/types.hh"

namespace mg {

/** Static cache geometry. */
struct CacheGeometry
{
    std::uint32_t sizeBytes;
    std::uint32_t assoc;
    std::uint32_t lineBytes;

    std::uint32_t numSets() const { return sizeBytes / (assoc * lineBytes); }
};

/** Result of a cache probe-and-fill. */
struct CacheResult
{
    bool hit = false;
    bool writebackDirty = false;  ///< a dirty victim was evicted
};

/**
 * Complete replaceable state of one cache (tag array + LRU clock +
 * stats), the unit the warm-checkpoint store serializes. Line order
 * matches the internal set-major array; geometry travels with the
 * state so adoption into a differently-shaped cache is refused.
 */
struct CacheState
{
    std::uint32_t sets = 0;
    std::uint32_t assoc = 0;
    std::vector<std::uint8_t> flags;     ///< bit0 valid, bit1 dirty
    std::vector<Addr> tags;
    std::vector<std::uint64_t> lastUse;
    std::uint64_t useClock = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    void serialize(SerialWriter &w) const;
    /** @return false (leaving *this unspecified) on malformed input. */
    bool deserialize(SerialReader &r);
};

/** Tag-array model of one cache level. */
class Cache
{
  public:
    /**
     * @param geom cache geometry; size must be divisible by assoc*line
     * @param name used in stats and diagnostics
     */
    Cache(const CacheGeometry &geom, std::string name);

    /**
     * Probe for @p addr; on miss, fill the line (evicting LRU).
     *
     * @param addr   byte address
     * @param write  true for stores (marks line dirty)
     * @return hit/miss and whether a dirty victim was evicted
     */
    CacheResult access(Addr addr, bool write);

    /** Probe without side effects. */
    bool probe(Addr addr) const;

    /** Invalidate everything (keeps stats). */
    void flush();

    const CacheGeometry &geometry() const { return geom; }
    const std::string &name() const { return name_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Snapshot the full replacement state (checkpoint store). */
    CacheState exportState() const;

    /** @return true when @p s was produced by a cache of this
     *  geometry and is internally consistent (adoptState precondition). */
    bool stateCompatible(const CacheState &s) const;

    /** Replace tags/LRU/stats with @p s (requires stateCompatible). */
    void adoptState(const CacheState &s);

    double
    missRate() const
    {
        std::uint64_t t = hits_ + misses_;
        return t ? static_cast<double>(misses_) / static_cast<double>(t)
                 : 0.0;
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;  ///< LRU timestamp
    };

    CacheGeometry geom;
    std::string name_;
    std::vector<Line> lines;      ///< numSets * assoc, set-major
    std::uint64_t useClock = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    // Shift/mask fast path for power-of-two geometries (every access
    // indexes the array; runtime divisions dominate the probe cost
    // otherwise). Non-power-of-two configs fall back to div/mod with
    // identical results.
    bool pow2 = false;
    int lineShift = 0;
    int setShift = 0;
    Addr setMask = 0;

    Addr
    lineAddr(Addr addr) const
    {
        return pow2 ? addr >> lineShift : addr / geom.lineBytes;
    }
    std::uint32_t
    setOf(Addr addr) const
    {
        return pow2 ? static_cast<std::uint32_t>(lineAddr(addr) & setMask)
                    : static_cast<std::uint32_t>(lineAddr(addr) %
                                                 geom.numSets());
    }
    Addr
    tagOf(Addr addr) const
    {
        return pow2 ? lineAddr(addr) >> setShift
                    : lineAddr(addr) / geom.numSets();
    }
};

} // namespace mg

#endif // MG_MEMSYS_CACHE_HH
