/**
 * @file
 * Two-level cache hierarchy with a DRAM behind a quarter-core-frequency
 * 16-byte bus, matching the paper's machine model: 32KB/2-way/32B
 * 1-cycle I$, 32KB/2-way/32B 2-cycle D$, 2MB/4-way/128B 10-cycle L2,
 * 100-cycle main memory.
 *
 * The hierarchy computes a completion time for each access. Misses to
 * DRAM serialize on the bus: a 128B L2 line at 16B per beat and one
 * beat per 4 core cycles occupies the bus for 32 cycles.
 */

#ifndef MG_MEMSYS_HIERARCHY_HH
#define MG_MEMSYS_HIERARCHY_HH

#include <cstdint>
#include <string>
#include <unordered_set>

#include "common/types.hh"
#include "memsys/cache.hh"

namespace mg {

/** Configuration for the full hierarchy. */
struct HierarchyConfig
{
    CacheGeometry l1i{32 * 1024, 2, 32};
    CacheGeometry l1d{32 * 1024, 2, 32};
    CacheGeometry l2{2 * 1024 * 1024, 4, 128};
    Cycle l1iLat = 1;
    Cycle l1dLat = 2;
    Cycle l2Lat = 10;
    Cycle memLat = 100;
    std::uint32_t busBytes = 16;
    std::uint32_t busCycleRatio = 4;  ///< core cycles per bus cycle
};

/** Outcome of a timed access. */
struct MemAccess
{
    Cycle readyAt = 0;   ///< cycle the data is available
    bool l1Hit = false;
    bool l2Hit = false;
};

/**
 * Complete warm state of the hierarchy: all three tag arrays plus the
 * bus backlog and DRAM counter. The footprint tracker is *not* part
 * of it — footprint tracking is a jump-mode diagnostic and the
 * checkpoint store only operates in warm-through mode.
 */
struct HierarchyState
{
    CacheState l1i;
    CacheState l1d;
    CacheState l2;
    Cycle busFreeAt = 0;
    std::uint64_t dramCount = 0;

    void serialize(SerialWriter &w) const;
    bool deserialize(SerialReader &r);
};

/** Timed two-level hierarchy. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &cfg);

    /**
     * Timed data access.
     *
     * @param addr  byte address
     * @param write true for stores
     * @param now   issue cycle
     * @return completion time and hit levels
     */
    MemAccess dataAccess(Addr addr, bool write, Cycle now);

    /** Timed instruction fetch access. */
    MemAccess instAccess(Addr addr, Cycle now);

    /**
     * Tag-only warming accesses: same fill/LRU/dirty behaviour as the
     * timed paths, but no bus occupancy and no DRAM bookkeeping. Used
     * by clock-frozen fast-forwards (Core::fastForward without an IPC
     * estimate), where going through the timed paths would push
     * busFreeAt far past `now` and poison the next measurement;
     * sampled runs instead advance a virtual clock and use the timed
     * paths so bus queueing keeps evolving.
     */
    void warmData(Addr addr, bool write);
    void warmInst(Addr addr);

    /** Invalidate all caches (used between runs). */
    void flush();

    Cache &l1i() { return l1iCache; }
    Cache &l1d() { return l1dCache; }
    Cache &l2() { return l2Cache; }
    const HierarchyConfig &config() const { return cfg; }

    /** Total DRAM accesses (for stats). */
    std::uint64_t dramAccesses() const { return dramCount; }

    /** Snapshot the full warm state (checkpoint store). */
    HierarchyState exportState() const;

    /** @return true when every cache of @p s matches this geometry. */
    bool stateCompatible(const HierarchyState &s) const;

    /** Replace the warm state with @p s (requires stateCompatible). */
    void adoptState(const HierarchyState &s);

    /**
     * Data-footprint tracking (off by default; zero cost when off).
     * While enabled, every data access — timed or warming — records
     * its line (sampleFootLineBytes, the shared machine-independent
     * granularity of SampleSummary::footLines) and first touches
     * count as "surprises". A checkpoint-jump sampled run compares the
     * surprises inside a measurement interval against the functional
     * pre-pass's expected new lines for that chunk: any excess is
     * working-set state the jumps skipped and warming failed to
     * restore (the footprint-blindness diagnostic).
     */
    void trackFootprint(bool on) { footTrack = on; }
    std::uint64_t footSurprises() const { return footSurprises_; }

  private:
    HierarchyConfig cfg;
    Cache l1iCache;
    Cache l1dCache;
    Cache l2Cache;
    Cycle busFreeAt = 0;
    std::uint64_t dramCount = 0;
    bool footTrack = false;
    std::unordered_set<Addr> footSeen;
    std::uint64_t footSurprises_ = 0;

    void
    noteFootprint(Addr addr)
    {
        if (footTrack &&
            footSeen.insert(addr / static_cast<Addr>(sampleFootLineBytes))
                .second)
            ++footSurprises_;
    }

    /** Charge a DRAM access beginning no earlier than @p start. */
    Cycle dramAccess(Cycle start);
};

} // namespace mg

#endif // MG_MEMSYS_HIERARCHY_HH
