#include "memsys/cache.hh"

#include "common/logging.hh"

namespace mg {

Cache::Cache(const CacheGeometry &g, std::string name)
    : geom(g), name_(std::move(name))
{
    if (geom.lineBytes == 0 || geom.assoc == 0 ||
        geom.sizeBytes % (geom.assoc * geom.lineBytes) != 0)
        fatal("cache %s: size %u not divisible by assoc %u * line %u",
              name_.c_str(), geom.sizeBytes, geom.assoc, geom.lineBytes);
    if (geom.numSets() == 0)
        fatal("cache %s has zero sets", name_.c_str());
    lines.resize(static_cast<size_t>(geom.numSets()) * geom.assoc);

    std::uint32_t sets = geom.numSets();
    if ((geom.lineBytes & (geom.lineBytes - 1)) == 0 &&
        (sets & (sets - 1)) == 0) {
        pow2 = true;
        while ((1u << lineShift) < geom.lineBytes)
            ++lineShift;
        while ((1u << setShift) < sets)
            ++setShift;
        setMask = sets - 1;
    }
}

CacheResult
Cache::access(Addr addr, bool write)
{
    ++useClock;
    std::uint32_t set = setOf(addr);
    Addr tag = tagOf(addr);
    Line *base = &lines[static_cast<size_t>(set) * geom.assoc];

    for (std::uint32_t w = 0; w < geom.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = useClock;
            if (write)
                l.dirty = true;
            ++hits_;
            return {true, false};
        }
    }

    // Miss: pick invalid way or LRU victim.
    Line *victim = base;
    for (std::uint32_t w = 0; w < geom.assoc; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lastUse < victim->lastUse)
            victim = &l;
    }

    bool wbDirty = victim->valid && victim->dirty;
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lastUse = useClock;
    ++misses_;
    return {false, wbDirty};
}

bool
Cache::probe(Addr addr) const
{
    std::uint32_t set = setOf(addr);
    Addr tag = tagOf(addr);
    const Line *base = &lines[static_cast<size_t>(set) * geom.assoc];
    for (std::uint32_t w = 0; w < geom.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Line &l : lines)
        l = Line();
}

} // namespace mg
