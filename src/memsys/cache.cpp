#include "memsys/cache.hh"

#include "common/logging.hh"

namespace mg {

Cache::Cache(const CacheGeometry &g, std::string name)
    : geom(g), name_(std::move(name))
{
    if (geom.lineBytes == 0 || geom.assoc == 0 ||
        geom.sizeBytes % (geom.assoc * geom.lineBytes) != 0)
        fatal("cache %s: size %u not divisible by assoc %u * line %u",
              name_.c_str(), geom.sizeBytes, geom.assoc, geom.lineBytes);
    if (geom.numSets() == 0)
        fatal("cache %s has zero sets", name_.c_str());
    lines.resize(static_cast<size_t>(geom.numSets()) * geom.assoc);

    std::uint32_t sets = geom.numSets();
    if ((geom.lineBytes & (geom.lineBytes - 1)) == 0 &&
        (sets & (sets - 1)) == 0) {
        pow2 = true;
        while ((1u << lineShift) < geom.lineBytes)
            ++lineShift;
        while ((1u << setShift) < sets)
            ++setShift;
        setMask = sets - 1;
    }
}

CacheResult
Cache::access(Addr addr, bool write)
{
    ++useClock;
    std::uint32_t set = setOf(addr);
    Addr tag = tagOf(addr);
    Line *base = &lines[static_cast<size_t>(set) * geom.assoc];

    for (std::uint32_t w = 0; w < geom.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = useClock;
            if (write)
                l.dirty = true;
            ++hits_;
            return {true, false};
        }
    }

    // Miss: pick invalid way or LRU victim.
    Line *victim = base;
    for (std::uint32_t w = 0; w < geom.assoc; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lastUse < victim->lastUse)
            victim = &l;
    }

    bool wbDirty = victim->valid && victim->dirty;
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lastUse = useClock;
    ++misses_;
    return {false, wbDirty};
}

bool
Cache::probe(Addr addr) const
{
    std::uint32_t set = setOf(addr);
    Addr tag = tagOf(addr);
    const Line *base = &lines[static_cast<size_t>(set) * geom.assoc];
    for (std::uint32_t w = 0; w < geom.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Line &l : lines)
        l = Line();
}

void
CacheState::serialize(SerialWriter &w) const
{
    w.u32(sets);
    w.u32(assoc);
    w.u64(useClock);
    w.u64(hits);
    w.u64(misses);
    w.u64(flags.size());
    w.bytes(flags.data(), flags.size());
    w.vec(tags);
    w.vec(lastUse);
}

bool
CacheState::deserialize(SerialReader &r)
{
    sets = r.u32();
    assoc = r.u32();
    useClock = r.u64();
    hits = r.u64();
    misses = r.u64();
    std::uint64_t n = r.u64();
    if (n > r.remaining()) {
        r.fail();
        return false;
    }
    flags.resize(static_cast<std::size_t>(n));
    if (!r.bytes(flags.data(), flags.size()))
        return false;
    tags = r.vec<Addr>();
    lastUse = r.vec<std::uint64_t>();
    return r.ok();
}

CacheState
Cache::exportState() const
{
    CacheState s;
    s.sets = geom.numSets();
    s.assoc = geom.assoc;
    s.useClock = useClock;
    s.hits = hits_;
    s.misses = misses_;
    s.flags.reserve(lines.size());
    s.tags.reserve(lines.size());
    s.lastUse.reserve(lines.size());
    for (const Line &l : lines) {
        s.flags.push_back(static_cast<std::uint8_t>(
            (l.valid ? 1 : 0) | (l.dirty ? 2 : 0)));
        s.tags.push_back(l.tag);
        s.lastUse.push_back(l.lastUse);
    }
    return s;
}

bool
Cache::stateCompatible(const CacheState &s) const
{
    return s.sets == geom.numSets() && s.assoc == geom.assoc &&
        s.flags.size() == lines.size() && s.tags.size() == lines.size() &&
        s.lastUse.size() == lines.size();
}

void
Cache::adoptState(const CacheState &s)
{
    if (!stateCompatible(s))
        panic("cache %s: adoptState of incompatible state",
              name_.c_str());
    useClock = s.useClock;
    hits_ = s.hits;
    misses_ = s.misses;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        lines[i].valid = (s.flags[i] & 1) != 0;
        lines[i].dirty = (s.flags[i] & 2) != 0;
        lines[i].tag = s.tags[i];
        lines[i].lastUse = s.lastUse[i];
    }
}

} // namespace mg
