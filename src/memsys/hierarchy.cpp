#include "memsys/hierarchy.hh"

#include <algorithm>

namespace mg {

Hierarchy::Hierarchy(const HierarchyConfig &cfg)
    : cfg(cfg),
      l1iCache(cfg.l1i, "l1i"),
      l1dCache(cfg.l1d, "l1d"),
      l2Cache(cfg.l2, "l2")
{}

Cycle
Hierarchy::dramAccess(Cycle start)
{
    ++dramCount;
    // The request occupies the bus for the line transfer after the DRAM
    // access latency. Transfers serialize on the shared bus.
    Cycle beats = (cfg.l2.lineBytes + cfg.busBytes - 1) / cfg.busBytes;
    Cycle busTime = beats * cfg.busCycleRatio;
    Cycle busStart = std::max(start + cfg.memLat, busFreeAt);
    busFreeAt = busStart + busTime;
    return busFreeAt;
}

MemAccess
Hierarchy::dataAccess(Addr addr, bool write, Cycle now)
{
    noteFootprint(addr);
    MemAccess out;
    CacheResult r1 = l1dCache.access(addr, write);
    out.l1Hit = r1.hit;
    if (r1.hit) {
        out.readyAt = now + cfg.l1dLat;
        return out;
    }
    CacheResult r2 = l2Cache.access(addr, false);
    out.l2Hit = r2.hit;
    if (r2.hit) {
        out.readyAt = now + cfg.l1dLat + cfg.l2Lat;
        return out;
    }
    Cycle done = dramAccess(now + cfg.l1dLat + cfg.l2Lat);
    if (r2.writebackDirty)
        dramAccess(done);  // victim writeback occupies the bus afterwards
    out.readyAt = done;
    return out;
}

MemAccess
Hierarchy::instAccess(Addr addr, Cycle now)
{
    MemAccess out;
    CacheResult r1 = l1iCache.access(addr, false);
    out.l1Hit = r1.hit;
    if (r1.hit) {
        out.readyAt = now + cfg.l1iLat;
        return out;
    }
    CacheResult r2 = l2Cache.access(addr, false);
    out.l2Hit = r2.hit;
    if (r2.hit) {
        out.readyAt = now + cfg.l1iLat + cfg.l2Lat;
        return out;
    }
    Cycle done = dramAccess(now + cfg.l1iLat + cfg.l2Lat);
    if (r2.writebackDirty)
        dramAccess(done);
    out.readyAt = done;
    return out;
}

void
Hierarchy::warmData(Addr addr, bool write)
{
    noteFootprint(addr);
    if (!l1dCache.access(addr, write).hit)
        l2Cache.access(addr, false);
}

void
Hierarchy::warmInst(Addr addr)
{
    if (!l1iCache.access(addr, false).hit)
        l2Cache.access(addr, false);
}

void
Hierarchy::flush()
{
    l1iCache.flush();
    l1dCache.flush();
    l2Cache.flush();
    busFreeAt = 0;
}

} // namespace mg
