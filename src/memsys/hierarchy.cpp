#include "memsys/hierarchy.hh"

#include <algorithm>

namespace mg {

Hierarchy::Hierarchy(const HierarchyConfig &cfg)
    : cfg(cfg),
      l1iCache(cfg.l1i, "l1i"),
      l1dCache(cfg.l1d, "l1d"),
      l2Cache(cfg.l2, "l2")
{}

Cycle
Hierarchy::dramAccess(Cycle start)
{
    ++dramCount;
    // The request occupies the bus for the line transfer after the DRAM
    // access latency. Transfers serialize on the shared bus.
    Cycle beats = (cfg.l2.lineBytes + cfg.busBytes - 1) / cfg.busBytes;
    Cycle busTime = beats * cfg.busCycleRatio;
    Cycle busStart = std::max(start + cfg.memLat, busFreeAt);
    busFreeAt = busStart + busTime;
    return busFreeAt;
}

MemAccess
Hierarchy::dataAccess(Addr addr, bool write, Cycle now)
{
    noteFootprint(addr);
    MemAccess out;
    CacheResult r1 = l1dCache.access(addr, write);
    out.l1Hit = r1.hit;
    if (r1.hit) {
        out.readyAt = now + cfg.l1dLat;
        return out;
    }
    CacheResult r2 = l2Cache.access(addr, false);
    out.l2Hit = r2.hit;
    if (r2.hit) {
        out.readyAt = now + cfg.l1dLat + cfg.l2Lat;
        return out;
    }
    Cycle done = dramAccess(now + cfg.l1dLat + cfg.l2Lat);
    if (r2.writebackDirty)
        dramAccess(done);  // victim writeback occupies the bus afterwards
    out.readyAt = done;
    return out;
}

MemAccess
Hierarchy::instAccess(Addr addr, Cycle now)
{
    MemAccess out;
    CacheResult r1 = l1iCache.access(addr, false);
    out.l1Hit = r1.hit;
    if (r1.hit) {
        out.readyAt = now + cfg.l1iLat;
        return out;
    }
    CacheResult r2 = l2Cache.access(addr, false);
    out.l2Hit = r2.hit;
    if (r2.hit) {
        out.readyAt = now + cfg.l1iLat + cfg.l2Lat;
        return out;
    }
    Cycle done = dramAccess(now + cfg.l1iLat + cfg.l2Lat);
    if (r2.writebackDirty)
        dramAccess(done);
    out.readyAt = done;
    return out;
}

void
Hierarchy::warmData(Addr addr, bool write)
{
    noteFootprint(addr);
    if (!l1dCache.access(addr, write).hit)
        l2Cache.access(addr, false);
}

void
Hierarchy::warmInst(Addr addr)
{
    if (!l1iCache.access(addr, false).hit)
        l2Cache.access(addr, false);
}

void
Hierarchy::flush()
{
    l1iCache.flush();
    l1dCache.flush();
    l2Cache.flush();
    busFreeAt = 0;
}

void
HierarchyState::serialize(SerialWriter &w) const
{
    l1i.serialize(w);
    l1d.serialize(w);
    l2.serialize(w);
    w.u64(busFreeAt);
    w.u64(dramCount);
}

bool
HierarchyState::deserialize(SerialReader &r)
{
    if (!l1i.deserialize(r) || !l1d.deserialize(r) ||
        !l2.deserialize(r))
        return false;
    busFreeAt = r.u64();
    dramCount = r.u64();
    return r.ok();
}

HierarchyState
Hierarchy::exportState() const
{
    HierarchyState s;
    s.l1i = l1iCache.exportState();
    s.l1d = l1dCache.exportState();
    s.l2 = l2Cache.exportState();
    s.busFreeAt = busFreeAt;
    s.dramCount = dramCount;
    return s;
}

bool
Hierarchy::stateCompatible(const HierarchyState &s) const
{
    return l1iCache.stateCompatible(s.l1i) &&
        l1dCache.stateCompatible(s.l1d) && l2Cache.stateCompatible(s.l2);
}

void
Hierarchy::adoptState(const HierarchyState &s)
{
    l1iCache.adoptState(s.l1i);
    l1dCache.adoptState(s.l1d);
    l2Cache.adoptState(s.l2);
    busFreeAt = s.busFreeAt;
    dramCount = s.dramCount;
}

} // namespace mg
