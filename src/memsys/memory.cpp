#include "memsys/memory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mg {

void
Memory::copyPages(const Memory &other)
{
    pages.reserve(other.pages.size());
    // mglint:allow(unordered-iter): deep copy map-to-map, order-free
    for (const auto &[idx, page] : other.pages)
        pages.emplace(idx, std::make_unique<Page>(*page));
}

const Memory::Page *
Memory::findPageSlow(Addr addr) const
{
    Addr idx = addr / pageBytes;
    auto it = pages.find(idx);
    if (it == pages.end())
        return nullptr;
    cachedIdx = idx;
    cachedPage = it->second.get();
    return cachedPage;
}

Memory::Page &
Memory::getPageSlow(Addr addr)
{
    Addr idx = addr / pageBytes;
    auto &slot = pages[idx];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    cachedIdx = idx;
    cachedPage = slot.get();
    return *slot;
}

std::uint64_t
Memory::readSlow(Addr addr, int bytes) const
{
    // Page-straddling access: assemble byte-wise across the boundary.
    if (bytes != 1 && bytes != 2 && bytes != 4 && bytes != 8)
        panic("bad access size %d", bytes);
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
    return v;
}

void
Memory::writeSlow(Addr addr, std::uint64_t value, int bytes)
{
    if (bytes != 1 && bytes != 2 && bytes != 4 && bytes != 8)
        panic("bad access size %d", bytes);
    for (int i = 0; i < bytes; ++i)
        writeByte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

void
Memory::writeBlock(Addr addr, const std::uint8_t *data, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        writeByte(addr + i, data[i]);
}

std::vector<std::uint8_t>
Memory::readBlock(Addr addr, std::size_t len) const
{
    std::vector<std::uint8_t> out(len);
    for (std::size_t i = 0; i < len; ++i)
        out[i] = readByte(addr + i);
    return out;
}

void
Memory::serialize(SerialWriter &w) const
{
    // Sorted page order: the byte stream (and any checksum over it)
    // is a canonical function of the image, not of hash-map layout.
    std::vector<Addr> idxs;
    idxs.reserve(pages.size());
    // mglint:allow(unordered-iter): keys copied then sorted below
    for (const auto &[idx, page] : pages)
        idxs.push_back(idx);
    std::sort(idxs.begin(), idxs.end());
    w.u64(idxs.size());
    for (Addr idx : idxs) {
        w.u64(idx);
        w.bytes(pages.at(idx)->data(), pageBytes);
    }
}

bool
Memory::deserialize(SerialReader &r)
{
    clear();
    std::uint64_t n = r.u64();
    if (n > r.remaining() / pageBytes + 1) {
        r.fail();
        return false;
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr idx = r.u64();
        auto page = std::make_unique<Page>();
        if (!r.bytes(page->data(), pageBytes)) {
            clear();
            return false;
        }
        pages[idx] = std::move(page);
    }
    if (!r.ok()) {
        clear();
        return false;
    }
    return true;
}

} // namespace mg
