/**
 * @file
 * Sparse byte-addressable simulated memory backed by 4KB pages.
 * Unwritten bytes read as zero. Loads and stores of 1/2/4/8 bytes are
 * little-endian and need not be aligned (the emulator enforces natural
 * alignment separately so the policy is testable).
 */

#ifndef MG_MEMSYS_MEMORY_HH
#define MG_MEMSYS_MEMORY_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/serial.hh"
#include "common/types.hh"

namespace mg {

/** Sparse simulated physical memory. */
class Memory
{
  public:
    static constexpr Addr pageBytes = 4096;

    Memory() = default;
    Memory(Memory &&other) noexcept
        : pages(std::move(other.pages)), cachedIdx(other.cachedIdx),
          cachedPage(other.cachedPage)
    {
        other.invalidateCache();
    }
    Memory &
    operator=(Memory &&other) noexcept
    {
        pages = std::move(other.pages);
        cachedIdx = other.cachedIdx;
        cachedPage = other.cachedPage;
        other.invalidateCache();
        return *this;
    }
    /** Deep copies (checkpoint capture/restore duplicate the image). */
    Memory(const Memory &other) { copyPages(other); }
    Memory &
    operator=(const Memory &other)
    {
        if (this != &other) {
            pages.clear();
            invalidateCache();
            copyPages(other);
        }
        return *this;
    }

    /** Read @p bytes (1,2,4,8) little-endian at @p addr.
     *  (Inline: one call per emulated load; the in-page path is a
     *  single memcpy on little-endian hosts.) */
    std::uint64_t
    read(Addr addr, int bytes) const
    {
        Addr off = addr % pageBytes;
        if (validSize(bytes) &&
            off + static_cast<Addr>(bytes) <= pageBytes) {
            const Page *p = findPage(addr);
            if (!p)
                return 0;
            if constexpr (std::endian::native == std::endian::little) {
                std::uint64_t v = 0;
                std::memcpy(&v, p->data() + off,
                            static_cast<std::size_t>(bytes));
                return v;
            }
            std::uint64_t v = 0;
            for (int i = 0; i < bytes; ++i)
                v |= static_cast<std::uint64_t>(
                        (*p)[off + static_cast<Addr>(i)]) << (8 * i);
            return v;
        }
        return readSlow(addr, bytes);
    }

    /** Write the low @p bytes of @p value at @p addr. */
    void
    write(Addr addr, std::uint64_t value, int bytes)
    {
        Addr off = addr % pageBytes;
        if (validSize(bytes) &&
            off + static_cast<Addr>(bytes) <= pageBytes) {
            Page &p = getPage(addr);
            if constexpr (std::endian::native == std::endian::little) {
                std::memcpy(p.data() + off, &value,
                            static_cast<std::size_t>(bytes));
                return;
            }
            for (int i = 0; i < bytes; ++i)
                p[off + static_cast<Addr>(i)] =
                    static_cast<std::uint8_t>(value >> (8 * i));
            return;
        }
        writeSlow(addr, value, bytes);
    }

    std::uint8_t
    readByte(Addr addr) const
    {
        const Page *p = findPage(addr);
        return p ? (*p)[addr % pageBytes] : 0;
    }

    void
    writeByte(Addr addr, std::uint8_t value)
    {
        getPage(addr)[addr % pageBytes] = value;
    }

    /** Bulk-copy @p data into memory starting at @p addr. */
    void writeBlock(Addr addr, const std::uint8_t *data, std::size_t len);

    /** Bulk-read @p len bytes starting at @p addr. */
    std::vector<std::uint8_t> readBlock(Addr addr, std::size_t len) const;

    /** Number of resident pages (for tests). */
    std::size_t residentPages() const { return pages.size(); }

    /** Drop all contents. */
    void
    clear()
    {
        pages.clear();
        invalidateCache();
    }

    /** Append the full image to @p w (sorted pages, raw bytes; the
     *  checkpoint store compresses whole records, so pages need no
     *  encoding of their own). */
    void serialize(SerialWriter &w) const;

    /**
     * Replace the image with one written by serialize(). On any
     * malformed input the reader's error latch trips and this memory
     * is left *empty* (never partially populated); callers check
     * @p r `.ok()` before trusting the result.
     * @return r.ok()
     */
    bool deserialize(SerialReader &r);

  private:
    using Page = std::array<std::uint8_t, pageBytes>;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages;

    // One-entry page cache: accesses are heavily page-local, and page
    // storage is stable (unique_ptr payloads survive rehash), so the
    // last-touched page short-circuits the hash lookup. The cached
    // pointer is only reused for reads; writes re-validate through
    // getPage (which may allocate).
    mutable Addr cachedIdx = ~Addr(0);
    mutable Page *cachedPage = nullptr;

    void
    invalidateCache() const
    {
        cachedIdx = ~Addr(0);
        cachedPage = nullptr;
    }

    /** One-test membership check for the legal access sizes 1/2/4/8
     *  (anything else falls to the slow path, which panics). */
    static bool
    validSize(int bytes)
    {
        return static_cast<unsigned>(bytes) <= 8 &&
            ((0x116u >> bytes) & 1u);
    }

    /** Resolve the page containing @p addr, or null when absent.
     *  (Inline: the cache hit is the expected case.) */
    const Page *
    findPage(Addr addr) const
    {
        Addr idx = addr / pageBytes;
        if (idx == cachedIdx)
            return cachedPage;
        return findPageSlow(addr);
    }

    /** Resolve (allocating if needed) the page containing @p addr. */
    Page &
    getPage(Addr addr)
    {
        Addr idx = addr / pageBytes;
        if (idx == cachedIdx)
            return *cachedPage;
        return getPageSlow(addr);
    }

    const Page *findPageSlow(Addr addr) const;
    Page &getPageSlow(Addr addr);
    std::uint64_t readSlow(Addr addr, int bytes) const;
    void writeSlow(Addr addr, std::uint64_t value, int bytes);
    void copyPages(const Memory &other);
};

} // namespace mg

#endif // MG_MEMSYS_MEMORY_HH
