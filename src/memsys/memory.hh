/**
 * @file
 * Sparse byte-addressable simulated memory backed by 4KB pages.
 * Unwritten bytes read as zero. Loads and stores of 1/2/4/8 bytes are
 * little-endian and need not be aligned (the emulator enforces natural
 * alignment separately so the policy is testable).
 */

#ifndef MG_MEMSYS_MEMORY_HH
#define MG_MEMSYS_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace mg {

/** Sparse simulated physical memory. */
class Memory
{
  public:
    static constexpr Addr pageBytes = 4096;

    Memory() = default;
    Memory(Memory &&other) noexcept
        : pages(std::move(other.pages)), cachedIdx(other.cachedIdx),
          cachedPage(other.cachedPage)
    {
        other.invalidateCache();
    }
    Memory &
    operator=(Memory &&other) noexcept
    {
        pages = std::move(other.pages);
        cachedIdx = other.cachedIdx;
        cachedPage = other.cachedPage;
        other.invalidateCache();
        return *this;
    }
    /** Deep copies (checkpoint capture/restore duplicate the image). */
    Memory(const Memory &other) { copyPages(other); }
    Memory &
    operator=(const Memory &other)
    {
        if (this != &other) {
            pages.clear();
            invalidateCache();
            copyPages(other);
        }
        return *this;
    }

    /** Read @p bytes (1,2,4,8) little-endian at @p addr. */
    std::uint64_t read(Addr addr, int bytes) const;

    /** Write the low @p bytes of @p value at @p addr. */
    void write(Addr addr, std::uint64_t value, int bytes);

    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);

    /** Bulk-copy @p data into memory starting at @p addr. */
    void writeBlock(Addr addr, const std::uint8_t *data, std::size_t len);

    /** Bulk-read @p len bytes starting at @p addr. */
    std::vector<std::uint8_t> readBlock(Addr addr, std::size_t len) const;

    /** Number of resident pages (for tests). */
    std::size_t residentPages() const { return pages.size(); }

    /** Drop all contents. */
    void
    clear()
    {
        pages.clear();
        invalidateCache();
    }

  private:
    using Page = std::array<std::uint8_t, pageBytes>;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages;

    // One-entry page cache: accesses are heavily page-local, and page
    // storage is stable (unique_ptr payloads survive rehash), so the
    // last-touched page short-circuits the hash lookup. The cached
    // pointer is only reused for reads; writes re-validate through
    // getPage (which may allocate).
    mutable Addr cachedIdx = ~Addr(0);
    mutable Page *cachedPage = nullptr;

    void
    invalidateCache() const
    {
        cachedIdx = ~Addr(0);
        cachedPage = nullptr;
    }

    const Page *findPage(Addr addr) const;
    Page &getPage(Addr addr);
    void copyPages(const Memory &other);
};

} // namespace mg

#endif // MG_MEMSYS_MEMORY_HH
