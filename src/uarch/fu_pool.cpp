#include "uarch/fu_pool.hh"

#include "common/logging.hh"

namespace mg {

FuPool::FuPool(const FuPoolConfig &c) : cfg(c)
{
    for (int i = 0; i < cfg.aluPipes; ++i)
        pipes_.emplace_back(cfg.aluPipeDepth);
    writeUsed.assign(window, 0);
}

void
FuPool::slideTo(Cycle c)
{
    if (c <= lastSlide)
        return;
    Cycle steps = c - lastSlide;
    if (steps >= window) {
        std::fill(writeUsed.begin(), writeUsed.end(), 0);
    } else {
        for (Cycle s = 0; s < steps; ++s)
            writeUsed[static_cast<size_t>((lastSlide + s) % window)] = 0;
    }
    lastSlide = c;
}

void
FuPool::beginCycle(Cycle c)
{
    now = c;
    slideTo(c);
    for (AluPipeline &p : pipes_)
        p.advanceTo(c);
    totalUsed = intUsed = fpUsed = loadUsed = storeUsed = multUsed = 0;
    readUsed = 0;
}

void
FuPool::preClaim(FuKind fu, int n)
{
    switch (fu) {
      case FuKind::IntAlu:
      case FuKind::IntMult:
      case FuKind::AluPipe:
        intUsed += n;
        break;
      case FuKind::LoadPort:
        loadUsed += n;
        break;
      case FuKind::StorePort:
        storeUsed += n;
        break;
      default:
        break;
    }
}

bool
FuPool::tryIssueSingleton(FuKind fu)
{
    if (!issueSlotFree())
        return false;
    switch (fu) {
      case FuKind::IntAlu:
      case FuKind::IntMult: {
          // The paper's composition limit groups all integer ops.
          int intCap = cfg.intAlus + cfg.aluPipes;
          if (intUsed >= intCap)
              return false;
          if (intUsed < cfg.intAlus) {
              ++intUsed;
              ++totalUsed;
              return true;
          }
          // Spill onto an ALU pipeline stage 0 (no penalty).
          for (AluPipeline &p : pipes_) {
              if (p.tryIssue(now, 1)) {
                  ++intUsed;
                  ++totalUsed;
                  return true;
              }
          }
          return false;
      }
      case FuKind::FpAlu:
        if (fpUsed >= cfg.fpUnits)
            return false;
        ++fpUsed;
        ++totalUsed;
        return true;
      case FuKind::LoadPort:
        if (loadUsed >= cfg.loadPorts)
            return false;
        ++loadUsed;
        ++totalUsed;
        return true;
      case FuKind::StorePort:
        if (storeUsed >= cfg.storePorts)
            return false;
        ++storeUsed;
        ++totalUsed;
        return true;
      default:
        panic("tryIssueSingleton: bad FU kind");
    }
}

bool
FuPool::tryIssueAluPipe(int outLat)
{
    if (!issueSlotFree())
        return false;
    int intCap = cfg.intAlus + cfg.aluPipes;
    if (intUsed >= intCap)
        return false;
    for (AluPipeline &p : pipes_) {
        if (p.tryIssue(now, outLat)) {
            ++intUsed;
            ++totalUsed;
            return true;
        }
    }
    return false;
}

void
FuPool::claimSingleton(FuKind fu)
{
    switch (fu) {
      case FuKind::IntAlu:
      case FuKind::IntMult:
        if (intUsed < cfg.intAlus) {
            ++intUsed;
            ++totalUsed;
            return;
        }
        // Spill onto an ALU pipeline stage 0, as tryIssueSingleton
        // would (the probe guaranteed one is free).
        for (AluPipeline &p : pipes_) {
            if (p.tryIssue(now, 1)) {
                ++intUsed;
                ++totalUsed;
                return;
            }
        }
        panic("claimSingleton without a successful probe");
      case FuKind::FpAlu:
        ++fpUsed;
        ++totalUsed;
        return;
      case FuKind::LoadPort:
        ++loadUsed;
        ++totalUsed;
        return;
      case FuKind::StorePort:
        ++storeUsed;
        ++totalUsed;
        return;
      default:
        panic("claimSingleton: bad FU kind");
    }
}

bool
FuPool::canIssueAluPipe(int outLat) const
{
    if (!issueSlotFree())
        return false;
    if (intUsed >= cfg.intAlus + cfg.aluPipes)
        return false;
    for (const AluPipeline &p : pipes_) {
        if (p.entryFree(now) &&
            p.outputFree(now + static_cast<Cycle>(outLat)))
            return true;
    }
    return false;
}

bool
FuPool::writePortFree(Cycle cycle) const
{
    return writeUsed[static_cast<size_t>(cycle % window)] <
        cfg.regWritePorts;
}

bool
FuPool::claimReadPorts(int n)
{
    if (readUsed + n > cfg.regReadPorts)
        return false;
    readUsed += n;
    return true;
}

} // namespace mg
