#include "uarch/fu_pool.hh"

#include "common/logging.hh"

namespace mg {

FuPool::FuPool(const FuPoolConfig &c) : cfg(c)
{
    for (int i = 0; i < cfg.aluPipes; ++i)
        pipes_.emplace_back(cfg.aluPipeDepth);
}

void
FuPool::preClaim(FuKind fu, int n)
{
    switch (fu) {
      case FuKind::IntAlu:
      case FuKind::IntMult:
      case FuKind::AluPipe:
        intUsed += n;
        break;
      case FuKind::LoadPort:
        loadUsed += n;
        break;
      case FuKind::StorePort:
        storeUsed += n;
        break;
      default:
        break;
    }
}

bool
FuPool::tryIssueSingleton(FuKind fu)
{
    if (!issueSlotFree())
        return false;
    switch (fu) {
      case FuKind::IntAlu:
      case FuKind::IntMult: {
          // The paper's composition limit groups all integer ops.
          int intCap = cfg.intAlus + cfg.aluPipes;
          if (intUsed >= intCap)
              return false;
          if (intUsed < cfg.intAlus) {
              ++intUsed;
              ++totalUsed;
              return true;
          }
          // Spill onto an ALU pipeline stage 0 (no penalty).
          for (AluPipeline &p : pipes_) {
              if (p.tryIssue(now, 1)) {
                  ++intUsed;
                  ++totalUsed;
                  return true;
              }
          }
          return false;
      }
      case FuKind::FpAlu:
        if (fpUsed >= cfg.fpUnits)
            return false;
        ++fpUsed;
        ++totalUsed;
        return true;
      case FuKind::LoadPort:
        if (loadUsed >= cfg.loadPorts)
            return false;
        ++loadUsed;
        ++totalUsed;
        return true;
      case FuKind::StorePort:
        if (storeUsed >= cfg.storePorts)
            return false;
        ++storeUsed;
        ++totalUsed;
        return true;
      default:
        panic("tryIssueSingleton: bad FU kind");
    }
}

bool
FuPool::tryIssueAluPipe(int outLat)
{
    if (!issueSlotFree())
        return false;
    int intCap = cfg.intAlus + cfg.aluPipes;
    if (intUsed >= intCap)
        return false;
    for (AluPipeline &p : pipes_) {
        if (p.tryIssue(now, outLat)) {
            ++intUsed;
            ++totalUsed;
            return true;
        }
    }
    return false;
}

void
FuPool::claimFailed()
{
    panic("claimSingleton without a successful probe");
}

} // namespace mg
