#include "uarch/lsq.hh"

#include <algorithm>

namespace mg {

void
Lsq::remove(DynInst *d)
{
    loads.erase(std::remove(loads.begin(), loads.end(), d), loads.end());
    stores.erase(std::remove(stores.begin(), stores.end(), d),
                 stores.end());
}

void
Lsq::squashFrom(std::uint64_t fromSeq)
{
    auto pred = [&](DynInst *d) { return d->seq >= fromSeq; };
    loads.erase(std::remove_if(loads.begin(), loads.end(), pred),
                loads.end());
    stores.erase(std::remove_if(stores.begin(), stores.end(), pred),
                 stores.end());
}

bool
Lsq::overlaps(const DynInst *a, const DynInst *b)
{
    Addr aLo = a->rec.memAddr;
    Addr aHi = aLo + static_cast<Addr>(a->rec.memBytes);
    Addr bLo = b->rec.memAddr;
    Addr bHi = bLo + static_cast<Addr>(b->rec.memBytes);
    return aLo < bHi && bLo < aHi;
}

DynInst *
Lsq::forwardingStore(const DynInst *load) const
{
    DynInst *best = nullptr;
    for (DynInst *s : stores) {
        if (s->seq >= load->seq)
            break;
        if (s->memDone && overlaps(s, load)) {
            if (!best || s->seq > best->seq)
                best = s;
        }
    }
    return best;
}

DynInst *
Lsq::violatingLoad(const DynInst *store) const
{
    DynInst *oldest = nullptr;
    for (DynInst *l : loads) {
        if (l->seq <= store->seq)
            continue;
        if (l->memDone && overlaps(store, l)) {
            if (!oldest || l->seq < oldest->seq)
                oldest = l;
        }
    }
    return oldest;
}

} // namespace mg
