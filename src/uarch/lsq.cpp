#include "uarch/lsq.hh"

#include <algorithm>

namespace mg {

void
Lsq::remove(DynInst *d)
{
    auto &q = d->isLoadKind ? loads : stores;
    if (!q.empty() && q.front() == d) {
        q.pop_front();
        return;
    }
    q.erase(std::remove(q.begin(), q.end(), d), q.end());
}

void
Lsq::squashFrom(std::uint64_t fromSeq)
{
    while (!loads.empty() && loads.back()->seq >= fromSeq)
        loads.pop_back();
    while (!stores.empty() && stores.back()->seq >= fromSeq)
        stores.pop_back();
}

bool
Lsq::overlaps(const DynInst *a, const DynInst *b)
{
    // Uses the DynInst-resident operand copies: the forwarding and
    // violation scans are the LSQ's hot loops, and the oracle record
    // lives in the slot's cold tail.
    Addr aLo = a->memAddr;
    Addr aHi = aLo + static_cast<Addr>(a->memBytes);
    Addr bLo = b->memAddr;
    Addr bHi = bLo + static_cast<Addr>(b->memBytes);
    return aLo < bHi && bLo < aHi;
}

DynInst *
Lsq::forwardingStore(const DynInst *load) const
{
    DynInst *best = nullptr;
    for (DynInst *s : stores) {
        if (s->seq >= load->seq)
            break;
        if (s->memDone && overlaps(s, load)) {
            if (!best || s->seq > best->seq)
                best = s;
        }
    }
    return best;
}

DynInst *
Lsq::violatingLoad(const DynInst *store) const
{
    DynInst *oldest = nullptr;
    for (DynInst *l : loads) {
        if (l->seq <= store->seq)
            continue;
        if (l->memDone && overlaps(store, l)) {
            if (!oldest || l->seq < oldest->seq)
                oldest = l;
        }
    }
    return oldest;
}

} // namespace mg
