#include "uarch/rename.hh"

#include "common/logging.hh"

namespace mg {

RenameMap::RenameMap()
{
    for (int i = 0; i < numArchRegs; ++i)
        map[static_cast<size_t>(i)] = static_cast<PhysReg>(i);
}

PhysReg
RenameMap::lookup(RegId arch) const
{
    if (arch == regNone || isZeroReg(arch))
        return physNone;
    return map[static_cast<size_t>(arch)];
}

PhysReg
RenameMap::rename(RegId arch, PhysReg phys)
{
    if (arch == regNone || isZeroReg(arch))
        panic("renaming the zero register");
    PhysReg prev = map[static_cast<size_t>(arch)];
    map[static_cast<size_t>(arch)] = phys;
    return prev;
}

void
RenameMap::restore(RegId arch, PhysReg prevPhys)
{
    if (arch == regNone || isZeroReg(arch))
        panic("restoring the zero register");
    map[static_cast<size_t>(arch)] = prevPhys;
}

} // namespace mg
