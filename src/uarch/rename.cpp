// RenameMap is header-only; this translation unit anchors the
// component in the build.
#include "uarch/rename.hh"
