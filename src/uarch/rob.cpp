#include "uarch/rob.hh"

namespace mg {

std::vector<DynInst *>
Rob::squashFrom(std::uint64_t fromSeq)
{
    std::vector<DynInst *> removed;
    while (!q.empty() && q.back()->seq >= fromSeq) {
        removed.push_back(q.back());
        q.pop_back();
    }
    return removed;
}

} // namespace mg
