/**
 * @file
 * Load/store queue: a combined-capacity pair of age-ordered queues
 * with store-to-load forwarding and memory-ordering violation
 * detection. A mini-graph may contain at most one memory operation,
 * so a handle occupies at most one entry and its handle PC stands in
 * for the embedded operation in the disambiguation machinery (paper
 * Sections 3.1, 4.3).
 */

#ifndef MG_UARCH_LSQ_HH
#define MG_UARCH_LSQ_HH

#include <cstdint>
#include <deque>

#include "uarch/dyninst.hh"

namespace mg {

/** The load/store queue. */
class Lsq
{
  public:
    explicit Lsq(int combinedCapacity) : cap(combinedCapacity) {}

    bool full() const
    {
        return static_cast<int>(loads.size() + stores.size()) >= cap;
    }
    int size() const
    {
        return static_cast<int>(loads.size() + stores.size());
    }
    int capacity() const { return cap; }

    void insertLoad(DynInst *d) { loads.push_back(d); }
    void insertStore(DynInst *d) { stores.push_back(d); }

    /** Remove @p d. Commit removes the oldest entry of its queue, so
     *  this is normally an O(1) front pop. */
    void remove(DynInst *d);

    /** Remove every entry with seq >= @p fromSeq: an age-ordered
     *  suffix of each queue, popped from the back. */
    void squashFrom(std::uint64_t fromSeq);

    /**
     * Find the youngest older store whose address is known and
     * overlaps the load's access.
     *
     * @param load executed load (rec fields valid)
     * @return the forwarding store, or nullptr
     */
    DynInst *forwardingStore(const DynInst *load) const;

    /**
     * Find the oldest younger load that already performed its access
     * and overlaps @p store — a memory-ordering violation.
     */
    DynInst *violatingLoad(const DynInst *store) const;

    const std::deque<DynInst *> &loadQueue() const { return loads; }
    const std::deque<DynInst *> &storeQueue() const { return stores; }

  private:
    int cap;
    std::deque<DynInst *> loads;     ///< age order
    std::deque<DynInst *> stores;    ///< age order

    static bool overlaps(const DynInst *a, const DynInst *b);
};

} // namespace mg

#endif // MG_UARCH_LSQ_HH
