/**
 * @file
 * Sampled-simulation parameters and the functional pre-pass summary.
 *
 * A sampled run measures a set of cycle-accurate intervals and
 * extrapolates whole-run statistics. Placement is phase-driven
 * (SimPoint-style): the functional pre-pass splits the run into
 * @c period -work chunks, fingerprints each with a PC-histogram
 * signature, clusters equal-phase chunks, and captures an
 * EmuCheckpoint ahead of the chunks a sampled run may measure.
 * The timing run then
 *
 *   1. measures the cold prefix exactly (cold caches, bus backlog,
 *      and queue fill-up are real but unrepresentative; extrapolating
 *      them is the dominant error source for short programs),
 *   2. fast-forwards chunk to chunk — checkpoint jump, then @c ffWarm
 *      work of functional warming (I-cache, D-cache/L2, branch
 *      predictor all trained; the clock advances virtually at the
 *      last measured IPC so bus queueing keeps evolving), then
 *      @c warmup work cycle-accurate to restore queue back-pressure,
 *   3. measures quantile-spread occurrences of every cluster —
 *      settling for one @c interval, then averaging three — and keeps
 *      sampling clusters whose error bound has not converged, within
 *      the @c maxDuty budget, and
 *   4. scales each cluster's measured rates by the cluster's total
 *      work — plus the exact prefix — into whole-run estimates with a
 *      within-cluster 95% confidence bound.
 *
 * Runs shorter than a few periods degrade to exact full simulation.
 * The MGT itself is a static, read-only table and needs no warming;
 * the emulator's block profile (which drives MGT selection) keeps
 * accumulating through fast-forward because profiling is part of
 * functional execution.
 */

#ifndef MG_UARCH_SAMPLING_HH
#define MG_UARCH_SAMPLING_HH

#include <cstdint>
#include <vector>

#include "emu/emulator.hh"

namespace mg {

/** Knobs of one sampled run (all lengths in constituent work units). */
struct SamplingParams
{
    bool enabled = false;
    std::uint64_t interval = 1000;  ///< detailed work measured per period
    std::uint64_t period = 12000;   ///< work between measurement starts
    std::uint64_t warmup = 2000;    ///< detailed pre-measurement work
    std::uint64_t ffWarm = 2000;    ///< functionally-warmed fast-forward
                                    ///< tail before each warmup
    std::uint64_t prefix = 0;       ///< exactly-measured cold prefix
                                    ///< (0 = one period): the startup
                                    ///< transient never extrapolates
    double targetCi = 0.01;         ///< keep sampling a cluster while
                                    ///< its weighted 95% CI share
                                    ///< exceeds this (0 = fixed two
                                    ///< samples per cluster)
    double maxDuty = 0.50;          ///< cap on the cycle-accurate
                                    ///< share of the run (coverage
                                    ///< beyond one sample per cluster
                                    ///< stops at this spend)
    /** Functional store-set shadow: while fast-forwarding, re-train
     *  exactly the (load PC, store PC) pairs this run's detailed
     *  intervals have already seen violate, so the learned memory
     *  dependences survive checkpoint jumps and the predictor's
     *  periodic table clears instead of being re-discovered by
     *  squash storms inside the measurement intervals. (Pairing
     *  *functionally-observed* same-address ops instead is tempting
     *  but wrong: most never violate, and training them serializes
     *  the machine — see docs/EXPERIMENTS.md.) */
    bool ssShadow = true;
    /** Warm-through fast-forward (the default): never checkpoint-
     *  jump; emulate every skipped instruction with functional
     *  warming (caches, branch predictor, virtual clock) so
     *  *cumulative* long-lived state — a working set that takes
     *  hundreds of chunks to become cache-resident — is preserved
     *  between measurements. Slower than jumping (the whole run is
     *  at least emulated, so speedup is bounded by the emulate/
     *  detailed ratio) but it removes the dominant long-tier error
     *  source on footprint-bound kernels (rtr: 25-29% error jumping,
     *  under 4% warming through, still ~4x). Clear it to restore the
     *  checkpoint-jump fast path; see docs/EXPERIMENTS.md for the
     *  measured trade on both tiers. */
    bool warmThrough = true;
    /** Measurement-phase perturbation seed (0 = legacy grid-aligned
     *  placement, bit-exact with salt-less builds). When set, each
     *  measured chunk's span starts at a deterministic offset hashed
     *  from (salt, chunk start) instead of always at the chunk start:
     *  period-aligned placement samples one fixed phase of any rate
     *  oscillation commensurate with the period, which read a
     *  systematic ~2% bias on huge-tier jpeg.dct. The engine derives
     *  the salt from the cell fingerprint, so it is stable across
     *  sessions (warm-store records and resumed journals stay
     *  coherent) while de-correlating placement between cells. Not
     *  part of the cell fingerprint: the same cell key always maps to
     *  the same salt, so keying it would be redundant. */
    std::uint64_t phaseSalt = 0;

    /** Detailed + functionally-warmed work per period. */
    std::uint64_t
    dutyWork() const
    {
        return interval + warmup + ffWarm;
    }

    /** Chunks measured exactly at the start (prefix rounded up). */
    std::uint64_t
    prefixChunks() const
    {
        return prefix ? (prefix + period - 1) / period : 1;
    }

    /** Exactly-measured startup work. */
    std::uint64_t
    coldPrefixWork() const
    {
        return prefixChunks() * period;
    }

    /**
     * Work position where the fast-forward toward chunk @p k may stop
     * jumping and must start warming (the checkpoint position the
     * functional pre-pass captures for a measured chunk @p k).
     */
    std::uint64_t
    jumpTarget(std::uint64_t k) const
    {
        std::uint64_t start = k * period;
        std::uint64_t lead = warmup + ffWarm;
        return start > lead ? start - lead : 0;
    }

    /** Sampling degenerates to a full detailed run. A zero interval
     *  has nothing to measure (and would divide the measured-span
     *  floor), so it degenerates too. */
    bool
    degenerate() const
    {
        return !enabled || interval == 0 ||
            period <= interval + warmup;
    }

    bool operator==(const SamplingParams &) const = default;
};

/**
 * Hook a sampled run uses to skip functional re-warming: before each
 * fast-forward gap, Core::runSampled asks for the warm-state record
 * captured at the coming chunk's start (a serialized CoreWarmState:
 * emulator checkpoint + cache/predictor/store-set contents + clocks);
 * on a miss it warms through functionally as always and offers the
 * state it computed for writeback. @p seedHash identifies the
 * violation-pair seeding generation (see docs/ARCHITECTURE.md): runs
 * seeded with different store-set violation sets follow different
 * state trajectories and must never share records.
 *
 * Implementations are engine-side adapters over the on-disk
 * CheckpointStore; a null WarmStoreIf reproduces the storeless run
 * bit-exactly.
 */
class WarmStoreIf
{
  public:
    virtual ~WarmStoreIf() = default;

    /** Fetch the record for chunk-start @p pos, generation
     *  @p seedHash. @return true and fill @p bytes on a verified hit. */
    virtual bool loadWarm(std::uint64_t pos, std::uint64_t seedHash,
                          std::vector<std::uint8_t> &bytes) = 0;

    /** Persist @p bytes as the record for (@p pos, @p seedHash).
     *  Must never fail the run (degrade internally). */
    virtual void storeWarm(std::uint64_t pos, std::uint64_t seedHash,
                           const std::vector<std::uint8_t> &bytes) = 0;
};

/** PC-signature sketch width for phase clustering. */
constexpr int sampleSigDims = 64;

/** Normalized-L1 distance above which two chunks are distinct phases. */
constexpr double sampleClusterTheta = 0.25;

/** One period-sized region of the functional execution. */
struct SampleChunk
{
    std::uint64_t start = 0;     ///< work position of the chunk start
    std::uint64_t work = 0;      ///< actual work (last chunk: partial)
    std::uint32_t cluster = 0;   ///< phase cluster id
};

// (The footprint-curve granularity, sampleFootLineBytes, lives in
// common/types.hh: the memsys tracking and this summary's curve are
// compared against each other and must share one constant.)

/**
 * Config-independent functional summary of one (program, inputs) pair:
 * the total dynamic work (the extrapolation denominator), the phase
 * clustering of its period-grid chunks, and checkpoints ahead of the
 * chunks a sampled run measures (the first two post-prefix chunks of
 * each cluster). Computed once per binary by collectSampleSummary()
 * and shared by every machine configuration running that binary.
 */
struct SampleSummary
{
    std::uint64_t totalWork = 0;
    std::uint64_t totalSlots = 0;
    std::uint32_t clusters = 0;
    std::vector<SampleChunk> chunks;    ///< ascending start positions
    std::vector<EmuCheckpoint> ckpts;   ///< ascending work positions
    /** Cumulative unique data lines (sampleFootLineBytes granularity)
     *  touched from the start of the run through the end of each
     *  chunk (parallel to @c chunks). The per-chunk delta is the
     *  number of *genuinely new* lines a chunk first-touches; during
     *  a checkpoint-jump run, any measurement-interval first-touches
     *  beyond that expectation are lines the jumps skipped and the
     *  warm budget failed to restore — the signal behind the per-cell
     *  footprint warning. */
    std::vector<std::uint64_t> footLines;

    /** Expected new unique lines inside chunk @p idx. */
    std::uint64_t
    newLinesIn(std::size_t idx) const
    {
        if (idx >= footLines.size())
            return 0;
        return footLines[idx] - (idx ? footLines[idx - 1] : 0);
    }
};

} // namespace mg

#endif // MG_UARCH_SAMPLING_HH
