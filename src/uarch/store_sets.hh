/**
 * @file
 * Store-sets memory dependence predictor in the style of Chrysos &
 * Emer (ISCA-25): a Store Set ID Table (SSIT) indexed by instruction
 * PC and a Last Fetched Store Table (LFST) indexed by store set.
 * Loads wait for the last in-flight store of their set; violations
 * merge the load's and store's sets. For mini-graphs the handle PC
 * identifies embedded loads and stores (paper Section 4.3).
 */

#ifndef MG_UARCH_STORE_SETS_HH
#define MG_UARCH_STORE_SETS_HH

#include <cstdint>
#include <vector>

#include "common/serial.hh"
#include "common/types.hh"

namespace mg {

/** Store-sets configuration. */
struct StoreSetsConfig
{
    std::uint32_t ssitEntries = 4096;
    std::uint32_t lfstEntries = 1024;
    /** Clear the tables every N accesses to bound stale pairings. */
    std::uint64_t clearInterval = 262144;
};

/**
 * Complete trained state of the predictor. LFST sequence numbers
 * reference the core's global sequence space, so the warm-checkpoint
 * record that carries this state also carries the core's nextSeq.
 */
struct StoreSetsState
{
    std::vector<std::int32_t> ssit;
    std::vector<std::uint64_t> lfst;
    std::vector<Addr> lfstPc;
    std::uint64_t accesses = 0;
    std::uint64_t violations = 0;
    std::int32_t nextSet = 0;

    void serialize(SerialWriter &w) const;
    bool deserialize(SerialReader &r);
};

/** The predictor. */
class StoreSets
{
  public:
    explicit StoreSets(const StoreSetsConfig &cfg = {});

    /**
     * A store is dispatched.
     *
     * @param pc       store (or handle) PC
     * @param storeSeq global sequence number of the store
     * @return sequence number of an older store this store must order
     *         behind, or 0 (stores in one set issue in order)
     */
    std::uint64_t dispatchStore(Addr pc, std::uint64_t storeSeq);

    /**
     * A load is dispatched.
     *
     * @param pc load (or handle) PC
     * @return sequence number of the store the load must wait for,
     *         or 0 when unconstrained
     */
    std::uint64_t dispatchLoad(Addr pc);

    /** A store left the window; drop it from the LFST. */
    void completeStore(Addr pc, std::uint64_t storeSeq);

    /**
     * A memory-ordering violation between @p loadPc and @p storePc
     * was detected: assign both to a common set.
     */
    void recordViolation(Addr loadPc, Addr storePc);

    std::uint64_t violations() const { return violations_; }

    /** Snapshot the full trained state (checkpoint store). */
    StoreSetsState exportState() const;

    /** @return true when @p s matches this predictor's table sizes. */
    bool stateCompatible(const StoreSetsState &s) const;

    /** Replace the trained state with @p s (requires stateCompatible). */
    void adoptState(const StoreSetsState &s);

  private:
    StoreSetsConfig cfg;
    static constexpr std::int32_t noSet = -1;
    std::vector<std::int32_t> ssit;       ///< PC -> store set id
    std::vector<std::uint64_t> lfst;      ///< set id -> last store seq
    std::vector<Addr> lfstPc;             ///< set id -> last store pc
    std::uint64_t accesses = 0;
    std::uint64_t violations_ = 0;
    std::int32_t nextSet = 0;
    std::uint32_t ssitMask = 0;   ///< power-of-two fast path (0 = use %)
    std::uint32_t lfstMask = 0;

    std::uint32_t idx(Addr pc) const;
    std::uint32_t lfstIdx(std::int32_t set) const;
    void maybeClear();
};

} // namespace mg

#endif // MG_UARCH_STORE_SETS_HH
