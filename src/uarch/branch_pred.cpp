#include "uarch/branch_pred.hh"

#include <cstddef>

#include "common/logging.hh"

namespace mg {

BranchPredictor::BranchPredictor(const BranchPredConfig &c) : cfg(c)
{
    bimodal.assign(cfg.bimodalEntries, 1);   // weakly not-taken
    gshare.assign(cfg.gshareEntries, 1);
    chooser.assign(cfg.chooserEntries, 1);   // weakly prefer bimodal
    btb.assign(static_cast<size_t>(cfg.btbEntries), BtbEntry());
    ras.assign(cfg.rasEntries, 0);
    bimodalMask = maskOf(cfg.bimodalEntries);
    gshareMask = maskOf(cfg.gshareEntries);
    chooserMask = maskOf(cfg.chooserEntries);
    btbSetMask = maskOf(cfg.btbEntries / cfg.btbAssoc);
    rasMask = maskOf(cfg.rasEntries);
}

std::uint32_t
BranchPredictor::bimodalIdx(Addr pc) const
{
    return reduce(pc >> 2, bimodalMask, cfg.bimodalEntries);
}

std::uint32_t
BranchPredictor::gshareIdx(Addr pc) const
{
    std::uint64_t h = history & ((1ull << cfg.historyBits) - 1);
    return reduce((pc >> 2) ^ h, gshareMask, cfg.gshareEntries);
}

std::uint32_t
BranchPredictor::chooserIdx(Addr pc) const
{
    return reduce(pc >> 2, chooserMask, cfg.chooserEntries);
}

void
BranchPredictor::bump(std::uint8_t &ctr, bool up)
{
    if (up && ctr < 3)
        ++ctr;
    else if (!up && ctr > 0)
        --ctr;
}

bool
BranchPredictor::predictDirection(Addr pc) const
{
    ++lookups_;
    bool useGshare = chooser[chooserIdx(pc)] >= 2;
    std::uint8_t ctr = useGshare ? gshare[gshareIdx(pc)]
                                 : bimodal[bimodalIdx(pc)];
    return ctr >= 2;
}

void
BranchPredictor::updateDirection(Addr pc, bool taken)
{
    bool bPred = bimodal[bimodalIdx(pc)] >= 2;
    bool gPred = gshare[gshareIdx(pc)] >= 2;
    // Chooser trains toward whichever component was right.
    if (bPred != gPred)
        bump(chooser[chooserIdx(pc)], gPred == taken);
    bump(bimodal[bimodalIdx(pc)], taken);
    bump(gshare[gshareIdx(pc)], taken);
    history = (history << 1) | (taken ? 1 : 0);
}

Addr
BranchPredictor::predictTarget(Addr pc) const
{
    std::uint32_t sets = cfg.btbEntries / cfg.btbAssoc;
    std::uint32_t set = reduce(pc >> 2, btbSetMask, sets);
    Addr tag = (pc >> 2) / sets;
    const BtbEntry *base = &btb[static_cast<size_t>(set) * cfg.btbAssoc];
    for (std::uint32_t w = 0; w < cfg.btbAssoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return base[w].target;
    }
    return 0;
}

void
BranchPredictor::updateTarget(Addr pc, Addr target)
{
    ++btbClock;
    std::uint32_t sets = cfg.btbEntries / cfg.btbAssoc;
    std::uint32_t set = reduce(pc >> 2, btbSetMask, sets);
    Addr tag = (pc >> 2) / sets;
    BtbEntry *base = &btb[static_cast<size_t>(set) * cfg.btbAssoc];
    BtbEntry *victim = base;
    for (std::uint32_t w = 0; w < cfg.btbAssoc; ++w) {
        BtbEntry &e = base[w];
        if (e.valid && e.tag == tag) {
            e.target = target;
            e.lastUse = btbClock;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lastUse = btbClock;
}

void
BranchPredictor::pushReturn(Addr returnPc)
{
    ras[reduce(rasTop, rasMask, cfg.rasEntries)] = returnPc;
    ++rasTop;
}

Addr
BranchPredictor::popReturn()
{
    if (rasTop == 0)
        return 0;
    --rasTop;
    return ras[reduce(rasTop, rasMask, cfg.rasEntries)];
}

namespace {

void
putU8Vec(SerialWriter &w, const std::vector<std::uint8_t> &v)
{
    w.u64(v.size());
    w.bytes(v.data(), v.size());
}

bool
getU8Vec(SerialReader &r, std::vector<std::uint8_t> &v)
{
    std::uint64_t n = r.u64();
    if (n > r.remaining()) {
        r.fail();
        return false;
    }
    v.resize(static_cast<std::size_t>(n));
    return r.bytes(v.data(), v.size());
}

} // namespace

void
BranchPredState::serialize(SerialWriter &w) const
{
    putU8Vec(w, bimodal);
    putU8Vec(w, gshare);
    putU8Vec(w, chooser);
    w.u64(history);
    putU8Vec(w, btbValid);
    w.vec(btbTag);
    w.vec(btbTarget);
    w.vec(btbLastUse);
    w.u64(btbClock);
    w.vec(ras);
    w.u32(rasTop);
    w.u64(lookups);
    w.u64(mispredicts);
}

bool
BranchPredState::deserialize(SerialReader &r)
{
    if (!getU8Vec(r, bimodal) || !getU8Vec(r, gshare) ||
        !getU8Vec(r, chooser))
        return false;
    history = r.u64();
    if (!getU8Vec(r, btbValid))
        return false;
    btbTag = r.vec<Addr>();
    btbTarget = r.vec<Addr>();
    btbLastUse = r.vec<std::uint64_t>();
    btbClock = r.u64();
    ras = r.vec<Addr>();
    rasTop = r.u32();
    lookups = r.u64();
    mispredicts = r.u64();
    return r.ok();
}

BranchPredState
BranchPredictor::exportState() const
{
    BranchPredState s;
    s.bimodal = bimodal;
    s.gshare = gshare;
    s.chooser = chooser;
    s.history = history;
    s.btbValid.reserve(btb.size());
    s.btbTag.reserve(btb.size());
    s.btbTarget.reserve(btb.size());
    s.btbLastUse.reserve(btb.size());
    for (const BtbEntry &e : btb) {
        s.btbValid.push_back(e.valid ? 1 : 0);
        s.btbTag.push_back(e.tag);
        s.btbTarget.push_back(e.target);
        s.btbLastUse.push_back(e.lastUse);
    }
    s.btbClock = btbClock;
    s.ras = ras;
    s.rasTop = rasTop;
    s.lookups = lookups_;
    s.mispredicts = mispredicts_;
    return s;
}

bool
BranchPredictor::stateCompatible(const BranchPredState &s) const
{
    return s.bimodal.size() == bimodal.size() &&
        s.gshare.size() == gshare.size() &&
        s.chooser.size() == chooser.size() &&
        s.btbValid.size() == btb.size() &&
        s.btbTag.size() == btb.size() &&
        s.btbTarget.size() == btb.size() &&
        s.btbLastUse.size() == btb.size() && s.ras.size() == ras.size();
}

void
BranchPredictor::adoptState(const BranchPredState &s)
{
    if (!stateCompatible(s))
        panic("branch predictor: adoptState of incompatible state");
    bimodal = s.bimodal;
    gshare = s.gshare;
    chooser = s.chooser;
    history = s.history;
    for (std::size_t i = 0; i < btb.size(); ++i) {
        btb[i].valid = s.btbValid[i] != 0;
        btb[i].tag = s.btbTag[i];
        btb[i].target = s.btbTarget[i];
        btb[i].lastUse = s.btbLastUse[i];
    }
    btbClock = s.btbClock;
    ras = s.ras;
    rasTop = s.rasTop;
    lookups_ = s.lookups;
    mispredicts_ = s.mispredicts;
}

} // namespace mg
