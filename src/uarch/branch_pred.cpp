#include "uarch/branch_pred.hh"

#include <cstddef>

namespace mg {

BranchPredictor::BranchPredictor(const BranchPredConfig &c) : cfg(c)
{
    bimodal.assign(cfg.bimodalEntries, 1);   // weakly not-taken
    gshare.assign(cfg.gshareEntries, 1);
    chooser.assign(cfg.chooserEntries, 1);   // weakly prefer bimodal
    btb.assign(static_cast<size_t>(cfg.btbEntries), BtbEntry());
    ras.assign(cfg.rasEntries, 0);
    bimodalMask = maskOf(cfg.bimodalEntries);
    gshareMask = maskOf(cfg.gshareEntries);
    chooserMask = maskOf(cfg.chooserEntries);
    btbSetMask = maskOf(cfg.btbEntries / cfg.btbAssoc);
    rasMask = maskOf(cfg.rasEntries);
}

std::uint32_t
BranchPredictor::bimodalIdx(Addr pc) const
{
    return reduce(pc >> 2, bimodalMask, cfg.bimodalEntries);
}

std::uint32_t
BranchPredictor::gshareIdx(Addr pc) const
{
    std::uint64_t h = history & ((1ull << cfg.historyBits) - 1);
    return reduce((pc >> 2) ^ h, gshareMask, cfg.gshareEntries);
}

std::uint32_t
BranchPredictor::chooserIdx(Addr pc) const
{
    return reduce(pc >> 2, chooserMask, cfg.chooserEntries);
}

void
BranchPredictor::bump(std::uint8_t &ctr, bool up)
{
    if (up && ctr < 3)
        ++ctr;
    else if (!up && ctr > 0)
        --ctr;
}

bool
BranchPredictor::predictDirection(Addr pc) const
{
    ++lookups_;
    bool useGshare = chooser[chooserIdx(pc)] >= 2;
    std::uint8_t ctr = useGshare ? gshare[gshareIdx(pc)]
                                 : bimodal[bimodalIdx(pc)];
    return ctr >= 2;
}

void
BranchPredictor::updateDirection(Addr pc, bool taken)
{
    bool bPred = bimodal[bimodalIdx(pc)] >= 2;
    bool gPred = gshare[gshareIdx(pc)] >= 2;
    // Chooser trains toward whichever component was right.
    if (bPred != gPred)
        bump(chooser[chooserIdx(pc)], gPred == taken);
    bump(bimodal[bimodalIdx(pc)], taken);
    bump(gshare[gshareIdx(pc)], taken);
    history = (history << 1) | (taken ? 1 : 0);
}

Addr
BranchPredictor::predictTarget(Addr pc) const
{
    std::uint32_t sets = cfg.btbEntries / cfg.btbAssoc;
    std::uint32_t set = reduce(pc >> 2, btbSetMask, sets);
    Addr tag = (pc >> 2) / sets;
    const BtbEntry *base = &btb[static_cast<size_t>(set) * cfg.btbAssoc];
    for (std::uint32_t w = 0; w < cfg.btbAssoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return base[w].target;
    }
    return 0;
}

void
BranchPredictor::updateTarget(Addr pc, Addr target)
{
    ++btbClock;
    std::uint32_t sets = cfg.btbEntries / cfg.btbAssoc;
    std::uint32_t set = reduce(pc >> 2, btbSetMask, sets);
    Addr tag = (pc >> 2) / sets;
    BtbEntry *base = &btb[static_cast<size_t>(set) * cfg.btbAssoc];
    BtbEntry *victim = base;
    for (std::uint32_t w = 0; w < cfg.btbAssoc; ++w) {
        BtbEntry &e = base[w];
        if (e.valid && e.tag == tag) {
            e.target = target;
            e.lastUse = btbClock;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lastUse = btbClock;
}

void
BranchPredictor::pushReturn(Addr returnPc)
{
    ras[reduce(rasTop, rasMask, cfg.rasEntries)] = returnPc;
    ++rasTop;
}

Addr
BranchPredictor::popReturn()
{
    if (rasTop == 0)
        return 0;
    --rasTop;
    return ras[reduce(rasTop, rasMask, cfg.rasEntries)];
}

} // namespace mg
