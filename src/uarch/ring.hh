/**
 * @file
 * Fixed-capacity power-of-two ring deque for pointers. The core's
 * fetch and replay queues are bounded by machine capacities and sit on
 * the per-instruction hot path, where std::deque's segment bookkeeping
 * is measurable; this ring does O(1) branch-light pushes and pops at
 * both ends, and doubles (rarely, defensively) if a sizing assumption
 * is ever violated.
 */

#ifndef MG_UARCH_RING_HH
#define MG_UARCH_RING_HH

#include <cstddef>
#include <vector>

namespace mg {

/** Double-ended ring of T (T must be cheap to copy, e.g. a pointer). */
template <typename T>
class RingDeque
{
  public:
    explicit RingDeque(std::size_t minCapacity)
    {
        std::size_t cap = 16;
        while (cap < minCapacity + 1)
            cap <<= 1;
        buf.resize(cap);
        mask = cap - 1;
    }

    bool empty() const { return head == tail; }
    std::size_t size() const { return (tail - head) & mask; }

    void
    push_back(T v)
    {
        if (size() == mask)
            grow();
        buf[tail] = v;
        tail = (tail + 1) & mask;
    }

    void
    push_front(T v)
    {
        if (size() == mask)
            grow();
        head = (head - 1) & mask;
        buf[head] = v;
    }

    T front() const { return buf[head]; }
    T back() const { return buf[(tail - 1) & mask]; }

    void pop_front() { head = (head + 1) & mask; }
    void pop_back() { tail = (tail - 1) & mask; }

    void
    clear()
    {
        head = tail = 0;
    }

  private:
    void
    grow()
    {
        std::vector<T> bigger((mask + 1) * 2);
        std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            bigger[i] = buf[(head + i) & mask];
        buf.swap(bigger);
        mask = buf.size() - 1;
        head = 0;
        tail = n;
    }

    std::vector<T> buf;
    std::size_t mask = 0;
    std::size_t head = 0;
    std::size_t tail = 0;
};

} // namespace mg

#endif // MG_UARCH_RING_HH
