/**
 * @file
 * Register rename map: architectural -> physical, with a history-based
 * squash path. A handle renames exactly like a singleton instruction —
 * two source lookups, one destination allocation — which is what makes
 * rename-bandwidth amplification possible (paper Section 3.1).
 *
 * Header-only: every dispatched slot performs two lookups and up to
 * one rename, so these must inline into the dispatch loop.
 */

#ifndef MG_UARCH_RENAME_HH
#define MG_UARCH_RENAME_HH

#include <array>

#include "common/logging.hh"
#include "common/types.hh"
#include "uarch/regfile.hh"

namespace mg {

/** The speculative rename map. */
class RenameMap
{
  public:
    /** Identity-map arch registers onto physical [0, numArchRegs). */
    RenameMap()
    {
        for (int i = 0; i < numArchRegs; ++i)
            map[static_cast<size_t>(i)] = static_cast<PhysReg>(i);
    }

    /** Current mapping of @p arch (physNone for zero/none regs). */
    PhysReg
    lookup(RegId arch) const
    {
        if (arch == regNone || isZeroReg(arch))
            return physNone;
        return map[static_cast<size_t>(arch)];
    }

    /**
     * Rename a destination: @p arch now maps to @p phys.
     * @return the previous mapping (to free at commit or restore at
     *         squash)
     */
    PhysReg
    rename(RegId arch, PhysReg phys)
    {
        if (arch == regNone || isZeroReg(arch))
            panic("renaming the zero register");
        PhysReg prev = map[static_cast<size_t>(arch)];
        map[static_cast<size_t>(arch)] = phys;
        return prev;
    }

    /** Squash path: restore @p arch to @p prevPhys. */
    void
    restore(RegId arch, PhysReg prevPhys)
    {
        if (arch == regNone || isZeroReg(arch))
            panic("restoring the zero register");
        map[static_cast<size_t>(arch)] = prevPhys;
    }

  private:
    std::array<PhysReg, numArchRegs> map;
};

} // namespace mg

#endif // MG_UARCH_RENAME_HH
