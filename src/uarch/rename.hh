/**
 * @file
 * Register rename map: architectural -> physical, with a history-based
 * squash path. A handle renames exactly like a singleton instruction —
 * two source lookups, one destination allocation — which is what makes
 * rename-bandwidth amplification possible (paper Section 3.1).
 */

#ifndef MG_UARCH_RENAME_HH
#define MG_UARCH_RENAME_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "uarch/regfile.hh"

namespace mg {

/** The speculative rename map. */
class RenameMap
{
  public:
    /** Identity-map arch registers onto physical [0, numArchRegs). */
    RenameMap();

    /** Current mapping of @p arch (physNone for zero/none regs). */
    PhysReg lookup(RegId arch) const;

    /**
     * Rename a destination: @p arch now maps to @p phys.
     * @return the previous mapping (to free at commit or restore at
     *         squash)
     */
    PhysReg rename(RegId arch, PhysReg phys);

    /** Squash path: restore @p arch to @p prevPhys. */
    void restore(RegId arch, PhysReg prevPhys);

  private:
    std::array<PhysReg, numArchRegs> map;
};

} // namespace mg

#endif // MG_UARCH_RENAME_HH
