/**
 * @file
 * Reorder buffer: an age-ordered queue of in-flight slots. A handle
 * occupies exactly one entry — the capacity amplification the paper
 * reports for the instruction window.
 */

#ifndef MG_UARCH_ROB_HH
#define MG_UARCH_ROB_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "uarch/dyninst.hh"

namespace mg {

/** The reorder buffer. */
class Rob
{
  public:
    explicit Rob(int capacity) : cap(capacity) {}

    bool full() const { return static_cast<int>(q.size()) >= cap; }
    bool empty() const { return q.empty(); }
    int size() const { return static_cast<int>(q.size()); }
    int capacity() const { return cap; }

    void push(DynInst *d) { q.push_back(d); }

    DynInst *head() { return q.empty() ? nullptr : q.front(); }

    void popHead() { q.pop_front(); }

    /**
     * Remove every entry with seq >= @p fromSeq, youngest first.
     * @return the removed entries in removal (youngest-first) order
     */
    std::vector<DynInst *> squashFrom(std::uint64_t fromSeq);

    /** Iteration support (age order). */
    auto begin() { return q.begin(); }
    auto end() { return q.end(); }

  private:
    int cap;
    std::deque<DynInst *> q;
};

} // namespace mg

#endif // MG_UARCH_ROB_HH
