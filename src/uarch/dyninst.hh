/**
 * @file
 * Dynamic instruction state shared by every back-end structure. One
 * DynInst represents one pipeline *slot*: a singleton instruction or a
 * complete mini-graph handle (whose `work` is its template size).
 */

#ifndef MG_UARCH_DYNINST_HH
#define MG_UARCH_DYNINST_HH

#include <cstdint>

#include "common/types.hh"
#include "emu/emulator.hh"
#include "isa/instruction.hh"
#include "mg/mgt.hh"

namespace mg {

/** One in-flight pipeline slot. */
struct DynInst
{
    std::uint64_t seq = 0;          ///< global age (1-based)
    Addr pc = 0;
    Instruction insn;
    ExecRecord rec;                 ///< oracle-observed effects
    const MgTemplate *tmpl = nullptr;
    int work = 1;                   ///< constituent instructions

    // --- rename state ---
    PhysReg srcPhys[2] = {physNone, physNone};
    PhysReg dstPhys = physNone;
    PhysReg prevPhys = physNone;
    RegId archDst = regNone;

    // --- memory state ---
    bool isLoadKind = false;
    bool isStoreKind = false;
    std::uint64_t depStoreSeq = 0;  ///< store-sets predicted dependence
    bool memDone = false;           ///< address resolved (stores: +data)
    Cycle memExecAt = 0;

    // --- control state ---
    bool isCtrl = false;
    bool mispredicted = false;      ///< blocks fetch until resolve
    Cycle resolveAt = 0;

    // --- pipeline timing ---
    Cycle fetchAt = 0;
    Cycle dispatchReadyAt = 0;
    Cycle issueAt = 0;
    Cycle completeAt = 0;
    bool dispatched = false;
    bool issued = false;
    bool completed = false;
    bool squashed = false;
    int handleReplays = 0;          ///< interior-load miss replays

    bool isHandle() const { return insn.isHandle(); }
};

} // namespace mg

#endif // MG_UARCH_DYNINST_HH
