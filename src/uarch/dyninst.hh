/**
 * @file
 * Dynamic instruction state shared by every back-end structure. One
 * DynInst represents one pipeline *slot*: a singleton instruction or a
 * complete mini-graph handle (whose `work` is its template size).
 *
 * DynInsts live in a DynInstSlab: a fixed-capacity arena with an
 * explicit freelist. The core allocates one slot per fetched
 * instruction and recycles it the moment the instruction retires or is
 * squashed (squashed slots are reset in place and re-fed to fetch
 * through the replay queue), so the live population is bounded by
 * ROB + fetch-queue capacity — no per-instruction heap traffic and no
 * lazily-reclaimed arena tail.
 *
 * Field order is deliberate: the scheduling state the wakeup/select/
 * commit loops touch every cycle leads the struct (first cache lines);
 * the decode payload (insn, oracle record, waiter list) that is mostly
 * read once trails it.
 */

#ifndef MG_UARCH_DYNINST_HH
#define MG_UARCH_DYNINST_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "emu/emulator.hh"
#include "isa/instruction.hh"
#include "mg/mgt.hh"

namespace mg {

/** Scheduler-residency state of an issue-queue entry (see
 *  uarch/issue_queue.hh for the wakeup machinery that drives it). */
enum class IqState : std::uint8_t
{
    None,      ///< not in the issue queue (or already issued)
    Waiting,   ///< waiting on unissued producers / a predicted store
    Wake,      ///< all inputs known; parked until iqWakeAt
    Ready,     ///< in the ready set, competing for issue slots
};

/** One in-flight pipeline slot. */
struct DynInst
{
    // --- hot scheduling state (touched every cycle) ---
    std::uint64_t seq = 0;          ///< global age (1-based)
    PhysReg srcPhys[2] = {physNone, physNone};
    PhysReg dstPhys = physNone;
    PhysReg prevPhys = physNone;
    RegId archDst = regNone;
    InsnClass cls = InsnClass::Nop; ///< predecoded opcode class
    /** Singleton issue slot kind, precomputed at fetch (IntMult ops
     *  compete for the grouped integer slots, so they carry IntAlu). */
    FuKind selFu = FuKind::IntAlu;
    std::int16_t selLat = 1;        ///< singleton effective latency
    bool isLoadKind = false;
    bool isStoreKind = false;
    bool isCtrl = false;
    bool memDone = false;           ///< address resolved (stores: +data)
    bool mispredicted = false;      ///< blocks fetch until resolve
    bool dispatched = false;
    bool issued = false;
    bool inWindow = false;          ///< dispatched and not yet
                                    ///< retired/squashed
    IqState iqState = IqState::None;
    int iqWaits = 0;                ///< outstanding wakeup events
    Cycle iqWakeAt = 0;             ///< park target while Wake
    DynInst *iqPrev = nullptr;      ///< age-list links
    DynInst *iqNext = nullptr;
    DynInst *rdyPrev = nullptr;     ///< ready-set links (age-sorted)
    DynInst *rdyNext = nullptr;

    Cycle memExecAt = 0;
    Cycle resolveAt = 0;
    Cycle completeAt = 0;
    Cycle dispatchReadyAt = 0;
    Cycle issueAt = 0;
    Cycle fetchAt = 0;
    std::uint64_t depStoreSeq = 0;  ///< store-sets predicted dependence
    Addr memAddr = 0;               ///< hot copy of rec.memAddr
    std::int32_t memBytes = 0;      ///< hot copy of rec.memBytes
    int work = 1;                   ///< constituent instructions
    int handleReplays = 0;          ///< interior-load miss replays
    Addr pc = 0;
    const MgTemplate *tmpl = nullptr;

    // --- trace capture (observational; see uarch/trace.hh) ---
    Cycle dispatchedAt = 0;         ///< cycle the slot left rename
    /** Producer seqs of the renamed sources, sampled at dispatch from
     *  the core's phys-writer table (0 = value already architectural).
     *  Only maintained while a trace is attached. */
    std::uint64_t traceSrcSeq[2] = {0, 0};

    // --- cold decode payload (written once per fetch) ---
    Instruction insn;
    ExecRecord rec;                 ///< oracle-observed effects
    /** Loads/stores predicted to depend on this store, woken when its
     *  access resolves. (ptr, seq) pairs; stale seqs are skipped. */
    std::vector<std::pair<DynInst *, std::uint64_t>> depWaiters;

    /** Hot-path handle test: reads the predecoded class instead of
     *  faulting in the cold insn cache line. */
    bool isHandle() const { return cls == InsnClass::Handle; }

    /**
     * Reset for re-fetch after a squash: keep the static identity
     * (pc, insn, oracle record, template, work, kind flags) and clear
     * every piece of pipeline state, exactly like the freshly-pulled
     * copy the replay queue used to receive.
     */
    void
    resetForReplay()
    {
        seq = 0;
        srcPhys[0] = srcPhys[1] = physNone;
        dstPhys = prevPhys = physNone;
        archDst = regNone;
        depStoreSeq = 0;
        memDone = false;
        memExecAt = 0;
        mispredicted = false;
        resolveAt = 0;
        fetchAt = dispatchReadyAt = issueAt = completeAt = 0;
        dispatchedAt = 0;
        traceSrcSeq[0] = traceSrcSeq[1] = 0;
        dispatched = issued = inWindow = false;
        handleReplays = 0;
        iqPrev = iqNext = nullptr;
        rdyPrev = rdyNext = nullptr;
        iqState = IqState::None;
        iqWaits = 0;
        iqWakeAt = 0;
        depWaiters.clear();          // keeps capacity: allocation-free
    }

    /** Full reset for a fresh slot from the slab. pc/insn/cls/rec and
     *  the memAddr/memBytes copies are NOT cleared: the fetch path
     *  assigns them before any use. */
    void
    resetAll()
    {
        resetForReplay();
        tmpl = nullptr;
        work = 1;
        isLoadKind = isStoreKind = isCtrl = false;
        selFu = FuKind::IntAlu;
        selLat = 1;
    }
};

/**
 * Fixed-capacity DynInst arena with a freelist. Capacity is sized by
 * the machine (ROB + fetch queue bound the live population); the slab
 * still grows by whole blocks if that bound is ever exceeded, so a
 * sizing bug degrades to extra memory rather than a crash. Pointers
 * are stable for the slab's lifetime.
 */
class DynInstSlab
{
  public:
    explicit DynInstSlab(std::size_t capacity)
        : blockSize(capacity ? capacity : 1)
    {
        grow();
    }

    /** Take a fully-reset slot. */
    DynInst *
    alloc()
    {
        if (freeList.empty())
            grow();
        DynInst *d = freeList.back();
        freeList.pop_back();
        d->resetAll();
        ++live_;
        if (live_ > peakLive_)
            peakLive_ = live_;
        return d;
    }

    /** Return a slot (any queued references must already be stale). */
    void
    release(DynInst *d)
    {
        d->seq = 0;
        d->inWindow = false;
        freeList.push_back(d);
        --live_;
    }

    std::size_t live() const { return live_; }
    std::size_t peakLive() const { return peakLive_; }
    std::size_t capacity() const { return blockSize * blocks.size(); }

  private:
    void
    grow()
    {
        blocks.push_back(std::make_unique<DynInst[]>(blockSize));
        DynInst *base = blocks.back().get();
        for (std::size_t i = blockSize; i-- > 0;)
            freeList.push_back(base + i);
    }

    std::size_t blockSize;
    std::vector<std::unique_ptr<DynInst[]>> blocks;
    std::vector<DynInst *> freeList;
    std::size_t live_ = 0;
    std::size_t peakLive_ = 0;
};

} // namespace mg

#endif // MG_UARCH_DYNINST_HH
