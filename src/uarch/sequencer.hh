/**
 * @file
 * MGST sequencer pool (paper Section 4.1). The MGST is coupled to M
 * pipelined sequencers, where M is the maximum number of handles that
 * may be scheduled per cycle. A sequencer walks one mini-graph through
 * its per-cycle banks, so it is busy for the graph's total latency;
 * the MGST's cycle-sliced bank organization guarantees two sequencers
 * started in different cycles never collide on a bank.
 */

#ifndef MG_UARCH_SEQUENCER_HH
#define MG_UARCH_SEQUENCER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mg {

/** Pool of MGST sequencers, modelled as a counted resource. */
class SequencerPool
{
  public:
    /**
     * @param count sequencers (= max handles issued per cycle)
     */
    explicit SequencerPool(int count = 6);

    /**
     * Claim a sequencer from @p now for @p cycles. At most one new
     * walk may start per sequencer per cycle, and a sequencer stays
     * busy until its mini-graph's terminal bank.
     *
     * @return true on success
     */
    bool tryStart(Cycle now, int cycles);

    /** Sequencers free at @p now. */
    int freeAt(Cycle now) const;

    std::uint64_t walks() const { return walks_; }

  private:
    std::vector<Cycle> busyUntil;   ///< per sequencer: first free cycle
    std::uint64_t walks_ = 0;
};

} // namespace mg

#endif // MG_UARCH_SEQUENCER_HH
