/**
 * @file
 * Physical register file state: free list plus per-register timing.
 *
 * Two timestamps per register drive the scheduler:
 *  - readyForIssueAt: the earliest cycle a consumer may *issue* (this
 *    folds in the scheduling-loop constraint: with a pipelined 2-cycle
 *    scheduler, single-cycle producers delay consumers an extra cycle,
 *    paper Section 6.3);
 *  - valueAt: the cycle the value physically exists (used to decide
 *    whether a consumer reads it from the bypass network or needs a
 *    register file read port).
 *
 * Mini-graph interior values never pass through here — that is the
 * capacity amplification the paper measures (Figure 8 top).
 */

#ifndef MG_UARCH_REGFILE_HH
#define MG_UARCH_REGFILE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace mg {

/** Physical register file with an explicit free list. */
class PhysRegFile
{
  public:
    /** readyForIssueAt value of a register whose producer has not
     *  issued yet (set by markPending). The issue queue parks
     *  consumers of such registers on the producer's wakeup list
     *  instead of a timed wakeup. */
    static constexpr Cycle pendingAt = ~Cycle(0);

    /** True while @p r awaits its producer's issue. */
    bool
    pending(PhysReg r) const
    {
        return r != physNone && readyForIssueAt_[checked(r)] == pendingAt;
    }

    /**
     * @param totalRegs total physical registers (paper baseline: 164)
     * @param archRegs  registers holding architected state (64)
     */
    PhysRegFile(int totalRegs, int archRegs);

    /** Allocate a register; physNone when the free list is empty. */
    PhysReg
    alloc()
    {
        if (freeList.empty())
            return physNone;
        PhysReg r = freeList.back();
        freeList.pop_back();
        int inflight = (total - archCount) -
            static_cast<int>(freeList.size());
        if (inflight > peak)
            peak = inflight;
        return r;
    }

    /** Return @p r to the free list. */
    void
    free(PhysReg r)
    {
        checked(r);
        freeList.push_back(r);
        if (static_cast<int>(freeList.size()) > total - archCount)
            panic("physical register double-free (free list %zu > %d)",
                  freeList.size(), total - archCount);
    }

    /** Mark not-ready (used at allocation). */
    void
    markPending(PhysReg r)
    {
        if (r == physNone)
            return;
        readyForIssueAt_[checked(r)] = pendingAt;
        valueAt_[checked(r)] = pendingAt;
    }

    /** Registers currently available for renaming. */
    int freeCount() const { return static_cast<int>(freeList.size()); }

    int totalRegs() const { return total; }

    bool
    readyForIssue(PhysReg r, Cycle now) const
    {
        return r == physNone || readyForIssueAt_[checked(r)] <= now;
    }

    Cycle
    readyForIssueAt(PhysReg r) const
    {
        return r == physNone ? 0 : readyForIssueAt_[checked(r)];
    }

    Cycle
    valueAt(PhysReg r) const
    {
        return r == physNone ? 0 : valueAt_[checked(r)];
    }

    /** Producer issued: publish both timestamps. */
    void
    setTimes(PhysReg r, Cycle readyForIssue, Cycle value)
    {
        if (r == physNone)
            return;
        readyForIssueAt_[checked(r)] = readyForIssue;
        valueAt_[checked(r)] = value;
    }

    /** Peak in-flight occupancy statistic. */
    int peakInFlight() const { return peak; }

  private:
    int total;
    int archCount;
    std::vector<PhysReg> freeList;
    std::vector<Cycle> readyForIssueAt_;
    std::vector<Cycle> valueAt_;
    int peak = 0;

    /** Bounds-checked index (inline: this sits on the wakeup/bypass
     *  hot path, several probes per issue attempt). */
    std::size_t
    checked(PhysReg r) const
    {
        if (r < 0 || r >= total)
            panic("bad physical register %d", r);
        return static_cast<std::size_t>(r);
    }
};

} // namespace mg

#endif // MG_UARCH_REGFILE_HH
