/**
 * @file
 * The cycle-level out-of-order core.
 *
 * The model follows the SimpleScalar sim-outorder methodology the
 * paper used: a functional oracle (the Emulator) executes the program
 * in fetch order while this core models timing — branch prediction,
 * renaming, the issue queue, functional-unit and register-port
 * structural hazards, the load/store queue with store-sets scheduling
 * and ordering-violation squashes, cache latencies, and retirement.
 *
 * Mini-graph awareness (paper Section 4):
 *  - a handle is one slot at fetch/rename/dispatch/issue/commit;
 *  - integer handles issue to ALU pipelines; integer-memory handles
 *    issue through the sliding-window scheduler (<= 1 per cycle);
 *  - issuing a handle claims one MGST sequencer for its total latency;
 *  - interior values never allocate physical registers;
 *  - a handle's scheduler entry is held until its terminal bank;
 *  - interior-load misses replay the entire mini-graph.
 */

#ifndef MG_UARCH_CORE_HH
#define MG_UARCH_CORE_HH

#include <atomic>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "emu/emulator.hh"
#include "memsys/hierarchy.hh"
#include "uarch/branch_pred.hh"
#include "uarch/dyninst.hh"
#include "uarch/fu_pool.hh"
#include "uarch/issue_queue.hh"
#include "uarch/lsq.hh"
#include "uarch/regfile.hh"
#include "uarch/rename.hh"
#include "uarch/ring.hh"
#include "uarch/rob.hh"
#include "uarch/sampling.hh"
#include "uarch/sequencer.hh"
#include "uarch/sliding_window.hh"
#include "uarch/store_sets.hh"
#include "uarch/trace.hh"

namespace mg {

/** Machine configuration (defaults = the paper's baseline). */
struct CoreConfig
{
    // Bandwidths.
    int fetchWidth = 6;
    int renameWidth = 6;
    int issueWidth = 6;
    int commitWidth = 6;

    // Capacities.
    int robSize = 128;
    int iqSize = 50;
    int lsqSize = 64;
    int physRegs = 164;
    int fetchQueueSize = 24;

    // Latencies.
    int frontendDepth = 8;      ///< fetch-to-dispatch stages
    int regReadLat = 2;
    int schedulerCycles = 1;    ///< 1 = single-cycle, 2 = pipelined
    int misfetchPenalty = 3;    ///< BTB-miss-on-taken bubble
    int bypassWindow = 3;       ///< cycles a value rides the bypass

    // Execution resources.
    FuPoolConfig fu;            ///< 4 int ALUs baseline

    // Mini-graph machinery.
    bool mgEnabled = false;
    bool slidingWindow = false; ///< integer-memory handles issue
    int sequencers = 6;
    int maxIntMemHandlesPerCycle = 1;

    HierarchyConfig mem;
    BranchPredConfig bp;
    StoreSetsConfig ss;

    /** Derive the paper's mini-graph configuration: two of the four
     *  integer ALUs become ALU pipelines. */
    void
    enableMiniGraphs(bool intMem, int pipeDepth = 4)
    {
        mgEnabled = true;
        slidingWindow = intMem;
        fu.intAlus = 2;
        fu.aluPipes = 2;
        fu.aluPipeDepth = pipeDepth;
    }
};

/** Every CoreStats counter, for the delta/scale arithmetic the
 *  sampled-measurement bookkeeping needs. */
#define MG_CORE_STATS_COUNTERS(X)                                        \
    X(cycles) X(committedSlots) X(committedWork) X(committedHandles)     \
    X(fetchedSlots) X(branches) X(mispredicts) X(misfetches)             \
    X(loadReplays) X(handleReplays) X(ordViolations) X(squashedSlots)    \
    X(icacheMisses) X(dcacheMisses) X(iqFullStalls) X(robFullStalls)     \
    X(regFullStalls) X(lsqFullStalls) X(intMemIssueConflicts)

/** End-of-run statistics. */
struct CoreStats
{
    Cycle cycles = 0;
    std::uint64_t committedSlots = 0;   ///< handles count once
    std::uint64_t committedWork = 0;    ///< constituent instructions
    std::uint64_t committedHandles = 0;
    std::uint64_t fetchedSlots = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t misfetches = 0;
    std::uint64_t loadReplays = 0;      ///< singleton load-miss waits
    std::uint64_t handleReplays = 0;    ///< interior-load mini-graph
                                        ///< replays
    std::uint64_t ordViolations = 0;
    std::uint64_t squashedSlots = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;
    std::uint64_t iqFullStalls = 0;
    std::uint64_t robFullStalls = 0;
    std::uint64_t regFullStalls = 0;
    std::uint64_t lsqFullStalls = 0;
    std::uint64_t intMemIssueConflicts = 0;

    /** Bit-identical comparison (the engine's determinism contract). */
    bool operator==(const CoreStats &) const = default;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committedWork) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Fraction of committed work removed from pipeline slots. */
    double
    dynamicCoverage() const
    {
        return committedWork
            ? 1.0 - static_cast<double>(committedSlots) /
                  static_cast<double>(committedWork)
            : 0.0;
    }

    /** Counter-wise accumulation (sampled-interval aggregation). */
    CoreStats &
    operator+=(const CoreStats &o)
    {
#define MG_ADD(f) f += o.f;
        MG_CORE_STATS_COUNTERS(MG_ADD)
#undef MG_ADD
        return *this;
    }

    /** Counter-wise delta against an earlier snapshot of this run. */
    CoreStats
    operator-(const CoreStats &o) const
    {
        CoreStats d;
#define MG_SUB(f) d.f = f - o.f;
        MG_CORE_STATS_COUNTERS(MG_SUB)
#undef MG_SUB
        return d;
    }

    /** Counter-wise scaling (sampled-run extrapolation). */
    CoreStats
    scaled(double factor) const
    {
        CoreStats s;
#define MG_SCALE(f)                                                      \
    s.f = static_cast<std::uint64_t>(                                    \
        std::llround(static_cast<double>(f) * factor));
        MG_CORE_STATS_COUNTERS(MG_SCALE)
#undef MG_SCALE
        return s;
    }
};

/**
 * Result of a sampled run: whole-run statistics extrapolated from the
 * measured intervals, plus the error-bound bookkeeping. @c est scales
 * every event counter by totalWork / measuredWork (committedWork is
 * pinned to the known totalWork), so downstream consumers — speedup
 * tables, JSON reports — read it exactly like a full run's CoreStats.
 */
struct SampledStats
{
    CoreStats est;                      ///< extrapolated full-run stats
    std::uint64_t totalWork = 0;        ///< functional whole-run work
    std::uint64_t prefixWork = 0;       ///< exactly-measured cold work
    std::uint64_t measuredWork = 0;     ///< work inside measurements
                                        ///< (cold prefix included)
    std::uint64_t measuredCycles = 0;   ///< cycles inside measurements
    std::uint64_t detailedWork = 0;     ///< all cycle-accurate work
                                        ///< (measure + warmup + drain)
    std::uint64_t ffWork = 0;           ///< work fast-forwarded
    std::uint32_t intervals = 0;        ///< measurement intervals taken
    double ipcHat = 0;                  ///< ratio-estimator IPC
    double ipcRelCi95 = 0;              ///< 95% CI half-width / mean of
                                        ///< per-interval IPC
    bool exact = false;                 ///< degenerated to a full run;
                                        ///< est is bit-exact
    /** Checkpoint-jump footprint blindness: some jump skipped more
     *  first-touch unique data lines than the post-jump warm budget
     *  (ffWarm + warmup) could possibly restore, so measurements ran
     *  against a hierarchy missing long-lived working-set state and
     *  the estimate is structurally suspect (rtr-style 25%+ errors).
     *  Never set in warm-through mode, which skips nothing. */
    bool footprintWarning = false;
    /** Total unique lines the flagged jumps skipped beyond the warm
     *  budget (the magnitude behind footprintWarning). */
    std::uint64_t footprintSkippedLines = 0;
    /** Warm-checkpoint store traffic of this run: fast-forward gaps
     *  served by restoring a stored record vs gaps warmed through
     *  functionally and written back. Zero without a store. */
    std::uint32_t ckptRestores = 0;
    std::uint32_t ckptWritebacks = 0;
};

/** The core. */
class Core
{
  public:
    /**
     * @param prog program (handles allowed when @p mgt is given)
     * @param mgt  mini-graph table or null
     * @param cfg  machine configuration
     */
    Core(const Program &prog, const MgTable *mgt, const CoreConfig &cfg);

    /**
     * Run until the oracle halts (and the pipeline drains) or
     * @p maxWork constituent instructions have committed.
     */
    CoreStats run(std::uint64_t maxWork = ~0ull);

    /**
     * Sampled run (see uarch/sampling.hh for the interval scheme).
     * @p sum supplies the extrapolation denominator and the grid
     * checkpoints fast-forwards jump through; an empty checkpoint list
     * is legal (every fast-forward then steps functionally).
     * Degenerate parameters reproduce run() bit-exactly.
     *
     * @p warmStore (warm-through mode only) enables the restore-warm
     * fast-forward path: each gap first tries to restore the stored
     * warm state for the coming chunk, falling back to functional
     * warming — and writing the result back — on a miss. Because a
     * restored record is exactly the state the writing run computed
     * at that position, a run served from the store is bit-identical
     * to the run that populated it.
     *
     * @p seedViol pre-seeds the store-set shadow with known
     * violating (load PC, store PC) pairs (sorted), so dependences a
     * previous discovery run learned are trained during fast-forward
     * instead of being duty-limited to detailed intervals. Each
     * seeded pair lies dormant until the functional stream first
     * shows it violable (a store->load RAW within a window-sized
     * span), so training starts where the dependence starts. The
     * seed set keys the store's record generation.
     */
    SampledStats runSampled(
        const SamplingParams &sp, const SampleSummary &sum,
        std::uint64_t maxWork = ~0ull, WarmStoreIf *warmStore = nullptr,
        const std::vector<std::pair<Addr, Addr>> *seedViol = nullptr);

    /** Violating (load PC, store PC) pairs the last sampled run's
     *  detailed intervals observed, sorted (the discovery-pass output
     *  that seeds final passes and warm sessions). */
    std::vector<std::pair<Addr, Addr>> violPairsSorted() const;

    /**
     * Functionally execute the oracle until its constituent work
     * reaches @p workTarget (or it halts). The pipeline must be empty.
     * With @p warm, fetched lines touch the I-cache, memory accesses
     * touch the D-cache hierarchy, and control ops train the branch
     * predictor — functional warming. With @p ipcEst > 0 the core
     * clock advances virtually at that rate and warming runs through
     * the *timed* hierarchy paths, so bus queueing (the dominant
     * cold-phase effect) keeps evolving across the gap; with 0 the
     * clock freezes and warming is tag-only. Contributes nothing to
     * stats() either way.
     */
    void fastForward(std::uint64_t workTarget, bool warm,
                     double ipcEst = 0);

    /**
     * Jump the oracle to @p c (forward, pipeline empty): the
     * checkpoint-restore fast path of a sampled run.
     */
    void restoreOracle(const EmuCheckpoint &c);

    /** Access the oracle (for architectural state checks in tests). */
    Emulator &oracle() { return emu; }

    /**
     * Attach a cooperative cancellation flag (null detaches). The
     * run loops poll it every few hundred iterations and throw
     * CellTimeout once it reads true, abandoning the run — the
     * engine's watchdog sets it when a cell's wall-clock deadline
     * fires. A cancelled core is dead: the pipeline is mid-flight,
     * so the caller must discard it rather than resume.
     */
    void setCancel(const std::atomic<bool> *c) { cancel_ = c; }

    /**
     * Attach a retired-event trace ring (null detaches). Capture is
     * observational: timestamps the timing model already computed are
     * copied into @p t at retirement, so an attached trace never
     * changes stats() — the determinism contract the critical-path
     * analyzer relies on. Attach before run(); the producer-tracking
     * table it enables is maintained from the next dispatch on.
     */
    void
    setTrace(TraceBuffer *t)
    {
        trace_ = t;
        if (t && physWriterSeq_.empty())
            physWriterSeq_.assign(
                static_cast<std::size_t>(cfg.physRegs), 0);
    }

    /** Free physical registers (rename-resource checks in tests). */
    int regFreeCount() const { return regs.freeCount(); }

    /** In-flight DynInst slots currently allocated from the slab. */
    std::size_t liveInsts() const { return slab.live(); }

    /** High-water mark of liveInsts() — the eager-reclamation bound
     *  (<= ROB + fetch-queue capacity regardless of squash rate). */
    std::size_t peakLiveInsts() const { return slab.peakLive(); }

    const CoreStats &stats() const { return stats_; }

  private:
    const Program &prog;
    const MgTable *mgt;
    CoreConfig cfg;

    Emulator emu;
    Hierarchy mem;
    BranchPredictor bp;
    StoreSets ss;
    PhysRegFile regs;
    RenameMap rmap;
    Rob rob;
    IssueQueue iq;
    Lsq lsq;
    FuPool fu;
    SequencerPool seqs;
    SlidingWindow window;

    Cycle now = 0;
    std::uint64_t nextSeq = 1;
    CoreStats stats_;
    int fetchLineShift = -1;    ///< log2(l1i line) when a power of two

    // Cooperative cancellation (per-cell deadlines). The flag is
    // sampled every pollEvery loop iterations so the hot loop pays
    // one counter increment, not an atomic load, per cycle.
    const std::atomic<bool> *cancel_ = nullptr;
    std::uint32_t cancelPoll_ = 0;
    static constexpr std::uint32_t cancelPollMask = 1023;
    void pollCancel();

    // Retired-event trace capture (observational; null = off). The
    // phys-writer table maps each physical register to the seq of the
    // in-flight slot that produces it, giving the trace its register
    // dependence edges without touching the rename map's hot path.
    TraceBuffer *trace_ = nullptr;
    std::vector<std::uint64_t> physWriterSeq_;
    void traceRetire(const DynInst *d);

    // Allocation-free instruction lifecycle: every DynInst lives in
    // the slab from fetch to retirement/squash; squashed slots are
    // reset in place and re-fed through the replay queue.
    DynInstSlab slab;

    // Oracle stream with squash-replay support.
    RingDeque<DynInst *> replayQueue;
    bool oracleDone = false;
    bool draining = false;   ///< stop pulling new oracle slots

    // Fetch state.
    RingDeque<DynInst *> fetchQueue;
    std::uint64_t fetchBlockedBySeq = 0;  ///< unresolved mispredict
    Cycle fetchStalledUntil = 0;          ///< misfetch / icache miss
    Addr lastFetchLine = ~Addr(0);

    // In-flight directory: a seq-indexed ring over the ROB contents
    // (ring[seq & mask], validated by inWindow + exact seq), replacing
    // the per-dispatch hash-map insert/erase/find.
    std::vector<DynInst *> window_;
    std::uint64_t windowMask = 0;

    // Per-cycle mini-graph issue throttle.
    int intMemIssuedThisCycle = 0;

    // Reusable per-cycle scratch (hoisted out of the cycle loop).
    std::vector<std::pair<DynInst *, std::uint64_t>> memOps;
    std::vector<DynInst *> replayScratch;


    // Issued-but-unresolved memory operations, so neither the resolve
    // stage nor the idle-skip event scan walks the whole LSQ each
    // cycle. Entries self-expire (seq mismatch or memDone) and are
    // compacted in doMemAndResolve.
    std::vector<std::pair<DynInst *, std::uint64_t>> pendingMem;

    // Functional store-set shadow (sampled runs, SamplingParams::
    // ssShadow). Which store->load pairs actually violate is a timing
    // property a functional pass cannot predict (most same-address
    // pairs issue in order and never violate, and pairing them anyway
    // merges unrelated store PCs into giant sets that serialize the
    // machine), so the shadow only *re-trains* exact pairs this run's
    // detailed intervals have already seen violate: during warm
    // fast-forward, a load whose PC is a known violator re-merges its
    // recorded store partner, carrying the learned dependence across
    // checkpoint jumps and the predictor's periodic table clears.
    /** One edge of the violation graph: a store PC some load has
     *  violated against. Keeping the full partner set (not just the
     *  latest partner) matters: the predictor's trained behavior is
     *  the *connected components* of the violation graph, and
     *  replaying all edges reconstructs the same components in any
     *  order — a last-partner-only map loses edges and
     *  under-serializes. Edges recorded by this run's own detailed
     *  intervals are active immediately; *seeded* edges (prior-run
     *  discoveries) start dormant and activate only once the
     *  functional stream shows the pair could violate here — the
     *  first store->load RAW through memory within a window-sized
     *  span. Activating on functional evidence instead of at work 0
     *  keeps a seeded run from serializing program phases the
     *  discovery run measured as violation-free (the dependence may
     *  only exist in a later phase), and the evidence is a pure
     *  function of the instruction stream, so cold and warm sessions
     *  activate at identical positions. */
    struct FfPartner
    {
        Addr storePc = 0;
        bool active = true;
    };
    std::unordered_map<Addr, std::vector<FfPartner>> ffViolPairs;
    /** Store PCs appearing in some dormant seeded edge (scan gate). */
    std::unordered_set<Addr> ffPartnerStores;
    /** 8-byte-word -> (partner store PC, work position) of the most
     *  recent partner store touching it; the load side of the RAW
     *  scan reads this. Serialized with warm records: entries written
     *  inside a fast-forward gap must survive a restore that skips
     *  the gap. */
    std::unordered_map<Addr, std::pair<Addr, std::uint64_t>> ffAliasLast;
    std::uint64_t ffDormantEdges = 0;
    /** RAW span (work units) within which a seeded pair counts as
     *  violable: both ends must plausibly coexist in the instruction
     *  window, so a couple of ROB depths. */
    static constexpr std::uint64_t ffAliasSpan = 256;
    /** Feed one functional record (any mode: fast-forward or the
     *  detailed oracle) to the seeded-edge RAW scan. */
    void ffAliasScan(const ExecRecord &rec);
    /** Record a detailed-interval violation edge (new edges active;
     *  a dormant seeded edge the machine actually violated wakes). */
    void ffRecordViolation(Addr loadPc, Addr storePc);
    bool ffShadow = false;      ///< set by runSampled from ssShadow

    // --- pipeline stages (called youngest-stage-last each cycle) ---
    void doMemAndResolve();
    void doCommit();
    void doIssue();
    void doDispatch();
    void doFetch();

    // --- run-loop plumbing ---
    void stepCycle();
    void runDetailedUntil(std::uint64_t targetWork);
    void drainPipeline();
    bool pipelineEmpty() const;
    void warmControl(const Instruction &in, const ExecRecord &rec);

    /**
     * Event-aware idle skipping: when the coming cycle provably does
     * nothing — nothing ready or waking in the scheduler, no memory
     * access or commit or branch resolution due, fetch stalled or
     * starved, dispatch blocked — return the next cycle at which any
     * of those events fires (0 = cannot skip). @p stallCounter
     * receives the dispatch-stall statistic the skipped cycles must
     * still accumulate (one bump per idle cycle, as in stepping).
     */
    Cycle idleSkipTarget(std::uint64_t **stallCounter);

    // --- warm-checkpoint store plumbing ---
    /** Serialize the complete warm state at a drained-pipeline
     *  fast-forward boundary: clocks, the functional oracle, and the
     *  trained hierarchy/predictor/store-set contents. */
    void serializeWarm(SerialWriter &w) const;
    /** Parse + validate a serializeWarm record and, only if every
     *  piece is well-formed and compatible with this configuration,
     *  atomically adopt it (never partially mutates on failure). */
    bool tryRestoreWarm(const std::vector<std::uint8_t> &bytes);

    // --- helpers ---
    DynInst *pullOracle();
    void windowInsert(DynInst *d);
    DynInst *findInWindow(std::uint64_t seq) const;
    RegId renameDstOf(const DynInst *d) const;
    void predictControl(DynInst *d);
    bool issueHandle(DynInst *d, int ports);
    bool issueSingleton(DynInst *d, int ports);
    void publishDest(DynInst *d, int effLat, Cycle value);
    void executeLoad(DynInst *d);
    void executeStore(DynInst *d);
    void squashFrom(std::uint64_t fromSeq);
    void retire(DynInst *d);
    bool depStoreSatisfied(const DynInst *d) const;
    Addr lineOf(Addr pc) const;
};

} // namespace mg

#endif // MG_UARCH_CORE_HH
