#include "uarch/regfile.hh"

#include "common/logging.hh"

namespace mg {

PhysRegFile::PhysRegFile(int totalRegs, int archRegs)
    : total(totalRegs), archCount(archRegs)
{
    if (totalRegs <= archRegs)
        fatal("physical register file (%d) must exceed architected "
              "state (%d)", totalRegs, archRegs);
    readyForIssueAt_.assign(static_cast<size_t>(total), 0);
    valueAt_.assign(static_cast<size_t>(total), 0);
    // Registers [0, archCount) hold the initial architected state;
    // the rest start free. Allocation pops from the back.
    for (int r = total - 1; r >= archCount; --r)
        freeList.push_back(static_cast<PhysReg>(r));
}

std::size_t
PhysRegFile::checked(PhysReg r) const
{
    if (r < 0 || r >= total)
        panic("bad physical register %d", r);
    return static_cast<std::size_t>(r);
}

PhysReg
PhysRegFile::alloc()
{
    if (freeList.empty())
        return physNone;
    PhysReg r = freeList.back();
    freeList.pop_back();
    int inflight = (total - archCount) -
        static_cast<int>(freeList.size());
    if (inflight > peak)
        peak = inflight;
    return r;
}

void
PhysRegFile::free(PhysReg r)
{
    checked(r);
    freeList.push_back(r);
    if (static_cast<int>(freeList.size()) > total - archCount)
        panic("physical register double-free (free list %zu > %d)",
              freeList.size(), total - archCount);
}

void
PhysRegFile::markPending(PhysReg r)
{
    if (r == physNone)
        return;
    readyForIssueAt_[checked(r)] = ~Cycle(0);
    valueAt_[checked(r)] = ~Cycle(0);
}

} // namespace mg
