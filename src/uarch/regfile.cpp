#include "uarch/regfile.hh"

#include "common/logging.hh"

namespace mg {

PhysRegFile::PhysRegFile(int totalRegs, int archRegs)
    : total(totalRegs), archCount(archRegs)
{
    if (totalRegs <= archRegs)
        fatal("physical register file (%d) must exceed architected "
              "state (%d)", totalRegs, archRegs);
    readyForIssueAt_.assign(static_cast<size_t>(total), 0);
    valueAt_.assign(static_cast<size_t>(total), 0);
    // Registers [0, archCount) hold the initial architected state;
    // the rest start free. Allocation pops from the back.
    for (int r = total - 1; r >= archCount; --r)
        freeList.push_back(static_cast<PhysReg>(r));
}

} // namespace mg
