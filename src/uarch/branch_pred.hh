/**
 * @file
 * Branch prediction: a 12Kb hybrid direction predictor (bimodal +
 * gshare + chooser, 2K entries of 2 bits each), a 2K-entry 4-way
 * set-associative BTB, and a return address stack — the paper's
 * front-end configuration (Section 6).
 *
 * When a mini-graph terminates in a branch, the handle PC stands in
 * for the branch PC for prediction and update (paper Section 4.1);
 * the core simply predicts on the fetch PC, so this falls out free.
 */

#ifndef MG_UARCH_BRANCH_PRED_HH
#define MG_UARCH_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

#include "common/serial.hh"
#include "common/types.hh"

namespace mg {

/** Direction predictor configuration. */
struct BranchPredConfig
{
    std::uint32_t bimodalEntries = 2048;
    std::uint32_t gshareEntries = 2048;
    std::uint32_t chooserEntries = 2048;
    std::uint32_t historyBits = 11;
    std::uint32_t btbEntries = 2048;
    std::uint32_t btbAssoc = 4;
    std::uint32_t rasEntries = 16;
};

/**
 * Complete trained state of the predictor: direction tables, global
 * history, BTB contents (split into parallel arrays so the byte
 * layout is canonical), RAS, and the lookup/mispredict counters.
 */
struct BranchPredState
{
    std::vector<std::uint8_t> bimodal;
    std::vector<std::uint8_t> gshare;
    std::vector<std::uint8_t> chooser;
    std::uint64_t history = 0;
    std::vector<std::uint8_t> btbValid;
    std::vector<Addr> btbTag;
    std::vector<Addr> btbTarget;
    std::vector<std::uint64_t> btbLastUse;
    std::uint64_t btbClock = 0;
    std::vector<Addr> ras;
    std::uint32_t rasTop = 0;
    std::uint64_t lookups = 0;
    std::uint64_t mispredicts = 0;

    void serialize(SerialWriter &w) const;
    bool deserialize(SerialReader &r);
};

/** Hybrid direction predictor + BTB + RAS. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredConfig &cfg = {});

    /** Predict the direction of a conditional branch at @p pc. */
    bool predictDirection(Addr pc) const;

    /**
     * Update the direction tables and global history.
     * @param pc    branch PC (handle PC for mini-graph branches)
     * @param taken actual outcome
     */
    void updateDirection(Addr pc, bool taken);

    /** Predicted target of a taken control op, or 0 on BTB miss. */
    Addr predictTarget(Addr pc) const;

    /** Install / refresh a BTB entry. */
    void updateTarget(Addr pc, Addr target);

    /** Call: push @p returnPc onto the RAS. */
    void pushReturn(Addr returnPc);

    /** Return: pop the predicted return target (0 when empty). */
    Addr popReturn();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Record one resolved misprediction (kept here for reporting). */
    void countMispredict() { ++mispredicts_; }

    /** Snapshot the full trained state (checkpoint store). */
    BranchPredState exportState() const;

    /** @return true when @p s matches this predictor's table sizes. */
    bool stateCompatible(const BranchPredState &s) const;

    /** Replace the trained state with @p s (requires stateCompatible). */
    void adoptState(const BranchPredState &s);

  private:
    BranchPredConfig cfg;
    std::vector<std::uint8_t> bimodal;   ///< 2-bit counters
    std::vector<std::uint8_t> gshare;
    std::vector<std::uint8_t> chooser;   ///< 0-1 bimodal, 2-3 gshare
    std::uint64_t history = 0;

    struct BtbEntry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lastUse = 0;
    };
    std::vector<BtbEntry> btb;
    std::uint64_t btbClock = 0;

    std::vector<Addr> ras;
    std::uint32_t rasTop = 0;    ///< index one past the top
    mutable std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;

    /** Mask fast path for power-of-two table sizes (several table
     *  probes per predicted branch; runtime mod is a division). A
     *  mask of 0 means "not a power of two, use %". */
    std::uint32_t bimodalMask = 0;
    std::uint32_t gshareMask = 0;
    std::uint32_t chooserMask = 0;
    std::uint32_t btbSetMask = 0;
    std::uint32_t rasMask = 0;

    static std::uint32_t
    maskOf(std::uint32_t n)
    {
        return (n != 0 && (n & (n - 1)) == 0) ? n - 1 : 0;
    }

    static std::uint32_t
    reduce(std::uint64_t v, std::uint32_t mask, std::uint32_t n)
    {
        return static_cast<std::uint32_t>(mask ? (v & mask) : (v % n));
    }

    std::uint32_t bimodalIdx(Addr pc) const;
    std::uint32_t gshareIdx(Addr pc) const;
    std::uint32_t chooserIdx(Addr pc) const;
    static void bump(std::uint8_t &ctr, bool up);
};

} // namespace mg

#endif // MG_UARCH_BRANCH_PRED_HH
