/**
 * @file
 * Issue queue (scheduler): age-ordered select over waiting slots. A
 * handle holds one entry until its terminal MGST bank executes (paper
 * Section 4.1), versus one entry per instruction for singletons —
 * the scheduler-capacity amplification of Figure 8.
 *
 * The implementation is wakeup-driven rather than scan-driven: every
 * entry is either
 *
 *  - Waiting on per-physical-register consumer lists (its producer has
 *    not issued, so no wakeup time is known) or on a predicted store's
 *    waiter list,
 *  - parked in a time-ordered Wake heap until the cycle its operands
 *    become issue-ready, or
 *  - in the Ready set, competing age-ordered for issue slots.
 *
 * The select loop therefore touches only entries that can plausibly
 * issue this cycle, instead of snapshotting the whole queue into a
 * freshly-allocated vector each cycle. Readiness timestamps can move
 * *later* after a wakeup was scheduled (a load miss revises its
 * consumers' times), so the core re-validates operands at select time
 * and hands back entries that turn out stale; the heap uses lazy
 * (ptr, seq, wakeAt) validation so squashes never need to search it.
 * All of this is a pure scheduling-cost optimisation: the set of
 * entries that *attempt* issue each cycle — and hence every stat the
 * core counts — is bit-identical to the exhaustive age-ordered scan.
 */

#ifndef MG_UARCH_ISSUE_QUEUE_HH
#define MG_UARCH_ISSUE_QUEUE_HH

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "uarch/dyninst.hh"
#include "uarch/regfile.hh"

namespace mg {

/** The scheduler's entry pool. */
class IssueQueue
{
  public:
    /**
     * @param capacity scheduler entries
     * @param physRegs physical registers (consumer-list directory size)
     */
    IssueQueue(int capacity, int physRegs);

    bool full() const { return n >= cap; }
    int size() const { return n; }
    int capacity() const { return cap; }

    /**
     * Insert at dispatch (age order is insertion order). Registers the
     * entry on the consumer lists of still-pending source registers
     * and on @p depStore's waiter list (null / resolved = no wait);
     * entries with no outstanding waits park in the Wake heap or go
     * straight to the Ready set.
     */
    void insert(DynInst *d, const PhysRegFile &regs, DynInst *depStore,
                Cycle now);

    /** Producer of @p p issued and published its timestamps: flush
     *  p's consumer list. (Inline fast path: most publishes find no
     *  waiters.) */
    void
    wakeReg(PhysReg p, const PhysRegFile &regs, Cycle now)
    {
        if (p == physNone)
            return;
        auto &list = regWaiters[static_cast<std::size_t>(p)];
        if (!list.empty())
            drainWaitList(list, regs, now);
    }

    /**
     * @p p's published readiness time was revised (load miss, store
     * forward, mini-graph replay): re-park its parked consumers at the
     * new time. Entries already Ready re-validate at select.
     */
    void rewakeReg(PhysReg p, const PhysRegFile &regs, Cycle now);

    /** Store @p s resolved its access: wake its dependence waiters. */
    void wakeDepStore(DynInst *s, const PhysRegFile &regs, Cycle now);

    /**
     * Start a select cycle: move every Wake entry due at @p now into
     * the Ready set (an intrusive list kept age-sorted on insertion,
     * so selection needs no per-cycle compaction or sort). Iterate
     * with readyFirst()/DynInst::rdyNext, capturing rdyNext before an
     * attempt (issue and requeue unlink the current entry only).
     */
    void beginSelect(Cycle now);

    int readyCount() const { return readyLive; }

    /** Oldest ready candidate, or nullptr. */
    DynInst *readyFirst() const { return readyHead; }

    /** Candidate @p d failed operand re-validation: re-park it. */
    void requeueNotReady(DynInst *d, const PhysRegFile &regs, Cycle now);

    /** Candidate @p d is still blocked on @p depStore: wait on it. */
    void requeueDepWait(DynInst *d, DynInst *depStore);

    /** Candidate @p d issued: remove it from the queue entirely. */
    void markIssued(DynInst *d);

    /** Remove every entry with seq >= @p fromSeq (an age-list
     *  suffix); their heap/list registrations go stale in place. */
    void squashFrom(std::uint64_t fromSeq);

    /**
     * True when the select loop would be a no-op at @p now: nothing
     * Ready and no wakeup due. (Waiting/Wake-parked entries cannot
     * issue and attempt nothing, so a quiet queue has no stat
     * side effects — the idle-skip precondition.) The wheel check is
     * conservative: an aliased far-future record in this cycle's
     * bucket reads as "due", which merely executes one normal cycle.
     */
    bool
    quietAt(Cycle now) const
    {
        return readyHead == nullptr &&
            (wakes.empty() || wakes.top().at > now) &&
            (wheelCount == 0 ||
             wheel[static_cast<std::size_t>(now & wheelMask)].empty());
    }

    /**
     * Earliest cycle a parked wakeup might fire, or 0 when none — a
     * lower bound, safe as an idle-skip event target (waking early
     * just executes a normal, quiet cycle).
     */
    Cycle
    nextWakeAt(Cycle now) const
    {
        Cycle best = wakes.empty() ? 0 : wakes.top().at;
        if (wheelCount > 0) {
            for (Cycle c = now + 1; c <= now + wheelSlots; ++c) {
                if (!wheel[static_cast<std::size_t>(c & wheelMask)]
                         .empty()) {
                    if (best == 0 || c < best)
                        best = c;
                    break;
                }
            }
        }
        return best;
    }

  private:
    struct WakeRec
    {
        Cycle at;
        std::uint64_t seq;
        DynInst *d;

        bool
        operator>(const WakeRec &o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };

    /** (ptr, seq) pair on a consumer list; stale seqs are skipped. */
    using WaitRec = std::pair<DynInst *, std::uint64_t>;

    void linkBack(DynInst *d);
    void unlink(DynInst *d);
    void vacateReady(DynInst *d);
    void scheduleKnown(DynInst *d, const PhysRegFile &regs, Cycle now);
    void parkWake(DynInst *d, Cycle at, Cycle now);
    void makeReady(DynInst *d);
    void drainWaitList(std::vector<WaitRec> &list,
                       const PhysRegFile &regs, Cycle now);

    int cap;
    int n = 0;

    // Age order: intrusive doubly-linked list, oldest first.
    DynInst *head = nullptr;
    DynInst *tail = nullptr;

    /** Per-physical-register consumer lists. */
    std::vector<std::vector<WaitRec>> regWaiters;
    std::vector<WaitRec> drainScratch;

    /**
     * Time-parked entries: a timer wheel for near-term wakeups (the
     * overwhelming majority — issue-to-ready distances are a few
     * cycles) with a heap fallback for entries parked further than
     * the wheel horizon. Both use lazy (seq, state, wakeAt)
     * validation on drain, so squashes never search them.
     */
    static constexpr Cycle wheelSlots = 256;
    static constexpr Cycle wheelMask = wheelSlots - 1;
    std::array<std::vector<WakeRec>, wheelSlots> wheel;
    std::vector<WakeRec> wheelScratch;
    Cycle wheelPos = 0;      ///< cycles <= wheelPos are drained
    int wheelCount = 0;
    std::priority_queue<WakeRec, std::vector<WakeRec>,
                        std::greater<WakeRec>> wakes;

    /** Ready set: intrusive list, kept age-sorted on insertion
     *  (wakeups are predominantly youngest, so inserts walk O(1)
     *  steps from the tail). */
    DynInst *readyHead = nullptr;
    DynInst *readyTail = nullptr;
    int readyLive = 0;
};

} // namespace mg

#endif // MG_UARCH_ISSUE_QUEUE_HH
