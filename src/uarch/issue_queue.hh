/**
 * @file
 * Issue queue (scheduler): age-ordered select over waiting slots. A
 * handle holds one entry until its terminal MGST bank executes (paper
 * Section 4.1), versus one entry per instruction for singletons —
 * the scheduler-capacity amplification of Figure 8.
 */

#ifndef MG_UARCH_ISSUE_QUEUE_HH
#define MG_UARCH_ISSUE_QUEUE_HH

#include <algorithm>
#include <vector>

#include "uarch/dyninst.hh"

namespace mg {

/** The scheduler's entry pool. */
class IssueQueue
{
  public:
    explicit IssueQueue(int capacity) : cap(capacity) {}

    bool full() const { return static_cast<int>(q.size()) >= cap; }
    int size() const { return static_cast<int>(q.size()); }
    int capacity() const { return cap; }

    /** Insert at dispatch (age order is insertion order). */
    void insert(DynInst *d) { q.push_back(d); }

    /** Remove a specific entry (issue or squash). */
    void
    remove(DynInst *d)
    {
        q.erase(std::remove(q.begin(), q.end(), d), q.end());
    }

    /** Remove every entry with seq >= @p fromSeq. */
    void
    squashFrom(std::uint64_t fromSeq)
    {
        q.erase(std::remove_if(q.begin(), q.end(),
                               [&](DynInst *d) {
                                   return d->seq >= fromSeq;
                               }),
                q.end());
    }

    auto begin() { return q.begin(); }
    auto end() { return q.end(); }

  private:
    int cap;
    std::vector<DynInst *> q;
};

} // namespace mg

#endif // MG_UARCH_ISSUE_QUEUE_HH
