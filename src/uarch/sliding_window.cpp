#include "uarch/sliding_window.hh"

#include <bit>

#include "mg/minigraph.hh"

#include "common/logging.hh"

namespace mg {

SlidingWindow::SlidingWindow(const WindowResources &res, int depth)
    : depth_(depth)
{
    if (depth < static_cast<int>(2 * mgMaxSize))
        depth_ = 2 * mgMaxSize;
    // Round the circular buffer up to a power of two so the per-lane
    // line math is a mask, not a division. Extra lines are cleared
    // like any others; reservations never reach beyond the FUBMP
    // depth, so the coverage semantics are unchanged.
    int capLines = 1;
    while (capLines < depth_)
        capLines <<= 1;
    depth_ = capLines;
    if (depth_ > 64)
        panic("sliding window depth %d exceeds the 64-line masks",
              depth_);
    mask = static_cast<Cycle>(capLines - 1);
    lineBits = depth_ == 64 ? ~std::uint64_t(0)
                            : (std::uint64_t(1) << depth_) - 1;

    cap = {res.intAlu, res.intMult, 0 /* FpAlu: never windowed */,
           res.loadPorts, res.storePorts, res.aluPipes};
    for (int l = 0; l < fuLaneCount; ++l) {
        atCapInit[static_cast<size_t>(l)] =
            cap[static_cast<size_t>(l)] <= 0 ? lineBits : 0;
        atCap[static_cast<size_t>(l)] = atCapInit[static_cast<size_t>(l)];
    }
}

void
SlidingWindow::slideSlow(Cycle now)
{
    Cycle steps = now - lastSlide;
    // Lines (lastSlide + s - 1) & mask for s = 1..steps: a contiguous
    // (wrapping) run of length steps starting at line lastSlide & mask.
    std::uint64_t passed;
    if (steps >= static_cast<Cycle>(depth_)) {
        passed = lineBits;
    } else {
        std::uint64_t run = (std::uint64_t(1) << steps) - 1;
        passed = rotLines(run, static_cast<unsigned>(lastSlide & mask));
    }
    for (int l = 0; l < fuLaneCount; ++l) {
        auto li = static_cast<size_t>(l);
        std::uint64_t clear = occupied[li] & passed;
        while (clear) {
            int line = lowestBit(clear);
            clear &= clear - 1;
            cnt[li][line] = 0;
        }
        occupied[li] &= ~passed;
        atCap[li] = (atCap[li] & ~passed) | (atCapInit[li] & passed);
    }
    lastSlide = now;
}

void
SlidingWindow::reserve(const PackedFubmp &p, Cycle now)
{
    slideTo(now);
    auto r = static_cast<unsigned>((now + 1) & mask);
    std::uint8_t lanes = p.laneSet;
    while (lanes) {
        int l = lowestBit(lanes);
        lanes &= static_cast<std::uint8_t>(lanes - 1);
        auto li = static_cast<size_t>(l);
        std::uint64_t bits = rotLines(p.lane[li], r);
        occupied[li] |= bits;
        while (bits) {
            int line = lowestBit(bits);
            bits &= bits - 1;
            if (++cnt[li][line] >= cap[li])
                atCap[li] |= std::uint64_t(1) << line;
        }
    }
}

bool
SlidingWindow::reserveOne(FuKind fu, int offset, Cycle now)
{
    slideTo(now);
    if (offset >= depth_)
        return false;
    auto line = static_cast<int>((now + static_cast<Cycle>(offset)) &
                                 mask);
    auto li = static_cast<size_t>(fuLaneIndex(fu));
    if (atCap[li] & (std::uint64_t(1) << line))
        return false;
    occupied[li] |= std::uint64_t(1) << line;
    if (++cnt[li][line] >= cap[li])
        atCap[li] |= std::uint64_t(1) << line;
    return true;
}

int
SlidingWindow::available(FuKind fu, int offset, Cycle now) const
{
    slideToConst(now);
    if (offset >= depth_)
        return 0;
    auto line = static_cast<int>((now + static_cast<Cycle>(offset)) &
                                 mask);
    auto li = static_cast<size_t>(fuLaneIndex(fu));
    return cap[li] - cnt[li][line];
}

int
SlidingWindow::usedAt(FuKind fu, Cycle now) const
{
    slideToConst(now);
    auto line = static_cast<int>(now & mask);
    return cnt[static_cast<size_t>(fuLaneIndex(fu))][line];
}

void
SlidingWindow::usedNow(Cycle now, int out[4]) const
{
    slideToConst(now);
    auto line = static_cast<int>(now & mask);
    out[0] = cnt[0][line];   // IntAlu
    out[1] = cnt[3][line];   // LoadPort
    out[2] = cnt[4][line];   // StorePort
    out[3] = cnt[5][line];   // AluPipe
}

} // namespace mg
