#include "uarch/sliding_window.hh"

#include "mg/minigraph.hh"

#include "common/logging.hh"

namespace mg {

SlidingWindow::SlidingWindow(const WindowResources &r, int depth)
    : res(r), depth_(depth)
{
    if (depth < static_cast<int>(2 * mgMaxSize))
        depth_ = 2 * mgMaxSize;
    // Round the circular buffer up to a power of two so the per-lane
    // line math is a mask, not a division. Extra lines are cleared
    // like any others; reservations never reach beyond the FUBMP
    // depth, so the coverage semantics are unchanged.
    int cap = 1;
    while (cap < depth_)
        cap <<= 1;
    depth_ = cap;
    mask = static_cast<Cycle>(cap - 1);
    used.assign(6, std::vector<int>(static_cast<size_t>(depth_), 0));
}

int
SlidingWindow::kindIdx(FuKind fu) const
{
    switch (fu) {
      case FuKind::IntAlu: return 0;
      case FuKind::IntMult: return 1;
      case FuKind::FpAlu: return 2;
      case FuKind::LoadPort: return 3;
      case FuKind::StorePort: return 4;
      case FuKind::AluPipe: return 5;
      case FuKind::None: break;
    }
    panic("no window lane for FU kind");
}

int
SlidingWindow::capacity(FuKind fu) const
{
    switch (fu) {
      case FuKind::IntAlu: return res.intAlu;
      case FuKind::IntMult: return res.intMult;
      case FuKind::FpAlu: return 0;
      case FuKind::LoadPort: return res.loadPorts;
      case FuKind::StorePort: return res.storePorts;
      case FuKind::AluPipe: return res.aluPipes;
      case FuKind::None: break;
    }
    return 0;
}

void
SlidingWindow::slideTo(Cycle now)
{
    if (now <= lastSlide)
        return;
    Cycle steps = now - lastSlide;
    if (steps >= static_cast<Cycle>(depth_)) {
        for (auto &lane : used)
            std::fill(lane.begin(), lane.end(), 0);
    } else {
        for (Cycle s = 1; s <= steps; ++s) {
            auto line = static_cast<size_t>((lastSlide + s - 1) & mask);
            for (auto &lane : used)
                lane[line] = 0;
        }
    }
    lastSlide = now;
}

bool
SlidingWindow::conflicts(const std::vector<FuKind> &fubmp, Cycle now) const
{
    slideToConst(now);
    for (size_t i = 0; i < fubmp.size(); ++i) {
        FuKind fu = fubmp[i];
        if (fu == FuKind::None)
            continue;
        int offset = static_cast<int>(i) + 1;   // FUBMP starts at cycle 1
        if (offset >= depth_)
            return true;
        auto line = static_cast<size_t>((now + static_cast<Cycle>(offset))
                                        & mask);
        if (used[static_cast<size_t>(kindIdx(fu))][line] + 1 >
            capacity(fu))
            return true;
    }
    return false;
}

void
SlidingWindow::reserve(const std::vector<FuKind> &fubmp, Cycle now)
{
    slideTo(now);
    for (size_t i = 0; i < fubmp.size(); ++i) {
        FuKind fu = fubmp[i];
        if (fu == FuKind::None)
            continue;
        int offset = static_cast<int>(i) + 1;
        auto line = static_cast<size_t>((now + static_cast<Cycle>(offset))
                                        & mask);
        ++used[static_cast<size_t>(kindIdx(fu))][line];
    }
}

bool
SlidingWindow::reserveOne(FuKind fu, int offset, Cycle now)
{
    slideTo(now);
    if (offset >= depth_)
        return false;
    auto line = static_cast<size_t>((now + static_cast<Cycle>(offset)) &
                                    mask);
    auto lane = static_cast<size_t>(kindIdx(fu));
    if (used[lane][line] + 1 > capacity(fu))
        return false;
    ++used[lane][line];
    return true;
}

int
SlidingWindow::available(FuKind fu, int offset, Cycle now) const
{
    slideToConst(now);
    if (offset >= depth_)
        return 0;
    auto line = static_cast<size_t>((now + static_cast<Cycle>(offset)) &
                                    mask);
    return capacity(fu) - used[static_cast<size_t>(kindIdx(fu))][line];
}

int
SlidingWindow::usedAt(FuKind fu, Cycle now) const
{
    slideToConst(now);
    auto line = static_cast<size_t>(now & mask);
    return used[static_cast<size_t>(kindIdx(fu))][line];
}

void
SlidingWindow::usedNow(Cycle now, int out[4]) const
{
    slideToConst(now);
    auto line = static_cast<size_t>(now & mask);
    out[0] = used[0][line];   // IntAlu
    out[1] = used[3][line];   // LoadPort
    out[2] = used[4][line];   // StorePort
    out[3] = used[5][line];   // AluPipe
}

} // namespace mg
