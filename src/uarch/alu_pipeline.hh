/**
 * @file
 * ALU pipeline model (paper Section 4.2): a single-entry, single-exit
 * pipelined chain of ALUs. To the scheduler it looks like a pipelined
 * multi-cycle functional unit: one operation may enter per cycle, the
 * output is selected among the unlatched per-stage outputs, and the
 * single output port creates "writeback" conflicts that the scheduler
 * avoids using the header's output latency (LAT).
 *
 * Singleton integer operations execute on stage 0 with no penalty, so
 * ALU pipelines substitute for plain ALUs transparently.
 *
 * Occupancy is tracked as two 64-bit masks over a 64-cycle ring (bit
 * `c % 64` = cycle c): one for the entry slot, one for the output
 * port. The select loop probes entry/output availability several
 * times per cycle per pipe, so the probes are single-bit tests and
 * the per-cycle slide is two word-wide mask clears — same idiom as
 * SlidingWindow's packed FUBMP lanes.
 */

#ifndef MG_UARCH_ALU_PIPELINE_HH
#define MG_UARCH_ALU_PIPELINE_HH

#include <cstdint>

#include "common/types.hh"

namespace mg {

/** Output-port and entry-slot tracker for one ALU pipeline. */
class AluPipeline
{
  public:
    /**
     * @param depth stages in the chain (paper evaluates 4)
     */
    explicit AluPipeline(int depth = 4);

    /**
     * Try to accept an operation entering at @p now whose register
     * output emerges @p outLat cycles later (singletons: 1). Checks
     * the entry slot at @p now and the output port at @p now+outLat.
     *
     * @return true and reserve both on success
     */
    bool
    tryIssue(Cycle now, int outLat)
    {
        slideTo(now);
        if (outLat < 1 || outLat >= window - 1)
            return false;
        std::uint64_t entryBit = bit(now);
        std::uint64_t outBit = bit(now + static_cast<Cycle>(outLat));
        if ((entryBusy & entryBit) || (outputBusy & outBit))
            return false;
        entryBusy |= entryBit;
        outputBusy |= outBit;
        ++accepted_;
        return true;
    }

    /** True when the entry slot at @p now is free. */
    bool entryFree(Cycle now) const { return !(entryBusy & bit(now)); }

    /** True when the output port at @p cycle is free. */
    bool
    outputFree(Cycle cycle) const
    {
        return !(outputBusy & bit(cycle));
    }

    /** Advance the ring to @p now (call at cycle start so const
     *  probes never see stale wrapped slots). */
    void advanceTo(Cycle now) { slideTo(now); }

    int depth() const { return depth_; }
    std::uint64_t accepted() const { return accepted_; }

  private:
    int depth_;
    /** Ring of future cycles; one bit each, so exactly one word. */
    static constexpr int window = 64;
    std::uint64_t entryBusy = 0;
    std::uint64_t outputBusy = 0;
    Cycle lastSlide = 0;
    std::uint64_t accepted_ = 0;

    static std::uint64_t bit(Cycle c) { return 1ull << (c & (window - 1)); }

    void
    slideTo(Cycle now)
    {
        if (now <= lastSlide)
            return;
        Cycle steps = now - lastSlide;
        if (steps >= window) {
            entryBusy = outputBusy = 0;
        } else {
            // The passed slots are a contiguous run of `steps` bits
            // starting at lastSlide's ring position, rotated within
            // the word.
            int r = static_cast<int>(lastSlide) & (window - 1);
            std::uint64_t run = (1ull << steps) - 1;
            std::uint64_t passed =
                r ? ((run << r) | (run >> (window - r))) : run;
            entryBusy &= ~passed;
            outputBusy &= ~passed;
        }
        lastSlide = now;
    }
};

} // namespace mg

#endif // MG_UARCH_ALU_PIPELINE_HH
