/**
 * @file
 * ALU pipeline model (paper Section 4.2): a single-entry, single-exit
 * pipelined chain of ALUs. To the scheduler it looks like a pipelined
 * multi-cycle functional unit: one operation may enter per cycle, the
 * output is selected among the unlatched per-stage outputs, and the
 * single output port creates "writeback" conflicts that the scheduler
 * avoids using the header's output latency (LAT).
 *
 * Singleton integer operations execute on stage 0 with no penalty, so
 * ALU pipelines substitute for plain ALUs transparently.
 */

#ifndef MG_UARCH_ALU_PIPELINE_HH
#define MG_UARCH_ALU_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace mg {

/** Output-port and entry-slot tracker for one ALU pipeline. */
class AluPipeline
{
  public:
    /**
     * @param depth stages in the chain (paper evaluates 4)
     */
    explicit AluPipeline(int depth = 4);

    /**
     * Try to accept an operation entering at @p now whose register
     * output emerges @p outLat cycles later (singletons: 1). Checks
     * the entry slot at @p now and the output port at @p now+outLat.
     *
     * @return true and reserve both on success
     */
    bool tryIssue(Cycle now, int outLat);

    /** True when the entry slot at @p now is free. */
    bool entryFree(Cycle now) const;

    /** True when the output port at @p cycle is free. */
    bool outputFree(Cycle cycle) const;

    /** Advance the ring buffers to @p now (call at cycle start so
     *  const probes never see stale wrapped slots). */
    void advanceTo(Cycle now) { slideTo(now); }

    int depth() const { return depth_; }
    std::uint64_t accepted() const { return accepted_; }

  private:
    int depth_;
    /** Ring buffers over future cycles, sized to cover depth + slack. */
    static constexpr int window = 64;
    std::vector<bool> entryBusy;
    std::vector<bool> outputBusy;
    Cycle lastSlide = 0;
    std::uint64_t accepted_ = 0;

    void slideTo(Cycle now);
    std::size_t slot(Cycle c) const
    {
        return static_cast<std::size_t>(c % window);
    }
};

} // namespace mg

#endif // MG_UARCH_ALU_PIPELINE_HH
