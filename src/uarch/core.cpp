#include "uarch/core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mg {

Core::Core(const Program &p, const MgTable *t, const CoreConfig &c)
    : prog(p), mgt(t), cfg(c),
      emu(p, t),
      mem(c.mem),
      bp(c.bp),
      ss(c.ss),
      regs(c.physRegs, numArchRegs),
      rob(c.robSize),
      iq(c.iqSize),
      lsq(c.lsqSize),
      fu(c.fu),
      seqs(c.sequencers),
      window(WindowResources{c.fu.intAlus, 1, c.fu.loadPorts,
                             c.fu.storePorts, c.fu.aluPipes})
{}

Addr
Core::lineOf(Addr pc) const
{
    return pc / cfg.mem.l1i.lineBytes;
}

std::unique_ptr<DynInst>
Core::pullOracle()
{
    // Replay queue first (squash recovery), then the live oracle.
    if (!replayQueue.empty()) {
        auto d = std::move(replayQueue.front());
        replayQueue.pop_front();
        return d;
    }
    if (oracleDone)
        return nullptr;
    for (;;) {
        ExecRecord rec;
        bool more = emu.step(&rec);
        if (rec.insn == nullptr) {
            oracleDone = true;
            return nullptr;
        }
        if (rec.insn->isNop()) {
            // Pad nops are squashed pre-decode: they consume no slot
            // but still advance the fetch PC (their icache footprint
            // is modelled in doFetch via the line walk).
            if (!more) {
                oracleDone = true;
                return nullptr;
            }
            continue;
        }
        auto d = std::make_unique<DynInst>();
        d->pc = rec.pc;
        d->insn = *rec.insn;
        d->rec = rec;
        d->rec.insn = nullptr;      // records outlive emulator views
        if (d->insn.isHandle()) {
            d->tmpl = &mgt->at(static_cast<MgId>(d->insn.imm));
            d->work = d->tmpl->size();
            d->isLoadKind = d->tmpl->hdr.hasLoad;
            d->isStoreKind = d->tmpl->hdr.hasStore;
            d->isCtrl = d->tmpl->hdr.endsInBranch;
        } else {
            d->work = 1;
            d->isLoadKind = d->insn.isLoad();
            d->isStoreKind = d->insn.isStore();
            d->isCtrl = d->insn.isControl();
        }
        if (!more)
            oracleDone = true;
        return d;
    }
}

void
Core::predictControl(DynInst *d)
{
    ++stats_.branches;
    bool actualTaken = d->rec.taken;
    Addr actualTarget = d->rec.nextPc;
    InsnClass cls = d->insn.cls();
    bool condLike = cls == InsnClass::CondBranch ||
        (d->isHandle() && d->tmpl->hdr.endsInBranch);

    if (condLike) {
        bool predTaken = bp.predictDirection(d->pc);
        bp.updateDirection(d->pc, actualTaken);
        if (predTaken != actualTaken) {
            d->mispredicted = true;
        } else if (actualTaken) {
            Addr predTarget = bp.predictTarget(d->pc);
            if (predTarget != actualTarget) {
                // Direct target: computable at decode (misfetch).
                fetchStalledUntil = std::max(
                    fetchStalledUntil,
                    now + static_cast<Cycle>(cfg.misfetchPenalty));
                ++stats_.misfetches;
            }
            bp.updateTarget(d->pc, actualTarget);
        }
        return;
    }

    switch (d->insn.op) {
      case Op::BR:
      case Op::BSR: {
          if (d->insn.op == Op::BSR)
              bp.pushReturn(d->pc + insnBytes);
          Addr predTarget = bp.predictTarget(d->pc);
          if (predTarget != actualTarget) {
              fetchStalledUntil = std::max(
                  fetchStalledUntil,
                  now + static_cast<Cycle>(cfg.misfetchPenalty));
              ++stats_.misfetches;
              bp.updateTarget(d->pc, actualTarget);
          }
          return;
      }
      case Op::RET: {
          Addr predTarget = bp.popReturn();
          if (predTarget != actualTarget)
              d->mispredicted = true;
          return;
      }
      case Op::JSR:
      case Op::JMP: {
          if (d->insn.op == Op::JSR)
              bp.pushReturn(d->pc + insnBytes);
          Addr predTarget = bp.predictTarget(d->pc);
          if (predTarget != actualTarget)
              d->mispredicted = true;
          bp.updateTarget(d->pc, actualTarget);
          return;
      }
      default:
        return;
    }
}

void
Core::doFetch()
{
    if (fetchBlockedBySeq != 0 || now < fetchStalledUntil)
        return;

    int fetched = 0;
    int linesTouched = 0;
    while (fetched < cfg.fetchWidth &&
           static_cast<int>(fetchQueue.size()) < cfg.fetchQueueSize) {
        auto d = pullOracle();
        if (!d)
            return;

        // Instruction cache: touch the line; charge misses.
        Addr line = lineOf(d->pc);
        if (line != lastFetchLine) {
            ++linesTouched;
            if (linesTouched > 2) {
                // Third line this cycle: defer to next cycle.
                replayQueue.push_front(std::move(d));
                return;
            }
            MemAccess acc = mem.instAccess(d->pc, now);
            lastFetchLine = line;
            if (!acc.l1Hit) {
                ++stats_.icacheMisses;
                fetchStalledUntil = std::max(fetchStalledUntil,
                                             acc.readyAt);
                replayQueue.push_front(std::move(d));
                return;
            }
        }

        d->seq = nextSeq++;
        d->fetchAt = now;
        d->dispatchReadyAt = now +
            static_cast<Cycle>(cfg.frontendDepth);
        ++stats_.fetchedSlots;
        ++fetched;

        bool taken = false;
        if (d->isCtrl) {
            predictControl(d.get());
            taken = d->rec.taken;
            if (d->mispredicted)
                fetchBlockedBySeq = d->seq;
        }
        fetchQueue.push_back(std::move(d));
        if (taken || fetchBlockedBySeq != 0)
            return;   // taken branches end the fetch cycle
    }
}

void
Core::doDispatch()
{
    int moved = 0;
    while (moved < cfg.renameWidth && !fetchQueue.empty()) {
        DynInst *d = fetchQueue.front().get();
        if (d->dispatchReadyAt > now)
            break;
        if (rob.full()) {
            ++stats_.robFullStalls;
            break;
        }
        if (iq.full()) {
            ++stats_.iqFullStalls;
            break;
        }
        if ((d->isLoadKind || d->isStoreKind) && lsq.full()) {
            ++stats_.lsqFullStalls;
            break;
        }

        // Rename: two source lookups, at most one allocation. DISE's
        // dedicated registers never reach renaming (expansion is a
        // decode-stage mechanism); reject them loudly.
        if (d->insn.src(0) >= numArchRegs ||
            d->insn.src(1) >= numArchRegs ||
            d->insn.dst() >= numArchRegs)
            fatal("DISE register reached rename at PC 0x%llx; run "
                  "expanded programs through the emulator",
                  static_cast<unsigned long long>(d->pc));
        RegId s0, s1, dst;
        if (d->isHandle()) {
            s0 = d->insn.ra;
            s1 = d->insn.rb;
            dst = (d->tmpl->outIdx >= 0 && !isZeroReg(d->insn.rc))
                ? d->insn.rc : regNone;
        } else {
            s0 = d->insn.src(0);
            s1 = d->insn.src(1);
            dst = d->insn.writesReg() ? d->insn.dst() : regNone;
        }
        PhysReg np = physNone;
        if (dst != regNone) {
            np = regs.alloc();
            if (np == physNone) {
                ++stats_.regFullStalls;
                break;
            }
        }
        d->srcPhys[0] = rmap.lookup(s0);
        d->srcPhys[1] = rmap.lookup(s1);
        if (dst != regNone) {
            d->archDst = dst;
            d->dstPhys = np;
            d->prevPhys = rmap.rename(dst, np);
            regs.markPending(np);
        }

        // Memory dependence prediction by (handle) PC.
        if (d->isStoreKind)
            d->depStoreSeq = ss.dispatchStore(d->pc, d->seq);
        else if (d->isLoadKind)
            d->depStoreSeq = ss.dispatchLoad(d->pc);

        d->dispatched = true;
        rob.push(d);
        iq.insert(d);
        if (d->isLoadKind)
            lsq.insertLoad(d);
        else if (d->isStoreKind)
            lsq.insertStore(d);
        inflight[d->seq] = d;
        arena.push_back(std::move(fetchQueue.front()));
        fetchQueue.pop_front();
        ++moved;
    }
}

bool
Core::depStoreSatisfied(const DynInst *d) const
{
    if (d->depStoreSeq == 0)
        return true;
    auto it = inflight.find(d->depStoreSeq);
    if (it == inflight.end())
        return true;    // store committed or squashed
    return it->second->memDone;
}

int
Core::neededReadPorts(const DynInst *d) const
{
    // Values still in the bypass network need no register read port.
    int n = 0;
    for (PhysReg s : d->srcPhys) {
        if (s == physNone)
            continue;
        Cycle v = regs.valueAt(s);
        if (v + static_cast<Cycle>(cfg.bypassWindow) < now)
            ++n;
    }
    return n;
}

void
Core::publishDest(DynInst *d, int effLat, Cycle value)
{
    if (d->dstPhys == physNone)
        return;
    Cycle sched = static_cast<Cycle>(
        std::max(effLat, cfg.schedulerCycles));
    regs.setTimes(d->dstPhys, d->issueAt + sched, value);
}

bool
Core::issueSingleton(DynInst *d)
{
    InsnClass cls = d->insn.cls();
    FuKind kind;
    int effLat = opLatency(d->insn.op);
    switch (cls) {
      case InsnClass::IntAlu:
      case InsnClass::CondBranch:
      case InsnClass::UncondBranch:
      case InsnClass::IndirectJump:
        kind = FuKind::IntAlu;
        effLat = 1;
        break;
      case InsnClass::IntMult:
        kind = FuKind::IntMult;
        break;
      case InsnClass::FpAlu:
      case InsnClass::FpDiv:
        kind = FuKind::FpAlu;
        break;
      case InsnClass::Load:
        kind = FuKind::LoadPort;
        effLat = 1 + static_cast<int>(cfg.mem.l1dLat);
        break;
      case InsnClass::Store:
        kind = FuKind::StorePort;
        break;
      case InsnClass::Halt:
      case InsnClass::Nop:
        kind = FuKind::IntAlu;
        break;
      default:
        panic("issueSingleton on a handle");
    }

    // Probe every resource before claiming any: a failed claim after
    // a successful one would waste slots and skew saturation points.
    FuKind slotKind = (kind == FuKind::IntMult) ? FuKind::IntAlu : kind;
    int ports = neededReadPorts(d);
    Cycle completion = now + static_cast<Cycle>(cfg.regReadLat) +
        static_cast<Cycle>(effLat);
    if (fu.readPortsFree() < ports)
        return false;
    if (!fu.canIssueSingleton(slotKind))
        return false;
    if (d->dstPhys != physNone && !fu.writePortFree(completion))
        return false;
    if (!fu.tryIssueSingleton(slotKind))
        return false;
    if (d->dstPhys != physNone)
        fu.claimWritePort(completion);
    fu.claimReadPorts(ports);

    d->issued = true;
    d->issueAt = now;
    iq.remove(d);

    switch (cls) {
      case InsnClass::Load:
        d->memExecAt = now + static_cast<Cycle>(cfg.regReadLat) + 1;
        publishDest(d, effLat, completion);   // optimistic (hit)
        d->completeAt = completion;           // revised on miss
        break;
      case InsnClass::Store:
        d->memExecAt = now + static_cast<Cycle>(cfg.regReadLat) + 1;
        d->completeAt = d->memExecAt;
        break;
      case InsnClass::CondBranch:
      case InsnClass::UncondBranch:
      case InsnClass::IndirectJump:
        d->resolveAt = now + static_cast<Cycle>(cfg.regReadLat) + 1;
        d->completeAt = d->resolveAt;
        publishDest(d, effLat, completion);   // link register
        break;
      default:
        publishDest(d, effLat, completion);
        d->completeAt = completion;
        break;
    }
    return true;
}

bool
Core::issueHandle(DynInst *d)
{
    const MgTemplate &t = *d->tmpl;
    const MgHeader &h = t.hdr;

    int ports = neededReadPorts(d);
    if (fu.readPortsFree() < ports)
        return false;

    Cycle outReady = now + static_cast<Cycle>(cfg.regReadLat) +
        static_cast<Cycle>(h.lat);
    bool intOnly = !h.hasLoad && !h.hasStore;
    if (intOnly) {
        // Whole graph rides one ALU pipeline. Probe, then claim.
        if (cfg.fu.aluPipes == 0)
            fatal("integer mini-graph handle but no ALU pipelines "
                  "configured");
        if (!fu.canIssueAluPipe(h.lat))
            return false;
        if (seqs.freeAt(now) == 0)
            return false;
        if (d->dstPhys != physNone && !fu.writePortFree(outReady))
            return false;
        fu.tryIssueAluPipe(h.lat);
        seqs.tryStart(now, h.totalLat);
    } else {
        // Integer-memory handle: sliding-window scheduler.
        if (!cfg.slidingWindow)
            fatal("integer-memory handle but the sliding-window "
                  "scheduler is disabled");
        if (intMemIssuedThisCycle >= cfg.maxIntMemHandlesPerCycle) {
            ++stats_.intMemIssueConflicts;
            return false;
        }
        if (window.conflicts(h.fubmp, now)) {
            ++stats_.intMemIssueConflicts;
            return false;
        }
        FuKind fu0 = h.fu0;
        bool fu0Pipe = fu0 == FuKind::AluPipe;
        if (fu0 == FuKind::IntMult)
            fu0 = FuKind::IntAlu;
        bool fu0Ok = fu0Pipe ? fu.canIssueAluPipe(h.lat)
                             : fu.canIssueSingleton(fu0);
        if (!fu0Ok)
            return false;
        if (seqs.freeAt(now) == 0)
            return false;
        if (d->dstPhys != physNone && !fu.writePortFree(outReady))
            return false;
        if (fu0Pipe)
            fu.tryIssueAluPipe(h.lat);
        else
            fu.tryIssueSingleton(fu0);
        seqs.tryStart(now, h.totalLat);
        window.reserve(h.fubmp, now);
        ++intMemIssuedThisCycle;
    }

    if (d->dstPhys != physNone)
        fu.claimWritePort(outReady);
    fu.claimReadPorts(ports);

    d->issued = true;
    d->issueAt = now;
    // The scheduler entry is freed by the sequencer at the terminal
    // bank (paper Section 4.1); model by removing at issue + totalLat.
    // We keep it in the IQ container but it no longer competes; remove
    // now and account the extra occupancy via heldUntil bookkeeping.
    iq.remove(d);

    publishDest(d, h.lat, outReady);
    d->completeAt = now + static_cast<Cycle>(cfg.regReadLat) +
        static_cast<Cycle>(h.totalLat);
    if (d->isLoadKind || d->isStoreKind) {
        int b = 0;
        int mi = t.memIdx();
        if (mi >= 0)
            b = t.startCycle[static_cast<size_t>(mi)];
        d->memExecAt = now + static_cast<Cycle>(cfg.regReadLat) +
            static_cast<Cycle>(b);
    }
    if (d->isCtrl)
        d->resolveAt = d->completeAt;
    return true;
}

bool
Core::tryIssueOne(DynInst *d)
{
    // Both interface inputs (or both sources) must be ready: this is
    // exactly the paper's external serialization.
    for (PhysReg s : d->srcPhys) {
        if (s != physNone && !regs.readyForIssue(s, now))
            return false;
    }
    // Store-set ordering: loads wait for their predicted store.
    if (d->isLoadKind && !depStoreSatisfied(d))
        return false;
    // Stores wait like loads do when ordered behind another store.
    if (d->isStoreKind && d->depStoreSeq != 0 && !depStoreSatisfied(d))
        return false;

    if (d->isHandle())
        return issueHandle(d);
    return issueSingleton(d);
}

void
Core::doIssue()
{
    fu.beginCycle(now);
    if (cfg.slidingWindow) {
        // FUBMP reservations made by in-flight integer-memory handles
        // claim their units in the cycle they fire.
        for (FuKind k : {FuKind::IntAlu, FuKind::LoadPort,
                         FuKind::StorePort, FuKind::AluPipe}) {
            int n = window.usedAt(k, now);
            if (n > 0)
                fu.preClaim(k, n);
        }
    }
    intMemIssuedThisCycle = 0;
    // Snapshot the age-ordered candidates first: issuing removes
    // entries from the queue, which would invalidate live iterators.
    std::vector<DynInst *> ready;
    ready.reserve(static_cast<size_t>(iq.size()));
    for (DynInst *d : iq) {
        if (!d->issued && d->dispatchReadyAt <= now)
            ready.push_back(d);
    }
    int issued = 0;
    for (DynInst *d : ready) {
        if (issued >= cfg.issueWidth)
            break;
        if (tryIssueOne(d))
            ++issued;
    }
}

void
Core::executeLoad(DynInst *d)
{
    // Store-to-load forwarding: youngest older store with a known
    // overlapping address supplies the value in one cycle.
    DynInst *fwd = lsq.forwardingStore(d);
    Cycle dataAt;
    if (fwd) {
        dataAt = now + 1;
    } else {
        MemAccess acc = mem.dataAccess(d->rec.memAddr, false, now);
        if (!acc.l1Hit)
            ++stats_.dcacheMisses;
        dataAt = acc.readyAt;
    }

    // The bank/pipeline schedule planned for a hit completing
    // l1dLat cycles after the access (now == d->memExecAt).
    Cycle plannedData = d->memExecAt + cfg.mem.l1dLat;

    if (d->isHandle()) {
        const MgTemplate &t = *d->tmpl;
        int mi = t.memIdx();
        bool terminal = (mi == t.size() - 1);
        if (dataAt > plannedData) {
            Cycle delta = dataAt - plannedData;
            if (!terminal) {
                // Interior-load miss: replay the whole mini-graph
                // (paper Section 4.3). The graph re-executes once the
                // fill returns; everything shifts by the miss delta
                // plus one replay pass through the sequencer.
                ++stats_.handleReplays;
                ++d->handleReplays;
                Cycle shift = delta + static_cast<Cycle>(t.hdr.totalLat);
                d->completeAt += shift;
                if (d->dstPhys != physNone) {
                    regs.setTimes(d->dstPhys,
                                  regs.readyForIssueAt(d->dstPhys) + shift,
                                  regs.valueAt(d->dstPhys) + shift);
                }
                if (d->isCtrl)
                    d->resolveAt = d->completeAt;
                seqs.tryStart(now, t.hdr.totalLat);   // replay walk
            } else {
                // Terminal load miss: behaves like a singleton miss.
                d->completeAt += delta;
                if (t.outIdx == mi && d->dstPhys != physNone) {
                    regs.setTimes(d->dstPhys,
                                  dataAt -
                                      static_cast<Cycle>(cfg.regReadLat),
                                  dataAt);
                }
                if (d->isCtrl)
                    d->resolveAt = d->completeAt;
            }
        }
    } else {
        if (dataAt != plannedData) {
            if (dataAt > plannedData)
                ++stats_.loadReplays;
            d->completeAt = dataAt;
            if (d->dstPhys != physNone) {
                regs.setTimes(d->dstPhys,
                              dataAt - static_cast<Cycle>(cfg.regReadLat),
                              dataAt);
            }
        }
    }
    d->memDone = true;
}

void
Core::executeStore(DynInst *d)
{
    d->memDone = true;
    // Ordering check: a younger load that already ran with an
    // overlapping address used stale data.
    DynInst *viol = lsq.violatingLoad(d);
    if (viol) {
        ++stats_.ordViolations;
        ss.recordViolation(viol->pc, d->pc);
        squashFrom(viol->seq);
    }
}

void
Core::doMemAndResolve()
{
    // Memory operations whose address resolves this cycle. Collect
    // first: violation squashes mutate the queues.
    std::vector<DynInst *> memOps;
    for (DynInst *l : lsq.loadQueue()) {
        if (l->issued && !l->memDone && l->memExecAt <= now)
            memOps.push_back(l);
    }
    for (DynInst *s : lsq.storeQueue()) {
        if (s->issued && !s->memDone && s->memExecAt <= now)
            memOps.push_back(s);
    }
    std::sort(memOps.begin(), memOps.end(),
              [](DynInst *a, DynInst *b) { return a->seq < b->seq; });
    for (DynInst *d : memOps) {
        if (d->squashed)
            continue;
        if (d->isLoadKind)
            executeLoad(d);
        else
            executeStore(d);
    }

    // Control resolution: unblock fetch.
    if (fetchBlockedBySeq != 0) {
        auto it = inflight.find(fetchBlockedBySeq);
        if (it == inflight.end()) {
            fetchBlockedBySeq = 0;   // squashed away
        } else {
            DynInst *b = it->second;
            if (b->issued && b->resolveAt <= now) {
                fetchBlockedBySeq = 0;
                ++stats_.mispredicts;
                bp.countMispredict();
            }
        }
    }
}

void
Core::retire(DynInst *d)
{
    ++stats_.committedSlots;
    stats_.committedWork += static_cast<std::uint64_t>(d->work);
    if (d->isHandle())
        ++stats_.committedHandles;
    if (d->isStoreKind) {
        // The retiring store (or the mini-graph's one store queue
        // entry) drains to the data cache.
        mem.dataAccess(d->rec.memAddr, true, now);
        ss.completeStore(d->pc, d->seq);
    }
    if (d->prevPhys != physNone)
        regs.free(d->prevPhys);
    inflight.erase(d->seq);
}

void
Core::doCommit()
{
    int n = 0;
    while (n < cfg.commitWidth && !rob.empty()) {
        DynInst *d = rob.head();
        bool done = d->issued && d->completeAt <= now &&
            (!d->isLoadKind || d->memDone) &&
            (!d->isStoreKind || d->memDone);
        if (!done)
            break;
        retire(d);
        rob.popHead();
        lsq.remove(d);
        // Handles hold their scheduler entry until the terminal bank;
        // both paths removed the entry at issue, so nothing to do.
        ++n;
        // Reclaim arena storage lazily.
        while (!arena.empty() && arena.front()->seq < d->seq &&
               arena.front()->squashed)
            arena.pop_front();
        while (!arena.empty() && arena.front().get() == d) {
            arena.pop_front();
            break;
        }
    }
}

void
Core::squashFrom(std::uint64_t fromSeq)
{
    // Remove young entries from the back of the ROB, restoring the
    // rename map and freeing their registers; then re-feed their
    // records to fetch via the replay queue.
    std::vector<DynInst *> gone = rob.squashFrom(fromSeq);
    iq.squashFrom(fromSeq);
    lsq.squashFrom(fromSeq);

    // Also squash not-yet-dispatched fetched slots (they are younger
    // than anything in the ROB).
    std::vector<std::unique_ptr<DynInst>> refetch;
    while (!fetchQueue.empty() && fetchQueue.back()->seq >= fromSeq) {
        refetch.push_back(std::move(fetchQueue.back()));
        fetchQueue.pop_back();
    }

    for (DynInst *d : gone) {
        // Youngest first: undo rename in reverse order.
        if (d->archDst != regNone) {
            rmap.restore(d->archDst, d->prevPhys);
            if (d->dstPhys != physNone)
                regs.free(d->dstPhys);
        }
        d->squashed = true;
        inflight.erase(d->seq);
        ++stats_.squashedSlots;
    }

    if (fetchBlockedBySeq >= fromSeq)
        fetchBlockedBySeq = 0;

    // Rebuild replay records oldest-first at the front of the queue.
    // `gone` is youngest-first; fetchQueue leftovers are younger than
    // everything in `gone`... no: fetchQueue holds the youngest slots.
    // Final order must be: gone (reversed) then refetch (reversed).
    for (auto &u : refetch) {
        u->squashed = true;
        ++stats_.squashedSlots;
    }
    std::vector<std::unique_ptr<DynInst>> replay;
    for (auto it = gone.rbegin(); it != gone.rend(); ++it) {
        auto fresh = std::make_unique<DynInst>();
        fresh->pc = (*it)->pc;
        fresh->insn = (*it)->insn;
        fresh->rec = (*it)->rec;
        fresh->tmpl = (*it)->tmpl;
        fresh->work = (*it)->work;
        fresh->isLoadKind = (*it)->isLoadKind;
        fresh->isStoreKind = (*it)->isStoreKind;
        fresh->isCtrl = (*it)->isCtrl;
        replay.push_back(std::move(fresh));
    }
    for (auto it = refetch.rbegin(); it != refetch.rend(); ++it) {
        auto fresh = std::make_unique<DynInst>();
        fresh->pc = (*it)->pc;
        fresh->insn = (*it)->insn;
        fresh->rec = (*it)->rec;
        fresh->tmpl = (*it)->tmpl;
        fresh->work = (*it)->work;
        fresh->isLoadKind = (*it)->isLoadKind;
        fresh->isStoreKind = (*it)->isStoreKind;
        fresh->isCtrl = (*it)->isCtrl;
        replay.push_back(std::move(fresh));
    }
    for (auto it = replay.rbegin(); it != replay.rend(); ++it)
        replayQueue.push_front(std::move(*it));

    // Refetch restarts after the squash resolves (next cycle) with a
    // cold line tracker.
    fetchStalledUntil = std::max(fetchStalledUntil, now + 1);
    lastFetchLine = ~Addr(0);
}

CoreStats
Core::run(std::uint64_t maxWork)
{
    stats_ = CoreStats();
    for (;;) {
        doMemAndResolve();
        doCommit();
        doIssue();
        doDispatch();
        doFetch();
        ++now;
        stats_.cycles = now;
        if (stats_.committedWork >= maxWork)
            break;
        if (oracleDone && replayQueue.empty() && fetchQueue.empty() &&
            rob.empty())
            break;
        if (now > (1ull << 40))
            panic("simulation did not terminate");
    }
    return stats_;
}

} // namespace mg
