#include "uarch/core.hh"

#include <algorithm>

#include "common/failsoft.hh"
#include "common/logging.hh"

namespace mg {

namespace {

/** Smallest power of two >= @p want (in-flight ring sizing). */
std::size_t
ringSize(std::size_t want)
{
    std::size_t s = 64;
    while (s < want)
        s <<= 1;
    return s;
}

} // namespace

Core::Core(const Program &p, const MgTable *t, const CoreConfig &c)
    : prog(p), mgt(t), cfg(c),
      emu(p, t),
      mem(c.mem),
      bp(c.bp),
      ss(c.ss),
      regs(c.physRegs, numArchRegs),
      rob(c.robSize),
      iq(c.iqSize, c.physRegs),
      lsq(c.lsqSize),
      fu(c.fu),
      seqs(c.sequencers),
      window(WindowResources{c.fu.intAlus, 1, c.fu.loadPorts,
                             c.fu.storePorts, c.fu.aluPipes}),
      slab(static_cast<std::size_t>(c.robSize + c.fetchQueueSize) + 8),
      replayQueue(static_cast<std::size_t>(c.robSize + c.fetchQueueSize) + 8),
      fetchQueue(static_cast<std::size_t>(c.fetchQueueSize) + 1)
{
    // Live seqs span at most the ROB contents; 4x slack absorbs the
    // seq-number churn of squash/refetch storms before a (rare,
    // self-healing) ring growth is needed.
    std::size_t n = ringSize(
        4 * static_cast<std::size_t>(c.robSize + c.fetchQueueSize));
    window_.assign(n, nullptr);
    windowMask = n - 1;
    std::uint32_t lb = c.mem.l1i.lineBytes;
    if (lb != 0 && (lb & (lb - 1)) == 0) {
        fetchLineShift = 0;
        while ((1u << fetchLineShift) < lb)
            ++fetchLineShift;
    }
    memOps.reserve(static_cast<std::size_t>(c.lsqSize));
    pendingMem.reserve(static_cast<std::size_t>(c.lsqSize));
    replayScratch.reserve(
        static_cast<std::size_t>(c.robSize + c.fetchQueueSize));
}

Addr
Core::lineOf(Addr pc) const
{
    return fetchLineShift >= 0 ? pc >> fetchLineShift
                               : pc / cfg.mem.l1i.lineBytes;
}

void
Core::windowInsert(DynInst *d)
{
    for (;;) {
        DynInst *&slot = window_[d->seq & windowMask];
        if (!slot || !slot->inWindow || slot->seq == d->seq) {
            slot = d;
            return;
        }
        // A live entry aliases this slot: double the ring and
        // re-register the window contents (exactly the ROB), growing
        // again if any live pair still aliases at the new size.
        bool clean;
        do {
            std::size_t n = (windowMask + 1) * 2;
            std::vector<DynInst *> bigger(n, nullptr);
            window_.swap(bigger);
            windowMask = n - 1;
            clean = true;
            for (DynInst *r : rob) {
                DynInst *&s = window_[r->seq & windowMask];
                if (s && s->inWindow && s->seq != r->seq) {
                    clean = false;
                    break;
                }
                s = r;
            }
        } while (!clean);
    }
}

DynInst *
Core::findInWindow(std::uint64_t seq) const
{
    DynInst *d = window_[seq & windowMask];
    return (d && d->inWindow && d->seq == seq) ? d : nullptr;
}

DynInst *
Core::pullOracle()
{
    // Replay queue first (squash recovery), then the live oracle.
    if (!replayQueue.empty()) {
        DynInst *d = replayQueue.front();
        replayQueue.pop_front();
        return d;
    }
    if (oracleDone || draining)
        return nullptr;
    // The oracle steps straight into the slot's record: no
    // intermediate ExecRecord copy on the per-instruction path.
    DynInst *d = slab.alloc();
    for (;;) {
        bool more = emu.step(&d->rec);
        if (d->rec.insn == nullptr) {
            oracleDone = true;
            slab.release(d);
            return nullptr;
        }
        if (d->rec.padNop) {
            // Pad nops are squashed pre-decode: they consume no slot
            // but still advance the fetch PC (their icache footprint
            // is modelled in doFetch via the line walk).
            if (!more) {
                oracleDone = true;
                slab.release(d);
                return nullptr;
            }
            continue;
        }
        if (ffShadow)
            ffAliasScan(d->rec);    // early-outs with no dormant edges
        d->pc = d->rec.pc;
        d->insn = *d->rec.insn;
        d->cls = d->rec.cls;        // classified once, at predecode
        d->rec.insn = nullptr;      // records outlive emulator views
        d->memAddr = d->rec.memAddr;    // hot copies for the LSQ scans
        d->memBytes = d->rec.memBytes;
        if (d->insn.isHandle()) {
            d->tmpl = &mgt->at(static_cast<MgId>(d->insn.imm));
            d->work = d->tmpl->size();
            d->isLoadKind = d->tmpl->hdr.hasLoad;
            d->isStoreKind = d->tmpl->hdr.hasStore;
            d->isCtrl = d->tmpl->hdr.endsInBranch;
        } else {
            d->work = 1;
            d->isLoadKind = d->cls == InsnClass::Load;
            d->isStoreKind = d->cls == InsnClass::Store;
            d->isCtrl = d->cls == InsnClass::CondBranch ||
                d->cls == InsnClass::UncondBranch ||
                d->cls == InsnClass::IndirectJump;
            // Precompute the issue-slot kind and effective latency the
            // select loop needs, once per slot instead of per attempt.
            switch (d->cls) {
              case InsnClass::IntAlu:
              case InsnClass::CondBranch:
              case InsnClass::UncondBranch:
              case InsnClass::IndirectJump:
                d->selFu = FuKind::IntAlu;
                d->selLat = 1;
                break;
              case InsnClass::IntMult:
                // Competes for the grouped integer slots (the window
                // lane distinction matters only inside mini-graphs).
                d->selFu = FuKind::IntAlu;
                d->selLat = static_cast<std::int16_t>(
                    opLatency(d->insn.op));
                break;
              case InsnClass::FpAlu:
              case InsnClass::FpDiv:
                d->selFu = FuKind::FpAlu;
                d->selLat = static_cast<std::int16_t>(
                    opLatency(d->insn.op));
                break;
              case InsnClass::Load:
                d->selFu = FuKind::LoadPort;
                d->selLat = static_cast<std::int16_t>(
                    1 + cfg.mem.l1dLat);
                break;
              case InsnClass::Store:
                d->selFu = FuKind::StorePort;
                d->selLat = static_cast<std::int16_t>(
                    opLatency(d->insn.op));
                break;
              default:
                d->selFu = FuKind::IntAlu;
                d->selLat = static_cast<std::int16_t>(
                    opLatency(d->insn.op));
                break;
            }
        }
        if (!more)
            oracleDone = true;
        return d;
    }
}

void
Core::predictControl(DynInst *d)
{
    ++stats_.branches;
    bool actualTaken = d->rec.taken;
    Addr actualTarget = d->rec.nextPc;
    InsnClass cls = d->cls;
    bool condLike = cls == InsnClass::CondBranch ||
        (d->isHandle() && d->tmpl->hdr.endsInBranch);

    if (condLike) {
        bool predTaken = bp.predictDirection(d->pc);
        bp.updateDirection(d->pc, actualTaken);
        if (predTaken != actualTaken) {
            d->mispredicted = true;
        } else if (actualTaken) {
            Addr predTarget = bp.predictTarget(d->pc);
            if (predTarget != actualTarget) {
                // Direct target: computable at decode (misfetch).
                fetchStalledUntil = std::max(
                    fetchStalledUntil,
                    now + static_cast<Cycle>(cfg.misfetchPenalty));
                ++stats_.misfetches;
            }
            bp.updateTarget(d->pc, actualTarget);
        }
        return;
    }

    switch (d->insn.op) {
      case Op::BR:
      case Op::BSR: {
          if (d->insn.op == Op::BSR)
              bp.pushReturn(d->pc + insnBytes);
          Addr predTarget = bp.predictTarget(d->pc);
          if (predTarget != actualTarget) {
              fetchStalledUntil = std::max(
                  fetchStalledUntil,
                  now + static_cast<Cycle>(cfg.misfetchPenalty));
              ++stats_.misfetches;
              bp.updateTarget(d->pc, actualTarget);
          }
          return;
      }
      case Op::RET: {
          Addr predTarget = bp.popReturn();
          if (predTarget != actualTarget)
              d->mispredicted = true;
          return;
      }
      case Op::JSR:
      case Op::JMP: {
          if (d->insn.op == Op::JSR)
              bp.pushReturn(d->pc + insnBytes);
          Addr predTarget = bp.predictTarget(d->pc);
          if (predTarget != actualTarget)
              d->mispredicted = true;
          bp.updateTarget(d->pc, actualTarget);
          return;
      }
      default:
        return;
    }
}

void
Core::doFetch()
{
    if (fetchBlockedBySeq != 0 || now < fetchStalledUntil)
        return;

    int fetched = 0;
    int linesTouched = 0;
    while (fetched < cfg.fetchWidth &&
           static_cast<int>(fetchQueue.size()) < cfg.fetchQueueSize) {
        DynInst *d = pullOracle();
        if (!d)
            return;

        // Instruction cache: touch the line; charge misses.
        Addr line = lineOf(d->pc);
        if (line != lastFetchLine) {
            ++linesTouched;
            if (linesTouched > 2) {
                // Third line this cycle: defer to next cycle.
                replayQueue.push_front(d);
                return;
            }
            MemAccess acc = mem.instAccess(d->pc, now);
            lastFetchLine = line;
            if (!acc.l1Hit) {
                ++stats_.icacheMisses;
                fetchStalledUntil = std::max(fetchStalledUntil,
                                             acc.readyAt);
                replayQueue.push_front(d);
                return;
            }
        }

        d->seq = nextSeq++;
        d->fetchAt = now;
        d->dispatchReadyAt = now +
            static_cast<Cycle>(cfg.frontendDepth);
        ++stats_.fetchedSlots;
        ++fetched;

        bool taken = false;
        if (d->isCtrl) {
            predictControl(d);
            taken = d->rec.taken;
            if (d->mispredicted)
                fetchBlockedBySeq = d->seq;
        }
        fetchQueue.push_back(d);
        if (taken || fetchBlockedBySeq != 0)
            return;   // taken branches end the fetch cycle
    }
}

RegId
Core::renameDstOf(const DynInst *d) const
{
    // Class-driven mirror of Instruction::dst()/writesReg(), using the
    // predecoded class instead of re-deriving it per lookup.
    RegId dd;
    switch (d->cls) {
      case InsnClass::Handle:
        return (d->tmpl->outIdx >= 0 && !isZeroReg(d->insn.rc))
            ? d->insn.rc : regNone;
      case InsnClass::IntAlu:
      case InsnClass::IntMult:
      case InsnClass::FpAlu:
      case InsnClass::FpDiv:
        dd = d->insn.rc;
        break;
      case InsnClass::Load:
      case InsnClass::UncondBranch:
      case InsnClass::IndirectJump:
        dd = d->insn.ra;
        break;
      default:
        return regNone;
    }
    return (dd != regNone && !isZeroReg(dd)) ? dd : regNone;
}

void
Core::doDispatch()
{
    int moved = 0;
    while (moved < cfg.renameWidth && !fetchQueue.empty()) {
        DynInst *d = fetchQueue.front();
        if (d->dispatchReadyAt > now)
            break;
        if (rob.full()) {
            ++stats_.robFullStalls;
            break;
        }
        if (iq.full()) {
            ++stats_.iqFullStalls;
            break;
        }
        if ((d->isLoadKind || d->isStoreKind) && lsq.full()) {
            ++stats_.lsqFullStalls;
            break;
        }

        // Rename: two source lookups, at most one allocation. DISE's
        // dedicated registers never reach renaming (expansion is a
        // decode-stage mechanism); reject them loudly. (The raw-field
        // guard subsumes the per-slot src()/dst() probes: unused
        // operand fields of well-formed instructions hold regNone.)
        if (d->insn.ra >= numArchRegs || d->insn.rb >= numArchRegs ||
            d->insn.rc >= numArchRegs)
            fatal("DISE register reached rename at PC 0x%llx; run "
                  "expanded programs through the emulator",
                  static_cast<unsigned long long>(d->pc));
        // Class-driven mirror of Instruction::src(0)/src(1).
        RegId s0 = regNone, s1 = regNone;
        switch (d->cls) {
          case InsnClass::IntAlu:
          case InsnClass::IntMult:
          case InsnClass::FpAlu:
          case InsnClass::FpDiv:
            s0 = d->insn.ra;
            s1 = d->insn.useImm ? regNone : d->insn.rb;
            break;
          case InsnClass::Load:
            s0 = d->insn.rb;
            break;
          case InsnClass::Store:
            s0 = d->insn.rb;
            s1 = d->insn.ra;
            break;
          case InsnClass::CondBranch:
            s0 = d->insn.ra;
            break;
          case InsnClass::IndirectJump:
            s0 = d->insn.rb;
            break;
          case InsnClass::Handle:
            s0 = d->insn.ra;
            s1 = d->insn.rb;
            break;
          default:
            break;
        }
        RegId dst = renameDstOf(d);
        PhysReg np = physNone;
        if (dst != regNone) {
            np = regs.alloc();
            if (np == physNone) {
                ++stats_.regFullStalls;
                break;
            }
        }
        d->srcPhys[0] = rmap.lookup(s0);
        d->srcPhys[1] = rmap.lookup(s1);
        if (dst != regNone) {
            d->archDst = dst;
            d->dstPhys = np;
            d->prevPhys = rmap.rename(dst, np);
            regs.markPending(np);
        }

        d->dispatchedAt = now;
        if (trace_) {
            // Observational producer tracking: the writer table maps
            // physical registers to the seq that last renamed them, so
            // the retired trace carries register dependence edges. A
            // squashed producer's entry is simply overwritten when the
            // register is reallocated; it never retires, and the
            // analyzer drops edges whose producer seq is absent.
            for (int s = 0; s < 2; ++s) {
                PhysReg p = d->srcPhys[s];
                d->traceSrcSeq[s] =
                    p != physNone &&
                        static_cast<std::size_t>(p) < physWriterSeq_.size()
                    ? physWriterSeq_[p]
                    : 0;
            }
            if (d->dstPhys != physNone &&
                static_cast<std::size_t>(d->dstPhys) <
                    physWriterSeq_.size())
                physWriterSeq_[d->dstPhys] = d->seq;
        }

        // Memory dependence prediction by (handle) PC.
        if (d->isStoreKind)
            d->depStoreSeq = ss.dispatchStore(d->pc, d->seq);
        else if (d->isLoadKind)
            d->depStoreSeq = ss.dispatchLoad(d->pc);

        d->dispatched = true;
        d->inWindow = true;
        rob.push(d);
        windowInsert(d);
        DynInst *depStore = d->depStoreSeq
            ? findInWindow(d->depStoreSeq) : nullptr;
        iq.insert(d, regs, depStore, now);
        if (d->isLoadKind)
            lsq.insertLoad(d);
        else if (d->isStoreKind)
            lsq.insertStore(d);
        fetchQueue.pop_front();
        ++moved;
    }
}

bool
Core::depStoreSatisfied(const DynInst *d) const
{
    if (d->depStoreSeq == 0)
        return true;
    DynInst *s = findInWindow(d->depStoreSeq);
    if (!s)
        return true;    // store committed or squashed
    return s->memDone;
}

void
Core::publishDest(DynInst *d, int effLat, Cycle value)
{
    if (d->dstPhys == physNone)
        return;
    Cycle sched = static_cast<Cycle>(
        std::max(effLat, cfg.schedulerCycles));
    regs.setTimes(d->dstPhys, d->issueAt + sched, value);
    iq.wakeReg(d->dstPhys, regs, now);
}

bool
Core::issueSingleton(DynInst *d, int ports)
{
    InsnClass cls = d->cls;
    // Slot kind and effective latency are precomputed at fetch
    // (pullOracle); read ports were gathered by the select loop.
    FuKind slotKind = d->selFu;
    int effLat = d->selLat;

    // Probe every resource before claiming any: a failed claim after
    // a successful one would waste slots and skew saturation points.
    Cycle completion = now + static_cast<Cycle>(cfg.regReadLat) +
        static_cast<Cycle>(effLat);
    if (fu.readPortsFree() < ports)
        return false;
    if (!fu.canIssueSingleton(slotKind))
        return false;
    if (d->dstPhys != physNone && !fu.writePortFree(completion))
        return false;
    fu.claimSingleton(slotKind);
    if (d->dstPhys != physNone)
        fu.claimWritePort(completion);
    fu.claimReadPorts(ports);

    d->issued = true;
    d->issueAt = now;
    iq.markIssued(d);

    switch (cls) {
      case InsnClass::Load:
        d->memExecAt = now + static_cast<Cycle>(cfg.regReadLat) + 1;
        publishDest(d, effLat, completion);   // optimistic (hit)
        d->completeAt = completion;           // revised on miss
        pendingMem.push_back({d, d->seq});
        break;
      case InsnClass::Store:
        d->memExecAt = now + static_cast<Cycle>(cfg.regReadLat) + 1;
        d->completeAt = d->memExecAt;
        pendingMem.push_back({d, d->seq});
        break;
      case InsnClass::CondBranch:
      case InsnClass::UncondBranch:
      case InsnClass::IndirectJump:
        d->resolveAt = now + static_cast<Cycle>(cfg.regReadLat) + 1;
        d->completeAt = d->resolveAt;
        publishDest(d, effLat, completion);   // link register
        break;
      default:
        publishDest(d, effLat, completion);
        d->completeAt = completion;
        break;
    }
    return true;
}

bool
Core::issueHandle(DynInst *d, int ports)
{
    const MgTemplate &t = *d->tmpl;
    const MgHeader &h = t.hdr;

    if (fu.readPortsFree() < ports)
        return false;

    Cycle outReady = now + static_cast<Cycle>(cfg.regReadLat) +
        static_cast<Cycle>(h.lat);
    bool intOnly = !h.hasLoad && !h.hasStore;
    if (intOnly) {
        // Whole graph rides one ALU pipeline. Probe, then claim.
        if (cfg.fu.aluPipes == 0)
            fatal("integer mini-graph handle but no ALU pipelines "
                  "configured");
        if (!fu.canIssueAluPipe(h.lat))
            return false;
        if (seqs.freeAt(now) == 0)
            return false;
        if (d->dstPhys != physNone && !fu.writePortFree(outReady))
            return false;
        fu.tryIssueAluPipe(h.lat);
        seqs.tryStart(now, h.totalLat);
    } else {
        // Integer-memory handle: sliding-window scheduler.
        if (!cfg.slidingWindow)
            fatal("integer-memory handle but the sliding-window "
                  "scheduler is disabled");
        if (intMemIssuedThisCycle >= cfg.maxIntMemHandlesPerCycle) {
            ++stats_.intMemIssueConflicts;
            return false;
        }
        if (window.conflicts(h.packed, now)) {
            ++stats_.intMemIssueConflicts;
            return false;
        }
        FuKind fu0 = h.fu0;
        bool fu0Pipe = fu0 == FuKind::AluPipe;
        if (fu0 == FuKind::IntMult)
            fu0 = FuKind::IntAlu;
        bool fu0Ok = fu0Pipe ? fu.canIssueAluPipe(h.lat)
                             : fu.canIssueSingleton(fu0);
        if (!fu0Ok)
            return false;
        if (seqs.freeAt(now) == 0)
            return false;
        if (d->dstPhys != physNone && !fu.writePortFree(outReady))
            return false;
        if (fu0Pipe)
            fu.tryIssueAluPipe(h.lat);
        else
            fu.claimSingleton(fu0);
        seqs.tryStart(now, h.totalLat);
        window.reserve(h.packed, now);
        ++intMemIssuedThisCycle;
    }

    if (d->dstPhys != physNone)
        fu.claimWritePort(outReady);
    fu.claimReadPorts(ports);

    d->issued = true;
    d->issueAt = now;
    // The scheduler entry is freed by the sequencer at the terminal
    // bank (paper Section 4.1); model by removing at issue + totalLat.
    // We keep it in the IQ container but it no longer competes; remove
    // now and account the extra occupancy via heldUntil bookkeeping.
    iq.markIssued(d);

    publishDest(d, h.lat, outReady);
    d->completeAt = now + static_cast<Cycle>(cfg.regReadLat) +
        static_cast<Cycle>(h.totalLat);
    if (d->isLoadKind || d->isStoreKind) {
        int b = 0;
        int mi = t.memIdx();
        if (mi >= 0)
            b = t.startCycle[static_cast<size_t>(mi)];
        d->memExecAt = now + static_cast<Cycle>(cfg.regReadLat) +
            static_cast<Cycle>(b);
        pendingMem.push_back({d, d->seq});
    }
    if (d->isCtrl)
        d->resolveAt = d->completeAt;
    return true;
}

void
Core::doIssue()
{
    // Select over the ready set only (age-ordered). Entries whose
    // operand times moved later since their wakeup re-park quietly —
    // exactly the entries the exhaustive scan would have skipped with
    // no side effects — so attempted candidates, and every stat they
    // bump, match the scan bit for bit.
    iq.beginSelect(now);
    intMemIssuedThisCycle = 0;
    if (!iq.readyFirst())
        return;   // nothing can attempt: skip the per-cycle FU setup

    fu.beginCycle(now);
    if (cfg.slidingWindow) {
        // FUBMP reservations made by in-flight integer-memory handles
        // claim their units in the cycle they fire.
        int res[4];
        window.usedNow(now, res);
        fu.preClaimUsed(res);
    }

    // Chunked gather/issue over the ready chain, in age order. The
    // gather phase snapshots a chunk of candidates into structure-of-
    // arrays scratch, batching their scoreboard reads — operand issue
    // readiness and bypass-window read-port needs — in one pass over
    // the register timestamps instead of interleaving probes with FU
    // claims; the issue phase then attempts the gathered entries.
    // Chunking keeps the overscan bounded: a cycle that fills its
    // issue slots in the first few candidates never walks (or probes)
    // the rest of a long ready chain.
    //
    // The snapshot is bit-identical to live per-attempt probing:
    // issuing publishes destination times of at least now + 1
    // (sched >= schedulerCycles >= 1), so mid-select wakeups only
    // ever park (never extend the ready chain at now), and published
    // registers were pending (not ready, not bypassable) before — no
    // gathered bit can differ from what an interleaved probe would
    // have read. Attempts unlink only their own entry, so the chunk
    // snapshot and the cursor into the chain both stay valid.
    constexpr int chunk = 16;
    DynInst *gInst[chunk];
    std::uint8_t gReady[chunk];
    std::uint8_t gPorts[chunk];
    const Cycle bypass = static_cast<Cycle>(cfg.bypassWindow);
    DynInst *cursor = iq.readyFirst();
    int issued = 0;
    while (cursor && issued < cfg.issueWidth) {
        int gn = 0;
        for (DynInst *d = cursor; gn < chunk && d; d = d->rdyNext) {
            bool srcsReady = true;
            int ports = 0;
            for (PhysReg s : d->srcPhys) {
                if (s == physNone)
                    continue;
                if (!regs.readyForIssue(s, now)) {
                    srcsReady = false;
                    break;
                }
                // Values in the bypass network need no read port.
                if (regs.valueAt(s) + bypass < now)
                    ++ports;
            }
            gInst[gn] = d;
            gReady[gn] = srcsReady;
            gPorts[gn] = static_cast<std::uint8_t>(ports);
            ++gn;
            cursor = d->rdyNext;   // first ungathered entry
        }

        for (int i = 0; i < gn && issued < cfg.issueWidth; ++i) {
            DynInst *d = gInst[i];

            // Both interface inputs (or both sources) must be ready:
            // this is exactly the paper's external serialization.
            if (!gReady[i]) {
                iq.requeueNotReady(d, regs, now);
                continue;
            }
            // Store-set ordering: loads (and ordered stores) wait for
            // their predicted store.
            if ((d->isLoadKind || d->isStoreKind) &&
                d->depStoreSeq != 0) {
                DynInst *st = findInWindow(d->depStoreSeq);
                if (st && !st->memDone) {
                    iq.requeueDepWait(d, st);
                    continue;
                }
            }

            if (d->isHandle() ? issueHandle(d, gPorts[i])
                              : issueSingleton(d, gPorts[i]))
                ++issued;
        }
    }
}

void
Core::executeLoad(DynInst *d)
{
    // Store-to-load forwarding: youngest older store with a known
    // overlapping address supplies the value in one cycle.
    DynInst *fwd = lsq.forwardingStore(d);
    Cycle dataAt;
    if (fwd) {
        dataAt = now + 1;
    } else {
        MemAccess acc = mem.dataAccess(d->memAddr, false, now);
        if (!acc.l1Hit)
            ++stats_.dcacheMisses;
        dataAt = acc.readyAt;
    }

    // The bank/pipeline schedule planned for a hit completing
    // l1dLat cycles after the access (now == d->memExecAt).
    Cycle plannedData = d->memExecAt + cfg.mem.l1dLat;

    if (d->isHandle()) {
        const MgTemplate &t = *d->tmpl;
        int mi = t.memIdx();
        bool terminal = (mi == t.size() - 1);
        if (dataAt > plannedData) {
            Cycle delta = dataAt - plannedData;
            if (!terminal) {
                // Interior-load miss: replay the whole mini-graph
                // (paper Section 4.3). The graph re-executes once the
                // fill returns; everything shifts by the miss delta
                // plus one replay pass through the sequencer.
                ++stats_.handleReplays;
                ++d->handleReplays;
                Cycle shift = delta + static_cast<Cycle>(t.hdr.totalLat);
                d->completeAt += shift;
                if (d->dstPhys != physNone) {
                    regs.setTimes(d->dstPhys,
                                  regs.readyForIssueAt(d->dstPhys) + shift,
                                  regs.valueAt(d->dstPhys) + shift);
                    iq.rewakeReg(d->dstPhys, regs, now);
                }
                if (d->isCtrl)
                    d->resolveAt = d->completeAt;
                seqs.tryStart(now, t.hdr.totalLat);   // replay walk
            } else {
                // Terminal load miss: behaves like a singleton miss.
                d->completeAt += delta;
                if (t.outIdx == mi && d->dstPhys != physNone) {
                    regs.setTimes(d->dstPhys,
                                  dataAt -
                                      static_cast<Cycle>(cfg.regReadLat),
                                  dataAt);
                    iq.rewakeReg(d->dstPhys, regs, now);
                }
                if (d->isCtrl)
                    d->resolveAt = d->completeAt;
            }
        }
    } else {
        if (dataAt != plannedData) {
            if (dataAt > plannedData)
                ++stats_.loadReplays;
            d->completeAt = dataAt;
            if (d->dstPhys != physNone) {
                regs.setTimes(d->dstPhys,
                              dataAt - static_cast<Cycle>(cfg.regReadLat),
                              dataAt);
                // A forwarded load completes *earlier* than published:
                // its parked consumers must be re-parked earlier too.
                iq.rewakeReg(d->dstPhys, regs, now);
            }
        }
    }
    d->memDone = true;
    if (!d->depWaiters.empty())
        iq.wakeDepStore(d, regs, now);
}

void
Core::executeStore(DynInst *d)
{
    d->memDone = true;
    if (!d->depWaiters.empty())
        iq.wakeDepStore(d, regs, now);
    // Ordering check: a younger load that already ran with an
    // overlapping address used stale data.
    DynInst *viol = lsq.violatingLoad(d);
    if (viol) {
        ++stats_.ordViolations;
        ss.recordViolation(viol->pc, d->pc);
        if (ffShadow)
            ffRecordViolation(viol->pc, d->pc);
        squashFrom(viol->seq);
    }
}

void
Core::doMemAndResolve()
{
    // Memory operations whose address resolves this cycle, from the
    // issued-pending list (compacting resolved and squashed entries
    // as we go). Collect (entry, seq) first: violation squashes
    // mutate the queues and recycle squashed entries, which a seq
    // mismatch then reveals.
    memOps.clear();
    std::size_t keep = 0;
    bool compact = false;
    for (std::size_t i = 0; i < pendingMem.size(); ++i) {
        const auto &[d, seq] = pendingMem[i];
        if (d->seq != seq || d->memDone) {
            compact = true;   // squashed / already resolved: drop
            continue;
        }
        if (d->memExecAt <= now)
            memOps.push_back(pendingMem[i]);
        if (compact)
            pendingMem[keep] = pendingMem[i];
        ++keep;
    }
    if (compact)
        pendingMem.resize(keep);
    if (memOps.size() > 1) {
        std::sort(memOps.begin(), memOps.end(),
                  [](const std::pair<DynInst *, std::uint64_t> &a,
                     const std::pair<DynInst *, std::uint64_t> &b) {
                      return a.second < b.second;
                  });
    }
    for (const auto &[d, seq] : memOps) {
        if (d->seq != seq)
            continue;   // squashed (and possibly recycled) mid-loop
        if (d->isLoadKind)
            executeLoad(d);
        else
            executeStore(d);
    }

    // Control resolution: unblock fetch.
    if (fetchBlockedBySeq != 0) {
        DynInst *b = findInWindow(fetchBlockedBySeq);
        if (!b) {
            fetchBlockedBySeq = 0;   // squashed away
        } else if (b->issued && b->resolveAt <= now) {
            fetchBlockedBySeq = 0;
            ++stats_.mispredicts;
            bp.countMispredict();
        }
    }
}

void
Core::traceRetire(const DynInst *d)
{
    auto delta = [&](Cycle at) -> std::uint32_t {
        if (at <= d->fetchAt)
            return 0;
        Cycle v = at - d->fetchAt;
        return v > 0xffffffffull ? 0xffffffffu
                                 : static_cast<std::uint32_t>(v);
    };
    TraceEvent e;
    e.seq = d->seq;
    e.pc = d->pc;
    e.fetchAt = d->fetchAt;
    e.dispatchD = delta(d->dispatchedAt);
    e.issueD = delta(d->issueAt);
    e.completeD = delta(d->completeAt);
    e.commitD = delta(now);
    e.memExecD = (d->isLoadKind || d->isStoreKind)
        ? delta(d->memExecAt) : 0;
    e.srcSeq[0] = d->traceSrcSeq[0];
    e.srcSeq[1] = d->traceSrcSeq[1];
    e.depStoreSeq = d->depStoreSeq;
    e.work = static_cast<std::uint16_t>(
        std::min(d->work, 0xffff));
    e.handleReplays = static_cast<std::uint16_t>(
        std::min(d->handleReplays, 0xffff));
    e.cls = d->cls;
    e.flags = static_cast<std::uint8_t>(
        (d->isLoadKind ? TraceEvent::FlagLoad : 0) |
        (d->isStoreKind ? TraceEvent::FlagStore : 0) |
        (d->isCtrl ? TraceEvent::FlagCtrl : 0) |
        (d->isHandle() ? TraceEvent::FlagHandle : 0) |
        (d->mispredicted ? TraceEvent::FlagMispredicted : 0) |
        (d->isCtrl && d->rec.taken ? TraceEvent::FlagTaken : 0));
    trace_->push(e);
}

void
Core::retire(DynInst *d)
{
    if (trace_)
        traceRetire(d);
    ++stats_.committedSlots;
    stats_.committedWork += static_cast<std::uint64_t>(d->work);
    if (d->isHandle())
        ++stats_.committedHandles;
    if (d->isStoreKind) {
        // The retiring store (or the mini-graph's one store queue
        // entry) drains to the data cache.
        mem.dataAccess(d->memAddr, true, now);
        ss.completeStore(d->pc, d->seq);
    }
    if (d->prevPhys != physNone)
        regs.free(d->prevPhys);
    d->inWindow = false;
}

void
Core::doCommit()
{
    int n = 0;
    while (n < cfg.commitWidth && !rob.empty()) {
        DynInst *d = rob.head();
        bool done = d->issued && d->completeAt <= now &&
            (!d->isLoadKind || d->memDone) &&
            (!d->isStoreKind || d->memDone);
        if (!done)
            break;
        retire(d);
        rob.popHead();
        if (d->isLoadKind || d->isStoreKind)
            lsq.remove(d);
        // Handles hold their scheduler entry until the terminal bank;
        // both paths removed the entry at issue, so nothing to do.
        ++n;
        // Eager reclamation: the slot is free the moment it retires.
        slab.release(d);
    }
}

void
Core::squashFrom(std::uint64_t fromSeq)
{
    // Remove young entries from the back of the ROB, restoring the
    // rename map and freeing their registers; then reset the slots in
    // place (no copies, no allocation) and re-feed them to fetch via
    // the replay queue.
    std::vector<DynInst *> gone = rob.squashFrom(fromSeq);
    iq.squashFrom(fromSeq);
    lsq.squashFrom(fromSeq);

    // Also squash not-yet-dispatched fetched slots (they are younger
    // than anything in the ROB), youngest first.
    replayScratch.clear();
    std::size_t nGone = gone.size();
    for (DynInst *d : gone) {
        // Youngest first: undo rename in reverse order.
        if (d->archDst != regNone) {
            rmap.restore(d->archDst, d->prevPhys);
            if (d->dstPhys != physNone)
                regs.free(d->dstPhys);
        }
        d->inWindow = false;
        replayScratch.push_back(d);
        ++stats_.squashedSlots;
    }
    while (!fetchQueue.empty() && fetchQueue.back()->seq >= fromSeq) {
        replayScratch.push_back(fetchQueue.back());
        fetchQueue.pop_back();
        ++stats_.squashedSlots;
    }

    if (fetchBlockedBySeq >= fromSeq)
        fetchBlockedBySeq = 0;

    // Rebuild the replay stream oldest-first at the front of the
    // queue: the ROB entries (collected youngest-first) reversed,
    // then the fetch-queue leftovers (youngest-first) reversed.
    // Resetting *before* any push keeps stale references (this
    // cycle's memOps, wakeup records) detectably dead via seq 0.
    for (DynInst *d : replayScratch)
        d->resetForReplay();
    // Both groups sit youngest-first in the scratch; pushing each to
    // the front youngest-first leaves its oldest entry frontmost.
    for (std::size_t i = nGone; i < replayScratch.size(); ++i)
        replayQueue.push_front(replayScratch[i]);
    for (std::size_t i = 0; i < nGone; ++i)
        replayQueue.push_front(replayScratch[i]);

    // Refetch restarts after the squash resolves (next cycle) with a
    // cold line tracker.
    fetchStalledUntil = std::max(fetchStalledUntil, now + 1);
    lastFetchLine = ~Addr(0);
}

Cycle
Core::idleSkipTarget(std::uint64_t **stallCounter)
{
    *stallCounter = nullptr;

    // Anything ready (or waking) in the scheduler issues or counts
    // conflicts this cycle.
    if (!iq.quietAt(now))
        return 0;

    Cycle next = ~Cycle(0);
    bool have = false;
    auto event = [&](Cycle c) {
        if (c < next)
            next = c;
        have = true;
    };

    // Fetch: progress now means no skip; a pending stall is an event.
    bool queueRoom =
        static_cast<int>(fetchQueue.size()) < cfg.fetchQueueSize;
    bool canPull = !replayQueue.empty() || (!oracleDone && !draining);
    if (fetchBlockedBySeq == 0 && queueRoom && canPull) {
        if (now >= fetchStalledUntil)
            return 0;
        event(fetchStalledUntil);
    }

    if (Cycle w = iq.nextWakeAt(now))
        event(w);   // quietAt guarantees w > now

    // Pending memory accesses.
    for (const auto &[d, seq] : pendingMem) {
        if (d->seq != seq || d->memDone)
            continue;
        if (d->memExecAt <= now)
            return 0;
        event(d->memExecAt);
    }

    // Branch resolution unblocking fetch.
    if (fetchBlockedBySeq != 0) {
        DynInst *b = findInWindow(fetchBlockedBySeq);
        if (!b)
            return 0;   // resolves by absence this cycle
        if (b->issued) {
            if (b->resolveAt <= now)
                return 0;
            event(b->resolveAt);
        }
        // Unissued: its wakeup (above) precedes resolution.
    }

    // Commit of the ROB head.
    if (!rob.empty()) {
        DynInst *h = rob.head();
        if (h->issued) {
            bool memPending =
                (h->isLoadKind || h->isStoreKind) && !h->memDone;
            if (!memPending) {
                if (h->completeAt <= now)
                    return 0;
                event(h->completeAt);
            }
            // memPending: the LSQ scan above supplied the event.
        }
        // Unissued head wakes through the scheduler events.
    }

    // Dispatch: progress now means no skip; a structural stall must
    // keep counting once per skipped cycle (nothing a skipped cycle
    // touches can change the stall reason).
    if (!fetchQueue.empty()) {
        DynInst *f = fetchQueue.front();
        if (f->dispatchReadyAt > now) {
            event(f->dispatchReadyAt);
        } else if (rob.full()) {
            *stallCounter = &stats_.robFullStalls;
        } else if (iq.full()) {
            *stallCounter = &stats_.iqFullStalls;
        } else if ((f->isLoadKind || f->isStoreKind) && lsq.full()) {
            *stallCounter = &stats_.lsqFullStalls;
        } else if (renameDstOf(f) != regNone && regs.freeCount() == 0) {
            *stallCounter = &stats_.regFullStalls;
        } else {
            return 0;   // dispatch progresses now
        }
    }

    if (!have) {
        *stallCounter = nullptr;
        return 0;
    }
    return next;
}

void
Core::stepCycle()
{
    // Event-aware idle skipping: jump straight to the next cycle at
    // which any pipeline event fires, accumulating the per-cycle
    // dispatch-stall statistics the skipped cycles would have counted.
    std::uint64_t *stall = nullptr;
    Cycle target = idleSkipTarget(&stall);
    if (target > now) {
        if (stall)
            *stall += target - now;
        now = target;
    }

    doMemAndResolve();
    doCommit();
    doIssue();
    doDispatch();
    doFetch();
    ++now;
    stats_.cycles = now;
}

void
Core::pollCancel()
{
    if (cancel_ && (++cancelPoll_ & cancelPollMask) == 0 &&
        cancel_->load(std::memory_order_relaxed))
        throw CellTimeout("cell deadline exceeded (timing loop "
                          "cancelled by watchdog)");
}

void
Core::runDetailedUntil(std::uint64_t targetWork)
{
    for (;;) {
        pollCancel();
        stepCycle();
        if (stats_.committedWork >= targetWork)
            break;
        if (oracleDone && replayQueue.empty() && fetchQueue.empty() &&
            rob.empty())
            break;
        if (now > (1ull << 40))
            panic("simulation did not terminate");
    }
}

CoreStats
Core::run(std::uint64_t maxWork)
{
    stats_ = CoreStats();
    runDetailedUntil(maxWork);
    return stats_;
}

bool
Core::pipelineEmpty() const
{
    return replayQueue.empty() && fetchQueue.empty() && rob.empty();
}

void
Core::drainPipeline()
{
    // Retire everything in flight without admitting new oracle slots
    // (pullOracle serves only the replay queue while draining), so the
    // subsequent fast-forward starts from a committed boundary.
    draining = true;
    while (!pipelineEmpty()) {
        stepCycle();
        if (now > (1ull << 40))
            panic("pipeline did not drain");
    }
    draining = false;
}

void
Core::warmControl(const Instruction &in, const ExecRecord &rec)
{
    // Functional-warming mirror of predictControl's *training* effects:
    // same tables, same PCs, but no penalties and no stats.
    InsnClass cls = rec.cls;
    bool condLike = cls == InsnClass::CondBranch ||
        (in.isHandle() && mgt &&
         mgt->at(static_cast<MgId>(in.imm)).hdr.endsInBranch);
    if (condLike) {
        bp.updateDirection(rec.pc, rec.taken);
        if (rec.taken)
            bp.updateTarget(rec.pc, rec.nextPc);
        return;
    }
    switch (in.op) {
      case Op::BSR:
        bp.pushReturn(rec.pc + insnBytes);
        [[fallthrough]];
      case Op::BR:
        bp.updateTarget(rec.pc, rec.nextPc);
        break;
      case Op::RET:
        bp.popReturn();
        break;
      case Op::JSR:
        bp.pushReturn(rec.pc + insnBytes);
        [[fallthrough]];
      case Op::JMP:
        bp.updateTarget(rec.pc, rec.nextPc);
        break;
      default:
        break;
    }
}

void
Core::fastForward(std::uint64_t workTarget, bool warm, double ipcEst)
{
    if (!pipelineEmpty())
        panic("fastForward with a non-empty pipeline");
    ExecRecord rec;
    double cycleAccum = 0;
    Cycle base = now;
    std::uint64_t work0 = emu.dynWork();
    while (!emu.halted() && emu.dynWork() < workTarget) {
        pollCancel();
        if (!emu.step(&rec))
            break;
        if (ipcEst > 0) {
            cycleAccum = static_cast<double>(emu.dynWork() - work0) /
                ipcEst;
            now = base + static_cast<Cycle>(cycleAccum);
        }
        if (!warm || !rec.insn)
            continue;
        Addr line = lineOf(rec.pc);
        if (line != lastFetchLine) {
            if (ipcEst > 0)
                mem.instAccess(rec.pc, now);
            else
                mem.warmInst(rec.pc);
            lastFetchLine = line;
        }
        if (rec.padNop)
            continue;
        if (rec.isMem) {
            if (ipcEst > 0)
                mem.dataAccess(rec.memAddr, rec.memIsStore, now);
            else
                mem.warmData(rec.memAddr, rec.memIsStore);
            if (ffShadow && !ffViolPairs.empty()) {
                ffAliasScan(rec);
                // Store-set shadow: re-merge every *active* pair
                // (idempotent once the full component is in one
                // set). All of the load's active partners merge
                // together so the component — not just one edge of
                // it — survives jumps and table clears.
                if (!rec.memIsStore) {
                    auto it = ffViolPairs.find(rec.pc);
                    if (it != ffViolPairs.end()) {
                        for (const FfPartner &p : it->second) {
                            if (p.active)
                                ss.recordViolation(it->first,
                                                   p.storePc);
                        }
                    }
                }
            }
        }
        if (rec.insn->isControl() || rec.insn->isHandle())
            warmControl(*rec.insn, rec);
    }
    stats_.cycles = now;        // keep interval deltas pure-detailed
    lastFetchLine = ~Addr(0);   // fetch restarts on a cold line tracker
}

void
Core::restoreOracle(const EmuCheckpoint &c)
{
    if (!pipelineEmpty())
        panic("restoreOracle with a non-empty pipeline");
    emu.restore(c);
    lastFetchLine = ~Addr(0);
}

namespace {

/** Generation hash of a violation-pair seed set: runs seeded with
 *  different sets follow different warm-state trajectories, so the
 *  hash namespaces their store records apart. A null or empty seed
 *  hashes to the FNV basis (the discovery generation). */
std::uint64_t
violSeedHash(const std::vector<std::pair<Addr, Addr>> *seed)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    if (!seed)
        return h;
    for (const auto &[loadPc, storePc] : *seed) {
        std::uint8_t b[16];
        for (int i = 0; i < 8; ++i) {
            b[i] = static_cast<std::uint8_t>(loadPc >> (8 * i));
            b[8 + i] = static_cast<std::uint8_t>(storePc >> (8 * i));
        }
        h = fnv1a64(b, sizeof b, h);
    }
    return h;
}

} // namespace

std::vector<std::pair<Addr, Addr>>
Core::violPairsSorted() const
{
    std::vector<std::pair<Addr, Addr>> v;
    // mglint:allow(unordered-iter): edges copied then sorted below
    for (const auto &[loadPc, partners] : ffViolPairs) {
        for (const FfPartner &p : partners)
            v.emplace_back(loadPc, p.storePc);
    }
    std::sort(v.begin(), v.end());
    return v;
}

void
Core::ffRecordViolation(Addr loadPc, Addr storePc)
{
    std::vector<FfPartner> &partners = ffViolPairs[loadPc];
    for (FfPartner &p : partners) {
        if (p.storePc == storePc) {
            if (!p.active) {
                p.active = true;
                --ffDormantEdges;
            }
            return;
        }
    }
    partners.push_back({storePc, true});
}

void
Core::ffAliasScan(const ExecRecord &rec)
{
    if (ffDormantEdges == 0 || !rec.isMem)
        return;
    // Word granularity: the LSQ's violation check is byte-overlap,
    // but partner pairs that alias at all touch the same words in
    // practice, and word keys keep the map small.
    Addr lo = rec.memAddr & ~Addr(7);
    Addr hi = (rec.memAddr + static_cast<Addr>(
                   rec.memBytes > 0 ? rec.memBytes - 1 : 0)) &
        ~Addr(7);
    if (rec.memIsStore) {
        if (!ffPartnerStores.count(rec.pc))
            return;
        for (Addr wd = lo;; wd += 8) {
            ffAliasLast[wd] = {rec.pc, emu.dynWork()};
            if (wd == hi)
                break;
        }
        return;
    }
    auto it = ffViolPairs.find(rec.pc);
    if (it == ffViolPairs.end())
        return;
    for (Addr wd = lo;; wd += 8) {
        auto a = ffAliasLast.find(wd);
        if (a != ffAliasLast.end() &&
            emu.dynWork() - a->second.second <= ffAliasSpan) {
            for (FfPartner &p : it->second) {
                if (!p.active && p.storePc == a->second.first) {
                    p.active = true;
                    --ffDormantEdges;
                }
            }
        }
        if (wd == hi)
            break;
    }
}

/** Layout version of serializeWarm records (independent of the store's
 *  file format version: this one tracks the core's state shape). */
static constexpr std::uint32_t warmStateVersion = 1;

void
Core::serializeWarm(SerialWriter &w) const
{
    w.u32(warmStateVersion);
    w.u64(now);
    w.u64(nextSeq);
    emu.serializeState(w);
    mem.exportState().serialize(w);
    bp.exportState().serialize(w);
    ss.exportState().serialize(w);
    // Shadow state of the violation-pair seeding: the graph edges
    // (with activation bits) and the RAW-scan alias map. A restored
    // record skips the fast-forward gap that built these, so they
    // ride in the record; canonical sorted order keeps the bytes —
    // and the store's checksums — session-independent.
    std::vector<std::tuple<Addr, Addr, std::uint8_t>> edges;
    // mglint:allow(unordered-iter): edges copied then sorted below
    for (const auto &[loadPc, partners] : ffViolPairs) {
        for (const FfPartner &p : partners)
            edges.emplace_back(loadPc, p.storePc, p.active ? 1 : 0);
    }
    std::sort(edges.begin(), edges.end());
    w.u64(edges.size());
    for (const auto &[l, s, a] : edges) {
        w.u64(l);
        w.u64(s);
        w.u8(a);
    }
    std::vector<std::pair<Addr, std::pair<Addr, std::uint64_t>>> alias(
        ffAliasLast.begin(),   // mglint:allow(unordered-iter): sorted below
        ffAliasLast.end());
    std::sort(alias.begin(), alias.end());
    w.u64(alias.size());
    for (const auto &[wd, last] : alias) {
        w.u64(wd);
        w.u64(last.first);
        w.u64(last.second);
    }
}

bool
Core::tryRestoreWarm(const std::vector<std::uint8_t> &bytes)
{
    if (!pipelineEmpty())
        panic("tryRestoreWarm with a non-empty pipeline");
    // Parse the whole record into temporaries and validate every
    // piece before mutating anything: a truncated or incompatible
    // record must leave the core exactly as it was (the caller then
    // warms through functionally and the run stays correct).
    SerialReader r(bytes);
    if (r.u32() != warmStateVersion)
        return false;
    std::uint64_t now_ = r.u64();
    std::uint64_t nextSeq_ = r.u64();
    EmuCheckpoint ck;
    if (!deserializeCheckpoint(r, ck))
        return false;
    HierarchyState hs;
    BranchPredState bs;
    StoreSetsState sss;
    if (!hs.deserialize(r) || !bs.deserialize(r) ||
        !sss.deserialize(r) || !r.ok())
        return false;
    std::uint64_t nEdges = r.u64();
    if (nEdges > r.remaining() / 17)
        return false;
    std::unordered_map<Addr, std::vector<FfPartner>> edgesByLoad;
    std::uint64_t dormant = 0;
    std::unordered_set<Addr> partnerStores;
    for (std::uint64_t i = 0; i < nEdges; ++i) {
        Addr l = r.u64();
        Addr s = r.u64();
        std::uint8_t a = r.u8();
        edgesByLoad[l].push_back({s, a != 0});
        if (a == 0) {
            ++dormant;
            partnerStores.insert(s);
        }
    }
    std::uint64_t nAlias = r.u64();
    if (nAlias > r.remaining() / 24)
        return false;
    std::unordered_map<Addr, std::pair<Addr, std::uint64_t>> aliasByWord;
    for (std::uint64_t i = 0; i < nAlias; ++i) {
        Addr wd = r.u64();
        Addr spc = r.u64();
        std::uint64_t pos = r.u64();
        aliasByWord[wd] = {spc, pos};
    }
    if (!r.ok())
        return false;
    if (!emu.checkpointCompatible(ck) || !mem.stateCompatible(hs) ||
        !bp.stateCompatible(bs) || !ss.stateCompatible(sss))
        return false;
    // Records are keyed to positions ahead of the run; never move the
    // oracle (or the clock) backwards.
    if (ck.work < emu.dynWork() || now_ < now)
        return false;

    emu.restore(std::move(ck));
    now = now_;
    nextSeq = nextSeq_;
    mem.adoptState(hs);
    bp.adoptState(bs);
    ss.adoptState(sss);
    ffViolPairs = std::move(edgesByLoad);
    ffPartnerStores = std::move(partnerStores);
    ffAliasLast = std::move(aliasByWord);
    ffDormantEdges = dormant;
    lastFetchLine = ~Addr(0);
    return true;
}

SampledStats
Core::runSampled(const SamplingParams &sp, const SampleSummary &sum,
                 std::uint64_t maxWork, WarmStoreIf *warmStore,
                 const std::vector<std::pair<Addr, Addr>> *seedViol)
{
    stats_ = CoreStats();
    ffShadow = sp.ssShadow;
    ffViolPairs.clear();
    ffPartnerStores.clear();
    ffAliasLast.clear();
    ffDormantEdges = 0;
    if (seedViol) {
        // seedViol is violPairsSorted() output: distinct pairs in
        // (loadPc, storePc) order, so per-load partner lists rebuild
        // identically in every session (replay order is part of the
        // cold-vs-warm determinism contract). Seeded edges start
        // dormant: each waits for this run's functional stream to
        // show its first violable RAW (ffAliasScan) so the shadow
        // never serializes program phases before the dependence even
        // exists.
        for (const auto &[loadPc, storePc] : *seedViol) {
            ffViolPairs[loadPc].push_back({storePc, false});
            ffPartnerStores.insert(storePc);
            ++ffDormantEdges;
        }
    }
    // Restore-warm only composes with warm-through: a restored record
    // is the state of a run that warmed every skipped instruction, so
    // mixing it with checkpoint jumps would interleave two different
    // state trajectories. Jump mode ignores the store.
    WarmStoreIf *ws = sp.warmThrough ? warmStore : nullptr;
    const std::uint64_t seedHash = violSeedHash(seedViol);
    std::vector<std::uint8_t> wsBytes;
    SampledStats out;
    out.totalWork = std::min(sum.totalWork, maxWork);

    // Short programs degrade to exact full simulation. Below ~33
    // sampling periods the fixed costs (prefix, per-chunk warmups,
    // two samples per cluster) already approach full coverage, so
    // sampling buys under 2x wall-clock while paying 3-8% IPC error
    // (too few occurrences per cluster for the variance to average
    // out — the measured ref-tier tail on drr/bitcount/rgb2gray) and,
    // on kernels whose speculation state trains over the whole run,
    // far worse (reed@ref/int-mem measured 52% when sampled: its
    // store-set serialization never finishes being discovered).
    // Such runs are cheap to simulate exactly; the threshold is
    // period-relative so genuinely long runs (the M-scale tier is
    // ~90 periods at defaults) never degrade.
    bool tooShort = sum.totalWork > 0 &&
        out.totalWork < sp.coldPrefixWork() + 32 * sp.period;
    if (sp.degenerate() || tooShort) {
        // No room for fast-forward: identical to a full run.
        runDetailedUntil(maxWork);
        out.est = stats_;
        out.exact = true;
        out.totalWork = stats_.committedWork;
        out.measuredWork = stats_.committedWork;
        out.measuredCycles = stats_.cycles;
        out.detailedWork = stats_.committedWork;
        out.intervals = 1;
        out.ipcHat = stats_.ipc();
        return out;
    }

    // Checkpoint jumps skip functional execution entirely, so the
    // hierarchy tracks which data lines it has actually seen; any
    // measurement-interval first-touches beyond the functional
    // pre-pass's expectation are working-set state the jumps lost
    // (warm-through skips nothing and needs no tracking, and
    // degraded-to-exact runs above never jump — enable only now).
    if (!sp.warmThrough)
        mem.trackFootprint(true);

    // Exactly-measured cold prefix: the startup transient (cold
    // caches, bus backlog, queue fill) is a large, unrepresentative
    // fraction of a short run; extrapolating any sample of it is the
    // dominant error source, so it never extrapolates.
    std::uint64_t prefixWork = std::min(sp.coldPrefixWork(),
                                        out.totalWork);
    runDetailedUntil(prefixWork);
    drainPipeline();
    CoreStats cold = stats_;
    out.prefixWork = cold.committedWork;

    // Post-prefix plan from the phase clustering: always measure the
    // first two chunks of every cluster, then adaptively keep
    // measuring later occurrences of any cluster whose error
    // contribution still exceeds the target. Weight by cluster work.
    struct ClusterAgg
    {
        CoreStats meas;                 ///< summed measurement deltas
        std::uint64_t work = 0;         ///< cluster work to represent
        std::vector<double> ipcs;

        double
        mean() const
        {
            double s = 0;
            for (double x : ipcs)
                s += x;
            return ipcs.empty() ? 0 : s / static_cast<double>(
                                              ipcs.size());
        }

        /** Relative 95% CI of the cluster's mean interval IPC. */
        double
        relCi() const
        {
            if (ipcs.size() < 2)
                return 0;
            double m = mean();
            if (m <= 0)
                return 0;
            double var = 0;
            for (double x : ipcs)
                var += (x - m) * (x - m);
            var /= static_cast<double>(ipcs.size() - 1);
            return 1.96 *
                std::sqrt(var / static_cast<double>(ipcs.size())) / m;
        }
    };
    std::vector<ClusterAgg> agg(sum.clusters);
    std::vector<std::vector<const SampleChunk *>> occ(sum.clusters);
    std::uint64_t postWork = 0;
    for (const SampleChunk &ch : sum.chunks) {
        // Weigh only the work the exact prefix did not already cover:
        // the drain overshoots prefixWork by up to a windowful, and
        // that overshoot is in `cold`, so extrapolating it again would
        // double-count it.
        std::uint64_t effStart = std::max(ch.start, cold.committedWork);
        std::uint64_t end = ch.start +
            std::min(ch.work, out.totalWork > ch.start
                                  ? out.totalWork - ch.start : 0);
        if (end <= effStart)
            continue;
        agg[ch.cluster].work += end - effStart;
        postWork += end - effStart;
        if (ch.start >= cold.committedWork &&
            ch.start + sp.interval <= out.totalWork)
            occ[ch.cluster].push_back(&ch);
    }
    // Base plan: quantile-spread occurrences of every cluster, so a
    // performance trend inside a code-identical cluster (queue
    // pressure building up, predictors still training) is sampled
    // across its whole extent, not just at its start. Membership is
    // marked per chunk index (chunks live contiguously in sum.chunks).
    std::vector<std::uint8_t> baseMark(sum.chunks.size(), 0);
    auto chunkIdxOf = [&](const SampleChunk *c) {
        return static_cast<std::size_t>(c - sum.chunks.data());
    };
    // Occurrence rank of every chunk within its cluster, for the
    // stratified refinement below.
    std::vector<std::size_t> occIdxOf(sum.chunks.size(), 0);
    for (const auto &o : occ) {
        for (std::size_t i = 0; i < o.size(); ++i)
            occIdxOf[chunkIdxOf(o[i])] = i;
        std::size_t m = o.size();
        if (m <= 3) {
            for (const SampleChunk *c : o)
                baseMark[chunkIdxOf(c)] = 1;
        } else {
            for (std::size_t q : {std::size_t(0), m / 2, m - 1})
                baseMark[chunkIdxOf(o[q])] = 1;
        }
    }
    constexpr std::size_t maxPerCluster = 24;
    // Stratified refinement: the oracle only moves forward, so
    // CI-driven extra samples taken in stream order would all land
    // right after the prefix — and a long-lived cluster with a
    // performance trend (predictors and caches still training over
    // hundreds of chunks, the rtr signature) would be estimated from
    // its transient head alone. Spacing eligible occurrences a
    // cluster-extent/maxPerCluster stride apart spreads the same
    // sample budget across the whole extent. Clusters with fewer
    // occurrences than the cap get stride 1: short (tier-1) runs keep
    // the previous plan.
    std::vector<std::size_t> stride(sum.clusters, 1);
    std::vector<std::size_t> nextEligible(sum.clusters, 0);
    for (std::uint32_t c = 0; c < sum.clusters; ++c) {
        if (occ[c].size() > maxPerCluster)
            stride[c] = occ[c].size() / maxPerCluster;
    }
    std::uint64_t dutyBudget = static_cast<std::uint64_t>(
        sp.maxDuty * static_cast<double>(out.totalWork));
    auto shouldMeasure = [&](const SampleChunk *c, bool *wholeChunk) {
        const ClusterAgg &a = agg[c->cluster];
        std::size_t oi = occIdxOf[chunkIdxOf(c)];
        auto take = [&](bool yes) {
            if (yes) {
                nextEligible[c->cluster] =
                    std::max(nextEligible[c->cluster],
                             oi + stride[c->cluster]);
            }
            return yes;
        };
        if (a.ipcs.empty())
            return take(true);   // every cluster is covered once
        double share = static_cast<double>(a.work) /
            static_cast<double>(postWork ? postWork : 1);
        if (stats_.committedWork >= dutyBudget) {
            // Over budget, only gross non-convergence keeps sampling:
            // a cheap estimate is worthless if its bound is huge. Such
            // a cluster gets the whole chunk, not another floored
            // span — its variance already survived the normal
            // refinement budget, so the last samples must average the
            // chunk's full intra-phase swing instead of re-reading a
            // fraction of it.
            bool yes = sp.targetCi > 0 &&
                a.ipcs.size() < maxPerCluster &&
                oi >= nextEligible[c->cluster] &&
                a.relCi() * share > 5 * sp.targetCi;
            *wholeChunk = yes;
            return take(yes);
        }
        if (baseMark[chunkIdxOf(c)])
            return take(true);
        if (oi < nextEligible[c->cluster])
            return false;
        if (a.ipcs.size() < 2)
            return take(true);
        if (sp.targetCi <= 0 || a.ipcs.size() >= maxPerCluster)
            return false;
        // Extent-coverage guard (salted placement only): a tiny CI
        // computed from samples confined to the head of a long
        // cluster extent is not evidence about its tail. reed@long
        // turns on store-set serialization mid-run; when the salted
        // offsets happen to dodge the head's hiccup intervals, the
        // first two samples agree to 0.4%, the CI gate stops
        // refinement at the head, and the quantile samples that DO
        // land past the onset read an untrained (rosy) pipeline
        // because the onset is discovered at detailed-work rate. The
        // grid-aligned plan only escaped by luck — its head samples
        // disagreed enough to keep the stride march going. So under a
        // salt, keep marching until the measured occurrences span
        // half the extent; only then is the CI an honest summary of
        // the cluster.
        if (sp.phaseSalt && stride[c->cluster] > 1 &&
            nextEligible[c->cluster] * 2 < occ[c->cluster].size())
            return take(true);
        return take(a.relCi() * share > sp.targetCi / 2);
    };

    // Settled-measurement sizing (see the measurement loop): the
    // first interval-worth of work after warmup is discarded as
    // settling and the measurement averages the following
    // sub-intervals. The measured span is floored at ~6k work
    // regardless of the interval size: sub-6k contiguous windows
    // alias against multi-thousand-work rate oscillations and read a
    // systematic 2-4% bias on several M-scale kernels (adpcm.dec,
    // dijkstra, g721.enc — measured in docs/EXPERIMENTS.md) that no
    // amount of warmup or settling removes, while ~6k windows average
    // a whole oscillation.
    constexpr std::uint64_t minMeasuredSpan = 6000;
    const int measureSubs = static_cast<int>(
        std::max<std::uint64_t>(
            3, (minMeasuredSpan + sp.interval - 1) / sp.interval));

    double lastIpc = cold.ipc();   // virtual-clock fast-forward rate
    std::uint32_t footIvals = 0;           ///< measurements accounted
    std::uint32_t footSurprisedIvals = 0;  ///< with excess first-touches
    for (const SampleChunk &chunk : sum.chunks) {
        const SampleChunk *ch = &chunk;
        if (ch->start < cold.committedWork ||
            ch->start + sp.interval > out.totalWork)
            continue;
        if (emu.halted())
            break;
        // Chunks the prefix/drain (or a previous measurement's settle
        // span) already covered are discarded before the plan is
        // consulted: shouldMeasure ratchets per-cluster eligibility,
        // and a chunk that cannot be measured must not burn a stride
        // of its cluster's refinement budget.
        std::uint64_t p = emu.dynWork();
        if (ch->start <= p)
            continue;
        bool wholeChunk = false;
        if (!shouldMeasure(ch, &wholeChunk))
            continue;
        // Measurement placement and extent inside the chunk. A
        // whole-chunk measurement sizes its sub-intervals to cover the
        // chunk. Otherwise, a phase-salted run starts the measured
        // span at a deterministic per-chunk offset instead of always
        // at the chunk start: period-aligned placement samples one
        // fixed phase of any rate oscillation commensurate with the
        // period (the huge-tier jpeg.dct alias). Salt zero keeps the
        // legacy grid-aligned placement bit-exactly.
        //
        // The salt dithers what is *measured*, not what is *executed*:
        // detailed (unmeasured) execution still begins at the chunk
        // start (see warmStart below), so the offset gap runs through
        // the cycle-accurate core instead of being fast-forwarded.
        // One-shot microarchitectural events discovered at
        // detailed-work rate — reed@long's store-set serialization
        // onset is a single violation that flips the rest of the run
        // from IPC 4.9 to 2.65 — land inside the grid span, and a
        // salt that shifted the detailed region past one would
        // silently un-discover it (measured: 72% IPC error at a 1%
        // CI). Keeping the detailed region a superset of the legacy
        // grid span makes event discovery salt-independent; only the
        // phase of the measured window moves.
        int subs = measureSubs;
        std::uint64_t off = 0;
        if (wholeChunk) {
            std::uint64_t ivals = ch->work / sp.interval;
            if (ivals > static_cast<std::uint64_t>(subs) + 1)
                subs = static_cast<int>(ivals - 1);
        } else if (sp.phaseSalt) {
            std::uint64_t span =
                (static_cast<std::uint64_t>(measureSubs) + 1) *
                sp.interval;
            std::uint64_t maxO = ch->work > span ? ch->work - span : 0;
            if (maxO) {
                std::uint64_t h = fnv1a64(&ch->start, sizeof(ch->start),
                                          sp.phaseSalt);
                off = h % (maxO + 1);
            }
        }
        const std::uint64_t mstart = ch->start + off;
        // Fast-forward to the measurement: jump through the checkpoint
        // the summary captured for the chunk, then functionally warm
        // the tail. Warmup is anchored at the chunk start, not the
        // salted measurement start: the offset gap is covered by
        // detailed execution (see above), and warm-store records —
        // keyed and serialized at ch->start − warmup — stay valid for
        // every salt.
        std::uint64_t warmStart = ch->start > sp.warmup
            ? ch->start - sp.warmup : 0;
        if (warmStart > p) {
            // Restore-warm fast path: a stored record at this chunk's
            // start (same binary, config, position, and seed
            // generation) is bit-for-bit the state warming through
            // this gap would compute — restore it and skip the
            // functional re-execution entirely. Misses (and corrupt
            // or incompatible records, rejected by tryRestoreWarm)
            // fall through to warming and write back the result.
            bool restored = false;
            if (ws && ws->loadWarm(ch->start, seedHash, wsBytes) &&
                tryRestoreWarm(wsBytes)) {
                restored = true;
                ++out.ckptRestores;
            }
            if (!restored) {
                // Warm-through mode skips the jump: the whole gap is
                // emulated with warming so cumulative cache/predictor
                // state survives (footprint-bound kernels).
                const EmuCheckpoint *jump = nullptr;
                if (!sp.warmThrough) {
                    for (const EmuCheckpoint &c : sum.ckpts) {
                        if (c.work > warmStart)
                            break;
                        if (c.work > p)
                            jump = &c;  // ascending: keep latest
                                        // eligible
                    }
                }
                if (jump) {
                    // The skipped region's time passes on the virtual
                    // clock too, so time-keyed state (bus occupancy,
                    // bypass windows) ages as it would have.
                    if (lastIpc > 0)
                        now += static_cast<Cycle>(
                            static_cast<double>(jump->work - p) /
                            lastIpc);
                    restoreOracle(*jump);
                }
                if (warmStart > emu.dynWork())
                    fastForward(warmStart, sp.ffWarm > 0, lastIpc);
                if (ws && !emu.halted()) {
                    SerialWriter w;
                    serializeWarm(w);
                    ws->storeWarm(ch->start, seedHash, w.data());
                    ++out.ckptWritebacks;
                }
            }
            stats_.cycles = now;   // virtual advances stay unmeasured
        }
        out.ffWork = emu.dynWork() - stats_.committedWork;
        if (emu.halted())
            break;

        // Detailed (unmeasured) warmup up to the measurement start:
        // refills the pipeline and restores queue back-pressure
        // equilibrium.
        std::uint64_t q = emu.dynWork();
        if (mstart > q)
            runDetailedUntil(stats_.committedWork + (mstart - q));

        // Settled measurement: a drained-then-refilled pipeline can run
        // well above its congested steady state for a while (the
        // window fills slowly when the free register list is the
        // binding resource), so the first interval-worth of work after
        // warmup is discarded as settling and the measurement averages
        // the following sub-intervals (sized above) — no convergence
        // test, because stopping "when two subs agree" preferentially
        // stops on plateaus of oscillating kernels and biases the
        // sample.
        // Sub-interval targets never cross the work cap: a capped run
        // must estimate the capped run, not work beyond it.
        auto boundedTarget = [&]() {
            std::uint64_t cap = out.totalWork - out.ffWork;
            return std::min(stats_.committedWork + sp.interval, cap);
        };
        std::uint64_t surpriseBase = mem.footSurprises();
        std::uint64_t surpriseWorkBase = stats_.committedWork;
        runDetailedUntil(boundedTarget());
        CoreStats delta;
        for (int s = 0; s < subs && !oracleDone; ++s) {
            if (stats_.committedWork >= out.totalWork - out.ffWork)
                break;
            CoreStats b = stats_;
            runDetailedUntil(boundedTarget());
            delta += stats_ - b;
        }
        if (!sp.warmThrough && !sum.footLines.empty()) {
            // Footprint-blindness accounting: first touches inside
            // the measurement span, minus the span's share of the
            // chunk's genuinely new lines (which a full run would
            // first-touch here too). The excess is working-set state
            // the jumps skipped and the warm budget failed to
            // restore. One cold measurement is a startup transient
            // (mcf's node array is covered within a few measurements
            // and the excess vanishes); what marks an estimate as
            // structurally unrepresentative is excess that
            // *persists* across the measurement sequence — the
            // rtr signature, where the whole-run cache-residency
            // ramp is stretched over every interval.
            std::uint64_t span = stats_.committedWork - surpriseWorkBase;
            std::uint64_t surprises =
                mem.footSurprises() - surpriseBase;
            std::uint64_t expect = sum.newLinesIn(chunkIdxOf(ch)) *
                span / std::max<std::uint64_t>(ch->work, 1);
            std::uint64_t slack =
                std::max<std::uint64_t>(16, sp.interval / 32);
            ++footIvals;
            if (surprises > expect + slack) {
                ++footSurprisedIvals;
                out.footprintSkippedLines += surprises - expect;
            }
        }
        if (delta.committedWork && delta.cycles) {
            ClusterAgg &a = agg[ch->cluster];
            a.meas += delta;
            lastIpc = static_cast<double>(delta.committedWork) /
                static_cast<double>(delta.cycles);
            a.ipcs.push_back(lastIpc);
            if (getenv("MG_SAMPLE_DEBUG")) {
                StoreSetsState sss_ = ss.exportState();
                std::size_t trained = 0;
                for (std::int32_t v : sss_.ssit)
                    trained += v != -1;
                fprintf(stderr, "iv pos=%llu emuPos=%llu cl=%u w=%llu c=%llu ipc=%.3f regFree=%d dram=%llu surp=%llu exp=%llu regStall=%llu ldRep=%llu viol=%llu ssit=%zu acc=%llu\n",
                        (unsigned long long)ch->start,
                        (unsigned long long)emu.dynWork(),
                        ch->cluster,
                        (unsigned long long)delta.committedWork,
                        (unsigned long long)delta.cycles, lastIpc,
                        regs.freeCount(),
                        (unsigned long long)mem.dramAccesses(),
                        (unsigned long long)(mem.footSurprises() -
                                             surpriseBase),
                        (unsigned long long)sum.newLinesIn(
                            chunkIdxOf(ch)),
                        (unsigned long long)delta.regFullStalls,
                        (unsigned long long)delta.loadReplays,
                        (unsigned long long)delta.ordViolations,
                        trained,
                        (unsigned long long)sss_.accesses);
            }
        }
        drainPipeline();
    }
    // More than a third of the measurements paying excess surprise
    // first-touches means the cold-hierarchy transient never settled:
    // the extrapolation is built on unrepresentative intervals.
    out.footprintWarning = footIvals > 0 &&
        3 * footSurprisedIvals > footIvals;

    // Exact prefix plus per-cluster ratio extrapolation. Clusters that
    // went unmeasured (halt mid-plan, work cap) fall back to the
    // pooled rates of everything that was measured.
    CoreStats pooled;
    std::uint32_t intervals = 0;
    for (const ClusterAgg &a : agg) {
        pooled += a.meas;
        intervals += static_cast<std::uint32_t>(a.ipcs.size());
    }
    out.measuredWork = cold.committedWork + pooled.committedWork;
    out.measuredCycles = cold.cycles + pooled.cycles;
    out.detailedWork = stats_.committedWork;
    out.intervals = intervals + 1;

    if (out.totalWork <= cold.committedWork) {
        out.est = cold;           // the prefix covered the whole run
        out.exact = true;
        out.ipcHat = out.est.ipc();
        return out;
    }
    if (pooled.committedWork == 0 || pooled.cycles == 0) {
        // Nothing sampled beyond the prefix: extrapolate from it.
        out.est = cold.scaled(static_cast<double>(out.totalWork) /
                              static_cast<double>(cold.committedWork));
        out.est.committedWork = out.totalWork;
        out.ipcHat = out.est.ipc();
        return out;
    }

    out.est = cold;
    std::uint64_t fallbackWork = 0;
    for (const ClusterAgg &a : agg) {
        if (!a.work)
            continue;
        if (!a.meas.committedWork) {
            fallbackWork += a.work;
            continue;
        }
        out.est += a.meas.scaled(static_cast<double>(a.work) /
                                 static_cast<double>(
                                     a.meas.committedWork));
    }
    if (fallbackWork)
        out.est += pooled.scaled(static_cast<double>(fallbackWork) /
                                 static_cast<double>(
                                     pooled.committedWork));
    out.est.committedWork = out.totalWork;   // known, not estimated
    out.ipcHat = out.est.ipc();

    // Error bound: within-cluster spread of the repeated measurements,
    // weighted by each cluster's share of the estimated cycles (the
    // exact prefix contributes none).
    double var = 0;
    double estCycles =
        static_cast<double>(out.est.cycles ? out.est.cycles : 1);
    for (const ClusterAgg &a : agg) {
        if (a.ipcs.size() < 2 || !a.meas.committedWork)
            continue;
        double rel = a.relCi();
        double share = static_cast<double>(a.work) /
            static_cast<double>(a.meas.committedWork) *
            static_cast<double>(a.meas.cycles) / estCycles;
        var += (rel * share) * (rel * share);
    }
    out.ipcRelCi95 = std::sqrt(var);
    return out;
}

} // namespace mg
