#include "uarch/alu_pipeline.hh"

#include "common/logging.hh"

namespace mg {

AluPipeline::AluPipeline(int depth) : depth_(depth)
{
    if (depth < 1)
        fatal("ALU pipeline depth must be positive");
}

} // namespace mg
