#include "uarch/alu_pipeline.hh"

#include "common/logging.hh"

namespace mg {

AluPipeline::AluPipeline(int depth) : depth_(depth)
{
    if (depth < 1)
        fatal("ALU pipeline depth must be positive");
    entryBusy.assign(window, false);
    outputBusy.assign(window, false);
}

void
AluPipeline::slideTo(Cycle now)
{
    if (now <= lastSlide)
        return;
    Cycle steps = now - lastSlide;
    if (steps >= window) {
        std::fill(entryBusy.begin(), entryBusy.end(), false);
        std::fill(outputBusy.begin(), outputBusy.end(), false);
    } else {
        for (Cycle s = 0; s < steps; ++s) {
            entryBusy[slot(lastSlide + s)] = false;
            outputBusy[slot(lastSlide + s)] = false;
        }
    }
    lastSlide = now;
}

bool
AluPipeline::entryFree(Cycle now) const
{
    return !entryBusy[slot(now)];
}

bool
AluPipeline::outputFree(Cycle cycle) const
{
    return !outputBusy[slot(cycle)];
}

bool
AluPipeline::tryIssue(Cycle now, int outLat)
{
    slideTo(now);
    if (outLat < 1 || outLat >= window - 1)
        return false;
    if (entryBusy[slot(now)] || outputBusy[slot(now + static_cast<Cycle>(
            outLat))])
        return false;
    entryBusy[slot(now)] = true;
    outputBusy[slot(now + static_cast<Cycle>(outLat))] = true;
    ++accepted_;
    return true;
}

} // namespace mg
