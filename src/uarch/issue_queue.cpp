#include "uarch/issue_queue.hh"

#include <algorithm>

namespace mg {

IssueQueue::IssueQueue(int capacity, int physRegs) : cap(capacity)
{
    regWaiters.resize(static_cast<std::size_t>(physRegs));
    drainScratch.reserve(static_cast<std::size_t>(capacity));
}

void
IssueQueue::linkBack(DynInst *d)
{
    d->iqPrev = tail;
    d->iqNext = nullptr;
    if (tail)
        tail->iqNext = d;
    else
        head = d;
    tail = d;
}

void
IssueQueue::unlink(DynInst *d)
{
    if (d->iqPrev)
        d->iqPrev->iqNext = d->iqNext;
    else
        head = d->iqNext;
    if (d->iqNext)
        d->iqNext->iqPrev = d->iqPrev;
    else
        tail = d->iqPrev;
    d->iqPrev = d->iqNext = nullptr;
}

void
IssueQueue::vacateReady(DynInst *d)
{
    if (d->iqState != IqState::Ready)
        return;
    if (d->rdyPrev)
        d->rdyPrev->rdyNext = d->rdyNext;
    else
        readyHead = d->rdyNext;
    if (d->rdyNext)
        d->rdyNext->rdyPrev = d->rdyPrev;
    else
        readyTail = d->rdyPrev;
    d->rdyPrev = d->rdyNext = nullptr;
    --readyLive;
}

void
IssueQueue::makeReady(DynInst *d)
{
    d->iqState = IqState::Ready;
    // Sorted insert from the tail: wakeups are mostly youngest-first.
    DynInst *after = readyTail;
    while (after && after->seq > d->seq)
        after = after->rdyPrev;
    d->rdyPrev = after;
    if (after) {
        d->rdyNext = after->rdyNext;
        after->rdyNext = d;
    } else {
        d->rdyNext = readyHead;
        readyHead = d;
    }
    if (d->rdyNext)
        d->rdyNext->rdyPrev = d;
    else
        readyTail = d;
    ++readyLive;
}

void
IssueQueue::parkWake(DynInst *d, Cycle at, Cycle now)
{
    d->iqState = IqState::Wake;
    d->iqWakeAt = at;
    if (at - now < wheelSlots) {
        wheel[static_cast<std::size_t>(at & wheelMask)]
            .push_back({at, d->seq, d});
        ++wheelCount;
    } else {
        wakes.push({at, d->seq, d});
    }
}

/**
 * All of @p d's wakeup events have fired: every source register has a
 * published readiness time (or a producer that re-pended, in which
 * case we re-register). Park until the latest of those times, or go
 * straight to the Ready set when it has already passed.
 */
void
IssueQueue::scheduleKnown(DynInst *d, const PhysRegFile &regs, Cycle now)
{
    Cycle wakeAt = 0;
    int pendingWaits = 0;
    for (PhysReg s : d->srcPhys) {
        if (s == physNone)
            continue;
        if (regs.pending(s)) {
            regWaiters[static_cast<std::size_t>(s)]
                .push_back({d, d->seq});
            ++pendingWaits;
            continue;
        }
        wakeAt = std::max(wakeAt, regs.readyForIssueAt(s));
    }
    if (pendingWaits > 0) {
        d->iqState = IqState::Waiting;
        d->iqWaits = pendingWaits;
        return;
    }
    if (wakeAt <= now)
        makeReady(d);
    else
        parkWake(d, wakeAt, now);
}

void
IssueQueue::insert(DynInst *d, const PhysRegFile &regs, DynInst *depStore,
                   Cycle now)
{
    linkBack(d);
    ++n;
    d->iqWaits = 0;

    int waits = 0;
    for (PhysReg s : d->srcPhys) {
        if (s != physNone && regs.pending(s)) {
            regWaiters[static_cast<std::size_t>(s)]
                .push_back({d, d->seq});
            ++waits;
        }
    }
    if (depStore && !depStore->memDone) {
        depStore->depWaiters.push_back({d, d->seq});
        ++waits;
    }
    if (waits > 0) {
        d->iqState = IqState::Waiting;
        d->iqWaits = waits;
        return;
    }
    scheduleKnown(d, regs, now);
}

void
IssueQueue::drainWaitList(std::vector<WaitRec> &list,
                          const PhysRegFile &regs, Cycle now)
{
    if (list.empty())
        return;
    drainScratch.clear();
    drainScratch.swap(list);
    for (const WaitRec &w : drainScratch) {
        DynInst *d = w.first;
        if (d->seq != w.second || d->iqState != IqState::Waiting ||
            d->iqWaits <= 0)
            continue;   // squashed/recycled/already rescheduled
        if (--d->iqWaits == 0)
            scheduleKnown(d, regs, now);
    }
}

void
IssueQueue::rewakeReg(PhysReg p, const PhysRegFile &regs, Cycle now)
{
    if (p == physNone)
        return;
    // Re-park every parked consumer of p at its revised time. Stale
    // heap records are invalidated by the iqWakeAt mismatch. Entries
    // already Ready re-validate operands at select; Waiting entries
    // recompute their park time when their last wait fires.
    for (DynInst *d = head; d; d = d->iqNext) {
        if (d->iqState != IqState::Wake)
            continue;
        if (d->srcPhys[0] != p && d->srcPhys[1] != p)
            continue;
        Cycle wakeAt = 0;
        bool pending = false;
        for (PhysReg s : d->srcPhys) {
            if (s == physNone)
                continue;
            if (regs.pending(s)) {
                pending = true;
                break;
            }
            wakeAt = std::max(wakeAt, regs.readyForIssueAt(s));
        }
        if (pending)
            continue;   // producer re-pended: its wake will re-park us
        if (wakeAt <= now) {
            makeReady(d);
        } else if (wakeAt != d->iqWakeAt) {
            parkWake(d, wakeAt, now);
        }
    }
}

void
IssueQueue::wakeDepStore(DynInst *s, const PhysRegFile &regs, Cycle now)
{
    drainWaitList(s->depWaiters, regs, now);
}

void
IssueQueue::beginSelect(Cycle now)
{
    // Drain the wheel buckets for every cycle since the last select.
    // A record validates against (seq, state, wakeAt); one whose
    // wakeAt aliases a future lap re-parks for its real cycle.
    if (wheelCount > 0 && now > wheelPos) {
        Cycle from = wheelPos + 1;
        if (now - wheelPos > wheelSlots)
            from = now - wheelMask;   // each bucket visited once
        for (Cycle c = from; c <= now && wheelCount > 0; ++c) {
            auto &bucket = wheel[static_cast<std::size_t>(c & wheelMask)];
            if (bucket.empty())
                continue;
            wheelScratch.clear();
            wheelScratch.swap(bucket);
            wheelCount -= static_cast<int>(wheelScratch.size());
            for (const WakeRec &w : wheelScratch) {
                DynInst *d = w.d;
                if (d->seq != w.seq || d->iqState != IqState::Wake ||
                    d->iqWakeAt != w.at)
                    continue;   // stale (squash, re-park, or issue)
                if (w.at > now)
                    parkWake(d, w.at, now);   // future lap of this slot
                else
                    makeReady(d);
            }
        }
    }
    wheelPos = now;

    while (!wakes.empty() && wakes.top().at <= now) {
        WakeRec w = wakes.top();
        wakes.pop();
        DynInst *d = w.d;
        if (d->seq != w.seq || d->iqState != IqState::Wake ||
            d->iqWakeAt != w.at)
            continue;   // stale record (squash, re-park, or issue)
        makeReady(d);
    }
}

void
IssueQueue::requeueNotReady(DynInst *d, const PhysRegFile &regs, Cycle now)
{
    vacateReady(d);
    scheduleKnown(d, regs, now);
}

void
IssueQueue::requeueDepWait(DynInst *d, DynInst *depStore)
{
    vacateReady(d);
    d->iqState = IqState::Waiting;
    d->iqWaits = 1;
    depStore->depWaiters.push_back({d, d->seq});
}

void
IssueQueue::markIssued(DynInst *d)
{
    vacateReady(d);
    unlink(d);
    d->iqState = IqState::None;
    d->iqWaits = 0;
    --n;
}

void
IssueQueue::squashFrom(std::uint64_t fromSeq)
{
    // Entries are age-ordered, so the squash target is a list suffix.
    while (tail && tail->seq >= fromSeq) {
        DynInst *d = tail;
        vacateReady(d);
        unlink(d);
        d->iqState = IqState::None;
        d->iqWaits = 0;
        --n;
    }
}

} // namespace mg
