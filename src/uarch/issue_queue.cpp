// IssueQueue is header-only; this translation unit anchors the
// component in the build.
#include "uarch/issue_queue.hh"
