#include "uarch/store_sets.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mg {

namespace {

/** Mask for power-of-two @p n, else 0 ("use %"). */
std::uint32_t
maskOf(std::uint32_t n)
{
    return (n != 0 && (n & (n - 1)) == 0) ? n - 1 : 0;
}

} // namespace

StoreSets::StoreSets(const StoreSetsConfig &c) : cfg(c)
{
    ssit.assign(cfg.ssitEntries, noSet);
    lfst.assign(cfg.lfstEntries, 0);
    lfstPc.assign(cfg.lfstEntries, 0);
    ssitMask = maskOf(cfg.ssitEntries);
    lfstMask = maskOf(cfg.lfstEntries);
}

std::uint32_t
StoreSets::idx(Addr pc) const
{
    std::uint64_t v = pc >> 2;
    return static_cast<std::uint32_t>(
        ssitMask ? (v & ssitMask) : (v % cfg.ssitEntries));
}

std::uint32_t
StoreSets::lfstIdx(std::int32_t set) const
{
    auto v = static_cast<std::uint32_t>(set);
    return lfstMask ? (v & lfstMask) : (v % cfg.lfstEntries);
}

void
StoreSets::maybeClear()
{
    if (++accesses % cfg.clearInterval == 0) {
        std::fill(ssit.begin(), ssit.end(), noSet);
        std::fill(lfst.begin(), lfst.end(), 0);
        std::fill(lfstPc.begin(), lfstPc.end(), 0);
    }
}

std::uint64_t
StoreSets::dispatchStore(Addr pc, std::uint64_t storeSeq)
{
    maybeClear();
    std::int32_t set = ssit[idx(pc)];
    if (set == noSet)
        return 0;
    std::uint32_t s = lfstIdx(set);
    std::uint64_t prev = lfst[s];
    lfst[s] = storeSeq;
    lfstPc[s] = pc;
    return prev;
}

std::uint64_t
StoreSets::dispatchLoad(Addr pc)
{
    maybeClear();
    std::int32_t set = ssit[idx(pc)];
    if (set == noSet)
        return 0;
    return lfst[lfstIdx(set)];
}

void
StoreSets::completeStore(Addr pc, std::uint64_t storeSeq)
{
    std::int32_t set = ssit[idx(pc)];
    if (set == noSet)
        return;
    std::uint32_t s = lfstIdx(set);
    if (lfst[s] == storeSeq)
        lfst[s] = 0;
}

void
StoreSets::recordViolation(Addr loadPc, Addr storePc)
{
    ++violations_;
    std::int32_t &ls = ssit[idx(loadPc)];
    std::int32_t &ss = ssit[idx(storePc)];
    if (ls == noSet && ss == noSet) {
        ls = ss = nextSet;
        nextSet = (nextSet + 1) %
            static_cast<std::int32_t>(cfg.lfstEntries);
    } else if (ls == noSet) {
        ls = ss;
    } else if (ss == noSet) {
        ss = ls;
    } else {
        // Both have sets: merge into the smaller id (declawed merge).
        std::int32_t m = std::min(ls, ss);
        ls = ss = m;
    }
}

void
StoreSetsState::serialize(SerialWriter &w) const
{
    w.u64(ssit.size());
    for (std::int32_t v : ssit)
        w.u32(static_cast<std::uint32_t>(v));
    w.vec(lfst);
    w.vec(lfstPc);
    w.u64(accesses);
    w.u64(violations);
    w.u32(static_cast<std::uint32_t>(nextSet));
}

bool
StoreSetsState::deserialize(SerialReader &r)
{
    std::uint64_t n = r.u64();
    if (n > r.remaining() / 4) {
        r.fail();
        return false;
    }
    ssit.resize(static_cast<std::size_t>(n));
    for (std::int32_t &v : ssit)
        v = static_cast<std::int32_t>(r.u32());
    lfst = r.vec<std::uint64_t>();
    lfstPc = r.vec<Addr>();
    accesses = r.u64();
    violations = r.u64();
    nextSet = static_cast<std::int32_t>(r.u32());
    return r.ok();
}

StoreSetsState
StoreSets::exportState() const
{
    StoreSetsState s;
    s.ssit = ssit;
    s.lfst = lfst;
    s.lfstPc = lfstPc;
    s.accesses = accesses;
    s.violations = violations_;
    s.nextSet = nextSet;
    return s;
}

bool
StoreSets::stateCompatible(const StoreSetsState &s) const
{
    return s.ssit.size() == ssit.size() && s.lfst.size() == lfst.size() &&
        s.lfstPc.size() == lfstPc.size();
}

void
StoreSets::adoptState(const StoreSetsState &s)
{
    if (!stateCompatible(s))
        panic("store sets: adoptState of incompatible state");
    ssit = s.ssit;
    lfst = s.lfst;
    lfstPc = s.lfstPc;
    accesses = s.accesses;
    violations_ = s.violations;
    nextSet = s.nextSet;
}

} // namespace mg
