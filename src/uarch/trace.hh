/**
 * @file
 * Compact retired-event trace: one fixed-size record per retired
 * pipeline slot, carrying the stage timestamps and dependence links
 * the critical-path analyzer (analysis/critpath.hh) rebuilds its
 * dependence graph from.
 *
 * Capture is strictly observational: the core samples timestamps the
 * timing model already computed, so attaching a trace never perturbs a
 * run (stats stay bit-identical with tracing on or off). Events are
 * written into a caller-owned fixed-capacity ring, so full-length runs
 * stay allocation-free: once the ring wraps, the oldest events are
 * overwritten and the analyzer sees the most recent window.
 *
 * Timestamps are stored as the absolute fetch cycle plus 32-bit deltas
 * for the later stages. A slot that sits in the machine for more than
 * 2^32 cycles is not representable — no realistic configuration comes
 * within orders of magnitude of that — and the deltas saturate rather
 * than wrap so a pathological run degrades to clamped attribution, not
 * garbage.
 */

#ifndef MG_UARCH_TRACE_HH
#define MG_UARCH_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace mg {

/** One retired pipeline slot (singleton instruction or handle). */
struct TraceEvent
{
    std::uint64_t seq = 0;        ///< global age (matches DynInst::seq)
    Addr pc = 0;
    Cycle fetchAt = 0;            ///< absolute fetch cycle

    // Stage deltas relative to fetchAt (saturating).
    std::uint32_t dispatchD = 0;  ///< rename/dispatch
    std::uint32_t issueD = 0;     ///< select/issue
    std::uint32_t completeD = 0;  ///< execution complete (writeback)
    std::uint32_t commitD = 0;    ///< retirement
    std::uint32_t memExecD = 0;   ///< memory access issue (0 = none)

    // Dependence links (0 = none). Producer seqs are recorded per
    // renamed source operand; the store-set link is the predicted
    // store dependence the scheduler ordered this slot behind.
    std::uint64_t srcSeq[2] = {0, 0};
    std::uint64_t depStoreSeq = 0;

    std::uint16_t work = 1;       ///< constituent instructions
    std::uint16_t handleReplays = 0;
    InsnClass cls = InsnClass::Nop;
    std::uint8_t flags = 0;

    static constexpr std::uint8_t FlagLoad = 1 << 0;
    static constexpr std::uint8_t FlagStore = 1 << 1;
    static constexpr std::uint8_t FlagCtrl = 1 << 2;
    static constexpr std::uint8_t FlagHandle = 1 << 3;
    static constexpr std::uint8_t FlagMispredicted = 1 << 4;
    static constexpr std::uint8_t FlagTaken = 1 << 5;

    bool isLoad() const { return flags & FlagLoad; }
    bool isStore() const { return flags & FlagStore; }
    bool isCtrl() const { return flags & FlagCtrl; }
    bool isHandle() const { return flags & FlagHandle; }
    bool mispredicted() const { return flags & FlagMispredicted; }
    bool taken() const { return flags & FlagTaken; }

    Cycle dispatchAt() const { return fetchAt + dispatchD; }
    Cycle issueAt() const { return fetchAt + issueD; }
    Cycle completeAt() const { return fetchAt + completeD; }
    Cycle commitAt() const { return fetchAt + commitD; }
    /** Absolute memory-access cycle; 0 when the slot has none. */
    Cycle memExecAt() const { return memExecD ? fetchAt + memExecD : 0; }
};

/**
 * Fixed-capacity ring of retired events. All storage is reserved up
 * front; push() never allocates. The ring keeps the @e newest
 * `capacity()` events and counts everything ever pushed, so consumers
 * can tell a complete trace (totalPushed() == size()) from a wrapped
 * window.
 */
class TraceBuffer
{
  public:
    /** Default ring capacity: ~256k events (~20 MB) keeps every ref-
     *  and long-tier kernel complete while bounding huge-tier runs. */
    static constexpr std::size_t defaultCapacity = 1u << 18;

    explicit TraceBuffer(std::size_t capacity = defaultCapacity)
        : buf(capacity ? capacity : 1)
    {
    }

    void
    push(const TraceEvent &e)
    {
        buf[head % buf.size()] = e;
        ++head;
    }

    /** Events currently held (<= capacity). */
    std::size_t
    size() const
    {
        return head < buf.size() ? static_cast<std::size_t>(head)
                                 : buf.size();
    }

    /** Total events ever pushed (retired slots observed). */
    std::uint64_t totalPushed() const { return head; }

    bool wrapped() const { return head > buf.size(); }

    std::size_t capacity() const { return buf.size(); }

    /** i-th held event, oldest first. */
    const TraceEvent &
    at(std::size_t i) const
    {
        std::uint64_t base = head < buf.size() ? 0 : head - buf.size();
        return buf[(base + i) % buf.size()];
    }

    void
    clear()
    {
        head = 0;
    }

  private:
    std::vector<TraceEvent> buf;
    std::uint64_t head = 0;
};

} // namespace mg

#endif // MG_UARCH_TRACE_HH
