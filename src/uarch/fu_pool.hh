/**
 * @file
 * Per-cycle functional-unit and register-port budgets. The paper's
 * baseline executes up to 6 operations per cycle with composition
 * limits of 4 integer, 2 floating-point, 2 load, and 1 store, backed
 * by a 5-read/4-write-port register file. Mini-graph configurations
 * replace two plain integer ALUs with ALU pipelines (Section 6.2).
 */

#ifndef MG_UARCH_FU_POOL_HH
#define MG_UARCH_FU_POOL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mg/mgt.hh"
#include "uarch/alu_pipeline.hh"

namespace mg {

/** Static FU pool configuration. */
struct FuPoolConfig
{
    int intAlus = 4;        ///< plain single-cycle integer ALUs
    int aluPipes = 0;       ///< ALU pipelines (each replaces one ALU)
    int aluPipeDepth = 4;
    int fpUnits = 2;
    int loadPorts = 2;
    int storePorts = 1;
    int issueWidth = 6;     ///< total ops per cycle
    int regReadPorts = 5;
    int regWritePorts = 4;
};

/**
 * Cycle-granular issue-slot arbiter. All units are fully pipelined:
 * each accepts one new operation per cycle.
 */
class FuPool
{
  public:
    explicit FuPool(const FuPoolConfig &cfg);

    /** Start a new cycle: reset per-cycle slot counters.
     *  (Inline: runs once every simulated cycle.) */
    void
    beginCycle(Cycle c)
    {
        now = c;
        slideTo(c);
        for (AluPipeline &p : pipes_)
            p.advanceTo(c);
        totalUsed = intUsed = fpUsed = loadUsed = storeUsed = multUsed = 0;
        readUsed = 0;
    }

    /**
     * Pre-claim @p n units of @p fu for this cycle without consuming
     * issue slots — used to honour sliding-window FUBMP reservations
     * made by earlier integer-memory handles.
     */
    void preClaim(FuKind fu, int n);

    /**
     * Batched pre-claim of a SlidingWindow::usedNow() readout:
     * @p res[0..3] = IntAlu, LoadPort, StorePort, AluPipe units firing
     * this cycle. One call per select cycle instead of four kind
     * dispatches.
     */
    void
    preClaimUsed(const int res[4])
    {
        intUsed += res[0] + res[3];   // IntAlu + AluPipe: grouped slots
        loadUsed += res[1];
        storeUsed += res[2];
    }

    /** Issue slots still available this cycle. */
    bool issueSlotFree() const { return totalUsed < cfg.issueWidth; }

    /**
     * Try to claim a singleton-op slot of kind @p fu. Integer ops
     * fall back to an ALU pipeline stage-0 slot when the plain ALUs
     * are exhausted (outLat = 1, no pipeline penalty).
     */
    bool tryIssueSingleton(FuKind fu);

    /** Probe: would tryIssueSingleton(@p fu) succeed right now?
     *  (Inline: every select attempt probes before claiming.) */
    bool
    canIssueSingleton(FuKind fu) const
    {
        if (!issueSlotFree())
            return false;
        switch (fu) {
          case FuKind::IntAlu:
          case FuKind::IntMult: {
              // The paper's composition limit groups all integer ops.
              if (intUsed >= cfg.intAlus + cfg.aluPipes)
                  return false;
              if (intUsed < cfg.intAlus)
                  return true;
              for (const AluPipeline &p : pipes_) {
                  if (p.entryFree(now) && p.outputFree(now + 1))
                      return true;
              }
              return false;
          }
          case FuKind::FpAlu:
            return fpUsed < cfg.fpUnits;
          case FuKind::LoadPort:
            return loadUsed < cfg.loadPorts;
          case FuKind::StorePort:
            return storeUsed < cfg.storePorts;
          default:
            return false;
        }
    }

    /**
     * Claim a singleton slot after a successful canIssueSingleton(@p
     * fu) probe this cycle: the mutation half of tryIssueSingleton,
     * without re-validating capacity.
     * (Inline: one call per issued singleton op.)
     */
    void
    claimSingleton(FuKind fu)
    {
        switch (fu) {
          case FuKind::IntAlu:
          case FuKind::IntMult:
            if (intUsed < cfg.intAlus) {
                ++intUsed;
                ++totalUsed;
                return;
            }
            // Spill onto an ALU pipeline stage 0, as tryIssueSingleton
            // would (the probe guaranteed one is free).
            for (AluPipeline &p : pipes_) {
                if (p.tryIssue(now, 1)) {
                    ++intUsed;
                    ++totalUsed;
                    return;
                }
            }
            claimFailed();
          case FuKind::FpAlu:
            ++fpUsed;
            ++totalUsed;
            return;
          case FuKind::LoadPort:
            ++loadUsed;
            ++totalUsed;
            return;
          case FuKind::StorePort:
            ++storeUsed;
            ++totalUsed;
            return;
          default:
            claimFailed();
        }
    }

    /**
     * Try to claim an ALU pipeline for a whole integer mini-graph
     * whose output emerges after @p outLat cycles.
     */
    bool tryIssueAluPipe(int outLat);

    /** Probe: would tryIssueAluPipe(@p outLat) succeed right now?
     *  (Inline: handle attempts probe this every select pass.) */
    bool
    canIssueAluPipe(int outLat) const
    {
        if (!issueSlotFree())
            return false;
        if (intUsed >= cfg.intAlus + cfg.aluPipes)
            return false;
        for (const AluPipeline &p : pipes_) {
            if (p.entryFree(now) &&
                p.outputFree(now + static_cast<Cycle>(outLat)))
                return true;
        }
        return false;
    }

    /** Probe: is a write port free at completion cycle @p cycle? */
    bool
    writePortFree(Cycle cycle) const
    {
        return writeUsed[static_cast<std::size_t>(cycle) % window] <
            cfg.regWritePorts;
    }

    /** Register read ports remaining this cycle. */
    int readPortsFree() const { return cfg.regReadPorts - readUsed; }

    /** Claim @p n read ports; @return false if unavailable. */
    bool
    claimReadPorts(int n)
    {
        if (readUsed + n > cfg.regReadPorts)
            return false;
        readUsed += n;
        return true;
    }

    /**
     * Claim a write port at completion cycle @p cycle (write-port
     * arbitration happens at issue using the known latency).
     */
    bool
    claimWritePort(Cycle cycle)
    {
        auto s = static_cast<std::size_t>(cycle) % window;
        if (writeUsed[s] >= cfg.regWritePorts)
            return false;
        ++writeUsed[s];
        return true;
    }

    const FuPoolConfig &config() const { return cfg; }
    std::vector<AluPipeline> &pipes() { return pipes_; }

  private:
    FuPoolConfig cfg;
    Cycle now = 0;
    int totalUsed = 0;
    int intUsed = 0;
    int fpUsed = 0;
    int loadUsed = 0;
    int storeUsed = 0;
    int multUsed = 0;
    int readUsed = 0;
    std::vector<AluPipeline> pipes_;

    /** Write-port reservations over a future window. Inline array:
     *  writePortFree() runs ~3x per select cycle and the vector's
     *  pointer chase showed up in profiles. */
    static constexpr int window = 64;
    std::array<std::uint8_t, window> writeUsed{};
    Cycle lastSlide = 0;

    [[noreturn]] static void claimFailed();

    void
    slideTo(Cycle c)
    {
        if (c <= lastSlide)
            return;
        Cycle steps = c - lastSlide;
        if (steps >= window) {
            writeUsed.fill(0);
        } else {
            for (Cycle s = 0; s < steps; ++s)
                writeUsed[static_cast<std::size_t>(lastSlide + s) %
                          window] = 0;
        }
        lastSlide = c;
    }
};

} // namespace mg

#endif // MG_UARCH_FU_POOL_HH
