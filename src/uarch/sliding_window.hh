/**
 * @file
 * Sliding-window scheduler reservation bitmap (paper Section 4.3).
 *
 * Logically a two-dimensional bitmap: one dimension is functional-unit
 * resources, the other is future cycles, extended far enough to cover
 * the longest mini-graph. An integer-memory handle issues only when
 * ANDing its FUBMP against the window comes up empty; on issue the
 * FUBMP is ORed in to make the reservations. The window slides by one
 * line per cycle.
 */

#ifndef MG_UARCH_SLIDING_WINDOW_HH
#define MG_UARCH_SLIDING_WINDOW_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mg/mgt.hh"

namespace mg {

/** Per-cycle resource capacities tracked by the window. */
struct WindowResources
{
    int intAlu = 2;
    int intMult = 1;
    int loadPorts = 2;
    int storePorts = 1;
    int aluPipes = 2;
};

/** The reservation window. */
class SlidingWindow
{
  public:
    /**
     * @param res   per-cycle capacities
     * @param depth future cycles covered (>= max mini-graph latency)
     */
    SlidingWindow(const WindowResources &res, int depth = 16);

    /**
     * Would reserving @p fubmp starting at cycle offset 1 conflict
     * with existing reservations or capacity, as of cycle @p now?
     */
    bool conflicts(const std::vector<FuKind> &fubmp, Cycle now) const;

    /** Make the reservations (call only after a conflict check). */
    void reserve(const std::vector<FuKind> &fubmp, Cycle now);

    /**
     * Singleton-path reservation: claim one unit of @p fu at offset
     * @p offset cycles ahead. @return false on conflict.
     */
    bool reserveOne(FuKind fu, int offset, Cycle now);

    /** Units of @p fu still available @p offset cycles after @p now. */
    int available(FuKind fu, int offset, Cycle now) const;

    /** Units of @p fu already reserved for cycle @p now itself. */
    int usedAt(FuKind fu, Cycle now) const;

    /**
     * All reservations firing at cycle @p now, in one pass:
     * @p out[0..3] = IntAlu, LoadPort, StorePort, AluPipe (the lanes
     * the issue stage pre-claims each cycle).
     */
    void usedNow(Cycle now, int out[4]) const;

    int depth() const { return depth_; }

  private:
    WindowResources res;
    int depth_;          ///< rounded up to a power of two
    Cycle mask = 0;      ///< depth_ - 1 (line index = cycle & mask)
    /** reservations[kind][(now + offset) & mask] = units in use. */
    std::vector<std::vector<int>> used;
    Cycle lastSlide = 0;

    int capacity(FuKind fu) const;
    int kindIdx(FuKind fu) const;

    /** Advance the window to @p now, clearing passed lines. */
    void slideTo(Cycle now);

    // slideTo mutates lazily; conflicts() is logically const.
    friend class SlidingWindowTestPeer;
    void slideToConst(Cycle now) const
    {
        const_cast<SlidingWindow *>(this)->slideTo(now);
    }
};

} // namespace mg

#endif // MG_UARCH_SLIDING_WINDOW_HH
