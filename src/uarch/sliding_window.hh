/**
 * @file
 * Sliding-window scheduler reservation bitmap (paper Section 4.3).
 *
 * Logically a two-dimensional bitmap: one dimension is functional-unit
 * resources, the other is future cycles, extended far enough to cover
 * the longest mini-graph. An integer-memory handle issues only when
 * ANDing its FUBMP against the window comes up empty; on issue the
 * FUBMP is ORed in to make the reservations. The window slides by one
 * line per cycle.
 *
 * The implementation is literally that AND/OR: templates carry their
 * FUBMP as per-lane 64-bit cycle masks (PackedFubmp, built once at
 * MGT finalize), and the window keeps, per lane, a line-at-capacity
 * bitmask. A conflict check rotates each populated template lane into
 * line space and ANDs it against the at-capacity mask — one multiply-
 * free word op per lane instead of a per-entry vector scan. Unit
 * counts per line back the masks so capacities above one work and
 * available()/usedAt() stay exact.
 */

#ifndef MG_UARCH_SLIDING_WINDOW_HH
#define MG_UARCH_SLIDING_WINDOW_HH

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mg/mgt.hh"

namespace mg {

/** Per-cycle resource capacities tracked by the window. */
struct WindowResources
{
    int intAlu = 2;
    int intMult = 1;
    int loadPorts = 2;
    int storePorts = 1;
    int aluPipes = 2;
};

/** The reservation window. */
class SlidingWindow
{
  public:
    /**
     * @param res   per-cycle capacities
     * @param depth future cycles covered (>= max mini-graph latency;
     *              rounded up to a power of two, at most 64 lines)
     */
    SlidingWindow(const WindowResources &res, int depth = 16);

    /**
     * Would reserving @p p starting at cycle offset 1 conflict with
     * existing reservations or capacity, as of cycle @p now?
     */
    bool
    conflicts(const PackedFubmp &p, Cycle now) const
    {
        slideToConst(now);
        if (p.maxOffset >= depth_)
            return true;   // cannot represent: always a conflict
        auto r = static_cast<unsigned>((now + 1) & mask);
        std::uint8_t lanes = p.laneSet;
        while (lanes) {
            int l = lowestBit(lanes);
            lanes &= static_cast<std::uint8_t>(lanes - 1);
            if (rotLines(p.lane[static_cast<size_t>(l)], r) &
                atCap[static_cast<size_t>(l)])
                return true;
        }
        return false;
    }

    /** Make the reservations (call only after a conflict check). */
    void reserve(const PackedFubmp &p, Cycle now);

    /** Convenience overloads packing an unpacked FUBMP (tests). */
    bool
    conflicts(const std::vector<FuKind> &fubmp, Cycle now) const
    {
        return conflicts(packFubmp(fubmp), now);
    }
    void
    reserve(const std::vector<FuKind> &fubmp, Cycle now)
    {
        reserve(packFubmp(fubmp), now);
    }

    /**
     * Singleton-path reservation: claim one unit of @p fu at offset
     * @p offset cycles ahead. @return false on conflict.
     */
    bool reserveOne(FuKind fu, int offset, Cycle now);

    /** Units of @p fu still available @p offset cycles after @p now. */
    int available(FuKind fu, int offset, Cycle now) const;

    /** Units of @p fu already reserved for cycle @p now itself. */
    int usedAt(FuKind fu, Cycle now) const;

    /**
     * All reservations firing at cycle @p now, in one pass:
     * @p out[0..3] = IntAlu, LoadPort, StorePort, AluPipe (the lanes
     * the issue stage pre-claims each cycle).
     */
    void usedNow(Cycle now, int out[4]) const;

    int depth() const { return depth_; }

  private:
    int depth_;          ///< rounded up to a power of two, <= 64
    Cycle mask = 0;      ///< depth_ - 1 (line index = cycle & mask)
    std::uint64_t lineBits = 0;   ///< low depth_ bits set

    std::array<int, fuLaneCount> cap{};
    /** Bit L set: line L is at capacity (one more unit conflicts).
     *  Capacity-0 lanes are permanently all-ones via atCapInit. */
    std::array<std::uint64_t, fuLaneCount> atCap{};
    std::array<std::uint64_t, fuLaneCount> atCapInit{};
    /** Bit L set: line L has at least one unit reserved (slide only
     *  clears counts under occupied & passed). */
    std::array<std::uint64_t, fuLaneCount> occupied{};
    /** cnt[lane][line] = units in use (exact available()/usedAt()). */
    std::uint8_t cnt[fuLaneCount][64] = {};

    Cycle lastSlide = 0;

    static int lowestBit(std::uint64_t v) { return std::countr_zero(v); }

    /** Rotate @p m left by @p r within the low depth_ bits: template
     *  offset bit (o-1) lands on line (now + o) & mask when
     *  r = (now + 1) & mask. */
    std::uint64_t
    rotLines(std::uint64_t m, unsigned r) const
    {
        if (r == 0)
            return m & lineBits;
        return ((m << r) |
                (m >> (static_cast<unsigned>(depth_) - r))) & lineBits;
    }

    /** Advance the window to @p now, clearing passed lines.
     *  (Inline early-out: every probe slides, but only the first one
     *  per cycle advances — the rest must not pay a call.) */
    void
    slideTo(Cycle now)
    {
        if (now > lastSlide)
            slideSlow(now);
    }
    void slideSlow(Cycle now);

    // slideTo mutates lazily; conflicts() is logically const.
    friend class SlidingWindowTestPeer;
    void slideToConst(Cycle now) const
    {
        const_cast<SlidingWindow *>(this)->slideTo(now);
    }
};

} // namespace mg

#endif // MG_UARCH_SLIDING_WINDOW_HH
