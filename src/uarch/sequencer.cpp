#include "uarch/sequencer.hh"

#include <cstddef>

namespace mg {

SequencerPool::SequencerPool(int count)
{
    busyUntil.assign(static_cast<size_t>(count > 0 ? count : 1), 0);
}

bool
SequencerPool::tryStart(Cycle now, int cycles)
{
    for (Cycle &b : busyUntil) {
        if (b <= now) {
            b = now + static_cast<Cycle>(cycles);
            ++walks_;
            return true;
        }
    }
    return false;
}

int
SequencerPool::freeAt(Cycle now) const
{
    int n = 0;
    for (Cycle b : busyUntil) {
        if (b <= now)
            ++n;
    }
    return n;
}

} // namespace mg
