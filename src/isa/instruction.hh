/**
 * @file
 * Static instruction representation and the Program container.
 *
 * Operand conventions (Alpha style):
 *  - operate:  op ra, rb_or_lit, rc     sources ra, rb; destination rc
 *  - memory:   ld ra, imm(rb) / st ra, imm(rb)
 *  - branch:   b-- ra, target           imm holds the absolute target PC
 *  - br/bsr:   br ra, target            ra gets the return address
 *  - indirect: jmp/jsr/ret ra, (rb)     target in rb, link in ra
 *  - handle:   mg ra, rb, rc, #mgid
 */

#ifndef MG_ISA_INSTRUCTION_HH
#define MG_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace mg {

/** One static MG-Alpha instruction. */
struct Instruction
{
    Op op = Op::NOP;
    RegId ra = regZero;   ///< first register field
    RegId rb = regZero;   ///< second register field (regNone in imm form)
    RegId rc = regNone;   ///< destination field for operates
    std::int64_t imm = 0; ///< literal / displacement / target / MGID
    bool useImm = false;  ///< operate second operand is the literal

    /** Number of register source operands (zero registers included). */
    int numSrcs() const;

    /** Source register @p i (0 or 1), or regNone. */
    RegId src(int i) const;

    /** Destination register, or regNone. */
    RegId dst() const;

    InsnClass cls() const { return opClass(op); }
    bool isLoad() const { return isLoadOp(op); }
    bool isStore() const { return isStoreOp(op); }
    bool isMem() const { return isLoad() || isStore(); }
    bool isControl() const { return isControlOp(op); }
    bool isCondBranch() const { return isCondBranchOp(op); }
    bool isHandle() const { return op == Op::MG; }
    bool isNop() const;

    /**
     * True when the instruction writes a register that is not hard-wired
     * to zero; only such instructions allocate a physical register.
     */
    bool writesReg() const;

    /** Assembly text of this instruction. */
    std::string disasm() const;

    /** Structural equality (used by template coalescing). */
    bool operator==(const Instruction &o) const = default;
};

/**
 * A complete MG-Alpha program: a text section of instructions, an
 * initial data image, and a symbol table. PC of the instruction at
 * text index i is textBase + i * insnBytes.
 */
struct Program
{
    std::vector<Instruction> text;
    /** Initial bytes of the data section, loaded at dataBase. */
    std::vector<std::uint8_t> data;
    /** Label -> address (text labels map into the text section). */
    std::unordered_map<std::string, Addr> symbols;
    /** Entry point (defaults to textBase). */
    Addr entry = textBase;

    /** @return PC of text index @p idx. */
    static Addr pcOf(InsnIdx idx) { return textBase + idx * insnBytes; }

    /** @return text index of @p pc; panics when out of range.
     *  (Inline: the emulator resolves every dynamic PC through it.) */
    InsnIdx
    indexOf(Addr pc) const
    {
        if (!validPc(pc))
            badPc(pc);
        return static_cast<InsnIdx>((pc - textBase) / insnBytes);
    }

    /** @return true iff @p pc addresses a text slot. */
    bool
    validPc(Addr pc) const
    {
        return pc >= textBase && (pc - textBase) % insnBytes == 0 &&
               (pc - textBase) / insnBytes < text.size();
    }

    /** @return the instruction at @p pc. */
    const Instruction &at(Addr pc) const { return text[indexOf(pc)]; }

    /** @return the address of symbol @p name; fatal if absent. */
    Addr symbol(const std::string &name) const;

    /** Full-program disassembly listing. */
    std::string disasm() const;

  private:
    [[noreturn]] void badPc(Addr pc) const;
};

} // namespace mg

#endif // MG_ISA_INSTRUCTION_HH
