#include "isa/instruction.hh"

#include "common/logging.hh"

namespace mg {

int
Instruction::numSrcs() const
{
    return (src(0) != regNone ? 1 : 0) + (src(1) != regNone ? 1 : 0);
}

RegId
Instruction::src(int i) const
{
    switch (cls()) {
      case InsnClass::IntAlu:
      case InsnClass::IntMult:
      case InsnClass::FpAlu:
      case InsnClass::FpDiv:
        if (op == Op::CMOVEQ || op == Op::CMOVNE) {
            // rc = (test ra) ? rb : old rc -- reads ra, rb, and rc.
            // We model the rc read via src slots (ra, rb) plus an implicit
            // read handled by treating cmov as reading its destination:
            // keep the common 2-source view and forbid cmov in mini-graphs
            // with a third input by conservative legality checks.
            if (i == 0)
                return ra;
            if (i == 1)
                return useImm ? regNone : rb;
            return regNone;
        }
        if (i == 0)
            return ra;
        if (i == 1)
            return useImm ? regNone : rb;
        return regNone;
      case InsnClass::Load:
        return i == 0 ? rb : regNone;       // base register
      case InsnClass::Store:
        if (i == 0)
            return rb;                      // base
        if (i == 1)
            return ra;                      // data
        return regNone;
      case InsnClass::CondBranch:
        return i == 0 ? ra : regNone;       // tested register
      case InsnClass::UncondBranch:
        return regNone;
      case InsnClass::IndirectJump:
        return i == 0 ? rb : regNone;       // target register
      case InsnClass::Handle:
        if (i == 0)
            return ra;
        if (i == 1)
            return rb;
        return regNone;
      case InsnClass::Nop:
      case InsnClass::Halt:
        return regNone;
    }
    return regNone;
}

RegId
Instruction::dst() const
{
    switch (cls()) {
      case InsnClass::IntAlu:
      case InsnClass::IntMult:
      case InsnClass::FpAlu:
      case InsnClass::FpDiv:
        return rc;
      case InsnClass::Load:
        return ra;
      case InsnClass::UncondBranch:
      case InsnClass::IndirectJump:
        return ra;                          // link register (may be r31)
      case InsnClass::Handle:
        return rc;
      default:
        return regNone;
    }
}

bool
Instruction::isNop() const
{
    if (op == Op::NOP)
        return true;
    // Operates targeting the zero register are architectural no-ops,
    // matching the Alpha convention (e.g. bis r31,r31,r31).
    RegId d = dst();
    return (cls() == InsnClass::IntAlu && d != regNone && isZeroReg(d));
}

bool
Instruction::writesReg() const
{
    RegId d = dst();
    return d != regNone && !isZeroReg(d);
}

namespace {

std::string
regName(RegId r)
{
    if (r == regNone)
        return "-";
    if (isFpReg(r))
        return strfmt("f%d", r - fpBase);
    return strfmt("r%d", r);
}

} // namespace

std::string
Instruction::disasm() const
{
    switch (cls()) {
      case InsnClass::IntAlu:
      case InsnClass::IntMult:
      case InsnClass::FpAlu:
      case InsnClass::FpDiv:
        if (op == Op::LDA || op == Op::LDAH) {
            return strfmt("%s %s,%lld(%s)", opName(op),
                          regName(rc).c_str(),
                          static_cast<long long>(imm),
                          regName(ra).c_str());
        }
        if (useImm) {
            return strfmt("%s %s,%lld,%s", opName(op), regName(ra).c_str(),
                          static_cast<long long>(imm), regName(rc).c_str());
        }
        return strfmt("%s %s,%s,%s", opName(op), regName(ra).c_str(),
                      regName(rb).c_str(), regName(rc).c_str());
      case InsnClass::Load:
      case InsnClass::Store:
        return strfmt("%s %s,%lld(%s)", opName(op), regName(ra).c_str(),
                      static_cast<long long>(imm), regName(rb).c_str());
      case InsnClass::CondBranch:
        return strfmt("%s %s,0x%llx", opName(op), regName(ra).c_str(),
                      static_cast<unsigned long long>(imm));
      case InsnClass::UncondBranch:
        return strfmt("%s %s,0x%llx", opName(op), regName(ra).c_str(),
                      static_cast<unsigned long long>(imm));
      case InsnClass::IndirectJump:
        return strfmt("%s %s,(%s)", opName(op), regName(ra).c_str(),
                      regName(rb).c_str());
      case InsnClass::Handle:
        return strfmt("mg %s,%s,%s,%lld", regName(ra).c_str(),
                      regName(rb).c_str(), regName(rc).c_str(),
                      static_cast<long long>(imm));
      case InsnClass::Nop:
        return "nop";
      case InsnClass::Halt:
        return "halt";
    }
    return "?";
}

void
Program::badPc(Addr pc) const
{
    panic("PC 0x%llx outside text section",
          static_cast<unsigned long long>(pc));
}

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '%s'", name.c_str());
    return it->second;
}

std::string
Program::disasm() const
{
    std::string out;
    for (size_t i = 0; i < text.size(); ++i) {
        out += strfmt("0x%llx: %s\n",
                      static_cast<unsigned long long>(pcOf(
                          static_cast<InsnIdx>(i))),
                      text[i].disasm().c_str());
    }
    return out;
}

} // namespace mg
