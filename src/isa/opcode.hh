/**
 * @file
 * MG-Alpha opcode set. A 64-bit Alpha-flavoured RISC ISA: operate
 * instructions take two register sources (the second may be a literal)
 * and one destination; memory instructions use displacement addressing;
 * conditional branches test a single register against zero.
 */

#ifndef MG_ISA_OPCODE_HH
#define MG_ISA_OPCODE_HH

#include <cstdint>
#include <string>

namespace mg {

/** Every MG-Alpha opcode. */
enum class Op : std::uint8_t
{
    // Integer arithmetic (longword forms operate on the low 32 bits and
    // sign-extend the result, as on Alpha).
    ADDL, ADDQ, SUBL, SUBQ, MULL, MULQ,
    S4ADDL, S8ADDL, S4ADDQ, S8ADDQ,
    // Logical.
    AND, BIS, XOR, BIC, ORNOT, EQV,
    // Shifts.
    SLL, SRL, SRA,
    // Compares (result 0/1).
    CMPEQ, CMPLT, CMPLE, CMPULT, CMPULE,
    // Address/immediate generation. LDA rc = ra + imm; LDAH scales by 65536.
    LDA, LDAH,
    // Sign extension and bit counting.
    SEXTB, SEXTW, CTPOP, CTLZ, CTTZ,
    // Byte zap: clear bytes of ra selected by the complement of imm mask.
    ZAPNOT,
    // Conditional moves: rc = ra if (rb test) else rc unchanged.
    CMOVEQ, CMOVNE,
    // Floating point (double precision only).
    ADDT, SUBT, MULT, DIVT, CMPTEQ, CMPTLT, CMPTLE, CVTQT, CVTTQ, CPYS,
    // Loads: ra = mem[rb + imm].
    LDBU, LDWU, LDL, LDQ, LDT,
    // Stores: mem[rb + imm] = ra.
    STB, STW, STL, STQ, STT,
    // Conditional branches: test ra, target in imm (absolute insn address).
    BEQ, BNE, BLT, BLE, BGT, BGE, BLBC, BLBS, FBEQ, FBNE,
    // Unconditional control. BR/BSR write the return address into ra.
    BR, BSR,
    // Indirect control: target = rb, link in ra.
    JMP, JSR, RET,
    // Mini-graph handle: reserved opcode, imm = MGID.
    MG,
    // No-op and simulation terminator.
    NOP, HALT,

    NUM_OPS
};

/** Broad instruction classes used by the pipeline and selection logic. */
enum class InsnClass : std::uint8_t
{
    IntAlu,      ///< single-cycle integer operate
    IntMult,     ///< multi-cycle integer multiply
    FpAlu,       ///< floating-point operate
    FpDiv,       ///< long-latency fp divide
    Load,        ///< memory read
    Store,       ///< memory write
    CondBranch,  ///< conditional direct branch
    UncondBranch,///< direct jump / call
    IndirectJump,///< register-indirect jump / call / return
    Handle,      ///< mini-graph handle (MG)
    Nop,         ///< architectural no-op
    Halt,        ///< stops simulation
};

/** @return the class of @p op. */
InsnClass opClass(Op op);

/** @return the assembler mnemonic of @p op. */
const char *opName(Op op);

/** @return true for any load opcode. */
bool isLoadOp(Op op);

/** @return true for any store opcode. */
bool isStoreOp(Op op);

/** @return true for any control-transfer opcode (branch/jump/call/ret). */
bool isControlOp(Op op);

/** @return true for conditional direct branches. */
bool isCondBranchOp(Op op);

/**
 * @return true for opcodes eligible to appear inside an integer
 * mini-graph body: single-cycle integer operates. Multiplies, floating
 * point, and control transfers other than a terminal branch are excluded.
 */
bool isMgAluOp(Op op);

/** Execution latency in cycles of @p op on its functional unit. */
int opLatency(Op op);

} // namespace mg

#endif // MG_ISA_OPCODE_HH
