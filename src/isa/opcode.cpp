#include "isa/opcode.hh"

#include "common/logging.hh"

namespace mg {

namespace {

struct OpInfo
{
    const char *name;
    InsnClass cls;
    int latency;
};

// Indexed by Op. Latencies follow the paper's machine model: 1-cycle
// integer ALU, 3-cycle multiply, 4-cycle fp operate, 12-cycle fp divide.
// Memory latencies come from the cache hierarchy, not this table; the
// value here is the load-to-use *hit* latency used by the scheduler.
const OpInfo opTable[] = {
    {"addl",   InsnClass::IntAlu, 1}, {"addq",   InsnClass::IntAlu, 1},
    {"subl",   InsnClass::IntAlu, 1}, {"subq",   InsnClass::IntAlu, 1},
    {"mull",   InsnClass::IntMult, 3}, {"mulq",  InsnClass::IntMult, 3},
    {"s4addl", InsnClass::IntAlu, 1}, {"s8addl", InsnClass::IntAlu, 1},
    {"s4addq", InsnClass::IntAlu, 1}, {"s8addq", InsnClass::IntAlu, 1},
    {"and",    InsnClass::IntAlu, 1}, {"bis",    InsnClass::IntAlu, 1},
    {"xor",    InsnClass::IntAlu, 1}, {"bic",    InsnClass::IntAlu, 1},
    {"ornot",  InsnClass::IntAlu, 1}, {"eqv",    InsnClass::IntAlu, 1},
    {"sll",    InsnClass::IntAlu, 1}, {"srl",    InsnClass::IntAlu, 1},
    {"sra",    InsnClass::IntAlu, 1},
    {"cmpeq",  InsnClass::IntAlu, 1}, {"cmplt",  InsnClass::IntAlu, 1},
    {"cmple",  InsnClass::IntAlu, 1}, {"cmpult", InsnClass::IntAlu, 1},
    {"cmpule", InsnClass::IntAlu, 1},
    {"lda",    InsnClass::IntAlu, 1}, {"ldah",   InsnClass::IntAlu, 1},
    {"sextb",  InsnClass::IntAlu, 1}, {"sextw",  InsnClass::IntAlu, 1},
    {"ctpop",  InsnClass::IntAlu, 1}, {"ctlz",   InsnClass::IntAlu, 1},
    {"cttz",   InsnClass::IntAlu, 1},
    {"zapnot", InsnClass::IntAlu, 1},
    {"cmoveq", InsnClass::IntAlu, 1}, {"cmovne", InsnClass::IntAlu, 1},
    {"addt",   InsnClass::FpAlu, 4}, {"subt",   InsnClass::FpAlu, 4},
    {"mult",   InsnClass::FpAlu, 4}, {"divt",   InsnClass::FpDiv, 12},
    {"cmpteq", InsnClass::FpAlu, 4}, {"cmptlt", InsnClass::FpAlu, 4},
    {"cmptle", InsnClass::FpAlu, 4},
    {"cvtqt",  InsnClass::FpAlu, 4}, {"cvttq",  InsnClass::FpAlu, 4},
    {"cpys",   InsnClass::FpAlu, 4},
    {"ldbu",   InsnClass::Load, 2}, {"ldwu",   InsnClass::Load, 2},
    {"ldl",    InsnClass::Load, 2}, {"ldq",    InsnClass::Load, 2},
    {"ldt",    InsnClass::Load, 2},
    {"stb",    InsnClass::Store, 1}, {"stw",    InsnClass::Store, 1},
    {"stl",    InsnClass::Store, 1}, {"stq",    InsnClass::Store, 1},
    {"stt",    InsnClass::Store, 1},
    {"beq",    InsnClass::CondBranch, 1}, {"bne", InsnClass::CondBranch, 1},
    {"blt",    InsnClass::CondBranch, 1}, {"ble", InsnClass::CondBranch, 1},
    {"bgt",    InsnClass::CondBranch, 1}, {"bge", InsnClass::CondBranch, 1},
    {"blbc",   InsnClass::CondBranch, 1}, {"blbs", InsnClass::CondBranch, 1},
    {"fbeq",   InsnClass::CondBranch, 1}, {"fbne", InsnClass::CondBranch, 1},
    {"br",     InsnClass::UncondBranch, 1},
    {"bsr",    InsnClass::UncondBranch, 1},
    {"jmp",    InsnClass::IndirectJump, 1},
    {"jsr",    InsnClass::IndirectJump, 1},
    {"ret",    InsnClass::IndirectJump, 1},
    {"mg",     InsnClass::Handle, 1},
    {"nop",    InsnClass::Nop, 1},
    {"halt",   InsnClass::Halt, 1},
};

static_assert(sizeof(opTable) / sizeof(opTable[0]) ==
              static_cast<size_t>(Op::NUM_OPS),
              "opTable out of sync with Op enum");

const OpInfo &
info(Op op)
{
    auto idx = static_cast<size_t>(op);
    if (idx >= static_cast<size_t>(Op::NUM_OPS))
        panic("bad opcode %zu", idx);
    return opTable[idx];
}

} // namespace

InsnClass
opClass(Op op)
{
    return info(op).cls;
}

const char *
opName(Op op)
{
    return info(op).name;
}

int
opLatency(Op op)
{
    return info(op).latency;
}

bool
isLoadOp(Op op)
{
    return opClass(op) == InsnClass::Load;
}

bool
isStoreOp(Op op)
{
    return opClass(op) == InsnClass::Store;
}

bool
isControlOp(Op op)
{
    InsnClass c = opClass(op);
    return c == InsnClass::CondBranch || c == InsnClass::UncondBranch ||
           c == InsnClass::IndirectJump;
}

bool
isCondBranchOp(Op op)
{
    return opClass(op) == InsnClass::CondBranch;
}

bool
isMgAluOp(Op op)
{
    return opClass(op) == InsnClass::IntAlu;
}

} // namespace mg
