/**
 * @file
 * Benchmark kernels: hand-written MG-Alpha assembly implementations of
 * the algorithms the paper's four suites are known for, each paired
 * with a deterministic input generator and a C++ reference validator.
 *
 * These stand in for SPEC2000 / MediaBench / CommBench / MiBench
 * binaries, which are proprietary or unobtainable (see DESIGN.md's
 * substitution table). Every kernel writes a final checksum to its
 * `<name>_out` symbol; validation recomputes the checksum with a C++
 * mirror of the same algorithm over the same inputs.
 */

#ifndef MG_WORKLOADS_KERNEL_HH
#define MG_WORKLOADS_KERNEL_HH

#include <string>
#include <vector>

#include "emu/emulator.hh"
#include "isa/instruction.hh"

namespace mg {

/** One benchmark kernel. */
struct Kernel
{
    const char *name;           ///< short id, e.g. "crc"
    const char *suite;          ///< SPECint-S, MediaBench-S, ...
    const char *description;
    const char *source;         ///< MG-Alpha assembly text

    /**
     * Write inputs into @p emu's memory (call after reset).
     * @param inputSet 0 = reference inputs, 1+ = alternate sets for
     *        the profile-robustness study
     */
    void (*setup)(Emulator &emu, int inputSet);

    /** Check outputs against the C++ reference implementation. */
    bool (*validate)(const Emulator &emu, int inputSet);
};

/** Every registered kernel, all suites. */
const std::vector<Kernel> &allKernels();

/** Lookup by name; fatal when unknown. */
const Kernel &findKernel(const std::string &name);

/** Kernels belonging to @p suite (in registration order). */
std::vector<const Kernel *> suiteKernels(const std::string &suite);

/** The four suite names in presentation order. */
const std::vector<std::string> &suiteNames();

/** Assemble a kernel's source (cached per kernel). */
const Program &kernelProgram(const Kernel &k);

// Registration hooks used by the per-suite translation units.
std::vector<Kernel> specintKernels();
std::vector<Kernel> mediaKernels();
std::vector<Kernel> commKernels();
std::vector<Kernel> mibenchKernels();

} // namespace mg

#endif // MG_WORKLOADS_KERNEL_HH
