/**
 * @file
 * Benchmark kernels: hand-written MG-Alpha assembly implementations of
 * the algorithms the paper's four suites are known for, each paired
 * with a deterministic input generator and a C++ reference validator.
 *
 * These stand in for SPEC2000 / MediaBench / CommBench / MiBench
 * binaries, which are proprietary or unobtainable (see DESIGN.md's
 * substitution table). Every kernel writes a final checksum to its
 * `<name>_out` symbol; validation recomputes the checksum with a C++
 * mirror of the same algorithm over the same inputs.
 *
 * Kernels carry a *scale* (size-class) axis. `Scale::Ref` is the
 * tier-1 configuration every kernel supports: 50k-300k units of
 * dynamic work, sized so full kernel x configuration sweeps stay
 * cheap. `Scale::Long` is the M-scale tier (>= 1M units of work per
 * kernel, every kernel) that makes sampled-simulation error
 * measurable and exercises timing-dependent speculation state
 * (store-set training, congestion equilibria). `Scale::Huge` is the
 * 10M+-scale tier (a representative kernel per suite) long enough to
 * cross store-set clear intervals and stress fast-forward
 * scalability. A scaled variant reuses the reference program text
 * when only its in-memory inputs and iteration counts grow, or
 * substitutes a larger-data-segment assembly via scaledSource() when
 * a buffer must be resized.
 */

#ifndef MG_WORKLOADS_KERNEL_HH
#define MG_WORKLOADS_KERNEL_HH

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "emu/emulator.hh"
#include "isa/instruction.hh"

namespace mg {

/** Size class of a kernel run. */
enum class Scale
{
    Ref,    ///< tier-1 reference inputs (every kernel)
    Long,   ///< M-scale inputs, >= 1M units of work (every kernel)
    Huge,   ///< 10M+-scale inputs (one representative per suite)
};

/** The scales in size order, for iteration. */
constexpr Scale allScales[] = {Scale::Ref, Scale::Long, Scale::Huge};

/** Stable lowercase name ("ref" / "long" / "huge"). */
const char *scaleName(Scale s);

/** Parse a --scale value; fatal on anything but "ref"/"long"/"huge". */
Scale parseScale(const std::string &text);

/**
 * One non-reference size class of a kernel (null members =
 * unsupported at that scale).
 */
struct ScaleVariant
{
    /** Assembly at this scale; null = the Ref program is reused (the
     *  scaled inputs fit its buffers and only iteration counts grow). */
    const char *source = nullptr;
    void (*setup)(Emulator &emu, int inputSet) = nullptr;
    bool (*validate)(const Emulator &emu, int inputSet) = nullptr;
};

/** One benchmark kernel. */
struct Kernel
{
    const char *name;           ///< short id, e.g. "crc"
    const char *suite;          ///< SPECint-S, MediaBench-S, ...
    const char *description;
    const char *source;         ///< MG-Alpha assembly text (Scale::Ref)

    /**
     * Write inputs into @p emu's memory (call after reset).
     * @param inputSet 0 = reference inputs, 1+ = alternate sets for
     *        the profile-robustness study
     */
    void (*setup)(Emulator &emu, int inputSet);

    /** Check outputs against the C++ reference implementation. */
    bool (*validate)(const Emulator &emu, int inputSet);

    // ---- scaled variants (value-initialized = unsupported) ----
    ScaleVariant longVariant = {};
    ScaleVariant hugeVariant = {};

    /** The variant registered for @p s (null for Scale::Ref). */
    const ScaleVariant *
    variantOf(Scale s) const
    {
        if (s == Scale::Long)
            return &longVariant;
        if (s == Scale::Huge)
            return &hugeVariant;
        return nullptr;
    }

    /** Does the kernel support @p s? (Ref always.) */
    bool
    supports(Scale s) const
    {
        const ScaleVariant *v = variantOf(s);
        return !v || v->setup != nullptr;
    }

    /** Assembly text executed at @p s. */
    const char *
    sourceFor(Scale s) const
    {
        const ScaleVariant *v = variantOf(s);
        return v && v->source ? v->source : source;
    }

    /** Scale-dispatching setup; fatal when @p s is unsupported. */
    void setupAt(Emulator &emu, int inputSet, Scale s) const;

    /** Scale-dispatching validate; fatal when @p s is unsupported. */
    bool validateAt(const Emulator &emu, int inputSet, Scale s) const;
};

/** Every registered kernel, all suites. */
const std::vector<Kernel> &allKernels();

/** Lookup by name; fatal (listing every valid name) when unknown. */
const Kernel &findKernel(const std::string &name);

/** Kernels belonging to @p suite (in registration order). */
std::vector<const Kernel *> suiteKernels(const std::string &suite);

/** The four suite names in presentation order. */
const std::vector<std::string> &suiteNames();

/**
 * One-line-per-kernel discovery listing (name, suite, supported
 * scales, description) — what `--list-kernels` prints.
 */
std::string kernelListing();

/** Assemble a kernel's source for @p scale (cached per kernel+scale;
 *  scales sharing one source share one Program). */
const Program &kernelProgram(const Kernel &k, Scale scale = Scale::Ref);

/**
 * Derive a scale-variant assembly text: @p src with every (from, to)
 * replacement applied. Each `from` must occur exactly once — matching
 * a full `sym: .space N` line keeps substitutions unambiguous — and
 * the call is fatal otherwise. The returned storage lives for the
 * process (registration-time use).
 */
const char *scaledSource(
    const char *src,
    std::initializer_list<std::pair<const char *, const char *>> subs);

// Registration hooks used by the per-suite translation units.
std::vector<Kernel> specintKernels();
std::vector<Kernel> mediaKernels();
std::vector<Kernel> commKernels();
std::vector<Kernel> mibenchKernels();

} // namespace mg

#endif // MG_WORKLOADS_KERNEL_HH
