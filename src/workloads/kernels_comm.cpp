/**
 * @file
 * CommBench-S kernels: network-processor workloads (frame checksums,
 * packet scheduling, fragmentation, route lookup, forward error
 * correction), mirroring the character of the CommBench programs.
 */

#include "workloads/kernel.hh"

#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mg {

namespace {

// ---------------------------------------------------------------------
// crc: table-driven CRC32 (table built in-kernel, then a byte loop).
// ---------------------------------------------------------------------

constexpr int crcN = 3600;
constexpr int crcNLong = 110000;    ///< ~1.1M units of work
constexpr int crcNHuge = 910000;    ///< ~10.0M units of work

const char *crcSrc = R"ASM(
    .text
main:
    # build the 256-entry reflected CRC32 table
    clr  r10              # i
    lda  r11, crc_table
tbl:
    mov  r10, r1          # c = i
    li   r12, 8
inner:
    and  r1, 1, r2
    srl  r1, 1, r1
    beq  r2, skip
    ldq  r3, crc_poly
    xor  r1, r3, r1
skip:
    subq r12, 1, r12
    bgt  r12, inner
    s4addq r10, r11, r4
    stl  r1, 0(r4)
    addq r10, 1, r10
    cmplt r10, 256, r2
    bne  r2, tbl
    # process the buffer
    ldq  r10, crc_n
    lda  r13, crc_in
    li   r14, 0xFFFFFFFF  # running crc
bytes:
    ldbu r1, 0(r13)
    xor  r14, r1, r2
    and  r2, 255, r2
    s4addq r2, r11, r3
    ldl  r4, 0(r3)
    zapnot r4, 15, r4
    srl  r14, 8, r5
    xor  r4, r5, r14
    lda  r13, 1(r13)
    subq r10, 1, r10
    bgt  r10, bytes
    stq  r14, crc_out
    halt
    .data
crc_poly:  .quad 0xEDB88320
crc_n:     .quad 0
crc_out:   .quad 0
crc_table: .space 1024
crc_in:    .space 3600
)ASM";

void
crcSetupImpl(Emulator &emu, int inputSet, int n)
{
    Rng rng(0xc2cu + static_cast<unsigned>(inputSet));
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("crc_n"), static_cast<std::uint64_t>(n), 8);
    Addr in = p.symbol("crc_in");
    for (int i = 0; i < n; ++i)
        m.writeByte(in + static_cast<Addr>(i),
                    static_cast<std::uint8_t>(rng.next()));
}

bool
crcValidateImpl(const Emulator &emu, int inputSet, int n)
{
    Rng rng(0xc2cu + static_cast<unsigned>(inputSet));
    std::uint64_t table[256];
    for (std::uint64_t i = 0; i < 256; ++i) {
        std::uint64_t c = i;
        for (int k = 0; k < 8; ++k) {
            std::uint64_t low = c & 1;
            c >>= 1;
            if (low)
                c ^= 0xEDB88320ull;
        }
        table[i] = c;
    }
    std::uint64_t crc = 0xFFFFFFFFull;
    for (int i = 0; i < n; ++i) {
        std::uint8_t b = static_cast<std::uint8_t>(rng.next());
        crc = table[(crc ^ b) & 255] ^ (crc >> 8);
    }
    return emu.memory().read(emu.program().symbol("crc_out"), 8) == crc;
}

void
crcSetup(Emulator &emu, int inputSet)
{
    crcSetupImpl(emu, inputSet, crcN);
}

bool
crcValidate(const Emulator &emu, int inputSet)
{
    return crcValidateImpl(emu, inputSet, crcN);
}

void
crcSetupLong(Emulator &emu, int inputSet)
{
    crcSetupImpl(emu, inputSet, crcNLong);
}

bool
crcValidateLong(const Emulator &emu, int inputSet)
{
    return crcValidateImpl(emu, inputSet, crcNLong);
}

void
crcSetupHuge(Emulator &emu, int inputSet)
{
    crcSetupImpl(emu, inputSet, crcNHuge);
}

bool
crcValidateHuge(const Emulator &emu, int inputSet)
{
    return crcValidateImpl(emu, inputSet, crcNHuge);
}

/** Long-tier program: the frame buffer grows to crcNLong bytes. */
const char *crcLongSrc = scaledSource(
    crcSrc, {{"crc_in:    .space 3600", "crc_in:    .space 110000"}});

/** Huge-tier program: crcNHuge frame bytes. */
const char *crcHugeSrc = scaledSource(
    crcSrc, {{"crc_in:    .space 3600", "crc_in:    .space 910000"}});

// ---------------------------------------------------------------------
// drr: deficit round robin packet scheduling over 8 queues.
// ---------------------------------------------------------------------

constexpr int drrQueues = 8;
constexpr int drrPerQueue = 420;
constexpr int drrPerQueueLong = 3000;   ///< ~1.1M units of work
constexpr std::int64_t drrQuantum = 700;

const char *drrSrc = R"ASM(
    .text
    # queue q's packets are the quads at drr_pkts + q*420*8; heads and
    # deficits are per-queue quads. Serve until every queue is empty.
main:
    ldq  r10, drr_total   # packets remaining
    clr  r20              # checksum
    clr  r21              # service order counter
rr:
    clr  r11              # q
queue:
    lda  r1, drr_head
    s8addq r11, r1, r1
    ldq  r2, 0(r1)        # head index
    ldq  r3, drr_perq
    cmplt r2, r3, r4
    beq  r4, nextq        # queue empty
    # deficit += quantum
    lda  r4, drr_def
    s8addq r11, r4, r4
    ldq  r5, 0(r4)
    ldq  r6, drr_quant
    addq r5, r6, r5
serve:
    cmplt r2, r3, r6
    beq  r6, qdone
    # pkt = pkts[q*perq + head]
    ldq  r6, drr_perq
    mulq r11, r6, r6
    addq r6, r2, r6
    lda  r7, drr_pkts
    s8addq r6, r7, r7
    ldq  r8, 0(r7)        # packet length
    cmple r8, r5, r9
    beq  r9, qdone
    subq r5, r8, r5       # deficit -= len
    addq r2, 1, r2        # pop
    subq r10, 1, r10
    addq r21, 1, r21
    mulq r8, r21, r9
    xor  r20, r9, r20     # order-sensitive checksum
    br   serve
qdone:
    stq  r2, 0(r1)
    stq  r5, 0(r4)
nextq:
    addq r11, 1, r11
    cmplt r11, 8, r2
    bne  r2, queue
    bgt  r10, rr
    stq  r20, drr_out
    halt
    .data
drr_total: .quad 0
drr_perq:  .quad 420
drr_quant: .quad 700
drr_out:   .quad 0
drr_head:  .space 64
drr_def:   .space 64
drr_pkts:  .space 26880
)ASM";

void
drrGen(Rng &rng, std::vector<std::int64_t> &pkts, int perQueue)
{
    pkts.resize(static_cast<size_t>(drrQueues) *
                static_cast<size_t>(perQueue));
    for (auto &l : pkts)
        l = static_cast<std::int64_t>(64 + rng.below(1437));
}

void
drrSetupImpl(Emulator &emu, int inputSet, int perQueue)
{
    Rng rng(0xd66u + static_cast<unsigned>(inputSet));
    std::vector<std::int64_t> pkts;
    drrGen(rng, pkts, perQueue);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("drr_total"),
            static_cast<std::uint64_t>(drrQueues) *
                static_cast<std::uint64_t>(perQueue),
            8);
    Addr base = p.symbol("drr_pkts");
    for (size_t i = 0; i < pkts.size(); ++i)
        m.write(base + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(pkts[i]), 8);
}

bool
drrValidateImpl(const Emulator &emu, int inputSet, int perQueue)
{
    Rng rng(0xd66u + static_cast<unsigned>(inputSet));
    std::vector<std::int64_t> pkts;
    drrGen(rng, pkts, perQueue);
    std::int64_t head[drrQueues] = {};
    std::int64_t deficit[drrQueues] = {};
    std::int64_t remaining =
        static_cast<std::int64_t>(drrQueues) * perQueue;
    std::uint64_t sum = 0;
    std::uint64_t order = 0;
    while (remaining > 0) {
        for (int q = 0; q < drrQueues; ++q) {
            if (head[q] >= perQueue)
                continue;
            deficit[q] += drrQuantum;
            while (head[q] < perQueue) {
                std::int64_t len =
                    pkts[static_cast<size_t>(q * perQueue + head[q])];
                if (len > deficit[q])
                    break;
                deficit[q] -= len;
                ++head[q];
                --remaining;
                ++order;
                sum ^= static_cast<std::uint64_t>(len) * order;
            }
        }
    }
    return emu.memory().read(emu.program().symbol("drr_out"), 8) == sum;
}

void
drrSetup(Emulator &emu, int inputSet)
{
    drrSetupImpl(emu, inputSet, drrPerQueue);
}

bool
drrValidate(const Emulator &emu, int inputSet)
{
    return drrValidateImpl(emu, inputSet, drrPerQueue);
}

void
drrSetupLong(Emulator &emu, int inputSet)
{
    drrSetupImpl(emu, inputSet, drrPerQueueLong);
}

bool
drrValidateLong(const Emulator &emu, int inputSet)
{
    return drrValidateImpl(emu, inputSet, drrPerQueueLong);
}

/** Long-tier program: the per-queue depth (an assembly-data constant
 *  the scheduler loop reads) and the packet array both grow. */
const char *drrLongSrc = scaledSource(
    drrSrc, {{"drr_perq:  .quad 420", "drr_perq:  .quad 3000"},
             {"drr_pkts:  .space 26880", "drr_pkts:  .space 192000"}});

// ---------------------------------------------------------------------
// frag: IP fragmentation — split packets into MTU-sized fragments and
// emit (offset, len, more-flag) headers.
// ---------------------------------------------------------------------

constexpr int fragPkts = 1300;
constexpr int fragPktsLong = 24000;     ///< ~1.1M units of work
constexpr std::int64_t fragMtu = 576;
constexpr std::int64_t fragHdr = 20;

const char *fragSrc = R"ASM(
    .text
main:
    ldq  r10, frag_n
    lda  r11, frag_len
    clr  r20              # checksum
    clr  r21              # fragments emitted
pkt:
    ldq  r1, 0(r11)       # payload length
    clr  r2               # offset
frag:
    subq r1, r2, r3       # remaining
    ldq  r4, frag_cap     # MTU-20 payload per fragment
    cmple r3, r4, r5
    bne  r5, last
    # full fragment: len = cap, more = 1
    mulq r2, 7, r6
    xor  r6, r4, r6
    addq r6, 1, r6
    xor  r20, r6, r20
    addq r21, 1, r21
    addq r2, r4, r2
    br   frag
last:
    mulq r2, 7, r6
    xor  r6, r3, r6
    xor  r20, r6, r20
    addq r21, 1, r21
    lda  r11, 8(r11)
    subq r10, 1, r10
    bgt  r10, pkt
    stq  r20, frag_out
    stq  r21, frag_cnt
    halt
    .data
frag_n:   .quad 0
frag_cap: .quad 556
frag_out: .quad 0
frag_cnt: .quad 0
frag_len: .space 10400
)ASM";

void
fragGen(Rng &rng, std::vector<std::int64_t> &lens, int pkts)
{
    lens.resize(static_cast<size_t>(pkts));
    for (auto &l : lens)
        l = static_cast<std::int64_t>(40 + rng.below(3960));
}

void
fragSetupImpl(Emulator &emu, int inputSet, int pkts)
{
    Rng rng(0xf4a6u + static_cast<unsigned>(inputSet));
    std::vector<std::int64_t> lens;
    fragGen(rng, lens, pkts);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("frag_n"), static_cast<std::uint64_t>(pkts), 8);
    Addr base = p.symbol("frag_len");
    for (size_t i = 0; i < lens.size(); ++i)
        m.write(base + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(lens[i]), 8);
}

bool
fragValidateImpl(const Emulator &emu, int inputSet, int pkts)
{
    Rng rng(0xf4a6u + static_cast<unsigned>(inputSet));
    std::vector<std::int64_t> lens;
    fragGen(rng, lens, pkts);
    const std::int64_t cap = fragMtu - fragHdr;
    std::uint64_t sum = 0;
    std::uint64_t count = 0;
    for (std::int64_t len : lens) {
        std::int64_t off = 0;
        for (;;) {
            std::int64_t rem = len - off;
            if (rem <= cap) {
                sum ^= static_cast<std::uint64_t>(off * 7) ^
                    static_cast<std::uint64_t>(rem);
                ++count;
                break;
            }
            sum ^= (static_cast<std::uint64_t>(off * 7) ^
                    static_cast<std::uint64_t>(cap)) + 1;
            ++count;
            off += cap;
        }
    }
    const Program &p = emu.program();
    return emu.memory().read(p.symbol("frag_out"), 8) == sum &&
        emu.memory().read(p.symbol("frag_cnt"), 8) == count;
}

void
fragSetup(Emulator &emu, int inputSet)
{
    fragSetupImpl(emu, inputSet, fragPkts);
}

bool
fragValidate(const Emulator &emu, int inputSet)
{
    return fragValidateImpl(emu, inputSet, fragPkts);
}

void
fragSetupLong(Emulator &emu, int inputSet)
{
    fragSetupImpl(emu, inputSet, fragPktsLong);
}

bool
fragValidateLong(const Emulator &emu, int inputSet)
{
    return fragValidateImpl(emu, inputSet, fragPktsLong);
}

/** Long-tier program: the packet-length array grows to fragPktsLong
 *  quads. */
const char *fragLongSrc = scaledSource(
    fragSrc, {{"frag_len: .space 10400", "frag_len: .space 192000"}});

// ---------------------------------------------------------------------
// rtr: two-level radix-trie IPv4 route lookup (16-bit root + 8-bit
// leaf tables), the classic router fast path.
// ---------------------------------------------------------------------

constexpr int rtrLookups = 7000;
constexpr int rtrLookupsLong = 70000;   ///< ~1.2M units of work
constexpr int rtrLeaves = 64;

const char *rtrSrc = R"ASM(
    .text
main:
    ldq  r10, rtr_n
    lda  r11, rtr_ips
    clr  r20
lkp:
    ldl  r1, 0(r11)
    zapnot r1, 15, r1
    srl  r1, 16, r2       # root index
    lda  r3, rtr_root
    s4addq r2, r3, r3
    ldl  r4, 0(r3)
    zapnot r4, 15, r4
    ldq  r5, rtr_flag
    and  r4, r5, r6
    beq  r6, hop          # direct next hop
    # leaf lookup: leafId = entry & 0xffff, index = (ip>>8)&255
    ldq  r6, rtr_lmask
    and  r4, r6, r4
    sll  r4, 8, r4
    srl  r1, 8, r6
    and  r6, 255, r6
    addq r4, r6, r4
    lda  r6, rtr_leaf
    s4addq r4, r6, r6
    ldl  r4, 0(r6)
    zapnot r4, 15, r4
hop:
    addq r20, r4, r20
    lda  r11, 4(r11)
    subq r10, 1, r10
    bgt  r10, lkp
    stq  r20, rtr_out
    halt
    .data
rtr_n:     .quad 0
rtr_flag:  .quad 0x80000000
rtr_lmask: .quad 0xFFFF
rtr_out:   .quad 0
rtr_root:  .space 262144
rtr_leaf:  .space 65536
rtr_ips:   .space 28000
)ASM";

void
rtrGen(Rng &rng, std::vector<std::uint32_t> &root,
       std::vector<std::uint32_t> &leaf, std::vector<std::uint32_t> &ips,
       int lookups)
{
    root.resize(65536);
    for (auto &e : root) {
        if (rng.below(100) < 25) {
            e = 0x80000000u |
                static_cast<std::uint32_t>(rng.below(rtrLeaves));
        } else {
            e = static_cast<std::uint32_t>(rng.below(256));
        }
    }
    leaf.resize(static_cast<size_t>(rtrLeaves) * 256);
    for (auto &e : leaf)
        e = static_cast<std::uint32_t>(rng.below(256));
    ips.resize(static_cast<size_t>(lookups));
    for (auto &ip : ips)
        ip = static_cast<std::uint32_t>(rng.next());
}

void
rtrSetupImpl(Emulator &emu, int inputSet, int lookups)
{
    Rng rng(0x2077u + static_cast<unsigned>(inputSet));
    std::vector<std::uint32_t> root, leaf, ips;
    rtrGen(rng, root, leaf, ips, lookups);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("rtr_n"), static_cast<std::uint64_t>(lookups), 8);
    Addr r = p.symbol("rtr_root");
    for (size_t i = 0; i < root.size(); ++i)
        m.write(r + static_cast<Addr>(4 * i), root[i], 4);
    Addr l = p.symbol("rtr_leaf");
    for (size_t i = 0; i < leaf.size(); ++i)
        m.write(l + static_cast<Addr>(4 * i), leaf[i], 4);
    Addr a = p.symbol("rtr_ips");
    for (size_t i = 0; i < ips.size(); ++i)
        m.write(a + static_cast<Addr>(4 * i), ips[i], 4);
}

bool
rtrValidateImpl(const Emulator &emu, int inputSet, int lookups)
{
    Rng rng(0x2077u + static_cast<unsigned>(inputSet));
    std::vector<std::uint32_t> root, leaf, ips;
    rtrGen(rng, root, leaf, ips, lookups);
    std::uint64_t sum = 0;
    for (std::uint32_t ip : ips) {
        std::uint32_t e = root[ip >> 16];
        if (e & 0x80000000u)
            e = leaf[(e & 0xffffu) * 256 + ((ip >> 8) & 255)];
        sum += e;
    }
    return emu.memory().read(emu.program().symbol("rtr_out"), 8) == sum;
}

void
rtrSetup(Emulator &emu, int inputSet)
{
    rtrSetupImpl(emu, inputSet, rtrLookups);
}

bool
rtrValidate(const Emulator &emu, int inputSet)
{
    return rtrValidateImpl(emu, inputSet, rtrLookups);
}

void
rtrSetupLong(Emulator &emu, int inputSet)
{
    rtrSetupImpl(emu, inputSet, rtrLookupsLong);
}

bool
rtrValidateLong(const Emulator &emu, int inputSet)
{
    return rtrValidateImpl(emu, inputSet, rtrLookupsLong);
}

/** Long-tier program: the lookup-key stream grows to rtrLookupsLong
 *  4-byte addresses; the trie tables are unchanged. */
const char *rtrLongSrc = scaledSource(
    rtrSrc, {{"rtr_ips:   .space 28000", "rtr_ips:   .space 280000"}});

// ---------------------------------------------------------------------
// reed: Reed-Solomon-style systematic encoder over GF(256) using
// log/antilog tables (tables precomputed by setup).
// ---------------------------------------------------------------------

constexpr int reedBlocks = 40;
constexpr int reedBlocksLong = 145;     ///< ~1.1M units of work
constexpr int reedK = 32;       // data bytes per block
constexpr int reedR = 8;        // parity bytes per block

const char *reedSrc = R"ASM(
    .text
main:
    ldq  r10, reed_nblk
    lda  r11, reed_data
    clr  r20
blk:
    # clear parity[0..7]
    lda  r12, reed_par
    li   r1, 8
clrp:
    stb  r31, 0(r12)
    lda  r12, 1(r12)
    subq r1, 1, r1
    bgt  r1, clrp
    li   r13, 32          # data bytes
byte:
    ldbu r1, 0(r11)
    lda  r2, reed_par
    ldbu r3, 0(r2)
    xor  r1, r3, r1       # feedback
    # shift parity left by one
    clr  r4               # j
shl:
    lda  r5, reed_par
    addq r5, r4, r5
    ldbu r6, 1(r5)
    stb  r6, 0(r5)
    addq r4, 1, r4
    cmplt r4, 7, r6
    bne  r6, shl
    lda  r5, reed_par
    stb  r31, 7(r5)
    beq  r1, nofb
    # parity[j] ^= alog[(log[gen[j]] + log[feedback]) % 255]
    lda  r7, reed_log
    addq r7, r1, r7
    ldbu r14, 0(r7)       # log[feedback]
    clr  r4
fb:
    lda  r5, reed_gen
    addq r5, r4, r5
    ldbu r6, 0(r5)        # gen[j]
    lda  r7, reed_log
    addq r7, r6, r7
    ldbu r6, 0(r7)
    addq r6, r14, r6
    ldq  r7, reed_mod
    cmplt r6, r7, r8
    bne  r8, nomod
    subq r6, r7, r6
nomod:
    lda  r7, reed_alog
    addq r7, r6, r7
    ldbu r6, 0(r7)
    lda  r5, reed_par
    addq r5, r4, r5
    ldbu r8, 0(r5)
    xor  r8, r6, r8
    stb  r8, 0(r5)
    addq r4, 1, r4
    cmplt r4, 8, r6
    bne  r6, fb
nofb:
    lda  r11, 1(r11)
    subq r13, 1, r13
    bgt  r13, byte
    # accumulate parity checksum
    lda  r12, reed_par
    li   r1, 8
acc:
    ldbu r2, 0(r12)
    mulq r20, 31, r20
    addq r20, r2, r20
    lda  r12, 1(r12)
    subq r1, 1, r1
    bgt  r1, acc
    subq r10, 1, r10
    bgt  r10, blk
    stq  r20, reed_out
    halt
    .data
reed_nblk: .quad 0
reed_mod:  .quad 255
reed_out:  .quad 0
reed_par:  .space 16
reed_gen:  .space 16
reed_log:  .space 256
reed_alog: .space 512
reed_data: .space 1280
)ASM";

void
reedTables(std::uint8_t *logt, std::uint8_t *alog, std::uint8_t *gen)
{
    // GF(256) with the 0x11d polynomial.
    std::uint32_t x = 1;
    for (int i = 0; i < 255; ++i) {
        alog[i] = static_cast<std::uint8_t>(x);
        logt[x] = static_cast<std::uint8_t>(i);
        x <<= 1;
        if (x & 0x100)
            x ^= 0x11d;
    }
    for (int i = 255; i < 510; ++i)
        alog[i] = alog[i - 255];
    logt[0] = 0;    // never consulted for zero feedback
    for (int j = 0; j < reedR; ++j)
        gen[j] = static_cast<std::uint8_t>(j * 3 + 7);
}

void
reedGenData(Rng &rng, std::vector<std::uint8_t> &data, int blocks)
{
    data.resize(static_cast<size_t>(blocks) * reedK);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
}

void
reedSetupImpl(Emulator &emu, int inputSet, int blocks)
{
    Rng rng(0x2eedu + static_cast<unsigned>(inputSet));
    std::uint8_t logt[256] = {}, alog[512] = {}, gen[16] = {};
    reedTables(logt, alog, gen);
    std::vector<std::uint8_t> data;
    reedGenData(rng, data, blocks);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("reed_nblk"), static_cast<std::uint64_t>(blocks), 8);
    m.writeBlock(p.symbol("reed_log"), logt, 256);
    m.writeBlock(p.symbol("reed_alog"), alog, 512);
    m.writeBlock(p.symbol("reed_gen"), gen, 16);
    m.writeBlock(p.symbol("reed_data"), data.data(), data.size());
}

bool
reedValidateImpl(const Emulator &emu, int inputSet, int blocks)
{
    Rng rng(0x2eedu + static_cast<unsigned>(inputSet));
    std::uint8_t logt[256] = {}, alog[512] = {}, gen[16] = {};
    reedTables(logt, alog, gen);
    std::vector<std::uint8_t> data;
    reedGenData(rng, data, blocks);
    std::uint64_t sum = 0;
    for (int b = 0; b < blocks; ++b) {
        std::uint8_t par[reedR] = {};
        for (int i = 0; i < reedK; ++i) {
            std::uint8_t fb =
                data[static_cast<size_t>(b * reedK + i)] ^ par[0];
            for (int j = 0; j < reedR - 1; ++j)
                par[j] = par[j + 1];
            par[reedR - 1] = 0;
            if (fb) {
                for (int j = 0; j < reedR; ++j) {
                    int e = logt[gen[j]] + logt[fb];
                    if (e >= 255)
                        e -= 255;
                    par[j] ^= alog[e];
                }
            }
        }
        for (int j = 0; j < reedR; ++j)
            sum = sum * 31 + par[j];
    }
    return emu.memory().read(emu.program().symbol("reed_out"), 8) == sum;
}

void
reedSetup(Emulator &emu, int inputSet)
{
    reedSetupImpl(emu, inputSet, reedBlocks);
}

bool
reedValidate(const Emulator &emu, int inputSet)
{
    return reedValidateImpl(emu, inputSet, reedBlocks);
}

void
reedSetupLong(Emulator &emu, int inputSet)
{
    reedSetupImpl(emu, inputSet, reedBlocksLong);
}

bool
reedValidateLong(const Emulator &emu, int inputSet)
{
    return reedValidateImpl(emu, inputSet, reedBlocksLong);
}

/** Long-tier program: the data segment grows to reedBlocksLong
 *  32-byte blocks. */
const char *reedLongSrc = scaledSource(
    reedSrc, {{"reed_data: .space 1280", "reed_data: .space 4640"}});

} // namespace

std::vector<Kernel>
commKernels()
{
    return {
        {"crc", "CommBench-S", "table-driven CRC32 frame checksum",
         crcSrc, crcSetup, crcValidate,
         {crcLongSrc, crcSetupLong, crcValidateLong},
         {crcHugeSrc, crcSetupHuge, crcValidateHuge}},
        {"drr", "CommBench-S", "deficit round robin packet scheduler",
         drrSrc, drrSetup, drrValidate,
         {drrLongSrc, drrSetupLong, drrValidateLong}},
        {"frag", "CommBench-S", "IP fragmentation header generation",
         fragSrc, fragSetup, fragValidate,
         {fragLongSrc, fragSetupLong, fragValidateLong}},
        {"rtr", "CommBench-S", "two-level radix-trie route lookup",
         rtrSrc, rtrSetup, rtrValidate,
         {rtrLongSrc, rtrSetupLong, rtrValidateLong}},
        {"reed", "CommBench-S",
         "Reed-Solomon GF(256) systematic encoder", reedSrc, reedSetup,
         reedValidate, {reedLongSrc, reedSetupLong, reedValidateLong}},
    };
}

} // namespace mg
