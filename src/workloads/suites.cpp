#include "workloads/suites.hh"

#include "common/logging.hh"

namespace mg {

SetupFn
BoundKernel::setupFor(int inputSet) const
{
    const Kernel *k = kernel;
    Scale sc = scale;
    return [k, inputSet, sc](Emulator &emu) {
        k->setupAt(emu, inputSet, sc);
    };
}

BoundKernel
bindKernel(const Kernel &k, Scale scale)
{
    if (!k.supports(scale))
        fatal("kernel %s has no %s-scale variant", k.name,
              scaleName(scale));
    BoundKernel bk;
    bk.kernel = &k;
    bk.program = &kernelProgram(k, scale);
    bk.scale = scale;
    bk.setup = bk.setupFor(0);
    return bk;
}

std::vector<BoundKernel>
bindSuite(const std::string &suite, Scale scale)
{
    std::vector<BoundKernel> out;
    for (const Kernel *k : suiteKernels(suite)) {
        if (k->supports(scale))
            out.push_back(bindKernel(*k, scale));
    }
    return out;
}

std::vector<BoundKernel>
bindAll(Scale scale)
{
    std::vector<BoundKernel> out;
    for (const std::string &s : suiteNames()) {
        for (BoundKernel &bk : bindSuite(s, scale))
            out.push_back(std::move(bk));
    }
    return out;
}

EngineWorkload
workload(const BoundKernel &bk, int inputSet)
{
    EngineWorkload w;
    w.id = bk.kernel->name;
    if (bk.scale != Scale::Ref)
        w.id += strfmt("@%s", scaleName(bk.scale));
    if (inputSet != 0)
        w.id += strfmt("#%d", inputSet);
    w.suite = bk.kernel->suite;
    w.program = bk.program;
    w.setup = bk.setupFor(inputSet);
    return w;
}

std::vector<EngineWorkload>
suiteWorkloads(const std::string &suite, int inputSet, Scale scale)
{
    std::vector<EngineWorkload> out;
    for (const BoundKernel &bk :
         suite == "all" ? bindAll(scale) : bindSuite(suite, scale))
        out.push_back(workload(bk, inputSet));
    return out;
}

std::vector<SweepColumn>
standardColumns()
{
    return {
        {"baseline", SimConfig::baseline(), true},
        {"int", SimConfig::intMg(false), true},
        {"int+coll", SimConfig::intMg(true), true},
        {"int-mem", SimConfig::intMemMg(false), true},
        {"int-mem+coll", SimConfig::intMemMg(true), true},
    };
}

std::uint64_t
checkKernel(const BoundKernel &bk, int inputSet)
{
    Emulator emu(*bk.program);
    bk.kernel->setupAt(emu, inputSet, bk.scale);
    EmuResult r = emu.run(100000000ull);
    if (r.stop != StopReason::Halted)
        fatal("kernel %s did not halt within budget", bk.kernel->name);
    if (!bk.kernel->validateAt(emu, inputSet, bk.scale))
        fatal("kernel %s failed output validation", bk.kernel->name);
    return r.dynWork;
}

} // namespace mg
