#include "workloads/suites.hh"

#include "common/logging.hh"

namespace mg {

SetupFn
BoundKernel::setupFor(int inputSet) const
{
    const Kernel *k = kernel;
    return [k, inputSet](Emulator &emu) { k->setup(emu, inputSet); };
}

BoundKernel
bindKernel(const Kernel &k)
{
    BoundKernel bk;
    bk.kernel = &k;
    bk.program = &kernelProgram(k);
    bk.setup = bk.setupFor(0);
    return bk;
}

std::vector<BoundKernel>
bindSuite(const std::string &suite)
{
    std::vector<BoundKernel> out;
    for (const Kernel *k : suiteKernels(suite))
        out.push_back(bindKernel(*k));
    return out;
}

std::vector<BoundKernel>
bindAll()
{
    std::vector<BoundKernel> out;
    for (const std::string &s : suiteNames()) {
        for (BoundKernel &bk : bindSuite(s))
            out.push_back(std::move(bk));
    }
    return out;
}

EngineWorkload
workload(const BoundKernel &bk, int inputSet)
{
    EngineWorkload w;
    w.id = bk.kernel->name;
    if (inputSet != 0)
        w.id += strfmt("#%d", inputSet);
    w.suite = bk.kernel->suite;
    w.program = bk.program;
    w.setup = bk.setupFor(inputSet);
    return w;
}

std::vector<EngineWorkload>
suiteWorkloads(const std::string &suite, int inputSet)
{
    std::vector<EngineWorkload> out;
    for (const BoundKernel &bk :
         suite == "all" ? bindAll() : bindSuite(suite))
        out.push_back(workload(bk, inputSet));
    return out;
}

std::vector<SweepColumn>
standardColumns()
{
    return {
        {"baseline", SimConfig::baseline(), true},
        {"int", SimConfig::intMg(false), true},
        {"int+coll", SimConfig::intMg(true), true},
        {"int-mem", SimConfig::intMemMg(false), true},
        {"int-mem+coll", SimConfig::intMemMg(true), true},
    };
}

std::uint64_t
checkKernel(const BoundKernel &bk, int inputSet)
{
    Emulator emu(*bk.program);
    bk.kernel->setup(emu, inputSet);
    EmuResult r = emu.run(100000000ull);
    if (r.stop != StopReason::Halted)
        fatal("kernel %s did not halt within budget", bk.kernel->name);
    if (!bk.kernel->validate(emu, inputSet))
        fatal("kernel %s failed output validation", bk.kernel->name);
    return r.dynWork;
}

} // namespace mg
