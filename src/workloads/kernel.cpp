#include "workloads/kernel.hh"

#include <deque>
#include <map>
#include <mutex>

#include "assembler/assembler.hh"
#include "common/logging.hh"

namespace mg {

const char *
scaleName(Scale s)
{
    switch (s) {
      case Scale::Long:
        return "long";
      case Scale::Huge:
        return "huge";
      default:
        return "ref";
    }
}

Scale
parseScale(const std::string &text)
{
    if (text == "ref")
        return Scale::Ref;
    if (text == "long")
        return Scale::Long;
    if (text == "huge")
        return Scale::Huge;
    fatal("unknown scale '%s' (valid: ref, long, huge)", text.c_str());
}

void
Kernel::setupAt(Emulator &emu, int inputSet, Scale s) const
{
    if (!supports(s))
        fatal("kernel %s has no %s-scale variant", name, scaleName(s));
    const ScaleVariant *v = variantOf(s);
    (v ? v->setup : setup)(emu, inputSet);
}

bool
Kernel::validateAt(const Emulator &emu, int inputSet, Scale s) const
{
    if (!supports(s))
        fatal("kernel %s has no %s-scale variant", name, scaleName(s));
    const ScaleVariant *v = variantOf(s);
    return (v ? v->validate : validate)(emu, inputSet);
}

const std::vector<Kernel> &
allKernels()
{
    static const std::vector<Kernel> all = [] {
        std::vector<Kernel> v;
        for (auto &&group : {specintKernels(), mediaKernels(),
                             commKernels(), mibenchKernels()}) {
            for (const Kernel &k : group)
                v.push_back(k);
        }
        return v;
    }();
    return all;
}

const Kernel &
findKernel(const std::string &name)
{
    for (const Kernel &k : allKernels()) {
        if (name == k.name)
            return k;
    }
    // Enumerate the registry so a typo is a one-round-trip fix.
    std::string known;
    for (const std::string &suite : suiteNames()) {
        known += strfmt("\n  %s:", suite.c_str());
        for (const Kernel *k : suiteKernels(suite))
            known += strfmt(" %s", k->name);
    }
    fatal("unknown kernel '%s'; known kernels:%s", name.c_str(),
          known.c_str());
}

std::vector<const Kernel *>
suiteKernels(const std::string &suite)
{
    std::vector<const Kernel *> out;
    for (const Kernel &k : allKernels()) {
        if (suite == k.suite)
            out.push_back(&k);
    }
    return out;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "SPECint-S", "MediaBench-S", "CommBench-S", "MiBench-S",
    };
    return names;
}

std::string
kernelListing()
{
    std::string out = strfmt("%-14s %-13s %-14s %s\n", "kernel", "suite",
                             "scales", "description");
    for (const std::string &suite : suiteNames()) {
        for (const Kernel *k : suiteKernels(suite)) {
            std::string scales;
            for (Scale s : allScales) {
                if (!k->supports(s))
                    continue;
                if (!scales.empty())
                    scales += ",";
                scales += scaleName(s);
            }
            out += strfmt("%-14s %-13s %-14s %s\n", k->name, k->suite,
                          scales.c_str(), k->description);
        }
    }
    return out;
}

const Program &
kernelProgram(const Kernel &k, Scale scale)
{
    static std::map<std::string, Program> cache;
    static std::mutex lock;
    // Scales sharing one source text share one cache entry (and one
    // assembled Program): the scaled tier of an iteration-count-scaled
    // kernel runs the identical binary on bigger inputs.
    std::string key = k.name;
    if (const ScaleVariant *v = k.variantOf(scale); v && v->source)
        key += strfmt("@%s", scaleName(scale));
    std::lock_guard<std::mutex> g(lock);
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, assemble(k.sourceFor(scale), key)).first;
    return it->second;
}

const char *
scaledSource(const char *src,
             std::initializer_list<std::pair<const char *, const char *>>
                 subs)
{
    // Registration-time storage: the Kernel structs keep raw pointers.
    static std::deque<std::string> store;
    static std::mutex lock;
    std::string text = src;
    for (const auto &[from, to] : subs) {
        std::size_t first = text.find(from);
        if (first == std::string::npos)
            fatal("scaledSource: pattern '%s' not found", from);
        if (text.find(from, first + 1) != std::string::npos)
            fatal("scaledSource: pattern '%s' is ambiguous", from);
        text.replace(first, std::string(from).size(), to);
    }
    std::lock_guard<std::mutex> g(lock);
    store.push_back(std::move(text));
    return store.back().c_str();
}

} // namespace mg
