#include "workloads/kernel.hh"

#include <map>
#include <mutex>

#include "assembler/assembler.hh"
#include "common/logging.hh"

namespace mg {

const std::vector<Kernel> &
allKernels()
{
    static const std::vector<Kernel> all = [] {
        std::vector<Kernel> v;
        for (auto &&group : {specintKernels(), mediaKernels(),
                             commKernels(), mibenchKernels()}) {
            for (const Kernel &k : group)
                v.push_back(k);
        }
        return v;
    }();
    return all;
}

const Kernel &
findKernel(const std::string &name)
{
    for (const Kernel &k : allKernels()) {
        if (name == k.name)
            return k;
    }
    fatal("unknown kernel '%s'", name.c_str());
}

std::vector<const Kernel *>
suiteKernels(const std::string &suite)
{
    std::vector<const Kernel *> out;
    for (const Kernel &k : allKernels()) {
        if (suite == k.suite)
            out.push_back(&k);
    }
    return out;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "SPECint-S", "MediaBench-S", "CommBench-S", "MiBench-S",
    };
    return names;
}

const Program &
kernelProgram(const Kernel &k)
{
    static std::map<std::string, Program> cache;
    static std::mutex lock;
    std::lock_guard<std::mutex> g(lock);
    auto it = cache.find(k.name);
    if (it == cache.end())
        it = cache.emplace(k.name, assemble(k.source, k.name)).first;
    return it->second;
}

} // namespace mg
