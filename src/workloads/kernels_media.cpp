/**
 * @file
 * MediaBench-S kernels: media-processing workloads (ADPCM speech
 * coding, adaptive prediction, 8x8 block transforms, LPC lattice
 * filtering), mirroring the character of the MediaBench programs.
 */

#include "workloads/kernel.hh"

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mg {

namespace {

// ---------------------------------------------------------------------
// Shared IMA-ADPCM tables (written into memory by the setups).
// ---------------------------------------------------------------------

const std::int64_t imaIndexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8,
};

const std::int64_t imaStepTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34,
    37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143,
    157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494,
    544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552,
    1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428,
    4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487,
    12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086,
    29794, 32767,
};

void
writeImaTables(Memory &m, const Program &p, const char *stepSym,
               const char *idxSym)
{
    Addr st = p.symbol(stepSym);
    for (int i = 0; i < 89; ++i)
        m.write(st + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(imaStepTable[i]), 8);
    Addr it = p.symbol(idxSym);
    for (int i = 0; i < 16; ++i)
        m.write(it + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(imaIndexTable[i]), 8);
}

std::vector<std::int64_t>
synthWave(Rng &rng, int n)
{
    // Smooth waveform with noise: integrates small random steps so
    // consecutive samples correlate (like speech).
    std::vector<std::int64_t> w(static_cast<size_t>(n));
    std::int64_t v = 0;
    for (auto &s : w) {
        v += rng.range(-900, 900);
        if (v > 30000)
            v = 30000;
        if (v < -30000)
            v = -30000;
        s = v;
    }
    return w;
}

struct ImaCodec
{
    std::int64_t valpred = 0;
    std::int64_t index = 0;

    std::int64_t
    encode(std::int64_t sample)
    {
        std::int64_t step = imaStepTable[index];
        std::int64_t diff = sample - valpred;
        std::int64_t sign = diff < 0 ? 8 : 0;
        if (sign)
            diff = -diff;
        std::int64_t delta = 0;
        std::int64_t vpdiff = step >> 3;
        if (diff >= step) {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 2;
            diff -= step;
            vpdiff += step;
        }
        step >>= 1;
        if (diff >= step) {
            delta |= 1;
            vpdiff += step;
        }
        if (sign)
            valpred -= vpdiff;
        else
            valpred += vpdiff;
        if (valpred > 32767)
            valpred = 32767;
        if (valpred < -32768)
            valpred = -32768;
        delta |= sign;
        index += imaIndexTable[delta];
        if (index < 0)
            index = 0;
        if (index > 88)
            index = 88;
        return delta;
    }

    std::int64_t
    decode(std::int64_t delta)
    {
        std::int64_t step = imaStepTable[index];
        std::int64_t vpdiff = step >> 3;
        if (delta & 4)
            vpdiff += step;
        if (delta & 2)
            vpdiff += step >> 1;
        if (delta & 1)
            vpdiff += step >> 2;
        if (delta & 8)
            valpred -= vpdiff;
        else
            valpred += vpdiff;
        if (valpred > 32767)
            valpred = 32767;
        if (valpred < -32768)
            valpred = -32768;
        index += imaIndexTable[delta];
        if (index < 0)
            index = 0;
        if (index > 88)
            index = 88;
        return valpred;
    }
};

// ---------------------------------------------------------------------
// adpcm.enc: IMA ADPCM encoder.
// ---------------------------------------------------------------------

constexpr int aeN = 2200;
constexpr int aeNLong = 25000;      ///< ~1.1M units of work

const char *aeSrc = R"ASM(
    .text
    # r10 n, r11 in ptr, r12 out ptr, r16 valpred, r17 index
main:
    ldq  r10, ae_n
    lda  r11, ae_in
    lda  r12, ae_code
    clr  r16
    clr  r17
    clr  r20
smp:
    ldq  r1, 0(r11)       # sample
    lda  r2, ae_step
    s8addq r17, r2, r2
    ldq  r3, 0(r2)        # step
    subq r1, r16, r4      # diff
    clr  r5               # sign
    bge  r4, pos
    li   r5, 8
    subq r31, r4, r4
pos:
    clr  r6               # delta
    sra  r3, 3, r7        # vpdiff = step>>3
    cmple r3, r4, r8
    beq  r8, b2
    li   r6, 4
    subq r4, r3, r4
    addq r7, r3, r7
b2:
    sra  r3, 1, r3
    cmple r3, r4, r8
    beq  r8, b1
    bis  r6, 2, r6
    subq r4, r3, r4
    addq r7, r3, r7
b1:
    sra  r3, 1, r3
    cmple r3, r4, r8
    beq  r8, upd
    bis  r6, 1, r6
    addq r7, r3, r7
upd:
    beq  r5, add
    subq r16, r7, r16
    br   clamp
add:
    addq r16, r7, r16
clamp:
    ldq  r8, ae_max
    cmple r16, r8, r9
    bne  r9, clo
    mov  r8, r16
clo:
    ldq  r8, ae_min
    cmple r8, r16, r9
    bne  r9, idx
    mov  r8, r16
idx:
    bis  r6, r5, r6       # delta |= sign
    lda  r2, ae_idx
    s8addq r6, r2, r2
    ldq  r3, 0(r2)
    addq r17, r3, r17
    bge  r17, ihi
    clr  r17
ihi:
    cmple r17, 88, r9
    bne  r9, emit
    li   r17, 88
emit:
    stb  r6, 0(r12)
    mulq r20, 33, r20
    addq r20, r6, r20
    lda  r11, 8(r11)
    lda  r12, 1(r12)
    subq r10, 1, r10
    bgt  r10, smp
    stq  r20, ae_out
    halt
    .data
ae_n:    .quad 0
ae_max:  .quad 32767
ae_min:  .quad -32768
ae_out:  .quad 0
ae_step: .space 712
ae_idx:  .space 128
ae_code: .space 2200
ae_in:   .space 17600
)ASM";

void
aeSetupImpl(Emulator &emu, int inputSet, int n)
{
    Rng rng(0xadceu + static_cast<unsigned>(inputSet));
    auto wave = synthWave(rng, n);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("ae_n"), static_cast<std::uint64_t>(n), 8);
    writeImaTables(m, p, "ae_step", "ae_idx");
    Addr in = p.symbol("ae_in");
    for (int i = 0; i < n; ++i)
        m.write(in + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(wave[static_cast<size_t>(i)]),
                8);
}

bool
aeValidateImpl(const Emulator &emu, int inputSet, int n)
{
    Rng rng(0xadceu + static_cast<unsigned>(inputSet));
    auto wave = synthWave(rng, n);
    ImaCodec c;
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
        std::int64_t d = c.encode(wave[static_cast<size_t>(i)]);
        sum = sum * 33 + static_cast<std::uint64_t>(d);
    }
    return emu.memory().read(emu.program().symbol("ae_out"), 8) == sum;
}

void
aeSetup(Emulator &emu, int inputSet)
{
    aeSetupImpl(emu, inputSet, aeN);
}

bool
aeValidate(const Emulator &emu, int inputSet)
{
    return aeValidateImpl(emu, inputSet, aeN);
}

void
aeSetupLong(Emulator &emu, int inputSet)
{
    aeSetupImpl(emu, inputSet, aeNLong);
}

bool
aeValidateLong(const Emulator &emu, int inputSet)
{
    return aeValidateImpl(emu, inputSet, aeNLong);
}

/** Long-tier program: sample input and code output grow to aeNLong. */
const char *aeLongSrc = scaledSource(
    aeSrc, {{"ae_code: .space 2200", "ae_code: .space 25000"},
            {"ae_in:   .space 17600", "ae_in:   .space 200000"}});

// ---------------------------------------------------------------------
// adpcm.dec: IMA ADPCM decoder over a pre-encoded stream.
// ---------------------------------------------------------------------

constexpr int adN = 2600;
constexpr int adNLong = 32000;      ///< ~1.1M units of work

const char *adSrc = R"ASM(
    .text
    # r10 n, r11 code ptr, r16 valpred, r17 index
main:
    ldq  r10, ad_n
    lda  r11, ad_code
    clr  r16
    clr  r17
    clr  r20
smp:
    ldbu r1, 0(r11)       # delta
    lda  r2, ad_step
    s8addq r17, r2, r2
    ldq  r3, 0(r2)        # step
    sra  r3, 3, r7        # vpdiff
    and  r1, 4, r4
    beq  r4, d2
    addq r7, r3, r7
d2:
    and  r1, 2, r4
    beq  r4, d1
    sra  r3, 1, r4
    addq r7, r4, r7
d1:
    and  r1, 1, r4
    beq  r4, dsg
    sra  r3, 2, r4
    addq r7, r4, r7
dsg:
    and  r1, 8, r4
    beq  r4, dadd
    subq r16, r7, r16
    br   dcl
dadd:
    addq r16, r7, r16
dcl:
    ldq  r8, ad_max
    cmple r16, r8, r9
    bne  r9, dlo
    mov  r8, r16
dlo:
    ldq  r8, ad_min
    cmple r8, r16, r9
    bne  r9, didx
    mov  r8, r16
didx:
    lda  r2, ad_idx
    s8addq r1, r2, r2
    ldq  r3, 0(r2)
    addq r17, r3, r17
    bge  r17, dhi
    clr  r17
dhi:
    cmple r17, 88, r9
    bne  r9, dout
    li   r17, 88
dout:
    mulq r20, 17, r20
    xor  r20, r16, r20
    lda  r11, 1(r11)
    subq r10, 1, r10
    bgt  r10, smp
    stq  r20, ad_out
    halt
    .data
ad_n:    .quad 0
ad_max:  .quad 32767
ad_min:  .quad -32768
ad_out:  .quad 0
ad_step: .space 712
ad_idx:  .space 128
ad_code: .space 2600
)ASM";

void
adSetupImpl(Emulator &emu, int inputSet, int n)
{
    Rng rng(0xadcdu + static_cast<unsigned>(inputSet));
    auto wave = synthWave(rng, n);
    ImaCodec enc;
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("ad_n"), static_cast<std::uint64_t>(n), 8);
    writeImaTables(m, p, "ad_step", "ad_idx");
    Addr code = p.symbol("ad_code");
    for (int i = 0; i < n; ++i) {
        std::int64_t d = enc.encode(wave[static_cast<size_t>(i)]);
        m.writeByte(code + static_cast<Addr>(i),
                    static_cast<std::uint8_t>(d));
    }
}

bool
adValidateImpl(const Emulator &emu, int inputSet, int n)
{
    Rng rng(0xadcdu + static_cast<unsigned>(inputSet));
    auto wave = synthWave(rng, n);
    ImaCodec enc, dec;
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
        std::int64_t d = enc.encode(wave[static_cast<size_t>(i)]);
        std::int64_t v = dec.decode(d);
        sum = (sum * 17) ^ static_cast<std::uint64_t>(v);
    }
    return emu.memory().read(emu.program().symbol("ad_out"), 8) == sum;
}

void
adSetup(Emulator &emu, int inputSet)
{
    adSetupImpl(emu, inputSet, adN);
}

bool
adValidate(const Emulator &emu, int inputSet)
{
    return adValidateImpl(emu, inputSet, adN);
}

void
adSetupLong(Emulator &emu, int inputSet)
{
    adSetupImpl(emu, inputSet, adNLong);
}

bool
adValidateLong(const Emulator &emu, int inputSet)
{
    return adValidateImpl(emu, inputSet, adNLong);
}

/** Long-tier program: the encoded stream grows to adNLong bytes. */
const char *adLongSrc = scaledSource(
    adSrc, {{"ad_code: .space 2600", "ad_code: .space 32000"}});

// ---------------------------------------------------------------------
// g721.enc: adaptive 2-tap sign-sign LMS predictor with 4-bit error
// quantization (G.721-flavoured ADPCM).
// ---------------------------------------------------------------------

constexpr int g7N = 2400;
constexpr int g7NLong = 36500;      ///< ~1.1M units of work

const char *g7Src = R"ASM(
    .text
    # r16 w1, r17 w2, r18 y1, r19 y2
main:
    ldq  r10, g7_n
    lda  r11, g7_in
    li   r16, 128
    li   r17, 64
    clr  r18
    clr  r19
    clr  r20
smp:
    ldq  r1, 0(r11)       # x
    mulq r16, r18, r2
    mulq r17, r19, r3
    addq r2, r3, r2
    sra  r2, 8, r2        # pred
    subq r1, r2, r3       # err
    sra  r3, 4, r4        # q
    sll  r4, 4, r5
    addq r2, r5, r6       # rec
    # sign-sign updates
    clr  r7
    bge  r3, ep
    li   r7, 1
ep:
    clr  r8
    bge  r18, y1p
    li   r8, 1
y1p:
    xor  r7, r8, r9
    beq  r9, up1
    subq r16, 1, r16
    br   w2u
up1:
    addq r16, 1, r16
w2u:
    clr  r8
    bge  r19, y2p
    li   r8, 1
y2p:
    xor  r7, r8, r9
    beq  r9, up2
    subq r17, 1, r17
    br   sh
up2:
    addq r17, 1, r17
sh:
    mov  r18, r19
    mov  r6, r18
    mulq r20, 13, r20
    xor  r20, r6, r20
    lda  r11, 8(r11)
    subq r10, 1, r10
    bgt  r10, smp
    stq  r20, g7_out
    halt
    .data
g7_n:   .quad 0
g7_out: .quad 0
g7_in:  .space 19200
)ASM";

void
g7SetupImpl(Emulator &emu, int inputSet, int n)
{
    Rng rng(0x721u + static_cast<unsigned>(inputSet));
    auto wave = synthWave(rng, n);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("g7_n"), static_cast<std::uint64_t>(n), 8);
    Addr in = p.symbol("g7_in");
    for (int i = 0; i < n; ++i)
        m.write(in + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(wave[static_cast<size_t>(i)]),
                8);
}

bool
g7ValidateImpl(const Emulator &emu, int inputSet, int n)
{
    Rng rng(0x721u + static_cast<unsigned>(inputSet));
    auto wave = synthWave(rng, n);
    std::int64_t w1 = 128, w2 = 64, y1 = 0, y2 = 0;
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
        std::int64_t x = wave[static_cast<size_t>(i)];
        std::int64_t pred = (w1 * y1 + w2 * y2) >> 8;
        std::int64_t err = x - pred;
        std::int64_t q = err >> 4;
        std::int64_t rec = pred + (q << 4);
        bool es = err < 0;
        w1 += (es != (y1 < 0)) ? -1 : 1;
        w2 += (es != (y2 < 0)) ? -1 : 1;
        y2 = y1;
        y1 = rec;
        sum = (sum * 13) ^ static_cast<std::uint64_t>(rec);
    }
    return emu.memory().read(emu.program().symbol("g7_out"), 8) == sum;
}

void
g7Setup(Emulator &emu, int inputSet)
{
    g7SetupImpl(emu, inputSet, g7N);
}

bool
g7Validate(const Emulator &emu, int inputSet)
{
    return g7ValidateImpl(emu, inputSet, g7N);
}

void
g7SetupLong(Emulator &emu, int inputSet)
{
    g7SetupImpl(emu, inputSet, g7NLong);
}

bool
g7ValidateLong(const Emulator &emu, int inputSet)
{
    return g7ValidateImpl(emu, inputSet, g7NLong);
}

/** Long-tier program: the sample input grows to g7NLong quads. */
const char *g7LongSrc = scaledSource(
    g7Src, {{"g7_in:  .space 19200", "g7_in:  .space 292000"}});

// ---------------------------------------------------------------------
// jpeg.dct: 8x8 forward DCT per block as two fixed-point 8x8 matrix
// multiplies (out = C * blk * C^T, >>8 after each pass).
// ---------------------------------------------------------------------

constexpr int dctBlocks = 10;
constexpr int dctBlocksLong = 70;   ///< ~1.1M units of work
constexpr int dctBlocksHuge = 625;  ///< ~10.1M units of work

std::vector<std::int64_t>
dctCoeffs()
{
    std::vector<std::int64_t> c(64);
    for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < 8; ++j) {
            double s = (i == 0) ? std::sqrt(0.125) : 0.5;
            c[static_cast<size_t>(i * 8 + j)] =
                static_cast<std::int64_t>(std::lround(
                    256.0 * s *
                    std::cos((2 * j + 1) * i * 3.14159265358979 / 16)));
        }
    }
    return c;
}

// Matrix multiply macro text shared by DCT and IDCT sources: A*B with
// >>8, all operands 8x8 arrays of quads.
const char *dctSrc = R"ASM(
    .text
main:
    ldq  r10, dct_nblk
    lda  r11, dct_in
    clr  r20
blk:
    # tmp = C * in  (tmp[i][j] = sum_k C[i][k] * in[k][j] >> 8)
    clr  r12              # i
mm1i:
    clr  r13              # j
mm1j:
    clr  r14              # k
    clr  r15              # acc
mm1k:
    sll  r12, 3, r1
    addq r1, r14, r1
    lda  r2, dct_c
    s8addq r1, r2, r2
    ldq  r3, 0(r2)        # C[i][k]
    sll  r14, 3, r1
    addq r1, r13, r1
    s8addq r1, r11, r2
    ldq  r4, 0(r2)        # in[k][j]
    mulq r3, r4, r3
    addq r15, r3, r15
    addq r14, 1, r14
    cmplt r14, 8, r1
    bne  r1, mm1k
    sra  r15, 8, r15
    sll  r12, 3, r1
    addq r1, r13, r1
    lda  r2, dct_tmp
    s8addq r1, r2, r2
    stq  r15, 0(r2)
    addq r13, 1, r13
    cmplt r13, 8, r1
    bne  r1, mm1j
    addq r12, 1, r12
    cmplt r12, 8, r1
    bne  r1, mm1i
    # out = tmp * C^T  (out[i][j] = sum_k tmp[i][k] * C[j][k] >> 8)
    clr  r12
mm2i:
    clr  r13
mm2j:
    clr  r14
    clr  r15
mm2k:
    sll  r12, 3, r1
    addq r1, r14, r1
    lda  r2, dct_tmp
    s8addq r1, r2, r2
    ldq  r3, 0(r2)
    sll  r13, 3, r1
    addq r1, r14, r1
    lda  r2, dct_c
    s8addq r1, r2, r2
    ldq  r4, 0(r2)        # C[j][k]
    mulq r3, r4, r3
    addq r15, r3, r15
    addq r14, 1, r14
    cmplt r14, 8, r1
    bne  r1, mm2k
    sra  r15, 8, r15
    mulq r20, 7, r20
    xor  r20, r15, r20
    addq r13, 1, r13
    cmplt r13, 8, r1
    bne  r1, mm2j
    addq r12, 1, r12
    cmplt r12, 8, r1
    bne  r1, mm2i
    lda  r11, 512(r11)
    subq r10, 1, r10
    bgt  r10, blk
    stq  r20, dct_out
    halt
    .data
dct_nblk: .quad 0
dct_out:  .quad 0
dct_c:    .space 512
dct_tmp:  .space 512
dct_in:   .space 5120
)ASM";

void
dctSetupImpl(Emulator &emu, int inputSet, int blocks)
{
    Rng rng(0xdc7u + static_cast<unsigned>(inputSet));
    auto c = dctCoeffs();
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("dct_nblk"), static_cast<std::uint64_t>(blocks), 8);
    Addr ca = p.symbol("dct_c");
    for (int i = 0; i < 64; ++i)
        m.write(ca + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(c[static_cast<size_t>(i)]), 8);
    Addr in = p.symbol("dct_in");
    for (int i = 0; i < blocks * 64; ++i)
        m.write(in + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(rng.below(256)) - 128), 8);
}

bool
dctValidateImpl(const Emulator &emu, int inputSet, int blocks)
{
    Rng rng(0xdc7u + static_cast<unsigned>(inputSet));
    auto c = dctCoeffs();
    std::vector<std::int64_t> in(static_cast<size_t>(blocks) * 64);
    for (auto &v : in)
        v = static_cast<std::int64_t>(rng.below(256)) - 128;
    std::uint64_t sum = 0;
    for (int b = 0; b < blocks; ++b) {
        const std::int64_t *blk = &in[static_cast<size_t>(b) * 64];
        std::int64_t tmp[64];
        for (int i = 0; i < 8; ++i) {
            for (int j = 0; j < 8; ++j) {
                std::int64_t acc = 0;
                for (int k = 0; k < 8; ++k)
                    acc += c[static_cast<size_t>(i * 8 + k)] *
                        blk[k * 8 + j];
                tmp[i * 8 + j] = acc >> 8;
            }
        }
        for (int i = 0; i < 8; ++i) {
            for (int j = 0; j < 8; ++j) {
                std::int64_t acc = 0;
                for (int k = 0; k < 8; ++k)
                    acc += tmp[i * 8 + k] *
                        c[static_cast<size_t>(j * 8 + k)];
                std::int64_t v = acc >> 8;
                sum = (sum * 7) ^ static_cast<std::uint64_t>(v);
            }
        }
    }
    return emu.memory().read(emu.program().symbol("dct_out"), 8) == sum;
}

void
dctSetup(Emulator &emu, int inputSet)
{
    dctSetupImpl(emu, inputSet, dctBlocks);
}

bool
dctValidate(const Emulator &emu, int inputSet)
{
    return dctValidateImpl(emu, inputSet, dctBlocks);
}

void
dctSetupLong(Emulator &emu, int inputSet)
{
    dctSetupImpl(emu, inputSet, dctBlocksLong);
}

bool
dctValidateLong(const Emulator &emu, int inputSet)
{
    return dctValidateImpl(emu, inputSet, dctBlocksLong);
}

void
dctSetupHuge(Emulator &emu, int inputSet)
{
    dctSetupImpl(emu, inputSet, dctBlocksHuge);
}

bool
dctValidateHuge(const Emulator &emu, int inputSet)
{
    return dctValidateImpl(emu, inputSet, dctBlocksHuge);
}

/** Long-tier program: the block loop is unchanged, the input segment
 *  grows to dctBlocksLong 8x8 blocks (70 x 512 bytes). */
const char *dctLongSrc = scaledSource(
    dctSrc, {{"dct_in:   .space 5120", "dct_in:   .space 35840"}});

/** Huge-tier program: dctBlocksHuge 8x8 blocks (625 x 512 bytes). */
const char *dctHugeSrc = scaledSource(
    dctSrc, {{"dct_in:   .space 5120", "dct_in:   .space 320000"}});

// ---------------------------------------------------------------------
// mpeg2.idct: inverse transform (out = C^T * in * C) with a final
// clamp to 0..255 — the decoder-side block loop.
// ---------------------------------------------------------------------

constexpr int idctBlocks = 10;
constexpr int idctBlocksLong = 70;  ///< ~1.1M units of work

const char *idctSrc = R"ASM(
    .text
main:
    ldq  r10, idct_nblk
    lda  r11, idct_in
    clr  r20
blk:
    clr  r12
m1i:
    clr  r13
m1j:
    clr  r14
    clr  r15
m1k:
    sll  r14, 3, r1
    addq r1, r12, r1
    lda  r2, idct_c
    s8addq r1, r2, r2
    ldq  r3, 0(r2)        # C[k][i] (transposed access)
    sll  r14, 3, r1
    addq r1, r13, r1
    s8addq r1, r11, r2
    ldq  r4, 0(r2)
    mulq r3, r4, r3
    addq r15, r3, r15
    addq r14, 1, r14
    cmplt r14, 8, r1
    bne  r1, m1k
    sra  r15, 8, r15
    sll  r12, 3, r1
    addq r1, r13, r1
    lda  r2, idct_tmp
    s8addq r1, r2, r2
    stq  r15, 0(r2)
    addq r13, 1, r13
    cmplt r13, 8, r1
    bne  r1, m1j
    addq r12, 1, r12
    cmplt r12, 8, r1
    bne  r1, m1i
    clr  r12
m2i:
    clr  r13
m2j:
    clr  r14
    clr  r15
m2k:
    sll  r12, 3, r1
    addq r1, r14, r1
    lda  r2, idct_tmp
    s8addq r1, r2, r2
    ldq  r3, 0(r2)
    sll  r14, 3, r1
    addq r1, r13, r1
    lda  r2, idct_c
    s8addq r1, r2, r2
    ldq  r4, 0(r2)        # C[k][j]
    mulq r3, r4, r3
    addq r15, r3, r15
    addq r14, 1, r14
    cmplt r14, 8, r1
    bne  r1, m2k
    sra  r15, 8, r15
    addq r15, 128, r15    # level shift
    bge  r15, cl0
    clr  r15
cl0:
    cmple r15, 255, r1
    bne  r1, cl1
    li   r15, 255
cl1:
    mulq r20, 11, r20
    addq r20, r15, r20
    addq r13, 1, r13
    cmplt r13, 8, r1
    bne  r1, m2j
    addq r12, 1, r12
    cmplt r12, 8, r1
    bne  r1, m2i
    lda  r11, 512(r11)
    subq r10, 1, r10
    bgt  r10, blk
    stq  r20, idct_out
    halt
    .data
idct_nblk: .quad 0
idct_out:  .quad 0
idct_c:    .space 512
idct_tmp:  .space 512
idct_in:   .space 5120
)ASM";

void
idctSetupImpl(Emulator &emu, int inputSet, int blocks)
{
    Rng rng(0x1dc7u + static_cast<unsigned>(inputSet));
    auto c = dctCoeffs();
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("idct_nblk"), static_cast<std::uint64_t>(blocks), 8);
    Addr ca = p.symbol("idct_c");
    for (int i = 0; i < 64; ++i)
        m.write(ca + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(c[static_cast<size_t>(i)]), 8);
    Addr in = p.symbol("idct_in");
    for (int i = 0; i < blocks * 64; ++i)
        m.write(in + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(rng.range(-300, 300)), 8);
}

bool
idctValidateImpl(const Emulator &emu, int inputSet, int blocks)
{
    Rng rng(0x1dc7u + static_cast<unsigned>(inputSet));
    auto c = dctCoeffs();
    std::vector<std::int64_t> in(static_cast<size_t>(blocks) * 64);
    for (auto &v : in)
        v = rng.range(-300, 300);
    std::uint64_t sum = 0;
    for (int b = 0; b < blocks; ++b) {
        const std::int64_t *blk = &in[static_cast<size_t>(b) * 64];
        std::int64_t tmp[64];
        for (int i = 0; i < 8; ++i) {
            for (int j = 0; j < 8; ++j) {
                std::int64_t acc = 0;
                for (int k = 0; k < 8; ++k)
                    acc += c[static_cast<size_t>(k * 8 + i)] *
                        blk[k * 8 + j];
                tmp[i * 8 + j] = acc >> 8;
            }
        }
        for (int i = 0; i < 8; ++i) {
            for (int j = 0; j < 8; ++j) {
                std::int64_t acc = 0;
                for (int k = 0; k < 8; ++k)
                    acc += tmp[i * 8 + k] *
                        c[static_cast<size_t>(k * 8 + j)];
                std::int64_t v = (acc >> 8) + 128;
                if (v < 0)
                    v = 0;
                if (v > 255)
                    v = 255;
                sum = sum * 11 + static_cast<std::uint64_t>(v);
            }
        }
    }
    return emu.memory().read(emu.program().symbol("idct_out"), 8) == sum;
}

void
idctSetup(Emulator &emu, int inputSet)
{
    idctSetupImpl(emu, inputSet, idctBlocks);
}

bool
idctValidate(const Emulator &emu, int inputSet)
{
    return idctValidateImpl(emu, inputSet, idctBlocks);
}

void
idctSetupLong(Emulator &emu, int inputSet)
{
    idctSetupImpl(emu, inputSet, idctBlocksLong);
}

bool
idctValidateLong(const Emulator &emu, int inputSet)
{
    return idctValidateImpl(emu, inputSet, idctBlocksLong);
}

/** Long-tier program: the input segment grows to idctBlocksLong 8x8
 *  blocks. */
const char *idctLongSrc = scaledSource(
    idctSrc, {{"idct_in:   .space 5120", "idct_in:   .space 35840"}});

// ---------------------------------------------------------------------
// gsm.lpc: 8-stage fixed-point LPC analysis filter (serial dependence
// chain per sample, like GSM's short-term filter).
// ---------------------------------------------------------------------

constexpr int lpcN = 1500;
constexpr int lpcNLong = 6500;      ///< ~1.1M units of work
constexpr int lpcStages = 8;

const char *lpcSrc = R"ASM(
    .text
main:
    ldq  r10, lpc_n
    lda  r11, lpc_in
    clr  r20
smp:
    ldq  r16, 0(r11)      # e = x
    clr  r12              # k
stage:
    lda  r1, lpc_a
    s8addq r12, r1, r1
    ldq  r2, 0(r1)        # a[k]
    lda  r3, lpc_d
    s8addq r12, r3, r3
    ldq  r4, 0(r3)        # d[k]
    mulq r2, r4, r5
    sra  r5, 12, r5
    subq r16, r5, r16     # e -= (a[k]*d[k])>>12
    addq r12, 1, r12
    cmplt r12, 8, r5
    bne  r5, stage
    # shift delay line: d[7..1] = d[6..0], d[0] = x
    li   r12, 7
shft:
    subq r12, 1, r13
    lda  r3, lpc_d
    s8addq r13, r3, r3
    ldq  r4, 0(r3)
    lda  r5, lpc_d
    s8addq r12, r5, r5
    stq  r4, 0(r5)
    mov  r13, r12
    bgt  r12, shft
    ldq  r1, 0(r11)
    lda  r3, lpc_d
    stq  r1, 0(r3)
    mulq r20, 19, r20
    xor  r20, r16, r20
    lda  r11, 8(r11)
    subq r10, 1, r10
    bgt  r10, smp
    stq  r20, lpc_out
    halt
    .data
lpc_n:   .quad 0
lpc_out: .quad 0
lpc_a:   .space 64
lpc_d:   .space 64
lpc_in:  .space 12000
)ASM";

void
lpcSetupImpl(Emulator &emu, int inputSet, int n)
{
    Rng rng(0x95bu + static_cast<unsigned>(inputSet));
    auto wave = synthWave(rng, n);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("lpc_n"), static_cast<std::uint64_t>(n), 8);
    Addr a = p.symbol("lpc_a");
    for (int k = 0; k < lpcStages; ++k)
        m.write(a + static_cast<Addr>(8 * k),
                static_cast<std::uint64_t>(rng.range(-2048, 2048)), 8);
    Addr in = p.symbol("lpc_in");
    for (int i = 0; i < n; ++i)
        m.write(in + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(wave[static_cast<size_t>(i)]),
                8);
}

bool
lpcValidateImpl(const Emulator &emu, int inputSet, int n)
{
    Rng rng(0x95bu + static_cast<unsigned>(inputSet));
    auto wave = synthWave(rng, n);
    std::int64_t a[lpcStages];
    for (auto &v : a)
        v = rng.range(-2048, 2048);
    std::int64_t d[lpcStages] = {};
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
        std::int64_t x = wave[static_cast<size_t>(i)];
        std::int64_t e = x;
        for (int k = 0; k < lpcStages; ++k)
            e -= (a[k] * d[k]) >> 12;
        for (int k = lpcStages - 1; k > 0; --k)
            d[k] = d[k - 1];
        d[0] = x;
        sum = (sum * 19) ^ static_cast<std::uint64_t>(e);
    }
    return emu.memory().read(emu.program().symbol("lpc_out"), 8) == sum;
}

void
lpcSetup(Emulator &emu, int inputSet)
{
    lpcSetupImpl(emu, inputSet, lpcN);
}

bool
lpcValidate(const Emulator &emu, int inputSet)
{
    return lpcValidateImpl(emu, inputSet, lpcN);
}

void
lpcSetupLong(Emulator &emu, int inputSet)
{
    lpcSetupImpl(emu, inputSet, lpcNLong);
}

bool
lpcValidateLong(const Emulator &emu, int inputSet)
{
    return lpcValidateImpl(emu, inputSet, lpcNLong);
}

/** Long-tier program: the input segment grows to lpcNLong samples. */
const char *lpcLongSrc = scaledSource(
    lpcSrc, {{"lpc_in:  .space 12000", "lpc_in:  .space 52000"}});

} // namespace

std::vector<Kernel>
mediaKernels()
{
    return {
        {"adpcm.enc", "MediaBench-S", "IMA ADPCM speech encoder",
         aeSrc, aeSetup, aeValidate,
         {aeLongSrc, aeSetupLong, aeValidateLong}},
        {"adpcm.dec", "MediaBench-S", "IMA ADPCM speech decoder",
         adSrc, adSetup, adValidate,
         {adLongSrc, adSetupLong, adValidateLong}},
        {"g721.enc", "MediaBench-S",
         "adaptive sign-sign LMS predictive coder", g7Src, g7Setup,
         g7Validate, {g7LongSrc, g7SetupLong, g7ValidateLong}},
        {"jpeg.dct", "MediaBench-S",
         "8x8 fixed-point forward DCT block transform", dctSrc,
         dctSetup, dctValidate,
         {dctLongSrc, dctSetupLong, dctValidateLong},
         {dctHugeSrc, dctSetupHuge, dctValidateHuge}},
        {"mpeg2.idct", "MediaBench-S",
         "8x8 fixed-point inverse DCT with clamping", idctSrc,
         idctSetup, idctValidate,
         {idctLongSrc, idctSetupLong, idctValidateLong}},
        {"gsm.lpc", "MediaBench-S",
         "8-stage fixed-point LPC analysis filter", lpcSrc, lpcSetup,
         lpcValidate, {lpcLongSrc, lpcSetupLong, lpcValidateLong}},
    };
}

} // namespace mg
