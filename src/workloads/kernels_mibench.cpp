/**
 * @file
 * MiBench-S kernels: embedded-style workloads (bit manipulation,
 * hashing rounds, graph search, string search, block ciphers, pixel
 * conversion). Each mirrors the character of the MiBench program it
 * stands in for.
 */

#include "workloads/kernel.hh"

#include <bit>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mg {

namespace {

// ---------------------------------------------------------------------
// bitcount: two counting methods (ctpop + Kernighan loop) over an
// array of random words.
// ---------------------------------------------------------------------

constexpr int bcN = 1400;
constexpr int bcNLong = 6600;       ///< ~1.1M units of work

const char *bcSrc = R"ASM(
    .text
main:
    ldq  r10, bc_n
    lda  r11, bc_in
    clr  r12
loop:
    ldq  r1, 0(r11)
    ctpop r1, r2
    addq r12, r2, r12
kern:
    beq  r1, kdone
    subq r1, 1, r3
    and  r1, r3, r1
    addq r12, 1, r12
    br   kern
kdone:
    lda  r11, 8(r11)
    subq r10, 1, r10
    bgt  r10, loop
    stq  r12, bc_out
    halt
    .data
bc_n:   .quad 0
bc_out: .quad 0
bc_in:  .space 11200
)ASM";

void
bcSetupImpl(Emulator &emu, int inputSet, int n)
{
    Rng rng(0xb17c0u + static_cast<unsigned>(inputSet));
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("bc_n"), static_cast<std::uint64_t>(n), 8);
    Addr in = p.symbol("bc_in");
    for (int i = 0; i < n; ++i)
        m.write(in + static_cast<Addr>(8 * i), rng.next(), 8);
}

bool
bcValidateImpl(const Emulator &emu, int inputSet, int n)
{
    Rng rng(0xb17c0u + static_cast<unsigned>(inputSet));
    std::uint64_t total = 0;
    for (int i = 0; i < n; ++i) {
        std::uint64_t v = rng.next();
        total += 2ull * static_cast<std::uint64_t>(std::popcount(v));
    }
    return emu.memory().read(emu.program().symbol("bc_out"), 8) == total;
}

void
bcSetup(Emulator &emu, int inputSet)
{
    bcSetupImpl(emu, inputSet, bcN);
}

bool
bcValidate(const Emulator &emu, int inputSet)
{
    return bcValidateImpl(emu, inputSet, bcN);
}

void
bcSetupLong(Emulator &emu, int inputSet)
{
    bcSetupImpl(emu, inputSet, bcNLong);
}

bool
bcValidateLong(const Emulator &emu, int inputSet)
{
    return bcValidateImpl(emu, inputSet, bcNLong);
}

/** Long-tier program: the word array grows to bcNLong quads. */
const char *bcLongSrc = scaledSource(
    bcSrc, {{"bc_in:  .space 11200", "bc_in:  .space 52800"}});

// ---------------------------------------------------------------------
// sha: SHA-1-style compression rounds (message schedule + 80 rounds of
// rotate/xor/add) over a synthetic message.
// ---------------------------------------------------------------------

constexpr int shaBlocks = 36;
constexpr int shaBlocksLong = 340;  ///< ~1.1M units of work
constexpr int shaBlocksHuge = 3050; ///< ~10.1M units of work

const char *shaSrc = R"ASM(
    .text
    # registers: r10 block counter, r11 msg ptr, r16-r20 state a..e
main:
    ldq  r10, sha_nblk
    lda  r11, sha_msg
    li   r16, 0x67452301
    li   r17, 0xEFCDAB89
    li   r18, 0x98BADCFE
    li   r19, 0x10325476
    li   r20, 0xC3D2E1F0
blk:
    # copy 16 words into w[0..15]
    lda  r12, sha_w
    li   r1, 16
cpy:
    ldl  r2, 0(r11)
    stl  r2, 0(r12)
    lda  r11, 4(r11)
    lda  r12, 4(r12)
    subq r1, 1, r1
    bgt  r1, cpy
    # extend w[16..79]: w[i] = rotl1(w[i-3]^w[i-8]^w[i-14]^w[i-16])
    lda  r12, sha_w
    li   r1, 16
ext:
    s4addq r1, r12, r2
    ldl  r3, -12(r2)
    ldl  r4, -32(r2)
    xor  r3, r4, r3
    ldl  r4, -56(r2)
    xor  r3, r4, r3
    ldl  r4, -64(r2)
    xor  r3, r4, r3
    zapnot r3, 15, r3
    sll  r3, 1, r4
    srl  r3, 31, r5
    bis  r4, r5, r3
    stl  r3, 0(r2)
    addq r1, 1, r1
    cmplt r1, 80, r2
    bne  r2, ext
    # 80 rounds: t = rotl5(a) + ch(b,c,d) + e + K + w[i]
    clr  r1
    mov  r16, r2      # a
    mov  r17, r3      # b
    mov  r18, r4      # c
    mov  r19, r5      # d
    mov  r20, r6      # e
rnd:
    zapnot r2, 15, r7
    sll  r7, 5, r8
    srl  r7, 27, r9
    bis  r8, r9, r7       # rotl5(a)
    and  r3, r4, r8
    bic  r5, r3, r9
    bis  r8, r9, r8       # ch(b,c,d)
    addl r7, r8, r7
    addl r7, r6, r7
    ldq  r8, sha_k
    addl r7, r8, r7
    lda  r9, sha_w
    s4addq r1, r9, r9
    ldl  r8, 0(r9)
    addl r7, r8, r7       # t
    mov  r5, r6           # e = d
    mov  r4, r5           # d = c
    zapnot r3, 15, r8
    sll  r8, 30, r9
    srl  r8, 2, r8
    bis  r8, r9, r4
    addl r4, 0, r4        # c = rotl30(b) (sign-normalized)
    mov  r2, r3           # b = a
    mov  r7, r2           # a = t
    addq r1, 1, r1
    cmplt r1, 80, r7
    bne  r7, rnd
    addl r16, r2, r16
    addl r17, r3, r17
    addl r18, r4, r18
    addl r19, r5, r19
    addl r20, r6, r20
    subq r10, 1, r10
    bgt  r10, blk
    # fold state into one checksum
    zapnot r16, 15, r16
    zapnot r17, 15, r17
    zapnot r18, 15, r18
    zapnot r19, 15, r19
    zapnot r20, 15, r20
    xor  r16, r17, r1
    xor  r1, r18, r1
    addq r1, r19, r1
    xor  r1, r20, r1
    stq  r1, sha_out
    halt
    .data
sha_nblk: .quad 0
sha_k:    .quad 0x5A827999
sha_out:  .quad 0
sha_w:    .space 320
sha_msg:  .space 2304
)ASM";

void
shaSetupImpl(Emulator &emu, int inputSet, int blocks)
{
    Rng rng(0x5a1u + static_cast<unsigned>(inputSet));
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("sha_nblk"), static_cast<std::uint64_t>(blocks), 8);
    Addr msg = p.symbol("sha_msg");
    for (int i = 0; i < blocks * 16; ++i)
        m.write(msg + static_cast<Addr>(4 * i), rng.next() & 0xffffffff,
                4);
}

bool
shaValidateImpl(const Emulator &emu, int inputSet, int blocks)
{
    Rng rng(0x5a1u + static_cast<unsigned>(inputSet));
    auto rotl = [](std::uint32_t v, int n) {
        return (v << n) | (v >> (32 - n));
    };
    std::uint32_t h[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                          0x10325476u, 0xC3D2E1F0u};
    for (int b = 0; b < blocks; ++b) {
        std::uint32_t w[80];
        for (int i = 0; i < 16; ++i)
            w[i] = static_cast<std::uint32_t>(rng.next() & 0xffffffff);
        for (int i = 16; i < 80; ++i)
            w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
        std::uint32_t a = h[0], bb = h[1], c = h[2], d = h[3], e = h[4];
        for (int i = 0; i < 80; ++i) {
            std::uint32_t t = rotl(a, 5) + ((bb & c) | (d & ~bb)) + e +
                0x5A827999u + w[i];
            e = d;
            d = c;
            c = rotl(bb, 30);
            bb = a;
            a = t;
        }
        h[0] += a; h[1] += bb; h[2] += c; h[3] += d; h[4] += e;
    }
    std::uint64_t sum =
        ((static_cast<std::uint64_t>(h[0]) ^ h[1] ^ h[2]) + h[3]) ^ h[4];
    return emu.memory().read(emu.program().symbol("sha_out"), 8) == sum;
}

void
shaSetup(Emulator &emu, int inputSet)
{
    shaSetupImpl(emu, inputSet, shaBlocks);
}

bool
shaValidate(const Emulator &emu, int inputSet)
{
    return shaValidateImpl(emu, inputSet, shaBlocks);
}

void
shaSetupLong(Emulator &emu, int inputSet)
{
    shaSetupImpl(emu, inputSet, shaBlocksLong);
}

bool
shaValidateLong(const Emulator &emu, int inputSet)
{
    return shaValidateImpl(emu, inputSet, shaBlocksLong);
}

void
shaSetupHuge(Emulator &emu, int inputSet)
{
    shaSetupImpl(emu, inputSet, shaBlocksHuge);
}

bool
shaValidateHuge(const Emulator &emu, int inputSet)
{
    return shaValidateImpl(emu, inputSet, shaBlocksHuge);
}

/** Long-tier program: the message grows to shaBlocksLong 64-byte
 *  blocks. */
const char *shaLongSrc = scaledSource(
    shaSrc, {{"sha_msg:  .space 2304", "sha_msg:  .space 21760"}});

/** Huge-tier program: shaBlocksHuge 64-byte blocks. */
const char *shaHugeSrc = scaledSource(
    shaSrc, {{"sha_msg:  .space 2304", "sha_msg:  .space 195200"}});

// ---------------------------------------------------------------------
// dijkstra: O(N^2) single-source shortest paths over a dense random
// adjacency matrix.
// ---------------------------------------------------------------------

constexpr int djN = 48;
constexpr int djNLong = 240;        ///< ~1.2M units of work (O(N^2))
constexpr std::int64_t djInf = 1 << 28;

const char *djSrc = R"ASM(
    .text
main:
    # init dist[i] = INF, visited[i] = 0; dist[0] = 0
    lda  r11, dj_dist
    lda  r12, dj_vis
    ldq  r13, dj_inf
    li   r1, 48
ini:
    stq  r13, 0(r11)
    stq  r31, 0(r12)
    lda  r11, 8(r11)
    lda  r12, 8(r12)
    subq r1, 1, r1
    bgt  r1, ini
    lda  r11, dj_dist
    stq  r31, 0(r11)
    li   r10, 48          # outer iterations
outer:
    # find unvisited min
    clr  r14              # best index
    ldq  r15, dj_inf
    addq r15, 1, r15      # best dist = INF+1
    clr  r1               # i
scan:
    lda  r2, dj_vis
    s8addq r1, r2, r2
    ldq  r3, 0(r2)
    bne  r3, snext
    lda  r2, dj_dist
    s8addq r1, r2, r2
    ldq  r3, 0(r2)
    cmplt r3, r15, r4
    beq  r4, snext
    mov  r3, r15
    mov  r1, r14
snext:
    addq r1, 1, r1
    cmplt r1, 48, r2
    bne  r2, scan
    # mark visited
    lda  r2, dj_vis
    s8addq r14, r2, r2
    li   r3, 1
    stq  r3, 0(r2)
    # relax neighbours: adj row base = adj + u*48*4
    li   r2, 192
    mulq r14, r2, r2
    lda  r3, dj_adj
    addq r3, r2, r16      # row ptr
    lda  r17, dj_dist
    s8addq r14, r17, r2
    ldq  r18, 0(r2)       # dist[u]
    clr  r1
rel:
    lda  r2, dj_vis
    s8addq r1, r2, r2
    ldq  r3, 0(r2)
    bne  r3, rnext
    s4addq r1, r16, r2
    ldl  r4, 0(r2)        # w(u,v)
    addq r18, r4, r4
    s8addq r1, r17, r2
    ldq  r5, 0(r2)
    cmplt r4, r5, r6
    beq  r6, rnext
    stq  r4, 0(r2)
rnext:
    addq r1, 1, r1
    cmplt r1, 48, r2
    bne  r2, rel
    subq r10, 1, r10
    bgt  r10, outer
    # checksum distances
    lda  r11, dj_dist
    li   r1, 48
    clr  r12
sum:
    ldq  r2, 0(r11)
    addq r12, r2, r12
    lda  r11, 8(r11)
    subq r1, 1, r1
    bgt  r1, sum
    stq  r12, dj_out
    halt
    .data
dj_inf:  .quad 268435456
dj_out:  .quad 0
dj_dist: .space 384
dj_vis:  .space 384
dj_adj:  .space 9216
)ASM";

void
djFill(Rng &rng, std::vector<std::int32_t> &adj, int n)
{
    adj.resize(static_cast<size_t>(n) * static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            adj[static_cast<size_t>(i * n + j)] =
                (i == j) ? 0
                         : static_cast<std::int32_t>(1 + rng.below(900));
        }
    }
}

void
djSetupImpl(Emulator &emu, int inputSet, int n)
{
    Rng rng(0xd1357u + static_cast<unsigned>(inputSet));
    std::vector<std::int32_t> adj;
    djFill(rng, adj, n);
    Memory &m = emu.memory();
    Addr a = emu.program().symbol("dj_adj");
    for (size_t i = 0; i < adj.size(); ++i)
        m.write(a + static_cast<Addr>(4 * i),
                static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(adj[i])), 4);
}

bool
djValidateImpl(const Emulator &emu, int inputSet, int n)
{
    Rng rng(0xd1357u + static_cast<unsigned>(inputSet));
    std::vector<std::int32_t> adj;
    djFill(rng, adj, n);
    std::vector<std::int64_t> dist(static_cast<size_t>(n), djInf);
    std::vector<bool> vis(static_cast<size_t>(n), false);
    dist[0] = 0;
    for (int it = 0; it < n; ++it) {
        int u = 0;
        std::int64_t best = djInf + 1;
        for (int i = 0; i < n; ++i) {
            if (!vis[static_cast<size_t>(i)] &&
                dist[static_cast<size_t>(i)] < best) {
                best = dist[static_cast<size_t>(i)];
                u = i;
            }
        }
        vis[static_cast<size_t>(u)] = true;
        for (int v = 0; v < n; ++v) {
            if (vis[static_cast<size_t>(v)])
                continue;
            std::int64_t nd = dist[static_cast<size_t>(u)] +
                adj[static_cast<size_t>(u * n + v)];
            if (nd < dist[static_cast<size_t>(v)])
                dist[static_cast<size_t>(v)] = nd;
        }
    }
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<std::uint64_t>(dist[static_cast<size_t>(i)]);
    return emu.memory().read(emu.program().symbol("dj_out"), 8) == sum;
}

void
djSetup(Emulator &emu, int inputSet)
{
    djSetupImpl(emu, inputSet, djN);
}

bool
djValidate(const Emulator &emu, int inputSet)
{
    return djValidateImpl(emu, inputSet, djN);
}

void
djSetupLong(Emulator &emu, int inputSet)
{
    djSetupImpl(emu, inputSet, djNLong);
}

bool
djValidateLong(const Emulator &emu, int inputSet)
{
    return djValidateImpl(emu, inputSet, djNLong);
}

/** Long-tier program: the node count is a program *text* constant
 *  here (loop bounds, the 4*N adjacency-row stride, and the data
 *  arrays), so the derivation substitutes every N-dependent line.
 *  Multi-line patterns keep each substitution unambiguous where the
 *  bare bound appears in more than one loop. */
const char *djLongSrc = scaledSource(
    djSrc,
    {{"ldq  r13, dj_inf\n    li   r1, 48",
      "ldq  r13, dj_inf\n    li   r1, 240"},
     {"li   r10, 48", "li   r10, 240"},
     {"cmplt r1, 48, r2\n    bne  r2, scan",
      "cmplt r1, 240, r2\n    bne  r2, scan"},
     {"cmplt r1, 48, r2\n    bne  r2, rel",
      "cmplt r1, 240, r2\n    bne  r2, rel"},
     {"li   r2, 192", "li   r2, 960"},
     {"li   r1, 48\n    clr  r12", "li   r1, 240\n    clr  r12"},
     {"dj_dist: .space 384", "dj_dist: .space 1920"},
     {"dj_vis:  .space 384", "dj_vis:  .space 1920"},
     {"dj_adj:  .space 9216", "dj_adj:  .space 230400"}});

// ---------------------------------------------------------------------
// stringsearch: Horspool search of several patterns over a text.
// ---------------------------------------------------------------------

constexpr int ssTextLen = 4096;
constexpr int ssTextLenLong = 29500;    ///< ~1.1M units of work
constexpr int ssPatLen = 6;
constexpr int ssNumPats = 8;

const char *ssSrc = R"ASM(
    .text
main:
    clr  r20              # match count
    clr  r21              # pattern index
pat:
    # build shift table: all = patlen, then per pattern byte
    lda  r11, ss_shift
    li   r1, 256
    li   r2, 6
fill:
    stq  r2, 0(r11)
    lda  r11, 8(r11)
    subq r1, 1, r1
    bgt  r1, fill
    li   r2, 6
    mulq r21, r2, r1
    lda  r12, ss_pats
    addq r12, r1, r12     # pattern base
    clr  r1               # j in 0..patlen-2
bld:
    addq r12, r1, r2
    ldbu r3, 0(r2)
    li   r4, 5
    subq r4, r1, r4       # shift = patlen-1-j
    lda  r5, ss_shift
    s8addq r3, r5, r5
    stq  r4, 0(r5)
    addq r1, 1, r1
    cmplt r1, 5, r2
    bne  r2, bld
    # scan text
    clr  r13              # pos
    ldq  r14, ss_tlen
    subq r14, 6, r14      # last valid start
scan:
    cmple r13, r14, r1
    beq  r1, pdone
    lda  r2, ss_text
    addq r2, r13, r2      # window base
    # compare from last byte backwards
    li   r3, 5            # k
cmp:
    addq r2, r3, r4
    ldbu r5, 0(r4)
    addq r12, r3, r4
    ldbu r6, 0(r4)
    cmpeq r5, r6, r7
    beq  r7, miss
    subq r3, 1, r3
    bge  r3, cmp
    addq r20, 1, r20      # full match
    addq r13, 6, r13
    br   scan
miss:
    # skip by shift[text[pos+patlen-1]]
    ldbu r5, 5(r2)
    lda  r6, ss_shift
    s8addq r5, r6, r6
    ldq  r7, 0(r6)
    addq r13, r7, r13
    br   scan
pdone:
    addq r21, 1, r21
    cmplt r21, 8, r1
    bne  r1, pat
    stq  r20, ss_out
    halt
    .data
ss_tlen:  .quad 0
ss_out:   .quad 0
ss_shift: .space 2048
ss_pats:  .space 64
ss_text:  .space 4096
)ASM";

void
ssGen(Rng &rng, std::vector<std::uint8_t> &text,
      std::vector<std::uint8_t> &pats, int textLen)
{
    text.resize(static_cast<size_t>(textLen));
    for (auto &c : text)
        c = static_cast<std::uint8_t>('a' + rng.below(6));
    pats.resize(ssNumPats * ssPatLen);
    for (int p = 0; p < ssNumPats; ++p) {
        if (p % 2 == 0 && textLen > ssPatLen) {
            // Half the patterns are sampled from the text so matches
            // actually occur.
            auto off = rng.below(
                static_cast<std::uint64_t>(textLen - ssPatLen));
            for (int j = 0; j < ssPatLen; ++j)
                pats[static_cast<size_t>(p * ssPatLen + j)] =
                    text[static_cast<size_t>(off + j)];
        } else {
            for (int j = 0; j < ssPatLen; ++j)
                pats[static_cast<size_t>(p * ssPatLen + j)] =
                    static_cast<std::uint8_t>('a' + rng.below(6));
        }
    }
}

void
ssSetupImpl(Emulator &emu, int inputSet, int textLen)
{
    Rng rng(0x57a7u + static_cast<unsigned>(inputSet));
    std::vector<std::uint8_t> text, pats;
    ssGen(rng, text, pats, textLen);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("ss_tlen"), static_cast<std::uint64_t>(textLen), 8);
    m.writeBlock(p.symbol("ss_text"), text.data(), text.size());
    m.writeBlock(p.symbol("ss_pats"), pats.data(), pats.size());
}

bool
ssValidateImpl(const Emulator &emu, int inputSet, int textLen)
{
    Rng rng(0x57a7u + static_cast<unsigned>(inputSet));
    std::vector<std::uint8_t> text, pats;
    ssGen(rng, text, pats, textLen);
    std::uint64_t matches = 0;
    for (int p = 0; p < ssNumPats; ++p) {
        const std::uint8_t *pat = &pats[static_cast<size_t>(p * ssPatLen)];
        std::int64_t shift[256];
        for (auto &s : shift)
            s = ssPatLen;
        for (int j = 0; j < ssPatLen - 1; ++j)
            shift[pat[j]] = ssPatLen - 1 - j;
        std::int64_t pos = 0;
        std::int64_t last = textLen - ssPatLen;
        while (pos <= last) {
            int k = ssPatLen - 1;
            while (k >= 0 &&
                   text[static_cast<size_t>(pos + k)] == pat[k])
                --k;
            if (k < 0) {
                ++matches;
                pos += ssPatLen;
            } else {
                pos += shift[text[static_cast<size_t>(pos + ssPatLen -
                                                      1)]];
            }
        }
    }
    return emu.memory().read(emu.program().symbol("ss_out"), 8) ==
        matches;
}

void
ssSetup(Emulator &emu, int inputSet)
{
    ssSetupImpl(emu, inputSet, ssTextLen);
}

bool
ssValidate(const Emulator &emu, int inputSet)
{
    return ssValidateImpl(emu, inputSet, ssTextLen);
}

void
ssSetupLong(Emulator &emu, int inputSet)
{
    ssSetupImpl(emu, inputSet, ssTextLenLong);
}

bool
ssValidateLong(const Emulator &emu, int inputSet)
{
    return ssValidateImpl(emu, inputSet, ssTextLenLong);
}

/** Long-tier program: the text grows to ssTextLenLong bytes. */
const char *ssLongSrc = scaledSource(
    ssSrc, {{"ss_text:  .space 4096", "ss_text:  .space 29500"}});

// ---------------------------------------------------------------------
// blowfish: 16-round Feistel block cipher with four S-boxes.
// ---------------------------------------------------------------------

constexpr int bfBlocks = 340;
constexpr int bfBlocksLong = 2400;      ///< ~1.1M units of work

const char *bfSrc = R"ASM(
    .text
main:
    ldq  r10, bf_nblk
    lda  r11, bf_in
    clr  r20              # checksum
blk:
    ldl  r16, 0(r11)      # L
    zapnot r16, 15, r16
    ldl  r17, 4(r11)      # R
    zapnot r17, 15, r17
    li   r12, 16          # rounds
rnd:
    # F(L): s0[b3] + s1[b2] ^ s2[b1] + s3[b0]  (32-bit)
    srl  r16, 24, r1
    and  r1, 255, r1
    lda  r2, bf_s0
    s4addq r1, r2, r2
    ldl  r3, 0(r2)
    srl  r16, 16, r1
    and  r1, 255, r1
    lda  r2, bf_s1
    s4addq r1, r2, r2
    ldl  r4, 0(r2)
    addl r3, r4, r3
    srl  r16, 8, r1
    and  r1, 255, r1
    lda  r2, bf_s2
    s4addq r1, r2, r2
    ldl  r4, 0(r2)
    xor  r3, r4, r3
    and  r16, 255, r1
    lda  r2, bf_s3
    s4addq r1, r2, r2
    ldl  r4, 0(r2)
    addl r3, r4, r3
    zapnot r3, 15, r3     # F as u32
    xor  r17, r3, r17     # R ^= F(L)
    # swap L and R
    mov  r16, r1
    mov  r17, r16
    mov  r1, r17
    subq r12, 1, r12
    bgt  r12, rnd
    stl  r16, 0(r11)
    stl  r17, 4(r11)
    addq r20, r16, r20
    xor  r20, r17, r20
    lda  r11, 8(r11)
    subq r10, 1, r10
    bgt  r10, blk
    stq  r20, bf_out
    halt
    .data
bf_nblk: .quad 0
bf_out:  .quad 0
bf_s0:   .space 1024
bf_s1:   .space 1024
bf_s2:   .space 1024
bf_s3:   .space 1024
bf_in:   .space 2720
)ASM";

void
bfGen(Rng &rng, std::vector<std::uint32_t> &sbox,
      std::vector<std::uint32_t> &blocks, int nblocks)
{
    sbox.resize(4 * 256);
    for (auto &s : sbox)
        s = static_cast<std::uint32_t>(rng.next());
    blocks.resize(static_cast<size_t>(nblocks) * 2);
    for (auto &b : blocks)
        b = static_cast<std::uint32_t>(rng.next());
}

void
bfSetupImpl(Emulator &emu, int inputSet, int nblocks)
{
    Rng rng(0xb10f5u + static_cast<unsigned>(inputSet));
    std::vector<std::uint32_t> sbox, blocks;
    bfGen(rng, sbox, blocks, nblocks);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("bf_nblk"), static_cast<std::uint64_t>(nblocks), 8);
    for (int t = 0; t < 4; ++t) {
        Addr base = p.symbol(strfmt("bf_s%d", t));
        for (int i = 0; i < 256; ++i)
            m.write(base + static_cast<Addr>(4 * i),
                    sbox[static_cast<size_t>(t * 256 + i)], 4);
    }
    Addr in = p.symbol("bf_in");
    for (size_t i = 0; i < blocks.size(); ++i)
        m.write(in + static_cast<Addr>(4 * i), blocks[i], 4);
}

bool
bfValidateImpl(const Emulator &emu, int inputSet, int nblocks)
{
    Rng rng(0xb10f5u + static_cast<unsigned>(inputSet));
    std::vector<std::uint32_t> sbox, blocks;
    bfGen(rng, sbox, blocks, nblocks);
    std::uint64_t sum = 0;
    for (int b = 0; b < nblocks; ++b) {
        std::uint32_t l = blocks[static_cast<size_t>(2 * b)];
        std::uint32_t r = blocks[static_cast<size_t>(2 * b + 1)];
        for (int i = 0; i < 16; ++i) {
            std::uint32_t f =
                sbox[(l >> 24) & 255] + sbox[256 + ((l >> 16) & 255)];
            f ^= sbox[512 + ((l >> 8) & 255)];
            f += sbox[768 + (l & 255)];
            r ^= f;
            std::uint32_t t = l;
            l = r;
            r = t;
        }
        sum += l;
        sum ^= r;
    }
    return emu.memory().read(emu.program().symbol("bf_out"), 8) == sum;
}

void
bfSetup(Emulator &emu, int inputSet)
{
    bfSetupImpl(emu, inputSet, bfBlocks);
}

bool
bfValidate(const Emulator &emu, int inputSet)
{
    return bfValidateImpl(emu, inputSet, bfBlocks);
}

void
bfSetupLong(Emulator &emu, int inputSet)
{
    bfSetupImpl(emu, inputSet, bfBlocksLong);
}

bool
bfValidateLong(const Emulator &emu, int inputSet)
{
    return bfValidateImpl(emu, inputSet, bfBlocksLong);
}

/** Long-tier program: the block stream grows to bfBlocksLong 8-byte
 *  blocks. */
const char *bfLongSrc = scaledSource(
    bfSrc, {{"bf_in:   .space 2720", "bf_in:   .space 19200"}});

// ---------------------------------------------------------------------
// rgb2gray: RGBA-to-luma pixel conversion (the "2rgba"-style pixel
// loop: unpack, weighted sum, pack).
// ---------------------------------------------------------------------

constexpr int rgN = 4200;
constexpr int rgNLong = 58000;      ///< ~1.1M units of work

const char *rgSrc = R"ASM(
    .text
main:
    ldq  r10, rg_n
    lda  r11, rg_in
    lda  r12, rg_gray
    clr  r13
px:
    ldl  r1, 0(r11)
    zapnot r1, 15, r1
    and  r1, 255, r2
    srl  r1, 8, r3
    and  r3, 255, r3
    srl  r1, 16, r4
    and  r4, 255, r4
    mull r2, 77, r2
    mull r3, 151, r3
    mull r4, 28, r4
    addl r2, r3, r5
    addl r5, r4, r5
    srl  r5, 8, r5
    stb  r5, 0(r12)
    addq r13, r5, r13
    lda  r11, 4(r11)
    lda  r12, 1(r12)
    subq r10, 1, r10
    bgt  r10, px
    stq  r13, rg_out
    halt
    .data
rg_n:    .quad 0
rg_out:  .quad 0
rg_gray: .space 4200
rg_in:   .space 16800
)ASM";

void
rgSetupImpl(Emulator &emu, int inputSet, int n)
{
    Rng rng(0x26bau + static_cast<unsigned>(inputSet));
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("rg_n"), static_cast<std::uint64_t>(n), 8);
    Addr in = p.symbol("rg_in");
    for (int i = 0; i < n; ++i)
        m.write(in + static_cast<Addr>(4 * i), rng.next() & 0xffffffff,
                4);
}

bool
rgValidateImpl(const Emulator &emu, int inputSet, int n)
{
    Rng rng(0x26bau + static_cast<unsigned>(inputSet));
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
        std::uint32_t px = static_cast<std::uint32_t>(rng.next());
        std::uint32_t r = px & 255;
        std::uint32_t g = (px >> 8) & 255;
        std::uint32_t b = (px >> 16) & 255;
        sum += (r * 77 + g * 151 + b * 28) >> 8;
    }
    return emu.memory().read(emu.program().symbol("rg_out"), 8) == sum;
}

void
rgSetup(Emulator &emu, int inputSet)
{
    rgSetupImpl(emu, inputSet, rgN);
}

bool
rgValidate(const Emulator &emu, int inputSet)
{
    return rgValidateImpl(emu, inputSet, rgN);
}

void
rgSetupLong(Emulator &emu, int inputSet)
{
    rgSetupImpl(emu, inputSet, rgNLong);
}

bool
rgValidateLong(const Emulator &emu, int inputSet)
{
    return rgValidateImpl(emu, inputSet, rgNLong);
}

/** Long-tier program: the pixel input and luma output both grow to
 *  rgNLong entries. */
const char *rgLongSrc = scaledSource(
    rgSrc, {{"rg_gray: .space 4200", "rg_gray: .space 58000"},
            {"rg_in:   .space 16800", "rg_in:   .space 232000"}});

} // namespace

std::vector<Kernel>
mibenchKernels()
{
    return {
        {"bitcount", "MiBench-S",
         "bit counting via ctpop and Kernighan's loop", bcSrc, bcSetup,
         bcValidate, {bcLongSrc, bcSetupLong, bcValidateLong}},
        {"sha", "MiBench-S",
         "SHA-1-style message schedule and 80 compression rounds",
         shaSrc, shaSetup, shaValidate,
         {shaLongSrc, shaSetupLong, shaValidateLong},
         {shaHugeSrc, shaSetupHuge, shaValidateHuge}},
        {"dijkstra", "MiBench-S",
         "dense single-source shortest paths (O(N^2) scan)", djSrc,
         djSetup, djValidate, {djLongSrc, djSetupLong, djValidateLong}},
        {"stringsearch", "MiBench-S",
         "Horspool multi-pattern text search", ssSrc, ssSetup,
         ssValidate, {ssLongSrc, ssSetupLong, ssValidateLong}},
        {"blowfish", "MiBench-S",
         "16-round Feistel cipher with four S-boxes", bfSrc, bfSetup,
         bfValidate, {bfLongSrc, bfSetupLong, bfValidateLong}},
        {"rgb2gray", "MiBench-S",
         "RGBA-to-luma pixel conversion loop", rgSrc, rgSetup,
         rgValidate, {rgLongSrc, rgSetupLong, rgValidateLong}},
    };
}

} // namespace mg
