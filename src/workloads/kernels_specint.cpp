/**
 * @file
 * SPECint-S kernels: integer workloads with the small basic blocks
 * and branchy control the paper attributes to SPECint (compression,
 * pointer chasing, dictionary lookup, annealing, multi-precision
 * arithmetic, bitboards).
 */

#include "workloads/kernel.hh"

#include <bit>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mg {

namespace {

// ---------------------------------------------------------------------
// gzip: LZ77-style compression with a hash head table — literal/match
// decision per position, short match loops.
// ---------------------------------------------------------------------

constexpr int gzN = 5000;
constexpr int gzNLong = 55000;      ///< ~1.1M units of work
constexpr int gzHashSize = 4096;
constexpr int gzMaxMatch = 18;

std::vector<std::uint8_t>
gzInput(Rng &rng, int n)
{
    // Repetitive text: random phrases repeated so matches exist.
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> phrase;
    while (in.size() < static_cast<size_t>(n)) {
        if (phrase.empty() || rng.below(100) < 40) {
            phrase.clear();
            auto len = 4 + rng.below(12);
            for (std::uint64_t i = 0; i < len; ++i)
                phrase.push_back(
                    static_cast<std::uint8_t>('a' + rng.below(8)));
        }
        for (std::uint8_t c : phrase) {
            if (in.size() < static_cast<size_t>(n))
                in.push_back(c);
        }
    }
    return in;
}

const char *gzSrc = R"ASM(
    .text
    # r10 pos, r11 limit(n-18), r20 checksum, r21 output count
main:
    clr  r10
    ldq  r11, gz_n
    subq r11, 18, r11
    clr  r20
    clr  r21
pos:
    cmplt r10, r11, r1
    beq  r1, done
    # h = (in[p]<<4 ^ in[p+1]<<2 ^ in[p+2]) & 4095
    lda  r2, gz_in
    addq r2, r10, r2
    ldbu r3, 0(r2)
    ldbu r4, 1(r2)
    ldbu r5, 2(r2)
    sll  r3, 4, r3
    sll  r4, 2, r4
    xor  r3, r4, r3
    xor  r3, r5, r3
    ldq  r4, gz_hmask
    and  r3, r4, r3
    # cand = head[h] - 1 ; head[h] = pos + 1
    lda  r4, gz_head
    s8addq r3, r4, r4
    ldq  r5, 0(r4)
    subq r5, 1, r5        # cand
    addq r10, 1, r6
    stq  r6, 0(r4)
    blt  r5, lit
    # candidate must be strictly older
    cmplt r5, r10, r6
    beq  r6, lit
    # match length
    lda  r6, gz_in
    addq r6, r5, r6       # cand ptr
    clr  r7               # len
mlen:
    addq r2, r7, r8
    ldbu r8, 0(r8)
    addq r6, r7, r9
    ldbu r9, 0(r9)
    cmpeq r8, r9, r9
    beq  r9, mdone
    addq r7, 1, r7
    cmplt r7, 18, r8
    bne  r8, mlen
mdone:
    cmplt r7, 3, r8
    bne  r8, lit
    # emit match token (len, dist)
    subq r10, r5, r8      # dist
    mulq r8, 41, r8
    xor  r8, r7, r8
    mulq r20, 2, r9
    addq r9, r8, r20
    addq r21, 1, r21
    addq r10, r7, r10
    br   pos
lit:
    ldbu r3, 0(r2)
    mulq r20, 2, r9
    addq r9, r3, r20
    addq r21, 1, r21
    addq r10, 1, r10
    br   pos
done:
    stq  r20, gz_out
    stq  r21, gz_cnt
    halt
    .data
gz_n:     .quad 0
gz_hmask: .quad 4095
gz_out:   .quad 0
gz_cnt:   .quad 0
gz_head:  .space 32768
gz_in:    .space 5000
)ASM";

void
gzSetupImpl(Emulator &emu, int inputSet, int n)
{
    Rng rng(0x9217u + static_cast<unsigned>(inputSet));
    auto in = gzInput(rng, n);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("gz_n"), static_cast<std::uint64_t>(n), 8);
    m.writeBlock(p.symbol("gz_in"), in.data(), in.size());
}

bool
gzValidateImpl(const Emulator &emu, int inputSet, int n)
{
    Rng rng(0x9217u + static_cast<unsigned>(inputSet));
    auto in = gzInput(rng, n);
    std::vector<std::int64_t> head(gzHashSize, 0);
    std::uint64_t sum = 0, count = 0;
    std::int64_t pos = 0;
    const std::int64_t limit = n - gzMaxMatch;
    while (pos < limit) {
        std::int64_t h = ((in[static_cast<size_t>(pos)] << 4) ^
                          (in[static_cast<size_t>(pos + 1)] << 2) ^
                          in[static_cast<size_t>(pos + 2)]) &
            (gzHashSize - 1);
        std::int64_t cand = head[static_cast<size_t>(h)] - 1;
        head[static_cast<size_t>(h)] = pos + 1;
        std::int64_t len = 0;
        if (cand >= 0 && cand < pos) {
            while (len < gzMaxMatch &&
                   in[static_cast<size_t>(pos + len)] ==
                       in[static_cast<size_t>(cand + len)])
                ++len;
        }
        if (cand >= 0 && cand < pos && len >= 3) {
            std::uint64_t tok =
                static_cast<std::uint64_t>((pos - cand) * 41) ^
                static_cast<std::uint64_t>(len);
            sum = sum * 2 + tok;
            ++count;
            pos += len;
        } else {
            sum = sum * 2 + in[static_cast<size_t>(pos)];
            ++count;
            ++pos;
        }
    }
    const Program &p = emu.program();
    return emu.memory().read(p.symbol("gz_out"), 8) == sum &&
        emu.memory().read(p.symbol("gz_cnt"), 8) == count;
}

void
gzSetup(Emulator &emu, int inputSet)
{
    gzSetupImpl(emu, inputSet, gzN);
}

bool
gzValidate(const Emulator &emu, int inputSet)
{
    return gzValidateImpl(emu, inputSet, gzN);
}

void
gzSetupLong(Emulator &emu, int inputSet)
{
    gzSetupImpl(emu, inputSet, gzNLong);
}

bool
gzValidateLong(const Emulator &emu, int inputSet)
{
    return gzValidateImpl(emu, inputSet, gzNLong);
}

/** Long-tier program: the input text grows to gzNLong bytes. */
const char *gzLongSrc = scaledSource(
    gzSrc, {{"gz_in:    .space 5000", "gz_in:    .space 55000"}});

// ---------------------------------------------------------------------
// mcf: pointer-chasing relaxation over a random-permutation linked
// cycle of 32-byte node records (cache-hostile, like mcf's network
// simplex arcs).
// ---------------------------------------------------------------------

constexpr int mcfNodes = 6000;
constexpr int mcfPasses = 2;
constexpr int mcfPassesLong = 18;   ///< ~1.1M units of work
constexpr int mcfPassesHuge = 167;  ///< ~10.1M units of work

const char *mcfSrc = R"ASM(
    .text
    # node record: next(0), cost(8), pot(16), pad(24)
main:
    ldq  r10, mcf_passes
pass:
    lda  r11, mcf_nodes   # u = node 0
    ldq  r12, mcf_n       # steps per pass
step:
    ldq  r1, 0(r11)       # next ptr
    ldq  r2, 8(r11)       # cost(u)
    ldq  r3, 16(r11)      # pot(u)
    addq r3, r2, r4       # pot(u) + cost(u)
    ldq  r5, 16(r1)       # pot(v)
    cmplt r4, r5, r6
    beq  r6, nomin
    stq  r4, 16(r1)
nomin:
    mov  r1, r11
    subq r12, 1, r12
    bgt  r12, step
    subq r10, 1, r10
    bgt  r10, pass
    # checksum potentials
    lda  r11, mcf_nodes
    ldq  r12, mcf_n
    clr  r20
csum:
    ldq  r1, 16(r11)
    addq r20, r1, r20
    lda  r11, 32(r11)
    subq r12, 1, r12
    bgt  r12, csum
    stq  r20, mcf_out
    halt
    .data
mcf_n:      .quad 0
mcf_passes: .quad 0
mcf_out:    .quad 0
mcf_nodes:  .space 192000
)ASM";

void
mcfPerm(Rng &rng, std::vector<std::int64_t> &perm)
{
    perm.resize(mcfNodes);
    for (int i = 0; i < mcfNodes; ++i)
        perm[static_cast<size_t>(i)] = i;
    for (int i = mcfNodes - 1; i > 0; --i) {
        auto j = rng.below(static_cast<std::uint64_t>(i + 1));
        std::swap(perm[static_cast<size_t>(i)], perm[j]);
    }
}

void
mcfSetupImpl(Emulator &emu, int inputSet, int passes)
{
    Rng rng(0x3cfu + static_cast<unsigned>(inputSet));
    std::vector<std::int64_t> perm;
    mcfPerm(rng, perm);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("mcf_n"), mcfNodes, 8);
    m.write(p.symbol("mcf_passes"), static_cast<std::uint64_t>(passes),
            8);
    Addr base = p.symbol("mcf_nodes");
    // Permutation cycle: node perm[i] -> perm[i+1].
    for (int i = 0; i < mcfNodes; ++i) {
        std::int64_t u = perm[static_cast<size_t>(i)];
        std::int64_t v = perm[static_cast<size_t>((i + 1) % mcfNodes)];
        Addr ua = base + static_cast<Addr>(32 * u);
        m.write(ua, base + static_cast<Addr>(32 * v), 8);
        m.write(ua + 8, rng.below(1000), 8);
        m.write(ua + 16, 1000000 + rng.below(1000000), 8);
    }
}

bool
mcfValidateImpl(const Emulator &emu, int inputSet, int passes)
{
    Rng rng(0x3cfu + static_cast<unsigned>(inputSet));
    std::vector<std::int64_t> perm;
    mcfPerm(rng, perm);
    std::vector<std::int64_t> next(mcfNodes), cost(mcfNodes),
        pot(mcfNodes);
    for (int i = 0; i < mcfNodes; ++i) {
        std::int64_t u = perm[static_cast<size_t>(i)];
        next[static_cast<size_t>(u)] =
            perm[static_cast<size_t>((i + 1) % mcfNodes)];
        cost[static_cast<size_t>(u)] =
            static_cast<std::int64_t>(rng.below(1000));
        pot[static_cast<size_t>(u)] = static_cast<std::int64_t>(
            1000000 + rng.below(1000000));
    }
    for (int pass = 0; pass < passes; ++pass) {
        std::int64_t u = 0;
        for (int s = 0; s < mcfNodes; ++s) {
            std::int64_t v = next[static_cast<size_t>(u)];
            std::int64_t cand = pot[static_cast<size_t>(u)] +
                cost[static_cast<size_t>(u)];
            if (cand < pot[static_cast<size_t>(v)])
                pot[static_cast<size_t>(v)] = cand;
            u = v;
        }
    }
    std::uint64_t sum = 0;
    for (int i = 0; i < mcfNodes; ++i)
        sum += static_cast<std::uint64_t>(pot[static_cast<size_t>(i)]);
    return emu.memory().read(emu.program().symbol("mcf_out"), 8) == sum;
}

void
mcfSetup(Emulator &emu, int inputSet)
{
    mcfSetupImpl(emu, inputSet, mcfPasses);
}

bool
mcfValidate(const Emulator &emu, int inputSet)
{
    return mcfValidateImpl(emu, inputSet, mcfPasses);
}

void
mcfSetupLong(Emulator &emu, int inputSet)
{
    mcfSetupImpl(emu, inputSet, mcfPassesLong);
}

bool
mcfValidateLong(const Emulator &emu, int inputSet)
{
    return mcfValidateImpl(emu, inputSet, mcfPassesLong);
}

void
mcfSetupHuge(Emulator &emu, int inputSet)
{
    mcfSetupImpl(emu, inputSet, mcfPassesHuge);
}

bool
mcfValidateHuge(const Emulator &emu, int inputSet)
{
    return mcfValidateImpl(emu, inputSet, mcfPassesHuge);
}

// ---------------------------------------------------------------------
// parser: tokenize a byte stream into words and look each up in an
// open-addressed dictionary hash table (like parser's dict lookups).
// ---------------------------------------------------------------------

constexpr int parTextLen = 5200;
constexpr int parTextLenLong = 72000;   ///< ~1.1M units of work
constexpr int parTableSize = 1024;    // 8-byte keys
constexpr int parDictWords = 220;

std::uint64_t
parHash(std::uint64_t key)
{
    return (key * 0x9E3779B97F4A7C15ull) >> 54;   // top 10 bits
}

void
parGen(Rng &rng, std::vector<std::uint64_t> &table,
       std::vector<std::uint8_t> &text, int textLen)
{
    // Dictionary of packed <=8-char words.
    std::vector<std::uint64_t> words;
    for (int i = 0; i < parDictWords; ++i) {
        auto len = 3 + rng.below(6);
        std::uint64_t key = 0;
        for (std::uint64_t j = 0; j < len; ++j)
            key = (key << 8) |
                static_cast<std::uint64_t>('a' + rng.below(10));
        words.push_back(key);
    }
    table.assign(parTableSize, 0);
    for (std::uint64_t w : words) {
        std::uint64_t h = parHash(w) & (parTableSize - 1);
        while (table[h] != 0 && table[h] != w)
            h = (h + 1) & (parTableSize - 1);
        table[h] = w;
    }
    // Text: words (some from the dictionary) separated by spaces.
    text.clear();
    while (text.size() < static_cast<size_t>(textLen - 10)) {
        if (rng.below(100) < 55) {
            std::uint64_t w = words[rng.below(words.size())];
            std::uint8_t buf[8];
            int n = 0;
            while (w) {
                buf[n++] = static_cast<std::uint8_t>(w & 0xff);
                w >>= 8;
            }
            for (int j = n - 1; j >= 0; --j)
                text.push_back(buf[j]);
        } else {
            auto len = 3 + rng.below(6);
            for (std::uint64_t j = 0; j < len; ++j)
                text.push_back(
                    static_cast<std::uint8_t>('a' + rng.below(10)));
        }
        text.push_back(' ');
    }
    while (text.size() < static_cast<size_t>(textLen))
        text.push_back(' ');
}

const char *parSrc = R"ASM(
    .text
    # r10 pos, r11 n, r20 hits, r21 probes
main:
    clr  r10
    ldq  r11, par_n
    clr  r20
    clr  r21
word:
    cmplt r10, r11, r1
    beq  r1, done
    # skip spaces
    lda  r2, par_text
    addq r2, r10, r2
    ldbu r3, 0(r2)
    cmpeq r3, 32, r4
    beq  r4, begin
    addq r10, 1, r10
    br   word
begin:
    # accumulate key until space or end
    clr  r5               # key
key:
    cmplt r10, r11, r1
    beq  r1, lookup
    lda  r2, par_text
    addq r2, r10, r2
    ldbu r3, 0(r2)
    cmpeq r3, 32, r4
    bne  r4, lookup
    sll  r5, 8, r5
    bis  r5, r3, r5
    addq r10, 1, r10
    br   key
lookup:
    beq  r5, word
    # h = (key * K) >> 54, masked
    ldq  r1, par_mult
    mulq r5, r1, r6
    srl  r6, 54, r6
    ldq  r1, par_mask
    and  r6, r1, r6
probe:
    addq r21, 1, r21
    lda  r2, par_table
    s8addq r6, r2, r2
    ldq  r3, 0(r2)
    beq  r3, word         # empty slot: miss
    cmpeq r3, r5, r4
    beq  r4, next
    addq r20, 1, r20      # hit
    br   word
next:
    addq r6, 1, r6
    ldq  r1, par_mask
    and  r6, r1, r6
    br   probe
done:
    mulq r20, 1000000, r1
    addq r1, r21, r1
    stq  r1, par_out
    halt
    .data
par_n:     .quad 0
par_mult:  .quad 0x9E3779B97F4A7C15
par_mask:  .quad 1023
par_out:   .quad 0
par_table: .space 8192
par_text:  .space 5200
)ASM";

void
parSetupImpl(Emulator &emu, int inputSet, int textLen)
{
    Rng rng(0x9a25u + static_cast<unsigned>(inputSet));
    std::vector<std::uint64_t> table;
    std::vector<std::uint8_t> text;
    parGen(rng, table, text, textLen);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("par_n"), text.size(), 8);
    Addr t = p.symbol("par_table");
    for (size_t i = 0; i < table.size(); ++i)
        m.write(t + static_cast<Addr>(8 * i), table[i], 8);
    m.writeBlock(p.symbol("par_text"), text.data(), text.size());
}

bool
parValidateImpl(const Emulator &emu, int inputSet, int textLen)
{
    Rng rng(0x9a25u + static_cast<unsigned>(inputSet));
    std::vector<std::uint64_t> table;
    std::vector<std::uint8_t> text;
    parGen(rng, table, text, textLen);
    std::uint64_t hits = 0, probes = 0;
    size_t pos = 0;
    const size_t n = text.size();
    while (pos < n) {
        if (text[pos] == ' ') {
            ++pos;
            continue;
        }
        std::uint64_t key = 0;
        while (pos < n && text[pos] != ' ') {
            key = (key << 8) | text[pos];
            ++pos;
        }
        if (key == 0)
            continue;
        std::uint64_t h = parHash(key) & (parTableSize - 1);
        for (;;) {
            ++probes;
            std::uint64_t e = table[h];
            if (e == 0)
                break;
            if (e == key) {
                ++hits;
                break;
            }
            h = (h + 1) & (parTableSize - 1);
        }
    }
    std::uint64_t expect = hits * 1000000 + probes;
    return emu.memory().read(emu.program().symbol("par_out"), 8) ==
        expect;
}

void
parSetup(Emulator &emu, int inputSet)
{
    parSetupImpl(emu, inputSet, parTextLen);
}

bool
parValidate(const Emulator &emu, int inputSet)
{
    return parValidateImpl(emu, inputSet, parTextLen);
}

void
parSetupLong(Emulator &emu, int inputSet)
{
    parSetupImpl(emu, inputSet, parTextLenLong);
}

bool
parValidateLong(const Emulator &emu, int inputSet)
{
    return parValidateImpl(emu, inputSet, parTextLenLong);
}

/** Long-tier program: the token text grows to parTextLenLong bytes. */
const char *parLongSrc = scaledSource(
    parSrc, {{"par_text:  .space 5200", "par_text:  .space 72000"}});

// ---------------------------------------------------------------------
// twolf: annealing-style placement — swap two cells, recompute the
// half-perimeter cost over the netlist, keep improvements.
// ---------------------------------------------------------------------

constexpr int twCells = 128;
constexpr int twNets = 64;
constexpr int twIters = 160;
constexpr int twItersLong = 600;    ///< ~1.1M units of work

const char *twSrc = R"ASM(
    .text
    # r10 iteration, r16 lcg state, r17 current cost
main:
    ldq  r10, tw_iters
    ldq  r16, tw_seed
    # initial cost
    bsr  r26, cost
    mov  r0, r17
iter:
    # pick i = lcg() % cells, j = lcg() % cells
    ldq  r1, tw_lcga
    mulq r16, r1, r16
    ldq  r1, tw_lcgc
    addq r16, r1, r16
    srl  r16, 33, r2
    ldq  r1, tw_cmask
    and  r2, r1, r18      # i
    mulq r16, r16, r2
    ldq  r1, tw_lcga
    mulq r16, r1, r16
    ldq  r1, tw_lcgc
    addq r16, r1, r16
    srl  r16, 33, r2
    ldq  r1, tw_cmask
    and  r2, r1, r19      # j
    # swap positions of cells i and j (x and y quads)
    lda  r1, tw_x
    s8addq r18, r1, r2
    s8addq r19, r1, r3
    ldq  r4, 0(r2)
    ldq  r5, 0(r3)
    stq  r5, 0(r2)
    stq  r4, 0(r3)
    lda  r1, tw_y
    s8addq r18, r1, r2
    s8addq r19, r1, r3
    ldq  r4, 0(r2)
    ldq  r5, 0(r3)
    stq  r5, 0(r2)
    stq  r4, 0(r3)
    # recompute cost
    bsr  r26, cost
    cmple r0, r17, r1
    beq  r1, revert
    mov  r0, r17
    br   next
revert:
    lda  r1, tw_x
    s8addq r18, r1, r2
    s8addq r19, r1, r3
    ldq  r4, 0(r2)
    ldq  r5, 0(r3)
    stq  r5, 0(r2)
    stq  r4, 0(r3)
    lda  r1, tw_y
    s8addq r18, r1, r2
    s8addq r19, r1, r3
    ldq  r4, 0(r2)
    ldq  r5, 0(r3)
    stq  r5, 0(r2)
    stq  r4, 0(r3)
next:
    subq r10, 1, r10
    bgt  r10, iter
    stq  r17, tw_out
    halt
    # --- cost(): r0 = sum over nets |xa-xb| + |ya-yb| ---
cost:
    clr  r0
    clr  r12              # net index
    ldq  r13, tw_nnets
nloop:
    lda  r1, tw_neta
    s8addq r12, r1, r1
    ldq  r2, 0(r1)        # cell a
    lda  r1, tw_netb
    s8addq r12, r1, r1
    ldq  r3, 0(r1)        # cell b
    lda  r1, tw_x
    s8addq r2, r1, r4
    ldq  r4, 0(r4)
    s8addq r3, r1, r5
    ldq  r5, 0(r5)
    subq r4, r5, r4
    sra  r4, 63, r5       # branch-free abs
    xor  r4, r5, r4
    subq r4, r5, r4
    addq r0, r4, r0
    lda  r1, tw_y
    s8addq r2, r1, r4
    ldq  r4, 0(r4)
    s8addq r3, r1, r5
    ldq  r5, 0(r5)
    subq r4, r5, r4
    sra  r4, 63, r5
    xor  r4, r5, r4
    subq r4, r5, r4
    addq r0, r4, r0
    addq r12, 1, r12
    cmplt r12, r13, r1
    bne  r1, nloop
    ret  (r26)
    .data
tw_iters: .quad 0
tw_nnets: .quad 0
tw_seed:  .quad 0
tw_lcga:  .quad 6364136223846793005
tw_lcgc:  .quad 1442695040888963407
tw_cmask: .quad 127
tw_out:   .quad 0
tw_x:     .space 1024
tw_y:     .space 1024
tw_neta:  .space 512
tw_netb:  .space 512
)ASM";

struct TwState
{
    std::vector<std::int64_t> x, y, na, nb;
    std::uint64_t seed;
};

TwState
twGen(Rng &rng)
{
    TwState s;
    s.x.resize(twCells);
    s.y.resize(twCells);
    for (int i = 0; i < twCells; ++i) {
        s.x[static_cast<size_t>(i)] =
            static_cast<std::int64_t>(rng.below(1000));
        s.y[static_cast<size_t>(i)] =
            static_cast<std::int64_t>(rng.below(1000));
    }
    s.na.resize(twNets);
    s.nb.resize(twNets);
    for (int i = 0; i < twNets; ++i) {
        s.na[static_cast<size_t>(i)] =
            static_cast<std::int64_t>(rng.below(twCells));
        s.nb[static_cast<size_t>(i)] =
            static_cast<std::int64_t>(rng.below(twCells));
    }
    s.seed = rng.next() | 1;
    return s;
}

void
twSetupImpl(Emulator &emu, int inputSet, int iters)
{
    Rng rng(0x2017u + static_cast<unsigned>(inputSet));
    TwState s = twGen(rng);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("tw_iters"), static_cast<std::uint64_t>(iters), 8);
    m.write(p.symbol("tw_nnets"), twNets, 8);
    m.write(p.symbol("tw_seed"), s.seed, 8);
    for (int i = 0; i < twCells; ++i) {
        m.write(p.symbol("tw_x") + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(s.x[static_cast<size_t>(i)]),
                8);
        m.write(p.symbol("tw_y") + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(s.y[static_cast<size_t>(i)]),
                8);
    }
    for (int i = 0; i < twNets; ++i) {
        m.write(p.symbol("tw_neta") + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(s.na[static_cast<size_t>(i)]),
                8);
        m.write(p.symbol("tw_netb") + static_cast<Addr>(8 * i),
                static_cast<std::uint64_t>(s.nb[static_cast<size_t>(i)]),
                8);
    }
}

bool
twValidateImpl(const Emulator &emu, int inputSet, int iters)
{
    Rng rng(0x2017u + static_cast<unsigned>(inputSet));
    TwState s = twGen(rng);
    auto cost = [&]() {
        std::int64_t c = 0;
        for (int i = 0; i < twNets; ++i) {
            std::int64_t a = s.na[static_cast<size_t>(i)];
            std::int64_t b = s.nb[static_cast<size_t>(i)];
            std::int64_t dx = s.x[static_cast<size_t>(a)] -
                s.x[static_cast<size_t>(b)];
            std::int64_t dy = s.y[static_cast<size_t>(a)] -
                s.y[static_cast<size_t>(b)];
            c += (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
        }
        return c;
    };
    std::uint64_t lcg = s.seed;
    auto next = [&]() {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return (lcg >> 33) & (twCells - 1);
    };
    std::int64_t cur = cost();
    for (int it = 0; it < iters; ++it) {
        std::uint64_t i = next();
        std::uint64_t j = next();
        std::swap(s.x[i], s.x[j]);
        std::swap(s.y[i], s.y[j]);
        std::int64_t c = cost();
        if (c <= cur) {
            cur = c;
        } else {
            std::swap(s.x[i], s.x[j]);
            std::swap(s.y[i], s.y[j]);
        }
    }
    return emu.memory().read(emu.program().symbol("tw_out"), 8) ==
        static_cast<std::uint64_t>(cur);
}

void
twSetup(Emulator &emu, int inputSet)
{
    twSetupImpl(emu, inputSet, twIters);
}

bool
twValidate(const Emulator &emu, int inputSet)
{
    return twValidateImpl(emu, inputSet, twIters);
}

void
twSetupLong(Emulator &emu, int inputSet)
{
    twSetupImpl(emu, inputSet, twItersLong);
}

bool
twValidateLong(const Emulator &emu, int inputSet)
{
    return twValidateImpl(emu, inputSet, twItersLong);
}

// ---------------------------------------------------------------------
// gap: multi-precision (bignum) arithmetic — interleaved big-integer
// additions with explicit carry chains over 64-bit limbs.
// ---------------------------------------------------------------------

constexpr int gapLimbs = 32;
constexpr int gapIters = 260;
constexpr int gapItersLong = 1450;  ///< ~1.1M units of work

const char *gapSrc = R"ASM(
    .text
    # alternate A += B and B += A with carry propagation
main:
    ldq  r10, gap_iters
iter:
    # A += B
    lda  r11, gap_a
    lda  r12, gap_b
    ldq  r13, gap_limbs
    clr  r14              # carry
add1:
    ldq  r1, 0(r11)
    ldq  r2, 0(r12)
    addq r1, r2, r3
    cmpult r3, r1, r4     # carry out of a+b
    addq r3, r14, r5
    cmpult r5, r3, r6     # carry out of +carry
    bis  r4, r6, r14
    stq  r5, 0(r11)
    lda  r11, 8(r11)
    lda  r12, 8(r12)
    subq r13, 1, r13
    bgt  r13, add1
    # B += A
    lda  r11, gap_b
    lda  r12, gap_a
    ldq  r13, gap_limbs
    clr  r14
add2:
    ldq  r1, 0(r11)
    ldq  r2, 0(r12)
    addq r1, r2, r3
    cmpult r3, r1, r4
    addq r3, r14, r5
    cmpult r5, r3, r6
    bis  r4, r6, r14
    stq  r5, 0(r11)
    lda  r11, 8(r11)
    lda  r12, 8(r12)
    subq r13, 1, r13
    bgt  r13, add2
    subq r10, 1, r10
    bgt  r10, iter
    # fold A and B into a checksum
    lda  r11, gap_a
    lda  r12, gap_b
    ldq  r13, gap_limbs
    clr  r20
fold:
    ldq  r1, 0(r11)
    ldq  r2, 0(r12)
    xor  r1, r2, r1
    mulq r20, 31, r20
    addq r20, r1, r20
    lda  r11, 8(r11)
    lda  r12, 8(r12)
    subq r13, 1, r13
    bgt  r13, fold
    stq  r20, gap_out
    halt
    .data
gap_iters: .quad 0
gap_limbs: .quad 0
gap_out:   .quad 0
gap_a:     .space 256
gap_b:     .space 256
)ASM";

void
gapGen(Rng &rng, std::vector<std::uint64_t> &a,
       std::vector<std::uint64_t> &b)
{
    a.resize(gapLimbs);
    b.resize(gapLimbs);
    for (auto &v : a)
        v = rng.next();
    for (auto &v : b)
        v = rng.next();
}

void
gapSetupImpl(Emulator &emu, int inputSet, int iters)
{
    Rng rng(0x9a9u + static_cast<unsigned>(inputSet));
    std::vector<std::uint64_t> a, b;
    gapGen(rng, a, b);
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("gap_iters"), static_cast<std::uint64_t>(iters), 8);
    m.write(p.symbol("gap_limbs"), gapLimbs, 8);
    for (int i = 0; i < gapLimbs; ++i) {
        m.write(p.symbol("gap_a") + static_cast<Addr>(8 * i),
                a[static_cast<size_t>(i)], 8);
        m.write(p.symbol("gap_b") + static_cast<Addr>(8 * i),
                b[static_cast<size_t>(i)], 8);
    }
}

bool
gapValidateImpl(const Emulator &emu, int inputSet, int iters)
{
    Rng rng(0x9a9u + static_cast<unsigned>(inputSet));
    std::vector<std::uint64_t> a, b;
    gapGen(rng, a, b);
    auto addInto = [](std::vector<std::uint64_t> &x,
                      const std::vector<std::uint64_t> &y) {
        std::uint64_t carry = 0;
        for (int i = 0; i < gapLimbs; ++i) {
            std::uint64_t s = x[static_cast<size_t>(i)] +
                y[static_cast<size_t>(i)];
            std::uint64_t c1 = s < x[static_cast<size_t>(i)] ? 1 : 0;
            std::uint64_t s2 = s + carry;
            std::uint64_t c2 = s2 < s ? 1 : 0;
            carry = c1 | c2;
            x[static_cast<size_t>(i)] = s2;
        }
    };
    for (int it = 0; it < iters; ++it) {
        addInto(a, b);
        addInto(b, a);
    }
    std::uint64_t sum = 0;
    for (int i = 0; i < gapLimbs; ++i)
        sum = sum * 31 +
            (a[static_cast<size_t>(i)] ^ b[static_cast<size_t>(i)]);
    return emu.memory().read(emu.program().symbol("gap_out"), 8) == sum;
}

void
gapSetup(Emulator &emu, int inputSet)
{
    gapSetupImpl(emu, inputSet, gapIters);
}

bool
gapValidate(const Emulator &emu, int inputSet)
{
    return gapValidateImpl(emu, inputSet, gapIters);
}

void
gapSetupLong(Emulator &emu, int inputSet)
{
    gapSetupImpl(emu, inputSet, gapItersLong);
}

bool
gapValidateLong(const Emulator &emu, int inputSet)
{
    return gapValidateImpl(emu, inputSet, gapItersLong);
}

// ---------------------------------------------------------------------
// crafty: bitboard move generation — shift-mask mobility counts with
// popcount over random occupancy boards.
// ---------------------------------------------------------------------

constexpr int cfBoards = 2600;
constexpr int cfBoardsLong = 36500;     ///< ~1.1M units of work

const char *cfSrc = R"ASM(
    .text
main:
    ldq  r10, cf_n
    lda  r11, cf_occ
    lda  r12, cf_own
    clr  r20
board:
    ldq  r1, 0(r11)       # occupancy
    ldq  r2, 0(r12)       # own pieces
    ornot r31, r1, r3     # empty = ~occ
    # north moves
    sll  r2, 8, r4
    and  r4, r3, r4
    ctpop r4, r5
    addq r20, r5, r20
    # south moves
    srl  r2, 8, r4
    and  r4, r3, r4
    ctpop r4, r5
    addq r20, r5, r20
    # east moves (mask off H file wrap)
    sll  r2, 1, r4
    ldq  r6, cf_notA
    and  r4, r6, r4
    and  r4, r3, r4
    ctpop r4, r5
    addq r20, r5, r20
    # west moves (mask off A file wrap)
    srl  r2, 1, r4
    ldq  r6, cf_notH
    and  r4, r6, r4
    and  r4, r3, r4
    ctpop r4, r5
    addq r20, r5, r20
    # bonus for boards with mobile center
    ldq  r6, cf_center
    and  r4, r6, r7
    beq  r7, nocen
    addq r20, 3, r20
nocen:
    lda  r11, 8(r11)
    lda  r12, 8(r12)
    subq r10, 1, r10
    bgt  r10, board
    stq  r20, cf_out
    halt
    .data
cf_n:      .quad 0
cf_notA:   .quad 0xFEFEFEFEFEFEFEFE
cf_notH:   .quad 0x7F7F7F7F7F7F7F7F
cf_center: .quad 0x0000001818000000
cf_out:    .quad 0
cf_occ:    .space 20800
cf_own:    .space 20800
)ASM";

void
cfSetupImpl(Emulator &emu, int inputSet, int boards)
{
    Rng rng(0xc4a4u + static_cast<unsigned>(inputSet));
    Memory &m = emu.memory();
    const Program &p = emu.program();
    m.write(p.symbol("cf_n"), static_cast<std::uint64_t>(boards), 8);
    Addr occ = p.symbol("cf_occ");
    Addr own = p.symbol("cf_own");
    for (int i = 0; i < boards; ++i) {
        std::uint64_t o = rng.next() & rng.next();   // ~25% occupancy
        std::uint64_t w = o & rng.next();
        m.write(occ + static_cast<Addr>(8 * i), o, 8);
        m.write(own + static_cast<Addr>(8 * i), w, 8);
    }
}

bool
cfValidateImpl(const Emulator &emu, int inputSet, int boards)
{
    Rng rng(0xc4a4u + static_cast<unsigned>(inputSet));
    std::uint64_t sum = 0;
    for (int i = 0; i < boards; ++i) {
        std::uint64_t o = rng.next() & rng.next();
        std::uint64_t w = o & rng.next();
        std::uint64_t empty = ~o;
        std::uint64_t north = (w << 8) & empty;
        std::uint64_t south = (w >> 8) & empty;
        std::uint64_t east = (w << 1) & 0xFEFEFEFEFEFEFEFEull & empty;
        std::uint64_t west = (w >> 1) & 0x7F7F7F7F7F7F7F7Full & empty;
        sum += static_cast<std::uint64_t>(std::popcount(north)) +
            static_cast<std::uint64_t>(std::popcount(south)) +
            static_cast<std::uint64_t>(std::popcount(east)) +
            static_cast<std::uint64_t>(std::popcount(west));
        if (west & 0x0000001818000000ull)
            sum += 3;
    }
    return emu.memory().read(emu.program().symbol("cf_out"), 8) == sum;
}

void
cfSetup(Emulator &emu, int inputSet)
{
    cfSetupImpl(emu, inputSet, cfBoards);
}

bool
cfValidate(const Emulator &emu, int inputSet)
{
    return cfValidateImpl(emu, inputSet, cfBoards);
}

void
cfSetupLong(Emulator &emu, int inputSet)
{
    cfSetupImpl(emu, inputSet, cfBoardsLong);
}

bool
cfValidateLong(const Emulator &emu, int inputSet)
{
    return cfValidateImpl(emu, inputSet, cfBoardsLong);
}

/** Long-tier program: the board arrays grow to cfBoardsLong quads. */
const char *cfLongSrc = scaledSource(
    cfSrc, {{"cf_occ:    .space 20800", "cf_occ:    .space 292000"},
            {"cf_own:    .space 20800", "cf_own:    .space 292000"}});

} // namespace

std::vector<Kernel>
specintKernels()
{
    return {
        {"gzip", "SPECint-S", "LZ77-style compression with hash heads",
         gzSrc, gzSetup, gzValidate,
         {gzLongSrc, gzSetupLong, gzValidateLong}},
        {"mcf", "SPECint-S",
         "pointer-chasing relaxation over a 192KB node cycle", mcfSrc,
         mcfSetup, mcfValidate,
         {nullptr, mcfSetupLong, mcfValidateLong},
         {nullptr, mcfSetupHuge, mcfValidateHuge}},
        {"parser", "SPECint-S",
         "tokenizer with open-addressed dictionary lookup", parSrc,
         parSetup, parValidate,
         {parLongSrc, parSetupLong, parValidateLong}},
        {"twolf", "SPECint-S",
         "annealing placement with half-perimeter cost", twSrc,
         twSetup, twValidate, {nullptr, twSetupLong, twValidateLong}},
        {"gap", "SPECint-S",
         "multi-precision addition with carry chains", gapSrc,
         gapSetup, gapValidate,
         {nullptr, gapSetupLong, gapValidateLong}},
        {"crafty", "SPECint-S",
         "bitboard mobility evaluation with popcounts", cfSrc, cfSetup,
         cfValidate, {cfLongSrc, cfSetupLong, cfValidateLong}},
    };
}

} // namespace mg
