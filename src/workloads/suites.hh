/**
 * @file
 * Convenience layer tying kernels to the simulation flow: assemble,
 * set up inputs, profile, and run configurations — the common loop of
 * every figure-reproduction bench.
 */

#ifndef MG_WORKLOADS_SUITES_HH
#define MG_WORKLOADS_SUITES_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/kernel.hh"

namespace mg {

/** A kernel bound to its program and setup closure. */
struct BoundKernel
{
    const Kernel *kernel = nullptr;
    const Program *program = nullptr;
    SetupFn setup;                  ///< inputSet 0

    /** Setup closure for an alternate input set. */
    SetupFn setupFor(int inputSet) const;
};

/** Bind @p k (assembling its source on first use). */
BoundKernel bindKernel(const Kernel &k);

/** Bind every kernel of @p suite. */
std::vector<BoundKernel> bindSuite(const std::string &suite);

/** Bind all kernels of all suites (presentation order). */
std::vector<BoundKernel> bindAll();

/**
 * Emulate @p bk to completion and verify its checksum against the C++
 * reference; fatal on mismatch. @return dynamic work executed.
 */
std::uint64_t checkKernel(const BoundKernel &bk, int inputSet = 0);

} // namespace mg

#endif // MG_WORKLOADS_SUITES_HH
