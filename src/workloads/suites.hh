/**
 * @file
 * Convenience layer tying kernels to the experiment engine: binding a
 * kernel assembles its source (at the requested scale) and packages
 * its input-planting closure; the suite-matrix helpers expose whole
 * suites (and the paper's standard configuration columns) as engine
 * sweep axes.
 *
 * Scale flows through the workload id ("<kernel>@long"), which is the
 * key every engine artifact cache fingerprints on — so profiles,
 * prepared rewrites, timing runs, and sample summaries of the two
 * tiers never collide even when they share one program text.
 */

#ifndef MG_WORKLOADS_SUITES_HH
#define MG_WORKLOADS_SUITES_HH

#include <string>
#include <vector>

#include "engine/engine.hh"
#include "sim/simulator.hh"
#include "workloads/kernel.hh"

namespace mg {

/** A kernel bound to its program and setup closure at one scale. */
struct BoundKernel
{
    const Kernel *kernel = nullptr;
    const Program *program = nullptr;
    Scale scale = Scale::Ref;
    SetupFn setup;                  ///< inputSet 0

    /** Setup closure for an alternate input set (same scale). */
    SetupFn setupFor(int inputSet) const;
};

/** Bind @p k at @p scale (assembling its source on first use); fatal
 *  when the kernel does not support the scale. */
BoundKernel bindKernel(const Kernel &k, Scale scale = Scale::Ref);

/** Bind every kernel of @p suite supporting @p scale. */
std::vector<BoundKernel> bindSuite(const std::string &suite,
                                   Scale scale = Scale::Ref);

/** Bind all kernels of all suites supporting @p scale (presentation
 *  order). */
std::vector<BoundKernel> bindAll(Scale scale = Scale::Ref);

/**
 * Emulate @p bk to completion and verify its checksum against the C++
 * reference; fatal on mismatch. @return dynamic work executed.
 */
std::uint64_t checkKernel(const BoundKernel &bk, int inputSet = 0);

/**
 * Engine workload for @p bk's input set @p inputSet. The workload id
 * is the kernel name (suffixed "@long" for the long tier and "#<set>"
 * for alternate inputs), which is what the artifact caches key on.
 */
EngineWorkload workload(const BoundKernel &bk, int inputSet = 0);

/**
 * A sweep row axis: every kernel of @p suite ("all" = all suites in
 * presentation order) supporting @p scale, as an engine workload.
 */
std::vector<EngineWorkload> suiteWorkloads(const std::string &suite = "all",
                                           int inputSet = 0,
                                           Scale scale = Scale::Ref);

/**
 * The paper's standard column axis: the 6-wide baseline followed by
 * the four Figure 6 mini-graph machines (int, int+coll, int-mem,
 * int-mem+coll).
 */
std::vector<SweepColumn> standardColumns();

} // namespace mg

#endif // MG_WORKLOADS_SUITES_HH
