/**
 * @file
 * Convenience layer tying kernels to the experiment engine: binding a
 * kernel assembles its source and packages its input-planting closure;
 * the suite-matrix helpers expose whole suites (and the paper's
 * standard configuration columns) as engine sweep axes.
 */

#ifndef MG_WORKLOADS_SUITES_HH
#define MG_WORKLOADS_SUITES_HH

#include <string>
#include <vector>

#include "engine/engine.hh"
#include "sim/simulator.hh"
#include "workloads/kernel.hh"

namespace mg {

/** A kernel bound to its program and setup closure. */
struct BoundKernel
{
    const Kernel *kernel = nullptr;
    const Program *program = nullptr;
    SetupFn setup;                  ///< inputSet 0

    /** Setup closure for an alternate input set. */
    SetupFn setupFor(int inputSet) const;
};

/** Bind @p k (assembling its source on first use). */
BoundKernel bindKernel(const Kernel &k);

/** Bind every kernel of @p suite. */
std::vector<BoundKernel> bindSuite(const std::string &suite);

/** Bind all kernels of all suites (presentation order). */
std::vector<BoundKernel> bindAll();

/**
 * Emulate @p bk to completion and verify its checksum against the C++
 * reference; fatal on mismatch. @return dynamic work executed.
 */
std::uint64_t checkKernel(const BoundKernel &bk, int inputSet = 0);

/**
 * Engine workload for @p bk's input set @p inputSet. The workload id
 * is the kernel name (suffixed "#<set>" for alternate inputs), which
 * is what the artifact caches key on.
 */
EngineWorkload workload(const BoundKernel &bk, int inputSet = 0);

/**
 * A sweep row axis: every kernel of @p suite ("all" = all suites in
 * presentation order) as an engine workload.
 */
std::vector<EngineWorkload> suiteWorkloads(const std::string &suite = "all",
                                           int inputSet = 0);

/**
 * The paper's standard column axis: the 6-wide baseline followed by
 * the four Figure 6 mini-graph machines (int, int+coll, int-mem,
 * int-mem+coll).
 */
std::vector<SweepColumn> standardColumns();

} // namespace mg

#endif // MG_WORKLOADS_SUITES_HH
