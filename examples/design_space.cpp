/**
 * @file
 * Design-space exploration on one kernel: how MGT capacity, maximum
 * mini-graph size, selection policies, and collapsing pipelines trade
 * off coverage against speedup — the knobs a user tunes when adopting
 * the library.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/stats.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

using namespace mg;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "adpcm.enc";
    BoundKernel bk = bindKernel(findKernel(name));
    printf("design space for kernel '%s' (%s)\n\n", bk.kernel->name,
           bk.kernel->description);

    CoreStats base = runCore(*bk.program, nullptr,
                             SimConfig::baseline().core, bk.setup);
    printf("baseline IPC %.3f over %llu cycles\n\n", base.ipc(),
           static_cast<unsigned long long>(base.cycles));

    BlockProfile prof = collectProfile(*bk.program, bk.setup, 400000);

    TextTable t;
    t.header({"config", "templates", "coverage", "IPC", "speedup"});
    auto runOne = [&](const std::string &label, SimConfig cfg) {
        PreparedMg prep = prepareMiniGraphs(*bk.program, prof,
                                            cfg.policy, cfg.machine,
                                            cfg.compress);
        CoreStats st = runCore(prep.program, &prep.table, cfg.core,
                               bk.setup);
        t.row({label, strfmt("%zu", prep.table.size()),
               fmtPct(prep.staticCoverage), fmtDouble(st.ipc(), 3),
               fmtDouble(st.ipc() / base.ipc(), 3)});
    };

    for (int entries : {8, 32, 128, 512}) {
        SimConfig cfg = SimConfig::intMemMg();
        cfg.policy.maxTemplates = entries;
        runOne(strfmt("int-mem, %d entries", entries), cfg);
    }
    for (int size : {2, 3, 4, 8}) {
        SimConfig cfg = SimConfig::intMemMg();
        cfg.policy.maxSize = size;
        runOne(strfmt("int-mem, size<=%d", size), cfg);
    }
    {
        SimConfig cfg = SimConfig::intMg();
        runOne("int only", cfg);
        cfg = SimConfig::intMg(true);
        runOne("int + collapsing", cfg);
        cfg = SimConfig::intMemMg(true);
        runOne("int-mem + collapsing", cfg);
        cfg = SimConfig::intMemMg();
        cfg.policy.allowExternallySerial = false;
        runOne("int-mem, no ext-serial", cfg);
        cfg = SimConfig::intMemMg();
        cfg.policy.allowInteriorLoads = false;
        runOne("int-mem, no replay-vulnerable", cfg);
        cfg = SimConfig::intMemMg();
        cfg.compress = true;
        runOne("int-mem, compressed layout", cfg);
    }
    printf("%s\n", t.str().c_str());
    return 0;
}
