/**
 * @file
 * Design-space exploration on one kernel: how MGT capacity, maximum
 * mini-graph size, selection policies, and collapsing pipelines trade
 * off coverage against speedup — the knobs a user tunes when adopting
 * the library. The whole space is one ExperimentEngine sweep: the
 * kernel is profiled once, every configuration cell runs in parallel
 * under `--jobs N`, and the cache counters show the dedup at work.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/stats.hh"
#include "engine/cli.hh"
#include "sim/report.hh"
#include "workloads/suites.hh"

using namespace mg;

int
main(int argc, char **argv)
{
    CliOptions cli = parseCli(argc, argv);
    const char *name =
        cli.rest.empty() ? "adpcm.enc" : cli.rest[0].c_str();
    BoundKernel bk = bindKernel(findKernel(name), cli.scale);
    printf("design space for kernel '%s' at scale %s (%s)\n\n",
           bk.kernel->name, scaleName(bk.scale),
           bk.kernel->description);

    SweepSpec spec;
    spec.workloads = {workload(bk)};
    spec.columns.push_back({"baseline", SimConfig::baseline(), true});
    spec.baselineColumn = 0;
    for (int entries : {8, 32, 128, 512}) {
        SimConfig cfg = SimConfig::intMemMg();
        cfg.policy.maxTemplates = entries;
        spec.columns.push_back(
            {strfmt("int-mem, %d entries", entries), cfg, true});
    }
    for (int size : {2, 3, 4, 8}) {
        SimConfig cfg = SimConfig::intMemMg();
        cfg.policy.maxSize = size;
        spec.columns.push_back(
            {strfmt("int-mem, size<=%d", size), cfg, true});
    }
    {
        spec.columns.push_back({"int only", SimConfig::intMg(), true});
        spec.columns.push_back(
            {"int + collapsing", SimConfig::intMg(true), true});
        spec.columns.push_back(
            {"int-mem + collapsing", SimConfig::intMemMg(true), true});
        SimConfig cfg = SimConfig::intMemMg();
        cfg.policy.allowExternallySerial = false;
        spec.columns.push_back({"int-mem, no ext-serial", cfg, true});
        cfg = SimConfig::intMemMg();
        cfg.policy.allowInteriorLoads = false;
        spec.columns.push_back(
            {"int-mem, no replay-vulnerable", cfg, true});
        cfg = SimConfig::intMemMg();
        cfg.compress = true;
        spec.columns.push_back(
            {"int-mem, compressed layout", cfg, true});
    }

    ExperimentEngine engine(cli.jobs);
    cli.configureStore(engine);
    cli.configureFaultTolerance(engine);
    cli.applySampling(spec);
    SweepResult r = engine.sweep(spec);
    if (r.planOnly)
        return 0;   // --dry-run: the plan has been printed

    const SweepCell &base = r.at(0, 0);
    printf("baseline IPC %.3f over %llu cycles\n\n", base.stats.ipc(),
           static_cast<unsigned long long>(base.stats.cycles));

    TextTable t;
    t.header({"config", "templates", "coverage", "IPC", "speedup"});
    for (std::size_t col = 1; col < r.columns.size(); ++col) {
        const SweepCell &c = r.at(0, col);
        t.row({r.columns[col], strfmt("%llu",
                                      static_cast<unsigned long long>(
                                          c.templates)),
               fmtPct(c.staticCoverage), fmtDouble(c.stats.ipc(), 3),
               fmtDouble(r.speedup(0, col), 3)});
    }
    printf("%s\n", t.str().c_str());
    std::string outcomes = outcomeSummary(r);
    if (!outcomes.empty())
        printf("%s\n", outcomes.c_str());

    EngineCounters ec = engine.counters();
    printf("engine: %d jobs; profiles %llu computed / %llu reused, "
           "prepares %llu computed / %llu reused\n",
           engine.jobs(),
           static_cast<unsigned long long>(ec.profileComputes),
           static_cast<unsigned long long>(ec.profileHits),
           static_cast<unsigned long long>(ec.prepareComputes),
           static_cast<unsigned long long>(ec.prepareHits));
    return 0;
}
