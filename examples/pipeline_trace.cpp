/**
 * @file
 * Figure 3 reproduction: the life cycle of mini-graph 12 executing as
 * one handle versus as three singleton instructions, shown as the
 * per-stage slot and resource consumption of both machines on a
 * micro-program that executes exactly that code.
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "sim/simulator.hh"

using namespace mg;

namespace {

/**
 * Time one machine through the simulator's single-cell primitive: a
 * pre-built PreparedMg (here hand-assembled rather than selected)
 * plugs straight into the same runCell the experiment engine uses.
 */
CoreStats
runIt(const Program &p, const MgTable *t, const char *label)
{
    SimConfig cfg;
    PreparedMg prep;
    if (t) {
        cfg.useMiniGraphs = true;
        cfg.core.mgEnabled = true;
        cfg.core.fu.intAlus = 2;
        cfg.core.fu.aluPipes = 2;
        prep.program = p;
        prep.table = *t;
    }
    CoreStats st = runCell(p, t ? &prep : nullptr, cfg, nullptr);
    printf("%-22s cycles=%-6llu slots=%-6llu work=%-6llu ipc=%.3f\n",
           label, static_cast<unsigned long long>(st.cycles),
           static_cast<unsigned long long>(st.committedSlots),
           static_cast<unsigned long long>(st.committedWork), st.ipc());
    return st;
}

} // namespace

int
main()
{
    // Mini-graph 12 of the paper: addl r18,2,r18 ; cmplt r18,r5,r7 ;
    // bne r7. As in Figure 3, the singleton machine spends three slots
    // of every stage; the handle machine spends one.
    Program singles = assemble(R"(
        .text
main:
        li   r5, 100000
        li   r16, 20000
loop:
        addl r18, 2, r18
        cmplt r18, r5, r7
        bne  r7, next
next:
        subq r16, 1, r16
        bgt  r16, loop
        halt
    )", "singles");

    // Hand-built MGT row 12 (the paper's logical contents).
    MgTemplate t;
    t.insns.push_back({Op::ADDL, {OpndKind::E0, -1},
                       {OpndKind::Imm, -1}, 2, true});
    t.insns.push_back({Op::CMPLT, {OpndKind::M, 0},
                       {OpndKind::E1, -1}, 0, false});
    t.insns.push_back({Op::BNE, {OpndKind::M, 1},
                       {OpndKind::Imm, -1}, 4, false});
    t.outIdx = 0;
    t.finalize(MgtMachine{});
    MgTable table;
    MgId id = table.add(t);

    printf("MGT contents (Figure 2 logical row 12):\n%s\n",
           table.str().c_str());
    printf("  LAT=%d: the output (addl result) is ready one cycle in\n"
           "  totalLat=%d: the sequencer walks three banks\n\n",
           table.at(id).hdr.lat, table.at(id).hdr.totalLat);

    Program handles = assemble(strfmt(R"(
        .text
main:
        li   r5, 100000
        li   r16, 20000
loop:
        mg   r18, r5, r18, %d
        subq r16, 1, r16
        bgt  r16, loop
        halt
    )", id), "handles");

    printf("Figure 3(b): executing as three singletons\n");
    CoreStats b = runIt(singles, nullptr, "  singleton machine");
    printf("\nFigure 3(a): executing as one handle\n");
    CoreStats a = runIt(handles, &table, "  mini-graph machine");

    printf("\nper mini-graph: %d fetch/rename/issue/commit slots -> 1,"
           "\n2 register writes -> 1, 3 window entries -> 1\n",
           3);
    printf("slot amplification observed: %.2fx\n",
           static_cast<double>(b.committedSlots) /
               static_cast<double>(a.committedSlots));
    return 0;
}
