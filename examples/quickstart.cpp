/**
 * @file
 * Quickstart: the complete mini-graph flow on the paper's Figure 1
 * code in five steps — assemble, profile, select, inspect the MGT,
 * and compare baseline vs mini-graph timing through the
 * ExperimentEngine (the driver every bench uses).
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "engine/engine.hh"

using namespace mg;

int
main()
{
    // 1. Assemble a program containing the paper's gcc idioms inside
    //    a small loop.
    Program prog = assemble(R"(
        .text
main:
        li   r16, 2000        # iterations
        li   r5, 1000000
        clr  r18
        lda  r4, table
        lda  r6, out
loop:
        # Figure 1 left: addl / cmplt / bne collapse around the branch
        addl r18, 2, r18
        cmplt r18, r5, r7
        bne  r7, body
        clr  r18
body:
        # Figure 1 right: ldq / srl / and collapse around the load
        ldq  r2, 16(r4)
        srl  r2, 14, r17
        and  r17, 1, r17
        stb  r17, 0(r6)       # independent sink: no loop-carried chain
        addq r6, 1, r6
        xor  r20, r18, r20
        subq r16, 1, r16
        bgt  r16, loop
        stq  r20, result
        halt
        .data
table:  .space 64
result: .quad 0
out:    .space 2048
    )", "quickstart");
    printf("assembled %zu instructions\n\n", prog.text.size());

    // 2. Profile with the functional emulator.
    BlockProfile prof = collectProfile(prog, nullptr, 400000);

    // 3. Select mini-graphs (the paper's default policy: 512 MGT
    //    entries, max 4 instructions, integer-memory allowed).
    SimConfig cfg = SimConfig::intMemMg();
    PreparedMg prep = prepareMiniGraphs(prog, prof, cfg.policy,
                                        cfg.machine);
    printf("selected %zu mini-graph instances over %zu templates, "
           "estimated coverage %.1f%%\n\n",
           prep.selection.instances.size(), prep.table.size(),
           100.0 * prep.staticCoverage);

    // 4. Inspect the MGT (MGHT headers + MGST banks, Figure 2 style).
    printf("%s\n", prep.table.str().c_str());
    printf("rewritten hot loop:\n");
    for (const SelectedInstance &si : prep.selection.instances) {
        printf("  handle @0x%llx: %s\n",
               static_cast<unsigned long long>(
                   Program::pcOf(si.cand.anchor)),
               prep.program.text[si.cand.anchor].disasm().c_str());
    }
    printf("\n");

    // 5. Run both machines through the engine. Cells are cached by
    //    (workload, config) fingerprint, so asking again is free —
    //    exactly what a big sweep exploits.
    ExperimentEngine engine;
    EngineWorkload w{"quickstart", "", &prog, nullptr};
    CoreStats base = engine.cell(w, SimConfig::baseline());
    CoreStats mgst = engine.cell(w, cfg);
    printf("baseline   : %llu cycles, IPC %.3f\n",
           static_cast<unsigned long long>(base.cycles), base.ipc());
    printf("mini-graphs: %llu cycles, IPC %.3f (%.1f%% speedup, "
           "%.1f%% of work executed inside handles)\n",
           static_cast<unsigned long long>(mgst.cycles), mgst.ipc(),
           100.0 * (mgst.ipc() / base.ipc() - 1.0),
           100.0 * mgst.dynamicCoverage());
    engine.cell(w, cfg);    // cache hit: no re-profile, no re-run
    EngineCounters ec = engine.counters();
    printf("engine cache: %llu runs computed, %llu served from "
           "cache\n",
           static_cast<unsigned long long>(ec.runComputes),
           static_cast<unsigned long long>(ec.runHits));
    return 0;
}
