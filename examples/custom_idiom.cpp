/**
 * @file
 * Application-specific mini-graphs via DISE (paper Section 5): define
 * productions whose replacement sequences express a custom idiom,
 * compile them with the MGPP into MGT templates, and run a codeword-
 * bearing executable both as handles and fully expanded.
 */

#include <cstdio>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "dise/mgpp.hh"
#include "sim/simulator.hh"

using namespace mg;

int
main()
{
    // A saturating-accumulate idiom the compiler emits constantly in
    // this imaginary application: t = a + b; if (t < 0) t = 0.
    // Production: <addq T.RS1,T.RS2,$d0 ; cmplt $d0,0... -> use a
    // branch-free clamp: sra sign mask + bic.
    Production clamp;
    clamp.name = "sat-accumulate";
    clamp.pattern.aware = true;
    clamp.pattern.codewordId = 7;
    clamp.replacement = {
        {Op::ADDQ, ParamReg::rs1(), ParamReg::rs2(), ParamReg::d(0), 0,
         false, false},
        {Op::SRA, ParamReg::d(0), ParamReg::none(), ParamReg::d(1), 63,
         true, false},
        {Op::BIC, ParamReg::d(0), ParamReg::d(1), ParamReg::rd(), 0,
         false, false},
    };

    DiseEngine engine;
    engine.addProduction(clamp);

    // The MGPP inspects and compiles the production.
    MgppResult res = mgppCompile(clamp);
    printf("MGPP: production '%s' %s\n", clamp.name.c_str(),
           res.approved ? "approved as a mini-graph"
                        : ("rejected: " + res.reason).c_str());

    MgTable table;
    Mgtt mgtt;
    mgppProcess(engine, MgtMachine{}, table, mgtt);
    const MgttEntry *tag = mgtt.find(7);
    printf("MGTT[7]: pre-processed=%d approved=%d -> MGID %d\n\n",
           tag->preProcessed, tag->approved, tag->mgid);
    printf("%s\n", table.str().c_str());

    // A program using the codeword in a hot loop.
    Program prog = assemble(strfmt(R"(
        .text
main:
        li   r16, 5000
        clr  r1
        li   r2, -3
loop:
        mg   r1, r2, r1, %d       # r1 = max(r1 + r2, 0)
        addq r2, 1, r2
        subq r16, 1, r16
        bgt  r16, loop
        stq  r1, result
        halt
        .data
result: .quad 0
    )", 7), "custom");

    // Mini-graph-aware processor: execute the handle via the MGT
    // (remap codeword id -> installed MGID).
    Program hp = prog;
    for (Instruction &in : hp.text) {
        if (in.isHandle())
            in.imm = tag->mgid;
    }
    Emulator aware(hp, &table);
    aware.run();

    // Legacy processor: DISE expands the codeword in line.
    Program xp = engine.expandProgram(prog);
    Emulator legacy(xp);
    legacy.run();

    printf("aware result  = %llu\n",
           static_cast<unsigned long long>(
               aware.memory().read(prog.symbol("result"), 8)));
    printf("legacy result = %llu (same semantics, no MG hardware)\n\n",
           static_cast<unsigned long long>(
               legacy.memory().read(xp.symbol("result"), 8)));

    // Timing difference on the mini-graph machine. DISE expansion is
    // a decode-stage mechanism ($d registers never reach the rename
    // map), so the timing comparison uses the equivalent compiler-
    // visible expansion over architectural scratch registers.
    Program manual = assemble(R"(
        .text
main:
        li   r16, 5000
        clr  r1
        li   r2, -3
loop:
        addq r1, r2, r10
        sra  r10, 63, r11
        bic  r10, r11, r1
        addq r2, 1, r2
        subq r16, 1, r16
        bgt  r16, loop
        stq  r1, result
        halt
        .data
result: .quad 0
    )", "manual");
    // A DISE-produced table plugs into the same runCell primitive the
    // experiment engine drives: pack it as a PreparedMg cell artifact.
    SimConfig cfg = SimConfig::intMg();
    PreparedMg prep;
    prep.program = hp;
    prep.table = table;
    CoreStats h = runCell(hp, &prep, cfg, nullptr);
    CoreStats x = runCell(manual, nullptr, SimConfig::baseline(),
                          nullptr);
    printf("handle machine : %llu cycles (IPC %.3f)\n",
           static_cast<unsigned long long>(h.cycles), h.ipc());
    printf("expanded run   : %llu cycles (IPC %.3f)\n",
           static_cast<unsigned long long>(x.cycles), x.ipc());
    return 0;
}
