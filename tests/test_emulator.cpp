/**
 * @file
 * Emulator unit tests: instruction semantics (golden values per op),
 * control flow, memory access, profiling, and handle execution.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "emu/emulator.hh"

namespace mg {
namespace {

/** Assemble, run to halt, return the emulator for inspection. */
Emulator
runAsm(const std::string &body, const MgTable *mgt = nullptr)
{
    static std::vector<std::unique_ptr<Program>> keep;
    keep.push_back(std::make_unique<Program>(
        assemble(".text\nmain:\n" + body + "\n halt\n")));
    Emulator emu(*keep.back(), mgt);
    EXPECT_EQ(emu.run().stop, StopReason::Halted);
    return emu;
}

TEST(EmuSemantics, LongwordSignExtension)
{
    Emulator e = runAsm(R"(
        li r1, 0x7fffffff
        addl r1, 1, r2        # wraps to int32 min, sign-extends
        addq r1, 1, r3        # plain 64-bit add
    )");
    EXPECT_EQ(e.reg(2), 0xffffffff80000000ull);
    EXPECT_EQ(e.reg(3), 0x80000000ull);
}

TEST(EmuSemantics, ScaledAdds)
{
    Emulator e = runAsm(R"(
        li r1, 5
        li r2, 100
        s4addl r1, r2, r3
        s8addq r1, r2, r4
    )");
    EXPECT_EQ(e.reg(3), 120u);
    EXPECT_EQ(e.reg(4), 140u);
}

TEST(EmuSemantics, LogicalAndShift)
{
    Emulator e = runAsm(R"(
        li r1, 0xf0f0
        li r2, 0x0ff0
        and r1, r2, r3
        bis r1, r2, r4
        xor r1, r2, r5
        bic r1, r2, r6
        ornot r31, r2, r7
        sll r1, 4, r8
        srl r1, 4, r9
        li r10, -16
        sra r10, 2, r11
    )");
    EXPECT_EQ(e.reg(3), 0x00f0u);   // and
    EXPECT_EQ(e.reg(4), 0xfff0u);   // bis
    EXPECT_EQ(e.reg(5), 0xff00u);   // xor
    EXPECT_EQ(e.reg(6), 0xf000u);   // bic
    EXPECT_EQ(e.reg(7), ~0x0ff0ull);
    EXPECT_EQ(e.reg(8), 0xf0f00u);
    EXPECT_EQ(e.reg(9), 0xf0fu);
    EXPECT_EQ(e.reg(11), static_cast<std::uint64_t>(-4));
}

TEST(EmuSemantics, Compares)
{
    Emulator e = runAsm(R"(
        li r1, -5
        li r2, 3
        cmplt r1, r2, r3
        cmple r2, r2, r4
        cmpult r1, r2, r5     # unsigned: -5 is huge
        cmpeq r2, 3, r6
    )");
    EXPECT_EQ(e.reg(3), 1u);
    EXPECT_EQ(e.reg(4), 1u);
    EXPECT_EQ(e.reg(5), 0u);
    EXPECT_EQ(e.reg(6), 1u);
}

TEST(EmuSemantics, BitCountsAndZapnot)
{
    Emulator e = runAsm(R"(
        li r1, 0xff00ff
        ctpop r1, r2
        cttz r1, r3
        li r4, 0x1122334455667788
        zapnot r4, 15, r5
        sextb r4, r6
        sextw r4, r7
    )");
    EXPECT_EQ(e.reg(2), 16u);
    EXPECT_EQ(e.reg(3), 0u);
    EXPECT_EQ(e.reg(5), 0x55667788u);
    EXPECT_EQ(e.reg(6), 0xffffffffffffff88ull);
    EXPECT_EQ(e.reg(7), 0x7788u);
}

TEST(EmuSemantics, LoadStoreSizes)
{
    static Program p = assemble(R"(
        .text
main:
        li r1, 0x8081828384858687
        stq r1, buf
        ldbu r2, buf
        ldwu r3, buf
        ldl r4, buf
        ldq r5, buf
        halt
        .data
buf:    .space 8
    )");
    Emulator e(p);
    EXPECT_EQ(e.run().stop, StopReason::Halted);
    EXPECT_EQ(e.reg(2), 0x87u);
    EXPECT_EQ(e.reg(3), 0x8687u);
    EXPECT_EQ(e.reg(4), 0xffffffff84858687ull);   // ldl sign-extends
    EXPECT_EQ(e.reg(5), 0x8081828384858687ull);
}

TEST(EmuSemantics, ZeroRegisterIgnoresWrites)
{
    Emulator e = runAsm(R"(
        li r31, 55
        addq r31, 1, r1
    )");
    EXPECT_EQ(e.reg(regZero), 0u);
    EXPECT_EQ(e.reg(1), 1u);
}

TEST(EmuControl, LoopAndConditions)
{
    Emulator e = runAsm(R"(
        li r1, 10
        clr r2
loop:
        addq r2, r1, r2
        subq r1, 1, r1
        bgt r1, loop
    )");
    EXPECT_EQ(e.reg(2), 55u);
}

TEST(EmuControl, CallReturn)
{
    Emulator e = runAsm(R"(
        li r16, 5
        bsr r26, double
        mov r0, r1
        br end
double:
        addq r16, r16, r0
        ret
end:
        nop
    )");
    EXPECT_EQ(e.reg(1), 10u);
}

TEST(EmuControl, IndirectJump)
{
    Emulator e = runAsm(R"(
        lda r1, target
        jmp (r1)
        li r2, 1          # skipped
target:
        li r3, 7
    )");
    EXPECT_EQ(e.reg(2), 0u);
    EXPECT_EQ(e.reg(3), 7u);
}

TEST(EmuProfile, BlockCounts)
{
    Program p = assemble(R"(
        .text
main:
        li r1, 3
loop:
        subq r1, 1, r1
        bgt r1, loop
        halt
    )");
    Emulator emu(p);
    emu.run();
    // Block at 'loop' (index 1) executes 3 times; entry block once.
    EXPECT_EQ(emu.profile().count(0), 1u);
    EXPECT_EQ(emu.profile().count(1), 3u);
}

TEST(EmuHandle, ExecutesTemplateAtomically)
{
    // Template for: addl E0,2 -> M0; cmplt M0,E1 -> M1 (output M0).
    MgTemplate t;
    t.insns.push_back({Op::ADDL, {OpndKind::E0, -1},
                       {OpndKind::Imm, -1}, 2, true});
    t.insns.push_back({Op::CMPLT, {OpndKind::M, 0},
                       {OpndKind::E1, -1}, 0, false});
    t.outIdx = 0;
    t.finalize(MgtMachine{});
    MgTable table;
    MgId id = table.add(t);

    Program p = assemble(strfmt(R"(
        .text
main:
        li r18, 10
        li r5, 100
        mg r18, r5, r18, %d
        halt
    )", id));
    Emulator emu(p, &table);
    emu.run();
    EXPECT_EQ(emu.reg(18), 12u);    // output = addl result
    // Interior value (cmplt result) must not touch any register.
    EXPECT_EQ(emu.reg(7), 0u);
}

TEST(EmuHandle, TerminalBranchTaken)
{
    // addl E0,2; bne M0 with displacement +8 (skip one slot).
    MgTemplate t;
    t.insns.push_back({Op::ADDL, {OpndKind::E0, -1},
                       {OpndKind::Imm, -1}, 2, true});
    t.insns.push_back({Op::BNE, {OpndKind::M, 0},
                       {OpndKind::Imm, -1}, 8, false});
    t.outIdx = 0;
    t.finalize(MgtMachine{});
    MgTable table;
    MgId id = table.add(t);

    Program p = assemble(strfmt(R"(
        .text
main:
        li r1, 1
        mg r1, r31, r1, %d
        li r2, 5          # skipped when branch taken
        li r3, 9
        halt
    )", id));
    Emulator emu(p, &table);
    emu.run();
    EXPECT_EQ(emu.reg(1), 3u);
    EXPECT_EQ(emu.reg(2), 0u);
    EXPECT_EQ(emu.reg(3), 9u);
}

TEST(EmuHandle, WorkCountsConstituents)
{
    MgTemplate t;
    t.insns.push_back({Op::ADDL, {OpndKind::E0, -1},
                       {OpndKind::Imm, -1}, 1, true});
    t.insns.push_back({Op::ADDL, {OpndKind::M, 0},
                       {OpndKind::Imm, -1}, 1, true});
    t.outIdx = 1;
    t.finalize(MgtMachine{});
    MgTable table;
    MgId id = table.add(t);

    Program p = assemble(strfmt(
        ".text\nmain:\n mg r31, r31, r1, %d\n halt\n", id));
    Emulator emu(p, &table);
    EmuResult r = emu.run();
    EXPECT_EQ(r.dynInsns, 2u);   // handle + halt
    EXPECT_EQ(r.dynWork, 3u);    // 2 constituents + halt
}

} // namespace
} // namespace mg
