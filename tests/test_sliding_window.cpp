/**
 * @file
 * Differential battery for the packed-bitmask SlidingWindow: the
 * bitmask implementation must agree, observation for observation,
 * with the retained reference implementation (the per-entry vector
 * scan it replaced), over randomized reservation sequences and the
 * wrap/length edge cases the mask arithmetic has to get right.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mg/mgt.hh"
#include "uarch/sliding_window.hh"

namespace mg {
namespace {

/**
 * Reference model: the pre-bitmask SlidingWindow, kept verbatim
 * (per-lane std::vector<int> line counters, per-entry scans). Slow
 * and obviously correct; every public observation is compared
 * against it.
 */
class RefSlidingWindow
{
  public:
    RefSlidingWindow(const WindowResources &r, int depth)
        : res(r), depth_(depth)
    {
        if (depth < 16)
            depth_ = 16;
        int cap = 1;
        while (cap < depth_)
            cap <<= 1;
        depth_ = cap;
        mask = static_cast<Cycle>(cap - 1);
        used.assign(6, std::vector<int>(static_cast<size_t>(depth_), 0));
    }

    bool
    conflicts(const std::vector<FuKind> &fubmp, Cycle now)
    {
        slideTo(now);
        for (size_t i = 0; i < fubmp.size(); ++i) {
            FuKind fu = fubmp[i];
            if (fu == FuKind::None)
                continue;
            int offset = static_cast<int>(i) + 1;
            if (offset >= depth_)
                return true;
            auto line = static_cast<size_t>(
                (now + static_cast<Cycle>(offset)) & mask);
            if (used[static_cast<size_t>(kindIdx(fu))][line] + 1 >
                capacity(fu))
                return true;
        }
        return false;
    }

    void
    reserve(const std::vector<FuKind> &fubmp, Cycle now)
    {
        slideTo(now);
        for (size_t i = 0; i < fubmp.size(); ++i) {
            FuKind fu = fubmp[i];
            if (fu == FuKind::None)
                continue;
            int offset = static_cast<int>(i) + 1;
            auto line = static_cast<size_t>(
                (now + static_cast<Cycle>(offset)) & mask);
            ++used[static_cast<size_t>(kindIdx(fu))][line];
        }
    }

    bool
    reserveOne(FuKind fu, int offset, Cycle now)
    {
        slideTo(now);
        if (offset >= depth_)
            return false;
        auto line = static_cast<size_t>(
            (now + static_cast<Cycle>(offset)) & mask);
        auto lane = static_cast<size_t>(kindIdx(fu));
        if (used[lane][line] + 1 > capacity(fu))
            return false;
        ++used[lane][line];
        return true;
    }

    int
    available(FuKind fu, int offset, Cycle now)
    {
        slideTo(now);
        if (offset >= depth_)
            return 0;
        auto line = static_cast<size_t>(
            (now + static_cast<Cycle>(offset)) & mask);
        return capacity(fu) - used[static_cast<size_t>(kindIdx(fu))][line];
    }

    int
    usedAt(FuKind fu, Cycle now)
    {
        slideTo(now);
        return used[static_cast<size_t>(kindIdx(fu))][now & mask];
    }

    void
    usedNow(Cycle now, int out[4])
    {
        slideTo(now);
        auto line = static_cast<size_t>(now & mask);
        out[0] = used[0][line];
        out[1] = used[3][line];
        out[2] = used[4][line];
        out[3] = used[5][line];
    }

    int depth() const { return depth_; }

  private:
    WindowResources res;
    int depth_;
    Cycle mask = 0;
    std::vector<std::vector<int>> used;
    Cycle lastSlide = 0;

    static int
    kindIdx(FuKind fu)
    {
        return static_cast<int>(fu) - 1;
    }

    int
    capacity(FuKind fu) const
    {
        switch (fu) {
          case FuKind::IntAlu: return res.intAlu;
          case FuKind::IntMult: return res.intMult;
          case FuKind::FpAlu: return 0;
          case FuKind::LoadPort: return res.loadPorts;
          case FuKind::StorePort: return res.storePorts;
          case FuKind::AluPipe: return res.aluPipes;
          default: return 0;
        }
    }

    void
    slideTo(Cycle now)
    {
        if (now <= lastSlide)
            return;
        Cycle steps = now - lastSlide;
        if (steps >= static_cast<Cycle>(depth_)) {
            for (auto &lane : used)
                std::fill(lane.begin(), lane.end(), 0);
        } else {
            for (Cycle s = 1; s <= steps; ++s) {
                auto line =
                    static_cast<size_t>((lastSlide + s - 1) & mask);
                for (auto &lane : used)
                    lane[line] = 0;
            }
        }
        lastSlide = now;
    }
};

/** Deterministic 64-bit LCG (the test must be reproducible). */
struct Rng
{
    std::uint64_t s;
    explicit Rng(std::uint64_t seed) : s(seed) {}
    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return s >> 33;
    }
    /** Uniform in [0, n). */
    int pick(int n) { return static_cast<int>(next() % static_cast<std::uint64_t>(n)); }
};

const FuKind allKinds[6] = {FuKind::IntAlu,  FuKind::IntMult,
                            FuKind::FpAlu,   FuKind::LoadPort,
                            FuKind::StorePort, FuKind::AluPipe};

std::vector<FuKind>
randomFubmp(Rng &rng, int maxLen, bool allowFp)
{
    int len = 1 + rng.pick(maxLen);
    std::vector<FuKind> v(static_cast<size_t>(len), FuKind::None);
    for (auto &fu : v) {
        int k = rng.pick(8);    // bias towards None (sparse FUBMPs)
        if (k < 6 && (allowFp || allKinds[k] != FuKind::FpAlu))
            fu = allKinds[k];
    }
    return v;
}

/** Compare every observable of both windows at the current cycle. */
void
compareAll(SlidingWindow &w, RefSlidingWindow &ref, Cycle now)
{
    for (FuKind fu : allKinds) {
        ASSERT_EQ(w.usedAt(fu, now), ref.usedAt(fu, now))
            << "usedAt lane " << static_cast<int>(fu) << " @" << now;
        for (int off : {0, 1, 2, 7, w.depth() - 1, w.depth(),
                        w.depth() + 3}) {
            ASSERT_EQ(w.available(fu, off, now),
                      ref.available(fu, off, now))
                << "available lane " << static_cast<int>(fu) << " off "
                << off << " @" << now;
        }
    }
    int a[4], b[4];
    w.usedNow(now, a);
    ref.usedNow(now, b);
    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(a[i], b[i]) << "usedNow[" << i << "] @" << now;
}

void
runDifferential(const WindowResources &res, int depth,
                std::uint64_t seed, int iters, int maxLen)
{
    SlidingWindow w(res, depth);
    RefSlidingWindow ref(res, depth);
    ASSERT_EQ(w.depth(), ref.depth());

    Rng rng(seed);
    Cycle now = 0;
    for (int it = 0; it < iters; ++it) {
        switch (rng.pick(4)) {
          case 0: {
              // Template check-and-reserve under the issue contract:
              // reserve only what conflicts() cleared.
              std::vector<FuKind> fubmp =
                  randomFubmp(rng, maxLen, /*allowFp=*/true);
              bool c1 = w.conflicts(fubmp, now);
              bool c2 = ref.conflicts(fubmp, now);
              ASSERT_EQ(c1, c2) << "conflicts @" << now;
              if (!c1 && rng.pick(2) == 0) {
                  w.reserve(fubmp, now);
                  ref.reserve(fubmp, now);
              }
              break;
          }
          case 1: {
              // Singleton-path probe (includes out-of-range offsets).
              FuKind fu = allKinds[rng.pick(6)];
              int off = rng.pick(w.depth() + 8);
              ASSERT_EQ(w.reserveOne(fu, off, now),
                        ref.reserveOne(fu, off, now))
                  << "reserveOne lane " << static_cast<int>(fu)
                  << " off " << off << " @" << now;
              break;
          }
          case 2:
            compareAll(w, ref, now);
            break;
          default: {
              // Advance time: mostly small steps, occasionally a jump
              // past the whole window (the full-clear slide path).
              int jump = rng.pick(20);
              if (jump == 19)
                  now += static_cast<Cycle>(2 * w.depth() + rng.pick(9));
              else
                  now += static_cast<Cycle>(rng.pick(4));
              break;
          }
        }
    }
    compareAll(w, ref, now);
}

TEST(SlidingWindowDiff, RandomizedAgainstVectorScanReference)
{
    // ~10k randomized operations per (resources, depth) cell, over
    // the production configuration, tight capacities, zero-capacity
    // lanes, and every legal pow2 depth.
    WindowResources prod;                       // defaults: 2/1/-/2/1/2
    WindowResources tight{1, 1, 1, 1, 1};
    WindowResources noPipes{4, 1, 2, 1, 0};    // aluPipes == 0 lane
    WindowResources wide{6, 2, 4, 2, 4};
    int cell = 0;
    for (const WindowResources &res : {prod, tight, noPipes, wide}) {
        for (int depth : {16, 24, 32, 64}) {
            runDifferential(res, depth,
                            0x5eedull + static_cast<std::uint64_t>(cell),
                            10000, 12);
            ++cell;
        }
    }
}

TEST(SlidingWindowDiff, WindowWrapStress)
{
    // Drive now straight through several wraps of the line ring with
    // dense FUBMPs so reservations straddle the wrap point; one-cycle
    // steps keep every line live across the boundary.
    WindowResources res;
    SlidingWindow w(res, 16);
    RefSlidingWindow ref(res, 16);
    Rng rng(0xabcdefull);
    for (Cycle now = 0; now < 400; ++now) {
        std::vector<FuKind> fubmp =
            randomFubmp(rng, w.depth() - 2, /*allowFp=*/false);
        bool c1 = w.conflicts(fubmp, now);
        ASSERT_EQ(c1, ref.conflicts(fubmp, now)) << "@" << now;
        if (!c1) {
            w.reserve(fubmp, now);
            ref.reserve(fubmp, now);
        }
        compareAll(w, ref, now);
    }
}

TEST(SlidingWindowDiff, MaxLengthFubmp)
{
    // FUBMPs whose last entry sits exactly at, one before, and past
    // the window depth: the representability cutoff must match the
    // reference's per-entry offset >= depth rejection.
    WindowResources res;
    for (int depth : {16, 64}) {
        SlidingWindow w(res, depth);
        RefSlidingWindow ref(res, depth);
        int d = w.depth();
        for (int len : {d - 1, d, d + 1, d + 40}) {
            std::vector<FuKind> fubmp(static_cast<size_t>(len),
                                      FuKind::None);
            fubmp.back() = FuKind::IntAlu;   // offset == len
            ASSERT_EQ(w.conflicts(fubmp, 5), ref.conflicts(fubmp, 5))
                << "depth " << d << " len " << len;
            // A trailing None keeps the populated offset in range
            // even when the vector itself is longer than the window.
            if (len > 2) {
                fubmp.back() = FuKind::None;
                fubmp[1] = FuKind::LoadPort;
                ASSERT_EQ(w.conflicts(fubmp, 5),
                          ref.conflicts(fubmp, 5))
                    << "sparse depth " << d << " len " << len;
            }
        }
    }
}

TEST(SlidingWindowDiff, CapacityZeroLaneAlwaysConflicts)
{
    // FpAlu is never windowed (capacity 0): any FUBMP touching it
    // must conflict regardless of window state, and reserveOne must
    // refuse it — in both implementations.
    WindowResources res;
    SlidingWindow w(res, 16);
    RefSlidingWindow ref(res, 16);
    std::vector<FuKind> fp{FuKind::FpAlu};
    EXPECT_TRUE(w.conflicts(fp, 0));
    EXPECT_TRUE(ref.conflicts(fp, 0));
    EXPECT_FALSE(w.reserveOne(FuKind::FpAlu, 1, 0));
    EXPECT_FALSE(ref.reserveOne(FuKind::FpAlu, 1, 0));
}

} // namespace
} // namespace mg
