/**
 * @file
 * Branch predictor unit tests: bimodal and gshare learning, chooser
 * adaptation, BTB set-associativity and LRU, and the RAS.
 */

#include <gtest/gtest.h>

#include "uarch/branch_pred.hh"

namespace mg {
namespace {

TEST(DirectionPred, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    Addr pc = 0x10000;
    for (int i = 0; i < 8; ++i)
        bp.updateDirection(pc, true);
    EXPECT_TRUE(bp.predictDirection(pc));
}

TEST(DirectionPred, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    Addr pc = 0x10000;
    for (int i = 0; i < 8; ++i)
        bp.updateDirection(pc, false);
    EXPECT_FALSE(bp.predictDirection(pc));
}

TEST(DirectionPred, GshareCapturesAlternation)
{
    // A strict alternating pattern defeats bimodal but is captured by
    // global history; after warmup the hybrid must track it.
    BranchPredictor bp;
    Addr pc = 0x10040;
    bool taken = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        taken = !taken;
        bool pred = bp.predictDirection(pc);
        if (i >= 200 && pred == taken)
            ++correct;
        bp.updateDirection(pc, taken);
    }
    EXPECT_GT(correct, 180);   // >90% on the second half
}

TEST(Btb, StoresAndEvicts)
{
    BranchPredConfig cfg;
    cfg.btbEntries = 8;
    cfg.btbAssoc = 2;          // 4 sets
    BranchPredictor bp(cfg);
    // Same set: pcs differing by sets*4 bytes.
    Addr a = 0x10000, b = a + 4 * 4, c = b + 4 * 4;
    bp.updateTarget(a, 0x111);
    bp.updateTarget(b, 0x222);
    EXPECT_EQ(bp.predictTarget(a), 0x111u);
    EXPECT_EQ(bp.predictTarget(b), 0x222u);
    bp.updateTarget(c, 0x333);   // evicts LRU (a)
    EXPECT_EQ(bp.predictTarget(a), 0u);
    EXPECT_EQ(bp.predictTarget(c), 0x333u);
}

TEST(Btb, MissReturnsZero)
{
    BranchPredictor bp;
    EXPECT_EQ(bp.predictTarget(0x12345678), 0u);
}

TEST(Ras, PushPopOrder)
{
    BranchPredictor bp;
    bp.pushReturn(0x100);
    bp.pushReturn(0x200);
    EXPECT_EQ(bp.popReturn(), 0x200u);
    EXPECT_EQ(bp.popReturn(), 0x100u);
    EXPECT_EQ(bp.popReturn(), 0u);   // empty
}

TEST(Ras, WrapsAtCapacity)
{
    BranchPredConfig cfg;
    cfg.rasEntries = 4;
    BranchPredictor bp(cfg);
    for (Addr i = 1; i <= 6; ++i)
        bp.pushReturn(i * 0x10);
    // Deepest two entries were overwritten.
    EXPECT_EQ(bp.popReturn(), 0x60u);
    EXPECT_EQ(bp.popReturn(), 0x50u);
    EXPECT_EQ(bp.popReturn(), 0x40u);
    EXPECT_EQ(bp.popReturn(), 0x30u);
}

} // namespace
} // namespace mg
