/**
 * @file
 * Golden stats-identity pin for the allocation-free timing core.
 *
 * Every tier-1 kernel runs against the paper's three machine shapes
 * (6-wide baseline, integer mini-graphs, integer-memory mini-graphs)
 * for a fixed work budget, and an FNV-1a hash over every CoreStats
 * counter is compared against values recorded from the pre-refactor
 * engine (PR 2) — cycles, IPC, amplification, stall and squash
 * counters are all pinned bit-for-bit. Any scheduling, wakeup, or
 * idle-skip change that alters timing behaviour trips this test.
 *
 * Also pins the slab's eager-reclamation bound: squashed slots are
 * recycled immediately, so the live DynInst population never exceeds
 * ROB + fetch-queue capacity regardless of squash rate (the lazy
 * arena this replaced stranded squashed entries behind a live head).
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "uarch/core.hh"
#include "workloads/suites.hh"

#include "stats_hash.hh"

namespace {

using namespace mg;
using namespace mg::testhash;

constexpr std::uint64_t goldenBudget = 60000;

// Recorded from the pre-refactor engine (PR 2, commit 316dc4e) at
// goldenBudget work per cell. Regenerate only for a deliberate,
// documented timing-model change.
const Golden goldens[] = {
    {"gzip", "base", 0xa7ce0375aa15d2bcull},
    {"gzip", "int", 0x6c86eb944e35bc33ull},
    {"gzip", "intmem", 0x6e0ebecc3c1df515ull},
    {"mcf", "base", 0x0b33a0461796f27eull},
    {"mcf", "int", 0x2308752f573ca4bbull},
    {"mcf", "intmem", 0x1b576648c7cad066ull},
    {"parser", "base", 0x457ddb1aae455c9cull},
    {"parser", "int", 0x18f3916958d6cad5ull},
    {"parser", "intmem", 0x70de808aad88f54eull},
    {"twolf", "base", 0xf95f03ef25cf6991ull},
    {"twolf", "int", 0x2893bec3f278ec2cull},
    {"twolf", "intmem", 0x3627dfdcadeb7f7bull},
    {"gap", "base", 0x36859c1dcdd3862eull},
    {"gap", "int", 0x0cea8e8c23af648full},
    {"gap", "intmem", 0x8280308664835021ull},
    {"crafty", "base", 0xdc55a0f488c59a16ull},
    {"crafty", "int", 0xcd25bc34929bbb99ull},
    {"crafty", "intmem", 0xc7bf4ffff0920286ull},
    {"adpcm.enc", "base", 0x9a50a0bd09040366ull},
    {"adpcm.enc", "int", 0xfded0797bbce69efull},
    {"adpcm.enc", "intmem", 0xdfb95b923081f5b1ull},
    {"adpcm.dec", "base", 0x0c757d6355a2da6cull},
    {"adpcm.dec", "int", 0xe35d13fcbbd77185ull},
    {"adpcm.dec", "intmem", 0x65c259ef9a09a2c9ull},
    {"g721.enc", "base", 0x260c8fa23ee8dec7ull},
    {"g721.enc", "int", 0xc7cc9374dd61c8aaull},
    {"g721.enc", "intmem", 0xc7cc9374dd61c8aaull},
    {"jpeg.dct", "base", 0xf8c3a27504a57142ull},
    {"jpeg.dct", "int", 0x3cdcaa856057c7b1ull},
    {"jpeg.dct", "intmem", 0x0108f19d1458553aull},
    {"mpeg2.idct", "base", 0x4f20d6bce5c11c3dull},
    {"mpeg2.idct", "int", 0x97f80ae2da79db64ull},
    {"mpeg2.idct", "intmem", 0x3232c4e2be31e2acull},
    {"gsm.lpc", "base", 0x19f923a94258095aull},
    {"gsm.lpc", "int", 0x73c26eca2c161257ull},
    {"gsm.lpc", "intmem", 0xd968c2a5c20d58f2ull},
    {"crc", "base", 0x1e7c5a16b23b092full},
    {"crc", "int", 0x26f03b803864acd1ull},
    {"crc", "intmem", 0xe6aa54d03b0abd9dull},
    {"drr", "base", 0x9b0e3428df946f80ull},
    {"drr", "int", 0xfb6a2fab163cd9b5ull},
    {"drr", "intmem", 0x416b23cca3580c24ull},
    {"frag", "base", 0xbdf55191294b2b7aull},
    {"frag", "int", 0x2fb09d5abd5b6e0dull},
    {"frag", "intmem", 0xdfb57a71290f318eull},
    {"rtr", "base", 0x15958ef36ddc43b4ull},
    {"rtr", "int", 0x3b7fb6eab9ba6ae3ull},
    {"rtr", "intmem", 0xd48d420fa537fbe5ull},
    {"reed", "base", 0xb8e43d69fd837403ull},
    {"reed", "int", 0x6e2fae97268b5f59ull},
    {"reed", "intmem", 0xde79f8089d9d015aull},
    {"bitcount", "base", 0x2f6f9e2aaddb5036ull},
    {"bitcount", "int", 0x6fc9a9140a4ee948ull},
    {"bitcount", "intmem", 0x6fc9a9140a4ee948ull},
    {"sha", "base", 0x5eb3cef802edde86ull},
    {"sha", "int", 0x6eeb0c658e6f7722ull},
    {"sha", "intmem", 0x97d24b523554be8eull},
    {"dijkstra", "base", 0xcdef04daeb722871ull},
    {"dijkstra", "int", 0xc4062072fb2b4654ull},
    {"dijkstra", "intmem", 0x6aedc733dc0741fbull},
    {"stringsearch", "base", 0x98b6a52cff99f39dull},
    {"stringsearch", "int", 0x8916912c9b83cb80ull},
    {"stringsearch", "intmem", 0xd49e1bc066ac02adull},
    {"blowfish", "base", 0xb300c7d2c3c78a01ull},
    {"blowfish", "int", 0xd4237ffe69464053ull},
    {"blowfish", "intmem", 0xba9a0ef49db9b1daull},
    {"rgb2gray", "base", 0x60b038015c25d6b6ull},
    {"rgb2gray", "int", 0x2a5040d9cb7f2e62ull},
    {"rgb2gray", "intmem", 0xf3d8d22811effbf6ull},
};

CoreStats
runGolden(const BoundKernel &bk, const SimConfig &base)
{
    SimConfig cfg = base;
    cfg.runBudget = goldenBudget;
    if (!cfg.useMiniGraphs)
        return runCell(*bk.program, nullptr, cfg, bk.setup);
    BlockProfile prof =
        collectProfile(*bk.program, bk.setup, cfg.profileBudget);
    PreparedMg prep = prepareMiniGraphs(*bk.program, prof, cfg.policy,
                                        cfg.machine, cfg.compress);
    return runCell(*bk.program, &prep, cfg, bk.setup);
}

TEST(PerfIdentity, GoldenStatsHashEveryKernelTimesThreeConfigs)
{
    for (const Golden &g : goldens) {
        BoundKernel bk = bindKernel(findKernel(g.kernel));
        CoreStats s = runGolden(bk, configOf(g.config));
        EXPECT_EQ(statsHash(s), g.hash)
            << g.kernel << " x " << g.config
            << ": cycles=" << s.cycles << " work=" << s.committedWork
            << " ipc=" << s.ipc();
    }
}

TEST(PerfIdentity, SquashesRecycleEagerly)
{
    // A kernel with memory-ordering violations: every squash must
    // recycle its slots immediately, keeping the live population
    // bounded by ROB + fetch queue (+ the slab's small slack) no
    // matter how many slots were squashed along the way.
    BoundKernel bk = bindKernel(findKernel("sha"));
    SimConfig cfg = SimConfig::baseline();
    Core core(*bk.program, nullptr, cfg.core);
    bk.setup(core.oracle());
    CoreStats s = core.run(goldenBudget);

    ASSERT_GT(s.squashedSlots, 0u) << "kernel no longer squashes; "
                                      "pick a different regression load";
    std::size_t bound = static_cast<std::size_t>(
        cfg.core.robSize + cfg.core.fetchQueueSize) + 8;
    EXPECT_LE(core.peakLiveInsts(), bound);
    EXPECT_LE(core.liveInsts(), bound);
}

} // namespace
