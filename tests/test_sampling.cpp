/**
 * @file
 * Sampled simulation: checkpoint fidelity, the degenerate-parameter
 * bit-identity contract, the stated accuracy bound on the tier-1
 * kernel set, the speed proxy (detailed-work fraction), and the
 * engine's cross-config summary sharing.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "assembler/assembler.hh"
#include "engine/engine.hh"
#include "workloads/suites.hh"

using namespace mg;

namespace {

/** Default sampled configuration derived from @p cfg. */
SimConfig
sampled(SimConfig cfg)
{
    cfg.sampling.enabled = true;
    return cfg;
}

/** Phase-mixed synthetic kernel, ~617k work units: long enough to
 *  sample genuinely (the short-run degrade threshold at default
 *  parameters is ~400k) and heterogeneous enough — an ALU burst and a
 *  store-walk per outer iteration — that per-interval IPC carries
 *  real variance for the CI machinery to chew on. */
const Program &
syntheticLongProgram()
{
    static Program p = assemble(R"(
        .text
main:
        li r20, 900
outer:
        li r1, 120
alu:
        addq r2, 1, r2
        mulq r2, 3, r3
        subq r1, 1, r1
        bgt r1, alu
        lda r5, sbuf
        li r6, 40
memp:
        ldq r7, 0(r5)
        addq r7, 1, r7
        stq r7, 0(r5)
        addq r5, 64, r5
        subq r6, 1, r6
        bgt r6, memp
        subq r20, 1, r20
        bgt r20, outer
        halt
        .data
sbuf:   .space 2560
    )");
    return p;
}

const SetupFn noSetup = [](Emulator &) {};

} // namespace

TEST(Sampling, CheckpointRoundTrip)
{
    BoundKernel bk = bindKernel(findKernel("crc"));

    Emulator a(*bk.program);
    bk.kernel->setup(a, 0);
    while (!a.halted() && a.dynInsns() < 5000)
        a.step();
    EmuCheckpoint c = a.checkpoint();
    EXPECT_EQ(c.slots, 5000u);

    EmuResult endA = a.run();

    Emulator b(*bk.program);
    bk.kernel->setup(b, 0);
    b.restore(c);
    EXPECT_EQ(b.dynInsns(), 5000u);
    EmuResult endB = b.run();

    EXPECT_EQ(endA.dynInsns, endB.dynInsns);
    EXPECT_EQ(endA.dynWork, endB.dynWork);
    EXPECT_EQ(a.pc(), b.pc());
    for (RegId r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(a.reg(r), b.reg(r)) << "register " << int(r);
}

TEST(Sampling, WholeProgramIntervalBitIdentical)
{
    // An interval covering the whole program leaves no room to
    // fast-forward: runSampled must degenerate to the plain detailed
    // run, bit for bit.
    for (const char *name : {"crc", "adpcm.enc"}) {
        BoundKernel bk = bindKernel(findKernel(name));
        for (SimConfig cfg :
             {SimConfig::baseline(), SimConfig::intMemMg()}) {
            ExperimentEngine eng(1);
            EngineWorkload w = workload(bk);
            CoreStats full = eng.cell(w, cfg);

            SimConfig sc = sampled(cfg);
            sc.sampling.interval = 1ull << 40;
            SampledStats ss = eng.cellSampled(w, sc);
            EXPECT_TRUE(ss.exact) << name;
            EXPECT_EQ(ss.est, full) << name << "/" << cfg.name;
        }
    }
}

TEST(Sampling, TierOneIpcWithinStatedBound)
{
    // Stated bound for the default sampled configuration on the
    // tier-1 kernels: every kernel's IPC within 2% of the full run.
    // Ref-scale kernels are short (50k-300k units), so most degrade
    // to exact full simulation (the fix for the old 3-8% ref-tier
    // tail on drr/bitcount/rgb2gray); the few above the degrade
    // threshold must still measure within the bound.
    ExperimentEngine eng(0);
    for (SimConfig cfg : {SimConfig::baseline(), SimConfig::intMemMg()}) {
        for (const BoundKernel &bk : bindAll()) {
            EngineWorkload w = workload(bk);
            double full = eng.cell(w, cfg).ipc();
            SampledStats ss = eng.cellSampled(w, sampled(cfg));
            ASSERT_GT(full, 0.0);
            double err = std::abs(ss.est.ipc() - full) / full;
            EXPECT_LE(err, 0.02)
                << bk.kernel->name << "/" << cfg.name
                << " sampled " << ss.est.ipc() << " vs full " << full;
            // At default parameters every ref kernel sits under the
            // short-run threshold, so the whole tier is bit-exact by
            // contract — sampling a 33-period run was measured to pay
            // 3-8% error (52% on reed/int-mem, whose store-set
            // serialization is never fully discovered) for under-2x
            // wall-clock. The genuinely sampled path is exercised on
            // the long/huge tiers.
            EXPECT_TRUE(ss.exact) << bk.kernel->name;
            EXPECT_EQ(err, 0.0) << bk.kernel->name;
        }
    }
}

TEST(Sampling, FastForwardThenRunCompletesTheProgram)
{
    // Clock-frozen fast-forward (the public default): the skipped work
    // never commits, the tail runs normally, and the drained machine
    // ends with a full free list.
    BoundKernel bk = bindKernel(findKernel("crc"));
    Emulator probe(*bk.program);
    bk.kernel->setup(probe, 0);
    std::uint64_t total = probe.run().dynWork;

    Core core(*bk.program, nullptr, CoreConfig{});
    bk.kernel->setup(core.oracle(), 0);
    int freeAtReset = core.regFreeCount();
    core.fastForward(total / 2, /*warm=*/true);
    std::uint64_t skipped = core.oracle().dynWork();
    EXPECT_GE(skipped, total / 2);
    CoreStats tail = core.run();
    EXPECT_EQ(skipped + tail.committedWork, total);
    EXPECT_EQ(core.regFreeCount(), freeAtReset);
}

TEST(Sampling, FastForwardSkipsMostWork)
{
    // Speed proxy on an M-scale kernel (ref bitcount now degrades to
    // exact under the short-run threshold): most of the run is never
    // simulated cycle-accurately, and several intervals were measured.
    BoundKernel bk = bindKernel(findKernel("bitcount"), Scale::Long);
    ExperimentEngine eng(1);
    EngineWorkload w = workload(bk);
    SampledStats ss = eng.cellSampled(w, sampled(SimConfig::baseline()));
    EXPECT_FALSE(ss.exact);
    EXPECT_GT(ss.ffWork, ss.totalWork / 3);
    EXPECT_LE(ss.detailedWork, (2 * ss.totalWork) / 3);
    EXPECT_GE(ss.intervals, 3u);
    EXPECT_EQ(ss.est.committedWork, ss.totalWork);
}

TEST(Sampling, SummarySharedAcrossConfigs)
{
    // The functional summary depends on the binary, not the machine:
    // two different core configurations running the same program must
    // share one summary artifact (and its checkpoints).
    BoundKernel bk = bindKernel(findKernel("bitcount"));
    ExperimentEngine eng(1);
    EngineWorkload w = workload(bk);

    SimConfig a = sampled(SimConfig::baseline());
    SimConfig b = a;
    b.core.robSize = 64;
    eng.cellSampled(w, a);
    eng.cellSampled(w, b);

    EngineCounters c = eng.counters();
    EXPECT_EQ(c.summaryComputes, 1u);
    EXPECT_EQ(c.summaryHits, 1u);
    EXPECT_EQ(c.sampledComputes, 2u);
}

TEST(Sampling, SweepReportsSamplingMetadata)
{
    BoundKernel bk = bindKernel(findKernel("bitcount"));
    SweepSpec spec;
    spec.title = "sampling metadata";
    spec.workloads = {workload(bk)};
    spec.columns.push_back({"base", SimConfig::baseline(), true});
    spec.columns.push_back(
        {"base-sampled", sampled(SimConfig::baseline()), true});
    spec.baselineColumn = 0;

    ExperimentEngine eng(1);
    SweepResult r = eng.sweep(spec);
    EXPECT_FALSE(r.at(0, 0).sampledRun);
    EXPECT_TRUE(r.at(0, 1).sampledRun);

    std::string json = sweepJson(r, "sampling_meta");
    EXPECT_NE(json.find("\"sampled\": true"), std::string::npos);
    EXPECT_NE(json.find("\"ipc_ci95_rel\""), std::string::npos);
}

TEST(Sampling, MeasurementPhaseSaltIsDeterministicAndAccurate)
{
    // The sampling-alias fix: grid-aligned measurement spans sample
    // one fixed phase of any rate oscillation commensurate with the
    // period (the jpeg.dct@huge ~2% systematic bias). A non-zero
    // phaseSalt hashes a per-chunk span offset instead. Contract:
    // salt 0 is the legacy placement, any fixed salt is fully
    // deterministic, and no salt choice may push this kernel outside
    // the stated 2% bound.
    const Program &p = syntheticLongProgram();
    SimConfig cfg = SimConfig::baseline();
    CoreStats full = runCell(p, nullptr, cfg, noSetup);

    SimConfig sc = sampled(cfg);
    SampleSummary sum = collectSampleSummary(p, nullptr, noSetup,
                                             sc.sampling);
    auto runAt = [&](std::uint64_t salt) {
        SimConfig c = sc;
        c.sampling.phaseSalt = salt;
        return runCellSampled(p, nullptr, c, noSetup, sum);
    };

    SampledStats legacy = runAt(0);
    SampledStats a = runAt(0x9e3779b97f4a7c15ull);
    SampledStats a2 = runAt(0x9e3779b97f4a7c15ull);
    SampledStats b = runAt(0x5bf03635ull);

    EXPECT_FALSE(legacy.exact);
    EXPECT_EQ(a.est, a2.est) << "salted placement not deterministic";
    EXPECT_EQ(a.intervals, a2.intervals);

    double fullIpc = full.ipc();
    ASSERT_GT(fullIpc, 0.0);
    for (const SampledStats *s : {&legacy, &a, &b}) {
        EXPECT_LE(std::abs(s->est.ipc() - fullIpc) / fullIpc, 0.02)
            << "salt variant missed the accuracy bound: sampled "
            << s->est.ipc() << " vs full " << fullIpc;
        EXPECT_EQ(s->est.committedWork, full.committedWork);
    }
}

TEST(Sampling, ExhaustedDutyBudgetFallsBackToWholeChunks)
{
    // The CI-refinement fix: when the duty budget runs out before a
    // cluster's error bound converges, the run used to just stop
    // sampling it — freezing a bad estimate made from floored spans.
    // Now a grossly unconverged cluster keeps sampling past the
    // budget with *whole-chunk* measurements (averaging the chunk's
    // full intra-phase swing). An unreachable targetCi plus a starved
    // duty budget forces that path: the run must keep refining well
    // beyond the base plan and still land inside the bound.
    const Program &p = syntheticLongProgram();
    SimConfig cfg = SimConfig::baseline();
    CoreStats full = runCell(p, nullptr, cfg, noSetup);

    SimConfig sc = sampled(cfg);
    sc.sampling.targetCi = 1e-9;    // never converges
    sc.sampling.maxDuty = 0.08;     // budget gone after the base plan
    SampleSummary sum = collectSampleSummary(p, nullptr, noSetup,
                                             sc.sampling);
    SampledStats s = runCellSampled(p, nullptr, sc, noSetup, sum);

    EXPECT_FALSE(s.exact);
    // Base plan alone is three quantile samples per cluster; the
    // over-budget whole-chunk fallback must have kept going.
    EXPECT_GE(s.intervals, 10u)
        << "over-budget refinement never fired";
    double fullIpc = full.ipc();
    ASSERT_GT(fullIpc, 0.0);
    EXPECT_LE(std::abs(s.est.ipc() - fullIpc) / fullIpc, 0.025)
        << "sampled " << s.est.ipc() << " vs full " << fullIpc;
}
