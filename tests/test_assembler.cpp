/**
 * @file
 * Assembler unit tests: syntax forms, directives, labels, pseudo-ops,
 * diagnostics.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "assembler/lexer.hh"

namespace mg {
namespace {

TEST(Lexer, TokenKinds)
{
    auto toks = lex("addl r1, 0x10, r2 # comment\nlabel:", "t");
    ASSERT_GE(toks.size(), 8u);
    EXPECT_EQ(toks[0].kind, Tok::Ident);
    EXPECT_EQ(toks[0].text, "addl");
    EXPECT_EQ(toks[1].kind, Tok::Reg);
    EXPECT_EQ(toks[1].value, 1);
    EXPECT_EQ(toks[3].kind, Tok::Int);
    EXPECT_EQ(toks[3].value, 0x10);
}

TEST(Lexer, NegativeAndHexLiterals)
{
    // Tokens: lda r1 , -42 NL lda r2 , 0xff NL End
    auto toks = lex("lda r1, -42\nlda r2, 0xff", "t");
    EXPECT_EQ(toks[3].value, -42);
    EXPECT_EQ(toks[8].value, 0xff);
}

TEST(Lexer, FpRegisters)
{
    auto toks = lex("addt f1, f2, f3", "t");
    EXPECT_TRUE(toks[1].fpReg);
    EXPECT_EQ(toks[1].value, 1);
}

TEST(Lexer, RejectsBadRegister)
{
    EXPECT_THROW(lex("addl r32, r1, r2", "t"), AsmError);
}

TEST(Lexer, StringEscapes)
{
    auto toks = lex(".asciiz \"a\\nb\"", "t");
    EXPECT_EQ(toks[1].kind, Tok::Str);
    EXPECT_EQ(toks[1].text, "a\nb");
}

TEST(Assembler, OperateForms)
{
    Program p = assemble(R"(
        .text
main:
        addl r1, r2, r3
        subq r4, 15, r5
        halt
    )");
    ASSERT_EQ(p.text.size(), 3u);
    EXPECT_EQ(p.text[0].op, Op::ADDL);
    EXPECT_EQ(p.text[0].ra, 1);
    EXPECT_EQ(p.text[0].rb, 2);
    EXPECT_EQ(p.text[0].rc, 3);
    EXPECT_FALSE(p.text[0].useImm);
    EXPECT_TRUE(p.text[1].useImm);
    EXPECT_EQ(p.text[1].imm, 15);
}

TEST(Assembler, MemoryAndBranchForms)
{
    Program p = assemble(R"(
        .text
main:
loop:
        ldq r1, 8(r2)
        stl r3, -4(r4)
        bne r1, loop
        halt
    )");
    EXPECT_EQ(p.text[0].op, Op::LDQ);
    EXPECT_EQ(p.text[0].ra, 1);
    EXPECT_EQ(p.text[0].rb, 2);
    EXPECT_EQ(p.text[0].imm, 8);
    EXPECT_EQ(p.text[1].imm, -4);
    // Branch target resolved to the absolute PC of 'loop'.
    EXPECT_EQ(static_cast<Addr>(p.text[2].imm), Program::pcOf(0));
}

TEST(Assembler, DataDirectivesAndSymbols)
{
    Program p = assemble(R"(
        .text
main:
        ldq r1, tbl
        halt
        .data
val:
        .quad 7
tbl:
        .long 1, 2
        .byte 3
        .align 8
aligned:
        .space 16
str:
        .asciiz "hi"
    )");
    EXPECT_EQ(p.symbol("val"), dataBase);
    EXPECT_EQ(p.symbol("tbl"), dataBase + 8);
    EXPECT_EQ(p.symbol("aligned") % 8, 0u);
    // .quad 7 little-endian
    EXPECT_EQ(p.data[0], 7);
    // string content + NUL
    Addr str = p.symbol("str") - dataBase;
    EXPECT_EQ(p.data[str], 'h');
    EXPECT_EQ(p.data[str + 2], 0);
    // ldq of a symbol becomes an absolute-addressed load off r31.
    EXPECT_EQ(p.text[0].rb, regZero);
    EXPECT_EQ(static_cast<Addr>(p.text[0].imm), p.symbol("tbl"));
}

TEST(Assembler, PseudoOps)
{
    Program p = assemble(R"(
        .text
main:
        mov r1, r2
        li r3, 100
        clr r4
        halt
    )");
    EXPECT_EQ(p.text[0].op, Op::BIS);
    EXPECT_EQ(p.text[0].ra, 1);
    EXPECT_EQ(p.text[0].rb, 1);
    EXPECT_EQ(p.text[1].op, Op::LDA);
    EXPECT_EQ(p.text[1].imm, 100);
    EXPECT_EQ(p.text[2].rc, 4);
}

TEST(Assembler, CallAndReturnForms)
{
    Program p = assemble(R"(
        .text
main:
        bsr r26, fn
        halt
fn:
        ret
    )");
    EXPECT_EQ(p.text[0].op, Op::BSR);
    EXPECT_EQ(p.text[0].ra, regRa);
    EXPECT_EQ(p.text[2].op, Op::RET);
    EXPECT_EQ(p.text[2].rb, regRa);
}

TEST(Assembler, EntryDefaultsToMain)
{
    Program p = assemble(R"(
        .text
start:
        nop
main:
        halt
    )");
    EXPECT_EQ(p.entry, Program::pcOf(1));
}

TEST(Assembler, SymbolPlusOffset)
{
    Program p = assemble(R"(
        .text
main:
        ldq r1, buf+16
        halt
        .data
buf:    .space 32
    )");
    EXPECT_EQ(static_cast<Addr>(p.text[0].imm), p.symbol("buf") + 16);
}

TEST(Assembler, Diagnostics)
{
    EXPECT_THROW(assemble("bogus r1, r2\n"), AsmError);
    EXPECT_THROW(assemble(".text\nmain:\n ldq r1, undefined_sym\nhalt\n"),
                 AsmError);
    EXPECT_THROW(assemble(".text\nx:\nx:\n halt\n"), AsmError);
    EXPECT_THROW(assemble(".text\n .quad 1\n"), AsmError);
    EXPECT_THROW(assemble(".data\n addl r1, r2, r3\n"), AsmError);
}

TEST(Assembler, DisasmRoundTrips)
{
    Program p = assemble(R"(
        .text
main:
        s8addl r7, r0, r7
        cmplt r18, r5, r7
        bne r7, main
        mg r4, r31, r17, 34
        halt
    )");
    EXPECT_EQ(p.text[0].disasm(), "s8addl r7,r0,r7");
    EXPECT_EQ(p.text[1].disasm(), "cmplt r18,r5,r7");
    EXPECT_EQ(p.text[3].disasm(), "mg r4,r31,r17,34");
}

} // namespace
} // namespace mg
