/**
 * @file
 * ISA unit tests: opcode classification, operand extraction, and the
 * nop/zero-register conventions the rest of the stack relies on.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"

namespace mg {
namespace {

TEST(Opcode, Classification)
{
    EXPECT_EQ(opClass(Op::ADDL), InsnClass::IntAlu);
    EXPECT_EQ(opClass(Op::MULQ), InsnClass::IntMult);
    EXPECT_EQ(opClass(Op::LDQ), InsnClass::Load);
    EXPECT_EQ(opClass(Op::STB), InsnClass::Store);
    EXPECT_EQ(opClass(Op::BNE), InsnClass::CondBranch);
    EXPECT_EQ(opClass(Op::BSR), InsnClass::UncondBranch);
    EXPECT_EQ(opClass(Op::RET), InsnClass::IndirectJump);
    EXPECT_EQ(opClass(Op::MG), InsnClass::Handle);
    EXPECT_TRUE(isMgAluOp(Op::S8ADDL));
    EXPECT_FALSE(isMgAluOp(Op::MULL));
    EXPECT_FALSE(isMgAluOp(Op::LDQ));
}

TEST(Opcode, EveryOpcodeHasNameAndLatency)
{
    for (int i = 0; i < static_cast<int>(Op::NUM_OPS); ++i) {
        Op op = static_cast<Op>(i);
        EXPECT_NE(opName(op), nullptr);
        EXPECT_GE(opLatency(op), 1);
    }
}

TEST(Instruction, OperateOperands)
{
    Instruction in;
    in.op = Op::ADDL;
    in.ra = 1;
    in.rb = 2;
    in.rc = 3;
    EXPECT_EQ(in.src(0), 1);
    EXPECT_EQ(in.src(1), 2);
    EXPECT_EQ(in.dst(), 3);
    EXPECT_TRUE(in.writesReg());

    in.useImm = true;
    in.rb = regNone;
    EXPECT_EQ(in.src(1), regNone);
    EXPECT_EQ(in.numSrcs(), 1);
}

TEST(Instruction, MemoryOperands)
{
    Instruction ld;
    ld.op = Op::LDQ;
    ld.ra = 5;   // dest
    ld.rb = 6;   // base
    EXPECT_EQ(ld.src(0), 6);
    EXPECT_EQ(ld.dst(), 5);

    Instruction st;
    st.op = Op::STQ;
    st.ra = 5;   // data
    st.rb = 6;   // base
    EXPECT_EQ(st.src(0), 6);
    EXPECT_EQ(st.src(1), 5);
    EXPECT_EQ(st.dst(), regNone);
    EXPECT_FALSE(st.writesReg());
}

TEST(Instruction, ZeroRegisterConventions)
{
    Instruction in;
    in.op = Op::BIS;
    in.ra = regZero;
    in.rb = regZero;
    in.rc = regZero;
    EXPECT_TRUE(in.isNop());       // bis r31,r31,r31
    EXPECT_FALSE(in.writesReg());

    in.rc = 4;
    EXPECT_FALSE(in.isNop());
    EXPECT_TRUE(in.writesReg());
}

TEST(Instruction, HandleOperands)
{
    Instruction h;
    h.op = Op::MG;
    h.ra = 18;
    h.rb = 5;
    h.rc = 18;
    h.imm = 12;
    EXPECT_TRUE(h.isHandle());
    EXPECT_EQ(h.src(0), 18);
    EXPECT_EQ(h.src(1), 5);
    EXPECT_EQ(h.dst(), 18);
}

TEST(ProgramTest, PcMapping)
{
    Program p;
    p.text.resize(4);
    EXPECT_EQ(Program::pcOf(0), textBase);
    EXPECT_EQ(p.indexOf(textBase + 8), 2u);
    EXPECT_TRUE(p.validPc(textBase + 12));
    EXPECT_FALSE(p.validPc(textBase + 16));
    EXPECT_FALSE(p.validPc(textBase + 2));
}

} // namespace
} // namespace mg
