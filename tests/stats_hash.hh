/**
 * @file
 * Shared helpers for the golden stats-identity batteries
 * (test_perf_identity, test_long_kernels) and the differential fuzz
 * checksums: one FNV-1a implementation and one definition of "the
 * hash over every CoreStats counter", so the tier pins can never
 * silently diverge in what they hash.
 */

#ifndef MG_TESTS_STATS_HASH_HH
#define MG_TESTS_STATS_HASH_HH

#include <cstdint>

#include "sim/config.hh"
#include "uarch/core.hh"

namespace mg {
namespace testhash {

inline std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

constexpr std::uint64_t fnvBasis = 1469598103934665603ull;

/** FNV-1a over every CoreStats counter, in declaration order. */
inline std::uint64_t
statsHash(const CoreStats &s)
{
    std::uint64_t h = fnvBasis;
#define MG_H(f) h = fnv1a(h, static_cast<std::uint64_t>(s.f));
    MG_CORE_STATS_COUNTERS(MG_H)
#undef MG_H
    return h;
}

/** The golden tables' machine shapes: base / int / intmem. */
inline SimConfig
configOf(const std::string &name)
{
    if (name == "base")
        return SimConfig::baseline();
    if (name == "int")
        return SimConfig::intMg();
    return SimConfig::intMemMg();
}

/** One golden-table row. */
struct Golden
{
    const char *kernel;
    const char *config;
    std::uint64_t hash;
};

} // namespace testhash
} // namespace mg

#endif // MG_TESTS_STATS_HASH_HH
