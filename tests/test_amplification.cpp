/**
 * @file
 * Amplification invariants — the paper's central claims, checked as
 * testable properties of the timing core:
 *  - a handle consumes one slot of each front-end/retire stage;
 *  - interior values never allocate physical registers;
 *  - mini-graphs recover performance lost to reduced register files,
 *    reduced width, and pipelined schedulers (Figure 8 directions);
 *  - serialization policies behave as Section 6.2 describes.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/suites.hh"

namespace mg {
namespace {

CoreStats
runMg(const BoundKernel &bk, SimConfig sc)
{
    BlockProfile prof = collectProfile(*bk.program, bk.setup,
                                       sc.profileBudget);
    PreparedMg prep = prepareMiniGraphs(*bk.program, prof, sc.policy,
                                        sc.machine, sc.compress);
    return runCore(prep.program, &prep.table, sc.core, bk.setup);
}

TEST(Amplification, SlotsShrinkByCoverage)
{
    BoundKernel bk = bindKernel(findKernel("gsm.lpc"));
    CoreStats base = runCore(*bk.program, nullptr,
                             SimConfig::baseline().core, bk.setup);
    CoreStats mg = runMg(bk, SimConfig::intMemMg());

    EXPECT_EQ(base.committedWork, mg.committedWork);
    // A handle retires as one slot: slots = work - (covered work -
    // handles).
    EXPECT_LT(mg.committedSlots, base.committedSlots);
    EXPECT_GT(mg.dynamicCoverage(), 0.10);
    std::uint64_t insideHandles =
        mg.committedWork - (mg.committedSlots - mg.committedHandles);
    EXPECT_GT(insideHandles, mg.committedHandles);   // graphs >= 2 insns
}

TEST(Amplification, FewerRegistersWrittenWithMiniGraphs)
{
    // Interior values never allocate registers, so the mini-graph run
    // must get through the same work with a smaller register file
    // than the baseline needs (Figure 8 top, as a hard invariant:
    // IPC with 124 regs + mini-graphs >= baseline IPC with 124 regs).
    BoundKernel bk = bindKernel(findKernel("jpeg.dct"));
    SimConfig mgCfg = SimConfig::intMemMg();
    mgCfg.core.physRegs = 124;
    CoreConfig baseCfg;
    baseCfg.physRegs = 124;

    CoreStats base = runCore(*bk.program, nullptr, baseCfg, bk.setup);
    CoreStats mg = runMg(bk, mgCfg);
    EXPECT_GT(mg.ipc(), base.ipc());
}

TEST(Amplification, CompensatesForNarrowPipeline)
{
    // Figure 8 bottom: a 4-wide machine with mini-graphs recovers
    // bandwidth versus the 4-wide baseline.
    BoundKernel bk = bindKernel(findKernel("dijkstra"));
    auto narrow = [](CoreConfig &c) {
        c.fetchWidth = c.renameWidth = c.issueWidth = c.commitWidth = 4;
        c.fu.issueWidth = 4;
    };
    CoreConfig base4;
    narrow(base4);
    SimConfig mg4 = SimConfig::intMemMg();
    narrow(mg4.core);

    CoreStats b = runCore(*bk.program, nullptr, base4, bk.setup);
    CoreStats m = runMg(bk, mg4);
    EXPECT_GT(m.ipc(), b.ipc());
}

TEST(Amplification, HidesSchedulingLoopLatency)
{
    // Mini-graph execution is pre-scheduled, so a 2-cycle scheduler
    // hurts the mini-graph machine less than the baseline (the
    // macro-op scheduling comparison, Section 6.3).
    BoundKernel bk = bindKernel(findKernel("gsm.lpc"));
    CoreConfig base1, base2;
    base2.schedulerCycles = 2;
    SimConfig mg2 = SimConfig::intMemMg();
    mg2.core.schedulerCycles = 2;

    CoreStats b1 = runCore(*bk.program, nullptr, base1, bk.setup);
    CoreStats b2 = runCore(*bk.program, nullptr, base2, bk.setup);
    CoreStats m2 = runMg(bk, mg2);
    double baseLoss = b2.ipc() / b1.ipc();
    double mgVsSlow = m2.ipc() / b2.ipc();
    EXPECT_LT(baseLoss, 1.0);    // pipelined scheduler costs
    EXPECT_GT(mgVsSlow, 1.0);    // mini-graphs claw it back
}

TEST(Policies, DisallowingExternalSerializationReducesCoverage)
{
    BoundKernel bk = bindKernel(findKernel("adpcm.enc"));
    BlockProfile prof = collectProfile(*bk.program, bk.setup, 400000);
    MgtMachine machine;
    SelectionPolicy all;
    SelectionPolicy strict;
    strict.allowExternallySerial = false;

    Cfg cfg(*bk.program);
    Liveness live(cfg);
    Selection a = selectMiniGraphs(cfg, live, prof, all, machine);
    Selection s = selectMiniGraphs(cfg, live, prof, strict, machine);
    EXPECT_LT(s.coverage(cfg, prof) - 1e-12, a.coverage(cfg, prof));
    for (const auto &si : s.instances)
        EXPECT_FALSE(si.cand.externallySerial);
}

TEST(Policies, DisallowingInteriorLoadsEliminatesHandleReplays)
{
    BoundKernel bk = bindKernel(findKernel("mcf"));
    SimConfig unrestricted = SimConfig::intMemMg();
    SimConfig noReplay = SimConfig::intMemMg();
    noReplay.policy.allowInteriorLoads = false;

    CoreStats u = runMg(bk, unrestricted);
    CoreStats n = runMg(bk, noReplay);
    // mcf misses constantly: unrestricted mini-graphs replay.
    EXPECT_GT(u.handleReplays, 0u);
    EXPECT_EQ(n.handleReplays, 0u);
}

TEST(Collapsing, LatencyReductionHelpsSerialCode)
{
    // Pair-wise collapsing executes 2-insn graphs in one cycle; on a
    // dependence-chain workload it must beat plain pipelines.
    BoundKernel bk = bindKernel(findKernel("sha"));
    CoreStats plain = runMg(bk, SimConfig::intMg(false));
    CoreStats coll = runMg(bk, SimConfig::intMg(true));
    EXPECT_GE(coll.ipc(), plain.ipc());
}

TEST(Handles, HoldOneLsqEntryAtMost)
{
    // An integer-memory mini-graph with its single allowed memory op
    // retires through the LSQ as one entry; a run whose handles all
    // contain memory ops must commit at least as many LSQ ops as
    // handles and never deadlock on a tiny LSQ.
    BoundKernel bk = bindKernel(findKernel("rtr"));
    SimConfig sc = SimConfig::intMemMg();
    sc.core.lsqSize = 8;
    CoreStats st = runMg(bk, sc);
    EXPECT_GT(st.committedHandles, 0u);
    EXPECT_GT(st.ipc(), 0.0);
}

} // namespace
} // namespace mg
