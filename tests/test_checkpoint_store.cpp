/**
 * @file
 * Warm-checkpoint store battery.
 *
 * Three layers, innermost out:
 *  - serialization round trips for every warmable structure (the
 *    functional oracle, the cache hierarchy, the branch predictor,
 *    the store sets), including geometry/shape-mismatch rejection;
 *  - the on-disk store's file format defenses: truncation, flipped
 *    bytes, stale version headers, hash-slot collisions, LRU
 *    eviction, unusable directories, and mid-session write failures
 *    all degrade to misses — never crash, never return wrong data;
 *  - end-to-end: a cold sampled session populates the store, a warm
 *    session restores from it bit-identically; corrupting every
 *    record between the two sessions forces the warm session back
 *    onto the recompute path and it must still produce the cold
 *    session's exact stats (the never-silently-mis-simulate
 *    contract).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "engine/checkpoint_store.hh"
#include "engine/engine.hh"
#include "memsys/hierarchy.hh"
#include "uarch/branch_pred.hh"
#include "uarch/store_sets.hh"
#include "workloads/suites.hh"

using namespace mg;
namespace fs = std::filesystem;

namespace {

/** Fresh per-test scratch directory (removed on destruction). */
struct ScratchDir
{
    fs::path path;

    explicit ScratchDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("mg-store-test-" + tag + "-" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
};

/** All record files currently in @p dir. */
std::vector<fs::path>
recordFiles(const fs::path &dir)
{
    std::vector<fs::path> out;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".mgck")
            out.push_back(e.path());
    return out;
}

/** The key string a record file carries (the collision guard field:
 *  magic u32, version u32, encoding u8, then a length-prefixed key). */
std::string
recordKey(const fs::path &file)
{
    std::ifstream in(file, std::ios::binary);
    std::vector<char> buf(9 + 8);
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    std::uint64_t len = 0;
    for (int i = 0; i < 8; ++i)
        len |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(buf[9 + i]))
            << (8 * i);
    std::string key(len, '\0');
    in.read(key.data(), static_cast<std::streamsize>(len));
    return key;
}

/** Overwrite one byte at @p off (negative: from the end). */
void
flipByte(const fs::path &file, long long off)
{
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    if (off < 0)
        f.seekp(off, std::ios::end);
    else
        f.seekp(off, std::ios::beg);
    char c = 0;
    f.seekg(f.tellp());
    f.get(c);
    f.seekp(-1, std::ios::cur);
    c = static_cast<char>(c ^ 0x5a);
    f.put(c);
}

/** Small-sampling config the unit tier can afford: enough periods on
 *  a ref-scale kernel to exercise fast-forward gaps and warm records
 *  without degenerating to an exact run. */
SimConfig
sampledSmall(SimConfig cfg)
{
    cfg.sampling.enabled = true;
    cfg.sampling.interval = 200;
    cfg.sampling.period = 2400;
    cfg.sampling.warmup = 400;
    cfg.sampling.ffWarm = 400;
    return cfg;
}

} // namespace

// ---------------------------------------------------------- serial layer

TEST(StoreSerial, PrimitivesRoundTripAndTruncationLatches)
{
    SerialWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.f64(3.25);
    w.str("warm|key");
    w.vec(std::vector<std::uint32_t>{1, 2, 3});

    std::vector<std::uint8_t> bytes = w.take();
    {
        SerialReader r(bytes);
        EXPECT_EQ(r.u8(), 0xab);
        EXPECT_EQ(r.u32(), 0xdeadbeefu);
        EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
        EXPECT_EQ(r.f64(), 3.25);
        EXPECT_EQ(r.str(), "warm|key");
        EXPECT_EQ(r.vec<std::uint32_t>(),
                  (std::vector<std::uint32_t>{1, 2, 3}));
        EXPECT_TRUE(r.ok());
        EXPECT_EQ(r.remaining(), 0u);
    }
    // Any truncation point must trip ok(), never read past the end.
    for (std::size_t cut : {std::size_t(0), bytes.size() / 2,
                            bytes.size() - 1}) {
        SerialReader r(bytes.data(), cut);
        r.u8();
        r.u32();
        r.u64();
        r.f64();
        r.str();
        r.vec<std::uint32_t>();
        EXPECT_FALSE(r.ok()) << "cut at " << cut;
    }
}

TEST(StoreSerial, EmuCheckpointRoundTripContinuesIdentically)
{
    BoundKernel bk = bindKernel(findKernel("crc"));
    Emulator a(*bk.program);
    bk.kernel->setup(a, 0);
    while (!a.halted() && a.dynInsns() < 3000)
        a.step();

    SerialWriter w;
    serializeCheckpoint(a.checkpoint(), w);
    std::vector<std::uint8_t> bytes = w.take();

    EmuCheckpoint c;
    {
        SerialReader r(bytes);
        ASSERT_TRUE(deserializeCheckpoint(r, c));
        EXPECT_TRUE(r.ok());
    }
    Emulator b(*bk.program);
    bk.kernel->setup(b, 0);
    b.restore(std::move(c));
    EmuResult endA = a.run();
    EmuResult endB = b.run();
    EXPECT_EQ(endA.dynWork, endB.dynWork);
    EXPECT_EQ(a.pc(), b.pc());
    for (RegId r = 0; r < numArchRegs; ++r)
        EXPECT_EQ(a.reg(r), b.reg(r)) << "register " << int(r);

    // Every truncation of a checkpoint must be rejected, not adopted.
    for (std::size_t cut = 0; cut < bytes.size();
         cut += 1 + bytes.size() / 13) {
        SerialReader r(bytes.data(), cut);
        EmuCheckpoint t;
        EXPECT_FALSE(deserializeCheckpoint(r, t) && r.ok())
            << "cut at " << cut;
    }
}

TEST(StoreSerial, HierarchyRoundTripAndGeometryGuard)
{
    HierarchyConfig hc;
    Hierarchy h(hc);
    for (Addr a = 0; a < 64 * 1024; a += 24) {
        h.dataAccess(a, (a / 24) % 3 == 0, a / 8);
        h.instAccess(0x400000 + a % 4096, a / 8);
    }
    HierarchyState st = h.exportState();

    SerialWriter w;
    st.serialize(w);
    std::vector<std::uint8_t> bytes = w.take();
    HierarchyState rt;
    {
        SerialReader r(bytes);
        ASSERT_TRUE(rt.deserialize(r));
        EXPECT_TRUE(r.ok());
    }

    Hierarchy h2(hc);
    ASSERT_TRUE(h2.stateCompatible(rt));
    h2.adoptState(rt);
    // Adopted warm state is bit-equal on re-export.
    SerialWriter w2;
    h2.exportState().serialize(w2);
    EXPECT_EQ(bytes, w2.data());

    // A different geometry must refuse the state outright.
    HierarchyConfig other = hc;
    other.l1d = CacheGeometry{16 * 1024, 4, 64};
    EXPECT_FALSE(Hierarchy(other).stateCompatible(rt));

    // Internally inconsistent vector lengths are malformed input.
    HierarchyState bad = rt;
    bad.l1d.tags.pop_back();
    EXPECT_FALSE(Hierarchy(hc).stateCompatible(bad));
}

TEST(StoreSerial, BranchPredRoundTripAndShapeGuard)
{
    BranchPredictor bp;
    for (Addr pc = 0x1000; pc < 0x3000; pc += 4) {
        bp.updateDirection(pc, (pc >> 2) % 3 != 0);
        if ((pc >> 2) % 5 == 0)
            bp.updateTarget(pc, pc * 2 + 8);
    }
    bp.pushReturn(0x7700);
    BranchPredState st = bp.exportState();

    SerialWriter w;
    st.serialize(w);
    BranchPredState rt;
    {
        SerialReader r(w.data());
        ASSERT_TRUE(rt.deserialize(r));
        EXPECT_TRUE(r.ok());
    }
    BranchPredictor bp2;
    ASSERT_TRUE(bp2.stateCompatible(rt));
    bp2.adoptState(rt);
    for (Addr pc = 0x1000; pc < 0x3000; pc += 4) {
        EXPECT_EQ(bp2.predictDirection(pc), bp.predictDirection(pc));
        EXPECT_EQ(bp2.predictTarget(pc), bp.predictTarget(pc));
    }
    EXPECT_EQ(bp2.popReturn(), 0x7700u);

    BranchPredState bad = rt;
    bad.gshare.resize(bad.gshare.size() / 2);
    EXPECT_FALSE(BranchPredictor().stateCompatible(bad));
}

TEST(StoreSerial, StoreSetsRoundTripAndShapeGuard)
{
    StoreSets ss;
    ss.recordViolation(0x100, 0x200);
    ss.recordViolation(0x100, 0x300);   // merged set
    ss.recordViolation(0x500, 0x600);
    ss.dispatchStore(0x200, 41);
    StoreSetsState st = ss.exportState();

    SerialWriter w;
    st.serialize(w);
    StoreSetsState rt;
    {
        SerialReader r(w.data());
        ASSERT_TRUE(rt.deserialize(r));
        EXPECT_TRUE(r.ok());
    }
    StoreSets ss2;
    ASSERT_TRUE(ss2.stateCompatible(rt));
    ss2.adoptState(rt);
    // The merged set's ordering behavior survives the round trip.
    EXPECT_EQ(ss2.dispatchLoad(0x100), 41u);
    EXPECT_EQ(ss2.violations(), 3u);

    StoreSetsState bad = rt;
    bad.ssit.resize(bad.ssit.size() - 1);
    EXPECT_FALSE(StoreSets().stateCompatible(bad));
}

// ------------------------------------------------------------ file layer

TEST(StoreFiles, RoundTripCountersAndPersistence)
{
    ScratchDir dir("roundtrip");
    std::vector<std::uint8_t> payload;
    for (int i = 0; i < 4096; ++i)
        payload.push_back(static_cast<std::uint8_t>(i % 11 ? 0 : i));

    {
        CheckpointStore s({dir.str()});
        ASSERT_TRUE(s.enabled());
        std::vector<std::uint8_t> out;
        EXPECT_FALSE(s.load("warm|a|p0", out));
        s.store("warm|a|p0", payload);
        ASSERT_TRUE(s.load("warm|a|p0", out));
        EXPECT_EQ(out, payload);
        CheckpointStoreCounters c = s.counters();
        EXPECT_EQ(c.hits, 1u);
        EXPECT_EQ(c.misses, 1u);
        EXPECT_EQ(c.writebacks, 1u);
        EXPECT_EQ(c.corrupt, 0u);
    }
    // A second store instance over the same directory sees the record
    // (the content-addressed contract: the key, not the session, owns
    // the data).
    CheckpointStore s2({dir.str()});
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(s2.load("warm|a|p0", out));
    EXPECT_EQ(out, payload);
}

TEST(StoreFiles, TruncatedRecordRejectedAndHealedByWriteback)
{
    ScratchDir dir("truncate");
    CheckpointStore s({dir.str()});
    std::vector<std::uint8_t> payload(1000, 7);
    s.store("warm|t|p0", payload);

    auto files = recordFiles(dir.path);
    ASSERT_EQ(files.size(), 1u);
    fs::resize_file(files[0], fs::file_size(files[0]) / 2);

    std::vector<std::uint8_t> out;
    EXPECT_FALSE(s.load("warm|t|p0", out));
    EXPECT_EQ(s.counters().corrupt, 1u);
    // Defective records are unlinked so the next writeback heals.
    EXPECT_TRUE(recordFiles(dir.path).empty());
    s.store("warm|t|p0", payload);
    EXPECT_TRUE(s.load("warm|t|p0", out));
    EXPECT_EQ(out, payload);
}

TEST(StoreFiles, FlippedPayloadByteFailsChecksum)
{
    ScratchDir dir("flip");
    CheckpointStore s({dir.str()});
    std::vector<std::uint8_t> payload(512);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i);
    s.store("warm|f|p0", payload);

    auto files = recordFiles(dir.path);
    ASSERT_EQ(files.size(), 1u);
    flipByte(files[0], -17);    // inside the encoded payload

    std::vector<std::uint8_t> out;
    EXPECT_FALSE(s.load("warm|f|p0", out));
    EXPECT_EQ(s.counters().corrupt, 1u);
}

TEST(StoreFiles, StaleVersionHeaderRejected)
{
    ScratchDir dir("stale");
    CheckpointStore s({dir.str()});
    s.store("warm|v|p0", std::vector<std::uint8_t>(64, 3));

    auto files = recordFiles(dir.path);
    ASSERT_EQ(files.size(), 1u);
    flipByte(files[0], 4);      // the format-version field

    std::vector<std::uint8_t> out;
    EXPECT_FALSE(s.load("warm|v|p0", out));
    EXPECT_EQ(s.counters().corrupt, 1u);
}

TEST(StoreFiles, HashSlotHoldingAnotherKeyReadsAsMiss)
{
    ScratchDir dir("collide");
    CheckpointStore s({dir.str()});
    s.store("warm|x|p0", std::vector<std::uint8_t>(64, 1));
    s.store("warm|y|p0", std::vector<std::uint8_t>(64, 2));

    // Simulate an FNV collision: plant x's (well-formed!) record in
    // y's file slot. The embedded key string must read as a miss for
    // y — never as x's data.
    auto files = recordFiles(dir.path);
    ASSERT_EQ(files.size(), 2u);
    fs::path xFile =
        recordKey(files[0]) == "warm|x|p0" ? files[0] : files[1];
    fs::path yFile = xFile == files[0] ? files[1] : files[0];
    fs::copy_file(xFile, yFile, fs::copy_options::overwrite_existing);

    std::uint64_t corruptBefore = s.counters().corrupt;
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(s.load("warm|y|p0", out));
    // A key mismatch is a plain miss, not corruption.
    EXPECT_EQ(s.counters().corrupt, corruptBefore);
    // x itself still loads.
    EXPECT_TRUE(s.load("warm|x|p0", out));
    EXPECT_EQ(out, std::vector<std::uint8_t>(64, 1));
}

TEST(StoreFiles, CapEvictsLeastRecentlyUsed)
{
    ScratchDir dir("evict");
    // Each record is ~0.5 KiB on disk; cap at ~2 records.
    CheckpointStore s({dir.str(), 1300});
    std::vector<std::uint8_t> payload(512);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 7);

    s.store("warm|e|p0", payload);
    s.store("warm|e|p1", payload);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(s.load("warm|e|p0", out));  // refresh p0's recency
    s.store("warm|e|p2", payload);          // must evict p1, not p0

    EXPECT_GT(s.counters().evictions, 0u);
    EXPECT_TRUE(s.load("warm|e|p2", out));
    EXPECT_TRUE(s.load("warm|e|p0", out));
    EXPECT_FALSE(s.load("warm|e|p1", out));
}

TEST(StoreFiles, UnusableDirectoryDegradesToNoOp)
{
    // The directory path runs *through* a regular file: mkdir fails.
    ScratchDir dir("unwritable");
    fs::path blocker = dir.path / "blocker";
    std::ofstream(blocker).put('x');
    CheckpointStore s({(blocker / "cache").string()});
    EXPECT_FALSE(s.enabled());
    EXPECT_FALSE(s.writable());

    // Every operation is a safe no-op.
    std::vector<std::uint8_t> out;
    s.store("warm|u|p0", std::vector<std::uint8_t>(8, 1));
    EXPECT_FALSE(s.load("warm|u|p0", out));
    EXPECT_EQ(s.counters().writebacks, 0u);
}

TEST(StoreFiles, WriteFailureMidSessionDegradesWrites)
{
    ScratchDir dir("enospc");
    fs::path sub = dir.path / "cache";
    fs::create_directories(sub);
    CheckpointStore s({sub.string()});
    ASSERT_TRUE(s.enabled());
    s.store("warm|w|p0", std::vector<std::uint8_t>(128, 9));
    EXPECT_EQ(s.counters().writebacks, 1u);

    // Yank the directory out from under the store: the next write
    // cannot create its temp file (the ENOSPC-class failure mode) and
    // must degrade writes without failing the caller.
    fs::remove_all(sub);
    s.store("warm|w|p1", std::vector<std::uint8_t>(128, 9));
    EXPECT_FALSE(s.writable());
    EXPECT_EQ(s.counters().writebacks, 1u);
    // Further stores stay no-ops; the object remains safe to use.
    s.store("warm|w|p2", std::vector<std::uint8_t>(128, 9));
    EXPECT_EQ(s.counters().writebacks, 1u);
}

// ------------------------------------------------------- end-to-end layer

TEST(StoreEndToEnd, ColdPopulatesWarmRestoresBitIdentically)
{
    ScratchDir dir("e2e");
    BoundKernel bk = bindKernel(findKernel("gzip"));
    EngineWorkload w = workload(bk);
    SimConfig sc = sampledSmall(SimConfig::intMemMg());

    ExperimentEngine cold(1);
    cold.setCheckpointStore(
        std::make_shared<CheckpointStore>(CheckpointStoreConfig{dir.str()}));
    SampledStats a = cold.cellSampled(w, sc);
    ASSERT_FALSE(a.exact) << "kernel too small to exercise sampling";
    EXPECT_GT(a.ckptWritebacks, 0u);
    EXPECT_EQ(a.ckptRestores, 0u);
    EXPECT_GT(cold.checkpointStore()->counters().writebacks, 0u);

    ExperimentEngine warm(1);
    warm.setCheckpointStore(
        std::make_shared<CheckpointStore>(CheckpointStoreConfig{dir.str()}));
    SampledStats b = warm.cellSampled(w, sc);
    EXPECT_GT(b.ckptRestores, 0u);
    EXPECT_EQ(b.ckptWritebacks, 0u);

    // The warm session is the cold session, bit for bit.
    EXPECT_EQ(b.est, a.est);
    EXPECT_EQ(b.intervals, a.intervals);
    EXPECT_EQ(b.measuredCycles, a.measuredCycles);
    EXPECT_EQ(b.ipcHat, a.ipcHat);
    EXPECT_EQ(b.ipcRelCi95, a.ipcRelCi95);
}

TEST(StoreEndToEnd, CorruptedRecordsFallBackToIdenticalRecompute)
{
    ScratchDir dir("e2e-corrupt");
    BoundKernel bk = bindKernel(findKernel("gzip"));
    EngineWorkload w = workload(bk);
    SimConfig sc = sampledSmall(SimConfig::intMemMg());

    ExperimentEngine cold(1);
    cold.setCheckpointStore(
        std::make_shared<CheckpointStore>(CheckpointStoreConfig{dir.str()}));
    SampledStats a = cold.cellSampled(w, sc);
    ASSERT_FALSE(a.exact);
    ASSERT_GT(a.ckptWritebacks, 0u);

    // Flip a byte near the end of every record on disk (summary,
    // violation set, and warm records alike).
    for (const fs::path &f : recordFiles(dir.path))
        flipByte(f, -3);

    ExperimentEngine warm(1);
    warm.setCheckpointStore(
        std::make_shared<CheckpointStore>(CheckpointStoreConfig{dir.str()}));
    SampledStats b = warm.cellSampled(w, sc);

    // Nothing restorable: the session must recompute everything and
    // land on the cold session's exact stats — corruption can cost
    // time, never correctness.
    EXPECT_EQ(b.ckptRestores, 0u);
    EXPECT_EQ(b.est, a.est);
    EXPECT_EQ(b.intervals, a.intervals);
    EXPECT_GT(warm.checkpointStore()->counters().corrupt, 0u);
    // The rejected records were unlinked and rewritten: a third
    // session restores warm again.
    ExperimentEngine healed(1);
    healed.setCheckpointStore(
        std::make_shared<CheckpointStore>(CheckpointStoreConfig{dir.str()}));
    SampledStats c = healed.cellSampled(w, sc);
    EXPECT_GT(c.ckptRestores, 0u);
    EXPECT_EQ(c.est, a.est);
}

TEST(StoreEndToEnd, UnusableDirectoryStillSimulatesStoreless)
{
    ScratchDir dir("e2e-baddir");
    fs::path blocker = dir.path / "blocker";
    std::ofstream(blocker).put('x');

    BoundKernel bk = bindKernel(findKernel("adpcm.enc"));
    EngineWorkload w = workload(bk);
    SimConfig sc = sampledSmall(SimConfig::intMemMg());

    ExperimentEngine plain(1);
    SampledStats ref = plain.cellSampled(w, sc);

    ExperimentEngine broken(1);
    broken.setCheckpointStore(std::make_shared<CheckpointStore>(
        CheckpointStoreConfig{(blocker / "cache").string()}));
    SampledStats got = broken.cellSampled(w, sc);

    // A disabled store must not change a single bit of the result.
    EXPECT_EQ(got.est, ref.est);
    EXPECT_EQ(got.intervals, ref.intervals);
    EXPECT_EQ(got.ckptRestores, 0u);
    EXPECT_EQ(got.ckptWritebacks, 0u);
}
